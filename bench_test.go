// Package repro's benchmarks regenerate every measured quantity in the
// paper's evaluation (§3 and §5). Each benchmark names the paper artifact
// it reproduces; virtual-time results are attached as custom metrics
// (virt-* units), real-time results use the normal ns/op. EXPERIMENTS.md
// records paper-vs-measured for all of them.
//
//	go test -bench=. -benchmem
package repro

import (
	"testing"
	"time"

	"repro/internal/basis"
	"repro/internal/checksum"
	"repro/internal/experiments"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/timers"
)

// --- Table 1 ------------------------------------------------------------

// paperOpts is the Table 1 configuration: 10^6 bytes, 4096-byte window,
// 10 Mb/s wire, CPU charged at 1000×, plus the documented 1994 modes.
func paperOpts(full1994 bool) experiments.Options {
	o := experiments.Options{}
	if full1994 {
		o.SMLEra = true
		o.SMLFactor = 5
	}
	return o
}

func benchThroughput(b *testing.B, impl experiments.Impl, full1994 bool) {
	var r experiments.TransferResult
	for i := 0; i < b.N; i++ {
		r = experiments.Throughput(impl, paperOpts(full1994))
	}
	b.ReportMetric(r.ThroughputMbps, "virt-Mb/s")
	b.ReportMetric(float64(r.Elapsed)/float64(time.Millisecond), "virt-ms")
	b.ReportMetric(float64(r.SegsSent), "segs")
}

func benchRTT(b *testing.B, impl experiments.Impl, full1994 bool) {
	var r experiments.RTTResult
	o := paperOpts(full1994)
	o.Rounds = 50
	for i := 0; i < b.N; i++ {
		r = experiments.RoundTrip(impl, o)
	}
	b.ReportMetric(float64(r.MeanRTT)/float64(time.Millisecond), "virt-ms-rtt")
}

// BenchmarkTable1 reproduces Table 1: Fox Net vs x-kernel baseline,
// throughput (paper: 0.6 vs 2.5 Mb/s) and round trip (36 vs 4.9 ms).
// The Structured vs XKernel pair isolates the cost of structure alone;
// the Full1994 pair adds the paper's measured data-path constants and the
// 5× SML/NJ code-generation factor (DESIGN.md §3).
func BenchmarkTable1(b *testing.B) {
	b.Run("Throughput/FoxNet", func(b *testing.B) { benchThroughput(b, experiments.Structured, false) })
	b.Run("Throughput/XKernel", func(b *testing.B) { benchThroughput(b, experiments.XKernelBaseline, false) })
	b.Run("Throughput/FoxNetFull1994", func(b *testing.B) { benchThroughput(b, experiments.Structured, true) })
	b.Run("RoundTrip/FoxNet", func(b *testing.B) { benchRTT(b, experiments.Structured, false) })
	b.Run("RoundTrip/XKernel", func(b *testing.B) { benchRTT(b, experiments.XKernelBaseline, false) })
	b.Run("RoundTrip/FoxNetFull1994", func(b *testing.B) { benchRTT(b, experiments.Structured, true) })
}

// BenchmarkTable2 reproduces Table 2: the execution profile of the
// profiled 10^6-byte transfer. The headline rows are attached as metrics
// (percent of busy time, comparable to the paper's two-machine run).
func BenchmarkTable2(b *testing.B) {
	var r experiments.TransferResult
	for i := 0; i < b.N; i++ {
		o := paperOpts(true)
		o.Profile = true
		r = experiments.Throughput(experiments.Structured, o)
	}
	rows := map[string]float64{}
	for _, row := range r.Sender.Rows {
		rows[row.Label] = row.Busy
	}
	b.ReportMetric(rows["TCP"], "tcp-busy-%")
	b.ReportMetric(rows["IP"], "ip-busy-%")
	b.ReportMetric(rows["copy"], "copy-busy-%")
	b.ReportMetric(rows["checksum"], "cksum-busy-%")
}

// --- E-gc: the §5 garbage-collection observation -------------------------

// BenchmarkGCExperiment reproduces the in-text claim that ≥5 MB runs see
// major collections yet sustain the same or better throughput than 1 MB
// runs.
func BenchmarkGCExperiment(b *testing.B) {
	var r experiments.GCResult
	for i := 0; i < b.N; i++ {
		r = experiments.GCExperiment(experiments.Options{})
	}
	b.ReportMetric(r.Short.ThroughputMbps, "virt-Mb/s-1MB")
	b.ReportMetric(r.Long.ThroughputMbps, "virt-Mb/s-5MB")
	b.ReportMetric(float64(r.Long.NumGC), "gcs-5MB")
}

// --- Ablations (DESIGN.md §5) --------------------------------------------

// BenchmarkAblation measures the design toggles the paper discusses: the
// quasi-synchronous queue vs direct dispatch, the fast path, delayed
// ACKs, Nagle, and congestion control.
func BenchmarkAblation(b *testing.B) {
	for _, a := range experiments.Ablations() {
		a := a
		b.Run(a.Name, func(b *testing.B) {
			var r experiments.TransferResult
			for i := 0; i < b.N; i++ {
				o := experiments.Options{}
				cfg := a.Cfg
				o.TCPConfig = &cfg
				r = experiments.Throughput(experiments.Structured, o)
			}
			b.ReportMetric(r.ThroughputMbps, "virt-Mb/s")
		})
	}
}

// --- E-cksum: Fig. 10 and §5 checksum study ------------------------------

// BenchmarkChecksum reproduces the checksum comparison: the paper's
// optimized loop ran at 343 µs/KB on the DECstation against the
// x-kernel's 375 µs/KB "slower algorithm". The real ns/op here divides by
// 1 KB; multiply by the 1000× CPU scale to compare against the paper.
func BenchmarkChecksum(b *testing.B) {
	buf := make([]byte, 1024)
	for i := range buf {
		buf[i] = byte(i * 31)
	}
	odd := buf[1 : 1+1022] // byte-2-misaligned view, as the paper measured
	for _, bc := range []struct {
		name string
		data []byte
		f    func(uint16, []byte) uint16
	}{
		{"Fig10", buf, checksum.SumFig10},
		{"Fig10Odd", odd, checksum.SumFig10},
		{"Wide", buf, checksum.SumWide},
		{"NaiveXKernel", buf, checksum.SumNaive},
	} {
		bc := bc
		b.Run(bc.name, func(b *testing.B) {
			b.SetBytes(int64(len(bc.data)))
			var sink uint16
			for i := 0; i < b.N; i++ {
				sink = bc.f(0, bc.data)
			}
			_ = sink
			nsPerKB := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			b.ReportMetric(nsPerKB*1000/1000, "virt-µs/KB") // ns real ≈ µs at 1000× scale
		})
	}
}

// --- E-copy: the §5 copy study -------------------------------------------

// BenchmarkCopy reproduces the copy comparison: the SML per-byte indexed
// loop (300 µs/KB, every access bounds-checked) against bcopy (61 µs/KB).
// IndexedCopy is the SML shape, the builtin copy is bcopy, WordCopy is
// the staged improvement the paper anticipated.
func BenchmarkCopy(b *testing.B) {
	src := make([]byte, 1024)
	dst := make([]byte, 1024)
	b.Run("IndexedSML", func(b *testing.B) {
		b.SetBytes(1024)
		for i := 0; i < b.N; i++ {
			basis.IndexedCopy(dst, src)
		}
	})
	b.Run("Word", func(b *testing.B) {
		b.SetBytes(1024)
		for i := 0; i < b.N; i++ {
			basis.WordCopy(dst, src)
		}
	})
	b.Run("BuiltinBcopy", func(b *testing.B) {
		b.SetBytes(1024)
		for i := 0; i < b.N; i++ {
			copy(dst, src)
		}
	})
}

// --- E-sched: §3's scheduler costs ----------------------------------------

//go:noinline
func emptyFunction() {}

// BenchmarkScheduler reproduces the paper's §3 measurements: an empty
// function call (1.2 µs on the DECstation) against creating a thread,
// terminating the current one, and switching (≈30 µs including scheduler
// bookkeeping). The paper's point is the ratio: a full coroutine
// create+switch costs only ~25 empty calls.
func BenchmarkScheduler(b *testing.B) {
	b.Run("EmptyCall", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			emptyFunction()
		}
	})
	b.Run("ForkExitSwitch", func(b *testing.B) {
		s := sim.New(sim.Config{})
		s.Run(func() {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Fork("t", func() {})
				s.Yield() // run it; it exits and switches back
			}
		})
	})
	b.Run("YieldPair", func(b *testing.B) {
		s := sim.New(sim.Config{})
		s.Run(func() {
			other := func() {
				for {
					s.Yield()
				}
			}
			s.Fork("peer", other)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Yield() // main -> peer -> main: two switches
			}
		})
	})
}

// --- E-timer: Fig. 11 ------------------------------------------------------

// BenchmarkTimer reproduces the Fig. 11 timer facility costs: start+clear
// (the common case on the segment path) and start+expire.
func BenchmarkTimer(b *testing.B) {
	b.Run("StartClear", func(b *testing.B) {
		s := sim.New(sim.Config{})
		s.Run(func() {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := timers.Start(s, func() {}, time.Hour)
				t.Clear()
				if i%1024 == 0 {
					s.Sleep(2 * time.Hour) // drain cleared timer threads
				}
			}
		})
	})
	b.Run("StartExpire", func(b *testing.B) {
		s := sim.New(sim.Config{})
		s.Run(func() {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fired := false
				timers.Start(s, func() { fired = true }, time.Microsecond)
				s.Sleep(2 * time.Microsecond)
				if !fired {
					b.Fatal("timer did not fire")
				}
			}
		})
	})
}

// --- E-ctr: §5's counter cost ----------------------------------------------

// BenchmarkCounter reproduces the profiling-counter measurement: one
// start/stop pair cost the paper 15 µs; here it costs two virtual-clock
// reads, and the "counters (est.)" row of Table 2 uses the paper's
// figure.
func BenchmarkCounter(b *testing.B) {
	s := sim.New(sim.Config{})
	s.Run(func() {
		p := profile.New(s, true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Start(profile.CatMisc).Stop()
		}
	})
}
