package icmp_test

import (
	"testing"
	"time"

	"repro/internal/arp"
	"repro/internal/basis"
	"repro/internal/ethernet"
	"repro/internal/icmp"
	"repro/internal/ip"
	"repro/internal/sim"
	"repro/internal/wire"
)

type pingHost struct {
	icmp *icmp.ICMP
	ipl  *ip.IP
	ip   ip.Addr
}

// sendRawICMP injects arbitrary bytes as an ICMP message toward dst.
func (h pingHost) sendRawICMP(dst ip.Addr, body []byte) {
	h.ipl.Send(dst, ip.ProtoICMP, basis.NewPacket(ip.Headroom, ethernet.Tailroom, body))
}

func runICMP(t *testing.T, wcfg wire.Config, cfg icmp.Config, body func(s *sim.Scheduler, a, b pingHost)) {
	t.Helper()
	s := sim.New(sim.Config{})
	s.Run(func() {
		seg := wire.NewSegment(s, wcfg, nil)
		mk := func(n byte) pingHost {
			addr := ip.HostAddr(n)
			eth := ethernet.New(seg.NewPort(addr.String(), nil), ethernet.HostAddr(n), ethernet.Config{})
			resolver := arp.New(s, eth, addr, arp.Config{})
			ipl := ip.New(s, eth, resolver, ip.Config{Local: addr})
			return pingHost{icmp: icmp.New(s, ipl, cfg), ipl: ipl, ip: addr}
		}
		body(s, mk(1), mk(2))
	})
}

func TestPingRoundTrip(t *testing.T) {
	runICMP(t, wire.Config{}, icmp.Config{}, func(s *sim.Scheduler, a, b pingHost) {
		var ok bool
		var rtt sim.Duration
		a.icmp.Ping(b.ip, 1, 1, []byte("ping payload"), func(o bool, r sim.Duration) { ok, rtt = o, r })
		s.Sleep(time.Second)
		if !ok {
			t.Fatal("ping failed")
		}
		if rtt <= 0 || rtt > 100*time.Millisecond {
			t.Fatalf("rtt = %v", rtt)
		}
		if b.icmp.Stats().EchoRequests != 1 || a.icmp.Stats().EchoReplies != 1 {
			t.Fatalf("stats: b=%+v a=%+v", b.icmp.Stats(), a.icmp.Stats())
		}
	})
}

func TestPingTimeout(t *testing.T) {
	runICMP(t, wire.Config{Loss: 1}, icmp.Config{PingTimeout: time.Second}, func(s *sim.Scheduler, a, b pingHost) {
		var called, ok bool
		a.icmp.Ping(b.ip, 1, 7, nil, func(o bool, _ sim.Duration) { called, ok = true, o })
		s.Sleep(10 * time.Second)
		if !called {
			t.Fatal("timeout callback never ran")
		}
		if ok {
			t.Fatal("ping claimed success over a dead wire")
		}
	})
}

func TestConcurrentPingsMatchBySequence(t *testing.T) {
	runICMP(t, wire.Config{}, icmp.Config{}, func(s *sim.Scheduler, a, b pingHost) {
		replies := 0
		for seq := uint16(1); seq <= 5; seq++ {
			a.icmp.Ping(b.ip, 9, seq, []byte{byte(seq)}, func(o bool, _ sim.Duration) {
				if o {
					replies++
				}
			})
		}
		s.Sleep(time.Second)
		if replies != 5 {
			t.Fatalf("replies = %d", replies)
		}
	})
}

func TestUnreachableDelivery(t *testing.T) {
	runICMP(t, wire.Config{}, icmp.Config{}, func(s *sim.Scheduler, a, b pingHost) {
		var gotCode byte = 0xff
		var gotSrc ip.Addr
		a.icmp.Unreachable = func(src ip.Addr, code byte) { gotSrc, gotCode = src, code }
		b.icmp.SendUnreachable(a.ip, icmp.CodePortUnreachable, []byte("original datagram bytes"))
		s.Sleep(time.Second)
		if gotCode != icmp.CodePortUnreachable || gotSrc != b.ip {
			t.Fatalf("got code %d from %s", gotCode, gotSrc)
		}
		if a.icmp.Stats().UnreachableRecvd != 1 {
			t.Fatalf("UnreachableRecvd = %d", a.icmp.Stats().UnreachableRecvd)
		}
	})
}

func TestMalformedAndIgnoredTypesCounted(t *testing.T) {
	runICMP(t, wire.Config{}, icmp.Config{}, func(s *sim.Scheduler, a, b pingHost) {
		// Deliver junk straight to B's ICMP input through the IP layer:
		// a 3-byte ICMP message is malformed.
		// (Reaching receive via the network keeps the path realistic.)
		// Build a raw proto-1 datagram with a short payload from A.
		a.sendRawICMP(b.ip, []byte{8, 0, 0})
		// And one with a broken checksum.
		a.sendRawICMP(b.ip, []byte{8, 0, 0xde, 0xad, 0, 0, 0, 1, 'x'})
		s.Sleep(time.Second)
		st := b.icmp.Stats()
		if st.Malformed != 1 {
			t.Fatalf("Malformed = %d", st.Malformed)
		}
		if st.BadChecksum != 1 {
			t.Fatalf("BadChecksum = %d", st.BadChecksum)
		}
	})
}
