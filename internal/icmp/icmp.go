// Package icmp implements the control protocol the substrate needs to be
// a complete standard stack: echo request/reply (ping), and generation
// and counting of destination-unreachable and time-exceeded messages.
// The paper's profile runs did not exercise ICMP, but a standard TCP/IP
// suite carries it, and the examples use ping to demonstrate the stack.
package icmp

import (
	"encoding/binary"
	"time"

	"repro/internal/basis"
	"repro/internal/checksum"
	"repro/internal/ethernet"
	"repro/internal/ip"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/timers"
)

// Message types.
const (
	TypeEchoReply       = 0
	TypeDestUnreachable = 3
	TypeEcho            = 8
	TypeTimeExceeded    = 11
)

// Destination-unreachable codes.
const (
	CodeNetUnreachable  = 0
	CodeHostUnreachable = 1
	CodePortUnreachable = 3
)

const headerLen = 8

// Stats counts ICMP activity.
type Stats struct {
	EchoRequests     uint64 // echo requests answered
	EchoReplies      uint64 // replies received
	UnreachableSent  uint64
	UnreachableRecvd uint64
	TimeExceededSent uint64
	TimeExceededRcvd uint64
	Malformed        uint64
	BadChecksum      uint64
}

// Config parameterizes the layer.
type Config struct {
	// PingTimeout bounds how long a Ping waits. Default 5 s.
	PingTimeout sim.Duration
	Trace       *basis.Tracer
	// Metrics is the RFC 2011-style icmp counter group; New allocates a
	// detached one when none is supplied.
	Metrics *stats.ICMPMIB
}

// ICMP is one host's control-protocol endpoint.
type ICMP struct {
	s       *sim.Scheduler
	ipl     *ip.IP
	cfg     Config
	pending map[uint32]*pendingPing
	stats   Stats
	// Unreachable, when non-nil, observes received destination-
	// unreachable messages (src, code).
	Unreachable func(src ip.Addr, code byte)
}

type pendingPing struct {
	sentAt sim.Time
	cb     func(ok bool, rtt sim.Duration)
	timer  *timers.Timer
}

// New attaches an ICMP endpoint to ipl. Echo requests are answered
// automatically from then on, and if ipl forwards, TTL exhaustion emits
// time-exceeded messages back toward the source.
func New(s *sim.Scheduler, ipl *ip.IP, cfg Config) *ICMP {
	if cfg.PingTimeout == 0 {
		cfg.PingTimeout = 5 * time.Second
	}
	if cfg.Metrics == nil {
		cfg.Metrics = new(stats.ICMPMIB)
	}
	c := &ICMP{s: s, ipl: ipl, cfg: cfg, pending: make(map[uint32]*pendingPing)}
	ipl.Register(ip.ProtoICMP, c.receive)
	ipl.TimeExceeded = func(src ip.Addr, original []byte) {
		quote := original
		if len(quote) > 28 {
			quote = quote[:28]
		}
		c.stats.TimeExceededSent++
		c.send(src, TypeTimeExceeded, 0, 0, quote)
	}
	return c
}

// Stats returns a snapshot of the counters.
func (c *ICMP) Stats() Stats { return c.stats }

// Ping sends an echo request carrying payload and calls cb exactly once:
// with the round-trip time on reply, or ok=false on timeout.
func (c *ICMP) Ping(dst ip.Addr, id, seq uint16, payload []byte, cb func(ok bool, rtt sim.Duration)) {
	key := uint32(id)<<16 | uint32(seq)
	p := &pendingPing{sentAt: c.s.Now(), cb: cb}
	p.timer = timers.Start(c.s, func() {
		if c.pending[key] == p {
			delete(c.pending, key)
			cb(false, 0)
		}
	}, c.cfg.PingTimeout)
	c.pending[key] = p
	c.send(dst, TypeEcho, 0, key, payload)
}

// SendUnreachable emits a destination-unreachable toward dst quoting the
// first eight bytes of the offending transport payload, as UDP does for
// closed ports.
func (c *ICMP) SendUnreachable(dst ip.Addr, code byte, original []byte) {
	quote := original
	if len(quote) > 8 {
		quote = quote[:8]
	}
	c.stats.UnreachableSent++
	c.send(dst, TypeDestUnreachable, code, 0, quote)
}

func (c *ICMP) send(dst ip.Addr, typ, code byte, rest uint32, payload []byte) {
	pkt := basis.NewPacket(ip.Headroom+headerLen, ethernet.Tailroom, payload)
	h := pkt.Push(headerLen)
	h[0], h[1] = typ, code
	h[2], h[3] = 0, 0
	binary.BigEndian.PutUint32(h[4:8], rest)
	ck := ^checksum.SumWide(0, pkt.Bytes())
	binary.BigEndian.PutUint16(h[2:4], ck)
	m := c.cfg.Metrics
	m.OutMsgs.Inc()
	switch typ {
	case TypeEcho:
		m.OutEchos.Inc()
	case TypeEchoReply:
		m.OutEchoReps.Inc()
	case TypeDestUnreachable:
		m.OutDestUnreachs.Inc()
	case TypeTimeExceeded:
		m.OutTimeExcds.Inc()
	}
	c.cfg.Trace.Printf("tx type %d code %d to %s len %d", typ, code, dst, pkt.Len())
	c.ipl.Send(dst, ip.ProtoICMP, pkt)
}

func (c *ICMP) receive(src, dst ip.Addr, pkt *basis.Packet) {
	b := pkt.Bytes()
	c.cfg.Metrics.InMsgs.Inc()
	if len(b) < headerLen {
		c.stats.Malformed++
		c.cfg.Metrics.InErrors.Inc()
		return
	}
	if checksum.SumWide(0, b) != 0xffff {
		c.stats.BadChecksum++
		c.cfg.Metrics.InErrors.Inc()
		return
	}
	typ, code := b[0], b[1]
	rest := binary.BigEndian.Uint32(b[4:8])
	switch typ {
	case TypeEcho:
		c.stats.EchoRequests++
		c.cfg.Metrics.InEchos.Inc()
		c.cfg.Trace.Printf("echo request from %s, answering", src)
		c.send(src, TypeEchoReply, 0, rest, b[headerLen:])
	case TypeEchoReply:
		c.cfg.Metrics.InEchoReps.Inc()
		if p, ok := c.pending[rest]; ok {
			delete(c.pending, rest)
			p.timer.Clear()
			c.stats.EchoReplies++
			p.cb(true, sim.Duration(c.s.Now()-p.sentAt))
		}
	case TypeTimeExceeded:
		c.stats.TimeExceededRcvd++
		c.cfg.Metrics.InTimeExcds.Inc()
		c.cfg.Trace.Printf("time exceeded from %s", src)
	case TypeDestUnreachable:
		c.stats.UnreachableRecvd++
		c.cfg.Metrics.InDestUnreachs.Inc()
		c.cfg.Trace.Printf("destination unreachable (code %d) from %s", code, src)
		if c.Unreachable != nil {
			c.Unreachable(src, code)
		}
	default:
		c.cfg.Trace.Printf("type %d from %s ignored", typ, src)
	}
}
