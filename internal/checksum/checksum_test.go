package checksum

import (
	"testing"
	"testing/quick"
)

// refSum is an independent reference: big-endian 16-bit words summed into
// a wide accumulator, folded once at the end, odd byte padded with zero.
func refSum(initial uint16, data []byte) uint16 {
	sum := uint64(initial)
	for i := 0; i+2 <= len(data); i += 2 {
		sum += uint64(data[i])<<8 | uint64(data[i+1])
	}
	if len(data)%2 == 1 {
		sum += uint64(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return uint16(sum)
}

func TestRFC1071Example(t *testing.T) {
	// The worked example from RFC 1071 §3: words 0001 f203 f4f5 f6f7.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	const want = 0xddf2
	for name, f := range map[string]func(uint16, []byte) uint16{
		"fig10": SumFig10, "wide": SumWide, "naive": SumNaive, "ref": refSum,
	} {
		if got := f(0, data); got != want {
			t.Errorf("%s: sum = %#04x, want %#04x", name, got, want)
		}
	}
	if got := Checksum(data); got != ^uint16(want) {
		t.Errorf("Checksum = %#04x, want %#04x", got, ^uint16(want))
	}
}

func TestEmptyInput(t *testing.T) {
	if SumFig10(0x1234, nil) != 0x1234 {
		t.Error("fig10 changed sum on empty input")
	}
	if SumWide(0x1234, nil) != 0x1234 {
		t.Error("wide changed sum on empty input")
	}
	if SumNaive(0x1234, nil) != 0x1234 {
		t.Error("naive changed sum on empty input")
	}
}

func TestOddLengths(t *testing.T) {
	for n := 0; n <= 9; n++ {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(0x11 * (i + 1))
		}
		want := refSum(0, data)
		if got := SumFig10(0, data); got != want {
			t.Errorf("fig10 len %d: %#04x want %#04x", n, got, want)
		}
		if got := SumWide(0, data); got != want {
			t.Errorf("wide len %d: %#04x want %#04x", n, got, want)
		}
		if got := SumNaive(0, data); got != want {
			t.Errorf("naive len %d: %#04x want %#04x", n, got, want)
		}
	}
}

func TestAllOnesInput(t *testing.T) {
	// An all-0xff buffer sums to 0xffff (the one's-complement -0).
	data := make([]byte, 1024)
	for i := range data {
		data[i] = 0xff
	}
	if got := SumFig10(0, data); got != 0xffff {
		t.Errorf("fig10 = %#04x", got)
	}
	if got := SumWide(0, data); got != 0xffff {
		t.Errorf("wide = %#04x", got)
	}
}

func TestFold(t *testing.T) {
	cases := map[uint32]uint16{
		0:          0,
		0xffff:     0xffff,
		0x10000:    1,
		0x1fffe:    0xffff,
		0xffffffff: 0xffff,
		0x12345678: 0x68ac + 0, // 0x1234+0x5678 = 0x68ac
		0x0001ffff: 1,          // 0xffff+1 = 0x10000 -> fold again -> 1
	}
	for in, want := range cases {
		if got := Fold(in); got != want {
			t.Errorf("Fold(%#x) = %#04x, want %#04x", in, got, want)
		}
	}
}

// Property: all three implementations agree with the reference for random
// data and random nonzero initial sums.
func TestPropertyImplementationsAgree(t *testing.T) {
	f := func(initial uint16, data []byte) bool {
		want := refSum(initial, data)
		return SumFig10(initial, data) == want &&
			SumWide(initial, data) == want &&
			SumNaive(initial, data) == want
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: a receiver summing data whose checksum field was filled in by
// the sender obtains 0xffff.
func TestPropertyVerifyComplement(t *testing.T) {
	f := func(data []byte) bool {
		if len(data)%2 == 1 {
			data = append(data, 0) // field-bearing headers are even
		}
		buf := append([]byte{0, 0}, data...)
		ck := ^SumWide(0, buf)
		buf[0], buf[1] = byte(ck>>8), byte(ck)
		return SumWide(0, buf) == 0xffff
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAccumulatorMatchesContiguous(t *testing.T) {
	a := []byte("pseudo-hdr12") // 12 bytes, even
	b := []byte("tcp-header-20bytes!!")
	c := []byte("payload")
	var acc Accumulator
	acc.Add(a)
	acc.Add(b)
	acc.Add(c)
	all := append(append(append([]byte{}, a...), b...), c...)
	if acc.Partial() != refSum(0, all) {
		t.Fatalf("accumulator %#04x, contiguous %#04x", acc.Partial(), refSum(0, all))
	}
	if acc.Checksum() != ^refSum(0, all) {
		t.Fatal("Checksum not complement of Partial")
	}
}

// Property: splitting a buffer into arbitrary-length regions (odd lengths
// included) never changes the accumulated sum.
func TestPropertyAccumulatorSplitInvariant(t *testing.T) {
	f := func(data []byte, cuts []uint8) bool {
		var acc Accumulator
		rest := data
		for _, c := range cuts {
			if len(rest) == 0 {
				break
			}
			n := int(c) % (len(rest) + 1)
			acc.Add(rest[:n])
			rest = rest[n:]
		}
		acc.Add(rest)
		return acc.Partial() == refSum(0, data)
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestAccumulatorAddUint16(t *testing.T) {
	var acc Accumulator
	acc.AddUint16(0x1234)
	acc.AddUint16(0xffff)
	want := refSum(0, []byte{0x12, 0x34, 0xff, 0xff})
	if acc.Partial() != want {
		t.Fatalf("got %#04x want %#04x", acc.Partial(), want)
	}
}

func TestAccumulatorAddUint16PanicsAtOddOffset(t *testing.T) {
	var acc Accumulator
	acc.Add([]byte{1})
	defer func() {
		if recover() == nil {
			t.Fatal("AddUint16 at odd parity did not panic")
		}
	}()
	acc.AddUint16(7)
}

func TestLargeBufferRenormalization(t *testing.T) {
	// Exceed the Figure 10 renormalization chunk to exercise that path.
	data := make([]byte, renormalizeEvery*2+6)
	for i := range data {
		data[i] = byte(i * 7)
	}
	want := refSum(0, data)
	if got := SumFig10(0, data); got != want {
		t.Fatalf("fig10 on %d bytes: %#04x want %#04x", len(data), got, want)
	}
}
