// Package checksum implements the Internet checksum (RFC 1071) three ways,
// reproducing the paper's §5 checksum study:
//
//   - SumFig10: the paper's Figure 10 inner loop — 4-byte loads whose two
//     16-bit halves are accumulated into a 32-bit sum, letting up to 16
//     bits of carries collect in the top half before renormalizing. This
//     is the "optimized using the techniques described by Braden, Borman,
//     and Partridge [RFC 1071]" routine the paper clocked at 343 µs/KB.
//   - SumWide: the natural widening of the same idea to 8-byte loads and a
//     64-bit accumulator (the staging the paper expected of a better code
//     generator).
//   - SumNaive: a 16-bit-word-at-a-time loop with per-addition carry
//     folding — "a slower algorithm", standing in for the x-kernel routine
//     the paper clocked at 375 µs/KB.
//
// All three agree on all inputs (a property test enforces it). The
// protocol stack computes checksums through an Accumulator so that the
// pseudo-header, the transport header, and the payload are summed in place
// without being copied into one buffer.
package checksum

import "encoding/binary"

// Fold reduces a 32-bit partial one's-complement sum to 16 bits.
//
//foxvet:hotpath
func Fold(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return uint16(sum)
}

// renormalizeEvery bounds how many bytes the Figure 10 loop consumes
// between renormalizations, honoring the paper's requirement that "no more
// than 2^16 2-byte quantities are summed" while carries collect in the top
// half of the accumulator.
const renormalizeEvery = 1 << 16

// SumFig10 returns the folded (not inverted) one's-complement sum of data
// added to the folded partial sum initial, using the paper's Figure 10
// loop: 4 bytes per iteration, high and low halves accumulated separately,
// odd bytes handled outside the loop.
//
//foxvet:hotpath
func SumFig10(initial uint16, data []byte) uint16 {
	sum := uint32(initial)
	for len(data) >= renormalizeEvery {
		sum = uint32(Fold(fig10Words(sum, data[:renormalizeEvery])))
		data = data[renormalizeEvery:]
	}
	limit := len(data) &^ 3
	sum = fig10Words(sum, data[:limit])
	// "check odd bytes, renormalize" — the code outside the loop.
	switch len(data) - limit {
	case 1:
		sum += uint32(data[limit]) << 8
	case 2:
		sum += uint32(binary.BigEndian.Uint16(data[limit:]))
	case 3:
		sum += uint32(binary.BigEndian.Uint16(data[limit:]))
		sum += uint32(data[limit+2]) << 8
	}
	return Fold(sum)
}

// fig10Words is the word_check loop of Figure 10: n and limit are
// multiples of 4; each 4-byte load contributes its two 16-bit halves.
//
//foxvet:hotpath
func fig10Words(sum uint32, data []byte) uint32 {
	for n := 0; n+4 <= len(data); n += 4 {
		byte4 := binary.BigEndian.Uint32(data[n:])
		low := byte4 & 0xffff
		high := byte4 >> 16
		sum += high + low
	}
	return sum
}

// SumWide returns the folded (not inverted) one's-complement sum of data
// added to initial, using 8-byte loads into a 64-bit accumulator.
//
//foxvet:hotpath
func SumWide(initial uint16, data []byte) uint16 {
	sum := uint64(initial)
	n := 0
	for ; n+8 <= len(data); n += 8 {
		w := binary.BigEndian.Uint64(data[n:])
		sum += w>>48 + w>>32&0xffff + w>>16&0xffff + w&0xffff
	}
	for ; n+2 <= len(data); n += 2 {
		sum += uint64(binary.BigEndian.Uint16(data[n:]))
	}
	if n < len(data) {
		sum += uint64(data[n]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return uint16(sum)
}

// SumNaive returns the folded (not inverted) one's-complement sum of data
// added to initial, two bytes at a time with a carry fold after every
// addition — the "slower algorithm".
//
//foxvet:hotpath
func SumNaive(initial uint16, data []byte) uint16 {
	sum := uint32(initial)
	n := 0
	for ; n+2 <= len(data); n += 2 {
		sum += uint32(data[n])<<8 | uint32(data[n+1])
		for sum > 0xffff {
			sum = sum&0xffff + 1
		}
	}
	if n < len(data) {
		sum += uint32(data[n]) << 8
		for sum > 0xffff {
			sum = sum&0xffff + 1
		}
	}
	return uint16(sum)
}

// Checksum returns the Internet checksum of data: the bitwise complement
// of the one's-complement sum, as stored in IP/TCP/UDP header fields.
//
//foxvet:hotpath
func Checksum(data []byte) uint16 {
	return ^SumWide(0, data)
}

// Accumulator sums discontiguous byte regions — pseudo-header, transport
// header, payload — without copying them together. Regions may have odd
// length; the accumulator tracks byte parity so pairing stays correct
// across region boundaries.
//
// The zero value is an empty accumulator.
type Accumulator struct {
	sum uint16
	odd bool
}

// Add folds the bytes of data into the running sum.
//
//foxvet:hotpath
func (a *Accumulator) Add(data []byte) {
	if len(data) == 0 {
		return
	}
	if a.odd {
		// The pending odd byte from the previous region pairs with our
		// first byte as the low half of a 16-bit word; Sum* already added
		// it shifted high, so only the low byte remains to add.
		a.sum = Fold(uint32(a.sum) + uint32(data[0]))
		data = data[1:]
		a.odd = false
	}
	a.sum = SumWide(a.sum, data)
	if len(data)%2 == 1 {
		a.odd = true
	}
}

// AddUint16 folds one big-endian 16-bit value into the running sum. It
// panics if called at odd byte parity — header fields are word-aligned.
//
//foxvet:hotpath
func (a *Accumulator) AddUint16(v uint16) {
	if a.odd {
		panic("checksum: AddUint16 at odd offset")
	}
	a.sum = Fold(uint32(a.sum) + uint32(v))
}

// Partial returns the folded, non-inverted sum so far — the form the
// paper's IP_AUX "check" function returns for the pseudo-header.
func (a *Accumulator) Partial() uint16 { return a.sum }

// Checksum returns the complement of the sum: the header field value.
// An all-zero sum complements to 0xffff; UDP's convention that a computed
// zero checksum is transmitted as 0xffff is the caller's concern.
func (a *Accumulator) Checksum() uint16 { return ^a.sum }
