package telemetry

import "testing"

// The bucket math is a pure function of the value, so its contract is
// pinned exactly: every value lands in a bucket whose bounds bracket
// it, the mapping is monotone, and the sub-bucket resolution caps the
// relative error at 1/histSub.

func TestBucketBoundariesExact(t *testing.T) {
	// The exact region and the first octave transitions, pinned by hand.
	cases := []struct {
		v   uint64
		idx int
	}{
		{0, 0}, {1, 1}, {15, 15}, // exact unit buckets
		{16, 16}, {31, 31}, // first octave: still exact (shift is 0)
		{32, 32}, {33, 32}, {34, 33}, // second octave: pairs share a bucket
		{63, 47}, {64, 48},
		{1023, 16 + 5*16 + 15}, {1024, 16 + 6*16},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.idx {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.idx)
		}
	}
}

func TestBucketBoundariesBracket(t *testing.T) {
	for v := uint64(0); v <= 1<<16; v++ {
		i := bucketIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		if upper := bucketUpper(i); v > upper {
			t.Fatalf("value %d above its bucket %d upper bound %d", v, i, upper)
		}
		if i > 0 {
			if lower := bucketUpper(i - 1); v <= lower {
				t.Fatalf("value %d not above bucket %d's predecessor bound %d", v, i, lower)
			}
		}
	}
	// Monotone and contiguous: each bucket's upper strictly grows.
	for i := 1; i < histBuckets; i++ {
		if bucketUpper(i) <= bucketUpper(i-1) {
			t.Fatalf("bucketUpper not monotone at %d: %d <= %d", i, bucketUpper(i), bucketUpper(i-1))
		}
	}
	// Extremes stay in range.
	if i := bucketIndex(1<<64 - 1); i != histBuckets-1 {
		t.Fatalf("max uint64 lands in bucket %d, want %d", i, histBuckets-1)
	}
}

func TestBucketRelativeError(t *testing.T) {
	for v := uint64(histSub); v <= 1<<20; v += 137 {
		upper := bucketUpper(bucketIndex(v))
		if err := float64(upper-v) / float64(v); err > 1.0/histSub {
			t.Fatalf("value %d reported as %d: relative error %.4f > %.4f", v, upper, err, 1.0/histSub)
		}
	}
}

// TestQuantileGoldens pins the exact percentile answers for 1..1000 —
// the deterministic-extraction contract the exporter depends on.
func TestQuantileGoldens(t *testing.T) {
	var h Hist
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	want := map[string]uint64{"count": 1000, "sum": 500500, "max": 1000}
	if h.Count() != want["count"] || h.Sum() != want["sum"] || h.Max() != want["max"] {
		t.Fatalf("count/sum/max = %d/%d/%d, want %d/%d/%d",
			h.Count(), h.Sum(), h.Max(), want["count"], want["sum"], want["max"])
	}
	goldens := []struct {
		q    float64
		want uint64
	}{
		{0.50, 511},  // rank 500 lands in bucket [496,511]
		{0.90, 927},  // rank 900 in [896,927]
		{0.99, 991},  // rank 990 in [960,991]
		{1.00, 1000}, // clamped to the exact max
	}
	for _, g := range goldens {
		if got := h.Quantile(g.q); got != g.want {
			t.Errorf("Quantile(%.2f) = %d, want %d", g.q, got, g.want)
		}
	}
	snap := h.Snapshot()
	if snap.P50 != 511 || snap.P90 != 927 || snap.P99 != 991 || snap.Max != 1000 {
		t.Errorf("snapshot %+v, want P50=511 P90=927 P99=991 Max=1000", snap)
	}
}

func TestQuantileSmallAndEmpty(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	h.Observe(7)
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 7 {
			t.Errorf("single-value Quantile(%v) = %d, want 7", q, got)
		}
	}
}
