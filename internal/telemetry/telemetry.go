// Package telemetry is the stack's observability plane: allocation-free
// latency histograms for the hot paths (segment RTT samples, the
// enqueue→perform gap at the executor's single door, user Read/Write
// completion), fixed-capacity per-connection time-series rings sampled
// in virtual time (cwnd, ssthresh, RTT estimators, flight size, windows,
// reassembly depth, memory-account charge), and a per-action executor
// profile attributing virtual and wall time to the paper's four modules
// — the Table 2 breakdown made continuous.
//
// Everything here is a pure observer with the same discipline the flight
// recorder meets: hooks read protocol state and mutate only atomics,
// never charge virtual time, never enqueue actions, never arm timers —
// so a telemetered run is bit-identical to the same run unobserved (the
// quasisync analyzer checks the structural half; the experiments
// package's overhead run checks the dynamic half). Every exported value
// is atomic, which is what lets foxstat -serve scrape a simulation
// while it runs: the exporter's goroutine reads histograms, rings, and
// profiles concurrently with the executor writing them.
package telemetry

import "sync/atomic"

// Options sizes a telemetry plane. Zero values take defaults.
type Options struct {
	// MaxConns bounds how many connections get a series ring; rings are
	// preallocated so attaching one is just claiming a slot (the HTTP
	// exporter may be walking the slice concurrently). Connections past
	// the bound keep their histograms and profile but drop their series,
	// counted in Dropped. Default 16.
	MaxConns int
	// SeriesCap is each ring's point capacity; the ring wraps, keeping
	// the newest SeriesCap samples. Default 512.
	SeriesCap int
	// SampleEveryNS is the minimum virtual time between two samples of
	// one connection, in nanoseconds. Sampling piggybacks on executor
	// activity — an idle connection takes no samples, and no timer is
	// ever armed for telemetry (a timer would perturb the run it
	// observes). Default 1 ms of virtual time.
	SampleEveryNS int64
}

func (o *Options) fill() {
	if o.MaxConns == 0 {
		o.MaxConns = 16
	}
	if o.SeriesCap == 0 {
		o.SeriesCap = 512
	}
	if o.SampleEveryNS == 0 {
		o.SampleEveryNS = 1_000_000
	}
}

// Telemetry is one endpoint's telemetry plane. All fields are safe for
// concurrent scraping while the simulation runs.
type Telemetry struct {
	opts Options

	// Action is the enqueue→perform latency at the executor's single
	// door, in virtual nanoseconds: how long a tcp_action waited on
	// to_do before the drain performed it.
	Action Hist
	// RTT holds raw segment round-trip samples (the measurements Karn's
	// rule admits into the Jacobson estimator), in virtual nanoseconds.
	RTT Hist
	// Read and Write are user-visible completion latencies in virtual
	// nanoseconds: the full span of one blocking Read or Write call,
	// queueing and flow-control stalls included.
	Read  Hist
	Write Hist

	// Prof attributes executor work per action kind and per module.
	Prof Prof

	nconns  atomic.Int64
	dropped atomic.Uint64
	series  []*Series
}

// New builds a telemetry plane with every ring preallocated, so the hot
// path never allocates and the exporter can walk series slots while the
// simulation claims them.
func New(o Options) *Telemetry {
	o.fill()
	t := &Telemetry{opts: o}
	t.series = make([]*Series, o.MaxConns)
	for i := range t.series {
		t.series[i] = newSeries(o.SeriesCap)
	}
	return t
}

// SampleEveryNS reports the sampling interval (virtual ns).
func (t *Telemetry) SampleEveryNS() int64 { return t.opts.SampleEveryNS }

// OpenSeries claims the next preallocated ring for a connection and
// names it. Returns nil when MaxConns rings are already claimed; the
// drop is counted. Called at connection creation, on the executor's
// thread.
func (t *Telemetry) OpenSeries(name string) *Series {
	i := t.nconns.Add(1) - 1
	if int(i) >= len(t.series) {
		t.dropped.Add(1)
		return nil
	}
	s := t.series[i]
	s.setName(name)
	return s
}

// Dropped reports how many connections wanted a series ring after the
// MaxConns slots were exhausted.
func (t *Telemetry) Dropped() uint64 { return t.dropped.Load() }

// Series returns the claimed rings, in claim order. Safe to call while
// the simulation runs: a ring whose name is still empty was claimed but
// not yet named and is skipped.
func (t *Telemetry) Series() []*Series {
	n := int(t.nconns.Load())
	if n > len(t.series) {
		n = len(t.series)
	}
	out := make([]*Series, 0, n)
	for _, s := range t.series[:n] {
		if s.Name() != "" {
			out = append(out, s)
		}
	}
	return out
}

// Lookup finds a claimed ring by connection name.
func (t *Telemetry) Lookup(name string) *Series {
	for _, s := range t.Series() {
		if s.Name() == name {
			return s
		}
	}
	return nil
}
