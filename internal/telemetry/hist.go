package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// HDR-style log-linear histogram: a fixed array of atomic buckets, no
// allocation ever, bounded relative error. Values below histSub land in
// exact unit buckets; above, every power-of-two range splits into
// histSub linear sub-buckets, so any recorded value is within 1/histSub
// (6.25%) of its bucket's upper bound. Quantile extraction walks the
// cumulative counts and answers with the bucket's upper bound — a
// deterministic function of the recorded multiset, which is what lets
// tests pin exact golden percentiles and lets two runs be compared
// digit-for-digit.

const (
	histSubBits = 4
	histSub     = 1 << histSubBits // exact buckets, and sub-buckets per octave
	// Octaves above the exact region: values occupy bit-lengths
	// histSubBits+1 … 64, one octave of histSub sub-buckets each.
	histBuckets = histSub + (64-histSubBits)*histSub
)

// bucketIndex maps a value to its bucket: v itself below histSub, else
// the (bit-length, top-histSubBits-of-mantissa) pair.
func bucketIndex(v uint64) int {
	if v < histSub {
		return int(v)
	}
	exp := bits.Len64(v) - 1               // v in [2^exp, 2^(exp+1))
	mant := v >> (uint(exp) - histSubBits) // in [histSub, 2*histSub)
	return (exp-histSubBits+1)*histSub + int(mant) - histSub
}

// bucketUpper is the largest value bucketIndex maps to bucket i — the
// value Quantile answers with.
func bucketUpper(i int) uint64 {
	if i < histSub {
		return uint64(i)
	}
	major := i / histSub // octave, ≥ 1
	pos := i % histSub
	return (uint64(pos)+histSub+1)<<(uint(major)-1) - 1
}

// Hist is an allocation-free histogram with atomic buckets. The zero
// value is ready to use.
type Hist struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value. Safe from the executor's hot path: three
// atomic adds and a CAS loop for the max, no allocation.
//
//foxvet:hotpath
func (h *Hist) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Count reports recorded observations; Sum their total; Max the exact
// largest value seen (not a bucket bound).
func (h *Hist) Count() uint64 { return h.count.Load() }
func (h *Hist) Sum() uint64   { return h.sum.Load() }
func (h *Hist) Max() uint64   { return h.max.Load() }

// Quantile answers the q-quantile (0 < q ≤ 1) as the upper bound of the
// bucket holding the rank-⌈q·count⌉ observation, clamped to the exact
// max so Quantile(1) == Max. Returns 0 on an empty histogram.
func (h *Hist) Quantile(q float64) uint64 {
	count := h.count.Load()
	if count == 0 {
		return 0
	}
	rank := uint64(q * float64(count))
	if float64(rank) < q*float64(count) {
		rank++ // ceil
	}
	if rank == 0 {
		rank = 1
	}
	if rank > count {
		rank = count
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			v := bucketUpper(i)
			if m := h.max.Load(); v > m {
				v = m
			}
			return v
		}
	}
	return h.max.Load()
}

// HistSnapshot is one histogram's summary at a point in time.
type HistSnapshot struct {
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	Max   uint64 `json:"max"`
	P50   uint64 `json:"p50"`
	P90   uint64 `json:"p90"`
	P99   uint64 `json:"p99"`
}

// Snapshot summarizes the histogram. The percentiles are each computed
// from a separate bucket walk, so under concurrent writes they reflect
// slightly different instants; on a quiesced histogram they are exact.
func (h *Hist) Snapshot() HistSnapshot {
	return HistSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
}
