package telemetry

import (
	"fmt"
	"io"
)

// Prometheus text exposition (version 0.0.4) for one telemetry plane.
// Histograms render as summaries (quantile series plus _count/_sum/_max)
// rather than 976-bucket histograms; the per-connection rings contribute
// their newest point as gauges, so a dashboard scraping /metrics sees
// cwnd and the estimators move without pulling whole series dumps.

type promHist struct {
	name, help string
	h          *Hist
}

// WriteMetrics renders the plane in Prometheus text format, labeling
// every series with host="hostLabel". Safe while the simulation runs.
// Label values render with %q: Go string quoting escapes the same
// characters the exposition format requires (backslash, quote,
// newline).
func (t *Telemetry) WriteMetrics(w io.Writer, hostLabel string) {
	host := hostLabel
	hists := []promHist{
		{"fox_action_latency_ns", "enqueue-to-perform latency at the executor's single door (virtual ns)", &t.Action},
		{"fox_rtt_sample_ns", "segment round-trip samples admitted to the RTT estimator (virtual ns)", &t.RTT},
		{"fox_read_latency_ns", "user Read completion latency (virtual ns)", &t.Read},
		{"fox_write_latency_ns", "user Write completion latency (virtual ns)", &t.Write},
	}
	for _, ph := range hists {
		s := ph.h.Snapshot()
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s summary\n", ph.name, ph.help, ph.name)
		fmt.Fprintf(w, "%s{host=%q,quantile=\"0.5\"} %d\n", ph.name, host, s.P50)
		fmt.Fprintf(w, "%s{host=%q,quantile=\"0.9\"} %d\n", ph.name, host, s.P90)
		fmt.Fprintf(w, "%s{host=%q,quantile=\"0.99\"} %d\n", ph.name, host, s.P99)
		fmt.Fprintf(w, "%s_count{host=%q} %d\n", ph.name, host, s.Count)
		fmt.Fprintf(w, "%s_sum{host=%q} %d\n", ph.name, host, s.Sum)
		fmt.Fprintf(w, "%s_max{host=%q} %d\n", ph.name, host, s.Max)
	}

	rep := t.Prof.Report()
	fmt.Fprintf(w, "# HELP fox_executor_actions_total actions performed by the quasi-synchronous executor\n# TYPE fox_executor_actions_total counter\n")
	for _, row := range rep.Actions {
		fmt.Fprintf(w, "fox_executor_actions_total{host=%q,action=%q} %d\n", host, row.Name, row.Count)
	}
	fmt.Fprintf(w, "# HELP fox_executor_virtual_ns_total virtual time attributed per module\n# TYPE fox_executor_virtual_ns_total counter\n")
	for _, row := range rep.Modules {
		fmt.Fprintf(w, "fox_executor_virtual_ns_total{host=%q,module=%q} %d\n", host, row.Name, row.VirtNS)
	}
	fmt.Fprintf(w, "# HELP fox_executor_wall_ns_total real CPU time attributed per module\n# TYPE fox_executor_wall_ns_total counter\n")
	for _, row := range rep.Modules {
		fmt.Fprintf(w, "fox_executor_wall_ns_total{host=%q,module=%q} %d\n", host, row.Name, row.WallNS)
	}

	series := t.Series()
	if len(series) == 0 {
		return
	}
	gauges := []struct {
		name string
		get  func(*Point) int64
	}{
		{"fox_conn_cwnd_bytes", func(p *Point) int64 { return p.Cwnd }},
		{"fox_conn_ssthresh_bytes", func(p *Point) int64 { return p.Ssthresh }},
		{"fox_conn_srtt_ns", func(p *Point) int64 { return p.SRTT }},
		{"fox_conn_rto_ns", func(p *Point) int64 { return p.RTO }},
		{"fox_conn_flight_bytes", func(p *Point) int64 { return p.Flight }},
		{"fox_conn_snd_wnd_bytes", func(p *Point) int64 { return p.SndWnd }},
		{"fox_conn_rcv_wnd_bytes", func(p *Point) int64 { return p.RcvWnd }},
		{"fox_conn_ooo_bytes", func(p *Point) int64 { return p.OOOBytes }},
		{"fox_conn_mem_used_bytes", func(p *Point) int64 { return p.MemUsed }},
	}
	for _, g := range gauges {
		fmt.Fprintf(w, "# TYPE %s gauge\n", g.name)
		for _, sr := range series {
			if p, ok := sr.Last(); ok {
				fmt.Fprintf(w, "%s{host=%q,conn=%q} %d\n", g.name, host, sr.Name(), g.get(&p))
			}
		}
	}
}
