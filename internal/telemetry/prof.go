package telemetry

import "sync/atomic"

// The executor profiler: per-action-kind counts with accumulated
// virtual and wall time, rolled up to the paper's four synchronous
// modules. Virtual time says where the simulated machine's budget goes
// (the paper's Table 2 dimension); wall time says where this host's
// real CPU goes — the two diverge exactly where the simulation charges
// calibrated costs instead of measured ones.

// ActKind indexes the paper's tcp_action datatype (Fig. 8). The order
// matches internal/tcp's dispatch; the hot path passes the index, never
// a formatted name — Set_Timer(rexmit)-style labels allocate.
type ActKind int

const (
	ActProcessData ActKind = iota
	ActSendSegment
	ActUserData
	ActUserError
	ActSetTimer
	ActClearTimer
	ActTimerExpired
	ActMaybeSend
	ActCompleteOpen
	ActCompleteClose
	ActPeerClosed
	ActDeleteTCB
	NumActKinds
)

var actKindNames = [NumActKinds]string{
	"Process_Data", "Send_Segment", "User_Data", "User_Error",
	"Set_Timer", "Clear_Timer", "Timer_Expiration", "Maybe_Send",
	"Complete_Open", "Complete_Close", "Peer_Closed", "Delete_TCB",
}

func (k ActKind) String() string {
	if k < 0 || k >= NumActKinds {
		return "?"
	}
	return actKindNames[k]
}

// Module is one of the paper's synchronous modules.
type Module int

const (
	ModReceive Module = iota
	ModSend
	ModResend
	ModState
	NumModules
)

var moduleNames = [NumModules]string{"receive", "send", "resend", "state"}

func (m Module) String() string {
	if m < 0 || m >= NumModules {
		return "?"
	}
	return moduleNames[m]
}

// actModule attributes each action kind to the module that performs it:
// Process_Data and User_Data are the Receive module's intake and
// delivery; Send_Segment and Maybe_Send the Send module; the timer
// actions belong to the Resend module, which owns the timer machinery;
// the open/close/error/teardown actions are the State module's.
var actModule = [NumActKinds]Module{
	ActProcessData:   ModReceive,
	ActSendSegment:   ModSend,
	ActUserData:      ModReceive,
	ActUserError:     ModState,
	ActSetTimer:      ModResend,
	ActClearTimer:    ModResend,
	ActTimerExpired:  ModResend,
	ActMaybeSend:     ModSend,
	ActCompleteOpen:  ModState,
	ActCompleteClose: ModState,
	ActPeerClosed:    ModState,
	ActDeleteTCB:     ModState,
}

// ModuleOf reports which module performs an action kind.
func ModuleOf(k ActKind) Module { return actModule[k] }

// Prof accumulates executor attribution. All counters atomic; the zero
// value is ready.
type Prof struct {
	count [NumActKinds]atomic.Uint64
	virt  [NumActKinds]atomic.Int64
	wall  [NumActKinds]atomic.Int64
}

// Record attributes one performed action: virtNS of virtual time and
// wallNS of real time.
//
//foxvet:hotpath
func (p *Prof) Record(k ActKind, virtNS, wallNS int64) {
	p.count[k].Add(1)
	p.virt[k].Add(virtNS)
	p.wall[k].Add(wallNS)
}

// Count reports performed actions of one kind.
func (p *Prof) Count(k ActKind) uint64 { return p.count[k].Load() }

// ProfRow is one attribution line.
type ProfRow struct {
	Name   string `json:"name"`
	Count  uint64 `json:"count"`
	VirtNS int64  `json:"virtual_ns"`
	WallNS int64  `json:"wall_ns"`
}

// ProfReport is the profiler's snapshot: per action kind, and rolled up
// per module. Kinds with zero count are omitted.
type ProfReport struct {
	Actions []ProfRow `json:"actions"`
	Modules []ProfRow `json:"modules"`
}

// Report snapshots the profile.
func (p *Prof) Report() ProfReport {
	var rep ProfReport
	var mc [NumModules]uint64
	var mv, mw [NumModules]int64
	for k := ActKind(0); k < NumActKinds; k++ {
		c := p.count[k].Load()
		if c == 0 {
			continue
		}
		v, w := p.virt[k].Load(), p.wall[k].Load()
		rep.Actions = append(rep.Actions, ProfRow{
			Name: k.String(), Count: c, VirtNS: v, WallNS: w,
		})
		m := actModule[k]
		mc[m] += c
		mv[m] += v
		mw[m] += w
	}
	for m := Module(0); m < NumModules; m++ {
		if mc[m] == 0 {
			continue
		}
		rep.Modules = append(rep.Modules, ProfRow{
			Name: m.String(), Count: mc[m], VirtNS: mv[m], WallNS: mw[m],
		})
	}
	return rep
}
