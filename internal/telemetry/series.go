package telemetry

import "sync/atomic"

// Point is one sample of a connection's protocol state, taken on the
// executor's thread at virtual time At. Fields are int64 so a point is
// exactly one ring slot; durations are virtual nanoseconds.
type Point struct {
	At       int64 `json:"at_ns"`
	Cwnd     int64 `json:"cwnd"`
	Ssthresh int64 `json:"ssthresh"`
	SRTT     int64 `json:"srtt_ns"`
	RTTVar   int64 `json:"rttvar_ns"`
	RTO      int64 `json:"rto_ns"`
	Flight   int64 `json:"flight"`    // bytes sent, unacknowledged
	SndWnd   int64 `json:"snd_wnd"`   // peer's advertised window
	RcvWnd   int64 `json:"rcv_wnd"`   // our advertised window
	OOOBytes int64 `json:"ooo_bytes"` // reassembly-queue depth (incl. overhead)
	MemUsed  int64 `json:"mem_used"`  // endpoint memory-account charge
}

const pointFields = 11

func (p *Point) arr() [pointFields]int64 {
	return [pointFields]int64{
		p.At, p.Cwnd, p.Ssthresh, p.SRTT, p.RTTVar, p.RTO,
		p.Flight, p.SndWnd, p.RcvWnd, p.OOOBytes, p.MemUsed,
	}
}

func pointFromArr(a *[pointFields]int64) Point {
	return Point{
		At: a[0], Cwnd: a[1], Ssthresh: a[2], SRTT: a[3], RTTVar: a[4],
		RTO: a[5], Flight: a[6], SndWnd: a[7], RcvWnd: a[8],
		OOOBytes: a[9], MemUsed: a[10],
	}
}

// slot is one ring entry. Fields are individually atomic so the HTTP
// exporter can read a ring the executor is writing without a data race;
// the seqlock below is what makes the read consistent, not just safe.
type slot [pointFields]atomic.Int64

// Series is a fixed-capacity time-series ring for one connection. One
// writer (the executor that owns the connection), any number of
// concurrent readers. Writes publish under a seqlock: ver is odd while
// a slot is being written, and readers retry until they observe a quiet
// interval — so a scrape taken mid-append never shows a half-written
// point, even when the ring has wrapped.
type Series struct {
	name atomic.Pointer[string]
	n    atomic.Uint64 // total points ever appended
	ver  atomic.Uint64 // seqlock version
	// lastAt is writer-private pacing state (virtual time of the last
	// sample); only the owning executor touches it.
	lastAt int64
	buf    []slot
}

func newSeries(capacity int) *Series {
	return &Series{buf: make([]slot, capacity)}
}

func (s *Series) setName(name string) { s.name.Store(&name) }

// Name reports the connection this ring samples; empty until claimed.
func (s *Series) Name() string {
	if p := s.name.Load(); p != nil {
		return *p
	}
	return ""
}

// Total reports how many points were ever appended (≥ what the ring
// still holds once it wraps).
func (s *Series) Total() uint64 { return s.n.Load() }

// Cap reports the ring capacity.
func (s *Series) Cap() int { return len(s.buf) }

// Due reports whether a sample at virtual time at is due under the
// every-ns pacing. Writer-side state: call only from the executor.
//
//foxvet:hotpath
func (s *Series) Due(at, every int64) bool {
	return s.n.Load() == 0 || at-s.lastAt >= every
}

// Append writes one point, overwriting the oldest once the ring is
// full. Allocation-free; call only from the owning executor.
//
//foxvet:hotpath
func (s *Series) Append(p *Point) {
	n := s.n.Load()
	sl := &s.buf[n%uint64(len(s.buf))]
	a := p.arr()
	s.ver.Add(1) // odd: write in progress
	for i := range a {
		sl[i].Store(a[i])
	}
	s.n.Store(n + 1)
	s.ver.Add(1) // even: published
	s.lastAt = p.At
}

// Points snapshots the ring's contents, oldest first. Safe concurrently
// with Append: the seqlock retry loop rereads until it sees a version
// that was even and unchanged across the whole copy.
func (s *Series) Points() []Point {
	for {
		v := s.ver.Load()
		if v&1 != 0 {
			continue
		}
		n := s.n.Load()
		held := n
		if held > uint64(len(s.buf)) {
			held = uint64(len(s.buf))
		}
		out := make([]Point, 0, held)
		for i := uint64(0); i < held; i++ {
			idx := (n - held + i) % uint64(len(s.buf))
			var a [pointFields]int64
			for j := range a {
				a[j] = s.buf[idx][j].Load()
			}
			out = append(out, pointFromArr(&a))
		}
		if s.ver.Load() == v {
			return out
		}
	}
}

// Last returns the newest point, if any.
func (s *Series) Last() (Point, bool) {
	pts := s.Points()
	if len(pts) == 0 {
		return Point{}, false
	}
	return pts[len(pts)-1], true
}
