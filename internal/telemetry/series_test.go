package telemetry

import (
	"sync/atomic"
	"testing"
)

func TestSeriesWraparound(t *testing.T) {
	s := newSeries(4)
	s.setName("c")
	for i := 1; i <= 6; i++ {
		s.Append(&Point{At: int64(i), Cwnd: int64(i * 100)})
	}
	if s.Total() != 6 {
		t.Fatalf("Total = %d, want 6", s.Total())
	}
	pts := s.Points()
	if len(pts) != 4 {
		t.Fatalf("Points returned %d, want capacity 4", len(pts))
	}
	for i, p := range pts { // oldest first: 3,4,5,6
		want := int64(i + 3)
		if p.At != want || p.Cwnd != want*100 {
			t.Errorf("point %d = {At:%d Cwnd:%d}, want {%d %d}", i, p.At, p.Cwnd, want, want*100)
		}
	}
	if last, ok := s.Last(); !ok || last.At != 6 {
		t.Errorf("Last = %+v ok=%v, want At=6", last, ok)
	}
}

func TestSeriesShortFill(t *testing.T) {
	s := newSeries(8)
	s.setName("c")
	if _, ok := s.Last(); ok {
		t.Error("Last on empty series should report !ok")
	}
	s.Append(&Point{At: 10})
	s.Append(&Point{At: 20})
	pts := s.Points()
	if len(pts) != 2 || pts[0].At != 10 || pts[1].At != 20 {
		t.Fatalf("Points = %+v, want [{At:10} {At:20}]", pts)
	}
}

func TestSeriesDuePacing(t *testing.T) {
	s := newSeries(4)
	s.setName("c")
	const every = 1000
	if !s.Due(5, every) {
		t.Fatal("first sample is always due")
	}
	s.Append(&Point{At: 5})
	if s.Due(5+every-1, every) {
		t.Error("sample inside the interval should not be due")
	}
	if !s.Due(5+every, every) {
		t.Error("sample one interval later should be due")
	}
}

// TestSeriesSeqlockConsistency hammers the ring from a writer goroutine
// while readers snapshot it: every returned point must be internally
// consistent (all fields written together), which is the seqlock's
// whole job. Run with -race this also proves the ring is scrape-safe.
func TestSeriesSeqlockConsistency(t *testing.T) {
	s := newSeries(8)
	s.setName("c")
	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := int64(1); !stop.Load(); i++ {
			// Every field carries the same value, so a torn read shows.
			s.Append(&Point{
				At: i, Cwnd: i, Ssthresh: i, SRTT: i, RTTVar: i, RTO: i,
				Flight: i, SndWnd: i, RcvWnd: i, OOOBytes: i, MemUsed: i,
			})
		}
	}()
	for n := 0; n < 2000; n++ {
		for _, p := range s.Points() {
			if p.Cwnd != p.At || p.MemUsed != p.At || p.RTO != p.At {
				t.Fatalf("torn read: %+v", p)
			}
		}
		if p, ok := s.Last(); ok && (p.Cwnd != p.At || p.MemUsed != p.At) {
			t.Fatalf("torn Last: %+v", p)
		}
	}
	stop.Store(true)
	<-done
}
