package telemetry

import (
	"strings"
	"testing"
)

// TestTelemetryEmitNoAllocs proves the hot-path emit functions never
// allocate — the property the //foxvet:hotpath markers assert. One
// histogram observation, one profiler record, one pacing check, and one
// ring append per run: the full per-action telemetry cost.
func TestTelemetryEmitNoAllocs(t *testing.T) {
	tl := New(Options{})
	sr := tl.OpenSeries("conn")
	p := Point{At: 1, Cwnd: 4096}
	n := int64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		n++
		tl.Action.Observe(uint64(n))
		tl.RTT.Observe(uint64(n) * 1000)
		tl.Prof.Record(ActProcessData, n, n)
		if sr.Due(n*2_000_000, tl.SampleEveryNS()) {
			p.At = n * 2_000_000
			sr.Append(&p)
		}
	})
	if allocs != 0 {
		t.Fatalf("telemetry emit path allocates %.1f times per op, want 0", allocs)
	}
}

func TestOpenSeriesOverflow(t *testing.T) {
	tl := New(Options{MaxConns: 2})
	a := tl.OpenSeries("a")
	b := tl.OpenSeries("b")
	if a == nil || b == nil {
		t.Fatal("first MaxConns claims must succeed")
	}
	if c := tl.OpenSeries("c"); c != nil {
		t.Fatal("claim past MaxConns must return nil")
	}
	if tl.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", tl.Dropped())
	}
	if got := len(tl.Series()); got != 2 {
		t.Fatalf("Series lists %d rings, want 2", got)
	}
	if tl.Lookup("b") != b {
		t.Fatal("Lookup(b) should find the claimed ring")
	}
	if tl.Lookup("zzz") != nil {
		t.Fatal("Lookup of unknown name should be nil")
	}
}

func TestProfReportRollup(t *testing.T) {
	var p Prof
	p.Record(ActProcessData, 100, 10) // receive
	p.Record(ActProcessData, 200, 20) // receive
	p.Record(ActSendSegment, 50, 5)   // send
	p.Record(ActSetTimer, 30, 3)      // resend
	p.Record(ActCompleteOpen, 7, 1)   // state
	rep := p.Report()
	if len(rep.Actions) != 4 {
		t.Fatalf("Actions rows = %d, want 4 (zero-count kinds skipped)", len(rep.Actions))
	}
	byName := map[string]ProfRow{}
	for _, r := range rep.Modules {
		byName[r.Name] = r
	}
	recv := byName["receive"]
	if recv.Count != 2 || recv.VirtNS != 300 || recv.WallNS != 30 {
		t.Errorf("receive module = %+v, want count 2, virt 300, wall 30", recv)
	}
	if byName["state"].Count != 1 || byName["state"].VirtNS != 7 {
		t.Errorf("state module = %+v, want count 1, virt 7", byName["state"])
	}
	if p.Count(ActProcessData) != 2 {
		t.Errorf("Count(ActProcessData) = %d, want 2", p.Count(ActProcessData))
	}
}

func TestModuleOfCoversAllKinds(t *testing.T) {
	seen := map[Module]bool{}
	for k := ActKind(0); k < NumActKinds; k++ {
		m := ModuleOf(k)
		if m < 0 || m >= NumModules {
			t.Fatalf("ModuleOf(%v) = %d out of range", k, m)
		}
		seen[m] = true
		if k.String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if len(seen) != int(NumModules) {
		t.Errorf("only %d of %d modules have actions mapped", len(seen), NumModules)
	}
}

func TestWriteMetricsRendering(t *testing.T) {
	tl := New(Options{})
	tl.Action.Observe(100)
	tl.RTT.Observe(5000)
	tl.Prof.Record(ActProcessData, 100, 10)
	sr := tl.OpenSeries(`conn"1`)
	sr.Append(&Point{At: 1, Cwnd: 4096, RTO: 3_000_000})

	var b strings.Builder
	tl.WriteMetrics(&b, "host1")
	out := b.String()
	for _, want := range []string{
		`fox_action_latency_ns{host="host1",quantile="0.5"}`,
		`fox_rtt_sample_ns_count{host="host1"} 1`,
		`fox_executor_actions_total{host="host1",action="Process_Data"} 1`,
		`fox_executor_virtual_ns_total{host="host1",module="receive"} 100`,
		`fox_conn_cwnd_bytes{host="host1",conn="conn\"1"} 4096`,
		`fox_conn_rto_ns{host="host1",conn="conn\"1"} 3000000`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
