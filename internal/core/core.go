// Package core marks the location of the paper's primary contribution in
// this repository's layout. The structured TCP itself lives in
// repro/internal/tcp, named for what it is; DESIGN.md §4 records the
// mapping. Everything the paper's Figure 9 module graph names — Tcb,
// State, Receive, Send, Resend, Action, Main — is one file of that
// package, and the quasi-synchronous control structure, the test
// structure, and the fast paths are documented there.
package core
