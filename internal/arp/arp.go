// Package arp resolves IPv4 addresses to Ethernet addresses on the
// simulated segment. The paper's stack diagram does not discuss address
// resolution — on its two-DECstation testbed the peer's hardware address
// was configuration — but a standard stack over a multi-host Ethernet
// needs it, so this substrate implements RFC 826: a cache with aging,
// broadcast who-has requests with bounded retries, replies for the local
// address, and learning from observed traffic.
package arp

import (
	"encoding/binary"
	"time"

	"repro/internal/basis"
	"repro/internal/ethernet"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/timers"
)

const (
	packetLen  = 28
	opRequest  = 1
	opReply    = 2
	hwEthernet = 1
)

// Config parameterizes the resolver.
type Config struct {
	// RequestTimeout is how long to wait for a reply before retrying.
	// Default 1s.
	RequestTimeout sim.Duration
	// Retries is how many requests are sent before giving up. Default 3.
	Retries int
	// EntryTTL is how long a learned mapping stays valid. Default 10min.
	EntryTTL sim.Duration
	Trace    *basis.Tracer
	// Metrics is the resolver's counter group; fill allocates a detached
	// one when none is supplied.
	Metrics *stats.ARPMIB
}

func (c *Config) fill() {
	if c.RequestTimeout == 0 {
		c.RequestTimeout = time.Second
	}
	if c.Retries == 0 {
		c.Retries = 3
	}
	if c.EntryTTL == 0 {
		c.EntryTTL = 10 * time.Minute
	}
	if c.Metrics == nil {
		c.Metrics = new(stats.ARPMIB)
	}
}

// Stats counts resolver activity.
type Stats struct {
	RequestsSent    uint64
	RepliesSent     uint64
	RepliesReceived uint64
	Learned         uint64
	Failures        uint64
	Malformed       uint64
}

type entry struct {
	mac     ethernet.Addr
	expires sim.Time
}

type pending struct {
	waiters []func(ethernet.Addr, bool)
	tries   int
	timer   *timers.Timer
}

// ARP is one host's resolver.
type ARP struct {
	s       *sim.Scheduler
	eth     *ethernet.Ethernet
	localIP protocol.IPv4
	cfg     Config
	cache   map[protocol.IPv4]entry
	pending map[protocol.IPv4]*pending
	stats   Stats
}

// New attaches a resolver for localIP to eth.
func New(s *sim.Scheduler, eth *ethernet.Ethernet, localIP protocol.IPv4, cfg Config) *ARP {
	cfg.fill()
	a := &ARP{
		s: s, eth: eth, localIP: localIP, cfg: cfg,
		cache:   make(map[protocol.IPv4]entry),
		pending: make(map[protocol.IPv4]*pending),
	}
	eth.Register(ethernet.TypeARP, a.receive)
	return a
}

// Stats returns a snapshot of the counters.
func (a *ARP) Stats() Stats { return a.stats }

// AddStatic installs a permanent mapping.
func (a *ARP) AddStatic(addr protocol.IPv4, mac ethernet.Addr) {
	a.cache[addr] = entry{mac: mac, expires: sim.Time(1<<63 - 1)}
}

// Lookup returns the cached mapping, if fresh.
func (a *ARP) Lookup(addr protocol.IPv4) (ethernet.Addr, bool) {
	e, ok := a.cache[addr]
	if !ok || a.s.Now() >= e.expires {
		return ethernet.Addr{}, false
	}
	return e.mac, true
}

// Resolve delivers the hardware address for addr to ready. On a cache hit
// ready runs before Resolve returns; otherwise a broadcast request goes
// out and ready runs when the reply arrives, or with ok=false after the
// retry budget is exhausted. Multiple resolutions for one address share
// one request exchange.
func (a *ARP) Resolve(addr protocol.IPv4, ready func(mac ethernet.Addr, ok bool)) {
	if mac, ok := a.Lookup(addr); ok {
		ready(mac, true)
		return
	}
	if p, ok := a.pending[addr]; ok {
		p.waiters = append(p.waiters, ready)
		return
	}
	p := &pending{waiters: []func(ethernet.Addr, bool){ready}}
	a.pending[addr] = p
	a.sendRequest(addr, p)
}

func (a *ARP) sendRequest(addr protocol.IPv4, p *pending) {
	p.tries++
	a.stats.RequestsSent++
	a.cfg.Metrics.OutRequests.Inc()
	a.cfg.Trace.Printf("who-has %s (try %d)", addr, p.tries)
	a.send(opRequest, ethernet.Broadcast, ethernet.Addr{}, addr)
	p.timer = timers.Start(a.s, func() {
		if a.pending[addr] != p {
			return
		}
		if p.tries >= a.cfg.Retries {
			delete(a.pending, addr)
			a.stats.Failures++
			a.cfg.Metrics.Failures.Inc()
			a.cfg.Trace.Printf("resolution of %s failed after %d tries", addr, p.tries)
			for _, w := range p.waiters {
				w(ethernet.Addr{}, false)
			}
			return
		}
		a.sendRequest(addr, p)
	}, a.cfg.RequestTimeout)
}

func (a *ARP) send(op uint16, ethDst, tha ethernet.Addr, tpa protocol.IPv4) {
	pkt := basis.AllocPacket(ethernet.Headroom, ethernet.Tailroom, packetLen)
	b := pkt.Bytes()
	binary.BigEndian.PutUint16(b[0:2], hwEthernet)
	binary.BigEndian.PutUint16(b[2:4], ethernet.TypeIPv4)
	b[4], b[5] = 6, 4
	binary.BigEndian.PutUint16(b[6:8], op)
	sha := a.eth.LocalAddr()
	copy(b[8:14], sha[:])
	copy(b[14:18], a.localIP[:])
	copy(b[18:24], tha[:])
	copy(b[24:28], tpa[:])
	a.eth.Send(ethDst, ethernet.TypeARP, pkt)
}

func (a *ARP) receive(src, dst ethernet.Addr, pkt *basis.Packet) {
	b := pkt.Bytes()
	if len(b) < packetLen {
		a.stats.Malformed++
		a.cfg.Metrics.Malformed.Inc()
		return
	}
	if binary.BigEndian.Uint16(b[0:2]) != hwEthernet ||
		binary.BigEndian.Uint16(b[2:4]) != ethernet.TypeIPv4 ||
		b[4] != 6 || b[5] != 4 {
		a.stats.Malformed++
		a.cfg.Metrics.Malformed.Inc()
		return
	}
	op := binary.BigEndian.Uint16(b[6:8])
	var sha ethernet.Addr
	var spa, tpa protocol.IPv4
	copy(sha[:], b[8:14])
	copy(spa[:], b[14:18])
	copy(tpa[:], b[24:28])

	// Learn the sender's mapping from both requests and replies
	// (RFC 826's merge step).
	if !spa.IsUnspecified() {
		a.learn(spa, sha)
	}

	switch op {
	case opRequest:
		a.cfg.Metrics.InRequests.Inc()
		if tpa == a.localIP {
			a.stats.RepliesSent++
			a.cfg.Metrics.OutReplies.Inc()
			a.cfg.Trace.Printf("%s is-at %s (answering %s)", a.localIP, a.eth.LocalAddr(), spa)
			a.send(opReply, sha, sha, spa)
		}
	case opReply:
		a.stats.RepliesReceived++
		a.cfg.Metrics.InReplies.Inc()
	default:
		a.stats.Malformed++
		a.cfg.Metrics.Malformed.Inc()
	}
}

func (a *ARP) learn(addr protocol.IPv4, mac ethernet.Addr) {
	if e, ok := a.cache[addr]; !ok || e.mac != mac || a.s.Now() >= e.expires {
		a.stats.Learned++
		a.cfg.Metrics.Learned.Inc()
	}
	a.cache[addr] = entry{mac: mac, expires: a.s.Now() + sim.Time(a.cfg.EntryTTL)}
	if p, ok := a.pending[addr]; ok {
		delete(a.pending, addr)
		p.timer.Clear()
		for _, w := range p.waiters {
			w(mac, true)
		}
	}
}
