package arp_test

import (
	"testing"
	"time"

	"repro/internal/arp"
	"repro/internal/ethernet"
	"repro/internal/ip"
	"repro/internal/sim"
	"repro/internal/wire"
)

type node struct {
	eth *ethernet.Ethernet
	arp *arp.ARP
	ipA ip.Addr
	mac ethernet.Addr
}

func runARP(t *testing.T, n int, cfg arp.Config, body func(s *sim.Scheduler, nodes []node)) {
	t.Helper()
	s := sim.New(sim.Config{})
	s.Run(func() {
		seg := wire.NewSegment(s, wire.Config{}, nil)
		nodes := make([]node, n)
		for i := range nodes {
			mac := ethernet.HostAddr(byte(i + 1))
			addr := ip.HostAddr(byte(i + 1))
			eth := ethernet.New(seg.NewPort(addr.String(), nil), mac, ethernet.Config{})
			nodes[i] = node{eth: eth, arp: arp.New(s, eth, addr, cfg), ipA: addr, mac: mac}
		}
		body(s, nodes)
	})
}

func TestResolveViaRequestReply(t *testing.T) {
	runARP(t, 2, arp.Config{}, func(s *sim.Scheduler, n []node) {
		var got ethernet.Addr
		var ok bool
		done := false
		n[0].arp.Resolve(n[1].ipA, func(mac ethernet.Addr, o bool) { got, ok, done = mac, o, true })
		s.Sleep(100 * time.Millisecond)
		if !done || !ok {
			t.Fatalf("resolution did not complete: done=%v ok=%v", done, ok)
		}
		if got != n[1].mac {
			t.Fatalf("resolved %s, want %s", got, n[1].mac)
		}
	})
}

func TestStaticEntryAnswersImmediately(t *testing.T) {
	runARP(t, 2, arp.Config{}, func(s *sim.Scheduler, n []node) {
		n[0].arp.AddStatic(n[1].ipA, n[1].mac)
		answered := false
		n[0].arp.Resolve(n[1].ipA, func(mac ethernet.Addr, ok bool) {
			if !ok || mac != n[1].mac {
				t.Errorf("static resolve = %s,%v", mac, ok)
			}
			answered = true
		})
		if !answered {
			t.Fatal("static entry required network round trip")
		}
		if n[0].arp.Stats().RequestsSent != 0 {
			t.Fatal("static hit still sent a request")
		}
	})
}

func TestConcurrentResolutionsShareOneExchange(t *testing.T) {
	runARP(t, 2, arp.Config{}, func(s *sim.Scheduler, n []node) {
		answers := 0
		for i := 0; i < 5; i++ {
			n[0].arp.Resolve(n[1].ipA, func(mac ethernet.Addr, ok bool) {
				if ok {
					answers++
				}
			})
		}
		s.Sleep(100 * time.Millisecond)
		if answers != 5 {
			t.Fatalf("answers = %d", answers)
		}
		if reqs := n[0].arp.Stats().RequestsSent; reqs != 1 {
			t.Fatalf("requests = %d, want 1", reqs)
		}
	})
}

func TestRetryThenFailure(t *testing.T) {
	runARP(t, 1, arp.Config{RequestTimeout: 100 * time.Millisecond, Retries: 4}, func(s *sim.Scheduler, n []node) {
		var failed bool
		var failedAt sim.Time
		n[0].arp.Resolve(ip.HostAddr(250), func(mac ethernet.Addr, ok bool) {
			failed = !ok
			failedAt = s.Now()
		})
		s.Sleep(5 * time.Second)
		if !failed {
			t.Fatal("resolution of absent host did not fail")
		}
		if n[0].arp.Stats().RequestsSent != 4 {
			t.Fatalf("requests = %d, want 4", n[0].arp.Stats().RequestsSent)
		}
		if failedAt < sim.Time(400*time.Millisecond) {
			t.Fatalf("failed too early: %v", time.Duration(failedAt))
		}
	})
}

func TestTargetLearnsRequesterFromRequest(t *testing.T) {
	runARP(t, 2, arp.Config{}, func(s *sim.Scheduler, n []node) {
		n[0].arp.Resolve(n[1].ipA, func(ethernet.Addr, bool) {})
		s.Sleep(100 * time.Millisecond)
		// RFC 826 merge: the answering host should now know the asker
		// without any request of its own.
		if mac, ok := n[1].arp.Lookup(n[0].ipA); !ok || mac != n[0].mac {
			t.Fatalf("target did not learn requester: %s,%v", mac, ok)
		}
		if n[1].arp.Stats().RequestsSent != 0 {
			t.Fatal("target sent an unnecessary request")
		}
	})
}

func TestEntryExpires(t *testing.T) {
	runARP(t, 2, arp.Config{EntryTTL: time.Second}, func(s *sim.Scheduler, n []node) {
		n[0].arp.Resolve(n[1].ipA, func(ethernet.Addr, bool) {})
		s.Sleep(100 * time.Millisecond)
		if _, ok := n[0].arp.Lookup(n[1].ipA); !ok {
			t.Fatal("fresh entry missing")
		}
		s.Sleep(2 * time.Second)
		if _, ok := n[0].arp.Lookup(n[1].ipA); ok {
			t.Fatal("entry survived past its TTL")
		}
	})
}

func TestThirdPartyDoesNotAnswer(t *testing.T) {
	runARP(t, 3, arp.Config{}, func(s *sim.Scheduler, n []node) {
		n[0].arp.Resolve(n[1].ipA, func(ethernet.Addr, bool) {})
		s.Sleep(100 * time.Millisecond)
		if n[2].arp.Stats().RepliesSent != 0 {
			t.Fatal("bystander answered a request for another host")
		}
		// But the bystander heard the broadcast and learned the asker.
		if _, ok := n[2].arp.Lookup(n[0].ipA); !ok {
			t.Fatal("bystander did not learn from broadcast")
		}
	})
}
