// Package protocol defines the generic interfaces every layer of the
// stack satisfies — the Go rendering of the paper's PROTOCOL signature
// (Fig. 2) and of the auxiliary IP_AUX signature (Fig. 5) that TCP and UDP
// require of whatever layer they run over.
//
// In SML the Fox Project derived per-protocol signatures from one generic
// PROTOCOL signature and let the compiler verify every functor
// composition. Go's analogue: each layer exposes concrete types, and the
// compositional seams are small interfaces defined here. A transport
// (TCP or UDP) is a "functor" over any Network — internal/ip provides one
// per IP protocol number, and internal/ethernet's Transport adapter
// provides one directly over the link layer, which is how the paper's
// Fig. 3 Special_Tcp (TCP over Ethernet, no IP) is assembled.
package protocol

import "repro/internal/basis"

// Address identifies a peer at some layer. Dynamic types must be
// comparable so addresses can key Go maps — the role of the paper's
// hash/eq functions in IP_AUX.
type Address interface {
	String() string
}

// Handler is the upcall type: received data is delivered to a higher
// layer by calling the higher layer's handler ("upcalls", Clark, cited by
// the paper as a design it adopts from the x-kernel).
type Handler func(src Address, pkt *basis.Packet)

// Network is what a transport protocol needs from the layer below it —
// the union of the paper's `Lower: PROTOCOL` and `Aux: IP_AUX` functor
// parameters (Figs. 4 and 5). internal/ip implements it for IPv4;
// internal/ethernet implements it for raw Ethernet.
type Network interface {
	// LocalAddr is this host's address at the lower layer.
	LocalAddr() Address

	// Attach installs the upcall for every inbound packet carried for
	// the attached transport; src is the sender's lower-layer address
	// (the info function of IP_AUX).
	Attach(h Handler)

	// Send transmits pkt to dst. pkt must have been allocated with at
	// least Headroom bytes of headroom and TailRoom bytes of tailroom.
	Send(dst Address, pkt *basis.Packet) error

	// MTU is the largest packet Send accepts without fragmentation at
	// this layer (the mtu function of IP_AUX).
	MTU() int

	// Headroom and Tailroom are the header/trailer bytes this layer and
	// everything below it will claim, so the transport can allocate
	// single-copy packets.
	Headroom() int
	Tailroom() int

	// PseudoHeaderChecksum returns the folded, non-inverted partial
	// checksum of the layer's pseudo-header for a segment of `length`
	// transport bytes to dst — the "check" function of IP_AUX. Layers
	// without a pseudo-header (raw Ethernet) return 0.
	PseudoHeaderChecksum(dst Address, length int) uint16
}

// Protocol is the minimal generic face every configured layer presents,
// used by tooling that walks an assembled stack.
type Protocol interface {
	Name() string
	MTU() int
}
