package protocol

import "fmt"

// IPv4 is an IPv4 address. It lives here — not in internal/ip — because
// it is part of the compositional vocabulary of the stack: ARP resolves
// IPv4 addresses to link addresses from *below* IP in the Fig. 9 module
// graph, so the address type must sit in the shared signature layer or
// arp would have to import upward. internal/ip aliases it as ip.Addr.
type IPv4 [4]byte

// String formats the address in dotted decimal.
func (a IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// UnspecifiedIPv4 is the zero address 0.0.0.0.
var UnspecifiedIPv4 = IPv4{}

// LimitedBroadcastIPv4 is 255.255.255.255.
var LimitedBroadcastIPv4 = IPv4{255, 255, 255, 255}

// IsUnspecified reports whether a is 0.0.0.0.
func (a IPv4) IsUnspecified() bool { return a == UnspecifiedIPv4 }

// Mask applies a netmask.
func (a IPv4) Mask(m IPv4) IPv4 {
	var r IPv4
	for i := range a {
		r[i] = a[i] & m[i]
	}
	return r
}

// SameSubnet reports whether a and b share the subnet defined by mask m.
func (a IPv4) SameSubnet(b, m IPv4) bool { return a.Mask(m) == b.Mask(m) }
