package flight

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// record a small journal exercising every record kind and cause kind.
func sampleJournal() *bytes.Buffer {
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	r.Hdr("host1", 1500, []byte(`{"initial_window":4096}`))
	op := r.UserOp(0, "10.0.0.2:80<->:49152", "open", 0)
	r.BeginUser(op)
	r.OpenConn(0, "10.0.0.2:80<->:49152", "active", "10.0.0.2", 80, 49152, true, false)
	enq1 := r.Enqueue(0, "10.0.0.2:80<->:49152", "Send_Segment", []byte("seq=1 flags=S"))
	r.EndCause()
	r.Beg(0, "10.0.0.2:80<->:49152", enq1)
	var d []byte
	d = AppendDelta(d, "snd_nxt", 1, 2)
	d = AppendDelta(d, "state", 0, 2)
	r.End("10.0.0.2:80<->:49152", enq1, d)
	r.BeginPkt(700, 2, 0x12, 65535, 0, 1460, 0)
	enq2 := r.Enqueue(10, "10.0.0.2:80<->:49152", "Process_Data", nil)
	r.EndCause()
	r.BeginAct(enq2)
	r.Enqueue(10, "10.0.0.2:80<->:49152", "Maybe_Send", nil)
	r.EndCause()
	r.BeginTimer(0)
	r.Enqueue(20, "10.0.0.2:80<->:49152", "Timer_Expiration(rexmit)", nil)
	r.EndCause()
	return &buf
}

func TestRoundTrip(t *testing.T) {
	buf := sampleJournal()
	recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(recs) != 9 {
		t.Fatalf("got %d records, want 9", len(recs))
	}
	if recs[0].Kind != KindHdr || recs[0].Host != "host1" || recs[0].MTU != 1500 {
		t.Errorf("bad hdr: %+v", recs[0])
	}
	if string(recs[0].Cfg) != `{"initial_window":4096}` {
		t.Errorf("bad cfg: %s", recs[0].Cfg)
	}
	if recs[1].Kind != KindUop || recs[1].Op != "open" || recs[1].Seq != 1 {
		t.Errorf("bad uop: %+v", recs[1])
	}
	if recs[2].Kind != KindOpen || recs[2].Origin != "active" || !recs[2].Pull || recs[2].Hop {
		t.Errorf("bad open: %+v", recs[2])
	}
	if recs[2].CK != CauseUser || recs[2].Cz != 1 {
		t.Errorf("open cause: %+v", recs[2])
	}
	if recs[3].Args != "seq=1 flags=S" {
		t.Errorf("enq args: %q", recs[3].Args)
	}
	if recs[4].Kind != KindBeg || recs[4].EqSeq != recs[3].Seq {
		t.Errorf("beg: %+v", recs[4])
	}
	end := recs[5]
	if end.Kind != KindEnd || end.Delta["snd_nxt"] != [2]int64{1, 2} || end.Delta["state"] != [2]int64{0, 2} {
		t.Errorf("end delta: %+v", end)
	}
	pkt := recs[6]
	if pkt.CK != CausePkt || pkt.PSeq != 700 || pkt.PAck != 2 || pkt.PFlag != 0x12 || pkt.PWnd != 65535 || pkt.PMSS != 1460 {
		t.Errorf("pkt cause: %+v", pkt)
	}
	if recs[7].CK != CauseAct || recs[7].Cz != pkt.Seq {
		t.Errorf("act cause: %+v", recs[7])
	}
	if recs[8].CK != CauseTimer || recs[8].Timer != 0 {
		t.Errorf("tmr cause: %+v", recs[8])
	}
}

func TestChain(t *testing.T) {
	buf := sampleJournal()
	recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Maybe_Send (seq 5) <- Process_Data (seq 4) <- packet.
	chain, err := Chain(recs, 5)
	if err != nil {
		t.Fatalf("Chain: %v", err)
	}
	if len(chain) != 2 || chain[0].Seq != 4 || chain[1].Seq != 5 {
		t.Fatalf("chain: %+v", chain)
	}
	if chain[0].CK != CausePkt {
		t.Errorf("root should be packet-caused: %+v", chain[0])
	}
	if _, err := Chain(recs, 999); err == nil {
		t.Error("Chain of unknown seq should fail")
	}
	var dot bytes.Buffer
	if err := Dot(&dot, recs); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"digraph flight", "n4 -> n5", "p4 -> n4", "Maybe_Send"} {
		if !strings.Contains(dot.String(), want) {
			t.Errorf("dot output missing %q:\n%s", want, dot.String())
		}
	}
}

func TestEscaping(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	r.Enqueue(1, `we"ird\name`+"\x01", "User_Error", []byte(`err="boom"`))
	recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if recs[0].Conn != `we"ird\name`+"\x01" {
		t.Errorf("conn round-trip: %q", recs[0].Conn)
	}
	if recs[0].Args != `err="boom"` {
		t.Errorf("args round-trip: %q", recs[0].Args)
	}
}

func TestCorruptionDetected(t *testing.T) {
	good := sampleJournal().Bytes()
	cases := map[string][]byte{
		"truncated tail":   good[:len(good)-5],
		"flipped byte":     append(append([]byte{}, good[:40]...), append([]byte{'x'}, good[41:]...)...),
		"bad length":       append([]byte("99999999999 "), good...),
		"missing newline":  bytes.Replace(good, []byte("\n"), []byte(" "), 1),
		"non-digit prefix": append([]byte("zz "), good...),
	}
	for name, data := range cases {
		if _, err := ReadAll(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
}

// A corrupted journal is reported with the exact frame offset and
// record index of the damage, not a bare error.
func TestCorruptionLocated(t *testing.T) {
	good := sampleJournal().Bytes()

	// Find the third record's frame offset by scanning the pristine
	// journal, then break that record's framing with a single bit flip
	// in its length prefix.
	sc := NewScanner(bytes.NewReader(good))
	var offsets []int64
	for {
		if _, err := sc.Next(); err != nil {
			break
		}
		offsets = append(offsets, sc.Offset())
	}
	if len(offsets) < 4 {
		t.Fatalf("sample journal too short: %d records", len(offsets))
	}
	target := offsets[2]
	bad := append([]byte(nil), good...)
	bad[target] ^= 0x40 // length digit -> non-digit: framing breaks here

	_, err := ReadAll(bytes.NewReader(bad))
	var c *Corruption
	if !errors.As(err, &c) {
		t.Fatalf("want *Corruption, got %v", err)
	}
	if c.Offset != target {
		t.Errorf("located offset %d, want %d", c.Offset, target)
	}
	if c.Index != 2 {
		t.Errorf("located record index %d, want 2", c.Index)
	}
	if !strings.Contains(c.Error(), "offset") {
		t.Errorf("error text should name the offset: %v", c)
	}

	// Records before the damage are still returned.
	recs, _ := ReadAll(bytes.NewReader(bad))
	if len(recs) != 2 {
		t.Errorf("got %d intact records before the damage, want 2", len(recs))
	}
}

// Sync forwards to writers that implement the Syncer seam and is a
// no-op for plain writers.
func TestSyncSeam(t *testing.T) {
	var plain bytes.Buffer
	r := NewRecorder(&plain)
	if err := r.Sync(); err != nil {
		t.Errorf("plain writer Sync: %v", err)
	}
	sw := &syncWriter{}
	r = NewRecorder(sw)
	r.Enqueue(0, "c", "Maybe_Send", nil)
	if err := r.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if sw.syncs != 1 {
		t.Errorf("syncs = %d, want 1", sw.syncs)
	}
	var nilRec *Recorder
	if err := nilRec.Sync(); err != nil {
		t.Errorf("nil recorder Sync: %v", err)
	}
}

type syncWriter struct {
	bytes.Buffer
	syncs int
}

func (s *syncWriter) Sync() error { s.syncs++; return nil }

func TestWriteErrorSticky(t *testing.T) {
	r := NewRecorder(failWriter{})
	r.Enqueue(0, "c", "Maybe_Send", nil)
	if r.Err() == nil {
		t.Fatal("write error not surfaced")
	}
	r.Enqueue(0, "c", "Maybe_Send", nil) // must not panic, stays failed
	if r.Err() == nil {
		t.Fatal("error not sticky")
	}
	var nilRec *Recorder
	if nilRec.Err() != nil {
		t.Fatal("nil recorder Err should be nil")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }

// The enabled steady-state emit path must not allocate: buffers are owned
// by the Recorder and reused. Warm up first so they reach working size.
func TestEmitNoAllocs(t *testing.T) {
	r := NewRecorder(io.Discard)
	args := []byte("seq=12345 flags=24 len=512 rexmits=0")
	var delta []byte
	delta = AppendDelta(delta, "snd_nxt", 100000, 100512)
	delta = AppendDelta(delta, "cwnd", 4096, 4632)
	conn := "10.0.0.2:80<->:49152"
	emit := func() {
		r.BeginPkt(1, 2, 0x10, 4096, 0, 0, 512)
		seq := r.Enqueue(12345, conn, "Process_Data", args)
		r.EndCause()
		r.BeginAct(seq)
		r.Enqueue(12345, conn, "Maybe_Send", nil)
		r.EndCause()
		r.Beg(12345, conn, seq)
		r.End(conn, seq, delta)
	}
	emit()
	if n := testing.AllocsPerRun(100, emit); n > 0 {
		t.Errorf("emit path allocates %v times per record batch", n)
	}
}
