package seal

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Ext is the journal segment file extension.
const Ext = ".fjl"

// SegmentName renders the canonical segment file name for a journal
// prefix (usually the host name): "<prefix>.0007.fjl".
func SegmentName(prefix string, seg int) string {
	return fmt.Sprintf("%s.%04d%s", prefix, seg, Ext)
}

// Source is one readable journal segment: a name for error reports and
// an opener, so verification can stream from files or memory alike.
type Source struct {
	Name string
	Open func() (io.ReadCloser, error)
}

// --- directory sink ------------------------------------------------------

// DirSink writes segments as files "<Prefix>.%04d.fjl" under Dir.
// Writes are buffered; the buffer reaches disk only on Sync, Close, or
// rotation — which is exactly why the Recorder's Sync seam matters: a
// process that drops its Writer without syncing loses the buffered
// tail, and the durability regression test proves it.
type DirSink struct {
	Dir    string
	Prefix string
}

func (s *DirSink) Next(seg int) (io.WriteCloser, error) {
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.Create(filepath.Join(s.Dir, SegmentName(s.Prefix, seg)))
	if err != nil {
		return nil, err
	}
	return &fileSegment{f: f, bw: bufio.NewWriterSize(f, 64<<10)}, nil
}

type fileSegment struct {
	f  *os.File
	bw *bufio.Writer
}

func (s *fileSegment) Write(p []byte) (int, error) { return s.bw.Write(p) }

func (s *fileSegment) Sync() error {
	if err := s.bw.Flush(); err != nil {
		return err
	}
	return s.f.Sync()
}

func (s *fileSegment) Close() error {
	if err := s.bw.Flush(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// --- in-memory sink ------------------------------------------------------

// MemSink keeps segments as in-memory buffers — the chaos soak and the
// overhead experiments use it so multi-segment journals need no
// filesystem.
type MemSink struct {
	Prefix string
	Segs   []*bytes.Buffer
}

func (s *MemSink) Next(seg int) (io.WriteCloser, error) {
	b := new(bytes.Buffer)
	s.Segs = append(s.Segs, b)
	return memSegment{b}, nil
}

type memSegment struct{ *bytes.Buffer }

func (memSegment) Close() error { return nil }

// Sources returns the sink's segments as verification sources.
func (s *MemSink) Sources() []Source {
	out := make([]Source, len(s.Segs))
	for i, b := range s.Segs {
		data := b.Bytes()
		out[i] = Source{
			Name: SegmentName(s.Prefix, i),
			Open: func() (io.ReadCloser, error) {
				return io.NopCloser(bytes.NewReader(data)), nil
			},
		}
	}
	return out
}

// --- discovery -----------------------------------------------------------

// Journal is one host's journal on disk: either a single unsealed
// "<prefix>.fjl" file or an ordered run of sealed "<prefix>.%04d.fjl"
// segments.
type Journal struct {
	Prefix string
	Files  []string // absolute paths in segment order
	Sealed bool     // true for rotated segment runs
}

// Sources returns the journal's files as verification sources.
func (j Journal) Sources() []Source {
	out := make([]Source, len(j.Files))
	for i, path := range j.Files {
		p := path
		out[i] = Source{
			Name: filepath.Base(p),
			Open: func() (io.ReadCloser, error) { return os.Open(p) },
		}
	}
	return out
}

// DiscoverDir finds every journal in a directory: *.fjl files are
// grouped by prefix, with "<prefix>.%04d.fjl" runs ordered by segment
// number. Journals come back sorted by prefix.
func DiscoverDir(dir string) ([]Journal, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type segFile struct {
		seg  int
		path string
	}
	sealed := map[string][]segFile{}
	var plain []Journal
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, Ext) {
			continue
		}
		base := strings.TrimSuffix(name, Ext)
		full := filepath.Join(dir, name)
		if prefix, seg, ok := splitSegName(base); ok {
			sealed[prefix] = append(sealed[prefix], segFile{seg, full})
		} else {
			plain = append(plain, Journal{Prefix: base, Files: []string{full}})
		}
	}
	var out []Journal
	for prefix, files := range sealed {
		sort.Slice(files, func(i, j int) bool { return files[i].seg < files[j].seg })
		j := Journal{Prefix: prefix, Sealed: true}
		for _, f := range files {
			j.Files = append(j.Files, f.path)
		}
		out = append(out, j)
	}
	out = append(out, plain...)
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix < out[j].Prefix })
	return out, nil
}

// splitSegName recognizes "<prefix>.%04d" segment basenames.
func splitSegName(base string) (prefix string, seg int, ok bool) {
	if len(base) < 6 || base[len(base)-5] != '.' {
		return "", 0, false
	}
	digits := base[len(base)-4:]
	n, err := strconv.Atoi(digits)
	if err != nil || len(strings.TrimLeft(digits, "0123456789")) != 0 {
		return "", 0, false
	}
	return base[:len(base)-5], n, true
}
