package seal

import (
	"crypto/sha256"
	"errors"
	"io"
	"strconv"

	"repro/internal/stats"
)

// Defaults for Options zero values.
const (
	DefaultBatchSize    = 256     // records per Merkle batch
	DefaultSegmentBytes = 4 << 20 // segment rotation threshold
)

// Options parameterizes a Writer. The zero value is usable: defaults
// fill in, time-based rotation stays off, and a private MIB group is
// allocated so increment sites never branch.
type Options struct {
	// BatchSize is the number of records per Merkle batch (default
	// DefaultBatchSize). Smaller batches seal more often — finer
	// tamper localization, more seal-record overhead.
	BatchSize int

	// SegmentBytes rotates the segment once it exceeds this size
	// (default DefaultSegmentBytes; negative disables size rotation).
	// Rotation happens only at batch boundaries, so every segment ends
	// with a seal and the chain can be verified segment by segment.
	SegmentBytes int64

	// SegmentTime rotates the segment once it has been open this long
	// on the Now clock (0 disables). Virtual nanoseconds in simulation.
	SegmentTime int64

	// Now is the clock for SegmentTime — the simulation's virtual
	// clock, so rotation is deterministic and replayable.
	Now func() int64

	// MIB receives the seal counters; nil allocates a private group.
	MIB *stats.SealMIB
}

// Sink opens segment files for a Writer. Next is called lazily: segment
// seg is opened when its first record arrives, never speculatively.
type Sink interface {
	Next(seg int) (io.WriteCloser, error)
}

// errBadFrame is the sticky error for a malformed frame handed to
// Write — it means the upstream Recorder and this Writer disagree about
// the journal format, which is unrecoverable.
var errBadFrame = errors.New("seal: malformed journal frame")

// Writer is the Merkle batcher: an io.Writer that sits between the
// flight Recorder and segment files. Each Write carries one
// length-prefixed journal frame (the Recorder emits exactly one frame
// per Write); the Writer hashes the record body into the current
// batch, copies the frame through to the active segment, and at every
// BatchSize-th record appends a seal record committing the batch's
// Merkle root into the hash chain. All buffers are Writer-owned and
// reused, so the steady-state path allocates nothing.
//
// Like the Recorder it serves, a Writer is not safe for concurrent use;
// it runs inside the simulation scheduler's handoff discipline.
type Writer struct {
	sink Sink
	o    Options
	err  error

	cur      io.WriteCloser // active segment, nil until first record
	seg      int            // index of the active (or next) segment
	segBytes int64          // bytes written to the active segment
	segAt    int64          // Now() when the active segment opened

	batch     uint64     // next batch number
	firstLeaf uint64     // global index of leaves[0]
	leaves    [][32]byte // pending leaf hashes, cap BatchSize
	scratch   [][32]byte // fold working space, len BatchSize
	prev      [32]byte   // last seal's chain hash (zeros before batch 0)

	sealBuf []byte // seal-record JSON under construction
	frame   []byte // its length-prefixed frame
}

// NewWriter returns a Writer sealing into sink.
func NewWriter(sink Sink, o Options) *Writer {
	if o.BatchSize <= 0 {
		o.BatchSize = DefaultBatchSize
	}
	if o.SegmentBytes == 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.MIB == nil {
		o.MIB = new(stats.SealMIB)
	}
	return &Writer{
		sink:    sink,
		o:       o,
		leaves:  make([][32]byte, 0, o.BatchSize),
		scratch: make([][32]byte, o.BatchSize),
		sealBuf: make([]byte, 0, 256),
		frame:   make([]byte, 0, 288),
	}
}

// Err reports the first error, if any; once set, the Writer drops
// further records.
func (w *Writer) Err() error { return w.err }

// Seg returns the index of the active (or next-to-open) segment.
func (w *Writer) Seg() int { return w.seg }

// Batches returns how many batches have been sealed.
func (w *Writer) Batches() uint64 { return w.batch }

// Write accepts journal frames from the Recorder: each frame is hashed
// into the current batch and copied to the active segment; full batches
// are sealed and rotation is considered at each seal.
//
//foxvet:hotpath
func (w *Writer) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	rest := p
	for len(rest) > 0 {
		frame, body, ok := splitFrame(rest)
		if !ok {
			w.err = errBadFrame
			return 0, w.err
		}
		if w.cur == nil {
			if err := w.open(); err != nil {
				return 0, err
			}
		}
		if _, err := w.cur.Write(frame); err != nil {
			w.err = err
			return 0, err
		}
		w.segBytes += int64(len(frame))
		w.leaves = append(w.leaves, sha256.Sum256(body))
		w.o.MIB.RecordsSealed.Inc()
		if len(w.leaves) == w.o.BatchSize {
			if err := w.seal(); err != nil {
				return 0, err
			}
			w.maybeRotate()
		}
		rest = rest[len(frame):]
	}
	return len(p), nil
}

// Sync is the durability seam: it force-seals the pending partial batch
// (so the tail of a run is covered by the chain) and flushes the active
// segment to stable storage. The Recorder forwards its own Sync here;
// call it at shutdown so a crash never silently truncates the journal.
func (w *Writer) Sync() error {
	if w.err != nil {
		return w.err
	}
	if len(w.leaves) > 0 {
		if err := w.seal(); err != nil {
			return err
		}
		w.o.MIB.SyncSeals.Inc()
	}
	if w.cur != nil {
		if s, ok := w.cur.(interface{ Sync() error }); ok {
			if err := s.Sync(); err != nil {
				w.err = err
				return err
			}
		}
	}
	return nil
}

// Close seals the pending batch and closes the active segment.
func (w *Writer) Close() error {
	if err := w.Sync(); err != nil {
		return err
	}
	w.closeSegment()
	return w.err
}

// splitFrame parses one length-prefixed frame from the head of p,
// returning the whole frame, its JSON body, and whether it was
// well-formed and complete.
//
//foxvet:hotpath
func splitFrame(p []byte) (frame, body []byte, ok bool) {
	n := 0
	i := 0
	for ; i < len(p); i++ {
		c := p[i]
		if c == ' ' {
			break
		}
		if c < '0' || c > '9' {
			return nil, nil, false
		}
		n = n*10 + int(c-'0')
		if n > 1<<20 {
			return nil, nil, false
		}
	}
	if i == 0 || i == len(p) {
		return nil, nil, false
	}
	end := i + 1 + n
	if end >= len(p) || p[end] != '\n' {
		return nil, nil, false
	}
	return p[:end+1], p[i+1 : end], true
}

// seal commits the pending leaves: computes their Merkle root, extends
// the hash chain, and appends the seal record to the active segment.
//
//foxvet:hotpath
func (w *Writer) seal() error {
	n := len(w.leaves)
	if n == 0 || w.err != nil {
		return w.err
	}
	root := fold(w.leaves, w.scratch)
	sh := chainHash(w.prev, root, w.batch, w.firstLeaf, n)

	w.sealBuf = w.sealBuf[:0]
	w.sealBuf = append(w.sealBuf, `{"k":"seal","b":`...)
	w.sealBuf = strconv.AppendUint(w.sealBuf, w.batch, 10)
	w.sealBuf = append(w.sealBuf, `,"lf":`...)
	w.sealBuf = strconv.AppendUint(w.sealBuf, w.firstLeaf, 10)
	w.sealBuf = append(w.sealBuf, `,"ln":`...)
	w.sealBuf = strconv.AppendInt(w.sealBuf, int64(n), 10)
	w.sealBuf = append(w.sealBuf, `,"root":"`...)
	w.sealBuf = appendHex(w.sealBuf, root[:])
	w.sealBuf = append(w.sealBuf, `","prev":"`...)
	w.sealBuf = appendHex(w.sealBuf, w.prev[:])
	w.sealBuf = append(w.sealBuf, `","sh":"`...)
	w.sealBuf = appendHex(w.sealBuf, sh[:])
	w.sealBuf = append(w.sealBuf, `"}`...)

	w.frame = w.frame[:0]
	w.frame = strconv.AppendInt(w.frame, int64(len(w.sealBuf)), 10)
	w.frame = append(w.frame, ' ')
	w.frame = append(w.frame, w.sealBuf...)
	w.frame = append(w.frame, '\n')

	if _, err := w.cur.Write(w.frame); err != nil {
		w.err = err
		return err
	}
	w.segBytes += int64(len(w.frame))
	w.prev = sh
	w.batch++
	w.firstLeaf += uint64(n)
	w.leaves = w.leaves[:0]
	w.o.MIB.BatchesSealed.Inc()
	return nil
}

// open starts the next segment (lazy: called at the first record that
// needs one).
func (w *Writer) open() error {
	wc, err := w.sink.Next(w.seg)
	if err != nil {
		w.err = err
		return err
	}
	w.cur = wc
	w.segBytes = 0
	if w.o.Now != nil {
		w.segAt = w.o.Now()
	}
	return nil
}

// maybeRotate closes the active segment when it has outgrown its size
// or time budget. Called only at batch boundaries, so every finished
// segment ends with a seal.
func (w *Writer) maybeRotate() {
	if w.cur == nil || w.err != nil {
		return
	}
	switch {
	case w.o.SegmentBytes > 0 && w.segBytes >= w.o.SegmentBytes:
	case w.o.SegmentTime > 0 && w.o.Now != nil && w.o.Now()-w.segAt >= w.o.SegmentTime:
	default:
		return
	}
	w.closeSegment()
}

// closeSegment closes the active segment and advances the index; the
// next record opens the successor.
func (w *Writer) closeSegment() {
	if w.cur == nil {
		return
	}
	if err := w.cur.Close(); err != nil && w.err == nil {
		w.err = err
	}
	w.cur = nil
	w.seg++
	w.o.MIB.SegmentsRotated.Inc()
	w.o.MIB.BytesRotated.Add(uint64(w.segBytes))
	w.segBytes = 0
}
