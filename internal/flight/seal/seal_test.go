package seal

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/flight"
	"repro/internal/stats"
)

// journal writes n enqueue/beg/end triples through a sealed writer.
func journal(w *Writer, n int) *flight.Recorder {
	r := flight.NewRecorder(w)
	r.Hdr("host1", 1500, []byte(`{"iw":4096}`))
	conn := "10.0.0.2:80<->:49152"
	// A realistically wide delta, so the compaction tombstone (a 64-digit
	// hash) is actually smaller than what it replaces.
	var delta []byte
	delta = flight.AppendDelta(delta, "snd_una", 100000, 100512)
	delta = flight.AppendDelta(delta, "snd_nxt", 100512, 101024)
	delta = flight.AppendDelta(delta, "rcv_nxt", 200000, 200512)
	delta = flight.AppendDelta(delta, "cwnd", 4096, 4632)
	delta = flight.AppendDelta(delta, "ssthresh", 65535, 32768)
	delta = flight.AppendDelta(delta, "rto", 1000000, 1200000)
	for i := 0; i < n; i++ {
		q := r.Enqueue(int64(i), conn, "Process_Data", []byte("seq=1 flags=16 len=512"))
		r.Beg(int64(i), conn, q)
		r.End(conn, q, delta)
	}
	return r
}

func TestSealChainRoundTrip(t *testing.T) {
	mib := new(stats.SealMIB)
	sink := &MemSink{Prefix: "host1"}
	w := NewWriter(sink, Options{BatchSize: 8, SegmentBytes: -1, MIB: mib})
	rec := journal(w, 20) // 61 records: hdr + 20×3
	if err := rec.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	rep, err := Verify(sink.Sources(), mib)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.Leaves != 61 {
		t.Errorf("leaves = %d, want 61", rep.Leaves)
	}
	if rep.Batches != 8 { // 7 full batches of 8 + forced partial of 5
		t.Errorf("batches = %d, want 8", rep.Batches)
	}
	if rep.LastSeal == "" || len(rep.Segments) != 1 {
		t.Errorf("report: %+v", rep)
	}
	if got := mib.SyncSeals.Load(); got != 1 {
		t.Errorf("SyncSeals = %d, want 1", got)
	}
	if got := mib.BatchesSealed.Load(); got != 8 {
		t.Errorf("BatchesSealed = %d, want 8", got)
	}
	if got := mib.RecordsSealed.Load(); got != 61 {
		t.Errorf("RecordsSealed = %d, want 61", got)
	}
	// The seal records decode through the plain flight reader.
	recs, err := flight.ReadAll(bytes.NewReader(sink.Segs[0].Bytes()))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	seals := 0
	for _, r := range recs {
		if r.Kind == flight.KindSeal {
			seals++
			if r.LeafN <= 0 || len(r.Root) != 64 || len(r.SealH) != 64 {
				t.Errorf("bad seal record: %+v", r)
			}
		}
	}
	if seals != 8 {
		t.Errorf("seal records = %d, want 8", seals)
	}
}

func TestRotation(t *testing.T) {
	mib := new(stats.SealMIB)
	sink := &MemSink{Prefix: "host1"}
	w := NewWriter(sink, Options{BatchSize: 4, SegmentBytes: 1024, MIB: mib})
	rec := journal(w, 40)
	if err := rec.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if len(sink.Segs) < 3 {
		t.Fatalf("got %d segments, want >= 3", len(sink.Segs))
	}
	rep, err := Verify(sink.Sources(), mib)
	if err != nil {
		t.Fatalf("Verify after rotation: %v", err)
	}
	if len(rep.Segments) != len(sink.Segs) {
		t.Errorf("report covers %d segments, want %d", len(rep.Segments), len(sink.Segs))
	}
	if got := mib.SegmentsRotated.Load(); got != uint64(len(sink.Segs)) {
		t.Errorf("SegmentsRotated = %d, want %d", got, len(sink.Segs))
	}
	if mib.BytesRotated.Load() == 0 {
		t.Error("BytesRotated = 0")
	}
	// Every non-final segment ends with a seal record (rotation only at
	// batch boundaries).
	for i, seg := range sink.Segs[:len(sink.Segs)-1] {
		recs, err := flight.ReadAll(bytes.NewReader(seg.Bytes()))
		if err != nil {
			t.Fatalf("segment %d: %v", i, err)
		}
		if last := recs[len(recs)-1]; last.Kind != flight.KindSeal {
			t.Errorf("segment %d ends with %q, want seal", i, last.Kind)
		}
	}
}

// Any flipped bit in any segment must fail verification with a located
// error.
func TestTamperDetectedInEverySegment(t *testing.T) {
	sink := &MemSink{Prefix: "host1"}
	w := NewWriter(sink, Options{BatchSize: 4, SegmentBytes: 1024})
	rec := journal(w, 40)
	if err := rec.Sync(); err != nil {
		t.Fatal(err)
	}
	pristine := make([][]byte, len(sink.Segs))
	for i, s := range sink.Segs {
		pristine[i] = append([]byte(nil), s.Bytes()...)
	}
	if _, err := Verify(sink.Sources(), nil); err != nil {
		t.Fatalf("pristine journal must verify: %v", err)
	}
	for si := range pristine {
		for _, pos := range []int{10, len(pristine[si]) / 2, len(pristine[si]) - 10} {
			data := append([]byte(nil), pristine[si]...)
			data[pos] ^= 0x01
			srcs := make([]Source, len(pristine))
			for i := range pristine {
				d := pristine[i]
				if i == si {
					d = data
				}
				dd := d
				srcs[i] = Source{Name: SegmentName("host1", i), Open: func() (io.ReadCloser, error) {
					return io.NopCloser(bytes.NewReader(dd)), nil
				}}
			}
			mib := new(stats.SealMIB)
			_, err := Verify(srcs, mib)
			if err == nil {
				t.Fatalf("segment %d bit flip at %d not detected", si, pos)
			}
			if mib.VerifyFailures.Load() != 1 {
				t.Errorf("VerifyFailures = %d, want 1", mib.VerifyFailures.Load())
			}
			var ve *VerifyError
			var co *flight.Corruption
			switch {
			case errors.As(err, &ve):
				if ve.Segment != SegmentName("host1", si) {
					t.Errorf("flip in segment %d located in %q", si, ve.Segment)
				}
			case errors.As(err, &co):
				if co.Segment != SegmentName("host1", si) {
					t.Errorf("flip in segment %d located in %q", si, co.Segment)
				}
			default:
				t.Errorf("error does not locate the damage: %v", err)
			}
		}
	}
}

// A digit flip that keeps the JSON valid is caught by the Merkle root,
// not the framing.
func TestSemanticTamperCaughtByRoot(t *testing.T) {
	sink := &MemSink{Prefix: "host1"}
	w := NewWriter(sink, Options{BatchSize: 4, SegmentBytes: -1})
	rec := journal(w, 8)
	if err := rec.Sync(); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), sink.Segs[0].Bytes()...)
	i := bytes.Index(data, []byte(`"at":3`))
	if i < 0 {
		t.Fatal("marker not found")
	}
	data[i+len(`"at":`)] = '7' // same byte count: framing stays intact
	src := []Source{{Name: "host1.0000.fjl", Open: func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(data)), nil
	}}}
	_, err := Verify(src, nil)
	var ve *VerifyError
	if !errors.As(err, &ve) {
		t.Fatalf("want VerifyError, got %v", err)
	}
	if !strings.Contains(ve.Reason, "Merkle root mismatch") {
		t.Errorf("reason: %s", ve.Reason)
	}
}

// The DirSink buffers; without Sync the tail is lost, with Sync it is
// sealed and durable — the mid-batch-cut regression.
func TestSyncDurability(t *testing.T) {
	dir := t.TempDir()

	// Without Sync: the recorder is dropped mid-batch and the buffered
	// tail never reaches the file.
	w := NewWriter(&DirSink{Dir: dir, Prefix: "cut"}, Options{BatchSize: 64, SegmentBytes: -1})
	journal(w, 5)
	cut, err := os.ReadFile(filepath.Join(dir, SegmentName("cut", 0)))
	if err != nil {
		t.Fatalf("read cut segment: %v", err)
	}
	if len(cut) != 0 {
		t.Errorf("unsynced mid-batch journal leaked %d bytes to disk before Sync", len(cut))
	}

	// With Sync: everything is on disk and the chain verifies.
	w = NewWriter(&DirSink{Dir: dir, Prefix: "ok"}, Options{BatchSize: 64, SegmentBytes: -1})
	rec := journal(w, 5)
	if err := rec.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	journals, err := DiscoverDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range journals {
		if j.Prefix != "ok" {
			continue
		}
		rep, err := Verify(j.Sources(), nil)
		if err != nil {
			t.Fatalf("Verify synced journal: %v", err)
		}
		if rep.Leaves != 16 {
			t.Errorf("leaves = %d, want 16", rep.Leaves)
		}
	}
}

// A journal cut mid-batch (records after the last seal) fails strict
// verification with an actionable message.
func TestUnsealedTailRejected(t *testing.T) {
	sink := &MemSink{Prefix: "host1"}
	w := NewWriter(sink, Options{BatchSize: 4, SegmentBytes: -1})
	journal(w, 5) // 16 records: 4 sealed batches, no Sync — 0 pending... make it uneven
	// 16 records = exactly 4 batches; add one more record to leave a tail.
	r2 := flight.NewRecorder(w)
	r2.Enqueue(99, "c", "Maybe_Send", nil)
	_, err := Verify(sink.Sources(), nil)
	var ve *VerifyError
	if !errors.As(err, &ve) {
		t.Fatalf("want VerifyError for unsealed tail, got %v", err)
	}
	if !strings.Contains(ve.Reason, "unsealed tail") {
		t.Errorf("reason: %s", ve.Reason)
	}
}

func TestCompaction(t *testing.T) {
	mib := new(stats.SealMIB)
	sink := &MemSink{Prefix: "host1"}
	w := NewWriter(sink, Options{BatchSize: 4, SegmentBytes: 1024, MIB: mib})
	rec := journal(w, 40)
	if err := rec.Sync(); err != nil {
		t.Fatal(err)
	}
	if len(sink.Segs) < 2 {
		t.Fatalf("need multiple segments, got %d", len(sink.Segs))
	}
	orig := sink.Segs[0].Bytes()
	compacted, dropped, err := CompactBytes(orig)
	if err != nil {
		t.Fatalf("CompactBytes: %v", err)
	}
	if dropped == 0 || len(compacted) >= len(orig) {
		t.Fatalf("compaction dropped %d deltas, %d -> %d bytes", dropped, len(orig), len(compacted))
	}
	// The chain still verifies with the compacted segment in place.
	srcs := sink.Sources()
	srcs[0] = Source{Name: srcs[0].Name, Open: func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(compacted)), nil
	}}
	if _, err := Verify(srcs, nil); err != nil {
		t.Fatalf("Verify after compaction: %v", err)
	}
	// Compacting again is a no-op.
	again, d2, err := CompactBytes(compacted)
	if err != nil || d2 != 0 || len(again) != len(compacted) {
		t.Errorf("recompaction: dropped %d, %d -> %d bytes, err %v", d2, len(compacted), len(again), err)
	}
	// But tampering with a compacted record is still caught.
	bad := append([]byte(nil), compacted...)
	i := bytes.Index(bad, []byte(`"h":"`))
	if i < 0 {
		t.Fatal("no tombstone found")
	}
	if bad[i+6] != 'f' {
		bad[i+6] = 'f'
	} else {
		bad[i+6] = '0'
	}
	srcs[0] = Source{Name: srcs[0].Name, Open: func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(bad)), nil
	}}
	if _, err := Verify(srcs, nil); err == nil {
		t.Error("tampered tombstone hash not detected")
	}
}

func TestCompactDirKeepsActive(t *testing.T) {
	dir := t.TempDir()
	mib := new(stats.SealMIB)
	w := NewWriter(&DirSink{Dir: dir, Prefix: "h"}, Options{BatchSize: 4, SegmentBytes: 1024, MIB: mib})
	rec := journal(w, 40)
	if err := rec.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	journals, err := DiscoverDir(dir)
	if err != nil || len(journals) != 1 {
		t.Fatalf("discover: %v %v", journals, err)
	}
	nseg := len(journals[0].Files)
	if nseg < 3 {
		t.Fatalf("need >= 3 segments, got %d", nseg)
	}
	lastBefore, _ := os.ReadFile(journals[0].Files[nseg-1])
	files, dropped, err := CompactDir(dir, 1, mib)
	if err != nil {
		t.Fatalf("CompactDir: %v", err)
	}
	if files != nseg-1 || dropped == 0 {
		t.Errorf("compacted %d files (%d deltas), want %d files", files, dropped, nseg-1)
	}
	lastAfter, _ := os.ReadFile(journals[0].Files[nseg-1])
	if !bytes.Equal(lastBefore, lastAfter) {
		t.Error("active segment was compacted")
	}
	if _, err := Verify(journals[0].Sources(), nil); err != nil {
		t.Fatalf("Verify after CompactDir: %v", err)
	}
	if mib.Compactions.Load() != uint64(files) {
		t.Errorf("Compactions = %d, want %d", mib.Compactions.Load(), files)
	}
}

func TestInclusionProof(t *testing.T) {
	sink := &MemSink{Prefix: "host1"}
	w := NewWriter(sink, Options{BatchSize: 8, SegmentBytes: 2048})
	rec := journal(w, 30)
	if err := rec.Sync(); err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(sink.Sources(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, leaf := range []uint64{0, 7, 8, rep.Leaves - 1} {
		p, err := Prove(sink.Sources(), leaf)
		if err != nil {
			t.Fatalf("Prove(%d): %v", leaf, err)
		}
		if err := p.Check(); err != nil {
			t.Errorf("proof %d does not check: %v", leaf, err)
		}
		if p.Leaf != leaf || len(p.Record) == 0 {
			t.Errorf("proof %d: %+v", leaf, p)
		}
		// A forged record body must not check.
		forged := *p
		forged.Record = `{"k":"enq","q":999}`
		if err := forged.Check(); err == nil {
			t.Errorf("forged record body passed proof %d", leaf)
		}
	}
	if _, err := Prove(sink.Sources(), rep.Leaves+100); err == nil {
		t.Error("proof for nonexistent record should fail")
	}
}

// Proofs survive compaction: the tombstone's stored hash takes the
// original body's place as the leaf.
func TestProofAfterCompaction(t *testing.T) {
	sink := &MemSink{Prefix: "host1"}
	w := NewWriter(sink, Options{BatchSize: 8, SegmentBytes: -1})
	rec := journal(w, 16)
	if err := rec.Sync(); err != nil {
		t.Fatal(err)
	}
	compacted, dropped, err := CompactBytes(sink.Segs[0].Bytes())
	if err != nil || dropped == 0 {
		t.Fatalf("compact: %d %v", dropped, err)
	}
	srcs := []Source{{Name: "host1.0000.fjl", Open: func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(compacted)), nil
	}}}
	p, err := Prove(srcs, 3) // an end record, now a tombstone
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if err := p.Check(); err != nil {
		t.Errorf("compacted proof does not check: %v", err)
	}
}

func TestDiscoverDirGroupsAndOrders(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"b.0001.fjl", "b.0000.fjl", "a.fjl", "b.0002.fjl", "ignore.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	journals, err := DiscoverDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(journals) != 2 {
		t.Fatalf("got %d journals: %+v", len(journals), journals)
	}
	if journals[0].Prefix != "a" || journals[0].Sealed || len(journals[0].Files) != 1 {
		t.Errorf("journal a: %+v", journals[0])
	}
	if journals[1].Prefix != "b" || !journals[1].Sealed || len(journals[1].Files) != 3 {
		t.Errorf("journal b: %+v", journals[1])
	}
	for i, f := range journals[1].Files {
		if want := SegmentName("b", i); filepath.Base(f) != want {
			t.Errorf("file %d = %s, want %s", i, f, want)
		}
	}
}

// The steady-state emit path through the batcher — including sealing a
// full batch — must not allocate.
func TestSealedEmitNoAllocs(t *testing.T) {
	w := NewWriter(discardSink{}, Options{BatchSize: 8, SegmentBytes: -1})
	r := flight.NewRecorder(w)
	args := []byte("seq=12345 flags=24 len=512 rexmits=0")
	var delta []byte
	delta = flight.AppendDelta(delta, "snd_nxt", 100000, 100512)
	delta = flight.AppendDelta(delta, "cwnd", 4096, 4632)
	conn := "10.0.0.2:80<->:49152"
	emit := func() {
		// 4 records per call: with BatchSize 8, every other call seals.
		q := r.Enqueue(12345, conn, "Process_Data", args)
		r.Beg(12345, conn, q)
		r.End(conn, q, delta)
		r.Enqueue(12345, conn, "Maybe_Send", nil)
	}
	emit()
	emit() // warm: first seal has happened, buffers at working size
	if n := testing.AllocsPerRun(200, emit); n > 0 {
		t.Errorf("sealed emit path allocates %v times per 4 records", n)
	}
	if r.Err() != nil {
		t.Fatalf("recorder error: %v", r.Err())
	}
}

type discardSink struct{}

func (discardSink) Next(seg int) (io.WriteCloser, error) { return nopWC{}, nil }

type nopWC struct{}

func (nopWC) Write(p []byte) (int, error) { return len(p), nil }
func (nopWC) Close() error                { return nil }
