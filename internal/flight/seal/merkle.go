// Package seal turns the flight journal into a tamper-evident audit log
// at production scale. Records are batched into fixed-size groups, each
// batch is committed as the Merkle root of its records' SHA-256 leaf
// hashes, and every root is chained into a sealed hash chain: each seal
// record covers the previous seal's hash, so rewriting any record —
// even in a long-rotated segment — breaks every seal after it. Segment
// rotation bounds file sizes, and compaction can drop the bulky TCB
// deltas from cold segments while keeping each record's leaf hash (and
// therefore the whole chain) verifiable.
//
// The seal layer is pure observation: it hashes and frames what the
// Recorder already emitted and never reaches back into the executor.
// The quasisync analyzer machine-checks that property for this package,
// exactly as it does for the record.go observer hooks.
package seal

import (
	"crypto/sha256"
	"encoding/binary"
)

// fold computes the Merkle root of leaves using scratch (cap >= number
// of leaves) as working space, so steady-state sealing allocates
// nothing. Pairs hash as SHA256(left || right); an odd node is promoted
// unchanged to the next level. len(leaves) must be > 0.
//
//foxvet:hotpath
func fold(leaves, scratch [][32]byte) [32]byte {
	n := copy(scratch, leaves)
	var pair [64]byte
	for n > 1 {
		m := 0
		for i := 0; i < n; i += 2 {
			if i+1 < n {
				copy(pair[:32], scratch[i][:])
				copy(pair[32:], scratch[i+1][:])
				scratch[m] = sha256.Sum256(pair[:])
			} else {
				scratch[m] = scratch[i]
			}
			m++
		}
		n = m
	}
	return scratch[0]
}

// foldRoot is fold for cold paths that don't carry scratch space.
func foldRoot(leaves [][32]byte) [32]byte {
	scratch := make([][32]byte, len(leaves))
	return fold(leaves, scratch)
}

// chainHash computes a seal's chain hash over the previous seal's hash,
// this batch's Merkle root, and the batch coordinates. The coordinates
// are bound into the hash so a tampered journal cannot renumber or
// re-partition batches without breaking the chain.
//
//foxvet:hotpath
func chainHash(prev, root [32]byte, batch, first uint64, n int) [32]byte {
	var pre [88]byte
	copy(pre[:32], prev[:])
	copy(pre[32:64], root[:])
	binary.BigEndian.PutUint64(pre[64:72], batch)
	binary.BigEndian.PutUint64(pre[72:80], first)
	binary.BigEndian.PutUint64(pre[80:88], uint64(n))
	return sha256.Sum256(pre[:])
}

// appendHex appends the lowercase hex of b to dst. Callers keep dst in
// a reused buffer so steady-state appends don't allocate.
func appendHex(dst []byte, b []byte) []byte {
	const hexdigits = "0123456789abcdef"
	for _, x := range b {
		dst = append(dst, hexdigits[x>>4], hexdigits[x&0xf])
	}
	return dst
}

// hexOf renders a hash as a lowercase hex string (cold paths only).
func hexOf(h [32]byte) string {
	return string(appendHex(make([]byte, 0, 64), h[:]))
}

// parseHex decodes a 64-digit lowercase hex hash.
func parseHex(s string) (h [32]byte, ok bool) {
	if len(s) != 64 {
		return h, false
	}
	for i := 0; i < 32; i++ {
		hi, ok1 := nibble(s[2*i])
		lo, ok2 := nibble(s[2*i+1])
		if !ok1 || !ok2 {
			return h, false
		}
		h[i] = hi<<4 | lo
	}
	return h, true
}

func nibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}
