package seal

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"io"
	"os"
	"path/filepath"

	"repro/internal/flight"
	"repro/internal/stats"
)

// compactEnd is the tombstone a compacted end record becomes: the
// pairing keys survive (conn, enqueue seq) but the TCB delta is
// replaced by the SHA-256 of the original record body, so the Merkle
// batch above it still folds to the sealed root.
type compactEnd struct {
	K  string `json:"k"`
	C  string `json:"c"`
	Eq uint64 `json:"eq"`
	H  string `json:"h"`
}

// CompactStream copies one segment from src to dst, replacing each end
// record's TCB delta with its leaf hash. Records are only rewritten
// when the tombstone is smaller than the original (an empty delta is
// cheaper than a 64-digit hash, so it stays). Seal records pass through
// untouched — compaction changes what the journal stores, never what
// it attests. Returns the number of deltas dropped.
func CompactStream(dst io.Writer, src io.Reader) (dropped int, err error) {
	sc := flight.NewScanner(src)
	bw := bufio.NewWriterSize(dst, 64<<10)
	var lenBuf [20]byte
	for {
		rec, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return dropped, err
		}
		body := sc.Body()
		if rec.Kind == flight.KindEnd && rec.H == "" && rec.Delta != nil {
			leaf := sha256.Sum256(body)
			nb, err := json.Marshal(compactEnd{K: flight.KindEnd, C: rec.Conn, Eq: rec.EqSeq, H: hexOf(leaf)})
			if err == nil && len(nb) < len(body) {
				body = nb
				dropped++
			}
		}
		if _, err := bw.Write(appendFrameLen(lenBuf[:0], len(body))); err != nil {
			return dropped, err
		}
		if _, err := bw.Write(body); err != nil {
			return dropped, err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return dropped, err
		}
	}
	return dropped, bw.Flush()
}

// appendFrameLen renders the ASCII length prefix and its trailing space.
func appendFrameLen(dst []byte, n int) []byte {
	if n == 0 {
		dst = append(dst, '0')
	} else {
		start := len(dst)
		for n > 0 {
			dst = append(dst, byte('0'+n%10))
			n /= 10
		}
		for i, j := start, len(dst)-1; i < j; i, j = i+1, j-1 {
			dst[i], dst[j] = dst[j], dst[i]
		}
	}
	return append(dst, ' ')
}

// CompactBytes compacts one in-memory segment, returning the (possibly
// identical) compacted bytes and the number of deltas dropped.
func CompactBytes(seg []byte) ([]byte, int, error) {
	var out bytes.Buffer
	dropped, err := CompactStream(&out, bytes.NewReader(seg))
	if err != nil {
		return nil, 0, err
	}
	return out.Bytes(), dropped, nil
}

// CompactFile compacts one segment file in place (atomically, via a
// temporary file and rename). The file is only replaced when compaction
// actually shrank it.
func CompactFile(path string, mib *stats.SealMIB) (dropped int, err error) {
	if mib == nil {
		mib = new(stats.SealMIB)
	}
	in, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	out, dropped, err := CompactBytes(in)
	if err != nil {
		return 0, err
	}
	if dropped == 0 || len(out) >= len(in) {
		return 0, nil
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".compact*")
	if err != nil {
		return 0, err
	}
	if _, err := tmp.Write(out); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	mib.Compactions.Inc()
	mib.DeltasDropped.Add(uint64(dropped))
	return dropped, nil
}

// CompactDir compacts the cold segments of every sealed journal in dir,
// keeping the newest `keep` segments of each journal untouched (keep <=
// 0 means 1: never compact the active segment). Returns files rewritten
// and total deltas dropped.
func CompactDir(dir string, keep int, mib *stats.SealMIB) (files, dropped int, err error) {
	if keep <= 0 {
		keep = 1
	}
	journals, err := DiscoverDir(dir)
	if err != nil {
		return 0, 0, err
	}
	for _, j := range journals {
		if !j.Sealed || len(j.Files) <= keep {
			continue
		}
		for _, path := range j.Files[:len(j.Files)-keep] {
			d, err := CompactFile(path, mib)
			if err != nil {
				return files, dropped, err
			}
			if d > 0 {
				files++
				dropped += d
			}
		}
	}
	return files, dropped, nil
}
