package seal

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/flight"
)

// PathStep is one sibling on the Merkle path from a leaf to its batch
// root. Left reports which side the sibling sits on.
type PathStep struct {
	Hash string `json:"hash"`
	Left bool   `json:"left"`
}

// Proof is a self-contained inclusion proof for one journal record: the
// record's body, its Merkle path to the sealed batch root, and the seal
// coordinates that chain the root. Anyone holding the final seal hash
// can check it without the journal. Record carries the body as a JSON
// string, not an embedded object: the leaf hash covers the exact
// journal bytes, and re-encoding an embedded object (indentation, HTML
// escaping) would silently change them.
type Proof struct {
	Leaf      uint64     `json:"leaf"` // global record index
	Segment   string     `json:"segment"`
	Offset    int64      `json:"offset"`
	Record    string     `json:"record"`
	LeafHash  string     `json:"leafHash"`
	Batch     uint64     `json:"batch"`
	LeafFirst uint64     `json:"leafFirst"`
	LeafN     int        `json:"leafN"`
	Path      []PathStep `json:"path"`
	Root      string     `json:"root"`
	Prev      string     `json:"prev"`
	SealHash  string     `json:"sealHash"`
}

// Prove scans the journal for the record with global leaf index `leaf`
// and builds its inclusion proof from the batch that seals it. The
// journal should verify cleanly first; Prove trusts the seal record it
// finds.
func Prove(srcs []Source, leaf uint64) (*Proof, error) {
	var (
		nextLeaf uint64
		pending  [][32]byte
		p        *Proof
	)
	for _, src := range srcs {
		rc, err := src.Open()
		if err != nil {
			return nil, err
		}
		sc := flight.NewScanner(rc)
		for {
			rec, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				if c, ok := err.(*flight.Corruption); ok {
					c.Segment = src.Name
				}
				rc.Close()
				return nil, err
			}
			if rec.Kind == flight.KindSeal {
				if p != nil {
					p.Batch = rec.Batch
					p.LeafFirst = rec.LeafFirst
					p.LeafN = rec.LeafN
					p.Path = merklePath(pending, int(p.Leaf-rec.LeafFirst))
					p.Root = rec.Root
					p.Prev = rec.Prev
					p.SealHash = rec.SealH
					rc.Close()
					return p, nil
				}
				pending = pending[:0]
				continue
			}
			var lh [32]byte
			if rec.H != "" {
				h, ok := parseHex(rec.H)
				if !ok {
					rc.Close()
					return nil, fmt.Errorf("leaf %d: malformed compaction hash %q", nextLeaf, rec.H)
				}
				lh = h
			} else {
				lh = sha256.Sum256(sc.Body())
			}
			pending = append(pending, lh)
			if nextLeaf == leaf {
				p = &Proof{
					Leaf:     leaf,
					Segment:  src.Name,
					Offset:   sc.Offset(),
					Record:   string(sc.Body()),
					LeafHash: hexOf(lh),
				}
			}
			nextLeaf++
		}
		rc.Close()
	}
	if p != nil {
		return nil, fmt.Errorf("record %d exists but is not covered by any seal (unsealed tail)", leaf)
	}
	return nil, fmt.Errorf("record %d not found (journal holds %d records)", leaf, nextLeaf)
}

// merklePath collects the sibling hashes from leaf idx to the root of a
// batch with the given leaves.
func merklePath(leaves [][32]byte, idx int) []PathStep {
	level := make([][32]byte, len(leaves))
	copy(level, leaves)
	var steps []PathStep
	n := len(level)
	var pair [64]byte
	for n > 1 {
		if sib := idx ^ 1; sib < n {
			steps = append(steps, PathStep{Hash: hexOf(level[sib]), Left: sib < idx})
		}
		m := 0
		for i := 0; i < n; i += 2 {
			if i+1 < n {
				copy(pair[:32], level[i][:])
				copy(pair[32:], level[i+1][:])
				level[m] = sha256.Sum256(pair[:])
			} else {
				level[m] = level[i]
			}
			m++
		}
		n = m
		idx /= 2
	}
	return steps
}

// Check verifies the proof: the record body hashes to LeafHash, the
// path folds to Root, and the seal coordinates chain Prev and Root into
// SealHash. It does NOT check SealHash against anything external — that
// comparison (against a pinned seal, or a verified chain) is the
// caller's, since it is what ties the proof to a journal.
func (p *Proof) Check() error {
	lh, ok := parseHex(p.LeafHash)
	if !ok {
		return fmt.Errorf("malformed leaf hash")
	}
	if len(p.Record) > 0 {
		var rec flight.Record
		if err := json.Unmarshal([]byte(p.Record), &rec); err != nil {
			return fmt.Errorf("proof record is not valid JSON: %w", err)
		}
		if rec.H != "" {
			if rec.H != p.LeafHash {
				return fmt.Errorf("compacted record's stored hash does not match the proof leaf")
			}
		} else if sha256.Sum256([]byte(p.Record)) != lh {
			return fmt.Errorf("record body does not hash to the proof leaf")
		}
	}
	h := lh
	var pair [64]byte
	for _, st := range p.Path {
		sib, ok := parseHex(st.Hash)
		if !ok {
			return fmt.Errorf("malformed path hash")
		}
		if st.Left {
			copy(pair[:32], sib[:])
			copy(pair[32:], h[:])
		} else {
			copy(pair[:32], h[:])
			copy(pair[32:], sib[:])
		}
		h = sha256.Sum256(pair[:])
	}
	if hexOf(h) != p.Root {
		return fmt.Errorf("path folds to %.16s…, sealed root is %.16s…", hexOf(h), p.Root)
	}
	root, ok1 := parseHex(p.Root)
	prev, ok2 := parseHex(p.Prev)
	if !ok1 || !ok2 {
		return fmt.Errorf("malformed root or prev hash")
	}
	if hexOf(chainHash(prev, root, p.Batch, p.LeafFirst, p.LeafN)) != p.SealHash {
		return fmt.Errorf("seal hash does not commit these coordinates")
	}
	return nil
}
