package seal

import (
	"crypto/sha256"
	"fmt"
	"io"

	"repro/internal/flight"
	"repro/internal/stats"
)

// SegmentInfo is one segment's row in a verification report — what
// `foxstat -seals` prints.
type SegmentInfo struct {
	Name      string `json:"name"`
	Bytes     int64  `json:"bytes"`
	Records   int    `json:"records"` // including seal records
	Seals     int    `json:"seals"`
	FirstLeaf uint64 `json:"firstLeaf"` // global index of the first leaf
	Leaves    int    `json:"leaves"`    // records hashed into batches
	LastRoot  string `json:"lastRoot,omitempty"`
	LastSeal  string `json:"lastSeal,omitempty"`
}

// Report summarizes a successful chain verification.
type Report struct {
	Segments []SegmentInfo `json:"segments"`
	Batches  uint64        `json:"batches"`
	Leaves   uint64        `json:"leaves"`
	LastSeal string        `json:"lastSeal,omitempty"`
}

// VerifyError pinpoints where verification failed: the segment, the
// byte offset of the offending record's frame, and its record index
// within the segment. For a Merkle-root mismatch the location is the
// seal whose batch no longer folds to the sealed root (the journal
// cannot say which leaf was rewritten — only that one was).
type VerifyError struct {
	Segment string
	Offset  int64
	Index   int
	Reason  string
}

func (e *VerifyError) Error() string {
	return fmt.Sprintf("seal verification failed: segment %s: record %d at offset %d: %s",
		e.Segment, e.Index, e.Offset, e.Reason)
}

// Verify walks a journal's segments in order, recomputing every batch's
// Merkle root and the sealed hash chain, and fails on the first record
// that does not check out. Compacted records verify through their
// stored leaf hash. Every leaf must be covered by a seal: an unsealed
// tail (a crash that outran Sync) is reported, not ignored. A framing
// or JSON failure surfaces as *flight.Corruption, a chain failure as
// *VerifyError; both locate the damage.
func Verify(srcs []Source, mib *stats.SealMIB) (*Report, error) {
	if mib == nil {
		mib = new(stats.SealMIB)
	}
	mib.VerifyRuns.Inc()
	rep := &Report{}
	var (
		prev      [32]byte   // last seal's chain hash
		batch     uint64     // next expected batch number
		nextLeaf  uint64     // global index of the next leaf
		pending   [][32]byte // leaves since the last seal
		pendFirst uint64     // global index of pending[0]
		pendSeg   string     // where the first pending leaf lives...
		pendOff   int64
		pendIdx   int
	)
	fail := func(seg string, off int64, idx int, format string, args ...any) (*Report, error) {
		mib.VerifyFailures.Inc()
		return rep, &VerifyError{Segment: seg, Offset: off, Index: idx, Reason: fmt.Sprintf(format, args...)}
	}
	for si, src := range srcs {
		rc, err := src.Open()
		if err != nil {
			mib.VerifyFailures.Inc()
			return rep, err
		}
		cr := &countReader{r: rc}
		sc := flight.NewScanner(cr)
		info := SegmentInfo{Name: src.Name, FirstLeaf: nextLeaf}
		for {
			rec, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				if c, ok := err.(*flight.Corruption); ok {
					c.Segment = src.Name
				}
				mib.VerifyFailures.Inc()
				rc.Close()
				return rep, err
			}
			info.Records++
			if rec.Kind != flight.KindSeal {
				var leaf [32]byte
				if rec.H != "" {
					h, ok := parseHex(rec.H)
					if !ok {
						rc.Close()
						return fail(src.Name, sc.Offset(), sc.Index()-1, "compacted record carries a malformed leaf hash %q", rec.H)
					}
					leaf = h
				} else {
					leaf = sha256.Sum256(sc.Body())
				}
				if len(pending) == 0 {
					pendFirst, pendSeg, pendOff, pendIdx = nextLeaf, src.Name, sc.Offset(), sc.Index()-1
				}
				pending = append(pending, leaf)
				nextLeaf++
				info.Leaves++
				continue
			}
			off, idx := sc.Offset(), sc.Index()-1
			switch {
			case rec.LeafN <= 0:
				rc.Close()
				return fail(src.Name, off, idx, "seal covers no records (ln=%d)", rec.LeafN)
			case rec.Batch != batch:
				rc.Close()
				return fail(src.Name, off, idx, "seal batch %d out of order, want %d", rec.Batch, batch)
			case rec.LeafFirst != pendFirst || rec.LeafN != len(pending):
				rc.Close()
				return fail(src.Name, off, idx, "seal covers leaves %d..%d, journal holds %d..%d",
					rec.LeafFirst, rec.LeafFirst+uint64(rec.LeafN)-1, pendFirst, pendFirst+uint64(len(pending))-1)
			}
			root := foldRoot(pending)
			if hexOf(root) != rec.Root {
				rc.Close()
				return fail(src.Name, off, idx, "Merkle root mismatch over leaves %d..%d: a record under this seal was altered",
					pendFirst, pendFirst+uint64(len(pending))-1)
			}
			if hexOf(prev) != rec.Prev {
				rc.Close()
				return fail(src.Name, off, idx, "hash chain broken: seal %d names prev %.16s…, chain holds %.16s…",
					rec.Batch, rec.Prev, hexOf(prev))
			}
			sh := chainHash(prev, root, batch, pendFirst, len(pending))
			if hexOf(sh) != rec.SealH {
				rc.Close()
				return fail(src.Name, off, idx, "seal hash mismatch on batch %d", rec.Batch)
			}
			prev = sh
			batch++
			pending = pending[:0]
			info.Seals++
			info.LastRoot = rec.Root
			info.LastSeal = rec.SealH
		}
		rc.Close()
		info.Bytes = cr.n
		rep.Segments = append(rep.Segments, info)
		if len(pending) > 0 && si < len(srcs)-1 {
			return fail(pendSeg, pendOff, pendIdx, "segment ends mid-batch: %d records unsealed before rotation", len(pending))
		}
	}
	if len(pending) > 0 {
		return fail(pendSeg, pendOff, pendIdx, "unsealed tail: %d records after the last seal (missing Sync before shutdown?)", len(pending))
	}
	rep.Batches = batch
	rep.Leaves = nextLeaf
	if batch > 0 {
		rep.LastSeal = hexOf(prev)
	}
	return rep, nil
}

// VerifyDir verifies every sealed journal found in dir, returning the
// reports keyed by journal prefix in discovery order.
func VerifyDir(dir string, mib *stats.SealMIB) (map[string]*Report, error) {
	journals, err := DiscoverDir(dir)
	if err != nil {
		return nil, err
	}
	out := map[string]*Report{}
	for _, j := range journals {
		rep, err := Verify(j.Sources(), mib)
		if err != nil {
			return out, err
		}
		out[j.Prefix] = rep
	}
	return out, nil
}

type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
