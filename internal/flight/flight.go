// Package flight is the stack's flight recorder: a streaming journal of
// everything that crosses the quasi-synchronous executor's single door.
// The TCP layer records, per connection, every enqueued tcp_action with
// its cause (packet arrival with a segment digest, timer expiration with
// the timer id, user call), a virtual timestamp, and a monotonically
// increasing sequence number — plus a compact pre/post TCB delta for
// every drained action. Because the executor is the only place TCB state
// changes, the journal is a complete, causally-linked account of a run,
// and cmd/foxreplay can re-execute it against a fresh TCB and diff the
// reconstruction at every step.
//
// The journal format is length-prefixed JSONL: each record is the ASCII
// decimal byte length of its JSON body, one space, the JSON object, and
// a newline. The length prefix makes corruption detectable without
// trusting the JSON scanner, and the JSON body keeps the journal
// greppable and jq-able.
//
// The Recorder follows the Tracer/EventRing discipline: every hook site
// in the hot path is a single nil check, and the enabled path encodes
// into preallocated buffers it owns — no allocation per record once the
// buffers have grown to the working-set size.
package flight

import (
	"io"
	"strconv"
)

// Record kind names, as written in the "k" field.
const (
	KindHdr   = "hdr"  // run header: host, MTU, resolved Config
	KindOpen  = "open" // connection creation (active or passive)
	KindUop   = "uop"  // user operation: open/write/read/close/abort/wurg
	KindEnq   = "enq"  // one tcp_action enqueued, with its cause
	KindBeg   = "beg"  // executor begins performing an enqueued action
	KindEnd   = "end"  // executor finished it; "d" holds the TCB delta
	KindSeal  = "seal" // Merkle batch committed into the sealed chain
	KindFault = "flt"  // scripted fault-plane transition (observer-only)
)

// Cause kinds, as written in the "ck" field of open/uop/enq records.
const (
	CauseAct   = "act"  // enqueued while performing another action ("cz")
	CauseUser  = "user" // enqueued by a user call ("cz" names its uop/open)
	CausePkt   = "pkt"  // enqueued by a packet arrival ("ps".."pl" digest)
	CauseTimer = "tmr"  // enqueued by a timer expiration ("tw")
)

// cause is one frame of the recorder's cause stack. The stack mirrors
// the call structure of the stack itself: a packet handler pushes a pkt
// frame around demux, the executor pushes an act frame around each
// perform, a user-call hook pushes a user frame around its enqueues.
type cause struct {
	kind string // "" means no cause (root event)
	ref  uint64 // act/user: seq of the causing record

	// pkt digest (kind == CausePkt)
	pSeq, pAck      uint32
	pFlags          uint8
	pWnd, pUp, pMSS uint16
	pLen            int
	timer           int // kind == CauseTimer
}

// Recorder emits journal records to one writer. It is not safe for
// concurrent use from independent goroutines; like the EventRing, every
// writer runs inside the simulation scheduler's handoff discipline, so
// plain fields suffice.
type Recorder struct {
	w   io.Writer
	err error
	seq uint64

	buf []byte // JSON body under construction
	out []byte // length-prefixed frame handed to w

	causes [32]cause
	ncause int
}

// NewRecorder returns a recorder writing to w. Writes are unbuffered —
// one Write per record — so handing it an *os.File needs no flush; wrap
// the writer yourself if you want batching.
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{
		w:   w,
		buf: make([]byte, 0, 1024),
		out: make([]byte, 0, 1024),
	}
}

// Err reports the first write error, if any; once set, the recorder
// drops further records.
func (r *Recorder) Err() error {
	if r == nil {
		return nil
	}
	return r.err
}

// Seq reports how many sequence numbers have been issued.
func (r *Recorder) Seq() uint64 { return r.seq }

// Syncer is the durability seam: a journal writer that can force its
// buffered state to stable storage. The seal.Writer implements it by
// sealing the partial batch and flushing the active segment.
type Syncer interface {
	Sync() error
}

// Sync flushes the underlying writer if it supports the Syncer seam.
// Call it at shutdown (or before reading a live journal) so the tail of
// the run is never silently truncated; a no-op for plain writers.
func (r *Recorder) Sync() error {
	if r == nil {
		return nil
	}
	if r.err != nil {
		return r.err
	}
	if s, ok := r.w.(Syncer); ok {
		r.err = s.Sync()
	}
	return r.err
}

// --- cause stack ---------------------------------------------------------

// BeginPkt pushes a packet-arrival cause with the segment digest; every
// record emitted until the matching EndCause is attributed to it.
//
//foxvet:hotpath
func (r *Recorder) BeginPkt(seq, ack uint32, flags uint8, wnd, up, mss uint16, payload int) {
	if r == nil {
		return
	}
	f := &r.causes[r.ncause]
	r.ncause++
	f.kind = CausePkt
	f.pSeq, f.pAck, f.pFlags = seq, ack, flags
	f.pWnd, f.pUp, f.pMSS = wnd, up, mss
	f.pLen = payload
}

// BeginTimer pushes a timer-expiration cause.
//
//foxvet:hotpath
func (r *Recorder) BeginTimer(which int) {
	if r == nil {
		return
	}
	f := &r.causes[r.ncause]
	r.ncause++
	f.kind = CauseTimer
	f.timer = which
}

// BeginAct pushes an action cause: the executor is performing the action
// whose enq record carried seq.
//
//foxvet:hotpath
func (r *Recorder) BeginAct(seq uint64) {
	if r == nil {
		return
	}
	f := &r.causes[r.ncause]
	r.ncause++
	f.kind = CauseAct
	f.ref = seq
}

// BeginUser pushes a user-call cause referring to a uop or open record.
//
//foxvet:hotpath
func (r *Recorder) BeginUser(seq uint64) {
	if r == nil {
		return
	}
	f := &r.causes[r.ncause]
	r.ncause++
	f.kind = CauseUser
	f.ref = seq
}

// EndCause pops the innermost cause frame.
//
//foxvet:hotpath
func (r *Recorder) EndCause() {
	if r == nil {
		return
	}
	if r.ncause > 0 {
		r.ncause--
	}
}

// --- record emission -----------------------------------------------------

// Hdr writes the run header: the host name, the lower layer's MTU, and
// the resolved Config as pre-marshaled JSON. Called once, at stack
// assembly — not on the hot path.
func (r *Recorder) Hdr(host string, mtu int, cfg []byte) {
	r.buf = r.buf[:0]
	r.buf = append(r.buf, `{"k":"hdr"`...)
	r.buf = appendStrField(r.buf, "host", host)
	r.buf = appendIntField(r.buf, "mtu", int64(mtu))
	r.buf = append(r.buf, `,"cfg":`...)
	r.buf = append(r.buf, cfg...)
	r.buf = append(r.buf, '}')
	r.flush()
}

// Fault records one scripted fault-plane transition (internal/fault)
// applied to the wire beneath this host: the transition kind ("fk") and
// its rendered arguments ("fd") at virtual time at. The record is pure
// observation — replay skips it — but it timestamps the fault timeline
// inside the journal so any divergence can be attributed to a scripted
// event. Transitions are rare; this is not a hot path, and the record
// carries no action seq so the executor's numbering is undisturbed.
func (r *Recorder) Fault(at int64, kind, detail string) {
	r.buf = r.buf[:0]
	r.buf = append(r.buf, `{"k":"flt"`...)
	r.buf = appendIntField(r.buf, "at", at)
	r.buf = appendStrField(r.buf, "fk", kind)
	r.buf = appendStrField(r.buf, "fd", detail)
	r.buf = append(r.buf, '}')
	r.flush()
}

// OpenConn records a connection's creation and returns its seq.
//
//foxvet:hotpath
func (r *Recorder) OpenConn(at int64, conn, origin, raddr string, rport, lport uint16, pull, hop bool) uint64 {
	r.seq++
	q := r.seq
	r.buf = r.buf[:0]
	r.buf = append(r.buf, `{"k":"open"`...)
	r.buf = appendUintField(r.buf, "q", q)
	r.buf = appendIntField(r.buf, "at", at)
	r.buf = appendStrField(r.buf, "c", conn)
	r.buf = appendStrField(r.buf, "o", origin)
	r.buf = appendStrField(r.buf, "ra", raddr)
	r.buf = appendIntField(r.buf, "rp", int64(rport))
	r.buf = appendIntField(r.buf, "lp", int64(lport))
	r.buf = appendBoolField(r.buf, "pull", pull)
	r.buf = appendBoolField(r.buf, "hop", hop)
	r.buf = r.appendCause(r.buf)
	r.buf = append(r.buf, '}')
	r.flush()
	return q
}

// UserOp records a user call (write/read/close/abort/wurg, or the open
// of an active connection) and returns its seq.
//
//foxvet:hotpath
func (r *Recorder) UserOp(at int64, conn, op string, n int) uint64 {
	r.seq++
	q := r.seq
	r.buf = r.buf[:0]
	r.buf = append(r.buf, `{"k":"uop"`...)
	r.buf = appendUintField(r.buf, "q", q)
	r.buf = appendIntField(r.buf, "at", at)
	r.buf = appendStrField(r.buf, "c", conn)
	r.buf = appendStrField(r.buf, "op", op)
	r.buf = appendIntField(r.buf, "n", int64(n))
	r.buf = r.appendCause(r.buf)
	r.buf = append(r.buf, '}')
	r.flush()
	return q
}

// Enqueue records one tcp_action entering a connection's to_do queue,
// attributed to the current cause, and returns its seq.
//
//foxvet:hotpath
func (r *Recorder) Enqueue(at int64, conn, act string, args []byte) uint64 {
	r.seq++
	q := r.seq
	r.buf = r.buf[:0]
	r.buf = append(r.buf, `{"k":"enq"`...)
	r.buf = appendUintField(r.buf, "q", q)
	r.buf = appendIntField(r.buf, "at", at)
	r.buf = appendStrField(r.buf, "c", conn)
	r.buf = appendStrField(r.buf, "a", act)
	if len(args) > 0 {
		r.buf = append(r.buf, `,"args":"`...)
		r.buf = appendEscaped(r.buf, args)
		r.buf = append(r.buf, '"')
	}
	r.buf = r.appendCause(r.buf)
	r.buf = append(r.buf, '}')
	r.flush()
	return q
}

// Beg records the executor starting to perform the action whose enq
// record carried actionSeq.
//
//foxvet:hotpath
func (r *Recorder) Beg(at int64, conn string, actionSeq uint64) {
	r.buf = r.buf[:0]
	r.buf = append(r.buf, `{"k":"beg"`...)
	r.buf = appendIntField(r.buf, "at", at)
	r.buf = appendStrField(r.buf, "c", conn)
	r.buf = appendUintField(r.buf, "eq", actionSeq)
	r.buf = append(r.buf, '}')
	r.flush()
}

// End records the action's completion with its TCB delta. delta is a
// comma-separated sequence of `"field":[pre,post]` pairs built with
// AppendDelta (empty when nothing changed).
//
//foxvet:hotpath
func (r *Recorder) End(conn string, actionSeq uint64, delta []byte) {
	r.buf = r.buf[:0]
	r.buf = append(r.buf, `{"k":"end"`...)
	r.buf = appendStrField(r.buf, "c", conn)
	r.buf = appendUintField(r.buf, "eq", actionSeq)
	r.buf = append(r.buf, `,"d":{`...)
	r.buf = append(r.buf, delta...)
	r.buf = append(r.buf, '}', '}')
	r.flush()
}

// AppendDelta appends one changed-field pair to a delta fragment being
// built in dst, returning the extended slice. Callers keep dst in a
// reused buffer (a struct field), so steady-state appends don't allocate.
func AppendDelta(dst []byte, name string, pre, post int64) []byte {
	if len(dst) > 0 {
		dst = append(dst, ',')
	}
	dst = append(dst, '"')
	dst = append(dst, name...)
	dst = append(dst, `":[`...)
	dst = strconv.AppendInt(dst, pre, 10)
	dst = append(dst, ',')
	dst = strconv.AppendInt(dst, post, 10)
	dst = append(dst, ']')
	return dst
}

// flush frames the JSON body in r.buf with its length prefix and hands
// it to the writer in a single Write.
//
//foxvet:hotpath
func (r *Recorder) flush() {
	if r.err != nil {
		return
	}
	r.out = r.out[:0]
	r.out = strconv.AppendInt(r.out, int64(len(r.buf)), 10)
	r.out = append(r.out, ' ')
	r.out = append(r.out, r.buf...)
	r.out = append(r.out, '\n')
	_, r.err = r.w.Write(r.out)
}

// appendCause renders the innermost cause frame into dst.
func (r *Recorder) appendCause(dst []byte) []byte {
	if r.ncause == 0 {
		return dst
	}
	f := &r.causes[r.ncause-1]
	switch f.kind {
	case CauseAct, CauseUser:
		dst = appendStrField(dst, "ck", f.kind)
		dst = appendUintField(dst, "cz", f.ref)
	case CausePkt:
		dst = appendStrField(dst, "ck", f.kind)
		dst = appendUintField(dst, "ps", uint64(f.pSeq))
		dst = appendUintField(dst, "pa", uint64(f.pAck))
		dst = appendIntField(dst, "pf", int64(f.pFlags))
		dst = appendIntField(dst, "pw", int64(f.pWnd))
		dst = appendIntField(dst, "pu", int64(f.pUp))
		dst = appendIntField(dst, "pm", int64(f.pMSS))
		dst = appendIntField(dst, "pl", int64(f.pLen))
	case CauseTimer:
		dst = appendStrField(dst, "ck", f.kind)
		dst = appendIntField(dst, "tw", int64(f.timer))
	}
	return dst
}

// --- tiny JSON append helpers --------------------------------------------

func appendIntField(dst []byte, key string, v int64) []byte {
	dst = append(dst, ',', '"')
	dst = append(dst, key...)
	dst = append(dst, '"', ':')
	return strconv.AppendInt(dst, v, 10)
}

func appendUintField(dst []byte, key string, v uint64) []byte {
	dst = append(dst, ',', '"')
	dst = append(dst, key...)
	dst = append(dst, '"', ':')
	return strconv.AppendUint(dst, v, 10)
}

func appendBoolField(dst []byte, key string, v bool) []byte {
	dst = append(dst, ',', '"')
	dst = append(dst, key...)
	dst = append(dst, '"', ':')
	if v {
		return append(dst, "true"...)
	}
	return append(dst, "false"...)
}

func appendStrField(dst []byte, key, v string) []byte {
	dst = append(dst, ',', '"')
	dst = append(dst, key...)
	dst = append(dst, `":"`...)
	for i := 0; i < len(v); i++ {
		dst = appendEscapedByte(dst, v[i])
	}
	return append(dst, '"')
}

func appendEscaped(dst, v []byte) []byte {
	for _, b := range v {
		dst = appendEscapedByte(dst, b)
	}
	return dst
}

func appendEscapedByte(dst []byte, b byte) []byte {
	switch {
	case b == '"' || b == '\\':
		return append(dst, '\\', b)
	case b < 0x20:
		dst = append(dst, `\u00`...)
		const hex = "0123456789abcdef"
		return append(dst, hex[b>>4], hex[b&0xf])
	default:
		return append(dst, b)
	}
}
