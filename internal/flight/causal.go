package flight

import (
	"fmt"
	"io"
)

// Index maps sequence numbers to their open/uop/enq records for causal
// walks.
func Index(recs []Record) map[uint64]*Record {
	bySeq := make(map[uint64]*Record, len(recs))
	for i := range recs {
		if recs[i].Seq != 0 {
			bySeq[recs[i].Seq] = &recs[i]
		}
	}
	return bySeq
}

// Chain walks the cause links backward from seq and returns the chain
// root-first: the packet arrival, timer expiration, or user call that
// ultimately led to the action, then every intermediate record down to
// seq itself.
func Chain(recs []Record, seq uint64) ([]*Record, error) {
	bySeq := Index(recs)
	var chain []*Record
	cur, ok := bySeq[seq]
	if !ok {
		return nil, fmt.Errorf("no record with seq %d", seq)
	}
	for cur != nil {
		chain = append(chain, cur)
		if cur.CK != CauseAct && cur.CK != CauseUser {
			break
		}
		parent, ok := bySeq[cur.Cz]
		if !ok {
			return nil, fmt.Errorf("seq %d names cause %d, which is not in the journal", cur.Seq, cur.Cz)
		}
		if parent.Seq >= cur.Seq {
			return nil, fmt.Errorf("seq %d names cause %d, which does not precede it", cur.Seq, cur.Cz)
		}
		cur = parent
	}
	// Reverse to root-first.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain, nil
}

// Describe renders one record as a single human line.
func Describe(r *Record) string {
	switch r.Kind {
	case KindOpen:
		return fmt.Sprintf("#%d t=%dns open %s %s%s", r.Seq, r.At, r.Origin, r.Conn, causeSuffix(r))
	case KindUop:
		return fmt.Sprintf("#%d t=%dns user %s n=%d on %s%s", r.Seq, r.At, r.Op, r.N, r.Conn, causeSuffix(r))
	case KindEnq:
		s := fmt.Sprintf("#%d t=%dns enqueue %s", r.Seq, r.At, r.Action)
		if r.Args != "" {
			s += "{" + r.Args + "}"
		}
		return s + " on " + r.Conn + causeSuffix(r)
	default:
		return fmt.Sprintf("t=%dns %s on %s", r.At, r.Kind, r.Conn)
	}
}

func causeSuffix(r *Record) string {
	switch r.CK {
	case CausePkt:
		return fmt.Sprintf("  <- packet seq=%d ack=%d flags=%#02x wnd=%d len=%d", r.PSeq, r.PAck, r.PFlag, r.PWnd, r.PLen)
	case CauseTimer:
		return fmt.Sprintf("  <- timer %d expired", r.Timer)
	case CauseAct:
		return fmt.Sprintf("  <- while performing #%d", r.Cz)
	case CauseUser:
		return fmt.Sprintf("  <- from user call #%d", r.Cz)
	}
	return ""
}

// Dot writes the journal's causal graph as Graphviz: one node per
// open/uop/enq record, one edge per cause link, with packet and timer
// roots rendered as their own nodes.
func Dot(w io.Writer, recs []Record) error {
	if _, err := fmt.Fprintln(w, "digraph flight {"); err != nil {
		return err
	}
	fmt.Fprintln(w, `  rankdir=LR; node [shape=box, fontsize=10];`)
	for i := range recs {
		r := &recs[i]
		if r.Seq == 0 {
			continue
		}
		var label, attr string
		switch r.Kind {
		case KindOpen:
			label = fmt.Sprintf("open %s\\n%s", r.Origin, r.Conn)
			attr = `, style=filled, fillcolor="#cfe8cf"`
		case KindUop:
			label = fmt.Sprintf("%s n=%d", r.Op, r.N)
			attr = `, style=filled, fillcolor="#cfd8e8"`
		case KindEnq:
			label = r.Action
			if r.Args != "" {
				label += "\\n" + r.Args
			}
		default:
			continue
		}
		fmt.Fprintf(w, "  n%d [label=\"#%d %s\"%s];\n", r.Seq, r.Seq, label, attr)
		switch r.CK {
		case CauseAct, CauseUser:
			fmt.Fprintf(w, "  n%d -> n%d;\n", r.Cz, r.Seq)
		case CausePkt:
			fmt.Fprintf(w, "  p%d [label=\"pkt seq=%d len=%d\", shape=ellipse, style=filled, fillcolor=\"#e8d8cf\"];\n", r.Seq, r.PSeq, r.PLen)
			fmt.Fprintf(w, "  p%d -> n%d;\n", r.Seq, r.Seq)
		case CauseTimer:
			fmt.Fprintf(w, "  t%d [label=\"timer %d\", shape=ellipse, style=filled, fillcolor=\"#e8e3cf\"];\n", r.Seq, r.Timer)
			fmt.Fprintf(w, "  t%d -> n%d;\n", r.Seq, r.Seq)
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
