package flight

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// maxRecordLen bounds a single record's JSON body. Anything larger is
// corruption, not data: the biggest legitimate record is a hdr with the
// resolved Config, well under a kilobyte.
const maxRecordLen = 1 << 20

// Record is the decoded form of any journal record; which fields are
// meaningful depends on Kind. One fat struct keeps decoding a single
// json.Unmarshal and lets tools switch on Kind without type assertions.
type Record struct {
	Kind string `json:"k"`
	Seq  uint64 `json:"q"`  // open/uop/enq: global sequence number
	At   int64  `json:"at"` // virtual timestamp, ns
	Conn string `json:"c"`  // connection name (connKey.String())

	// hdr
	Host string          `json:"host"`
	MTU  int             `json:"mtu"`
	Cfg  json.RawMessage `json:"cfg"`

	// open
	Origin string `json:"o"`    // "active" | "passive"
	Pull   bool   `json:"pull"` // pull-model handler (no Data callback)
	Hop    bool   `json:"hop"`  // joined a listener's half-open list
	RAddr  string `json:"ra"`
	RPort  uint16 `json:"rp"`
	LPort  uint16 `json:"lp"`

	// uop
	Op string `json:"op"` // write | read | close | abort | wurg
	N  int    `json:"n"`

	// enq
	Action string `json:"a"`
	Args   string `json:"args"`

	// cause (open/uop/enq)
	CK    string `json:"ck"` // "" | act | user | pkt | tmr
	Cz    uint64 `json:"cz"` // act/user: seq of the causing record
	PSeq  uint32 `json:"ps"` // pkt digest...
	PAck  uint32 `json:"pa"`
	PFlag uint8  `json:"pf"`
	PWnd  uint16 `json:"pw"`
	PUp   uint16 `json:"pu"`
	PMSS  uint16 `json:"pm"`
	PLen  int    `json:"pl"`
	Timer int    `json:"tw"` // tmr: which timer expired

	// beg/end
	EqSeq uint64              `json:"eq"` // seq of the enq record performed
	Delta map[string][2]int64 `json:"d"`  // end: changed fields, pre/post
}

// ReadAll decodes a whole journal. Any framing or JSON error is fatal —
// a journal is either intact or it is evidence, and a truncated tail is
// reported as such.
func ReadAll(r io.Reader) ([]Record, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	var recs []Record
	for i := 0; ; i++ {
		rec, err := readRecord(br)
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, fmt.Errorf("record %d: %w", i, err)
		}
		recs = append(recs, *rec)
	}
}

// readRecord reads one length-prefixed record: ASCII decimal length, a
// space, the JSON body, a newline.
func readRecord(br *bufio.Reader) (*Record, error) {
	n := 0
	digits := 0
	for {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF && digits == 0 {
				return nil, io.EOF
			}
			return nil, fmt.Errorf("truncated length prefix: %w", err)
		}
		if b == ' ' {
			if digits == 0 {
				return nil, fmt.Errorf("empty length prefix")
			}
			break
		}
		if b < '0' || b > '9' {
			return nil, fmt.Errorf("bad length prefix byte %q", b)
		}
		n = n*10 + int(b-'0')
		digits++
		if n > maxRecordLen {
			return nil, fmt.Errorf("record length %d exceeds limit", n)
		}
	}
	body := make([]byte, n+1)
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, fmt.Errorf("truncated record body (want %d bytes): %w", n, err)
	}
	if body[n] != '\n' {
		return nil, fmt.Errorf("record not newline-terminated (got %q)", body[n])
	}
	rec := &Record{}
	if err := json.Unmarshal(body[:n], rec); err != nil {
		return nil, fmt.Errorf("bad record JSON: %w", err)
	}
	if rec.Kind == "" {
		return nil, fmt.Errorf("record missing kind")
	}
	return rec, nil
}
