package flight

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// maxRecordLen bounds a single record's JSON body. Anything larger is
// corruption, not data: the biggest legitimate record is a hdr with the
// resolved Config, well under a kilobyte.
const maxRecordLen = 1 << 20

// Record is the decoded form of any journal record; which fields are
// meaningful depends on Kind. One fat struct keeps decoding a single
// json.Unmarshal and lets tools switch on Kind without type assertions.
type Record struct {
	Kind string `json:"k"`
	Seq  uint64 `json:"q"`  // open/uop/enq: global sequence number
	At   int64  `json:"at"` // virtual timestamp, ns
	Conn string `json:"c"`  // connection name (connKey.String())

	// hdr
	Host string          `json:"host"`
	MTU  int             `json:"mtu"`
	Cfg  json.RawMessage `json:"cfg"`

	// open
	Origin string `json:"o"`    // "active" | "passive"
	Pull   bool   `json:"pull"` // pull-model handler (no Data callback)
	Hop    bool   `json:"hop"`  // joined a listener's half-open list
	RAddr  string `json:"ra"`
	RPort  uint16 `json:"rp"`
	LPort  uint16 `json:"lp"`

	// uop
	Op string `json:"op"` // write | read | close | abort | wurg
	N  int    `json:"n"`

	// enq
	Action string `json:"a"`
	Args   string `json:"args"`

	// cause (open/uop/enq)
	CK    string `json:"ck"` // "" | act | user | pkt | tmr
	Cz    uint64 `json:"cz"` // act/user: seq of the causing record
	PSeq  uint32 `json:"ps"` // pkt digest...
	PAck  uint32 `json:"pa"`
	PFlag uint8  `json:"pf"`
	PWnd  uint16 `json:"pw"`
	PUp   uint16 `json:"pu"`
	PMSS  uint16 `json:"pm"`
	PLen  int    `json:"pl"`
	Timer int    `json:"tw"` // tmr: which timer expired

	// beg/end
	EqSeq uint64              `json:"eq"` // seq of the enq record performed
	Delta map[string][2]int64 `json:"d"`  // end: changed fields, pre/post

	// seal (see internal/flight/seal): one Merkle batch committed into
	// the sealed hash chain. Hashes are lowercase hex SHA-256.
	Batch     uint64 `json:"b"`    // batch number, 0-based
	LeafFirst uint64 `json:"lf"`   // global index of the batch's first leaf
	LeafN     int    `json:"ln"`   // leaves under this seal
	Root      string `json:"root"` // Merkle root over the batch's leaf hashes
	Prev      string `json:"prev"` // previous seal's hash (zeros for batch 0)
	SealH     string `json:"sh"`   // this seal's chain hash

	// flt: one scripted fault-plane transition (internal/fault) applied
	// to the wire beneath this host, for divergence attribution.
	FaultKind   string `json:"fk"` // transition kind, e.g. "partition"
	FaultDetail string `json:"fd"` // rendered transition arguments

	// compaction tombstone: a cold record whose bulky payload was
	// dropped keeps the SHA-256 of its original JSON body here, so the
	// batch root above it still verifies.
	H string `json:"h"`
}

// Corruption locates a framing or decoding failure precisely: which
// segment file, the byte offset of the offending record's frame, and its
// record index within that segment. Segment is "" when the journal was
// read from a single stream.
type Corruption struct {
	Segment string
	Offset  int64
	Index   int
	Err     error
}

func (c *Corruption) Error() string {
	if c.Segment != "" {
		return fmt.Sprintf("segment %s: record %d at offset %d: %v", c.Segment, c.Index, c.Offset, c.Err)
	}
	return fmt.Sprintf("record %d at offset %d: %v", c.Index, c.Offset, c.Err)
}

func (c *Corruption) Unwrap() error { return c.Err }

// Scanner reads length-prefixed journal records one at a time, tracking
// byte offsets so corruption can be located, and exposing each record's
// raw JSON body for hashing (see internal/flight/seal).
type Scanner struct {
	br   *bufio.Reader
	off  int64 // offset of the NEXT record's frame
	last int64 // offset of the last returned record's frame
	idx  int   // records returned so far
	body []byte
	rec  Record
}

// NewScanner returns a scanner over one journal stream.
func NewScanner(r io.Reader) *Scanner {
	return &Scanner{br: bufio.NewReaderSize(r, 64<<10)}
}

// Next decodes the next record. It returns io.EOF at a clean end of
// stream; any other error is a *Corruption locating the failure. The
// returned pointer and Body are valid until the next call.
func (s *Scanner) Next() (*Record, error) {
	start := s.off
	body, n, err := s.readFrame()
	if err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		return nil, &Corruption{Offset: start, Index: s.idx, Err: err}
	}
	s.off += int64(n)
	s.rec = Record{}
	if err := json.Unmarshal(body, &s.rec); err != nil {
		return nil, &Corruption{Offset: start, Index: s.idx, Err: fmt.Errorf("bad record JSON: %w", err)}
	}
	if s.rec.Kind == "" {
		return nil, &Corruption{Offset: start, Index: s.idx, Err: fmt.Errorf("record missing kind")}
	}
	s.last = start
	s.idx++
	s.body = body
	return &s.rec, nil
}

// Body returns the raw JSON body of the record Next last returned. The
// slice is only valid until the next call to Next.
func (s *Scanner) Body() []byte { return s.body }

// Offset returns the byte offset of the frame of the record Next last
// returned.
func (s *Scanner) Offset() int64 { return s.last }

// Index returns how many records have been returned so far.
func (s *Scanner) Index() int { return s.idx }

// readFrame reads one length-prefixed frame: ASCII decimal length, a
// space, the JSON body, a newline. It returns the body and the total
// frame size in bytes.
func (s *Scanner) readFrame() ([]byte, int, error) {
	n := 0
	digits := 0
	for {
		b, err := s.br.ReadByte()
		if err != nil {
			if err == io.EOF && digits == 0 {
				return nil, 0, io.EOF
			}
			return nil, 0, fmt.Errorf("truncated length prefix: %w", err)
		}
		if b == ' ' {
			if digits == 0 {
				return nil, 0, fmt.Errorf("empty length prefix")
			}
			break
		}
		if b < '0' || b > '9' {
			return nil, 0, fmt.Errorf("bad length prefix byte %q", b)
		}
		n = n*10 + int(b-'0')
		digits++
		if n > maxRecordLen {
			return nil, 0, fmt.Errorf("record length %d exceeds limit", n)
		}
	}
	if cap(s.body) < n+1 {
		s.body = make([]byte, n+1)
	}
	body := s.body[:n+1]
	if _, err := io.ReadFull(s.br, body); err != nil {
		return nil, 0, fmt.Errorf("truncated record body (want %d bytes): %w", n, err)
	}
	if body[n] != '\n' {
		return nil, 0, fmt.Errorf("record not newline-terminated (got %q)", body[n])
	}
	return body[:n], digits + 1 + n + 1, nil
}

// ReadAll decodes a whole journal. Any framing or JSON error is fatal —
// a journal is either intact or it is evidence, and a truncated tail is
// reported as a *Corruption locating exactly where the stream broke.
func ReadAll(r io.Reader) ([]Record, error) {
	sc := NewScanner(r)
	var recs []Record
	for {
		rec, err := sc.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, *rec)
	}
}
