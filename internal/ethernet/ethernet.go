// Package ethernet implements the link layer of the stack: framing,
// frame-check sequence, ethertype demultiplexing, and broadcast, over a
// simulated wire.Port. It satisfies the role of the paper's Eth functor
// (Fig. 3: `structure Eth = Eth (structure Lower = Device ...)`).
//
// The package also provides Transport, a protocol.Network directly over
// the link layer, which is what makes the paper's non-standard stack —
// TCP running immediately over Ethernet, no IP — assemble cleanly. The
// paper (footnote 1) notes this is only sound when the Ethernet
// implementation really computes its CRC; our simulated device computes
// and verifies a real CRC-32, so the example holds here by construction.
package ethernet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/basis"
	"repro/internal/profile"
	"repro/internal/protocol"
	"repro/internal/stats"
	"repro/internal/wire"
)

// Addr is a 48-bit MAC address.
type Addr [6]byte

// Broadcast is the all-ones broadcast address.
var Broadcast = Addr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String formats the address in colon-hex.
func (a Addr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}

// HostAddr returns a locally-administered unicast address derived from n,
// convenient for assembling simulated hosts.
func HostAddr(n byte) Addr { return Addr{0x02, 0x00, 0x00, 0x00, 0x00, n} }

// Well-known ethertypes.
const (
	TypeIPv4 uint16 = 0x0800
	TypeARP  uint16 = 0x0806
	// TypeFoxTCP is the ethertype this repo uses for the paper's Fig. 3
	// Special_Tcp stack: TCP segments carried directly in Ethernet
	// frames. 0x88B5 is the IEEE "local experimental" ethertype.
	TypeFoxTCP uint16 = 0x88b5
)

const (
	headerLen  = 14
	fcsLen     = 4
	minPayload = 46
	// MTU is the classic Ethernet payload limit.
	MTU = wire.MaxFrame - headerLen - fcsLen
	// Headroom and Tailroom are the byte budgets upper layers must
	// reserve: 14 bytes of header in front; FCS plus worst-case padding
	// behind.
	Headroom = headerLen
	Tailroom = fcsLen + minPayload
)

// Stats counts link-layer events.
type Stats struct {
	TxFrames      uint64
	RxFrames      uint64
	RxBadFCS      uint64
	RxWrongAddr   uint64
	RxUnknownType uint64
	RxRunt        uint64
}

// Handler receives a demultiplexed frame's payload.
type Handler func(src, dst Addr, pkt *basis.Packet)

// Config parameterizes the layer.
type Config struct {
	// VerifyFCS controls whether received frames' CRCs are checked
	// (sending always computes them). Defaults to true; tests of the
	// corruption path may disable it.
	VerifyFCS *bool
	Trace     *basis.Tracer
	Prof      *profile.Profile
	// Metrics is the interfaces-group counter set; New allocates a
	// detached one when none is supplied.
	Metrics *stats.EthMIB
}

// Ethernet is one host's link layer on one port.
type Ethernet struct {
	port      *wire.Port
	local     Addr
	verifyFCS bool
	handlers  map[uint16]Handler
	trace     *basis.Tracer
	prof      *profile.Profile
	stats     Stats
	mib       *stats.EthMIB
}

// New attaches a link layer with address local to port.
func New(port *wire.Port, local Addr, cfg Config) *Ethernet {
	verify := true
	if cfg.VerifyFCS != nil {
		verify = *cfg.VerifyFCS
	}
	if cfg.Metrics == nil {
		cfg.Metrics = new(stats.EthMIB)
	}
	e := &Ethernet{
		port:      port,
		local:     local,
		verifyFCS: verify,
		handlers:  make(map[uint16]Handler),
		trace:     cfg.Trace,
		prof:      cfg.Prof,
		mib:       cfg.Metrics,
	}
	port.SetHandler(e.receive)
	return e
}

// Name implements protocol.Protocol.
func (e *Ethernet) Name() string { return "eth" }

// MTUSize implements protocol.Protocol's MTU.
func (e *Ethernet) MTU() int { return MTU }

// LocalAddr returns this interface's MAC address.
func (e *Ethernet) LocalAddr() Addr { return e.local }

// Stats returns a snapshot of the counters.
func (e *Ethernet) Stats() Stats { return e.stats }

// Register installs the upcall for one ethertype, replacing any previous
// registration.
func (e *Ethernet) Register(etherType uint16, h Handler) {
	e.handlers[etherType] = h
}

// ErrTooLarge reports a payload exceeding the MTU.
var ErrTooLarge = errors.New("ethernet: payload exceeds MTU")

// Send frames pkt to dst under etherType and offers it to the wire. The
// packet needs Headroom bytes in front and Tailroom behind; the header,
// padding, and FCS are written in place — no copy.
func (e *Ethernet) Send(dst Addr, etherType uint16, pkt *basis.Packet) error {
	sec := e.prof.Start(profile.CatEth)
	defer sec.Stop()
	if pkt.Len() > MTU {
		return ErrTooLarge
	}
	if pad := minPayload - pkt.Len(); pad > 0 {
		pz := pkt.Extend(pad)
		for i := range pz {
			pz[i] = 0
		}
	}
	h := pkt.Push(headerLen)
	copy(h[0:6], dst[:])
	copy(h[6:12], e.local[:])
	binary.BigEndian.PutUint16(h[12:14], etherType)
	fcs := crc32.ChecksumIEEE(pkt.Bytes())
	binary.LittleEndian.PutUint32(pkt.Extend(fcsLen), fcs)
	e.stats.TxFrames++
	e.mib.OutFrames.Inc()
	e.mib.OutOctets.Add(uint64(pkt.Len()))
	if e.trace.On() {
		e.trace.Printf("tx %s -> %s type %#04x len %d", e.local, dst, etherType, pkt.Len())
	}
	e.port.Send(pkt)
	return nil
}

// receive is the device upcall: verify, filter, demultiplex, and deliver.
func (e *Ethernet) receive(pkt *basis.Packet) {
	sec := e.prof.Start(profile.CatEth)
	if pkt.Len() < headerLen+fcsLen {
		e.stats.RxRunt++
		e.mib.InRunts.Inc()
		sec.Stop()
		return
	}
	if e.verifyFCS {
		body := pkt.Bytes()
		want := binary.LittleEndian.Uint32(body[len(body)-fcsLen:])
		if crc32.ChecksumIEEE(body[:len(body)-fcsLen]) != want {
			e.stats.RxBadFCS++
			e.mib.InErrors.Inc()
			e.trace.Printf("rx bad FCS, dropped (%d bytes)", pkt.Len())
			sec.Stop()
			return
		}
	}
	pkt.TrimTail(fcsLen)
	h := pkt.Pull(headerLen)
	var dst, src Addr
	copy(dst[:], h[0:6])
	copy(src[:], h[6:12])
	etherType := binary.BigEndian.Uint16(h[12:14])
	if dst != e.local && dst != Broadcast {
		e.stats.RxWrongAddr++
		e.mib.InDiscards.Inc()
		sec.Stop()
		return
	}
	handler, ok := e.handlers[etherType]
	if !ok {
		e.stats.RxUnknownType++
		e.mib.InUnknownProtos.Inc()
		e.trace.Printf("rx unknown ethertype %#04x from %s", etherType, src)
		sec.Stop()
		return
	}
	e.stats.RxFrames++
	e.mib.InFrames.Inc()
	e.mib.InOctets.Add(uint64(pkt.Len()))
	if e.trace.On() {
		e.trace.Printf("rx %s -> %s type %#04x len %d", src, dst, etherType, pkt.Len())
	}
	sec.Stop()
	handler(src, dst, pkt)
}

// Transport adapts the link layer to protocol.Network so a transport
// protocol can run directly over Ethernet — the paper's Special_Tcp
// composition. There is no pseudo-header at this layer, so
// PseudoHeaderChecksum is zero and the paper's example of disabling TCP
// checksums over a CRC-protected link applies.
//
// TCP segments carry no length field of their own (over IP the total
// length of the IP header supplies it, surfaced through IP_AUX's info
// function), so the adapter prepends a 2-byte payload length and strips
// Ethernet minimum-frame padding with it on receive.
type Transport struct {
	e         *Ethernet
	etherType uint16
}

const lengthPrefix = 2

var _ protocol.Network = (*Transport)(nil)

// Transport returns a protocol.Network carrying etherType frames.
func (e *Ethernet) Transport(etherType uint16) *Transport {
	return &Transport{e: e, etherType: etherType}
}

// LocalAddr implements protocol.Network.
func (t *Transport) LocalAddr() protocol.Address { return t.e.local }

// Attach implements protocol.Network.
func (t *Transport) Attach(h protocol.Handler) {
	t.e.Register(t.etherType, func(src, dst Addr, pkt *basis.Packet) {
		lenb := pkt.Pull(lengthPrefix)
		if lenb == nil {
			return
		}
		if !pkt.TrimTo(int(binary.BigEndian.Uint16(lenb))) {
			return // length prefix larger than the frame: drop
		}
		h(src, pkt)
	})
}

// Send implements protocol.Network.
func (t *Transport) Send(dst protocol.Address, pkt *basis.Packet) error {
	mac, ok := dst.(Addr)
	if !ok {
		return fmt.Errorf("ethernet: cannot send to %T address %v", dst, dst)
	}
	n := pkt.Len()
	if n > 0xffff {
		return fmt.Errorf("ethernet: frame length %d overflows the length prefix", n)
	}
	binary.BigEndian.PutUint16(pkt.Push(lengthPrefix), uint16(n))
	return t.e.Send(mac, t.etherType, pkt)
}

// MTU implements protocol.Network.
func (t *Transport) MTU() int { return MTU - lengthPrefix }

// Headroom implements protocol.Network.
func (t *Transport) Headroom() int { return Headroom + lengthPrefix }

// Tailroom implements protocol.Network.
func (t *Transport) Tailroom() int { return Tailroom }

// PseudoHeaderChecksum implements protocol.Network; Ethernet carries no
// pseudo-header.
func (t *Transport) PseudoHeaderChecksum(dst protocol.Address, length int) uint16 { return 0 }
