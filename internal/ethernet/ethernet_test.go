package ethernet

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/basis"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/wire"
)

type host struct {
	eth  *Ethernet
	addr Addr
}

// twoHosts builds two link layers on a fresh segment inside a scheduler
// run and hands them to body.
func twoHosts(t *testing.T, wcfg wire.Config, ecfg Config, body func(s *sim.Scheduler, a, b host)) {
	t.Helper()
	s := sim.New(sim.Config{})
	s.Run(func() {
		seg := wire.NewSegment(s, wcfg, nil)
		pa := seg.NewPort("a", nil)
		pb := seg.NewPort("b", nil)
		a := host{addr: HostAddr(1)}
		b := host{addr: HostAddr(2)}
		a.eth = New(pa, a.addr, ecfg)
		b.eth = New(pb, b.addr, ecfg)
		body(s, a, b)
	})
}

func newPayload(data []byte) *basis.Packet {
	return basis.NewPacket(Headroom, Tailroom, data)
}

func TestUnicastDelivery(t *testing.T) {
	twoHosts(t, wire.Config{}, Config{}, func(s *sim.Scheduler, a, b host) {
		var gotSrc Addr
		var gotData []byte
		b.eth.Register(0x1234, func(src, dst Addr, pkt *basis.Packet) {
			gotSrc = src
			gotData = append([]byte(nil), pkt.Bytes()...)
		})
		payload := []byte("link layer payload exceeding the 46-byte minimum !!")
		if err := a.eth.Send(b.addr, 0x1234, newPayload(payload)); err != nil {
			t.Fatal(err)
		}
		s.Sleep(10 * time.Millisecond)
		if gotSrc != a.addr {
			t.Fatalf("src = %s", gotSrc)
		}
		if !bytes.Equal(gotData, payload) {
			t.Fatalf("payload = %q", gotData)
		}
	})
}

func TestShortPayloadPaddedAndTrimmedByUpperLayer(t *testing.T) {
	twoHosts(t, wire.Config{}, Config{}, func(s *sim.Scheduler, a, b host) {
		var got []byte
		b.eth.Register(7, func(src, dst Addr, pkt *basis.Packet) {
			got = append([]byte(nil), pkt.Bytes()...)
		})
		a.eth.Send(b.addr, 7, newPayload([]byte("tiny")))
		s.Sleep(10 * time.Millisecond)
		if len(got) != minPayload {
			t.Fatalf("padded payload length = %d, want %d", len(got), minPayload)
		}
		if !bytes.HasPrefix(got, []byte("tiny")) {
			t.Fatalf("payload prefix = %q", got[:8])
		}
		for _, by := range got[4:] {
			if by != 0 {
				t.Fatal("padding not zeroed")
			}
		}
	})
}

func TestWrongDestinationFiltered(t *testing.T) {
	twoHosts(t, wire.Config{}, Config{}, func(s *sim.Scheduler, a, b host) {
		got := false
		b.eth.Register(7, func(src, dst Addr, pkt *basis.Packet) { got = true })
		a.eth.Send(HostAddr(99), 7, newPayload([]byte("not for b")))
		s.Sleep(10 * time.Millisecond)
		if got {
			t.Fatal("frame for another MAC delivered")
		}
		if b.eth.Stats().RxWrongAddr != 1 {
			t.Fatalf("RxWrongAddr = %d", b.eth.Stats().RxWrongAddr)
		}
	})
}

func TestBroadcastDelivered(t *testing.T) {
	twoHosts(t, wire.Config{}, Config{}, func(s *sim.Scheduler, a, b host) {
		var gotDst Addr
		b.eth.Register(7, func(src, dst Addr, pkt *basis.Packet) { gotDst = dst })
		a.eth.Send(Broadcast, 7, newPayload([]byte("to everyone")))
		s.Sleep(10 * time.Millisecond)
		if gotDst != Broadcast {
			t.Fatalf("dst = %s", gotDst)
		}
	})
}

func TestCorruptedFrameDroppedByFCS(t *testing.T) {
	twoHosts(t, wire.Config{Corrupt: 1, Seed: 3}, Config{}, func(s *sim.Scheduler, a, b host) {
		got := false
		b.eth.Register(7, func(src, dst Addr, pkt *basis.Packet) { got = true })
		a.eth.Send(b.addr, 7, newPayload([]byte("will be corrupted")))
		s.Sleep(10 * time.Millisecond)
		if got {
			t.Fatal("corrupted frame passed the FCS check")
		}
		if b.eth.Stats().RxBadFCS != 1 {
			t.Fatalf("RxBadFCS = %d", b.eth.Stats().RxBadFCS)
		}
	})
}

func TestVerifyFCSDisabledLetsCorruptionThrough(t *testing.T) {
	off := false
	twoHosts(t, wire.Config{Corrupt: 1, Seed: 3}, Config{VerifyFCS: &off}, func(s *sim.Scheduler, a, b host) {
		got := false
		b.eth.Register(7, func(src, dst Addr, pkt *basis.Packet) { got = true })
		a.eth.Send(b.addr, 7, newPayload([]byte("corrupted but unchecked..")))
		s.Sleep(10 * time.Millisecond)
		if !got {
			// The corruption may have hit the header's dst MAC, in which
			// case address filtering drops it; both outcomes are
			// acceptable, but the FCS counter must stay zero.
			if b.eth.Stats().RxBadFCS != 0 {
				t.Fatal("FCS verified despite being disabled")
			}
		}
	})
}

func TestUnknownEthertypeCounted(t *testing.T) {
	twoHosts(t, wire.Config{}, Config{}, func(s *sim.Scheduler, a, b host) {
		a.eth.Send(b.addr, 0xbeef, newPayload([]byte("nobody listens")))
		s.Sleep(10 * time.Millisecond)
		if b.eth.Stats().RxUnknownType != 1 {
			t.Fatalf("RxUnknownType = %d", b.eth.Stats().RxUnknownType)
		}
	})
}

func TestOversizePayloadRejected(t *testing.T) {
	twoHosts(t, wire.Config{}, Config{}, func(s *sim.Scheduler, a, b host) {
		err := a.eth.Send(b.addr, 7, basis.NewPacket(Headroom, Tailroom, make([]byte, MTU+1)))
		if err != ErrTooLarge {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestEthertypeDemux(t *testing.T) {
	twoHosts(t, wire.Config{}, Config{}, func(s *sim.Scheduler, a, b host) {
		var got []uint16
		b.eth.Register(0x0800, func(src, dst Addr, pkt *basis.Packet) { got = append(got, 0x0800) })
		b.eth.Register(0x0806, func(src, dst Addr, pkt *basis.Packet) { got = append(got, 0x0806) })
		a.eth.Send(b.addr, 0x0806, newPayload([]byte("arp-like payload")))
		a.eth.Send(b.addr, 0x0800, newPayload([]byte("ip-like payload")))
		s.Sleep(20 * time.Millisecond)
		if len(got) != 2 || got[0] != 0x0806 || got[1] != 0x0800 {
			t.Fatalf("demux order = %#v", got)
		}
	})
}

func TestTransportAdapterRoundTrip(t *testing.T) {
	twoHosts(t, wire.Config{}, Config{}, func(s *sim.Scheduler, a, b host) {
		ta := a.eth.Transport(TypeFoxTCP)
		tb := b.eth.Transport(TypeFoxTCP)
		var got []byte
		tb.Attach(func(src protocol.Address, pkt *basis.Packet) {
			if src.(Addr) != a.addr {
				t.Errorf("transport src = %v", src)
			}
			got = append([]byte(nil), pkt.Bytes()...)
		})
		pkt := basis.NewPacket(ta.Headroom(), ta.Tailroom(), []byte("segment straight over ethernet, no IP at all"))
		if err := ta.Send(b.addr, pkt); err != nil {
			t.Fatal(err)
		}
		s.Sleep(10 * time.Millisecond)
		if string(got) != "segment straight over ethernet, no IP at all" {
			t.Fatalf("got %q", got)
		}
		if ta.PseudoHeaderChecksum(b.addr, 99) != 0 {
			t.Fatal("ethernet transport claims a pseudo-header")
		}
		if ta.MTU() != MTU-2 || ta.Headroom() != Headroom+2 || ta.Tailroom() != Tailroom {
			t.Fatal("transport geometry mismatch")
		}
	})
}

func TestTransportRejectsForeignAddressType(t *testing.T) {
	twoHosts(t, wire.Config{}, Config{}, func(s *sim.Scheduler, a, b host) {
		ta := a.eth.Transport(TypeFoxTCP)
		err := ta.Send(fakeAddr("nope"), basis.NewPacket(Headroom, Tailroom, nil))
		if err == nil {
			t.Fatal("send to a non-MAC address succeeded")
		}
	})
}

type fakeAddr string

func (f fakeAddr) String() string { return string(f) }

func TestAddrString(t *testing.T) {
	a := Addr{0x02, 0, 0xab, 1, 2, 3}
	if a.String() != "02:00:ab:01:02:03" {
		t.Fatalf("String = %s", a)
	}
}
