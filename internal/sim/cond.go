package sim

import "repro/internal/basis"

// Cond is a condition variable for coroutine threads. Because the
// scheduler is non-preemptive there is no associated mutex and no spurious
// wakeup: a thread that returns from Wait was explicitly signaled. This is
// the "synchronization … required in particular cases" the paper mentions,
// e.g. ensuring no data is delivered on a connection before the
// corresponding open has returned to the caller.
type Cond struct {
	s       *Scheduler
	waiters basis.FIFO[*Thread]
}

// NewCond returns a condition variable on s.
func NewCond(s *Scheduler) *Cond {
	return &Cond{s: s}
}

// Wait suspends the current thread until another thread calls Signal or
// Broadcast. Callers must re-check their predicate in a loop: between the
// signal and this thread's next turn, earlier-queued threads may run.
func (c *Cond) Wait() {
	c.waiters.Enqueue(c.s.current)
	c.s.block()
}

// Signal makes the longest-waiting thread ready. The caller keeps the CPU.
// It is a no-op when no thread waits.
func (c *Cond) Signal() {
	if t, ok := c.waiters.Dequeue(); ok {
		c.s.unblock(t)
	}
}

// Broadcast makes every waiting thread ready, in wait order. The caller
// keeps the CPU.
func (c *Cond) Broadcast() {
	for {
		t, ok := c.waiters.Dequeue()
		if !ok {
			return
		}
		c.s.unblock(t)
	}
}

// Waiters reports the number of waiting threads.
func (c *Cond) Waiters() int { return c.waiters.Len() }
