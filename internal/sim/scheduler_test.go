package sim

import (
	"strings"
	"testing"
	"time"
)

func det() *Scheduler { return New(Config{}) } // deterministic: no CPU charging

func TestRunExecutesMain(t *testing.T) {
	ran := false
	det().Run(func() { ran = true })
	if !ran {
		t.Fatal("main function did not run")
	}
}

func TestForkRunsAfterMainYields(t *testing.T) {
	s := det()
	var order []string
	s.Run(func() {
		s.Fork("child", func() { order = append(order, "child") })
		order = append(order, "main-before-yield")
		s.Yield()
		order = append(order, "main-after-yield")
	})
	want := "main-before-yield,child,main-after-yield"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("order = %s, want %s", got, want)
	}
}

func TestRoundRobinOrdering(t *testing.T) {
	s := det()
	var order []int
	s.Run(func() {
		for i := 1; i <= 3; i++ {
			i := i
			s.Fork("worker", func() {
				order = append(order, i)
				s.Yield()
				order = append(order, i+10)
			})
		}
		s.Yield() // let round one run
		s.Yield() // let round two run
	})
	want := []int{1, 2, 3, 11, 12, 13}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSleepAdvancesVirtualClock(t *testing.T) {
	s := det()
	var t0, t1 Time
	s.Run(func() {
		t0 = s.Now()
		s.Sleep(250 * time.Millisecond)
		t1 = s.Now()
	})
	if t1-t0 != Time(250*time.Millisecond) {
		t.Fatalf("slept %v of virtual time", time.Duration(t1-t0))
	}
}

func TestSleepersWakeInDeadlineOrder(t *testing.T) {
	s := det()
	var order []string
	s.Run(func() {
		s.Fork("late", func() { s.Sleep(30 * time.Millisecond); order = append(order, "late") })
		s.Fork("early", func() { s.Sleep(10 * time.Millisecond); order = append(order, "early") })
		s.Fork("mid", func() { s.Sleep(20 * time.Millisecond); order = append(order, "mid") })
		s.Sleep(40 * time.Millisecond)
	})
	if got := strings.Join(order, ","); got != "early,mid,late" {
		t.Fatalf("wake order = %s", got)
	}
}

func TestSimultaneousSleepersWakeFIFO(t *testing.T) {
	s := det()
	var order []int
	s.Run(func() {
		for i := 0; i < 5; i++ {
			i := i
			s.Fork("tied", func() {
				s.Sleep(10 * time.Millisecond)
				order = append(order, i)
			})
		}
		s.Sleep(20 * time.Millisecond)
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("tied sleepers woke out of order: %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("only %d sleepers woke", len(order))
	}
}

func TestClockDoesNotAdvanceWhileReady(t *testing.T) {
	s := det()
	s.Run(func() {
		start := s.Now()
		for i := 0; i < 100; i++ {
			s.Yield()
		}
		if s.Now() != start {
			t.Errorf("clock moved by %v across pure yields", time.Duration(s.Now()-start))
		}
	})
}

func TestChargeAdvancesClock(t *testing.T) {
	s := det()
	s.Run(func() {
		start := s.Now()
		s.Charge(15 * time.Microsecond)
		if d := time.Duration(s.Now() - start); d != 15*time.Microsecond {
			t.Errorf("Charge advanced %v", d)
		}
	})
}

func TestMainExitKillsRemainingThreads(t *testing.T) {
	s := det()
	cleanedUp := false
	s.Run(func() {
		s.Fork("immortal", func() {
			defer func() { cleanedUp = true }()
			for {
				s.Sleep(time.Hour)
			}
		})
		s.Sleep(time.Second) // let it start sleeping
	})
	// Shutdown is synchronous: by the time Run returns, every killed
	// thread has finished unwinding (deferred functions included).
	if !cleanedUp {
		t.Fatal("immortal thread was not unwound before Run returned")
	}
}

func TestDeadlockPanics(t *testing.T) {
	s := det()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("deadlock did not panic")
		}
		if !strings.Contains(r.(string), "deadlock") {
			t.Fatalf("panic = %v", r)
		}
	}()
	s.Run(func() {
		NewCond(s).Wait() // nobody will ever signal
	})
}

func TestWorkerPanicPropagatesToRun(t *testing.T) {
	s := det()
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	s.Run(func() {
		s.Fork("bomber", func() { panic("boom") })
		s.Sleep(time.Second)
	})
	t.Fatal("Run returned instead of panicking")
}

func TestCondSignalWakesInOrder(t *testing.T) {
	s := det()
	var order []int
	s.Run(func() {
		c := NewCond(s)
		for i := 0; i < 3; i++ {
			i := i
			s.Fork("waiter", func() {
				c.Wait()
				order = append(order, i)
			})
		}
		s.Yield() // all three wait now
		if c.Waiters() != 3 {
			t.Errorf("Waiters = %d", c.Waiters())
		}
		c.Signal()
		c.Signal()
		c.Signal()
		s.Yield()
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("signal order: %v", order)
		}
	}
	if len(order) != 3 {
		t.Fatalf("woke %d of 3", len(order))
	}
}

func TestCondBroadcast(t *testing.T) {
	s := det()
	woke := 0
	s.Run(func() {
		c := NewCond(s)
		for i := 0; i < 4; i++ {
			s.Fork("waiter", func() {
				c.Wait()
				woke++
			})
		}
		s.Yield()
		c.Broadcast()
		s.Yield()
	})
	if woke != 4 {
		t.Fatalf("broadcast woke %d of 4", woke)
	}
}

func TestCondSignalNoWaitersIsNoop(t *testing.T) {
	s := det()
	s.Run(func() {
		c := NewCond(s)
		c.Signal()
		c.Broadcast()
	})
}

func TestProducerConsumerViaCond(t *testing.T) {
	s := det()
	var got []int
	s.Run(func() {
		c := NewCond(s)
		var queue []int
		s.Fork("consumer", func() {
			for len(got) < 5 {
				for len(queue) == 0 {
					c.Wait()
				}
				got = append(got, queue[0])
				queue = queue[1:]
			}
		})
		for i := 0; i < 5; i++ {
			s.Sleep(time.Millisecond)
			queue = append(queue, i)
			c.Signal()
		}
		s.Sleep(time.Millisecond)
	})
	for i, v := range got {
		if v != i {
			t.Fatalf("consumed %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("consumed %d of 5", len(got))
	}
}

func TestPrioritySchedulingOrdersReadyQueue(t *testing.T) {
	s := New(Config{Priority: true})
	var order []string
	s.Run(func() {
		s.ForkPrio("low", 10, func() { order = append(order, "low") })
		s.ForkPrio("high", 1, func() { order = append(order, "high") })
		s.ForkPrio("mid", 5, func() { order = append(order, "mid") })
		s.Sleep(time.Millisecond) // step aside; children run by priority
	})
	if got := strings.Join(order, ","); got != "high,mid,low" {
		t.Fatalf("priority order = %s", got)
	}
}

func TestSwitchAndForkCounters(t *testing.T) {
	s := det()
	s.Run(func() {
		s.Fork("a", func() {})
		s.Yield()
	})
	if s.Forks() != 1 {
		t.Fatalf("Forks = %d", s.Forks())
	}
	if s.Switches() == 0 {
		t.Fatal("Switches = 0 after a yield")
	}
}

func TestExplicitSwitchAndForkCosts(t *testing.T) {
	s := New(Config{ForkCost: 10 * time.Microsecond, SwitchCost: 30 * time.Microsecond})
	s.Run(func() {
		start := s.Now()
		s.Fork("a", func() {})
		if d := time.Duration(s.Now() - start); d != 10*time.Microsecond {
			t.Errorf("fork cost charged %v", d)
		}
		before := s.Now()
		s.Yield() // two switches: away and back
		if d := time.Duration(s.Now() - before); d < 30*time.Microsecond {
			t.Errorf("switch cost charged %v", d)
		}
	})
}

func TestChargeCPUAdvancesClockWithRealWork(t *testing.T) {
	s := New(Config{ChargeCPU: true, CPUScale: 1000})
	s.Run(func() {
		start := s.Now()
		// Burn a measurable amount of real CPU.
		x := 0
		for i := 0; i < 1_000_000; i++ {
			x += i
		}
		_ = x
		if s.Now() == start {
			t.Error("clock did not advance under CPU charging")
		}
	})
}

func TestDeterministicRunsIdentical(t *testing.T) {
	run := func() []string {
		s := det()
		var log []string
		s.Run(func() {
			c := NewCond(s)
			s.Fork("t1", func() { s.Sleep(3 * time.Millisecond); log = append(log, "t1"); c.Signal() })
			s.Fork("t2", func() { s.Sleep(1 * time.Millisecond); log = append(log, "t2") })
			s.Fork("t3", func() { log = append(log, "t3") })
			c.Wait()
			log = append(log, "main")
		})
		return log
	}
	a, b := run(), run()
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatalf("two deterministic runs diverged:\n%v\n%v", a, b)
	}
}

func TestNowInsideForkedThread(t *testing.T) {
	s := det()
	s.Run(func() {
		var inner Time
		s.Fork("t", func() {
			s.Sleep(5 * time.Millisecond)
			inner = s.Now()
		})
		s.Sleep(10 * time.Millisecond)
		if inner != Time(5*time.Millisecond) {
			t.Errorf("forked thread saw %v", time.Duration(inner))
		}
	})
}

func TestRunTwicePanics(t *testing.T) {
	s := det()
	s.Run(func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	s.Run(func() {})
}

func TestStampFormatsVirtualTime(t *testing.T) {
	s := det()
	s.Run(func() {
		s.Sleep(1500 * time.Microsecond)
		if got := s.Stamp(); !strings.Contains(got, "1.5ms") {
			t.Errorf("Stamp = %q", got)
		}
	})
}
