package sim

import (
	"testing"
	"time"
)

func TestExcludeKeepsVirtualClockStill(t *testing.T) {
	s := New(Config{ChargeCPU: true, CPUScale: 1000})
	s.Run(func() {
		before := s.Now()
		s.Exclude(func() {
			// Burn real CPU that must NOT become virtual time.
			x := 0
			for i := 0; i < 2_000_000; i++ {
				x += i
			}
			_ = x
		})
		after := s.Now()
		// Only bracketing costs may appear (scheduling noise under -race
		// or -cover can reach tens of µs real ⇒ tens of ms virtual); the
		// burned loop itself — milliseconds real ⇒ seconds virtual —
		// must not.
		if d := time.Duration(after - before); d > 500*time.Millisecond {
			t.Fatalf("Exclude leaked %v into virtual time", d)
		}
	})
}

func TestChargeFactorMultipliesCPU(t *testing.T) {
	burn := func(s *Scheduler) time.Duration {
		before := s.Now()
		x := 0
		for i := 0; i < 3_000_000; i++ {
			x += i
		}
		_ = x
		return time.Duration(s.Now() - before)
	}
	// Real-time measurement is noisy (more so under -race or -cover
	// instrumentation); take the best of a few attempts before judging.
	for attempt := 0; attempt < 5; attempt++ {
		var base, factored time.Duration
		s := New(Config{ChargeCPU: true, CPUScale: 1000})
		s.Run(func() {
			base = burn(s)
			s.SetChargeFactor(8)
			factored = burn(s)
		})
		if factored >= base*3 {
			return
		}
		if attempt == 4 {
			t.Fatalf("factor 8 only scaled %v -> %v after %d attempts", base, factored, attempt+1)
		}
	}
}

func TestChargeFactorInheritedByForkedThreads(t *testing.T) {
	s := New(Config{ChargeCPU: true, CPUScale: 1000})
	s.Run(func() {
		s.SetChargeFactor(4)
		var childFactor, grandFactor float64
		s.Fork("child", func() {
			childFactor = s.ChargeFactor()
			s.Fork("grandchild", func() {
				grandFactor = s.ChargeFactor()
			})
			s.Yield()
		})
		s.SetChargeFactor(1) // parent resets itself; children keep theirs
		s.Sleep(time.Millisecond)
		if childFactor != 4 || grandFactor != 4 {
			t.Fatalf("inherited factors: child=%v grandchild=%v", childFactor, grandFactor)
		}
		if s.ChargeFactor() != 1 {
			t.Fatalf("parent factor = %v", s.ChargeFactor())
		}
	})
}

func TestChargeFactorNeutralWithoutCharging(t *testing.T) {
	s := New(Config{})
	s.Run(func() {
		s.SetChargeFactor(100)
		before := s.Now()
		x := 0
		for i := 0; i < 1_000_000; i++ {
			x += i
		}
		_ = x
		if s.Now() != before {
			t.Fatal("clock moved without ChargeCPU")
		}
	})
}

func TestSleepZeroAndNegativeYield(t *testing.T) {
	s := New(Config{})
	s.Run(func() {
		ran := false
		s.Fork("peer", func() { ran = true })
		s.Sleep(0) // must yield, not sleep
		if !ran {
			t.Fatal("Sleep(0) did not yield to the ready peer")
		}
		before := s.Now()
		s.Sleep(-time.Second)
		if s.Now() != before {
			t.Fatal("negative sleep moved the clock")
		}
	})
}

func TestManyThreadsStress(t *testing.T) {
	s := New(Config{})
	s.Run(func() {
		const n = 500
		done := 0
		for i := 0; i < n; i++ {
			i := i
			s.Fork("worker", func() {
				s.Sleep(time.Duration(i%17+1) * time.Millisecond)
				s.Yield()
				s.Sleep(time.Duration(i%5+1) * time.Millisecond)
				done++
			})
		}
		s.Sleep(time.Second)
		if done != n {
			t.Fatalf("%d of %d workers finished", done, n)
		}
	})
	if got := s.Forks(); got != 500 {
		t.Fatalf("Forks = %d", got)
	}
}

func TestCondWaitersCount(t *testing.T) {
	s := New(Config{})
	s.Run(func() {
		c := NewCond(s)
		for i := 0; i < 3; i++ {
			s.Fork("w", func() { c.Wait() })
		}
		s.Yield()
		if c.Waiters() != 3 {
			t.Fatalf("Waiters = %d", c.Waiters())
		}
		c.Broadcast()
		if c.Waiters() != 0 {
			t.Fatalf("Waiters after broadcast = %d", c.Waiters())
		}
		s.Yield()
	})
}
