// Package sim provides the non-preemptive coroutine scheduler the paper's
// TCP is built on (the COROUTINE functor parameter of Fig. 4), together
// with the virtual clock that replaces the paper's DECstation wall clock.
//
// The paper implements its scheduler "entirely in SML using continuations";
// thread switch costs only a few function calls and, because the scheduler
// is non-preemptive, "data structure locks are therefore not necessary".
// This package reproduces those semantics on top of goroutines: every
// thread is a goroutine, but a channel-handoff protocol guarantees that
// exactly one of them executes at any moment and that control moves only
// at explicit scheduler calls (Fork, Yield, Sleep, condition waits). No
// code in this repository takes a lock.
//
// Time is virtual. The clock advances when a thread sleeps past the last
// runnable instant, when a caller charges an explicit cost (Charge), and —
// if CPU charging is enabled — by the measured real execution time of each
// thread scaled by Config.CPUScale, which stands in for running the same
// code on 1994 hardware. With CPU charging disabled (the default) runs are
// bit-for-bit deterministic, which is what the paper's quasi-synchronous
// design promises: "once the actions have been placed on the queue the
// behavior of TCP is completely deterministic and testable."
package sim

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/basis"
)

// Time is an absolute virtual time in nanoseconds since scheduler start.
type Time int64

// Duration re-exports time.Duration for virtual intervals; virtual and
// real durations share units, differing only in which clock consumes them.
type Duration = time.Duration

// String formats a virtual time like "1.234ms".
func (t Time) String() string { return time.Duration(t).String() }

// threadState tracks where a thread currently lives.
type threadState uint8

const (
	stateReady threadState = iota
	stateRunning
	stateSleeping
	stateBlocked
	stateDead
)

func (s threadState) String() string {
	switch s {
	case stateReady:
		return "ready"
	case stateRunning:
		return "running"
	case stateSleeping:
		return "sleeping"
	case stateBlocked:
		return "blocked"
	case stateDead:
		return "dead"
	}
	return "invalid"
}

// Thread is a cooperatively-scheduled thread of control.
type Thread struct {
	name      string
	prio      int
	seq       uint64
	state     threadState
	resume    chan struct{}
	sched     *Scheduler
	startReal time.Time // when this thread last received the CPU
	factor    float64   // per-thread CPU charge multiplier (inherited)
	killed    bool      // set by shutdown before the kill resume
}

// Name returns the thread's diagnostic name.
func (t *Thread) Name() string { return t.name }

// errKilled unwinds a parked thread when the scheduler shuts down.
type killedError struct{}

func (killedError) Error() string { return "sim: thread killed by scheduler shutdown" }

var errKilled = killedError{}

type sleeper struct {
	wake Time
	seq  uint64
	t    *Thread
}

// Config parameterizes a Scheduler.
type Config struct {
	// ChargeCPU, when true, advances the virtual clock by the measured
	// real execution time of each thread (scaled by CPUScale) every time
	// it gives up the CPU. When false the clock moves only by Sleep and
	// Charge, and runs are deterministic.
	ChargeCPU bool

	// CPUScale multiplies measured real durations before charging them.
	// The default 1000 calibrates a modern core to the paper's DECstation
	// 5000/125 (an empty function call: ~1.2 ns today vs the paper's
	// 1.2 µs).
	CPUScale float64

	// Priority, when true, orders the ready queue by thread priority
	// (lower value runs first) instead of round-robin FIFO — the
	// replacement the paper proposes for latency-critical actions.
	Priority bool

	// ForkCost and SwitchCost are explicit virtual charges applied per
	// Fork and per context switch, usable to model the paper's ~30 µs
	// create+switch cost in deterministic runs. Both default to zero.
	ForkCost   Duration
	SwitchCost Duration
}

// Scheduler owns a set of coroutine threads and the virtual clock.
type Scheduler struct {
	cfg      Config
	now      Time
	readyQ   basis.FIFO[*Thread]
	readyPQ  *basis.Heap[*Thread]
	sleepers *basis.Heap[sleeper]
	current  *Thread
	seq      uint64
	live     int // threads not dead (including current)
	blocked  int
	sleeping int
	threads  []*Thread // every forked thread, for serialized shutdown
	main     *Thread
	unwound  chan struct{}
	stopped  bool
	fatal    any // panic value carried from a worker thread to Run

	switches   uint64 // context-switch count, for the E-sched experiment
	forks      uint64
	timerFires uint64 // expired (uncleared) timers, noted by the timers layer
	readyHW    int    // run-queue length high-water mark

	// unwinding tracks forked goroutines so shutdown can wait for every
	// kill-unwind to finish before Run returns; without it, deferred
	// user code in dying threads would run concurrently with whatever
	// follows Run — the one place the handoff discipline wouldn't hold.
	unwinding sync.WaitGroup
}

// New returns a scheduler with the given configuration.
func New(cfg Config) *Scheduler {
	if cfg.CPUScale == 0 {
		cfg.CPUScale = 1000
	}
	s := &Scheduler{
		cfg: cfg,
		sleepers: basis.NewHeap[sleeper](func(a, b sleeper) bool {
			if a.wake != b.wake {
				return a.wake < b.wake
			}
			return a.seq < b.seq
		}),
		unwound: make(chan struct{}),
	}
	if cfg.Priority {
		s.readyPQ = basis.NewHeap[*Thread](func(a, b *Thread) bool {
			if a.prio != b.prio {
				return a.prio < b.prio
			}
			return a.seq < b.seq
		})
	}
	return s
}

// Now returns the current virtual time, first charging the running
// thread's accumulated CPU time if CPU charging is enabled, so timestamps
// taken mid-computation are accurate.
func (s *Scheduler) Now() Time {
	s.syncClock()
	return s.now
}

// Charge advances the virtual clock by d on behalf of the current thread,
// modeling a cost the real code does not pay (for example the paper's
// per-packet Mach IPC send).
func (s *Scheduler) Charge(d Duration) {
	if d > 0 {
		s.now += Time(d)
	}
}

// Exclude runs fn without charging its real CPU time to the virtual
// clock. It models work that happened outside the paper's measured task
// — the Mach kernel's own copy at the device boundary, or benchmark
// bookkeeping — whose simulation cost must not leak into virtual time.
// No-op beyond calling fn when CPU charging is off.
func (s *Scheduler) Exclude(fn func()) {
	s.syncClock()
	fn()
	if s.cfg.ChargeCPU && s.current != nil {
		s.current.startReal = time.Now()
	}
}

// Switches reports how many context switches have occurred.
func (s *Scheduler) Switches() uint64 { return s.switches }

// Forks reports how many threads have been created.
func (s *Scheduler) Forks() uint64 { return s.forks }

// NoteTimerFire records one timer expiration whose handler actually ran.
// The timers layer calls it; the scheduler itself has no timer concept
// beyond Sleep.
func (s *Scheduler) NoteTimerFire() { s.timerFires++ }

// TimerFires reports how many timer handlers have run.
func (s *Scheduler) TimerFires() uint64 { return s.timerFires }

// ReadyHighWater reports the deepest the run queue has been.
func (s *Scheduler) ReadyHighWater() int { return s.readyHW }

// Current returns the running thread (nil outside Run).
func (s *Scheduler) Current() *Thread { return s.current }

// Stamp returns a trace prefix with the current virtual time, suitable for
// basis.Tracer.Stamp.
func (s *Scheduler) Stamp() string {
	return fmt.Sprintf("[%10v]", time.Duration(s.Now()))
}

// syncClock charges the current thread's measured CPU time to the clock.
func (s *Scheduler) syncClock() {
	if !s.cfg.ChargeCPU || s.current == nil {
		return
	}
	nowReal := time.Now()
	dt := nowReal.Sub(s.current.startReal)
	if dt > 0 {
		f := s.current.factor
		if f == 0 {
			f = 1
		}
		s.now += Time(float64(dt) * s.cfg.CPUScale * f)
	}
	s.current.startReal = nowReal
}

// SetChargeFactor sets the current thread's CPU charge multiplier;
// threads it forks from now on inherit it. The experiments package uses
// it to model 1994 SML/NJ code generation: every cycle a Fox host
// executes costs factor× what the same cycle costs the C baseline.
func (s *Scheduler) SetChargeFactor(f float64) {
	s.syncClock()
	if s.current != nil {
		s.current.factor = f
	}
}

// ChargeFactor returns the current thread's multiplier (1 if unset).
func (s *Scheduler) ChargeFactor() float64 {
	if s.current == nil || s.current.factor == 0 {
		return 1
	}
	return s.current.factor
}

// Run executes fn as the main thread and services all forked threads until
// fn returns. Any still-live threads are then killed (their goroutines
// unwound), so Run leaks nothing. If any thread panics, Run re-panics with
// that value after shutting the scheduler down.
func (s *Scheduler) Run(fn func()) {
	if s.current != nil || s.stopped {
		panic("sim: Run called twice or on a stopped scheduler")
	}
	main := &Thread{name: "main", resume: make(chan struct{}, 1), sched: s, state: stateRunning, seq: s.nextSeq()}
	s.current = main
	s.main = main
	s.live = 1
	main.startReal = time.Now()

	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, killed := r.(killedError); !killed && s.fatal == nil {
					s.fatal = r
				}
			}
		}()
		fn()
	}()

	s.shutdown()
	if s.fatal != nil {
		panic(s.fatal)
	}
}

// Fork creates a new thread running fn and places it at the tail of the
// ready queue; the caller keeps the CPU (the paper's "fork operation …
// takes unit time"). The thread inherits priority 0.
func (s *Scheduler) Fork(name string, fn func()) *Thread {
	return s.ForkPrio(name, 0, fn)
}

// ForkPrio creates a thread with an explicit priority; lower values run
// first when the scheduler was configured with Priority.
func (s *Scheduler) ForkPrio(name string, prio int, fn func()) *Thread {
	s.ensureRunnable("Fork")
	t := &Thread{name: name, prio: prio, resume: make(chan struct{}, 1), sched: s, state: stateReady, seq: s.nextSeq()}
	if s.current != nil {
		t.factor = s.current.factor
	}
	s.live++
	s.forks++
	s.Charge(s.cfg.ForkCost)
	s.threads = append(s.threads, t)
	s.unwinding.Add(1)
	go s.threadBody(t, fn)
	s.pushReady(t)
	return t
}

// threadBody is the goroutine wrapper for a forked thread: it parks until
// first dispatched, runs fn, and exits through the scheduler.
func (s *Scheduler) threadBody(t *Thread, fn func()) {
	defer s.unwinding.Done()
	defer func() {
		if r := recover(); r != nil {
			if _, killed := r.(killedError); killed {
				t.state = stateDead
				if t.killed {
					// shutdown is waiting for this exact unwind to
					// finish; nothing else runs until we signal.
					s.unwound <- struct{}{}
				}
				return
			}
			// Carry the panic to Run: record it and hand the CPU onward.
			s.fatal = r
			t.state = stateDead
			s.live--
			s.dispatchNextOrFinish(t)
		}
	}()
	t.park() // wait to be scheduled the first time
	fn()
	s.exit(t)
}

// park suspends the calling goroutine until its thread is resumed. A
// resume with the killed flag set is shutdown's order to unwind.
func (t *Thread) park() {
	<-t.resume
	if t.killed {
		panic(errKilled)
	}
	t.state = stateRunning
	t.startReal = time.Now()
}

// Yield places the current thread at the tail of the ready queue and runs
// the next ready thread.
func (s *Scheduler) Yield() {
	s.ensureRunnable("Yield")
	cur := s.current
	s.syncClock()
	cur.state = stateReady
	s.pushReady(cur)
	s.reschedule(cur)
}

// Sleep suspends the current thread for at least d of virtual time.
// Non-positive durations yield.
func (s *Scheduler) Sleep(d Duration) {
	s.ensureRunnable("Sleep")
	if d <= 0 {
		s.Yield()
		return
	}
	cur := s.current
	s.syncClock()
	cur.state = stateSleeping
	s.sleeping++
	s.sleepers.Push(sleeper{wake: s.now + Time(d), seq: s.nextSeq(), t: cur})
	s.reschedule(cur)
}

// block suspends the current thread until some other thread unblocks it.
func (s *Scheduler) block() {
	s.ensureRunnable("block")
	cur := s.current
	s.syncClock()
	cur.state = stateBlocked
	s.blocked++
	s.reschedule(cur)
}

// unblock moves a blocked thread to the ready queue. The caller keeps the
// CPU, mirroring the paper's design where actions never wait.
func (s *Scheduler) unblock(t *Thread) {
	if t.state != stateBlocked {
		panic(fmt.Sprintf("sim: unblock of %s thread %q", t.state, t.name))
	}
	s.blocked--
	t.state = stateReady
	t.seq = s.nextSeq()
	s.pushReady(t)
}

// exit terminates the calling thread, dispatching the next runnable one.
func (s *Scheduler) exit(t *Thread) {
	s.syncClock()
	t.state = stateDead
	s.live--
	s.dispatchNextOrFinish(t)
}

// reschedule hands the CPU from cur (already re-queued, asleep, or
// blocked) to the next runnable thread, then parks cur until its turn.
func (s *Scheduler) reschedule(cur *Thread) {
	next := s.next()
	s.switches++
	s.Charge(s.cfg.SwitchCost)
	if next == cur {
		cur.state = stateRunning
		return
	}
	s.current = next
	next.resume <- struct{}{}
	cur.park()
}

// dispatchNextOrFinish is reschedule for a dying thread: it never parks.
// If nothing remains runnable it wakes Run's main thread if possible, or
// declares the run finished.
func (s *Scheduler) dispatchNextOrFinish(t *Thread) {
	if s.live == 0 {
		return // the main thread was the last one; Run unwinds normally
	}
	if s.fatal != nil {
		// Carry control back to main so Run can re-panic; the remaining
		// threads are killed one at a time by shutdown afterwards.
		s.stopped = true
		if s.main.state != stateRunning && s.main.state != stateDead {
			s.main.killed = true
			s.main.resume <- struct{}{}
		}
		return
	}
	next := s.next()
	s.switches++
	s.current = next
	next.resume <- struct{}{}
}

// next picks the next thread to run, advancing the virtual clock over idle
// gaps. It panics with a thread dump on total deadlock.
func (s *Scheduler) next() *Thread {
	for {
		if t, ok := s.popReady(); ok {
			return t
		}
		if s.sleepers.Empty() {
			panic(s.deadlockReport())
		}
		// Jump the clock to the earliest wake time and release every
		// sleeper due at that instant, in FIFO seq order (the heap
		// tiebreak guarantees it).
		first, _ := s.sleepers.Pop()
		if first.wake > s.now {
			s.now = first.wake
		}
		s.sleeping--
		first.t.state = stateReady
		s.pushReady(first.t)
		for {
			peek, ok := s.sleepers.Min()
			if !ok || peek.wake > s.now {
				break
			}
			s.sleepers.Pop()
			s.sleeping--
			peek.t.state = stateReady
			s.pushReady(peek.t)
		}
	}
}

func (s *Scheduler) pushReady(t *Thread) {
	if s.readyPQ != nil {
		s.readyPQ.Push(t)
		if n := s.readyPQ.Len(); n > s.readyHW {
			s.readyHW = n
		}
		return
	}
	s.readyQ.Enqueue(t)
	if n := s.readyQ.Len(); n > s.readyHW {
		s.readyHW = n
	}
}

func (s *Scheduler) popReady() (*Thread, bool) {
	if s.readyPQ != nil {
		return s.readyPQ.Pop()
	}
	return s.readyQ.Dequeue()
}

func (s *Scheduler) nextSeq() uint64 {
	s.seq++
	return s.seq
}

func (s *Scheduler) ensureRunnable(op string) {
	if s.stopped {
		panic(errKilled)
	}
	if s.current == nil {
		panic("sim: " + op + " called outside Run")
	}
}

// shutdown kills every remaining thread after the main function returns,
// one at a time — each killed goroutine finishes unwinding (deferred
// functions included) before the next is woken, preserving the
// one-thread-at-a-time discipline even while dying — so Run returns only
// once nothing of the simulation is still executing.
func (s *Scheduler) shutdown() {
	s.stopped = true
	s.current = nil
	for _, t := range s.threads {
		if t.state == stateDead {
			continue
		}
		t.killed = true
		t.resume <- struct{}{}
		<-s.unwound
	}
	s.unwinding.Wait()
}

func (s *Scheduler) deadlockReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: deadlock at %v: no ready or sleeping threads (%d blocked)", time.Duration(s.now), s.blocked)
	if s.current != nil {
		fmt.Fprintf(&b, "; current=%q", s.current.name)
	}
	return b.String()
}
