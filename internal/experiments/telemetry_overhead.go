package experiments

// The telemetry-overhead experiment, the observation plane's analogue of
// flight.go: its hooks also sit on the executor's hottest paths (every
// enqueue, every drain, every RTT sample, every user Read/Write), so
// their cost is measured the same way. The same deterministic bulk
// transfer runs unobserved and with both hosts telemetered; CPU
// charging is off, so the virtual result is wire-limited and must be
// bit-identical either way (telemetry is pure observation), and the
// best-of-trials real time isolates what the histograms, profiler, and
// sampler cost the host CPU.

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// TelemetryOverheadResult reports what the observation plane costs the
// paper's bulk transfer.
type TelemetryOverheadResult struct {
	Off, On         TransferResult // virtual results; identical when telemetry is pure observation
	OffWall, OnWall time.Duration  // best-of-Trials real time per run
	Trials          int
	Actions         uint64  // executor actions profiled per run (both hosts)
	Samples         uint64  // time-series points recorded per run (both hosts)
	OverheadPct     float64 // wall clock, (on-off)/off
	Planes          [2]*telemetry.Telemetry
	Text            string
}

// TelemetryOverhead measures the plane's cost on the bulk transfer:
// Trials runs unobserved, Trials with both hosts telemetered, best real
// time of each. With telemetry off every hook site reduces to a single
// nil check, so Off also stands in for the pre-telemetry stack.
func TelemetryOverhead(o Options) TelemetryOverheadResult {
	o.fill()
	o.NoCharge = true // wire-limited: virtual results must match off/on
	const trials = 5
	res := TelemetryOverheadResult{Trials: trials}

	run := func(on bool) (TransferResult, time.Duration) {
		var best time.Duration
		var tr TransferResult
		for i := 0; i < trials; i++ {
			opt := o
			var planes [2]*telemetry.Telemetry
			if on {
				planes[0] = telemetry.New(telemetry.Options{})
				planes[1] = telemetry.New(telemetry.Options{})
				opt.Telemetry = []*telemetry.Telemetry{planes[0], planes[1]}
			}
			start := time.Now()
			tr = Throughput(Structured, opt)
			wall := time.Since(start)
			if i == 0 || wall < best {
				best = wall
			}
			if on {
				res.Planes = planes
				res.Actions, res.Samples = 0, 0
				for _, tl := range planes {
					for k := telemetry.ActKind(0); k < telemetry.NumActKinds; k++ {
						res.Actions += tl.Prof.Count(k)
					}
					for _, sr := range tl.Series() {
						res.Samples += sr.Total()
					}
				}
			}
		}
		return tr, best
	}

	res.Off, res.OffWall = run(false)
	res.On, res.OnWall = run(true)
	if res.OffWall > 0 {
		res.OverheadPct = 100 * float64(res.OnWall-res.OffWall) / float64(res.OffWall)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Telemetry overhead (bulk transfer, %d bytes, wire-limited, best of %d)\n",
		o.Bytes, trials)
	fmt.Fprintf(&b, "  %-13s wall %10v   virtual %v, %.2f Mb/s\n",
		"telemetry off", res.OffWall.Round(time.Microsecond),
		time.Duration(res.Off.Elapsed), res.Off.ThroughputMbps)
	fmt.Fprintf(&b, "  %-13s wall %10v   %d actions profiled, %d series points (both hosts)\n",
		"telemetry on", res.OnWall.Round(time.Microsecond), res.Actions, res.Samples)
	if res.On.Elapsed == res.Off.Elapsed && res.On.SegsSent == res.Off.SegsSent {
		b.WriteString("  virtual results identical off/on: telemetry is pure observation\n")
	} else {
		fmt.Fprintf(&b, "  WARNING: virtual results differ: off %v/%d, on %v/%d segs\n",
			time.Duration(res.Off.Elapsed), res.Off.SegsSent,
			time.Duration(res.On.Elapsed), res.On.SegsSent)
	}
	fmt.Fprintf(&b, "  wall-clock cost of telemetry: %+.1f%%; disabled hook: one nil check per site\n",
		res.OverheadPct)
	if tl := res.Planes[0]; tl != nil {
		a := tl.Action.Snapshot()
		r := tl.RTT.Snapshot()
		fmt.Fprintf(&b, "  sender action latency p50/p99/max: %d/%d/%d ns; rtt p50: %d ns (%d samples)\n",
			a.P50, a.P99, a.Max, r.P50, r.Count)
	}
	res.Text = b.String()
	return res
}

// SeriesJSON is one connection's time-series ring in foxbench -json
// output: the data behind a cwnd trace or fairness plot.
type SeriesJSON struct {
	Conn   string            `json:"conn"`
	Total  uint64            `json:"total_points"`
	Points []telemetry.Point `json:"points"`
}

// PlaneJSON is one host's full telemetry plane: the four hot-path
// latency histograms, the executor profile, and every connection's
// sampled series.
type PlaneJSON struct {
	Host    string                 `json:"host"`
	Action  telemetry.HistSnapshot `json:"action_latency_ns"`
	RTT     telemetry.HistSnapshot `json:"rtt_sample_ns"`
	Read    telemetry.HistSnapshot `json:"read_latency_ns"`
	Write   telemetry.HistSnapshot `json:"write_latency_ns"`
	Profile telemetry.ProfReport   `json:"profile"`
	Dropped uint64                 `json:"dropped_conns,omitempty"`
	Series  []SeriesJSON           `json:"series,omitempty"`
}

func planeJSON(host string, tl *telemetry.Telemetry) *PlaneJSON {
	if tl == nil {
		return nil
	}
	p := &PlaneJSON{
		Host:    host,
		Action:  tl.Action.Snapshot(),
		RTT:     tl.RTT.Snapshot(),
		Read:    tl.Read.Snapshot(),
		Write:   tl.Write.Snapshot(),
		Profile: tl.Prof.Report(),
		Dropped: tl.Dropped(),
	}
	for _, sr := range tl.Series() {
		p.Series = append(p.Series, SeriesJSON{
			Conn: sr.Name(), Total: sr.Total(), Points: sr.Points(),
		})
	}
	return p
}

// TelemetryJSON is the plane snapshot attached to a structured run:
// sender and receiver planes plus the sampling cadence that produced
// the series.
type TelemetryJSON struct {
	SampleEveryNS int64      `json:"sample_every_ns"`
	Sender        *PlaneJSON `json:"sender,omitempty"`
	Receiver      *PlaneJSON `json:"receiver,omitempty"`
}

func telemetryJSON(planes [2]*telemetry.Telemetry) *TelemetryJSON {
	if planes[0] == nil && planes[1] == nil {
		return nil
	}
	t := &TelemetryJSON{
		Sender:   planeJSON("host1", planes[0]),
		Receiver: planeJSON("host2", planes[1]),
	}
	for _, tl := range planes {
		if tl != nil {
			t.SampleEveryNS = tl.SampleEveryNS()
			break
		}
	}
	return t
}

// TelemetryOverheadJSON is the telemetry-overhead measurement in
// foxbench -json output.
type TelemetryOverheadJSON struct {
	Trials          int          `json:"trials"`
	Actions         uint64       `json:"actions_per_run"`
	Samples         uint64       `json:"series_points_per_run"`
	OffWallNS       int64        `json:"off_wall_ns"`
	OnWallNS        int64        `json:"on_wall_ns"`
	WallOverheadPct float64      `json:"wall_overhead_pct"`
	Off             TransferJSON `json:"off"`
	On              TransferJSON `json:"on"`
}

// TelemetryReport runs the telemetry-overhead experiment and returns
// both the JSON report — overhead figures plus the observed planes —
// and the formatted text.
func TelemetryReport(o Options) (Report, string) {
	r := TelemetryOverhead(o)
	return Report{
		TelemetryOverhead: &TelemetryOverheadJSON{
			Trials:          r.Trials,
			Actions:         r.Actions,
			Samples:         r.Samples,
			OffWallNS:       r.OffWall.Nanoseconds(),
			OnWallNS:        r.OnWall.Nanoseconds(),
			WallOverheadPct: r.OverheadPct,
			Off:             transferJSON(r.Off),
			On:              transferJSON(r.On),
		},
		Telemetry: telemetryJSON(r.Planes),
	}, r.Text
}
