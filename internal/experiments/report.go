package experiments

import (
	"encoding/json"

	"repro/internal/profile"
	"repro/internal/telemetry"
)

// This file gives the evaluation a machine-readable shape: foxbench -json
// emits a Document so the tables can be diffed, plotted, and regression-
// checked across revisions instead of scraped out of aligned text.

// SchemaV1 identified the original JSON layout; SchemaV2 adds the
// telemetry sections (hot-path latency percentiles, executor profile,
// per-connection series) to the Table 1 structured run and the
// telemetry-overhead report. V2 is a pure superset: a V1 reader that
// ignores unknown fields parses V2 documents unchanged.
const (
	SchemaV1 = "foxbench/v1"
	SchemaV2 = "foxbench/v2"
)

// Document is the top-level object foxbench -json writes: one entry per
// table requested on the command line.
type Document struct {
	Schema  string        `json:"schema"`
	Options ReportOptions `json:"options"`
	Reports []Report      `json:"reports"`
}

// ReportOptions echoes the workload parameters a run used, with defaults
// filled in, so a result file is self-describing.
type ReportOptions struct {
	Bytes     int     `json:"bytes"`
	Window    int     `json:"window"`
	CPUScale  float64 `json:"cpu_scale"`
	NoCharge  bool    `json:"no_charge,omitempty"`
	Loss      float64 `json:"loss,omitempty"`
	Seed      uint64  `json:"seed"`
	Rounds    int     `json:"rounds"`
	SMLEra    bool    `json:"sml_era,omitempty"`
	SMLFactor float64 `json:"sml_factor,omitempty"`
}

// Report is one regenerated table or auxiliary measurement.
type Report struct {
	Table           int            `json:"table,omitempty"`
	Throughput      []TransferJSON `json:"throughput,omitempty"`
	RoundTrip       []RTTJSON      `json:"round_trip,omitempty"`
	SenderProfile   *ProfileJSON   `json:"sender_profile,omitempty"`
	ReceiverProfile *ProfileJSON   `json:"receiver_profile,omitempty"`
	Flight          *FlightJSON    `json:"flight,omitempty"`
	// Telemetry carries the structured run's plane snapshots (latency
	// percentiles, executor profile, cwnd trace); TelemetryOverhead the
	// off/on cost measurement. Both are foxbench/v2 additions.
	Telemetry         *TelemetryJSON         `json:"telemetry,omitempty"`
	TelemetryOverhead *TelemetryOverheadJSON `json:"telemetry_overhead,omitempty"`
}

// TransferJSON is one bulk-transfer measurement.
type TransferJSON struct {
	Impl           string  `json:"impl"`
	Bytes          int     `json:"bytes"`
	ElapsedNS      int64   `json:"elapsed_ns"`
	ThroughputMbps float64 `json:"throughput_mbps"`
	Retransmits    uint64  `json:"retransmits"`
	SegsSent       uint64  `json:"segs_sent"`
	NumGC          uint32  `json:"num_gc,omitempty"`
}

// RTTJSON is one ping-pong measurement.
type RTTJSON struct {
	Impl      string `json:"impl"`
	Rounds    int    `json:"rounds"`
	MeanRTTNS int64  `json:"mean_rtt_ns"`
	MinRTTNS  int64  `json:"min_rtt_ns"`
	MaxRTTNS  int64  `json:"max_rtt_ns"`
}

// ProfileJSON is a Table 2 execution profile. Copies and CopiesPerKB
// lift the CatCopy section count out of the rows: the one-copy datapath
// invariant (copyflow) predicts copies-per-KB stays flat as payload
// grows — one queueTake (or Read) copy per segment, nothing compounding.
type ProfileJSON struct {
	TotalNS     int64            `json:"total_ns"`
	NumGC       uint32           `json:"num_gc"`
	Sum         float64          `json:"sum_percent"`
	Copies      uint64           `json:"copies"`
	CopiesPerKB float64          `json:"copies_per_kb"`
	Rows        []ProfileRowJSON `json:"rows"`
}

// ProfileRowJSON is one profile category.
type ProfileRowJSON struct {
	Label   string  `json:"label"`
	TimeNS  int64   `json:"time_ns"`
	Percent float64 `json:"percent"`
	Busy    float64 `json:"busy_percent,omitempty"`
	Count   uint64  `json:"count"`
}

func (o Options) reportOptions() ReportOptions {
	o.fill()
	return ReportOptions{
		Bytes: o.Bytes, Window: o.Window, CPUScale: o.CPUScale,
		NoCharge: o.NoCharge, Loss: o.Loss, Seed: o.Seed, Rounds: o.Rounds,
		SMLEra: o.SMLEra, SMLFactor: o.SMLFactor,
	}
}

func transferJSON(r TransferResult) TransferJSON {
	return TransferJSON{
		Impl: r.Impl.String(), Bytes: r.Bytes,
		ElapsedNS:      int64(r.Elapsed),
		ThroughputMbps: r.ThroughputMbps,
		Retransmits:    r.Retransmits, SegsSent: r.SegsSent,
		NumGC: r.NumGC,
	}
}

func rttJSON(r RTTResult) RTTJSON {
	return RTTJSON{
		Impl: r.Impl.String(), Rounds: r.Rounds,
		MeanRTTNS: int64(r.MeanRTT), MinRTTNS: int64(r.MinRTT), MaxRTTNS: int64(r.MaxRTT),
	}
}

func profileJSON(r profile.Report, bytes int) *ProfileJSON {
	p := &ProfileJSON{TotalNS: int64(r.Total), NumGC: r.NumGC, Sum: r.Sum}
	for _, row := range r.Rows {
		p.Rows = append(p.Rows, ProfileRowJSON{
			Label: row.Label, TimeNS: int64(row.Time),
			Percent: row.Percent, Busy: row.Busy, Count: row.Count,
		})
		if row.Label == profile.CatCopy.String() {
			p.Copies = row.Count
			if bytes > 0 {
				p.CopiesPerKB = float64(row.Count) / (float64(bytes) / 1024)
			}
		}
	}
	return p
}

// Table1Report runs Table 1 and returns both the JSON report and the
// formatted text. The structured throughput arm runs with fresh
// telemetry planes attached (pure observation, so its numbers are the
// ones an unobserved run produces), giving the report per-action
// latency percentiles and the sender's cwnd trace alongside the
// paper's aggregate figures.
func Table1Report(o Options) (Report, string) {
	planes := [2]*telemetry.Telemetry{
		telemetry.New(telemetry.Options{}),
		telemetry.New(telemetry.Options{}),
	}
	to := o
	to.Telemetry = []*telemetry.Telemetry{planes[0], planes[1]}
	foxT := Throughput(Structured, to)
	xkT := Throughput(XKernelBaseline, o)
	foxR := RoundTrip(Structured, o)
	xkR := RoundTrip(XKernelBaseline, o)
	return Report{
		Table:      1,
		Throughput: []TransferJSON{transferJSON(foxT), transferJSON(xkT)},
		RoundTrip:  []RTTJSON{rttJSON(foxR), rttJSON(xkR)},
		Telemetry:  telemetryJSON(planes),
	}, table1Text(foxT, xkT, foxR, xkR)
}

// Table2Report runs Table 2 and returns both the JSON report and the
// formatted text.
func Table2Report(o Options) (Report, string) {
	r, text := Table2(o)
	return Report{
		Table:           2,
		Throughput:      []TransferJSON{transferJSON(r)},
		SenderProfile:   profileJSON(r.Sender, r.Bytes),
		ReceiverProfile: profileJSON(r.Receiver, r.Bytes),
	}, text
}

// NewDocument wraps reports in the versioned envelope.
func NewDocument(o Options, reports ...Report) Document {
	return Document{Schema: SchemaV2, Options: o.reportOptions(), Reports: reports}
}

// Marshal renders the document as indented JSON with a trailing newline.
func (d Document) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
