package experiments

import (
	"strings"
	"testing"
)

func TestTelemetryOverhead(t *testing.T) {
	r := TelemetryOverhead(Options{Bytes: 80_000})
	if r.On.Elapsed != r.Off.Elapsed {
		t.Errorf("virtual time diverged: off %v on %v", r.Off.Elapsed, r.On.Elapsed)
	}
	if r.On.SegsSent != r.Off.SegsSent {
		t.Errorf("segment count diverged: off %d on %d", r.Off.SegsSent, r.On.SegsSent)
	}
	if r.Actions == 0 {
		t.Error("telemetered run recorded no actions")
	}
	if r.Samples == 0 {
		t.Error("telemetered run took no series samples")
	}
	if !strings.Contains(r.Text, "identical") {
		t.Errorf("report should attest bit-identical results:\n%s", r.Text)
	}
}

func TestTelemetryReport(t *testing.T) {
	rep, text := TelemetryReport(Options{Bytes: 60_000})
	if rep.Telemetry == nil || rep.TelemetryOverhead == nil {
		t.Fatal("report must carry telemetry and overhead sections")
	}
	if rep.Telemetry.Sender == nil || rep.Telemetry.Receiver == nil {
		t.Fatal("both host planes must be present")
	}
	if rep.Telemetry.Sender.Action.Count == 0 {
		t.Error("sender action histogram empty")
	}
	if len(rep.Telemetry.Sender.Series) == 0 || rep.Telemetry.Sender.Series[0].Total == 0 {
		t.Error("sender series empty")
	}
	if text == "" {
		t.Error("text summary empty")
	}
}
