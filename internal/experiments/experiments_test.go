package experiments

import (
	"strings"
	"testing"
	"time"
)

// fast returns options sized for unit testing (deterministic, small).
func fast() Options {
	return Options{Bytes: 100_000, NoCharge: true, Rounds: 10}
}

func TestThroughputStructuredCompletes(t *testing.T) {
	r := Throughput(Structured, fast())
	if r.Elapsed <= 0 {
		t.Fatalf("elapsed = %v", r.Elapsed)
	}
	if r.ThroughputMbps <= 0 || r.ThroughputMbps > 10 {
		t.Fatalf("throughput = %v Mb/s (wire is 10 Mb/s)", r.ThroughputMbps)
	}
	if r.Retransmits != 0 {
		t.Fatalf("clean wire retransmits = %d", r.Retransmits)
	}
}

func TestThroughputBaselineCompletes(t *testing.T) {
	r := Throughput(XKernelBaseline, fast())
	if r.ThroughputMbps <= 0 || r.ThroughputMbps > 10 {
		t.Fatalf("throughput = %v Mb/s", r.ThroughputMbps)
	}
}

func TestThroughputDeterministicWithoutCharging(t *testing.T) {
	a := Throughput(Structured, fast())
	b := Throughput(Structured, fast())
	if a.Elapsed != b.Elapsed || a.SegsSent != b.SegsSent {
		t.Fatalf("deterministic runs diverged: %v/%d vs %v/%d",
			a.Elapsed, a.SegsSent, b.Elapsed, b.SegsSent)
	}
}

func TestRoundTripBothImpls(t *testing.T) {
	for _, impl := range []Impl{Structured, XKernelBaseline} {
		r := RoundTrip(impl, fast())
		if r.MeanRTT <= 0 || r.MeanRTT > time.Second {
			t.Fatalf("%v mean RTT = %v", impl, r.MeanRTT)
		}
		if r.MinRTT > r.MeanRTT || r.MeanRTT > r.MaxRTT {
			t.Fatalf("%v RTT ordering: min %v mean %v max %v", impl, r.MinRTT, r.MeanRTT, r.MaxRTT)
		}
	}
}

func TestCPUChargingSlowsVirtualTime(t *testing.T) {
	o := fast()
	det := Throughput(Structured, o)
	o.NoCharge = false
	o.CPUScale = 1000
	charged := Throughput(Structured, o)
	if charged.Elapsed <= det.Elapsed {
		t.Fatalf("CPU charging did not lengthen the run: %v vs %v", charged.Elapsed, det.Elapsed)
	}
}

func TestLossyThroughputRetransmits(t *testing.T) {
	o := fast()
	o.Loss = 0.02
	o.Seed = 5
	r := Throughput(Structured, o)
	if r.Retransmits == 0 {
		t.Fatal("no retransmits on a lossy wire")
	}
	if r.ThroughputMbps <= 0 {
		t.Fatal("transfer did not complete")
	}
}

func TestTable1Formats(t *testing.T) {
	o := fast()
	o.Bytes = 50_000
	o.Rounds = 5
	_, _, _, _, text := Table1(o)
	for _, want := range []string{"Throughput (Mb/s)", "Round-Trip (ms)", "Fox Net", "x-kernel", "0.24"} {
		if !strings.Contains(text, want) {
			t.Fatalf("Table 1 missing %q:\n%s", want, text)
		}
	}
}

func TestTable2ProfilesBothHosts(t *testing.T) {
	o := fast()
	o.Bytes = 50_000
	r, text := Table2(o)
	if r.Sender.Updates == 0 || r.Receiver.Updates == 0 {
		t.Fatal("profiles empty")
	}
	for _, want := range []string{"Sender", "Receiver", "TCP", "checksum", "packet wait", "counters (est.)"} {
		if !strings.Contains(text, want) {
			t.Fatalf("Table 2 missing %q:\n%s", want, text)
		}
	}
}

// TestTable2CopiesPerKB pins the one-copy invariant numerically: the
// sender performs one queueTake copy per segment, so copies-per-KB
// tracks segments-per-KB (payload/MSS), and the receiver — draining
// batches through Conn.Read — copies no more often than the sender.
func TestTable2CopiesPerKB(t *testing.T) {
	o := fast()
	o.Bytes = 50_000
	rep, _ := Table2Report(o)
	s, r := rep.SenderProfile, rep.ReceiverProfile
	if s == nil || r == nil {
		t.Fatal("profiles missing from the table 2 report")
	}
	if s.Copies == 0 || s.CopiesPerKB <= 0 {
		t.Fatalf("sender copy accounting empty: copies=%d per_kb=%v", s.Copies, s.CopiesPerKB)
	}
	// One copy per ~1456-byte segment bounds the rate near 1/KB; a
	// second copy anywhere on the path would double it.
	if s.CopiesPerKB > 1.5 {
		t.Fatalf("sender copies-per-KB = %v, the one-copy path predicts <= ~0.72", s.CopiesPerKB)
	}
	if r.CopiesPerKB > s.CopiesPerKB {
		t.Fatalf("receiver copies-per-KB %v exceeds sender %v", r.CopiesPerKB, s.CopiesPerKB)
	}
}

func TestGCExperimentRuns(t *testing.T) {
	o := fast()
	r := GCExperiment(o)
	if r.Short.ThroughputMbps <= 0 || r.Long.ThroughputMbps <= 0 {
		t.Fatal("GC experiment transfers failed")
	}
	if r.Long.Bytes != 5_000_000 {
		t.Fatalf("long run bytes = %d", r.Long.Bytes)
	}
	if !strings.Contains(r.Text, "5 MB") {
		t.Fatalf("report:\n%s", r.Text)
	}
}

func TestAblationsAllComplete(t *testing.T) {
	o := fast()
	o.Bytes = 50_000
	text := RunAblations(o)
	for _, want := range []string{"paper defaults", "direct dispatch", "fast path off", "nagle off"} {
		if !strings.Contains(text, want) {
			t.Fatalf("ablations missing %q:\n%s", want, text)
		}
	}
	// Every row must have a positive throughput (no variant wedges).
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "0.00 Mb/s") {
			t.Fatalf("an ablation produced zero throughput:\n%s", text)
		}
	}
}
