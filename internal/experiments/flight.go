package experiments

// The flight-recorder overhead experiment. The recorder's hooks sit on
// the hottest paths in the stack — every enqueued tcp_action and every
// drained one — so their cost is measured, not asserted. The same
// deterministic bulk transfer runs with the recorder absent and with
// both hosts journaling to counting writers; CPU charging is off, so
// the virtual result is wire-limited and must be bit-identical either
// way (recording is pure observation), and the best-of-trials real time
// isolates what the recorder itself costs the host CPU.

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/flight/seal"
	"repro/internal/stats"
)

// countingWriter discards journal bytes but keeps the totals, so the
// overhead report can say how much journal a run produces. Records are
// counted by newline: the framing ends every record with '\n' and JSON
// bodies escape all control characters.
type countingWriter struct {
	bytes   int64
	records int64
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.bytes += int64(len(p))
	for _, b := range p {
		if b == '\n' {
			w.records++
		}
	}
	return len(p), nil
}

// countSink adapts a countingWriter to the seal batcher's segment
// interface, so the sealed arm measures pure CPU cost (hashing,
// batching, framing) with no filesystem in the loop.
type countSink struct {
	cw   *countingWriter
	segs int64
}

func (s *countSink) Next(seg int) (io.WriteCloser, error) {
	s.segs++
	return nopSegment{s.cw}, nil
}

type nopSegment struct{ io.Writer }

func (nopSegment) Close() error { return nil }

// FlightOverheadResult reports what the flight recorder costs the
// paper's bulk transfer, and what Merkle-sealing the journal adds on
// top of plain recording.
type FlightOverheadResult struct {
	Off, On, Sealed TransferResult // virtual results; identical when recording is pure observation
	OffWall, OnWall time.Duration  // best-of-Trials real time per run
	SealedWall      time.Duration
	Trials          int
	JournalRecords  int64 // per run, both hosts together
	JournalBytes    int64
	SealedBytes     int64 // sealed journal incl. seal records
	SealedBatches   int64
	SealedSegments  int64
	OverheadPct     float64 // wall clock, (on-off)/off
	SealedPct       float64 // wall clock, (sealed-off)/off
	Text            string
}

// FlightOverhead measures the recorder's cost on the bulk transfer:
// Trials runs with the recorder off, Trials with both hosts recording,
// best real time of each. With the recorder off every hook site reduces
// to a single nil check, so Off also stands in for the pre-recorder
// stack when comparing against older baselines.
func FlightOverhead(o Options) FlightOverheadResult {
	o.fill()
	o.NoCharge = true // wire-limited: virtual results must match off/on
	const trials = 5
	res := FlightOverheadResult{Trials: trials}

	const (
		armOff = iota
		armOn
		armSealed
	)
	run := func(arm int) (TransferResult, time.Duration, int64, int64) {
		var best time.Duration
		var tr TransferResult
		var jBytes, jRecs int64
		for i := 0; i < trials; i++ {
			opt := o
			var cw [2]countingWriter
			var sinks [2]countSink
			var sw [2]*seal.Writer
			switch arm {
			case armOn:
				opt.FlightSinks = append(opt.FlightSinks, &cw[0], &cw[1])
			case armSealed:
				for j := range sw {
					sinks[j] = countSink{cw: &cw[j]}
					sw[j] = seal.NewWriter(&sinks[j], seal.Options{
						SegmentBytes: 1 << 20,
						MIB:          new(stats.SealMIB),
					})
					opt.FlightSinks = append(opt.FlightSinks, sw[j])
				}
			}
			start := time.Now()
			tr = Throughput(Structured, opt)
			if arm == armSealed {
				// Sealing the final partial batch is part of a run's cost.
				sw[0].Sync()
				sw[1].Sync()
			}
			wall := time.Since(start)
			if i == 0 || wall < best {
				best = wall
			}
			jBytes = cw[0].bytes + cw[1].bytes
			jRecs = cw[0].records + cw[1].records
			if arm == armSealed {
				res.SealedBatches = int64(sw[0].Batches() + sw[1].Batches())
				res.SealedSegments = sinks[0].segs + sinks[1].segs
			}
		}
		return tr, best, jBytes, jRecs
	}

	res.Off, res.OffWall, _, _ = run(armOff)
	res.On, res.OnWall, res.JournalBytes, res.JournalRecords = run(armOn)
	res.Sealed, res.SealedWall, res.SealedBytes, _ = run(armSealed)
	if res.OffWall > 0 {
		res.OverheadPct = 100 * float64(res.OnWall-res.OffWall) / float64(res.OffWall)
		res.SealedPct = 100 * float64(res.SealedWall-res.OffWall) / float64(res.OffWall)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Flight recorder overhead (bulk transfer, %d bytes, wire-limited, best of %d)\n",
		o.Bytes, trials)
	fmt.Fprintf(&b, "  %-13s wall %10v   virtual %v, %.2f Mb/s\n",
		"recorder off", res.OffWall.Round(time.Microsecond),
		time.Duration(res.Off.Elapsed), res.Off.ThroughputMbps)
	fmt.Fprintf(&b, "  %-13s wall %10v   journal %d records / %d B per run (both hosts)\n",
		"recorder on", res.OnWall.Round(time.Microsecond),
		res.JournalRecords, res.JournalBytes)
	fmt.Fprintf(&b, "  %-13s wall %10v   journal %d B in %d batches / %d segments, sha256-sealed\n",
		"sealed", res.SealedWall.Round(time.Microsecond),
		res.SealedBytes, res.SealedBatches, res.SealedSegments)
	if res.On.Elapsed == res.Off.Elapsed && res.On.SegsSent == res.Off.SegsSent &&
		res.Sealed.Elapsed == res.Off.Elapsed && res.Sealed.SegsSent == res.Off.SegsSent {
		b.WriteString("  virtual results identical off/on/sealed: recording and sealing are pure observation\n")
	} else {
		fmt.Fprintf(&b, "  WARNING: virtual results differ: off %v/%d, on %v/%d, sealed %v/%d segs\n",
			time.Duration(res.Off.Elapsed), res.Off.SegsSent,
			time.Duration(res.On.Elapsed), res.On.SegsSent,
			time.Duration(res.Sealed.Elapsed), res.Sealed.SegsSent)
	}
	fmt.Fprintf(&b, "  wall-clock cost of recording: %+.1f%%; sealing: %+.1f%%; disabled hook: one nil check per site\n",
		res.OverheadPct, res.SealedPct)
	res.Text = b.String()
	return res
}

// FlightJSON is the recorder-overhead measurement in foxbench -json
// output.
type FlightJSON struct {
	Trials          int          `json:"trials"`
	JournalRecords  int64        `json:"journal_records_per_run"`
	JournalBytes    int64        `json:"journal_bytes_per_run"`
	OffWallNS       int64        `json:"off_wall_ns"`
	OnWallNS        int64        `json:"on_wall_ns"`
	WallOverheadPct float64      `json:"wall_overhead_pct"`
	SealedWallNS    int64        `json:"sealed_wall_ns,omitempty"`
	SealedPct       float64      `json:"sealed_wall_overhead_pct,omitempty"`
	SealedBytes     int64        `json:"sealed_journal_bytes_per_run,omitempty"`
	SealedBatches   int64        `json:"sealed_batches_per_run,omitempty"`
	SealedSegments  int64        `json:"sealed_segments_per_run,omitempty"`
	Off             TransferJSON `json:"off"`
	On              TransferJSON `json:"on"`
	Sealed          TransferJSON `json:"sealed"`
}

// FlightReport runs the recorder-overhead experiment and returns both
// the JSON report and the formatted text.
func FlightReport(o Options) (Report, string) {
	r := FlightOverhead(o)
	return Report{Flight: &FlightJSON{
		Trials:          r.Trials,
		JournalRecords:  r.JournalRecords,
		JournalBytes:    r.JournalBytes,
		OffWallNS:       r.OffWall.Nanoseconds(),
		OnWallNS:        r.OnWall.Nanoseconds(),
		WallOverheadPct: r.OverheadPct,
		SealedWallNS:    r.SealedWall.Nanoseconds(),
		SealedPct:       r.SealedPct,
		SealedBytes:     r.SealedBytes,
		SealedBatches:   r.SealedBatches,
		SealedSegments:  r.SealedSegments,
		Off:             transferJSON(r.Off),
		On:              transferJSON(r.On),
		Sealed:          transferJSON(r.Sealed),
	}}, r.Text
}
