package experiments

// The flight-recorder overhead experiment. The recorder's hooks sit on
// the hottest paths in the stack — every enqueued tcp_action and every
// drained one — so their cost is measured, not asserted. The same
// deterministic bulk transfer runs with the recorder absent and with
// both hosts journaling to counting writers; CPU charging is off, so
// the virtual result is wire-limited and must be bit-identical either
// way (recording is pure observation), and the best-of-trials real time
// isolates what the recorder itself costs the host CPU.

import (
	"fmt"
	"strings"
	"time"
)

// countingWriter discards journal bytes but keeps the totals, so the
// overhead report can say how much journal a run produces. Records are
// counted by newline: the framing ends every record with '\n' and JSON
// bodies escape all control characters.
type countingWriter struct {
	bytes   int64
	records int64
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.bytes += int64(len(p))
	for _, b := range p {
		if b == '\n' {
			w.records++
		}
	}
	return len(p), nil
}

// FlightOverheadResult reports what the flight recorder costs the
// paper's bulk transfer.
type FlightOverheadResult struct {
	Off, On         TransferResult // virtual results; identical when recording is pure observation
	OffWall, OnWall time.Duration  // best-of-Trials real time per run
	Trials          int
	JournalRecords  int64 // per run, both hosts together
	JournalBytes    int64
	OverheadPct     float64 // wall clock, (on-off)/off
	Text            string
}

// FlightOverhead measures the recorder's cost on the bulk transfer:
// Trials runs with the recorder off, Trials with both hosts recording,
// best real time of each. With the recorder off every hook site reduces
// to a single nil check, so Off also stands in for the pre-recorder
// stack when comparing against older baselines.
func FlightOverhead(o Options) FlightOverheadResult {
	o.fill()
	o.NoCharge = true // wire-limited: virtual results must match off/on
	const trials = 5
	res := FlightOverheadResult{Trials: trials}

	run := func(record bool) (TransferResult, time.Duration, int64, int64) {
		var best time.Duration
		var tr TransferResult
		var jBytes, jRecs int64
		for i := 0; i < trials; i++ {
			opt := o
			var cw [2]countingWriter
			if record {
				opt.FlightSinks = append(opt.FlightSinks, &cw[0], &cw[1])
			}
			start := time.Now()
			tr = Throughput(Structured, opt)
			wall := time.Since(start)
			if i == 0 || wall < best {
				best = wall
			}
			jBytes = cw[0].bytes + cw[1].bytes
			jRecs = cw[0].records + cw[1].records
		}
		return tr, best, jBytes, jRecs
	}

	res.Off, res.OffWall, _, _ = run(false)
	res.On, res.OnWall, res.JournalBytes, res.JournalRecords = run(true)
	if res.OffWall > 0 {
		res.OverheadPct = 100 * float64(res.OnWall-res.OffWall) / float64(res.OffWall)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Flight recorder overhead (bulk transfer, %d bytes, wire-limited, best of %d)\n",
		o.Bytes, trials)
	fmt.Fprintf(&b, "  %-13s wall %10v   virtual %v, %.2f Mb/s\n",
		"recorder off", res.OffWall.Round(time.Microsecond),
		time.Duration(res.Off.Elapsed), res.Off.ThroughputMbps)
	fmt.Fprintf(&b, "  %-13s wall %10v   journal %d records / %d B per run (both hosts)\n",
		"recorder on", res.OnWall.Round(time.Microsecond),
		res.JournalRecords, res.JournalBytes)
	if res.On.Elapsed == res.Off.Elapsed && res.On.SegsSent == res.Off.SegsSent {
		b.WriteString("  virtual results identical off/on: recording is pure observation\n")
	} else {
		fmt.Fprintf(&b, "  WARNING: virtual results differ off/on: %v/%d segs vs %v/%d segs\n",
			time.Duration(res.Off.Elapsed), res.Off.SegsSent,
			time.Duration(res.On.Elapsed), res.On.SegsSent)
	}
	fmt.Fprintf(&b, "  wall-clock cost of recording: %+.1f%%; disabled hook: one nil check per site\n",
		res.OverheadPct)
	res.Text = b.String()
	return res
}

// FlightJSON is the recorder-overhead measurement in foxbench -json
// output.
type FlightJSON struct {
	Trials          int          `json:"trials"`
	JournalRecords  int64        `json:"journal_records_per_run"`
	JournalBytes    int64        `json:"journal_bytes_per_run"`
	OffWallNS       int64        `json:"off_wall_ns"`
	OnWallNS        int64        `json:"on_wall_ns"`
	WallOverheadPct float64      `json:"wall_overhead_pct"`
	Off             TransferJSON `json:"off"`
	On              TransferJSON `json:"on"`
}

// FlightReport runs the recorder-overhead experiment and returns both
// the JSON report and the formatted text.
func FlightReport(o Options) (Report, string) {
	r := FlightOverhead(o)
	return Report{Flight: &FlightJSON{
		Trials:          r.Trials,
		JournalRecords:  r.JournalRecords,
		JournalBytes:    r.JournalBytes,
		OffWallNS:       r.OffWall.Nanoseconds(),
		OnWallNS:        r.OnWall.Nanoseconds(),
		WallOverheadPct: r.OverheadPct,
		Off:             transferJSON(r.Off),
		On:              transferJSON(r.On),
	}}, r.Text
}
