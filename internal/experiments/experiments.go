// Package experiments regenerates the paper's evaluation (§5): Table 1's
// throughput and round-trip comparison between the structured Fox Net TCP
// and the x-kernel-style baseline, Table 2's execution profile, and the
// in-text GC experiment. cmd/foxbench prints the paper-shaped tables;
// bench_test.go exposes the same runs as Go benchmarks.
//
// The methodology follows the paper exactly where the simulation allows:
// "The test consists of sending 10^6 bytes of data between a designated
// sender and a designated receiver on an isolated 10 Mb/s ethernet. The
// receiver starts a timer, sends the designated sender a small packet
// specifying the amount of data desired, and stops the timer after all
// the specified data has been received. The received data is discarded
// when it is received at the application level." TCP windows are
// standardized to 4096 bytes. Time is the virtual clock, advanced by the
// measured CPU time of the protocol code (scaled to 1994 hardware by
// Config.CPUScale) plus wire serialization — see DESIGN.md §3.
package experiments

import (
	"encoding/binary"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/foxnet"
	"repro/internal/baseline"
	"repro/internal/fault"
	"repro/internal/flight"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tcp"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Impl selects which TCP implementation a run measures.
type Impl int

const (
	// Structured is the paper's quasi-synchronous Fox Net TCP.
	Structured Impl = iota
	// XKernelBaseline is the monolithic direct-call comparator.
	XKernelBaseline
)

func (i Impl) String() string {
	if i == Structured {
		return "Fox Net"
	}
	return "x-kernel (baseline)"
}

// Options parameterizes a run; zero values reproduce the paper's setup.
type Options struct {
	Bytes     int     // transfer size; default 1e6
	Window    int     // TCP window; default 4096
	CPUScale  float64 // virtual-time CPU multiplier; default 1000
	ChargeCPU bool    // default true (set NoChargeCPU to disable)
	NoCharge  bool    // disable CPU charging (deterministic runs)
	Profile   bool    // instrument with Table 2 counters
	Rounds    int     // round trips for RTT runs; default 100
	Loss      float64 // wire loss probability
	Seed      uint64
	TCPConfig *tcp.Config // extra structured-TCP overrides (ablations)
	// FlightSinks turns on the flight recorder for the structured hosts:
	// index 0 journals the sender, index 1 the receiver. Each host gets
	// its own Recorder (the cause stack is per-host state). Nil entries —
	// and a nil slice, the default — leave recording off, which is the
	// single-nil-check hot path. The recorder-overhead experiment feeds
	// counting writers through here.
	FlightSinks []io.Writer
	// Telemetry attaches observation planes to the structured hosts:
	// index 0 the sender, index 1 the receiver, same positional
	// convention as FlightSinks. Nil entries leave that host
	// unobserved. foxbench -telemetry feeds fresh planes through here
	// and reads back histograms, the executor profile, and cwnd traces.
	Telemetry []*telemetry.Telemetry
	// PriorityScheduler switches the coroutine ready queue from
	// round-robin FIFO to the priority discipline the paper proposes
	// for latency-critical actions (§4's closing paragraph).
	PriorityScheduler bool
	// SMLFactor multiplies all CPU charged by the structured (Fox) hosts,
	// modeling the SML/NJ code generation of 1994 (the paper measured
	// its compiled copy loop ~5× slower than bcopy). 0 means 1.
	SMLFactor float64
	// SMLEra charges the paper's own measured per-KB data-touching
	// costs on top of the structural CPU: copy 300 µs/KB and checksum
	// 343 µs/KB for the SML stack (§5), bcopy's 61 µs/KB and the
	// x-kernel checksum's 375 µs/KB for the baseline. Without it the
	// comparison isolates pure structure; with it the comparison also
	// carries the 1994 code-generation gap the paper's Table 1 folds in.
	SMLEra bool
	// Fault names a built-in fault scenario (flap, partition, burst,
	// squeeze) or a .fsched file path; the schedule starts against the
	// wire when a throughput run begins, so the benchmark measures the
	// stack degrading and recovering under scripted faults. Resolve
	// with FaultSchedule to validate before running.
	Fault string
	// FaultMIB, when non-nil, counts the applied transitions.
	FaultMIB *stats.FaultMIB
}

// FaultSchedule resolves Options.Fault: a built-in scenario name first,
// else a path to a .fsched file.
func FaultSchedule(name string) (fault.Schedule, error) {
	if sc, ok := fault.Named(name); ok {
		return sc, nil
	}
	if strings.ContainsAny(name, "/.") {
		return fault.ParseFile(name)
	}
	return fault.Schedule{}, fmt.Errorf("unknown fault scenario %q (built-ins: %s)",
		name, strings.Join(fault.Names(), ", "))
}

func (o *Options) fill() {
	if o.Bytes == 0 {
		o.Bytes = 1_000_000
	}
	if o.Window == 0 {
		o.Window = 4096
	}
	if o.CPUScale == 0 {
		o.CPUScale = 1000
	}
	if o.Rounds == 0 {
		o.Rounds = 100
	}
}

// TransferResult reports one one-way bulk transfer.
type TransferResult struct {
	Impl           Impl
	Bytes          int
	Elapsed        sim.Duration // virtual, request to last byte
	ThroughputMbps float64
	Retransmits    uint64
	SegsSent       uint64
	Sender         profile.Report // zero unless Options.Profile
	Receiver       profile.Report
	NumGC          uint32
}

// RTTResult reports a ping-pong run on an established connection.
type RTTResult struct {
	Impl    Impl
	Rounds  int
	MeanRTT sim.Duration
	MinRTT  sim.Duration
	MaxRTT  sim.Duration
}

// reqPort is where the designated sender listens for transfer requests.
const reqPort = 5001

// Throughput runs the Table 1 throughput experiment for one
// implementation.
func Throughput(impl Impl, o Options) TransferResult {
	o.fill()
	if impl != Structured {
		o.SMLFactor = 0 // the code-generation penalty is the SML stack's
	}
	res := TransferResult{Impl: impl, Bytes: o.Bytes}
	// Resolve the fault schedule outside the scheduler: ParseFile does
	// real file I/O, which has no business inside a coroutine body.
	var faultSched fault.Schedule
	if o.Fault != "" {
		sc, err := FaultSchedule(o.Fault)
		if err != nil {
			panic(fmt.Sprintf("experiment fault schedule: %v", err))
		}
		faultSched = sc
	}
	s := sim.New(sim.Config{ChargeCPU: !o.NoCharge, CPUScale: o.CPUScale, Priority: o.PriorityScheduler})
	s.Run(func() {
		net, profs := buildHosts(s, o)
		sender, receiver := net.Host(0), net.Host(1)
		if o.Fault != "" {
			net.StartFault(faultSched, o.FaultMIB)
		}

		var start, stop sim.Time
		received := 0
		done := sim.NewCond(s)

		switch impl {
		case Structured:
			sender.TCP.Listen(reqPort, func(c *tcp.Conn) tcp.Handler {
				return tcp.Handler{Data: func(c *tcp.Conn, d []byte) {
					want := int(binary.BigEndian.Uint32(d))
					s.Fork("bulk-sender", func() {
						c.Write(make([]byte, want))
					})
				}}
			})
			conn, err := receiver.TCP.Open(sender.Addr, reqPort, tcp.Handler{
				Data: func(c *tcp.Conn, d []byte) {
					received += len(d) // data discarded at application level
					if received >= o.Bytes {
						stop = s.Now()
						done.Signal()
					}
				},
			})
			if err != nil {
				panic(fmt.Sprintf("experiment open failed: %v", err))
			}
			start = s.Now()
			var req [4]byte
			binary.BigEndian.PutUint32(req[:], uint32(o.Bytes))
			conn.Write(req[:])
			done.Wait()
			conn.Close()
		case XKernelBaseline:
			blCfg := baseline.Config{InitialWindow: o.Window}
			if o.SMLEra {
				blCfg.CopyPerKB = 61 * time.Microsecond
				blCfg.ChecksumPerKB = 375 * time.Microsecond
			}
			bsCfg, brCfg := blCfg, blCfg
			bsCfg.Prof, brCfg.Prof = profs[0], profs[1]
			blSender := baseline.New(s, sender.IP.Network(6), bsCfg)
			blReceiver := baseline.New(s, receiver.IP.Network(6), brCfg)
			blSender.Listen(reqPort, func(c *baseline.Conn) baseline.Handler {
				return baseline.Handler{Data: func(c *baseline.Conn, d []byte) {
					want := int(binary.BigEndian.Uint32(d))
					s.Fork("bulk-sender", func() {
						c.Write(make([]byte, want))
					})
				}}
			})
			conn, err := blReceiver.Open(sender.Addr, reqPort, baseline.Handler{
				Data: func(c *baseline.Conn, d []byte) {
					received += len(d)
					if received >= o.Bytes {
						stop = s.Now()
						done.Signal()
					}
				},
			})
			if err != nil {
				panic(fmt.Sprintf("experiment open failed: %v", err))
			}
			start = s.Now()
			var req [4]byte
			binary.BigEndian.PutUint32(req[:], uint32(o.Bytes))
			conn.Write(req[:])
			done.Wait()
			res.Retransmits = blSender.Stats().Retransmits
			res.SegsSent = blSender.Stats().SegsSent
		}

		if impl == Structured {
			res.Retransmits = sender.TCP.Stats().Retransmits
			res.SegsSent = sender.TCP.Stats().SegsSent
		}
		res.Elapsed = sim.Duration(stop - start)
		if o.Profile {
			res.Sender = profs[0].Report()
			res.Receiver = profs[1].Report()
			res.NumGC = res.Sender.NumGC
		}
	})
	if res.Elapsed > 0 {
		res.ThroughputMbps = float64(res.Bytes) * 8 / res.Elapsed.Seconds() / 1e6
	}
	return res
}

// RoundTrip runs the Table 1 round-trip experiment: small request, small
// reply, over an established connection.
func RoundTrip(impl Impl, o Options) RTTResult {
	o.fill()
	if impl != Structured {
		o.SMLFactor = 0
	}
	res := RTTResult{Impl: impl, Rounds: o.Rounds, MinRTT: time.Hour}
	s := sim.New(sim.Config{ChargeCPU: !o.NoCharge, CPUScale: o.CPUScale, Priority: o.PriorityScheduler})
	s.Run(func() {
		net, profs := buildHosts(s, o)
		sender, receiver := net.Host(0), net.Host(1)
		_ = profs

		gotReply := sim.NewCond(s)
		replied := false

		echoStructured := func() *tcp.Conn {
			sender.TCP.Listen(reqPort, func(c *tcp.Conn) tcp.Handler {
				return tcp.Handler{Data: func(c *tcp.Conn, d []byte) { c.Write(d) }}
			})
			conn, err := receiver.TCP.Open(sender.Addr, reqPort, tcp.Handler{
				Data: func(c *tcp.Conn, d []byte) { replied = true; gotReply.Signal() },
			})
			if err != nil {
				panic(err)
			}
			return conn
		}

		var write func(b []byte)
		switch impl {
		case Structured:
			conn := echoStructured()
			write = func(b []byte) { conn.Write(b) }
		case XKernelBaseline:
			blCfg := baseline.Config{InitialWindow: o.Window}
			if o.SMLEra {
				blCfg.CopyPerKB = 61 * time.Microsecond
				blCfg.ChecksumPerKB = 375 * time.Microsecond
			}
			blSender := baseline.New(s, sender.IP.Network(6), blCfg)
			blReceiver := baseline.New(s, receiver.IP.Network(6), blCfg)
			blSender.Listen(reqPort, func(c *baseline.Conn) baseline.Handler {
				return baseline.Handler{Data: func(c *baseline.Conn, d []byte) { c.Write(d) }}
			})
			conn, err := blReceiver.Open(sender.Addr, reqPort, baseline.Handler{
				Data: func(c *baseline.Conn, d []byte) { replied = true; gotReply.Signal() },
			})
			if err != nil {
				panic(err)
			}
			write = func(b []byte) { conn.Write(b) }
		}

		msg := []byte{0xfb}
		var total sim.Duration
		for i := 0; i < o.Rounds; i++ {
			replied = false
			t0 := s.Now()
			write(msg)
			for !replied {
				gotReply.Wait()
			}
			rtt := sim.Duration(s.Now() - t0)
			total += rtt
			if rtt < res.MinRTT {
				res.MinRTT = rtt
			}
			if rtt > res.MaxRTT {
				res.MaxRTT = rtt
			}
		}
		res.MeanRTT = total / sim.Duration(o.Rounds)
	})
	return res
}

// buildHosts assembles the two-host benchmark network: 10 Mb/s wire,
// standardized window, optional profiling, MSL shortened so runs finish.
func buildHosts(s *sim.Scheduler, o Options) (*foxnet.Network, [2]*profile.Profile) {
	wcfg := wire.Config{Loss: o.Loss, Seed: o.Seed}
	tcfg := tcp.Config{InitialWindow: o.Window, MSL: 5 * time.Second}
	if o.SMLEra {
		tcfg.DataPath = tcp.DataPathCosts{
			CopyPerKB:     300 * time.Microsecond,
			ChecksumPerKB: 343 * time.Microsecond,
		}
	}
	if o.TCPConfig != nil {
		dp := tcfg.DataPath
		tcfg = *o.TCPConfig
		if tcfg.InitialWindow == 0 {
			tcfg.InitialWindow = o.Window
		}
		if tcfg.MSL == 0 {
			tcfg.MSL = 5 * time.Second
		}
		if tcfg.DataPath == (tcp.DataPathCosts{}) {
			tcfg.DataPath = dp
		}
	}
	hc := [2]*foxnet.HostConfig{
		{TCP: tcfg, Profile: o.Profile, ChargeFactor: o.SMLFactor},
		{TCP: tcfg, Profile: o.Profile, ChargeFactor: o.SMLFactor},
	}
	for i := range hc {
		if i < len(o.FlightSinks) && o.FlightSinks[i] != nil {
			hc[i].TCP.Flight = flight.NewRecorder(o.FlightSinks[i])
		}
		if i < len(o.Telemetry) && o.Telemetry[i] != nil {
			hc[i].TCP.Telemetry = o.Telemetry[i]
		}
	}
	net := foxnet.NewNetwork(s, wcfg, 2, hc[0], hc[1])
	return net, [2]*profile.Profile{net.Host(0).Prof, net.Host(1).Prof}
}

// Table1 runs both implementations and formats the paper's Table 1.
func Table1(o Options) (TransferResult, TransferResult, RTTResult, RTTResult, string) {
	foxT := Throughput(Structured, o)
	xkT := Throughput(XKernelBaseline, o)
	foxR := RoundTrip(Structured, o)
	xkR := RoundTrip(XKernelBaseline, o)
	return foxT, xkT, foxR, xkR, table1Text(foxT, xkT, foxR, xkR)
}

// table1Text formats the paper's Table 1 from the four measurements, so
// Table1Report can rerun the structured arm with telemetry attached and
// still print the identical table.
func table1Text(foxT, xkT TransferResult, foxR, xkR RTTResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Speed Comparison of TCP Implementations\n")
	fmt.Fprintf(&b, "  %-20s %10s %10s %8s   (paper)\n", "", "Fox Net", "x-kernel", "ratio")
	fmt.Fprintf(&b, "  %-20s %10.2f %10.2f %8.2f   (0.6 / 2.5 / 0.24)\n",
		"Throughput (Mb/s)", foxT.ThroughputMbps, xkT.ThroughputMbps,
		foxT.ThroughputMbps/xkT.ThroughputMbps)
	fmt.Fprintf(&b, "  %-20s %10.1f %10.1f %8.1f   (36 / 4.9 / 9.4)\n",
		"Round-Trip (ms)",
		float64(foxR.MeanRTT)/float64(time.Millisecond),
		float64(xkR.MeanRTT)/float64(time.Millisecond),
		float64(foxR.MeanRTT)/float64(xkR.MeanRTT))
	return b.String()
}

// Table2 runs the profiled structured transfer and formats the paper's
// Table 2 (sender and receiver execution profiles).
func Table2(o Options) (TransferResult, string) {
	o.Profile = true
	r := Throughput(Structured, o)
	var b strings.Builder
	b.WriteString("Table 2: Execution Profile (Percent of Total Time) of the TCP/IP stack\n")
	b.WriteString(r.Sender.Format("Sender"))
	b.WriteString(r.Receiver.Format("Receiver"))
	b.WriteString(paperTable2)
	return r, b.String()
}

const paperTable2 = `Paper's Table 2 for comparison (sender / receiver %):
  TCP 29.0/27.5  IP 7.8/9.7  eth+Mach-interface 11.2/11.9
  copy 10.5/6.3  checksum 5.1/5.6  Mach-send 7.5/6.0  packet-wait 15.8/9.3
  g.c. 3.4/5.0  misc 4.7/7.3  counters-est. 5.2/5.4  total 100.2/94.0
`

// GCResult is the §5 garbage-collection experiment: longer runs trigger
// major collections yet throughput holds or improves.
type GCResult struct {
	Short, Long TransferResult
	Text        string
}

// GCExperiment compares a 1 MB and a 5 MB transfer.
func GCExperiment(o Options) GCResult {
	o.fill()
	short := o
	short.Bytes = 1_000_000
	short.Profile = true
	long := o
	long.Bytes = 5_000_000
	long.Profile = true
	r := GCResult{Short: Throughput(Structured, short), Long: Throughput(Structured, long)}
	var b strings.Builder
	fmt.Fprintf(&b, "GC experiment (paper §5: ≥5 MB runs see major GCs, same-or-better throughput)\n")
	fmt.Fprintf(&b, "  %-8s %12s %10s %6s\n", "run", "throughput", "elapsed", "GCs")
	fmt.Fprintf(&b, "  %-8s %9.2f Mb/s %10v %6d\n", "1 MB", r.Short.ThroughputMbps, r.Short.Elapsed.Round(time.Millisecond), r.Short.NumGC)
	fmt.Fprintf(&b, "  %-8s %9.2f Mb/s %10v %6d\n", "5 MB", r.Long.ThroughputMbps, r.Long.Elapsed.Round(time.Millisecond), r.Long.NumGC)
	r.Text = b.String()
	return r
}

// SweepPoint is one row of the window-size parameter sweep.
type SweepPoint struct {
	Window int
	Fox    float64 // Mb/s
	XK     float64 // Mb/s
}

// WindowSweep measures throughput against window size for both
// implementations. The paper standardizes on 4096 bytes "used by many
// implementations" and notes that Maeda & Bershad's faster TCP raised
// window and buffer sizes; the sweep shows where each implementation
// stops being window-limited and becomes processing- or wire-limited.
func WindowSweep(o Options, windows []int) ([]SweepPoint, string) {
	o.fill()
	if len(windows) == 0 {
		windows = []int{1024, 2048, 4096, 8192, 16384, 32768, 65535}
	}
	var pts []SweepPoint
	var b strings.Builder
	fmt.Fprintf(&b, "Window sweep (%d-byte transfers)\n", o.Bytes)
	fmt.Fprintf(&b, "  %8s %14s %14s\n", "window", "Fox Net", "x-kernel")
	for _, w := range windows {
		opt := o
		opt.Window = w
		fox := Throughput(Structured, opt)
		xk := Throughput(XKernelBaseline, opt)
		pts = append(pts, SweepPoint{Window: w, Fox: fox.ThroughputMbps, XK: xk.ThroughputMbps})
		fmt.Fprintf(&b, "  %8d %9.2f Mb/s %9.2f Mb/s\n", w, fox.ThroughputMbps, xk.ThroughputMbps)
	}
	return pts, b.String()
}

// LossPoint is one row of the loss-rate sweep.
type LossPoint struct {
	Loss    float64
	Fox, XK float64 // Mb/s
	FoxRex  uint64
	XKRex   uint64
}

// LossSweep measures throughput and retransmissions against wire loss for
// both implementations — the recovery-machinery robustness curve.
func LossSweep(o Options, rates []float64) ([]LossPoint, string) {
	o.fill()
	if len(rates) == 0 {
		rates = []float64{0, 0.01, 0.03, 0.05, 0.10}
	}
	var pts []LossPoint
	var b strings.Builder
	fmt.Fprintf(&b, "Loss sweep (%d-byte transfers, seed %d)\n", o.Bytes, o.Seed)
	fmt.Fprintf(&b, "  %6s %20s %20s\n", "loss", "Fox Net (rexmits)", "x-kernel (rexmits)")
	for _, r := range rates {
		opt := o
		opt.Loss = r
		fox := Throughput(Structured, opt)
		xk := Throughput(XKernelBaseline, opt)
		pts = append(pts, LossPoint{Loss: r, Fox: fox.ThroughputMbps, XK: xk.ThroughputMbps,
			FoxRex: fox.Retransmits, XKRex: xk.Retransmits})
		fmt.Fprintf(&b, "  %5.0f%% %10.2f Mb/s (%3d) %10.2f Mb/s (%3d)\n",
			r*100, fox.ThroughputMbps, fox.Retransmits, xk.ThroughputMbps, xk.Retransmits)
	}
	return pts, b.String()
}

// Ablation describes one design-choice toggle from DESIGN.md §5.
type Ablation struct {
	Name string
	Cfg  tcp.Config
}

// Ablations returns the standard set.
func Ablations() []Ablation {
	return []Ablation{
		{Name: "paper defaults", Cfg: tcp.Config{}},
		{Name: "direct dispatch (no to_do queue)", Cfg: tcp.Config{DirectDispatch: true}},
		{Name: "fast path off", Cfg: tcp.Config{FastPath: tcp.Disable}},
		{Name: "delayed acks off", Cfg: tcp.Config{DelayedAcks: tcp.Disable}},
		{Name: "nagle off", Cfg: tcp.Config{Nagle: tcp.Disable}},
		{Name: "congestion control off", Cfg: tcp.Config{CongestionControl: tcp.Disable}},
	}
}

// RunAblations measures throughput for each toggle and formats a table.
func RunAblations(o Options) string {
	o.fill()
	var b strings.Builder
	fmt.Fprintf(&b, "Ablations (structured TCP, %d-byte transfer)\n", o.Bytes)
	fmt.Fprintf(&b, "  %-36s %12s %8s\n", "variant", "throughput", "segs")
	for _, a := range Ablations() {
		opt := o
		cfg := a.Cfg
		opt.TCPConfig = &cfg
		r := Throughput(Structured, opt)
		fmt.Fprintf(&b, "  %-36s %9.2f Mb/s %8d\n", a.Name, r.ThroughputMbps, r.SegsSent)
	}
	// The scheduler-discipline ablation the paper proposes in §4: a
	// priority ready queue instead of round-robin. Throughput is
	// insensitive (one flow); the RTT experiment is where priorities
	// would matter, so report both.
	prio := o
	prio.PriorityScheduler = true
	rp := Throughput(Structured, prio)
	fmt.Fprintf(&b, "  %-36s %9.2f Mb/s %8d\n", "priority ready queue", rp.ThroughputMbps, rp.SegsSent)
	rttFIFO := RoundTrip(Structured, o)
	rttPrio := RoundTrip(Structured, prio)
	fmt.Fprintf(&b, "  RTT: fifo %v vs priority %v\n",
		rttFIFO.MeanRTT.Round(10*time.Microsecond), rttPrio.MeanRTT.Round(10*time.Microsecond))
	return b.String()
}
