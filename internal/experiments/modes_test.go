package experiments

import (
	"testing"
	"time"
)

// These tests pin down the calibration modes of DESIGN.md §3: the 1994
// knobs must slow exactly whom they claim to slow.

func charged() Options {
	return Options{Bytes: 60_000, CPUScale: 1000, Rounds: 5}
}

func TestSMLFactorSlowsOnlyTheStructuredStack(t *testing.T) {
	base := Throughput(Structured, charged())
	o := charged()
	o.SMLFactor = 8
	slowed := Throughput(Structured, o)
	if slowed.Elapsed < base.Elapsed*2 {
		t.Fatalf("SMLFactor 8 barely slowed the Fox run: %v -> %v", base.Elapsed, slowed.Elapsed)
	}

	blBase := Throughput(XKernelBaseline, charged())
	blO := charged()
	blO.SMLFactor = 8
	blSame := Throughput(XKernelBaseline, blO)
	// The baseline must be unaffected (within CPU-measurement noise).
	if blSame.Elapsed > blBase.Elapsed*2 {
		t.Fatalf("SMLFactor leaked into the baseline: %v -> %v", blBase.Elapsed, blSame.Elapsed)
	}
}

func TestSMLEraChargesDataPath(t *testing.T) {
	// In deterministic mode the only virtual costs are wire + explicit
	// charges, so the SMLEra per-KB constants must show up exactly.
	det := Options{Bytes: 60_000, NoCharge: true}
	base := Throughput(Structured, det)
	era := det
	era.SMLEra = true
	charged := Throughput(Structured, era)
	if charged.Elapsed <= base.Elapsed {
		t.Fatalf("SMLEra did not lengthen the run: %v vs %v", charged.Elapsed, base.Elapsed)
	}
	// 60 kB copied once at 300 µs/KB is ≈17.6 ms of added sender time
	// alone; the delta must be at least that.
	if delta := charged.Elapsed - base.Elapsed; delta < 17*time.Millisecond {
		t.Fatalf("SMLEra delta only %v", delta)
	}
}

func TestDeterministicModesAreExactlyRepeatable(t *testing.T) {
	for _, era := range []bool{false, true} {
		o := Options{Bytes: 40_000, NoCharge: true, SMLEra: era}
		a := Throughput(Structured, o)
		b := Throughput(Structured, o)
		if a.Elapsed != b.Elapsed {
			t.Fatalf("era=%v: %v vs %v", era, a.Elapsed, b.Elapsed)
		}
	}
}

func TestRoundTripFasterWithoutDelayedAckInfluence(t *testing.T) {
	// The echo application replies immediately, so the measured RTT must
	// sit far below the 200 ms delayed-ack timer — the ack piggybacks.
	r := RoundTrip(Structured, Options{Bytes: 1, NoCharge: true, Rounds: 20})
	if r.MeanRTT >= 100*time.Millisecond {
		t.Fatalf("RTT %v suggests delayed-ack stalls in the echo loop", r.MeanRTT)
	}
}

func TestThroughputScalesWithWindow(t *testing.T) {
	// Deterministic mode is window-limited: doubling the window must
	// raise throughput materially (until the wire saturates).
	small := Throughput(Structured, Options{Bytes: 200_000, NoCharge: true, Window: 2048})
	large := Throughput(Structured, Options{Bytes: 200_000, NoCharge: true, Window: 16384})
	if large.ThroughputMbps < small.ThroughputMbps*1.5 {
		t.Fatalf("window 2k -> 16k moved throughput %0.2f -> %0.2f Mb/s",
			small.ThroughputMbps, large.ThroughputMbps)
	}
}

func TestBaselineBeatsOrMatchesStructuredUnderCharging(t *testing.T) {
	// The Table 1 direction must hold on average; individual runs are
	// noisy, so compare the best of three.
	best := func(impl Impl) float64 {
		b := 0.0
		for i := 0; i < 3; i++ {
			if r := Throughput(impl, charged()); r.ThroughputMbps > b {
				b = r.ThroughputMbps
			}
		}
		return b
	}
	fox, xk := best(Structured), best(XKernelBaseline)
	if fox > xk*1.3 {
		t.Fatalf("structured (%0.2f Mb/s) dramatically beat the baseline (%0.2f Mb/s)", fox, xk)
	}
}

func TestWindowSweepShape(t *testing.T) {
	pts, text := WindowSweep(Options{Bytes: 80_000, NoCharge: true}, []int{2048, 4096, 16384})
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Deterministic mode is window-limited: throughput must be
	// non-decreasing in window size for both implementations once past
	// the sub-MSS pathology.
	if pts[2].Fox < pts[1].Fox || pts[2].XK < pts[1].XK {
		t.Fatalf("throughput fell as the window grew:\n%s", text)
	}
	// Window 2048 (< 2*MSS) hits the delayed-ack pathology on both.
	if pts[0].Fox > pts[1].Fox {
		t.Fatalf("sub-MSS window outperformed a full window:\n%s", text)
	}
}

func TestLossSweepMonotoneDecline(t *testing.T) {
	pts, text := LossSweep(Options{Bytes: 60_000, NoCharge: true, Seed: 2}, []float64{0, 0.05})
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[1].Fox >= pts[0].Fox || pts[1].XK >= pts[0].XK {
		t.Fatalf("loss did not reduce throughput:\n%s", text)
	}
	if pts[0].FoxRex != 0 || pts[1].FoxRex == 0 {
		t.Fatalf("retransmission counts wrong:\n%s", text)
	}
}
