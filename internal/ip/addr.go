// Package ip implements IPv4: header marshalling, header checksum,
// routing, fragmentation and reassembly, and protocol demultiplexing. It
// is the stack's Ip functor (Fig. 3) and, through Network, supplies the
// IP_AUX structure (Fig. 5) — source-address info, pseudo-header
// checksum, and MTU — that the TCP and UDP functors both require.
package ip

import "repro/internal/protocol"

// Addr is an IPv4 address. The concrete type lives in internal/protocol
// (as protocol.IPv4) because layers below IP — ARP — also speak IPv4
// addresses, and the Fig. 9 module graph forbids them importing upward;
// the alias keeps ip.Addr as the idiomatic name above IP.
type Addr = protocol.IPv4

// Unspecified is the zero address 0.0.0.0.
var Unspecified = protocol.UnspecifiedIPv4

// LimitedBroadcast is 255.255.255.255.
var LimitedBroadcast = protocol.LimitedBroadcastIPv4

// HostAddr returns 10.0.0.n, convenient for assembling simulated hosts.
func HostAddr(n byte) Addr { return Addr{10, 0, 0, n} }
