// Package ip implements IPv4: header marshalling, header checksum,
// routing, fragmentation and reassembly, and protocol demultiplexing. It
// is the stack's Ip functor (Fig. 3) and, through Network, supplies the
// IP_AUX structure (Fig. 5) — source-address info, pseudo-header
// checksum, and MTU — that the TCP and UDP functors both require.
package ip

import "fmt"

// Addr is an IPv4 address.
type Addr [4]byte

// String formats the address in dotted decimal.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// Unspecified is the zero address 0.0.0.0.
var Unspecified = Addr{}

// LimitedBroadcast is 255.255.255.255.
var LimitedBroadcast = Addr{255, 255, 255, 255}

// HostAddr returns 10.0.0.n, convenient for assembling simulated hosts.
func HostAddr(n byte) Addr { return Addr{10, 0, 0, n} }

// IsUnspecified reports whether a is 0.0.0.0.
func (a Addr) IsUnspecified() bool { return a == Unspecified }

// Mask applies a netmask.
func (a Addr) Mask(m Addr) Addr {
	var r Addr
	for i := range a {
		r[i] = a[i] & m[i]
	}
	return r
}

// SameSubnet reports whether a and b share the subnet defined by mask m.
func (a Addr) SameSubnet(b, m Addr) bool { return a.Mask(m) == b.Mask(m) }
