package ip_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/arp"
	"repro/internal/basis"
	"repro/internal/ethernet"
	"repro/internal/ip"
	"repro/internal/sim"
	"repro/internal/wire"
)

type testHost struct {
	Eth *ethernet.Ethernet
	ARP *arp.ARP
	IP  *ip.IP
}

// buildNet assembles n hosts (addresses 10.0.0.1..n) on one segment.
func buildNet(s *sim.Scheduler, seg *wire.Segment, n int) []*testHost {
	hosts := make([]*testHost, n)
	for i := range hosts {
		mac := ethernet.HostAddr(byte(i + 1))
		addr := ip.HostAddr(byte(i + 1))
		port := seg.NewPort(addr.String(), nil)
		eth := ethernet.New(port, mac, ethernet.Config{})
		a := arp.New(s, eth, addr, arp.Config{})
		ipl := ip.New(s, eth, a, ip.Config{Local: addr})
		hosts[i] = &testHost{Eth: eth, ARP: a, IP: ipl}
	}
	return hosts
}

func runIPNet(t *testing.T, n int, wcfg wire.Config, body func(s *sim.Scheduler, hosts []*testHost)) {
	t.Helper()
	s := sim.New(sim.Config{})
	s.Run(func() {
		seg := wire.NewSegment(s, wcfg, nil)
		body(s, buildNet(s, seg, n))
	})
}

func payload(data []byte) *basis.Packet {
	return basis.NewPacket(ip.Headroom, ethernet.Tailroom, data)
}

func TestDatagramDeliveryWithARPResolution(t *testing.T) {
	runIPNet(t, 2, wire.Config{}, func(s *sim.Scheduler, h []*testHost) {
		var gotSrc ip.Addr
		var gotData []byte
		h[1].IP.Register(200, func(src, dst ip.Addr, pkt *basis.Packet) {
			gotSrc, gotData = src, append([]byte(nil), pkt.Bytes()...)
		})
		if err := h[0].IP.Send(ip.HostAddr(2), 200, payload([]byte("ip datagram"))); err != nil {
			t.Fatal(err)
		}
		s.Sleep(100 * time.Millisecond)
		if gotSrc != ip.HostAddr(1) {
			t.Fatalf("src = %s", gotSrc)
		}
		if string(gotData) != "ip datagram" {
			t.Fatalf("data = %q", gotData)
		}
		if h[0].ARP.Stats().RequestsSent == 0 {
			t.Fatal("no ARP exchange happened")
		}
	})
}

func TestSecondSendUsesARPCache(t *testing.T) {
	runIPNet(t, 2, wire.Config{}, func(s *sim.Scheduler, h []*testHost) {
		count := 0
		h[1].IP.Register(200, func(src, dst ip.Addr, pkt *basis.Packet) { count++ })
		h[0].IP.Send(ip.HostAddr(2), 200, payload([]byte("one")))
		s.Sleep(50 * time.Millisecond)
		h[0].IP.Send(ip.HostAddr(2), 200, payload([]byte("two")))
		s.Sleep(50 * time.Millisecond)
		if count != 2 {
			t.Fatalf("delivered %d", count)
		}
		if reqs := h[0].ARP.Stats().RequestsSent; reqs != 1 {
			t.Fatalf("ARP requests = %d, want 1 (cache hit expected)", reqs)
		}
	})
}

func TestResolutionFailureDropsSilently(t *testing.T) {
	runIPNet(t, 2, wire.Config{}, func(s *sim.Scheduler, h []*testHost) {
		h[0].IP.Send(ip.HostAddr(77), 200, payload([]byte("to nobody")))
		s.Sleep(10 * time.Second)
		st := h[0].IP.Stats()
		if st.ResolveFailures != 1 {
			t.Fatalf("ResolveFailures = %d", st.ResolveFailures)
		}
		if h[0].ARP.Stats().RequestsSent != 3 {
			t.Fatalf("ARP retries = %d, want 3", h[0].ARP.Stats().RequestsSent)
		}
	})
}

func TestProtocolDemux(t *testing.T) {
	runIPNet(t, 2, wire.Config{}, func(s *sim.Scheduler, h []*testHost) {
		var got []byte
		h[1].IP.Register(6, func(src, dst ip.Addr, pkt *basis.Packet) { got = append(got, 6) })
		h[1].IP.Register(17, func(src, dst ip.Addr, pkt *basis.Packet) { got = append(got, 17) })
		h[0].IP.Send(ip.HostAddr(2), 17, payload([]byte("udp-ish")))
		h[0].IP.Send(ip.HostAddr(2), 6, payload([]byte("tcp-ish")))
		s.Sleep(100 * time.Millisecond)
		if len(got) != 2 || got[0] != 17 || got[1] != 6 {
			t.Fatalf("demux order = %v", got)
		}
	})
}

func TestUnknownProtocolCounted(t *testing.T) {
	runIPNet(t, 2, wire.Config{}, func(s *sim.Scheduler, h []*testHost) {
		h[0].IP.Send(ip.HostAddr(2), 99, payload([]byte("orphan")))
		s.Sleep(100 * time.Millisecond)
		if h[1].IP.Stats().UnknownProto != 1 {
			t.Fatalf("UnknownProto = %d", h[1].IP.Stats().UnknownProto)
		}
	})
}

func TestFragmentationAndReassembly(t *testing.T) {
	runIPNet(t, 2, wire.Config{}, func(s *sim.Scheduler, h []*testHost) {
		big := make([]byte, 4000) // > 2 fragments at 1500 MTU
		for i := range big {
			big[i] = byte(i)
		}
		var got []byte
		h[1].IP.Register(200, func(src, dst ip.Addr, pkt *basis.Packet) {
			got = append([]byte(nil), pkt.Bytes()...)
		})
		h[0].IP.Send(ip.HostAddr(2), 200, payload(big))
		s.Sleep(200 * time.Millisecond)
		if !bytes.Equal(got, big) {
			t.Fatalf("reassembled %d bytes, want %d (equal=%v)", len(got), len(big), bytes.Equal(got, big))
		}
		if h[0].IP.Stats().FragmentsSent < 3 {
			t.Fatalf("FragmentsSent = %d", h[0].IP.Stats().FragmentsSent)
		}
		if h[1].IP.Stats().Reassembled != 1 {
			t.Fatalf("Reassembled = %d", h[1].IP.Stats().Reassembled)
		}
	})
}

func TestReassemblyWithDuplicatedFragments(t *testing.T) {
	runIPNet(t, 2, wire.Config{Duplicate: 1}, func(s *sim.Scheduler, h []*testHost) {
		big := make([]byte, 3000)
		for i := range big {
			big[i] = byte(i * 3)
		}
		count := 0
		var got []byte
		h[1].IP.Register(200, func(src, dst ip.Addr, pkt *basis.Packet) {
			count++
			got = append([]byte(nil), pkt.Bytes()...)
		})
		h[0].IP.Send(ip.HostAddr(2), 200, payload(big))
		s.Sleep(300 * time.Millisecond)
		if count != 1 {
			t.Fatalf("datagram delivered %d times", count)
		}
		if !bytes.Equal(got, big) {
			t.Fatal("reassembly with duplicates corrupted data")
		}
	})
}

func TestReassemblyTimeoutOnLoss(t *testing.T) {
	// Drop every other frame deterministically is hard; instead lose all
	// frames after installing a receive tap is overkill — use a high loss
	// rate and check that incomplete reassemblies eventually time out.
	runIPNet(t, 2, wire.Config{Loss: 0.5, Seed: 12345}, func(s *sim.Scheduler, h []*testHost) {
		big := make([]byte, 6000)
		for i := 0; i < 20; i++ {
			h[0].IP.Send(ip.HostAddr(2), 200, payload(big))
		}
		s.Sleep(5 * time.Minute)
		st := h[1].IP.Stats()
		if st.ReassemblyTimeouts == 0 {
			t.Skip("lossy run happened to lose or deliver whole datagrams only")
		}
	})
}

func TestBroadcastDatagram(t *testing.T) {
	runIPNet(t, 3, wire.Config{}, func(s *sim.Scheduler, h []*testHost) {
		got := [3]int{}
		for i := 1; i < 3; i++ {
			i := i
			h[i].IP.Register(200, func(src, dst ip.Addr, pkt *basis.Packet) { got[i]++ })
		}
		h[0].IP.Send(ip.LimitedBroadcast, 200, payload([]byte("everyone")))
		h[0].IP.Send(ip.Addr{10, 0, 0, 255}, 200, payload([]byte("subnet bcast")))
		s.Sleep(100 * time.Millisecond)
		if got[1] != 2 || got[2] != 2 {
			t.Fatalf("broadcast deliveries = %v", got)
		}
	})
}

func TestOtherHostsDatagramsFiltered(t *testing.T) {
	runIPNet(t, 3, wire.Config{}, func(s *sim.Scheduler, h []*testHost) {
		h[1].IP.Register(200, func(src, dst ip.Addr, pkt *basis.Packet) {})
		// Host 3's eth sees the frame only if MAC-addressed to it; make
		// the IP dst host 2 so host 3 never even receives it. Then send
		// an IP-broadcast-at-eth-level trick: not constructible through
		// the public API, so instead check NotLocal via a unicast MAC
		// mismatch is already filtered at eth. Send to host 2 and verify
		// host 3 counters stay clean.
		h[0].IP.Send(ip.HostAddr(2), 200, payload([]byte("private")))
		s.Sleep(100 * time.Millisecond)
		if h[2].IP.Stats().Received != 0 || h[2].IP.Stats().NotLocal != 0 {
			t.Fatalf("host 3 saw traffic: %+v", h[2].IP.Stats())
		}
	})
}

func TestOversizedDatagramRejected(t *testing.T) {
	runIPNet(t, 2, wire.Config{}, func(s *sim.Scheduler, h []*testHost) {
		err := h[0].IP.Send(ip.HostAddr(2), 200, payload(make([]byte, 0x10000)))
		if err != ip.ErrTooLarge {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestCorruptedHeaderDropped(t *testing.T) {
	runIPNet(t, 2, wire.Config{Corrupt: 1, Seed: 5}, func(s *sim.Scheduler, h []*testHost) {
		// Disable FCS checking so corruption reaches the IP layer.
		// Easier: corruption is dropped at eth FCS already; verify
		// nothing is delivered and BadChecksum stays 0 or more.
		delivered := false
		h[1].IP.Register(200, func(src, dst ip.Addr, pkt *basis.Packet) { delivered = true })
		h[0].ARP.AddStatic(ip.HostAddr(2), ethernet.HostAddr(2))
		h[0].IP.Send(ip.HostAddr(2), 200, payload([]byte("doomed datagram")))
		s.Sleep(100 * time.Millisecond)
		if delivered {
			t.Fatal("corrupted frame delivered")
		}
	})
}

func TestNetworkAdapterGeometryAndPseudoHeader(t *testing.T) {
	runIPNet(t, 2, wire.Config{}, func(s *sim.Scheduler, h []*testHost) {
		n := h[0].IP.Network(ip.ProtoTCP)
		if n.MTU() != 1480 {
			t.Fatalf("MTU = %d", n.MTU())
		}
		if n.Headroom() != ip.Headroom {
			t.Fatalf("ip.Headroom = %d", n.Headroom())
		}
		// Pseudo-header: 10.0.0.1, 10.0.0.2, proto 6, len 20.
		got := n.PseudoHeaderChecksum(ip.HostAddr(2), 20)
		// Manual: 0a00 + 0001 + 0a00 + 0002 + 0006 + 0014 = 0x141d.
		// Folded: 0x141d + 0 = 0x141d... compute: 0a00+0a00=1400,
		// 0001+0002=0003, +0006+0014 = 141d... wait include carry: no
		// carries here, total 0x141d.
		if got != 0x141d {
			t.Fatalf("pseudo-header sum = %#04x", got)
		}
	})
}

func TestAddrHelpers(t *testing.T) {
	a := ip.Addr{10, 0, 0, 1}
	if a.String() != "10.0.0.1" {
		t.Fatalf("String = %s", a)
	}
	if !a.SameSubnet(ip.Addr{10, 0, 0, 200}, ip.Addr{255, 255, 255, 0}) {
		t.Fatal("same subnet not detected")
	}
	if a.SameSubnet(ip.Addr{10, 0, 1, 1}, ip.Addr{255, 255, 255, 0}) {
		t.Fatal("different subnet not detected")
	}
	if !ip.Unspecified.IsUnspecified() || a.IsUnspecified() {
		t.Fatal("IsUnspecified wrong")
	}
}
