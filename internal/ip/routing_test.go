package ip_test

import (
	"testing"
	"time"

	"repro/internal/arp"
	"repro/internal/basis"
	"repro/internal/ethernet"
	"repro/internal/ip"
	"repro/internal/sim"
	"repro/internal/wire"
)

// TestGatewayRouting: a host configured with a default gateway must
// resolve the gateway's hardware address — not the (off-subnet)
// destination's — and hand it the datagram unchanged, so the IP header
// still names the final destination.
func TestGatewayRouting(t *testing.T) {
	s := sim.New(sim.Config{})
	s.Run(func() {
		seg := wire.NewSegment(s, wire.Config{}, nil)

		// Host A at 10.0.0.1 with gateway 10.0.0.254.
		ethA := ethernet.New(seg.NewPort("a", nil), ethernet.HostAddr(1), ethernet.Config{})
		arpA := arp.New(s, ethA, ip.HostAddr(1), arp.Config{})
		ipA := ip.New(s, ethA, arpA, ip.Config{
			Local:   ip.HostAddr(1),
			Gateway: ip.Addr{10, 0, 0, 254},
		})

		// The gateway box at 10.0.0.254: we use its IP layer only to
		// observe that the datagram for 192.168.9.9 arrived at its MAC
		// (a real router would forward; ours records).
		gwMAC := ethernet.HostAddr(254)
		ethGW := ethernet.New(seg.NewPort("gw", nil), gwMAC, ethernet.Config{})
		arp.New(s, ethGW, ip.Addr{10, 0, 0, 254}, arp.Config{})
		var sawDst ip.Addr
		ethGW.Register(ethernet.TypeIPv4, func(src, dst ethernet.Addr, pkt *basis.Packet) {
			b := pkt.Bytes()
			copy(sawDst[:], b[16:20])
		})

		far := ip.Addr{192, 168, 9, 9}
		ipA.Send(far, 200, basis.NewPacket(ip.Headroom, ethernet.Tailroom, []byte("via gateway")))
		s.Sleep(100 * time.Millisecond)

		if sawDst != far {
			t.Fatalf("gateway received datagram for %s, want %s", sawDst, far)
		}
		if _, ok := arpA.Lookup(ip.Addr{10, 0, 0, 254}); !ok {
			t.Fatal("host never resolved its gateway")
		}
		if _, ok := arpA.Lookup(far); ok {
			t.Fatal("host ARPed for an off-subnet address")
		}
	})
}

// TestNoRouteDropsSilently: off-subnet destination, no gateway.
func TestNoRouteDropsSilently(t *testing.T) {
	s := sim.New(sim.Config{})
	s.Run(func() {
		seg := wire.NewSegment(s, wire.Config{}, nil)
		eth := ethernet.New(seg.NewPort("a", nil), ethernet.HostAddr(1), ethernet.Config{})
		res := arp.New(s, eth, ip.HostAddr(1), arp.Config{})
		ipl := ip.New(s, eth, res, ip.Config{Local: ip.HostAddr(1)})
		ipl.Send(ip.Addr{192, 168, 1, 1}, 200, basis.NewPacket(ip.Headroom, ethernet.Tailroom, []byte("nowhere")))
		s.Sleep(100 * time.Millisecond)
		if ipl.Stats().ResolveFailures != 1 {
			t.Fatalf("ResolveFailures = %d", ipl.Stats().ResolveFailures)
		}
		if res.Stats().RequestsSent != 0 {
			t.Fatal("ARP request sent for an unroutable destination")
		}
	})
}

// TestCustomNetmask: a /16 mask makes 10.0.x.y all on-link.
func TestCustomNetmask(t *testing.T) {
	s := sim.New(sim.Config{})
	s.Run(func() {
		seg := wire.NewSegment(s, wire.Config{}, nil)
		mk := func(name string, addr ip.Addr, mac ethernet.Addr) (*ip.IP, *arp.ARP) {
			eth := ethernet.New(seg.NewPort(name, nil), mac, ethernet.Config{})
			res := arp.New(s, eth, addr, arp.Config{})
			return ip.New(s, eth, res, ip.Config{Local: addr, Netmask: ip.Addr{255, 255, 0, 0}}), res
		}
		ipA, _ := mk("a", ip.Addr{10, 0, 1, 1}, ethernet.HostAddr(1))
		ipB, _ := mk("b", ip.Addr{10, 0, 2, 2}, ethernet.HostAddr(2))
		var got []byte
		ipB.Register(200, func(src, dst ip.Addr, pkt *basis.Packet) {
			got = append([]byte(nil), pkt.Bytes()...)
		})
		ipA.Send(ip.Addr{10, 0, 2, 2}, 200, basis.NewPacket(ip.Headroom, ethernet.Tailroom, []byte("cross-24 on-link")))
		s.Sleep(100 * time.Millisecond)
		if string(got) != "cross-24 on-link" {
			t.Fatalf("got %q", got)
		}
	})
}
