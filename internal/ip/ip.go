package ip

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/basis"
	"repro/internal/checksum"
	"repro/internal/ethernet"
	"repro/internal/profile"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/timers"
)

// Well-known protocol numbers.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

const (
	headerLen = 20
	flagDF    = 0x4000
	flagMF    = 0x2000
	// Headroom is the byte budget transports over IP must reserve.
	Headroom = ethernet.Headroom + headerLen
)

// Resolver turns a next-hop IP address into a link address; internal/arp
// implements it. The indirection keeps ip free of a dependency on the
// resolution protocol, as the paper keeps TCP free of IP specifics via
// IP_AUX.
type Resolver interface {
	Resolve(next Addr, ready func(mac ethernet.Addr, ok bool))
}

// Handler receives a demultiplexed datagram's payload.
type Handler func(src, dst Addr, pkt *basis.Packet)

// Config parameterizes a host's IP layer.
type Config struct {
	Local   Addr
	Netmask Addr // default 255.255.255.0
	Gateway Addr // zero: no default route (single subnet)
	// Forward makes this host a router: datagrams for other
	// destinations are re-routed with the TTL decremented instead of
	// dropped, and TTL exhaustion raises the TimeExceeded hook.
	Forward bool
	TTL     byte // default 64
	// ReassemblyTimeout bounds how long partial reassemblies are held
	// (RFC 1122 requires 60–120 s; default 60 s).
	ReassemblyTimeout sim.Duration
	Trace             *basis.Tracer
	Prof              *profile.Profile
	// Metrics is the RFC 2011-style ip counter group; fill allocates a
	// detached one when none is supplied.
	Metrics *stats.IPMIB
}

func (c *Config) fill() {
	if c.Netmask == (Addr{}) {
		c.Netmask = Addr{255, 255, 255, 0}
	}
	if c.TTL == 0 {
		c.TTL = 64
	}
	if c.ReassemblyTimeout == 0 {
		c.ReassemblyTimeout = 60 * time.Second
	}
	if c.Metrics == nil {
		c.Metrics = new(stats.IPMIB)
	}
}

// Stats counts IP-layer events.
type Stats struct {
	Sent               uint64
	Received           uint64
	FragmentsSent      uint64
	FragmentsReceived  uint64
	Reassembled        uint64
	ReassemblyTimeouts uint64
	BadHeader          uint64
	BadChecksum        uint64
	NotLocal           uint64
	Forwarded          uint64
	TTLExpired         uint64
	UnknownProto       uint64
	ResolveFailures    uint64
}

type reasmKey struct {
	src   Addr
	dst   Addr
	proto byte
	id    uint16
}

type fragment struct {
	off  int
	data []byte
	last bool
}

type reassembly struct {
	frags []fragment
	timer *timers.Timer
}

// IP is one host's IPv4 layer over one Ethernet interface.
type IP struct {
	s        *sim.Scheduler
	eth      *ethernet.Ethernet
	resolver Resolver
	cfg      Config
	ident    uint16
	handlers map[byte]Handler
	reasm    map[reasmKey]*reassembly
	stats    Stats

	// TimeExceeded, when non-nil, observes datagrams a forwarding host
	// dropped for TTL exhaustion (the ICMP layer wires itself in here
	// to answer with a time-exceeded message).
	TimeExceeded func(src Addr, original []byte)
}

// New attaches an IP layer to eth, resolving next hops through resolver.
func New(s *sim.Scheduler, eth *ethernet.Ethernet, resolver Resolver, cfg Config) *IP {
	cfg.fill()
	p := &IP{
		s: s, eth: eth, resolver: resolver, cfg: cfg,
		handlers: make(map[byte]Handler),
		reasm:    make(map[reasmKey]*reassembly),
	}
	eth.Register(ethernet.TypeIPv4, p.receive)
	return p
}

// Name implements protocol.Protocol.
func (p *IP) Name() string { return "ip" }

// MTU reports the payload bytes available above IP without fragmentation.
func (p *IP) MTU() int { return p.eth.MTU() - headerLen }

// LocalAddr returns the host's address.
func (p *IP) LocalAddr() Addr { return p.cfg.Local }

// Stats returns a snapshot of the counters.
func (p *IP) Stats() Stats { return p.stats }

// Register installs the upcall for one transport protocol number.
func (p *IP) Register(proto byte, h Handler) { p.handlers[proto] = h }

// ErrTooLarge reports a datagram that cannot be carried even fragmented.
var ErrTooLarge = errors.New("ip: datagram exceeds 65535 bytes")

// Send transmits pkt to dst under protocol proto, fragmenting if the
// payload exceeds the link MTU. The packet needs Headroom bytes in front.
// Delivery is best-effort: next-hop resolution happens asynchronously and
// resolution failure silently drops, as datagram semantics allow.
func (p *IP) Send(dst Addr, proto byte, pkt *basis.Packet) error {
	sec := p.cfg.Prof.Start(profile.CatIP)
	defer sec.Stop()
	p.cfg.Metrics.OutRequests.Inc()
	if pkt.Len() > 0xffff-headerLen {
		p.cfg.Metrics.OutDiscards.Inc()
		return ErrTooLarge
	}
	p.ident++
	id := p.ident
	linkMTU := p.eth.MTU()
	if pkt.Len()+headerLen <= linkMTU {
		p.sendOne(dst, proto, id, 0, false, pkt)
		return nil
	}
	// Fragment: offsets are in 8-byte units. The paper notes IP
	// fragmentation is exactly where memory needs fluctuate and where
	// additional copies may be required; we accept one copy per
	// fragment here, as it did.
	chunk := (linkMTU - headerLen) &^ 7
	p.cfg.Metrics.FragOKs.Inc()
	data := pkt.Bytes()
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		more := true
		if end >= len(data) {
			end = len(data)
			more = false
		}
		fp := basis.NewPacket(Headroom, ethernet.Tailroom, data[off:end]) //foxvet:boundary-copy fragmentation: each fragment is an independent datagram with its own header and lifetime
		p.stats.FragmentsSent++
		p.cfg.Metrics.FragCreates.Inc()
		p.sendOne(dst, proto, id, off/8, more, fp)
	}
	return nil
}

// sendOne fills in one IP header and routes the packet.
func (p *IP) sendOne(dst Addr, proto byte, id uint16, fragOff8 int, moreFrags bool, pkt *basis.Packet) {
	totalLen := pkt.Len() + headerLen
	if totalLen > 0xffff || fragOff8 < 0 || fragOff8 > 0x1fff {
		// Unreachable by construction — Send fragments to the MTU —
		// but the wire fields are 16 and 13 bits wide, and the proof
		// wants the bound local.
		p.cfg.Trace.Printf("drop: length %d or offset %d overflows the header fields", totalLen, fragOff8)
		return
	}
	h := pkt.Push(headerLen)
	h[0] = 0x45
	h[1] = 0
	binary.BigEndian.PutUint16(h[2:4], uint16(totalLen))
	binary.BigEndian.PutUint16(h[4:6], id)
	ff := uint16(fragOff8)
	if moreFrags {
		ff |= flagMF
	}
	binary.BigEndian.PutUint16(h[6:8], ff)
	h[8] = p.cfg.TTL
	h[9] = proto
	h[10], h[11] = 0, 0
	copy(h[12:16], p.cfg.Local[:])
	copy(h[16:20], dst[:])
	cksec := p.cfg.Prof.Start(profile.CatChecksum)
	ck := ^checksum.SumFig10(0, h)
	cksec.Stop()
	binary.BigEndian.PutUint16(h[10:12], ck)

	p.stats.Sent++
	if p.cfg.Trace.On() {
		p.cfg.Trace.Printf("tx %s -> %s proto %d len %d id %d off %d mf %v",
			p.cfg.Local, dst, proto, totalLen, id, fragOff8*8, moreFrags)
	}

	if dst == LimitedBroadcast || dst == p.subnetBroadcast() {
		p.eth.Send(ethernet.Broadcast, ethernet.TypeIPv4, pkt)
		return
	}
	next := dst
	if !p.cfg.Local.SameSubnet(dst, p.cfg.Netmask) {
		if p.cfg.Gateway.IsUnspecified() {
			p.cfg.Trace.Printf("no route to %s, dropped", dst)
			p.stats.ResolveFailures++
			p.cfg.Metrics.OutNoRoutes.Inc()
			return
		}
		next = p.cfg.Gateway
	}
	p.resolver.Resolve(next, func(mac ethernet.Addr, ok bool) {
		if !ok {
			p.stats.ResolveFailures++
			p.cfg.Metrics.OutDiscards.Inc()
			p.cfg.Trace.Printf("cannot resolve %s, dropped", next)
			return
		}
		p.eth.Send(mac, ethernet.TypeIPv4, pkt)
	})
}

func (p *IP) subnetBroadcast() Addr {
	var b Addr
	for i := range b {
		b[i] = p.cfg.Local[i] | ^p.cfg.Netmask[i]
	}
	return b
}

// receive is the link-layer upcall: validate, reassemble, demultiplex.
func (p *IP) receive(_, _ ethernet.Addr, pkt *basis.Packet) {
	sec := p.cfg.Prof.Start(profile.CatIP)
	p.cfg.Metrics.InReceives.Inc()
	b := pkt.Bytes()
	if len(b) < headerLen || b[0]>>4 != 4 {
		p.stats.BadHeader++
		p.cfg.Metrics.InHdrErrors.Inc()
		sec.Stop()
		return
	}
	ihl := int(b[0]&0x0f) * 4
	totalLen := int(binary.BigEndian.Uint16(b[2:4]))
	if ihl < headerLen || totalLen < ihl || len(b) < totalLen {
		p.stats.BadHeader++
		p.cfg.Metrics.InHdrErrors.Inc()
		sec.Stop()
		return
	}
	cksec := p.cfg.Prof.Start(profile.CatChecksum)
	ok := checksum.SumFig10(0, b[:ihl]) == 0xffff
	cksec.Stop()
	if !ok {
		p.stats.BadChecksum++
		p.cfg.Metrics.InHdrErrors.Inc()
		p.cfg.Trace.Printf("rx bad header checksum, dropped")
		sec.Stop()
		return
	}
	pkt.TrimTo(totalLen) // strip link padding
	var src, dst Addr
	hdr := pkt.Bytes()
	copy(src[:], hdr[12:16])
	copy(dst[:], hdr[16:20])
	if dst != p.cfg.Local && dst != LimitedBroadcast && dst != p.subnetBroadcast() {
		if p.cfg.Forward {
			p.forward(src, dst, pkt)
		} else {
			p.stats.NotLocal++
			p.cfg.Metrics.InAddrErrors.Inc()
		}
		sec.Stop()
		return
	}
	h := pkt.Pull(ihl) // header including any options, which we ignore
	proto := h[9]
	id := binary.BigEndian.Uint16(h[4:6])
	ff := binary.BigEndian.Uint16(h[6:8])
	fragOff := int(ff&0x1fff) * 8
	moreFrags := ff&flagMF != 0

	if fragOff != 0 || moreFrags {
		p.stats.FragmentsReceived++
		p.cfg.Metrics.ReasmReqds.Inc()
		pkt = p.reassemble(reasmKey{src, dst, proto, id}, fragOff, moreFrags, pkt)
		if pkt == nil {
			sec.Stop()
			return
		}
		p.stats.Reassembled++
		p.cfg.Metrics.ReasmOKs.Inc()
	}

	handler, okh := p.handlers[proto]
	if !okh {
		p.stats.UnknownProto++
		p.cfg.Metrics.InUnknownProtos.Inc()
		p.cfg.Trace.Printf("rx unknown protocol %d from %s", proto, src)
		sec.Stop()
		return
	}
	p.stats.Received++
	p.cfg.Metrics.InDelivers.Inc()
	if p.cfg.Trace.On() {
		p.cfg.Trace.Printf("rx %s -> %s proto %d len %d", src, dst, proto, pkt.Len())
	}
	sec.Stop()
	handler(src, dst, pkt)
}

// forward re-routes a transit datagram: decrement the TTL (updating the
// header checksum incrementally, RFC 1624), pick the next hop, and send
// it back out the interface — the router-on-a-stick configuration, since
// each host owns a single interface in this substrate.
func (p *IP) forward(src, dst Addr, pkt *basis.Packet) {
	b := pkt.Bytes()
	if b[8] <= 1 {
		p.stats.TTLExpired++
		p.cfg.Metrics.InHdrErrors.Inc()
		p.cfg.Trace.Printf("TTL expired forwarding %s -> %s", src, dst)
		if p.TimeExceeded != nil {
			p.TimeExceeded(src, b)
		}
		return
	}
	// The wire packet has no link-layer headroom left; a router copies
	// the datagram into a fresh frame, as real forwarding does.
	fwd := basis.NewPacket(ethernet.Headroom, ethernet.Tailroom, b) //foxvet:boundary-copy forwarding: a router re-buffers into a fresh frame, as real forwarding does
	fb := fwd.Bytes()
	fb[8]--
	// Refresh the header checksum over the modified header.
	fb[10], fb[11] = 0, 0
	ihl := int(fb[0]&0x0f) * 4
	binary.BigEndian.PutUint16(fb[10:12], ^checksum.SumFig10(0, fb[:ihl]))

	next := dst
	if !p.cfg.Local.SameSubnet(dst, p.cfg.Netmask) {
		if p.cfg.Gateway.IsUnspecified() {
			p.stats.ResolveFailures++
			p.cfg.Metrics.OutNoRoutes.Inc()
			return
		}
		next = p.cfg.Gateway
	}
	p.stats.Forwarded++
	p.cfg.Metrics.ForwDatagrams.Inc()
	p.cfg.Trace.Printf("forward %s -> %s via %s ttl %d", src, dst, next, fb[8])
	p.resolver.Resolve(next, func(mac ethernet.Addr, ok bool) {
		if !ok {
			p.stats.ResolveFailures++
			p.cfg.Metrics.OutDiscards.Inc()
			return
		}
		p.eth.Send(mac, ethernet.TypeIPv4, fwd)
	})
}

// reassemble merges one fragment, returning the whole datagram's payload
// when complete and nil otherwise.
func (p *IP) reassemble(key reasmKey, off int, more bool, pkt *basis.Packet) *basis.Packet {
	r, ok := p.reasm[key]
	if !ok {
		r = &reassembly{}
		p.reasm[key] = r
		r.timer = timers.Start(p.s, func() {
			if p.reasm[key] == r {
				delete(p.reasm, key)
				p.stats.ReassemblyTimeouts++
				p.cfg.Metrics.ReasmFails.Inc()
				p.cfg.Trace.Printf("reassembly of id %d from %s timed out", key.id, key.src)
			}
		}, p.cfg.ReassemblyTimeout)
	}
	data := append([]byte(nil), pkt.Bytes()...) //foxvet:boundary-copy reassembly: fragments outlive their wire packets until the datagram completes
	r.frags = append(r.frags, fragment{off: off, data: data, last: !more})

	// Check completeness: contiguous coverage from 0 through a last
	// fragment. Fragment counts are small; a quadratic scan is fine.
	end := -1
	for _, f := range r.frags {
		if f.last {
			end = f.off + len(f.data)
		}
	}
	if end < 0 {
		return nil
	}
	assembled := make([]byte, end)
	covered := make([]bool, end)
	for _, f := range r.frags {
		if f.off+len(f.data) > end {
			continue // overlapping junk past the end; ignore
		}
		copy(assembled[f.off:], f.data) //foxvet:boundary-copy reassembly: splicing retained fragments back into one datagram
		for i := f.off; i < f.off+len(f.data); i++ {
			covered[i] = true
		}
	}
	for _, c := range covered {
		if !c {
			return nil
		}
	}
	r.timer.Clear()
	delete(p.reasm, key)
	return basis.FromWire(assembled)
}

// Network returns the protocol.Network view of this IP layer for one
// transport protocol number — the composition seam the TCP and UDP
// functors plug into.
func (p *IP) Network(proto byte) protocol.Network {
	return &network{ip: p, proto: proto}
}

type network struct {
	ip    *IP
	proto byte
}

var _ protocol.Network = (*network)(nil)

func (n *network) LocalAddr() protocol.Address { return n.ip.cfg.Local }

func (n *network) Attach(h protocol.Handler) {
	n.ip.Register(n.proto, func(src, dst Addr, pkt *basis.Packet) {
		h(src, pkt)
	})
}

func (n *network) Send(dst protocol.Address, pkt *basis.Packet) error {
	a, ok := dst.(Addr)
	if !ok {
		return fmt.Errorf("ip: cannot send to %T address %v", dst, dst)
	}
	return n.ip.Send(a, n.proto, pkt)
}

func (n *network) MTU() int { return n.ip.MTU() }

func (n *network) Headroom() int { return Headroom }

func (n *network) Tailroom() int { return ethernet.Tailroom }

// PseudoHeaderChecksum computes the folded partial sum of the TCP/UDP
// pseudo-header — IP_AUX's check function.
func (n *network) PseudoHeaderChecksum(dst protocol.Address, length int) uint16 {
	a, ok := dst.(Addr)
	if !ok {
		return 0
	}
	if length < 0 || length > 0xffff {
		return 0 // the pseudo-header length field cannot express it
	}
	var acc checksum.Accumulator
	acc.Add(n.ip.cfg.Local[:])
	acc.Add(a[:])
	acc.AddUint16(uint16(n.proto))
	acc.AddUint16(uint16(length))
	return acc.Partial()
}
