package ip_test

import (
	"testing"
	"time"

	"repro/internal/arp"
	"repro/internal/basis"
	"repro/internal/ethernet"
	"repro/internal/icmp"
	"repro/internal/ip"
	"repro/internal/sim"
	"repro/internal/wire"
)

// routedNet builds the router-on-a-stick topology: A in the low /25,
// B in the high /25, R owning the whole /24 and forwarding between them.
type routedNode struct {
	IP   *ip.IP
	ICMP *icmp.ICMP
	A    ip.Addr
}

func buildRouted(s *sim.Scheduler, seg *wire.Segment, ttl byte) (a, r, b routedNode) {
	mask25 := ip.Addr{255, 255, 255, 128}
	gw := ip.Addr{10, 0, 0, 126}
	mk := func(n byte, addr ip.Addr, cfg ip.Config) routedNode {
		eth := ethernet.New(seg.NewPort(addr.String(), nil), ethernet.HostAddr(n), ethernet.Config{})
		res := arp.New(s, eth, addr, arp.Config{})
		cfg.Local = addr
		ipl := ip.New(s, eth, res, cfg)
		return routedNode{IP: ipl, ICMP: icmp.New(s, ipl, icmp.Config{}), A: addr}
	}
	a = mk(1, ip.Addr{10, 0, 0, 1}, ip.Config{Netmask: mask25, Gateway: gw, TTL: ttl})
	r = mk(126, gw, ip.Config{Netmask: ip.Addr{255, 255, 255, 0}, Forward: true})
	b = mk(2, ip.Addr{10, 0, 0, 129}, ip.Config{Netmask: mask25, Gateway: gw, TTL: ttl})
	return
}

func TestForwardingAcrossSubnets(t *testing.T) {
	s := sim.New(sim.Config{})
	s.Run(func() {
		seg := wire.NewSegment(s, wire.Config{}, nil)
		a, r, b := buildRouted(s, seg, 64)
		var got []byte
		var gotSrc ip.Addr
		b.IP.Register(200, func(src, dst ip.Addr, pkt *basis.Packet) {
			gotSrc = src
			got = append([]byte(nil), pkt.Bytes()...)
		})
		a.IP.Send(b.A, 200, basis.NewPacket(ip.Headroom, ethernet.Tailroom, []byte("through the router")))
		s.Sleep(time.Second)
		if string(got) != "through the router" {
			t.Fatalf("got %q", got)
		}
		if gotSrc != a.A {
			t.Fatalf("source rewritten to %s", gotSrc)
		}
		if r.IP.Stats().Forwarded != 1 {
			t.Fatalf("router Forwarded = %d", r.IP.Stats().Forwarded)
		}
	})
}

func TestForwardedChecksumStillValid(t *testing.T) {
	// If the router broke the header checksum on the TTL rewrite, B's
	// validation would drop the datagram; delivery proves correctness,
	// and BadChecksum must stay zero.
	s := sim.New(sim.Config{})
	s.Run(func() {
		seg := wire.NewSegment(s, wire.Config{}, nil)
		a, _, b := buildRouted(s, seg, 64)
		delivered := 0
		b.IP.Register(200, func(src, dst ip.Addr, pkt *basis.Packet) { delivered++ })
		for i := 0; i < 5; i++ {
			a.IP.Send(b.A, 200, basis.NewPacket(ip.Headroom, ethernet.Tailroom, []byte("checkme")))
		}
		s.Sleep(time.Second)
		if delivered != 5 {
			t.Fatalf("delivered %d of 5", delivered)
		}
		if b.IP.Stats().BadChecksum != 0 {
			t.Fatalf("BadChecksum = %d", b.IP.Stats().BadChecksum)
		}
	})
}

func TestTTLExpiryRaisesTimeExceeded(t *testing.T) {
	s := sim.New(sim.Config{})
	s.Run(func() {
		seg := wire.NewSegment(s, wire.Config{}, nil)
		a, r, b := buildRouted(s, seg, 1) // first hop exhausts the TTL
		got := false
		b.IP.Register(200, func(src, dst ip.Addr, pkt *basis.Packet) { got = true })
		a.IP.Send(b.A, 200, basis.NewPacket(ip.Headroom, ethernet.Tailroom, []byte("too far")))
		s.Sleep(time.Second)
		if got {
			t.Fatal("TTL-1 datagram crossed the router")
		}
		if r.IP.Stats().TTLExpired != 1 {
			t.Fatalf("TTLExpired = %d", r.IP.Stats().TTLExpired)
		}
		if r.ICMP.Stats().TimeExceededSent != 1 {
			t.Fatalf("TimeExceededSent = %d", r.ICMP.Stats().TimeExceededSent)
		}
		if a.ICMP.Stats().TimeExceededRcvd != 1 {
			t.Fatalf("source never saw the time-exceeded: %+v", a.ICMP.Stats())
		}
	})
}

func TestNonForwardingHostStillDrops(t *testing.T) {
	s := sim.New(sim.Config{})
	s.Run(func() {
		seg := wire.NewSegment(s, wire.Config{}, nil)
		a, _, b := buildRouted(s, seg, 64)
		// A addresses B's subnet but with B's own MAC missing a route:
		// send A->B but with B configured as plain host receiving a
		// datagram for someone else. Craft: A sends to an address inside
		// B's /25 that nobody owns; router forwards, ARP fails, drop.
		a.IP.Send(ip.Addr{10, 0, 0, 200}, 200, basis.NewPacket(ip.Headroom, ethernet.Tailroom, []byte("ghost")))
		s.Sleep(10 * time.Second)
		if b.IP.Stats().NotLocal != 0 {
			// B never even sees it (unicast MAC), so NotLocal stays 0.
			t.Fatalf("NotLocal = %d", b.IP.Stats().NotLocal)
		}
	})
}
