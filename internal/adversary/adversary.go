// Package adversary is a deterministic, seed-driven hostile peer for the
// simulated network: it speaks raw TCP segments over any
// protocol.Network — crafting its own headers rather than going through
// internal/tcp — so tests can aim exactly the traffic a real attacker
// can aim: SYN floods, blind RST/SYN/data injection swept across a
// victim's receive window, reassembly-gap bombs, and junk floods.
//
// Everything is driven by the simulation scheduler and a seeded PRNG, so
// a soak run is a pure function of its seed: the same attack replays
// byte-for-byte, which is what lets CI assert exact counter values.
//
// To spoof a third party's address, attach the adversary to an IP layer
// configured with that party's address (the simulated substrate, like a
// real one without ingress filtering, believes the header). The
// adversary never completes handshakes: whatever comes back is counted
// and dropped by its sink handler.
package adversary

import (
	"encoding/binary"

	"repro/internal/basis"
	"repro/internal/checksum"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// TCP header flag bits, re-declared here because the adversary speaks
// the wire format, not internal/tcp's types.
const (
	FIN = 1 << 0
	SYN = 1 << 1
	RST = 1 << 2
	PSH = 1 << 3
	ACK = 1 << 4
)

const headerLen = 20

// Seg is one raw segment the adversary emits. MSS != 0 appends the MSS
// option. The checksum is always computed correctly: a victim with
// checksum verification on must parse the probe, not drop it.
type Seg struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Wnd              uint16
	MSS              uint16
	Data             []byte
}

// Stats counts the attacker's own traffic. Plain fields: the adversary
// runs entirely on the simulation scheduler.
type Stats struct {
	Sent     int // segments injected
	Received int // segments the victim (or anyone) sent back to us
	Junk     int // malformed packets injected
}

// Attacker is one hostile endpoint on the simulated network.
type Attacker struct {
	s     *sim.Scheduler
	net   protocol.Network
	rng   *basis.Rand
	Stats Stats
}

// New attaches an attacker to net, replacing whatever transport handler
// was installed there: the attacker becomes the host's TCP "stack",
// swallowing and counting every reply so floods are not answered.
func New(s *sim.Scheduler, net protocol.Network, seed uint64) *Attacker {
	a := &Attacker{s: s, net: net, rng: basis.NewRand(seed)}
	net.Attach(func(src protocol.Address, pkt *basis.Packet) {
		a.Stats.Received++
	})
	return a
}

// Rand exposes the attacker's seeded PRNG so tests can derive attack
// parameters from the same deterministic stream.
func (a *Attacker) Rand() *basis.Rand { return a.rng }

// Send marshals one raw segment and injects it toward dst.
func (a *Attacker) Send(dst protocol.Address, g Seg) {
	hlen := headerLen
	if g.MSS != 0 {
		hlen += 4
	}
	pkt := basis.AllocPacket(a.net.Headroom()+hlen, a.net.Tailroom(), len(g.Data))
	copy(pkt.Bytes(), g.Data)
	h := pkt.Push(hlen)
	binary.BigEndian.PutUint16(h[0:2], g.SrcPort)
	binary.BigEndian.PutUint16(h[2:4], g.DstPort)
	binary.BigEndian.PutUint32(h[4:8], g.Seq)
	binary.BigEndian.PutUint32(h[8:12], g.Ack)
	h[12] = byte(hlen/4) << 4
	h[13] = g.Flags
	binary.BigEndian.PutUint16(h[14:16], g.Wnd)
	h[16], h[17] = 0, 0
	h[18], h[19] = 0, 0
	if g.MSS != 0 {
		h[20], h[21] = 2, 4
		binary.BigEndian.PutUint16(h[22:24], g.MSS)
	}
	var acc checksum.Accumulator
	acc.AddUint16(a.net.PseudoHeaderChecksum(dst, pkt.Len()))
	acc.Add(pkt.Bytes())
	binary.BigEndian.PutUint16(h[16:18], acc.Checksum())
	a.Stats.Sent++
	a.net.Send(dst, pkt)
}
