package adversary

import (
	"time"

	"repro/internal/basis"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// Target names one victim connection endpoint: where probes go and which
// demux key they claim. For spoofed attacks the adversary's network layer
// carries the forged source address; SrcPort completes the forged
// four-tuple.
type Target struct {
	Addr    protocol.Address
	SrcPort uint16
	DstPort uint16
}

// SynFlood sends n SYNs to a listening port, each from a distinct source
// port with a PRNG-chosen initial sequence number, paced gap apart. This
// is the classic half-open exhaustion attack the bounded SYN backlog
// exists to absorb.
func (a *Attacker) SynFlood(dst protocol.Address, port uint16, n int, gap sim.Duration) {
	for i := 0; i < n; i++ {
		a.Send(dst, Seg{
			SrcPort: uint16(20000 + i),
			DstPort: port,
			Seq:     a.rng.Uint32(),
			Flags:   SYN,
			Wnd:     4096,
			MSS:     1000,
		})
		a.pace(gap)
	}
}

// Sweep fires one probe per step across [base, base+span) against the
// target's four-tuple and returns the probe count. A blind attacker does
// not know the victim's sequence numbers; sweeping a window-sized span
// around a guess is exactly the RFC 5961 threat model. flags selects the
// attack (RST, SYN, or ACK with data for blind injection); every probe
// carries it verbatim.
func (a *Attacker) Sweep(t Target, flags uint8, base uint32, span, step int, data []byte, gap sim.Duration) int {
	probes := 0
	for off := 0; off < span; off += step {
		a.Send(t.Addr, Seg{
			SrcPort: t.SrcPort,
			DstPort: t.DstPort,
			Seq:     base + uint32(off),
			Ack:     a.rng.Uint32(), // blind: ack is a guess too
			Flags:   flags,
			Wnd:     4096,
			Data:    data,
		})
		probes++
		a.pace(gap)
	}
	return probes
}

// GapBomb sends n one-byte segments beyond the victim's expected
// sequence number, each separated by stride so none coalesce: maximum
// reassembly-queue entries for minimum attacker bytes. The per-segment
// overhead charge in the victim's accounting is what keeps this bounded.
func (a *Attacker) GapBomb(t Target, base uint32, n, stride int, gap sim.Duration) {
	for i := 0; i < n; i++ {
		a.Send(t.Addr, Seg{
			SrcPort: t.SrcPort,
			DstPort: t.DstPort,
			Seq:     base + uint32((i+1)*stride),
			Flags:   ACK,
			Wnd:     4096,
			Data:    []byte{byte(i)},
		})
		a.pace(gap)
	}
}

// JunkFlood sends n packets of PRNG bytes — truncated headers, garbage
// checksums — straight to the victim's TCP input. The parser must charge
// them to BadSegment/BadChecksum and drop them without allocating state.
func (a *Attacker) JunkFlood(dst protocol.Address, n int, gap sim.Duration) {
	for i := 0; i < n; i++ {
		size := 1 + a.rng.Intn(64)
		pkt := basis.AllocPacket(a.net.Headroom(), a.net.Tailroom(), size)
		b := pkt.Bytes()
		for j := range b {
			b[j] = byte(a.rng.Uint32())
		}
		a.Stats.Junk++
		a.net.Send(dst, pkt)
		a.pace(gap)
	}
}

func (a *Attacker) pace(gap sim.Duration) {
	if gap > 0 {
		a.s.Sleep(time.Duration(gap))
	}
}
