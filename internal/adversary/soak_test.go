package adversary_test

// Soak tests: a three-host network (client, server, attacker) where the
// adversary package drives the hostile traffic the hardening in
// internal/tcp exists to absorb. Everything — wire loss, attack pacing,
// sequence guessing — derives from one seed, so every run of a given
// seed replays identically and the assertions can be exact.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/arp"
	"repro/internal/ethernet"
	"repro/internal/flight"
	"repro/internal/flight/seal"
	"repro/internal/ip"
	"repro/internal/pcap"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tcp"
	"repro/internal/wire"
)

type host struct {
	TCP *tcp.TCP
	A   ip.Addr
	H   *stats.HardenMIB
	Ev  *stats.EventRing
}

type rig struct {
	client, server host
	// adv speaks from the attacker's own address (10.0.0.3): floods and
	// junk whose replies it swallows. spoof forges the client's address
	// (10.0.0.1), the blind-injection threat model of RFC 5961.
	adv   *adversary.Attacker
	spoof *adversary.Attacker
}

// build assembles client (host 1), server (host 2), and attacker
// (host 3) on one wire segment with static ARP all around.
func build(s *sim.Scheduler, seg *wire.Segment, ccfg, scfg tcp.Config, seed uint64) rig {
	statics := func(res *arp.ARP) {
		for n := byte(1); n <= 3; n++ {
			res.AddStatic(ip.HostAddr(n), ethernet.HostAddr(n))
		}
	}
	mk := func(n byte, cfg tcp.Config) host {
		addr := ip.HostAddr(n)
		port := seg.NewPort(addr.String(), nil)
		eth := ethernet.New(port, ethernet.HostAddr(n), ethernet.Config{})
		res := arp.New(s, eth, addr, arp.Config{})
		statics(res)
		ipl := ip.New(s, eth, res, ip.Config{Local: addr})
		return host{TCP: tcp.New(s, ipl.Network(ip.ProtoTCP), cfg), A: addr, H: cfg.Harden, Ev: cfg.Events}
	}
	r := rig{client: mk(1, ccfg), server: mk(2, scfg)}

	addr := ip.HostAddr(3)
	port := seg.NewPort(addr.String(), nil)
	eth := ethernet.New(port, ethernet.HostAddr(3), ethernet.Config{})
	res := arp.New(s, eth, addr, arp.Config{})
	statics(res)
	own := ip.New(s, eth, res, ip.Config{Local: addr})
	r.adv = adversary.New(s, own.Network(ip.ProtoTCP), seed)
	// A second IP layer on the same interface with the client's address
	// forges the source of every packet it sends. It also takes over
	// inbound demux for the interface, where it drops everything (the
	// datagrams are addressed to host 3, not its forged identity) — so
	// the attacker never answers a SYN-ACK, exactly like a real flood.
	forged := ip.New(s, eth, res, ip.Config{Local: ip.HostAddr(1)})
	r.spoof = adversary.New(s, forged.Network(ip.ProtoTCP), seed^0x9e3779b97f4a7c15)
	return r
}

func hardenCfg(over tcp.Config) tcp.Config {
	over.Harden = &stats.HardenMIB{}
	over.Events = stats.NewEventRing(4096)
	return over
}

// TestSynFloodBoundsHalfOpen: 1000 SYNs against a 32-entry backlog. The
// table must never exceed its bound, every overflow must evict (and be
// counted), a legitimate client must still get in afterward, and the
// flood's half-open residue must be reclaimed once it times out.
func TestSynFloodBoundsHalfOpen(t *testing.T) {
	s := sim.New(sim.Config{})
	s.Run(func() {
		seg := wire.NewSegment(s, wire.Config{}, nil)
		r := build(s, seg, hardenCfg(tcp.Config{}), hardenCfg(tcp.Config{MaxSynBacklog: 32}), 1)
		r.server.TCP.Listen(80, func(c *tcp.Conn) tcp.Handler { return tcp.Handler{} })

		// 50µs pacing is right at the wire's serialization rate, so the
		// flood queues behind the victim's own SYN-ACKs; give the medium
		// a full second to drain before reading the counters.
		r.adv.SynFlood(r.server.A, 80, 1000, 50*time.Microsecond)
		s.Sleep(time.Second)

		h := r.server.H
		if got := h.HalfOpen.High(); got > 32 {
			t.Fatalf("half-open high-water %d exceeds backlog 32", got)
		}
		if got := h.SynQueueOverflows.Load(); got != 968 {
			t.Fatalf("SynQueueOverflows = %d, want 968", got)
		}
		// The flood does not lock out a real client: its SYN evicts the
		// oldest half-open and completes normally.
		conn, err := r.client.TCP.Open(r.server.A, 80, tcp.Handler{})
		if err != nil {
			t.Fatalf("legitimate open during flood residue: %v", err)
		}
		if conn.State() != tcp.StateEstab {
			t.Fatalf("legitimate conn state %v", conn.State())
		}
		// The 32 stranded half-opens give up at the user timeout and are
		// reclaimed; only the real connection remains.
		s.Sleep(2 * time.Minute)
		if n := r.server.TCP.ActiveConns(); n != 1 {
			t.Fatalf("server holds %d connections after flood residue expired, want 1", n)
		}
	})
}

// TestBlindRstSweepKillsNothing: a spoofed attacker sweeps RSTs across
// the server's entire receive window. RFC 5961 demands the connection
// survive every probe, each answered (or rate-limit-suppressed) by a
// challenge ACK — and that the one exact-sequence RST still resets.
func TestBlindRstSweepKillsNothing(t *testing.T) {
	s := sim.New(sim.Config{})
	s.Run(func() {
		seg := wire.NewSegment(s, wire.Config{}, nil)
		r := build(s, seg, hardenCfg(tcp.Config{}), hardenCfg(tcp.Config{}), 2)
		var serverConn *tcp.Conn
		got := 0
		r.server.TCP.Listen(80, func(c *tcp.Conn) tcp.Handler {
			serverConn = c
			return tcp.Handler{Data: func(c *tcp.Conn, d []byte) { got += len(d) }}
		})
		conn, err := r.client.TCP.Open(r.server.A, 80, tcp.Handler{})
		if err != nil {
			t.Fatal(err)
		}
		if err := conn.Write(make([]byte, 20<<10)); err != nil {
			t.Fatal(err)
		}
		s.Sleep(2 * time.Second) // transfer done; sequence numbers static
		if got != 20<<10 {
			t.Fatalf("transfer delivered %d bytes", got)
		}

		st := serverConn.Stats()
		target := adversary.Target{Addr: r.server.A, SrcPort: conn.LocalPort(), DstPort: 80}
		probes := r.spoof.Sweep(target, adversary.RST, st.RcvNxt+1, int(st.RecvWindow)-1, 7, nil, 0)
		s.Sleep(time.Second)

		if serverConn.State() != tcp.StateEstab {
			t.Fatalf("blind RST sweep killed the connection (state %v)", serverConn.State())
		}
		h := r.server.H
		if acct := h.ChallengeACKsSent.Load() + h.ChallengeACKsSuppressed.Load(); acct != uint64(probes) {
			t.Fatalf("%d probes but %d challenge decisions", probes, acct)
		}
		// The exact-sequence RST is the one RFC 5961 still honors.
		r.spoof.Sweep(target, adversary.RST, st.RcvNxt, 1, 1, nil, 0)
		s.Sleep(100 * time.Millisecond)
		if serverConn.State() != tcp.StateClosed {
			t.Fatalf("exact-sequence RST did not reset (state %v)", serverConn.State())
		}
	})
}

// TestGapBombMemoryBounded: thousands of spoofed one-byte segments, each
// opening a new reassembly hole, must pin neither the connection nor the
// endpoint: the per-segment overhead charge caps the queue far below the
// raw segment count and the memory account stays under its limit.
func TestGapBombMemoryBounded(t *testing.T) {
	s := sim.New(sim.Config{})
	s.Run(func() {
		seg := wire.NewSegment(s, wire.Config{}, nil)
		scfg := hardenCfg(tcp.Config{ReassemblyLimit: 2048})
		r := build(s, seg, hardenCfg(tcp.Config{}), scfg, 3)
		var serverConn *tcp.Conn
		r.server.TCP.Listen(80, func(c *tcp.Conn) tcp.Handler {
			serverConn = c
			return tcp.Handler{}
		})
		conn, err := r.client.TCP.Open(r.server.A, 80, tcp.Handler{})
		if err != nil {
			t.Fatal(err)
		}
		st := serverConn.Stats()
		target := adversary.Target{Addr: r.server.A, SrcPort: conn.LocalPort(), DstPort: 80}
		// Stride 2 keeps every byte in-window but non-contiguous: 2000
		// probes all land as distinct reassembly holes.
		r.spoof.GapBomb(target, st.RcvNxt, 2000, 2, 10*time.Microsecond)
		s.Sleep(time.Second)

		if serverConn.State() != tcp.StateEstab {
			t.Fatalf("gap bomb killed the connection (state %v)", serverConn.State())
		}
		h := r.server.H
		if h.OOOEvictions.Load() == 0 {
			t.Fatal("reassembly cap never evicted under gap bomb")
		}
		// The account charges an arriving segment before evicting down to
		// the cap, so the high-water may briefly exceed it by one
		// segment's cost — but never by more.
		if hi := h.MemBytes.High(); hi > 2048+256 {
			t.Fatalf("memory high-water %d exceeds the 2048-byte reassembly cap plus one segment", hi)
		}
	})
}

// legalTransitions is RFC 793's state diagram with the paper's
// Syn_Active/Syn_Passive refinement. Any state may additionally fall to
// Closed (reset, abort, reclamation).
var legalTransitions = map[string][]string{
	"Closed":      {"Listen", "Syn_Sent"},
	"Listen":      {"Syn_Passive"},
	"Syn_Sent":    {"Syn_Active", "Estab"},
	"Syn_Active":  {"Estab", "Fin_Wait_1"},
	"Syn_Passive": {"Estab", "Fin_Wait_1"},
	"Estab":       {"Fin_Wait_1", "Close_Wait"},
	"Fin_Wait_1":  {"Fin_Wait_2", "Closing", "Time_Wait"},
	"Fin_Wait_2":  {"Time_Wait"},
	"Close_Wait":  {"Last_Ack"},
	"Closing":     {"Time_Wait"},
	"Last_Ack":    {},
	"Time_Wait":   {},
}

func assertLegalTransitions(t *testing.T, who string, ev *stats.EventRing) {
	t.Helper()
	for _, e := range ev.Events() {
		if e.Kind != stats.EvStateTransition {
			continue
		}
		var from, to string
		if _, err := fmt.Sscanf(e.Detail, "%s -> %s", &from, &to); err != nil {
			t.Fatalf("%s: unparseable transition %q", who, e.Detail)
		}
		if to == "Closed" {
			continue
		}
		ok := false
		for _, l := range legalTransitions[from] {
			if l == to {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("%s: illegal state transition %q on %s", who, e.Detail, e.Conn)
		}
	}
}

type soakResult struct {
	elapsed      sim.Duration
	halfOpenHigh int64
	memHigh      int64
	challenges   uint64
	sender       tcp.ConnStats
}

// runSoak transfers 2 MiB over a 5%-lossy wire, optionally under
// simultaneous SYN flood, junk flood, spoofed SYN sweeps, blind RSTs at
// guessed sequence numbers, and gap bombs, and reports elapsed virtual
// time plus the server's hardening high-waters.
func runSoak(t *testing.T, seed uint64, attack bool) soakResult {
	t.Helper()
	var res soakResult
	payload := make([]byte, 2<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	// Both endpoints journal through the Merkle batcher into rotated
	// in-memory segments; after the run each journal is chain-verified
	// and replay-audited (sharded across workers), so every soak seed
	// doubles as a determinism proof AND a tamper-evidence proof. On
	// failure the segments (and a pcap of the whole wire) land in
	// $CHAOS_OUT for offline foxreplay analysis.
	var capture bytes.Buffer
	csink := &seal.MemSink{Prefix: "client"}
	ssink := &seal.MemSink{Prefix: "server"}
	// Small segments force rotation: the 2 MiB transfer yields a
	// multi-segment journal on both sides, which is what the tamper and
	// compaction audits below want to chew on.
	sealOpts := seal.Options{BatchSize: 64, SegmentBytes: 256 << 10}
	crec := flight.NewRecorder(seal.NewWriter(csink, sealOpts))
	srec := flight.NewRecorder(seal.NewWriter(ssink, sealOpts))
	pw := pcap.NewWriter(&capture)
	s := sim.New(sim.Config{})
	s.Run(func() {
		seg := wire.NewSegment(s, wire.Config{Seed: seed, Loss: 0.05}, nil)
		seg.SetTap(func(from string, data []byte) { pw.WritePacket(s.Now(), data) })
		// A 32 KiB window keeps enough segments in flight that loss
		// recovery is mostly fast retransmit, not RTO roulette — without
		// it, elapsed time is dominated by whether the seed's loss
		// pattern happens to hit consecutive retransmissions, and the
		// attack/no-attack comparison drowns in that variance.
		scfg := hardenCfg(tcp.Config{MaxSynBacklog: 32, MemoryLimit: 1 << 20, InitialWindow: 32 << 10, UserTimeout: 10 * time.Minute})
		scfg.Flight = srec
		ccfg := hardenCfg(tcp.Config{InitialWindow: 32 << 10, UserTimeout: 10 * time.Minute})
		ccfg.Flight = crec
		r := build(s, seg, ccfg, scfg, seed)

		var rcv bytes.Buffer
		var serverConn *tcp.Conn
		r.server.TCP.Listen(80, func(c *tcp.Conn) tcp.Handler {
			serverConn = c
			return tcp.Handler{
				Data:       func(c *tcp.Conn, d []byte) { rcv.Write(d) },
				PeerClosed: func(c *tcp.Conn) { c.Shutdown() },
			}
		})
		conn, err := r.client.TCP.Open(r.server.A, 80, tcp.Handler{})
		if err != nil {
			t.Errorf("seed %d open: %v", seed, err)
			return
		}
		start := s.Now()
		if attack {
			target := func() adversary.Target {
				return adversary.Target{Addr: r.server.A, SrcPort: conn.LocalPort(), DstPort: 80}
			}
			s.Fork("syn-flood", func() {
				r.adv.SynFlood(r.server.A, 80, 300, 2*time.Millisecond)
			})
			s.Fork("junk-flood", func() {
				r.adv.JunkFlood(r.server.A, 400, time.Millisecond)
			})
			s.Fork("syn-sweep", func() {
				// In-window SYNs: always challenge-ACKed, never lethal,
				// aimed with the live left window edge.
				for i := 0; i < 30; i++ {
					if serverConn != nil {
						st := serverConn.Stats()
						r.spoof.Sweep(target(), adversary.SYN, st.RcvNxt, int(st.RecvWindow), 256, nil, 0)
					}
					s.Sleep(15 * time.Millisecond)
				}
			})
			s.Fork("blind-rst", func() {
				// A truly blind attacker guesses 32-bit sequence numbers;
				// bursts of consecutive RSTs from random bases.
				for i := 0; i < 30; i++ {
					r.spoof.Sweep(target(), adversary.RST, r.spoof.Rand().Uint32(), 64, 1, nil, 0)
					s.Sleep(15 * time.Millisecond)
				}
			})
			s.Fork("gap-bomb", func() {
				for i := 0; i < 20; i++ {
					r.spoof.GapBomb(target(), r.spoof.Rand().Uint32(), 64, 2, 0)
					s.Sleep(20 * time.Millisecond)
				}
			})
		}
		if err := conn.Write(payload); err != nil {
			t.Errorf("seed %d write: %v", seed, err)
			return
		}
		if err := conn.Close(); err != nil {
			t.Errorf("seed %d close: %v", seed, err)
			return
		}
		deadline := s.Now() + sim.Time(20*time.Minute)
		for rcv.Len() < len(payload) && s.Now() < deadline {
			s.Sleep(5 * time.Millisecond)
		}
		res.elapsed = sim.Duration(s.Now() - start)
		if !bytes.Equal(rcv.Bytes(), payload) {
			t.Errorf("seed %d attack=%v: delivered %d/%d bytes or corrupt stream",
				seed, attack, rcv.Len(), len(payload))
		}
		res.sender = conn.Stats()
		res.halfOpenHigh = r.server.H.HalfOpen.High()
		res.memHigh = r.server.H.MemBytes.High()
		res.challenges = r.server.H.ChallengeACKsSent.Load() + r.server.H.ChallengeACKsSuppressed.Load()
		assertLegalTransitions(t, "server", r.server.Ev)
		assertLegalTransitions(t, "client", r.client.Ev)
	})
	if err := crec.Sync(); err != nil {
		t.Errorf("seed %d client journal sync: %v", seed, err)
	}
	if err := srec.Sync(); err != nil {
		t.Errorf("seed %d server journal sync: %v", seed, err)
	}
	auditSealed(t, seed, attack, "client", csink)
	auditSealed(t, seed, attack, "server", ssink)
	if t.Failed() {
		files := map[string][]byte{"wire.pcap": capture.Bytes()}
		for _, sink := range []*seal.MemSink{csink, ssink} {
			for i, b := range sink.Segs {
				files[seal.SegmentName(sink.Prefix, i)] = b.Bytes()
			}
		}
		dumpArtifacts(t, seed, attack, files)
	}
	return res
}

// auditSealed audits one endpoint's sealed journal end to end: the seal
// chain verifies, the sharded parallel replay reproduces every recorded
// TCB delta, one flipped bit in ANY segment makes verification fail and
// name that segment, and compacting the cold segments keeps both the
// chain and the replay intact.
func auditSealed(t *testing.T, seed uint64, attack bool, who string, sink *seal.MemSink) {
	t.Helper()
	id := fmt.Sprintf("seed %d attack=%v %s", seed, attack, who)
	if len(sink.Segs) < 2 {
		t.Errorf("%s: journal did not rotate (%d segments)", id, len(sink.Segs))
		return
	}
	if _, err := seal.Verify(sink.Sources(), nil); err != nil {
		t.Errorf("%s verify: %v", id, err)
		return
	}
	var recs []flight.Record
	for i, b := range sink.Segs {
		part, err := flight.ReadAll(bytes.NewReader(b.Bytes()))
		if err != nil {
			t.Errorf("%s segment %d: %v", id, i, err)
			return
		}
		recs = append(recs, part...)
	}
	res, err := tcp.ReplayJournalParallel(recs, 4)
	if err != nil {
		t.Errorf("%s replay: %v", id, err)
		return
	}
	for _, d := range res.Divergences {
		t.Errorf("%s replay divergence: %v", id, d)
	}

	// Tamper audit: a single flipped bit in any segment must fail
	// verification and locate the damaged segment.
	for i, b := range sink.Segs {
		data := b.Bytes()
		pos := len(data) / 2
		data[pos] ^= 0x10
		_, err := seal.Verify(sink.Sources(), nil)
		data[pos] ^= 0x10
		if err == nil {
			t.Errorf("%s: flipped bit in segment %d went undetected", id, i)
			continue
		}
		name := seal.SegmentName(sink.Prefix, i)
		if !strings.Contains(err.Error(), name) {
			t.Errorf("%s: segment %d tamper reported against the wrong segment: %v", id, i, err)
		}
	}

	// Compaction audit: dropping cold segments' deltas must leave the
	// chain verifiable and the (delta-less) actions replayable.
	dropped := 0
	compacted := &seal.MemSink{Prefix: sink.Prefix}
	for i, b := range sink.Segs {
		data := b.Bytes()
		if i < len(sink.Segs)-1 {
			out, d, err := seal.CompactBytes(data)
			if err != nil {
				t.Errorf("%s compact segment %d: %v", id, i, err)
				return
			}
			data, dropped = out, dropped+d
		}
		w, _ := compacted.Next(i)
		w.Write(data)
	}
	if dropped == 0 {
		t.Errorf("%s: compaction dropped no deltas", id)
	}
	if _, err := seal.Verify(compacted.Sources(), nil); err != nil {
		t.Errorf("%s verify after compaction: %v", id, err)
		return
	}
	recs = recs[:0]
	for i, b := range compacted.Segs {
		part, err := flight.ReadAll(bytes.NewReader(b.Bytes()))
		if err != nil {
			t.Errorf("%s compacted segment %d: %v", id, i, err)
			return
		}
		recs = append(recs, part...)
	}
	cres, err := tcp.ReplayJournalParallel(recs, 4)
	if err != nil {
		t.Errorf("%s compacted replay: %v", id, err)
		return
	}
	for _, d := range cres.Divergences {
		t.Errorf("%s compacted replay divergence: %v", id, d)
	}
}

// dumpArtifacts writes the failing run's evidence into $CHAOS_OUT, where
// the CI job uploads it (and a developer runs foxreplay on it).
func dumpArtifacts(t *testing.T, seed uint64, attack bool, files map[string][]byte) {
	t.Helper()
	dir := os.Getenv("CHAOS_OUT")
	if dir == "" {
		return
	}
	sub := filepath.Join(dir, fmt.Sprintf("seed%d_attack%v", seed, attack))
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Logf("chaos artifacts: %v", err)
		return
	}
	for name, data := range files {
		path := filepath.Join(sub, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Logf("chaos artifacts: %v", err)
			continue
		}
		t.Logf("chaos artifact: %s (%d bytes)", path, len(data))
	}
}

// TestChaosSoak: for each seed, the same lossy transfer runs attack-free
// and under the full attack mix. Liveness: goodput under attack within
// 2× of the attack-free run. Safety: bounded half-open table, bounded
// memory, only legal state-machine transitions (checked in runSoak).
func TestChaosSoak(t *testing.T) {
	for _, seed := range []uint64{1, 3, 5, 7} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			base := runSoak(t, seed, false)
			atk := runSoak(t, seed, true)
			if base.elapsed <= 0 || atk.elapsed <= 0 {
				t.Fatalf("degenerate elapsed times: base %v attack %v", base.elapsed, atk.elapsed)
			}
			if atk.elapsed > 2*base.elapsed {
				t.Fatalf("goodput collapsed under attack: %v vs %v attack-free (limit 2x)",
					atk.elapsed, base.elapsed)
			}
			if atk.halfOpenHigh > 32 {
				t.Fatalf("half-open high-water %d exceeds backlog 32", atk.halfOpenHigh)
			}
			if atk.memHigh > 1<<20 {
				t.Fatalf("memory high-water %d exceeds 1 MiB limit", atk.memHigh)
			}
			if atk.challenges == 0 {
				t.Fatal("attack run provoked no challenge-ACK decisions")
			}
			t.Logf("seed %d: base %v attack %v halfOpenHigh %d memHigh %d challenges %d",
				seed, base.elapsed, atk.elapsed, atk.halfOpenHigh, atk.memHigh, atk.challenges)
			t.Logf("seed %d sender: base rexmit %d dupack %d / attack rexmit %d dupack %d",
				seed, base.sender.Retransmits, base.sender.DupAcks, atk.sender.Retransmits, atk.sender.DupAcks)
		})
	}
}
