// Fault-plane control surface: the sanctioned API through which a fault
// schedule (internal/fault) manipulates a live Segment. Everything here
// mutates medium-level state only — link carrier, partition grouping,
// the burst-loss model, corruption storms, bandwidth and delay
// overrides. Nothing in this file can reach a protocol stack: schedules
// change what the wire does to frames, never what the hosts do with
// them.
//
// Determinism: every probabilistic draw a control feature makes comes
// from the segment's dedicated fault stream (Segment.faultRNG), never
// from the delivery stream that drives the static Config.Loss/
// Duplicate/Corrupt/Jitter draws. Activating a schedule therefore
// consumes nothing from the delivery stream, so the frame-level
// outcomes of a fixed-seed run without faults are bit-identical to the
// same run with a schedule attached whose transitions never fire (and,
// outside active fault windows, identical to one whose transitions
// did). See DESIGN.md §15.
package wire

import (
	"fmt"

	"repro/internal/basis"
	"repro/internal/sim"
)

// control holds the live fault-plane overrides consulted by mediumLoop.
// Zero value = no faults active.
type control struct {
	groups map[string]int // port name → partition group; nil when healed
	burst  *burstState    // Gilbert–Elliott model; nil when inactive
	stormP float64        // extra corruption probability; 0 when off
	rate   int64          // bandwidth override in bits/s; 0 = Config value
	extra  sim.Duration   // extra one-way delay; 0 when off
}

// burstState is the Gilbert–Elliott two-state loss model: a good state
// with low loss and a bad state with high loss, switching between them
// with the configured transition probabilities on every frame. While
// active it replaces the i.i.d. Config.Loss decision; its draws come
// exclusively from the fault stream.
type burstState struct {
	pGB, pBG     float64 // P(good→bad), P(bad→good) per frame
	lossG, lossB float64 // per-frame loss probability in each state
	bad          bool
}

// step advances the two-state chain one frame and reports whether that
// frame is lost. All draws are from the fault stream.
func (b *burstState) step(rng *basis.Rand) bool {
	if b.bad {
		if rng.Chance(b.pBG) {
			b.bad = false
		}
	} else if rng.Chance(b.pGB) {
		b.bad = true
	}
	if b.bad {
		return rng.Chance(b.lossB)
	}
	return rng.Chance(b.lossG)
}

// SetLink raises or lowers the named port's carrier — the scripted form
// of Port.SetUp. It reports whether a port by that name is attached.
func (seg *Segment) SetLink(name string, up bool) bool {
	for _, p := range seg.ports {
		if p.name == name {
			p.SetUp(up)
			return true
		}
	}
	return false
}

// Partition splits the medium: a frame is delivered only to ports in
// the same group as its sender. Ports absent from the map are group 0.
// The map is copied; passing nil is equivalent to Heal.
func (seg *Segment) Partition(groups map[string]int) {
	if len(groups) == 0 {
		seg.ctl.groups = nil
		return
	}
	g := make(map[string]int, len(groups))
	for name, id := range groups {
		g[name] = id
	}
	seg.ctl.groups = g
}

// Heal removes any partition: the medium is one broadcast domain again.
func (seg *Segment) Heal() { seg.ctl.groups = nil }

// Partitioned reports whether a partition is currently in force.
func (seg *Segment) Partitioned() bool { return seg.ctl.groups != nil }

// SetBurstLoss activates the Gilbert–Elliott burst-loss model,
// replacing the i.i.d. Config.Loss decision until ClearBurstLoss. The
// model starts in the good state. Probabilities outside [0, 1] panic —
// schedules are validated at parse time, so reaching here with a bad
// value is a programming error.
func (seg *Segment) SetBurstLoss(pGB, pBG, lossG, lossB float64) {
	for _, p := range [...]float64{pGB, pBG, lossG, lossB} {
		if p < 0 || p > 1 || p != p {
			panic(fmt.Sprintf("wire: burst-loss probability %v out of [0,1]", p))
		}
	}
	seg.ctl.burst = &burstState{pGB: pGB, pBG: pBG, lossG: lossG, lossB: lossB}
}

// ClearBurstLoss deactivates the burst model; Config.Loss applies again.
func (seg *Segment) ClearBurstLoss() { seg.ctl.burst = nil }

// SetCorruptStorm layers an extra per-copy corruption probability on
// top of Config.Corrupt (a storm is additional damage, not a
// replacement — the base stream stays aligned). p = 0 ends the storm.
func (seg *Segment) SetCorruptStorm(p float64) {
	if p < 0 || p > 1 || p != p {
		panic(fmt.Sprintf("wire: corrupt-storm probability %v out of [0,1]", p))
	}
	seg.ctl.stormP = p
}

// SetRateLimit overrides the medium bandwidth (bits per second) —
// bandwidth collapse. bps = 0 restores Config.BitsPerSecond. Negative
// rates panic.
func (seg *Segment) SetRateLimit(bps int64) {
	if bps < 0 {
		panic(fmt.Sprintf("wire: negative rate limit %d", bps))
	}
	seg.ctl.rate = bps
}

// SetDelaySpike adds a fixed extra one-way delay to every delivery —
// a latency spike. d = 0 ends the spike. Negative delays panic.
func (seg *Segment) SetDelaySpike(d sim.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("wire: negative delay spike %v", d))
	}
	seg.ctl.extra = d
}

// PortNames lists the attached ports in attachment order — the universe
// a partition schedule splits.
func (seg *Segment) PortNames() []string {
	names := make([]string, len(seg.ports))
	for i, p := range seg.ports {
		names[i] = p.name
	}
	return names
}
