package wire

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/basis"
	"repro/internal/sim"
)

func runNet(t *testing.T, cfg Config, body func(s *sim.Scheduler, seg *Segment)) {
	t.Helper()
	s := sim.New(sim.Config{})
	s.Run(func() {
		seg := NewSegment(s, cfg, nil)
		body(s, seg)
	})
}

func TestFrameDelivery(t *testing.T) {
	runNet(t, Config{}, func(s *sim.Scheduler, seg *Segment) {
		a := seg.NewPort("a", nil)
		b := seg.NewPort("b", nil)
		var got []byte
		b.SetHandler(func(p *basis.Packet) { got = append([]byte(nil), p.Bytes()...) })
		a.Send(basis.NewPacket(0, 0, []byte("hello wire")))
		s.Sleep(10 * time.Millisecond)
		if !bytes.Equal(got, []byte("hello wire")) {
			t.Fatalf("received %q", got)
		}
		if a.MaxFrame() != MaxFrame {
			t.Fatalf("MaxFrame = %d", a.MaxFrame())
		}
	})
}

func TestSenderDoesNotHearItself(t *testing.T) {
	runNet(t, Config{}, func(s *sim.Scheduler, seg *Segment) {
		a := seg.NewPort("a", nil)
		seg.NewPort("b", nil)
		heard := false
		a.SetHandler(func(p *basis.Packet) { heard = true })
		a.Send(basis.NewPacket(0, 0, []byte("x")))
		s.Sleep(10 * time.Millisecond)
		if heard {
			t.Fatal("sender received its own frame")
		}
	})
}

func TestBroadcastReachesAllOtherPorts(t *testing.T) {
	runNet(t, Config{}, func(s *sim.Scheduler, seg *Segment) {
		a := seg.NewPort("a", nil)
		var got [3][]byte
		for i := 0; i < 3; i++ {
			i := i
			p := seg.NewPort("r", nil)
			p.SetHandler(func(pk *basis.Packet) { got[i] = append([]byte(nil), pk.Bytes()...) })
		}
		a.Send(basis.NewPacket(0, 0, []byte("all")))
		s.Sleep(10 * time.Millisecond)
		for i := range got {
			if string(got[i]) != "all" {
				t.Fatalf("port %d got %q", i, got[i])
			}
		}
		if seg.Stats().Delivered != 3 {
			t.Fatalf("Delivered = %d", seg.Stats().Delivered)
		}
	})
}

func TestBandwidthDelay(t *testing.T) {
	// 1250 payload bytes at 10 Mb/s = exactly 1 ms of serialization,
	// plus the 10 µs default propagation and the device send cost.
	runNet(t, Config{SendCost: time.Microsecond}, func(s *sim.Scheduler, seg *Segment) {
		a := seg.NewPort("a", nil)
		b := seg.NewPort("b", nil)
		var arrival sim.Time = -1
		b.SetHandler(func(p *basis.Packet) { arrival = s.Now() })
		start := s.Now()
		a.Send(basis.NewPacket(0, 0, make([]byte, 1250)))
		s.Sleep(20 * time.Millisecond)
		if arrival < 0 {
			t.Fatal("frame not delivered")
		}
		elapsed := time.Duration(arrival - start)
		want := time.Millisecond + 10*time.Microsecond + time.Microsecond
		if elapsed < want || elapsed > want+100*time.Microsecond {
			t.Fatalf("delivery after %v, want ≈%v", elapsed, want)
		}
	})
}

func TestMediumSerializesFrames(t *testing.T) {
	// Two frames sent back-to-back must arrive one serialization time
	// apart: the medium transmits one frame at a time.
	runNet(t, Config{SendCost: time.Microsecond}, func(s *sim.Scheduler, seg *Segment) {
		a := seg.NewPort("a", nil)
		b := seg.NewPort("b", nil)
		var arrivals []sim.Time
		b.SetHandler(func(p *basis.Packet) { arrivals = append(arrivals, s.Now()) })
		a.Send(basis.NewPacket(0, 0, make([]byte, 1250)))
		a.Send(basis.NewPacket(0, 0, make([]byte, 1250)))
		s.Sleep(50 * time.Millisecond)
		if len(arrivals) != 2 {
			t.Fatalf("got %d arrivals", len(arrivals))
		}
		gap := time.Duration(arrivals[1] - arrivals[0])
		if gap < time.Millisecond {
			t.Fatalf("frames only %v apart; medium did not serialize", gap)
		}
	})
}

func TestOversizeFrameDropped(t *testing.T) {
	runNet(t, Config{}, func(s *sim.Scheduler, seg *Segment) {
		a := seg.NewPort("a", nil)
		b := seg.NewPort("b", nil)
		got := false
		b.SetHandler(func(p *basis.Packet) { got = true })
		a.Send(basis.NewPacket(0, 0, make([]byte, MaxFrame+1)))
		s.Sleep(30 * time.Millisecond)
		if got {
			t.Fatal("oversize frame delivered")
		}
		if seg.Stats().Oversize != 1 {
			t.Fatalf("Oversize = %d", seg.Stats().Oversize)
		}
	})
}

func TestLossDropsAllWithProbabilityOne(t *testing.T) {
	runNet(t, Config{Loss: 1}, func(s *sim.Scheduler, seg *Segment) {
		a := seg.NewPort("a", nil)
		b := seg.NewPort("b", nil)
		got := 0
		b.SetHandler(func(p *basis.Packet) { got++ })
		for i := 0; i < 5; i++ {
			a.Send(basis.NewPacket(0, 0, []byte("doomed")))
		}
		s.Sleep(50 * time.Millisecond)
		if got != 0 {
			t.Fatalf("delivered %d frames through a fully lossy wire", got)
		}
		if seg.Stats().Lost != 5 {
			t.Fatalf("Lost = %d", seg.Stats().Lost)
		}
	})
}

func TestDuplicationDeliversTwice(t *testing.T) {
	runNet(t, Config{Duplicate: 1}, func(s *sim.Scheduler, seg *Segment) {
		a := seg.NewPort("a", nil)
		b := seg.NewPort("b", nil)
		got := 0
		b.SetHandler(func(p *basis.Packet) { got++ })
		a.Send(basis.NewPacket(0, 0, []byte("twice")))
		s.Sleep(30 * time.Millisecond)
		if got != 2 {
			t.Fatalf("delivered %d copies, want 2", got)
		}
	})
}

func TestCorruptionFlipsBytes(t *testing.T) {
	runNet(t, Config{Corrupt: 1, Seed: 7}, func(s *sim.Scheduler, seg *Segment) {
		a := seg.NewPort("a", nil)
		b := seg.NewPort("b", nil)
		orig := []byte("pristine data here")
		var got []byte
		b.SetHandler(func(p *basis.Packet) { got = append([]byte(nil), p.Bytes()...) })
		a.Send(basis.NewPacket(0, 0, orig))
		s.Sleep(30 * time.Millisecond)
		if got == nil {
			t.Fatal("corrupted frame not delivered at all")
		}
		if bytes.Equal(got, orig) {
			t.Fatal("frame marked corrupted but arrived intact")
		}
	})
}

func TestDeterministicFaultSequence(t *testing.T) {
	run := func() Stats {
		var st Stats
		runNet(t, Config{Loss: 0.3, Seed: 99}, func(s *sim.Scheduler, seg *Segment) {
			a := seg.NewPort("a", nil)
			seg.NewPort("b", nil).SetHandler(func(p *basis.Packet) {})
			for i := 0; i < 50; i++ {
				a.Send(basis.NewPacket(0, 0, []byte("frame")))
			}
			s.Sleep(time.Second)
			st = seg.Stats()
		})
		return st
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different stats: %+v vs %+v", a, b)
	}
	if a.Lost == 0 || a.Lost == 50 {
		t.Fatalf("loss = %d of 50; probability not applied", a.Lost)
	}
}

func TestNoHandlerDropsSilently(t *testing.T) {
	runNet(t, Config{}, func(s *sim.Scheduler, seg *Segment) {
		a := seg.NewPort("a", nil)
		seg.NewPort("b", nil) // never installs a handler
		a.Send(basis.NewPacket(0, 0, []byte("void")))
		s.Sleep(10 * time.Millisecond)
	})
}

func TestSendChargesDeviceCost(t *testing.T) {
	runNet(t, Config{SendCost: 5 * time.Millisecond}, func(s *sim.Scheduler, seg *Segment) {
		a := seg.NewPort("a", nil)
		seg.NewPort("b", nil)
		before := s.Now()
		a.Send(basis.NewPacket(0, 0, []byte("x")))
		if d := time.Duration(s.Now() - before); d != 5*time.Millisecond {
			t.Fatalf("send charged %v", d)
		}
	})
}

func TestPortDownDropsBothDirections(t *testing.T) {
	runNet(t, Config{}, func(s *sim.Scheduler, seg *Segment) {
		a := seg.NewPort("a", nil)
		b := seg.NewPort("b", nil)
		got := 0
		b.SetHandler(func(p *basis.Packet) { got++ })
		b.SetUp(false)
		a.Send(basis.NewPacket(0, 0, []byte("into the dark")))
		s.Sleep(10 * time.Millisecond)
		if got != 0 {
			t.Fatal("down port received a frame")
		}
		a.SetUp(false)
		a.Send(basis.NewPacket(0, 0, []byte("from the dark")))
		s.Sleep(10 * time.Millisecond)
		if seg.Stats().Sent != 1 {
			t.Fatalf("down port transmitted (Sent=%d)", seg.Stats().Sent)
		}
		a.SetUp(true)
		b.SetUp(true)
		if !a.Up() || !b.Up() {
			t.Fatal("Up() disagrees")
		}
		a.Send(basis.NewPacket(0, 0, []byte("daylight")))
		s.Sleep(10 * time.Millisecond)
		if got != 1 {
			t.Fatalf("restored link delivered %d frames", got)
		}
	})
}

// --- fault-plane control surface -----------------------------------------

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Loss: -0.1},
		{Loss: 1.5},
		{Duplicate: 2},
		{Corrupt: -1},
		{Jitter: 1.01},
		{Propagation: -time.Microsecond},
		{SendCost: -1},
		{JitterMax: -time.Millisecond},
		{BitsPerSecond: -9600},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config %+v passed Validate", i, cfg)
		}
	}
	if err := (Config{Loss: 1, Jitter: 0.5}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	// NewSegment must refuse the config loudly, not misbehave silently.
	s := sim.New(sim.Config{})
	s.Run(func() {
		defer func() {
			if recover() == nil {
				t.Error("NewSegment accepted Loss = 2")
			}
		}()
		NewSegment(s, Config{Loss: 2}, nil)
	})
}

func TestPartitionCutsAndHeals(t *testing.T) {
	runNet(t, Config{}, func(s *sim.Scheduler, seg *Segment) {
		a := seg.NewPort("a", nil)
		b := seg.NewPort("b", nil)
		heard := 0
		b.SetHandler(func(p *basis.Packet) { heard++ })
		seg.Partition(map[string]int{"a": 0, "b": 1})
		if !seg.Partitioned() {
			t.Fatal("Partitioned() = false after Partition")
		}
		a.Send(basis.NewPacket(0, 0, []byte("lost to the split")))
		s.Sleep(10 * time.Millisecond)
		if heard != 0 {
			t.Fatalf("delivery across a partition: heard %d", heard)
		}
		if cut := seg.Stats().Cut; cut != 1 {
			t.Fatalf("Stats.Cut = %d, want 1", cut)
		}
		seg.Heal()
		a.Send(basis.NewPacket(0, 0, []byte("after the heal")))
		s.Sleep(10 * time.Millisecond)
		if heard != 1 {
			t.Fatalf("heard %d after heal, want 1", heard)
		}
	})
}

func TestBurstLossReplacesIID(t *testing.T) {
	runNet(t, Config{}, func(s *sim.Scheduler, seg *Segment) {
		a := seg.NewPort("a", nil)
		b := seg.NewPort("b", nil)
		heard := 0
		b.SetHandler(func(p *basis.Packet) { heard++ })
		// Deterministic worst case: jump to the bad state on the first
		// frame and lose everything there.
		seg.SetBurstLoss(1, 0, 0, 1)
		for i := 0; i < 10; i++ {
			a.Send(basis.NewPacket(0, 0, []byte("burst")))
		}
		s.Sleep(20 * time.Millisecond)
		if heard != 0 {
			t.Fatalf("heard %d during a total burst", heard)
		}
		seg.ClearBurstLoss()
		a.Send(basis.NewPacket(0, 0, []byte("calm")))
		s.Sleep(10 * time.Millisecond)
		if heard != 1 {
			t.Fatalf("heard %d after burstend, want 1", heard)
		}
	})
}

// TestFaultStreamSplit is the determinism contract of the fault plane:
// fault-plane draws come from their own seeded stream, so activating a
// corruption storm must not change WHICH frames the delivery stream
// loses — only add damage of its own. Two identical lossy runs, one
// with a storm, must lose the exact same frames.
func TestFaultStreamSplit(t *testing.T) {
	const n = 200
	run := func(storm bool) (lostPattern []bool, st Stats) {
		s := sim.New(sim.Config{})
		s.Run(func() {
			seg := NewSegment(s, Config{Seed: 7, Loss: 0.3}, nil)
			a := seg.NewPort("a", nil)
			b := seg.NewPort("b", nil)
			got := make(map[int]bool)
			// The storm flips bytes in delivered frames, so the frame id
			// must survive corruption: every payload byte carries the id,
			// and the receiver takes a majority vote.
			b.SetHandler(func(p *basis.Packet) {
				var tally [256]int
				for _, by := range p.Bytes() {
					tally[by]++
				}
				id, best := 0, 0
				for v, c := range tally {
					if c > best {
						id, best = v, c
					}
				}
				got[id] = true
			})
			if storm {
				seg.SetCorruptStorm(0.5) // draws every frame, fault stream only
			}
			for i := 0; i < n; i++ {
				payload := make([]byte, 41)
				for j := range payload {
					payload[j] = byte(i)
				}
				a.Send(basis.NewPacket(0, 0, payload))
				s.Sleep(time.Millisecond)
			}
			s.Sleep(50 * time.Millisecond)
			for i := 0; i < n; i++ {
				lostPattern = append(lostPattern, !got[i])
			}
			st = seg.Stats()
		})
		return
	}
	plain, pst := run(false)
	stormy, sst := run(true)
	for i := range plain {
		if plain[i] != stormy[i] {
			t.Fatalf("frame %d: lost=%v without storm, %v with — the storm perturbed the delivery stream", i, plain[i], stormy[i])
		}
	}
	if pst.Lost != sst.Lost {
		t.Fatalf("Lost %d without storm, %d with", pst.Lost, sst.Lost)
	}
	if sst.Corrupted <= pst.Corrupted {
		t.Fatalf("storm corrupted nothing (%d vs %d)", sst.Corrupted, pst.Corrupted)
	}
}

// TestSetLinkByName: the by-name form of SetUp, the control surface a
// schedule's linkdown/linkup transitions use.
func TestSetLinkByName(t *testing.T) {
	runNet(t, Config{}, func(s *sim.Scheduler, seg *Segment) {
		a := seg.NewPort("a", nil)
		b := seg.NewPort("b", nil)
		heard := 0
		b.SetHandler(func(p *basis.Packet) { heard++ })
		if !seg.SetLink("b", false) {
			t.Fatal("SetLink did not find port b")
		}
		if seg.SetLink("nonesuch", false) {
			t.Fatal("SetLink found a port that does not exist")
		}
		a.Send(basis.NewPacket(0, 0, []byte("to a dead nic")))
		s.Sleep(10 * time.Millisecond)
		if heard != 0 {
			t.Fatalf("down port heard %d", heard)
		}
		seg.SetLink("b", true)
		a.Send(basis.NewPacket(0, 0, []byte("back up")))
		s.Sleep(10 * time.Millisecond)
		if heard != 1 {
			t.Fatalf("heard %d after linkup, want 1", heard)
		}
	})
}
