// Package wire simulates the physical substrate the paper ran on: an
// isolated 10 Mb/s Ethernet connecting two DECstations, reached through
// Mach 3.0 IPC. A Segment is a shared medium that serializes one frame at
// a time at the configured bandwidth and delivers it to every other
// attached Port after a propagation delay; a Port is the device endpoint a
// protocol stack attaches to.
//
// Substitution notes (see DESIGN.md §3): the medium runs in virtual time
// on the scheduler, so transmission and propagation delays are exact and
// deterministic; the per-send cost of crossing into the kernel (the
// paper's "Mach send" profile row) is modeled as an explicit virtual
// charge; and the one data copy the paper attributes to the kernel at the
// device boundary is performed for real (the frame is cloned as it enters
// the medium). Fault injection — loss, duplication, corruption, jitter
// reordering — is driven by a deterministic PRNG so every failure run is
// reproducible from its seed.
package wire

import (
	"fmt"
	"time"

	"repro/internal/basis"
	"repro/internal/profile"
	"repro/internal/sim"
)

// MaxFrame is the largest frame the medium accepts: 1500 bytes of payload
// plus the 14-byte Ethernet header and 4-byte FCS.
const MaxFrame = 1518

// Config parameterizes a Segment.
type Config struct {
	// BitsPerSecond is the medium bandwidth. Default 10 Mb/s, the
	// paper's Ethernet.
	BitsPerSecond int64
	// Propagation is the one-way propagation delay. Default 10 µs.
	Propagation sim.Duration
	// SendCost is the virtual cost charged to a host for handing one
	// frame to the device — the paper's Mach IPC send. Default 400 µs,
	// calibrated in EXPERIMENTS.md against Table 2's "Mach send" row.
	SendCost sim.Duration
	// Seed drives the fault PRNG. Runs are deterministic per seed.
	Seed uint64
	// Loss, Duplicate and Corrupt are per-frame fault probabilities.
	Loss, Duplicate, Corrupt float64
	// Jitter is the probability that a frame's delivery is delayed by a
	// random extra amount up to JitterMax, which reorders it behind
	// later frames.
	Jitter    float64
	JitterMax sim.Duration
}

// Validate rejects configurations that would silently misbehave:
// probabilities outside [0, 1] (or NaN) and negative durations or
// rates. NewSegment calls it and panics on error, so a bad config is
// loud at construction; callers that want the error instead (flag
// parsing, scenario loaders) call Validate themselves first.
func (c Config) Validate() error {
	probs := [...]struct {
		name string
		p    float64
	}{{"Loss", c.Loss}, {"Duplicate", c.Duplicate}, {"Corrupt", c.Corrupt}, {"Jitter", c.Jitter}}
	for _, f := range probs {
		if f.p < 0 || f.p > 1 || f.p != f.p {
			return fmt.Errorf("wire: Config.%s = %v, want a probability in [0, 1]", f.name, f.p)
		}
	}
	durs := [...]struct {
		name string
		d    sim.Duration
	}{{"Propagation", c.Propagation}, {"SendCost", c.SendCost}, {"JitterMax", c.JitterMax}}
	for _, f := range durs {
		if f.d < 0 {
			return fmt.Errorf("wire: Config.%s = %v, want a non-negative duration", f.name, f.d)
		}
	}
	if c.BitsPerSecond < 0 {
		return fmt.Errorf("wire: Config.BitsPerSecond = %d, want non-negative", c.BitsPerSecond)
	}
	return nil
}

func (c *Config) fill() {
	if c.BitsPerSecond == 0 {
		c.BitsPerSecond = 10_000_000
	}
	if c.Propagation == 0 {
		c.Propagation = 10 * time.Microsecond
	}
	if c.SendCost == 0 {
		c.SendCost = 400 * time.Microsecond
	}
	if c.JitterMax == 0 {
		c.JitterMax = 2 * time.Millisecond
	}
}

// Stats counts segment activity; tests and examples read it.
type Stats struct {
	Sent       uint64 // frames offered by hosts
	Delivered  uint64 // frame deliveries (receiving ports × frames)
	Lost       uint64
	Duplicated uint64
	Corrupted  uint64
	Jittered   uint64
	Oversize   uint64 // frames rejected for exceeding MaxFrame
	Cut        uint64 // deliveries suppressed by an active partition
}

// Segment is one shared broadcast medium.
type Segment struct {
	s   *sim.Scheduler
	cfg Config
	// rng drives the static Config.Loss/Duplicate/Corrupt/Jitter draws
	// (the delivery stream); faultRNG is a separate stream, seeded from
	// the same Config.Seed, that the scripted fault plane draws from.
	// The split keeps fixed-seed frame outcomes stable when a schedule
	// is attached — see control.go and DESIGN.md §15.
	rng      *basis.Rand
	faultRNG *basis.Rand
	ctl      control
	ports    []*Port
	txq      basis.FIFO[txFrame]
	txC      *sim.Cond
	stats    Stats
	trace    *basis.Tracer
	tap      func(from string, data []byte)
}

type txFrame struct {
	from *Port
	data []byte
}

type delivery struct {
	availAt sim.Time
	data    []byte
}

// Port is a host's attachment to a segment. Exactly as in the paper's
// stack, received frames are pushed up through a handler upcall running on
// the port's own device thread.
type Port struct {
	seg     *Segment
	name    string
	prof    *profile.Profile
	handler func(*basis.Packet)
	inq     basis.FIFO[delivery]
	inC     *sim.Cond
	down    bool
}

// faultStreamSalt derives the fault stream's seed from Config.Seed.
// Any odd constant works; what matters is that the two streams are
// distinct for every seed.
const faultStreamSalt = 0x6661756c74 // "fault"

// NewSegment creates a segment and starts its medium thread. It must be
// called from inside the scheduler's Run. An invalid Config panics —
// call Config.Validate first to get the error instead.
func NewSegment(s *sim.Scheduler, cfg Config, trace *basis.Tracer) *Segment {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg.fill()
	seg := &Segment{s: s, cfg: cfg, rng: basis.NewRand(cfg.Seed),
		faultRNG: basis.NewRand(cfg.Seed ^ faultStreamSalt), trace: trace}
	seg.txC = sim.NewCond(s)
	s.Fork("wire", seg.mediumLoop)
	return seg
}

// Stats returns a snapshot of the segment's counters.
func (seg *Segment) Stats() Stats { return seg.stats }

// SetTap installs an observer that sees every frame as it leaves the
// medium's transmit queue, before fault injection — a passive network
// analyzer clipped onto the simulated cable. The tap runs on the medium
// thread outside virtual-time charging, so observation is free.
func (seg *Segment) SetTap(tap func(from string, data []byte)) { seg.tap = tap }

// NewPort attaches a new host port named name. Device-send and
// packet-wait time is attributed to prof when non-nil.
func (seg *Segment) NewPort(name string, prof *profile.Profile) *Port {
	p := &Port{seg: seg, name: name, prof: prof}
	p.inC = sim.NewCond(seg.s)
	seg.ports = append(seg.ports, p)
	seg.s.Fork("dev-recv:"+name, p.recvLoop)
	return p
}

// SetHandler installs the receive upcall. Frames arriving while no
// handler is installed are dropped.
func (p *Port) SetHandler(h func(*basis.Packet)) { p.handler = h }

// SetUp raises or lowers the interface. A down port transmits nothing and
// hears nothing — the cable-pull fault. Traffic during the outage is
// simply lost; the protocols above must recover, and the tests check that
// they do.
func (p *Port) SetUp(up bool) { p.down = !up }

// Up reports whether the interface is raised.
func (p *Port) Up() bool { return !p.down }

// MaxFrame reports the largest frame this port accepts.
func (p *Port) MaxFrame() int { return MaxFrame }

// Name returns the port's diagnostic name.
func (p *Port) Name() string { return p.name }

// Scheduler returns the scheduler the segment runs on.
func (seg *Segment) Scheduler() *sim.Scheduler { return seg.s }

// Send offers a frame to the medium. The frame is copied at this boundary
// (the paper's kernel copy) and the configured device-send cost is charged
// to the calling host. Oversize frames are counted and dropped, as a real
// controller would refuse them.
func (p *Port) Send(pkt *basis.Packet) {
	seg := p.seg
	if p.down {
		return // carrier lost: the controller drops the frame silently
	}
	sec := p.prof.Start(profile.CatDevSend)
	seg.s.Charge(seg.cfg.SendCost)
	if pkt.Len() > MaxFrame {
		seg.stats.Oversize++
		sec.Stop()
		return
	}
	// The boundary copy is the kernel's work in the paper's setup — it
	// happens, but its simulation cost stays off the host's clock (the
	// explicit SendCost models the whole kernel crossing).
	seg.s.Exclude(func() {
		data := make([]byte, pkt.Len())
		copy(data, pkt.Bytes()) //foxvet:boundary-copy simulated kernel crossing: the NIC DMA copy the paper charges to SendCost, off the host clock
		seg.stats.Sent++
		seg.txq.Enqueue(txFrame{from: p, data: data})
		seg.txC.Signal()
	})
	sec.Stop()
	if seg.trace.On() {
		seg.trace.Printf("%s tx %d bytes (queue %d)", p.name, len(pkt.Bytes()), seg.txq.Len())
	}
}

// mediumLoop serializes frames onto the medium one at a time — the shared
// Ethernet — applying bandwidth delay, faults, and propagation.
func (seg *Segment) mediumLoop() {
	for {
		for seg.txq.Empty() {
			seg.txC.Wait()
		}
		f, _ := seg.txq.Dequeue()
		if seg.tap != nil {
			seg.s.Exclude(func() { seg.tap(f.from.name, f.data) })
		}
		bps := seg.cfg.BitsPerSecond
		if seg.ctl.rate > 0 {
			bps = seg.ctl.rate // scripted bandwidth collapse
		}
		txTime := sim.Duration(int64(len(f.data)) * 8 * int64(time.Second) / bps)
		seg.s.Sleep(txTime)

		// The loss decision: the burst model, while active, replaces the
		// i.i.d. draw and consumes only fault-stream values. (When
		// Config.Loss is in (0,1) the delivery stream keeps its draw so
		// the stream stays frame-aligned across a burst window.)
		lost := seg.rng.Chance(seg.cfg.Loss)
		if b := seg.ctl.burst; b != nil {
			lost = b.step(seg.faultRNG)
		}
		if lost {
			seg.stats.Lost++
			seg.trace.Printf("frame from %s lost (%d bytes)", f.from.name, len(f.data))
			continue
		}
		copies := 1
		if seg.rng.Chance(seg.cfg.Duplicate) {
			copies = 2
			seg.stats.Duplicated++
		}
		for i := 0; i < copies; i++ {
			data := f.data
			if i > 0 {
				data = append([]byte(nil), f.data...) //foxvet:boundary-copy fault injection: a duplicated frame is physically a second frame on the medium
			}
			if seg.rng.Chance(seg.cfg.Corrupt) && len(data) > 0 {
				data = append([]byte(nil), data...) //foxvet:boundary-copy fault injection: corruption must not flip bits in the sender's retained buffer
				data[seg.rng.Intn(len(data))] ^= 0xff
				seg.stats.Corrupted++
			}
			// A corruption storm is extra damage layered on top of the
			// static rate; its draws come from the fault stream only.
			if seg.ctl.stormP > 0 && seg.faultRNG.Chance(seg.ctl.stormP) && len(data) > 0 {
				data = append([]byte(nil), data...) //foxvet:boundary-copy fault injection: storm corruption must not flip bits in the sender's retained buffer
				data[seg.faultRNG.Intn(len(data))] ^= 0xff
				seg.stats.Corrupted++
			}
			availAt := seg.s.Now() + sim.Time(seg.cfg.Propagation) + sim.Time(seg.ctl.extra)
			if seg.rng.Chance(seg.cfg.Jitter) {
				extra := sim.Duration(seg.rng.Intn(int(seg.cfg.JitterMax)))
				availAt += sim.Time(extra)
				seg.stats.Jittered++
			}
			for _, port := range seg.ports {
				if port == f.from {
					continue
				}
				// An active partition cuts delivery across the split:
				// only ports in the sender's group hear the frame.
				if g := seg.ctl.groups; g != nil && g[port.name] != g[f.from.name] {
					seg.stats.Cut++
					continue
				}
				// Each receiving controller gets its own buffer: one
				// more copy would be wrong — a broadcast medium induces
				// N receive buffers, so copy per receiver as hardware
				// DMA does.
				buf := data
				if len(seg.ports) > 2 {
					buf = append([]byte(nil), data...) //foxvet:boundary-copy broadcast medium: each receiving NIC DMAs into its own buffer
				}
				port.inq.Enqueue(delivery{availAt: availAt, data: buf})
				port.inC.Signal()
				seg.stats.Delivered++
			}
		}
	}
}

// recvLoop waits for deliveries and runs the upcall chain. Waiting time is
// the paper's "packet wait" profile row.
func (p *Port) recvLoop() {
	for {
		for p.inq.Empty() {
			sec := p.prof.Start(profile.CatPacketWait)
			p.inC.Wait()
			sec.Stop()
		}
		d, _ := p.inq.Dequeue()
		if wait := sim.Duration(d.availAt - p.seg.s.Now()); wait > 0 {
			sec := p.prof.Start(profile.CatPacketWait)
			p.seg.s.Sleep(wait)
			sec.Stop()
		}
		if p.handler == nil || p.down {
			continue
		}
		if p.seg.trace.On() {
			p.seg.trace.Printf("%s rx %d bytes", p.name, len(d.data))
		}
		p.handler(basis.FromWire(d.data))
	}
}

// String describes the segment configuration.
func (seg *Segment) String() string {
	return fmt.Sprintf("segment[%d Mb/s, prop %v, %d ports]",
		seg.cfg.BitsPerSecond/1_000_000, seg.cfg.Propagation, len(seg.ports))
}
