package profile

import (
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestDisabledProfileIsFree(t *testing.T) {
	s := sim.New(sim.Config{})
	s.Run(func() {
		p := New(s, false)
		sec := p.Start(CatTCP)
		sec.Stop() // nil section: must be safe
		if p.Updates() != 0 {
			t.Error("disabled profile counted updates")
		}
	})
	var nilProf *Profile
	nilProf.Reset()
	nilProf.Add(CatIP, time.Second)
	if nilProf.Enabled() {
		t.Error("nil profile enabled")
	}
}

func TestSectionAttributesChargedTime(t *testing.T) {
	s := sim.New(sim.Config{})
	s.Run(func() {
		p := New(s, true)
		sec := p.Start(CatChecksum)
		s.Charge(40 * time.Microsecond)
		sec.Stop()
		r := p.Report()
		if p.acc[CatChecksum] != 40*time.Microsecond {
			t.Fatalf("checksum acc = %v", p.acc[CatChecksum])
		}
		if r.Total < 40*time.Microsecond {
			t.Fatalf("total = %v", r.Total)
		}
	})
}

func TestNestedSectionsAreExclusive(t *testing.T) {
	s := sim.New(sim.Config{})
	s.Run(func() {
		p := New(s, true)
		outer := p.Start(CatIP)
		s.Charge(10 * time.Microsecond)
		inner := p.Start(CatChecksum)
		s.Charge(30 * time.Microsecond)
		inner.Stop()
		s.Charge(5 * time.Microsecond)
		outer.Stop()
		if got := p.acc[CatIP]; got != 15*time.Microsecond {
			t.Errorf("IP exclusive = %v, want 15µs", got)
		}
		if got := p.acc[CatChecksum]; got != 30*time.Microsecond {
			t.Errorf("checksum = %v, want 30µs", got)
		}
	})
}

func TestSectionsOnDifferentThreadsIndependent(t *testing.T) {
	s := sim.New(sim.Config{})
	s.Run(func() {
		p := New(s, true)
		secMain := p.Start(CatTCP)
		s.Fork("other", func() {
			sec := p.Start(CatIP)
			s.Charge(7 * time.Microsecond)
			sec.Stop()
		})
		s.Charge(3 * time.Microsecond)
		s.Yield() // other thread runs its section
		secMain.Stop()
		if p.acc[CatIP] != 7*time.Microsecond {
			t.Errorf("IP = %v", p.acc[CatIP])
		}
		// Main's TCP section spans the other thread's charge too (it did
		// not stop across the yield) — but the other thread's section is
		// not its child, so TCP gets the full 10µs span.
		if p.acc[CatTCP] != 10*time.Microsecond {
			t.Errorf("TCP = %v", p.acc[CatTCP])
		}
	})
}

func TestWaitAttribution(t *testing.T) {
	s := sim.New(sim.Config{})
	s.Run(func() {
		p := New(s, true)
		c := sim.NewCond(s)
		s.Fork("waker", func() {
			s.Sleep(25 * time.Millisecond)
			c.Signal()
		})
		sec := p.Start(CatPacketWait)
		c.Wait()
		sec.Stop()
		if p.acc[CatPacketWait] != 25*time.Millisecond {
			t.Errorf("packet wait = %v", p.acc[CatPacketWait])
		}
	})
}

func TestAddDirectCharge(t *testing.T) {
	s := sim.New(sim.Config{})
	s.Run(func() {
		p := New(s, true)
		p.Add(CatDevSend, 100*time.Microsecond)
		p.Add(CatDevSend, -5) // ignored
		if p.acc[CatDevSend] != 100*time.Microsecond {
			t.Errorf("dev send = %v", p.acc[CatDevSend])
		}
		if p.counts[CatDevSend] != 1 {
			t.Errorf("count = %d", p.counts[CatDevSend])
		}
	})
}

func TestReportPercentagesAndFormat(t *testing.T) {
	s := sim.New(sim.Config{})
	s.Run(func() {
		p := New(s, true)
		sec := p.Start(CatTCP)
		s.Charge(50 * time.Microsecond)
		sec.Stop()
		s.Charge(50 * time.Microsecond) // unattributed
		r := p.Report()
		var tcpPct float64
		for _, row := range r.Rows {
			if row.Label == "TCP" {
				tcpPct = row.Percent
			}
		}
		if tcpPct < 45 || tcpPct > 55 {
			t.Errorf("TCP percent = %.1f, want ~50", tcpPct)
		}
		out := r.Format("sender")
		for _, want := range []string{"TCP", "checksum", "counters (est.)", "total", "packet wait"} {
			if !strings.Contains(out, want) {
				t.Errorf("formatted report missing %q:\n%s", want, out)
			}
		}
	})
}

func TestResetClearsAccumulators(t *testing.T) {
	s := sim.New(sim.Config{})
	s.Run(func() {
		p := New(s, true)
		sec := p.Start(CatCopy)
		s.Charge(time.Millisecond)
		sec.Stop()
		p.Reset()
		if p.acc[CatCopy] != 0 || p.Updates() != 0 {
			t.Error("Reset did not clear")
		}
		r := p.Report()
		if r.Total != 0 {
			t.Errorf("total after immediate report = %v", r.Total)
		}
	})
}

func TestCategoryString(t *testing.T) {
	if CatTCP.String() != "TCP" || CatGC.String() != "g.c." {
		t.Fatal("category names wrong")
	}
	if Category(99).String() != "invalid" {
		t.Fatal("out-of-range category name")
	}
}

func TestCounterEstimateRow(t *testing.T) {
	s := sim.New(sim.Config{})
	s.Run(func() {
		p := New(s, true)
		for i := 0; i < 10; i++ {
			p.Start(CatMisc).Stop()
		}
		r := p.Report()
		if r.Updates != 10 {
			t.Fatalf("updates = %d", r.Updates)
		}
		var est Row
		for _, row := range r.Rows {
			if row.Label == "counters (est.)" {
				est = row
			}
		}
		if est.Time != 10*CounterCost {
			t.Fatalf("counter estimate = %v", est.Time)
		}
	})
}
