// Package profile reproduces the paper's measurement methodology (§5).
// The paper mapped hardware free-running counters into the SML task and
// bracketed stack components with start/stop calls costing ~15 µs a pair;
// Table 2 reports each component's share of total time, with "counters
// (est.)" estimating the observer cost itself. Here the counters read the
// scheduler's virtual clock — which, under CPU charging, advances by the
// measured real execution time of the bracketed code — and attribution is
// exclusive: time spent in a nested section is charged to the inner
// category only, reducing the "overlaps in the measurements" the paper
// had to caveat.
package profile

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/sim"
)

// Category labels one row of the execution profile, matching Table 2.
type Category int

const (
	CatTCP        Category = iota // TCP protocol processing
	CatIP                         // IP protocol processing
	CatEth                        // Ethernet framing and device interface
	CatCopy                       // data copying
	CatChecksum                   // checksum computation
	CatDevSend                    // handing a packet to the (simulated) device: the "Mach send" row
	CatPacketWait                 // blocked waiting for a packet
	CatGC                         // garbage collection (reported from runtime statistics)
	CatMisc                       // buffer management and other utilities
	numCategories
)

var categoryNames = [numCategories]string{
	"TCP", "IP", "eth, dev interf.", "copy", "checksum",
	"dev send", "packet wait", "g.c.", "misc.",
}

// String returns the Table 2 row label.
func (c Category) String() string {
	if c < 0 || c >= numCategories {
		return "invalid"
	}
	return categoryNames[c]
}

// Profile accumulates per-category virtual time for one host.
type Profile struct {
	s       *sim.Scheduler
	enabled bool

	acc    [numCategories]time.Duration
	counts [numCategories]uint64

	cur     map[*sim.Thread]*Section
	updates uint64 // counter start/stop pairs, for the "counters (est.)" row

	startVirt    sim.Time
	startPauseNs uint64
	startNumGC   uint32
}

// Section is one bracketed measurement. Obtain with Start; finish with
// Stop. Sections nest per thread; a section must not span a scheduler
// blocking point unless its category is a wait category (CatPacketWait),
// whose entire point is to attribute blocked time.
type Section struct {
	p         *Profile
	cat       Category
	parent    *Section
	thread    *sim.Thread
	started   sim.Time
	childTime time.Duration
}

// New returns a profile on scheduler s. A disabled profile's Start returns
// a no-op section, so instrumentation can stay in place at zero cost —
// the analogue of assembling the stack with do_prints = false.
func New(s *sim.Scheduler, enabled bool) *Profile {
	p := &Profile{s: s, enabled: enabled, cur: make(map[*sim.Thread]*Section)}
	p.Reset()
	return p
}

// Enabled reports whether the profile records anything.
func (p *Profile) Enabled() bool { return p != nil && p.enabled }

// Reset zeroes all accumulators and snapshots the GC statistics and the
// virtual clock, starting a new measurement interval.
func (p *Profile) Reset() {
	if p == nil {
		return
	}
	p.acc = [numCategories]time.Duration{}
	p.counts = [numCategories]uint64{}
	p.updates = 0
	p.startVirt = p.s.Now()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.startPauseNs = ms.PauseTotalNs
	p.startNumGC = ms.NumGC
}

// Start opens a section attributed to cat on the current thread.
func (p *Profile) Start(cat Category) *Section {
	if p == nil || !p.enabled {
		return nil
	}
	t := p.s.Current()
	sec := &Section{p: p, cat: cat, parent: p.cur[t], thread: t, started: p.s.Now()}
	p.cur[t] = sec
	p.updates++
	return sec
}

// Stop closes the section, charging its exclusive time (total minus nested
// sections) to its category. Stop on a nil section is a no-op.
func (sec *Section) Stop() {
	if sec == nil {
		return
	}
	p := sec.p
	total := time.Duration(p.s.Now() - sec.started)
	exclusive := total - sec.childTime
	if exclusive < 0 {
		exclusive = 0
	}
	p.acc[sec.cat] += exclusive
	p.counts[sec.cat]++
	if sec.parent != nil {
		sec.parent.childTime += total
	}
	p.cur[sec.thread] = sec.parent
}

// Add charges d of virtual time to cat directly, without a section.
func (p *Profile) Add(cat Category, d time.Duration) {
	if p == nil || !p.enabled || d <= 0 {
		return
	}
	p.acc[cat] += d
	p.counts[cat]++
}

// Updates reports how many sections have been opened since Reset.
func (p *Profile) Updates() uint64 {
	if p == nil {
		return 0
	}
	return p.updates
}

// Row is one line of the report.
type Row struct {
	Label   string
	Time    time.Duration
	Percent float64 // of total virtual time
	Busy    float64 // of busy (non-wait) virtual time; 0 for wait rows
	Count   uint64
}

// Report summarizes the interval since Reset as Table 2 does: one row per
// category, a "counters (est.)" row charging CounterCost per update, and
// a total. GC time is taken from the runtime's stop-the-world pause total
// over the interval, scaled like any other CPU time; Go's concurrent
// collector makes this a lower bound, which EXPERIMENTS.md discusses.
type Report struct {
	Total   time.Duration // virtual time elapsed since Reset
	Rows    []Row
	NumGC   uint32
	Sum     float64 // sum of row percentages (the paper's "total" line)
	Updates uint64
	PerPair time.Duration // virtual cost estimate per counter pair
}

// CounterCost is the estimated virtual cost of one start/stop pair: the
// paper measured 15 µs on the DECstation; two clock reads of ~20 ns scaled
// by the default 1000× land within a factor of three of that, and we use
// the paper's figure for the estimate row.
const CounterCost = 15 * time.Microsecond

// Report builds the Table 2 summary for the interval since Reset.
func (p *Profile) Report() Report {
	var r Report
	if p == nil {
		return r
	}
	r.Total = time.Duration(p.s.Now() - p.startVirt)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gcReal := time.Duration(ms.PauseTotalNs - p.startPauseNs)
	r.NumGC = ms.NumGC - p.startNumGC
	p.acc[CatGC] += time.Duration(float64(gcReal) * 1000) // scaled like CPU
	p.startPauseNs = ms.PauseTotalNs

	r.Updates = p.updates
	r.PerPair = CounterCost
	counterEst := time.Duration(p.updates) * CounterCost

	pct := func(d time.Duration) float64 {
		if r.Total <= 0 {
			return 0
		}
		return 100 * float64(d) / float64(r.Total)
	}
	// Busy time excludes waits: on the paper's two real machines each
	// host computed concurrently, so the peer's CPU never appeared in a
	// host's profile; on this single simulated CPU it appears as packet
	// wait. The busy column removes that serialization artifact.
	busyTotal := r.Total - p.acc[CatPacketWait]
	busyPct := func(d time.Duration) float64 {
		if busyTotal <= 0 {
			return 0
		}
		return 100 * float64(d) / float64(busyTotal)
	}
	for c := Category(0); c < numCategories; c++ {
		row := Row{Label: c.String(), Time: p.acc[c], Percent: pct(p.acc[c]), Count: p.counts[c]}
		if c != CatPacketWait {
			row.Busy = busyPct(p.acc[c])
		}
		r.Rows = append(r.Rows, row)
	}
	r.Rows = append(r.Rows, Row{Label: "counters (est.)", Time: counterEst, Percent: pct(counterEst), Busy: busyPct(counterEst), Count: p.updates})
	for _, row := range r.Rows {
		r.Sum += row.Percent
	}
	return r
}

// Format renders the report as an aligned text table in the shape of the
// paper's Table 2 column for one host.
func (r Report) Format(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (total %v, %d GCs)\n", title, r.Total, r.NumGC)
	fmt.Fprintf(&b, "  %-18s %8s %8s %10s %8s\n", "component", "percent", "busy%", "time", "count")
	for _, row := range r.Rows {
		busy := "      -"
		if row.Busy != 0 {
			busy = fmt.Sprintf("%6.1f%%", row.Busy)
		}
		fmt.Fprintf(&b, "  %-18s %7.1f%% %s %10v %8d\n", row.Label, row.Percent, busy, row.Time.Round(time.Microsecond), row.Count)
	}
	fmt.Fprintf(&b, "  %-18s %7.1f%%\n", "total", r.Sum)
	return b.String()
}
