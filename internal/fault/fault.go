// Package fault is the deterministic, scripted fault-injection plane:
// a Schedule of timed transitions — link flaps, partitions, bursty
// loss, corruption storms, bandwidth collapse, delay spikes — applied
// to a live wire.Segment at exact virtual times. The paper validates
// Fox Net by running the real stack over an adversarial simulated wire;
// this package makes the adversary's *timeline* first-class: faults
// that change mid-flight, reproducibly, from a small text format
// (testdata/scenarios/*.fsched) that foxstat, foxbench, and the chaos
// soak all drive.
//
// The package is pure observation and wire control. It calls only the
// sanctioned Segment control API (SetLink, Partition, Heal,
// SetBurstLoss, SetCorruptStorm, SetRateLimit, SetDelaySpike) — never
// a protocol stack; foxvet's quasisync pass registers it as an
// observer package and proves no path from here reaches the TCP
// executor, and the layering pass holds it to the infrastructure
// import discipline. Every probabilistic draw a fault makes comes from
// the segment's dedicated fault RNG stream, so attaching a schedule
// never perturbs the frame-level outcomes of the delivery stream's
// fixed-seed draws (DESIGN.md §15).
//
// Every applied transition increments the stats.FaultMIB group and is
// journaled as an observer-only flight record (flight.KindFault), so a
// sealed journal carries the fault timeline alongside the machine
// history it explains — foxreplay skips the records but readers can
// attribute any divergence window to the scripted events inside it.
package fault

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Kind names a transition, exactly as spelled in the .fsched format.
type Kind string

// The transition vocabulary. Set/clear pairs: partition/heal,
// burstloss/burstend, corruptstorm/corruptend, ratelimit/rateclear,
// delayspike/delayclear; linkdown/linkup act per port.
const (
	LinkDown     Kind = "linkdown"     // lower a port's carrier
	LinkUp       Kind = "linkup"       // raise it again
	Partition    Kind = "partition"    // split the medium into groups
	Heal         Kind = "heal"         // one broadcast domain again
	BurstLoss    Kind = "burstloss"    // Gilbert–Elliott model replaces i.i.d. loss
	BurstEnd     Kind = "burstend"     // i.i.d. Config.Loss applies again
	CorruptStorm Kind = "corruptstorm" // extra corruption probability
	CorruptEnd   Kind = "corruptend"   // storm over
	RateLimit    Kind = "ratelimit"    // bandwidth collapse (bits/s)
	RateClear    Kind = "rateclear"    // configured bandwidth again
	DelaySpike   Kind = "delayspike"   // extra one-way delay
	DelayClear   Kind = "delayclear"   // configured propagation again
)

// Transition is one timed fault event. Only the fields its Kind uses
// are meaningful.
type Transition struct {
	At   sim.Duration // offset from schedule start
	Kind Kind

	Port   string         // linkdown/linkup: which port
	Groups map[string]int // partition: port name → group id

	PGB, PBG     float64 // burstloss: P(good→bad), P(bad→good)
	LossG, LossB float64 // burstloss: loss probability per state

	P     float64      // corruptstorm probability
	BPS   int64        // ratelimit bits per second
	Delay sim.Duration // delayspike extra delay
}

// Detail renders the transition's arguments the way the .fsched format
// spells them — the string journaled in the flight record's "fd" field.
func (t Transition) Detail() string {
	switch t.Kind {
	case LinkDown, LinkUp:
		return t.Port
	case Partition:
		return renderGroups(t.Groups)
	case BurstLoss:
		return fmt.Sprintf("%g %g %g %g", t.PGB, t.PBG, t.LossG, t.LossB)
	case CorruptStorm:
		return fmt.Sprintf("%g", t.P)
	case RateLimit:
		return fmt.Sprintf("%d", t.BPS)
	case DelaySpike:
		return t.Delay.String()
	}
	return ""
}

// renderGroups prints a partition map in the "a,b | c,d" form, groups
// ordered by id and members sorted, so the rendering is deterministic.
func renderGroups(groups map[string]int) string {
	byID := map[int][]string{}
	ids := []int{}
	for name, id := range groups {
		if len(byID[id]) == 0 {
			ids = append(ids, id)
		}
		byID[id] = append(byID[id], name)
	}
	sort.Ints(ids)
	parts := make([]string, 0, len(ids))
	for _, id := range ids {
		members := byID[id]
		sort.Strings(members)
		parts = append(parts, strings.Join(members, ","))
	}
	return strings.Join(parts, " | ")
}

// String renders the transition as a complete .fsched line.
func (t Transition) String() string {
	if d := t.Detail(); d != "" {
		return fmt.Sprintf("%v %s %s", t.At, t.Kind, d)
	}
	return fmt.Sprintf("%v %s", t.At, t.Kind)
}

// Schedule is an ordered list of timed transitions. Schedules are
// values: parse once, run against any number of segments.
type Schedule struct {
	Name        string
	Transitions []Transition // non-decreasing At, enforced by Parse
}

// String renders the whole schedule in .fsched form, one transition
// per line — valid input for Parse, so schedules round-trip.
func (sc Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# scenario: %s\n", sc.Name)
	for _, t := range sc.Transitions {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Horizon is the offset of the last transition — the earliest moment
// the whole script has been applied. Zero for an empty schedule.
func (sc Schedule) Horizon() sim.Duration {
	if n := len(sc.Transitions); n > 0 {
		return sc.Transitions[n-1].At
	}
	return 0
}

// Outage sums the spans during which any scripted abnormal condition
// is in force (from each set transition to its matching clear, or to
// the horizon if never cleared) — the figure a soak adds to its
// completion bound, since a connection cannot be expected to make
// progress while the script is actively hurting the wire.
func (sc Schedule) Outage() sim.Duration {
	var total sim.Duration
	active := map[Kind]sim.Duration{} // set-kind → activation offset
	downs := map[string]sim.Duration{}
	clearOf := map[Kind]Kind{Heal: Partition, BurstEnd: BurstLoss,
		CorruptEnd: CorruptStorm, RateClear: RateLimit, DelayClear: DelaySpike}
	for _, t := range sc.Transitions {
		switch t.Kind {
		case LinkDown:
			if _, on := downs[t.Port]; !on {
				downs[t.Port] = t.At
			}
		case LinkUp:
			if at, on := downs[t.Port]; on {
				total += t.At - at
				delete(downs, t.Port)
			}
		case Partition, BurstLoss, CorruptStorm, RateLimit, DelaySpike:
			if _, on := active[t.Kind]; !on {
				active[t.Kind] = t.At
			}
		case Heal, BurstEnd, CorruptEnd, RateClear, DelayClear:
			if at, on := active[clearOf[t.Kind]]; on {
				total += t.At - at
				delete(active, clearOf[t.Kind])
			}
		}
	}
	for _, at := range downs {
		total += sc.Horizon() - at
	}
	for _, at := range active {
		total += sc.Horizon() - at
	}
	return total
}
