package fault

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestBuiltinsMirrorTestdata: every built-in scenario must parse to the
// same schedule as its testdata/scenarios twin — the files are the
// documented, artifact-dumpable form of the names foxstat accepts.
func TestBuiltinsMirrorTestdata(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Fatal("no built-in scenarios")
	}
	for _, name := range names {
		builtin, ok := Named(name)
		if !ok {
			t.Fatalf("Named(%q) vanished", name)
		}
		fromFile, err := ParseFile(filepath.Join("testdata", "scenarios", name+".fsched"))
		if err != nil {
			t.Fatalf("testdata twin of %q: %v", name, err)
		}
		if !reflect.DeepEqual(builtin.Transitions, fromFile.Transitions) {
			t.Errorf("built-in %q diverges from its testdata file:\nbuiltin: %v\nfile:    %v",
				name, builtin.Transitions, fromFile.Transitions)
		}
	}
}

// TestScheduleRoundTrip: String() output is valid .fsched that parses
// back to the identical transition list.
func TestScheduleRoundTrip(t *testing.T) {
	for _, name := range Names() {
		sc, _ := Named(name)
		back, err := Parse(name, strings.NewReader(sc.String()))
		if err != nil {
			t.Fatalf("%s round trip: %v", name, err)
		}
		if !reflect.DeepEqual(sc.Transitions, back.Transitions) {
			t.Errorf("%s did not round trip:\n%v\n%v", name, sc.Transitions, back.Transitions)
		}
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct{ line, wantErr string }{
		{"10ms burstloss 0.1 0.3 0.01 1.5", "out of [0, 1]"},
		{"10ms corruptstorm -0.1", "out of [0, 1]"},
		{"10ms corruptstorm NaN", "out of [0, 1]"},
		{"-5ms heal", "negative offset"},
		{"10ms ratelimit -56000", "must be positive"},
		{"10ms delayspike -1ms", "negative delay"},
		{"10ms explode h1", "unknown transition kind"},
		{"10ms partition a | a", `in groups 0 and 1`},
		{"10ms linkdown", "one port name"},
		{"10ms heal now", "takes no arguments"},
		{"banana", "want \"<offset> <kind> [args]\""},
	}
	for _, c := range cases {
		_, err := Parse("t", strings.NewReader(c.line+"\n"))
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("Parse(%q) err = %v, want substring %q", c.line, err, c.wantErr)
		}
	}
	// Offsets must be non-decreasing: a schedule is an ordered script.
	if _, err := Parse("t", strings.NewReader("10ms heal\n5ms heal\n")); err == nil ||
		!strings.Contains(err.Error(), "goes backwards") {
		t.Errorf("backwards offsets accepted: %v", err)
	}
}

func TestHorizonAndOutage(t *testing.T) {
	text := `1s partition A | B
3s heal
4s linkdown A
5s linkup A
6s burstloss 0.1 0.5 0 1
8s burstend
`
	sc, err := Parse("t", strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sc.Horizon(), sim.Duration(8*time.Second); got != want {
		t.Errorf("Horizon = %v, want %v", got, want)
	}
	// 2s partition + 1s link flap + 2s burst window.
	if got, want := sc.Outage(), sim.Duration(5*time.Second); got != want {
		t.Errorf("Outage = %v, want %v", got, want)
	}
	// An uncleared condition counts to the horizon.
	sc2, err := Parse("t", strings.NewReader("1s partition A | B\n5s linkdown A\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sc2.Outage(), sim.Duration(4*time.Second); got != want {
		t.Errorf("open-ended Outage = %v, want %v", got, want)
	}
}
