package fault

import (
	"repro/internal/basis"
	"repro/internal/flight"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/wire"
)

// Options configures a Runner.
type Options struct {
	// MIB, when non-nil, counts every applied transition (register it
	// as the "fault" group to surface it in foxstat).
	MIB *stats.FaultMIB
	// Recorders each receive an observer-only flight record per applied
	// transition, so every host's sealed journal carries the fault
	// timeline. Nil entries are skipped.
	Recorders []*flight.Recorder
	// PortAlias maps the schedule's port names to the segment's real
	// port names — built-in scenarios say "A"/"B", a three-host rig maps
	// them to "10.0.0.1"/"10.0.0.2". Names absent from the map pass
	// through unchanged.
	PortAlias map[string]string
	// Trace, when enabled, prints each transition as it is applied.
	Trace *basis.Tracer
}

// Runner walks one Schedule against one Segment in virtual time. Create
// with Start; the runner forks its own scheduler thread, sleeps to each
// transition's offset, and applies it through the segment's sanctioned
// control API. Deterministic: same schedule, same segment, same seed →
// same timeline, and the fault plane draws only from the segment's
// dedicated fault RNG stream.
type Runner struct {
	s       *sim.Scheduler
	seg     *wire.Segment
	sched   Schedule
	opt     Options
	applied int
	done    bool
}

// Start begins applying sched to seg, offsets measured from now. It
// must be called from inside the scheduler's Run, like wire.NewSegment.
// Every port the schedule names (after aliasing) must already exist on
// the segment; Start panics otherwise — a schedule/rig mismatch would
// otherwise silently no-op every transition while still counting them.
func Start(s *sim.Scheduler, seg *wire.Segment, sched Schedule, opt Options) *Runner {
	if opt.MIB == nil {
		// A detached group keeps the increment sites unconditional,
		// exactly like tcp.Config.Metrics.
		opt.MIB = &stats.FaultMIB{}
	}
	r := &Runner{s: s, seg: seg, sched: sched, opt: opt}
	r.checkPorts()
	s.Fork("fault:"+sched.Name, r.run)
	return r
}

// checkPorts verifies every port the schedule names resolves to a port
// the segment has. Ports a partition map omits legally default to
// group 0; ports the schedule names that do not exist are an error.
func (r *Runner) checkPorts() {
	have := map[string]bool{}
	for _, name := range r.seg.PortNames() {
		have[name] = true
	}
	bad := func(name string) {
		panic("fault: schedule " + r.sched.Name + " names unknown port " + r.port(name))
	}
	for _, tr := range r.sched.Transitions {
		switch tr.Kind {
		case LinkDown, LinkUp:
			if !have[r.port(tr.Port)] {
				bad(tr.Port)
			}
		case Partition:
			for name := range tr.Groups {
				if !have[r.port(name)] {
					bad(name)
				}
			}
		}
	}
}

// Applied reports how many transitions have fired so far.
func (r *Runner) Applied() int { return r.applied }

// Done reports whether the whole schedule has been applied.
func (r *Runner) Done() bool { return r.done }

func (r *Runner) run() {
	start := r.s.Now()
	for i := range r.sched.Transitions {
		tr := &r.sched.Transitions[i]
		if wait := sim.Duration(start + sim.Time(tr.At) - r.s.Now()); wait > 0 {
			r.s.Sleep(wait)
		}
		r.apply(tr)
	}
	r.done = true
}

// port resolves a schedule port name through the alias map.
func (r *Runner) port(name string) string {
	if real, ok := r.opt.PortAlias[name]; ok {
		return real
	}
	return name
}

// apply fires one transition: segment control call, MIB counters, and
// one observer-only flight record per attached recorder.
func (r *Runner) apply(tr *Transition) {
	m := r.opt.MIB
	switch tr.Kind {
	case LinkDown:
		r.seg.SetLink(r.port(tr.Port), false)
		m.LinkDowns.Inc()
		m.Active.Inc()
	case LinkUp:
		r.seg.SetLink(r.port(tr.Port), true)
		m.LinkUps.Inc()
		m.Active.Dec()
	case Partition:
		groups := make(map[string]int, len(tr.Groups))
		for name, id := range tr.Groups {
			groups[r.port(name)] = id
		}
		r.seg.Partition(groups)
		m.Partitions.Inc()
		m.Active.Inc()
	case Heal:
		r.seg.Heal()
		m.Heals.Inc()
		m.Active.Dec()
	case BurstLoss:
		r.seg.SetBurstLoss(tr.PGB, tr.PBG, tr.LossG, tr.LossB)
		m.BurstStarts.Inc()
		m.Active.Inc()
	case BurstEnd:
		r.seg.ClearBurstLoss()
		m.BurstEnds.Inc()
		m.Active.Dec()
	case CorruptStorm:
		r.seg.SetCorruptStorm(tr.P)
		m.CorruptStorms.Inc()
		m.Active.Inc()
	case CorruptEnd:
		r.seg.SetCorruptStorm(0)
		m.Active.Dec()
	case RateLimit:
		r.seg.SetRateLimit(tr.BPS)
		m.RateLimits.Inc()
		m.Active.Inc()
	case RateClear:
		r.seg.SetRateLimit(0)
		m.Active.Dec()
	case DelaySpike:
		r.seg.SetDelaySpike(tr.Delay)
		m.DelaySpikes.Inc()
		m.Active.Inc()
	case DelayClear:
		r.seg.SetDelaySpike(0)
		m.Active.Dec()
	}
	m.Transitions.Inc()
	r.applied++
	if r.opt.Trace.On() {
		r.opt.Trace.Printf("fault %s: %s", r.sched.Name, tr.String())
	}
	at := int64(r.s.Now())
	detail := tr.Detail()
	for _, rec := range r.opt.Recorders {
		if rec != nil {
			rec.Fault(at, string(tr.Kind), detail)
		}
	}
}
