package fault_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/basis"
	"repro/internal/fault"
	"repro/internal/flight"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/wire"
)

// TestRunnerAppliesOnTime: a linkdown/linkup flap fires at the scripted
// virtual offsets, counted exactly in the FaultMIB, and the Active
// gauge returns to zero once the script has cleared everything it set.
func TestRunnerAppliesOnTime(t *testing.T) {
	sched, err := fault.Parse("flaptest", strings.NewReader(
		"10ms linkdown B\n30ms linkup B\n40ms partition A | B\n60ms heal\n"))
	if err != nil {
		t.Fatal(err)
	}
	mib := &stats.FaultMIB{}
	s := sim.New(sim.Config{})
	s.Run(func() {
		seg := wire.NewSegment(s, wire.Config{}, nil)
		a := seg.NewPort("a", nil)
		b := seg.NewPort("b", nil)
		heard := 0
		b.SetHandler(func(p *basis.Packet) { heard++ })
		r := fault.Start(s, seg, sched, fault.Options{
			MIB:       mib,
			PortAlias: map[string]string{"A": "a", "B": "b"},
		})
		send := func() { a.Send(basis.NewPacket(0, 0, []byte("probe"))) }

		s.Sleep(5 * time.Millisecond) // t=5ms: before the flap
		send()
		s.Sleep(15 * time.Millisecond) // t=20ms: b is down
		send()
		s.Sleep(15 * time.Millisecond) // t=35ms: up again
		send()
		s.Sleep(15 * time.Millisecond) // t=50ms: partitioned
		send()
		s.Sleep(20 * time.Millisecond) // t=70ms: healed
		send()
		s.Sleep(10 * time.Millisecond)

		if heard != 3 {
			t.Errorf("heard %d probes, want 3 (down and partitioned ones dropped)", heard)
		}
		if !r.Done() || r.Applied() != 4 {
			t.Errorf("runner done=%v applied=%d, want true/4", r.Done(), r.Applied())
		}
	})
	if got := mib.Transitions.Load(); got != 4 {
		t.Errorf("Transitions = %d, want 4", got)
	}
	for name, got := range map[string]uint64{
		"LinkDowns":  mib.LinkDowns.Load(),
		"LinkUps":    mib.LinkUps.Load(),
		"Partitions": mib.Partitions.Load(),
		"Heals":      mib.Heals.Load(),
	} {
		if got != 1 {
			t.Errorf("%s = %d, want 1", name, got)
		}
	}
	if got := mib.Active.Load(); got != 0 {
		t.Errorf("Active = %d after a fully-cleared script, want 0", got)
	}
	if high := mib.Active.High(); high != 1 {
		t.Errorf("Active high-water = %d, want 1", high)
	}
}

// TestRunnerJournalsTransitions: every applied transition lands in each
// attached recorder as an observer-only KindFault record carrying the
// transition kind, its rendered detail, and the virtual time it fired.
func TestRunnerJournalsTransitions(t *testing.T) {
	sched, ok := fault.Named("squeeze")
	if !ok {
		t.Fatal("no squeeze scenario")
	}
	var buf bytes.Buffer
	rec := flight.NewRecorder(&buf)
	s := sim.New(sim.Config{})
	s.Run(func() {
		seg := wire.NewSegment(s, wire.Config{}, nil)
		fault.Start(s, seg, sched, fault.Options{Recorders: []*flight.Recorder{rec, nil}})
		s.Sleep(10 * time.Second)
	})
	recs, err := flight.ReadAll(&buf)
	if err != nil {
		t.Fatalf("journal does not read back: %v", err)
	}
	if len(recs) != len(sched.Transitions) {
		t.Fatalf("journaled %d records, want %d", len(recs), len(sched.Transitions))
	}
	for i, r := range recs {
		tr := sched.Transitions[i]
		if r.Kind != flight.KindFault {
			t.Errorf("record %d kind %q, want %q", i, r.Kind, flight.KindFault)
		}
		if r.FaultKind != string(tr.Kind) || r.FaultDetail != tr.Detail() {
			t.Errorf("record %d = %s %q, want %s %q", i, r.FaultKind, r.FaultDetail, tr.Kind, tr.Detail())
		}
		if got, want := sim.Time(r.At), sim.Time(tr.At); got != want {
			t.Errorf("record %d at %d, want %d", i, got, want)
		}
	}
}

// TestRateLimitAndDelaySlowDelivery: the squeeze scenario's bandwidth
// collapse and delay spike visibly delay frames while active and stop
// doing so once cleared.
func TestRateLimitAndDelaySlowDelivery(t *testing.T) {
	s := sim.New(sim.Config{})
	s.Run(func() {
		seg := wire.NewSegment(s, wire.Config{}, nil)
		a := seg.NewPort("a", nil)
		b := seg.NewPort("b", nil)
		var arrivals []sim.Time
		b.SetHandler(func(p *basis.Packet) { arrivals = append(arrivals, s.Now()) })
		latency := func() sim.Duration {
			start := s.Now()
			a.Send(basis.NewPacket(0, 0, make([]byte, 1000)))
			s.Sleep(5 * time.Second)
			return sim.Duration(arrivals[len(arrivals)-1] - start)
		}
		base := latency()
		seg.SetRateLimit(56_000) // 1000 bytes at 56 kb/s ≈ 143 ms of tx time
		squeezed := latency()
		seg.SetRateLimit(0)
		seg.SetDelaySpike(30 * time.Millisecond)
		spiked := latency()
		seg.SetDelaySpike(0)
		after := latency()
		if squeezed < 100*time.Millisecond || squeezed <= base {
			t.Errorf("rate-limited latency %v, want ≫ base %v", squeezed, base)
		}
		if d := spiked - base; d != 30*time.Millisecond {
			t.Errorf("delay spike added %v, want exactly 30ms", d)
		}
		if after != base {
			t.Errorf("latency %v after clearing, want base %v", after, base)
		}
	})
}

// TestRunnerRejectsUnknownPorts: a schedule naming a port the segment
// does not have is a rig mismatch; silently ignoring it would let a
// whole scenario no-op while still counting transitions.
func TestRunnerRejectsUnknownPorts(t *testing.T) {
	for _, line := range []string{"1ms linkdown ghost", "1ms partition ghost | a"} {
		sched, err := fault.Parse("t", strings.NewReader(line+"\n"))
		if err != nil {
			t.Fatal(err)
		}
		s := sim.New(sim.Config{})
		panicked := false
		s.Run(func() {
			seg := wire.NewSegment(s, wire.Config{}, nil)
			seg.NewPort("a", nil)
			func() {
				defer func() {
					if r := recover(); r != nil {
						panicked = true
						if !strings.Contains(fmt.Sprint(r), "ghost") {
							t.Errorf("panic %v does not name the unknown port", r)
						}
					}
				}()
				fault.Start(s, seg, sched, fault.Options{})
			}()
		})
		if !panicked {
			t.Errorf("schedule %q accepted against a segment without that port; want panic at Start", line)
		}
	}
}
