// The .fsched text format: one transition per line,
//
//	<offset> <kind> [args]
//
// where <offset> is a Go duration (non-decreasing down the file) and
// the args depend on the kind:
//
//	10ms  linkdown h1              lower port h1's carrier
//	40ms  linkup   h1              raise it again
//	50ms  partition h1,h2 | h3     split into groups (members comma-
//	                               separated, groups separated by |)
//	2s    heal                     remove the partition
//	3s    burstloss 0.1 0.3 0.01 0.6
//	                               Gilbert–Elliott: P(good→bad),
//	                               P(bad→good), loss in good, loss in bad
//	5s    burstend
//	6s    corruptstorm 0.2         extra corruption probability
//	7s    corruptend
//	8s    ratelimit 56000          bandwidth collapse to 56 kb/s
//	9s    rateclear
//	10s   delayspike 50ms          extra one-way delay
//	11s   delayclear
//
// Blank lines and #-comments are ignored. Every probability must be in
// [0, 1] and every duration and rate non-negative; Parse rejects the
// file otherwise, naming the line.

package fault

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/sim"
)

// Parse reads a schedule in .fsched form. name labels the schedule in
// errors, journals, and artifact dumps.
func Parse(name string, r io.Reader) (Schedule, error) {
	sc := Schedule{Name: name}
	scan := bufio.NewScanner(r)
	lineNo := 0
	var prev sim.Duration
	for scan.Scan() {
		lineNo++
		line := strings.TrimSpace(scan.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		tr, err := parseLine(line)
		if err != nil {
			return Schedule{}, fmt.Errorf("%s:%d: %v", name, lineNo, err)
		}
		if tr.At < prev {
			return Schedule{}, fmt.Errorf("%s:%d: offset %v goes backwards (previous %v)", name, lineNo, tr.At, prev)
		}
		prev = tr.At
		sc.Transitions = append(sc.Transitions, tr)
	}
	if err := scan.Err(); err != nil {
		return Schedule{}, fmt.Errorf("%s: %v", name, err)
	}
	return sc, nil
}

// ParseFile loads a .fsched file; the schedule is named after the file
// (base name without extension).
func ParseFile(path string) (Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return Schedule{}, err
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return Parse(name, f)
}

// parseLine decodes one "<offset> <kind> [args]" line.
func parseLine(line string) (Transition, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Transition{}, fmt.Errorf("want \"<offset> <kind> [args]\", got %q", line)
	}
	off, err := time.ParseDuration(fields[0])
	if err != nil {
		return Transition{}, fmt.Errorf("bad offset %q: %v", fields[0], err)
	}
	if off < 0 {
		return Transition{}, fmt.Errorf("negative offset %v", off)
	}
	tr := Transition{At: sim.Duration(off), Kind: Kind(fields[1])}
	args := fields[2:]
	switch tr.Kind {
	case LinkDown, LinkUp:
		if len(args) != 1 {
			return Transition{}, fmt.Errorf("%s wants one port name", tr.Kind)
		}
		tr.Port = args[0]
	case Partition:
		groups, err := parseGroups(strings.Join(args, " "))
		if err != nil {
			return Transition{}, err
		}
		tr.Groups = groups
	case Heal, BurstEnd, CorruptEnd, RateClear, DelayClear:
		if len(args) != 0 {
			return Transition{}, fmt.Errorf("%s takes no arguments", tr.Kind)
		}
	case BurstLoss:
		if len(args) != 4 {
			return Transition{}, fmt.Errorf("burstloss wants 4 probabilities: P(good→bad) P(bad→good) loss-good loss-bad")
		}
		ps := [4]*float64{&tr.PGB, &tr.PBG, &tr.LossG, &tr.LossB}
		for i, a := range args {
			p, err := parseProb(a)
			if err != nil {
				return Transition{}, err
			}
			*ps[i] = p
		}
	case CorruptStorm:
		if len(args) != 1 {
			return Transition{}, fmt.Errorf("corruptstorm wants one probability")
		}
		if tr.P, err = parseProb(args[0]); err != nil {
			return Transition{}, err
		}
	case RateLimit:
		if len(args) != 1 {
			return Transition{}, fmt.Errorf("ratelimit wants bits per second")
		}
		bps, err := strconv.ParseInt(args[0], 10, 64)
		if err != nil {
			return Transition{}, fmt.Errorf("bad rate %q: %v", args[0], err)
		}
		if bps <= 0 {
			return Transition{}, fmt.Errorf("rate %d must be positive", bps)
		}
		tr.BPS = bps
	case DelaySpike:
		if len(args) != 1 {
			return Transition{}, fmt.Errorf("delayspike wants a duration")
		}
		d, err := time.ParseDuration(args[0])
		if err != nil {
			return Transition{}, fmt.Errorf("bad delay %q: %v", args[0], err)
		}
		if d < 0 {
			return Transition{}, fmt.Errorf("negative delay %v", d)
		}
		tr.Delay = sim.Duration(d)
	default:
		return Transition{}, fmt.Errorf("unknown transition kind %q", fields[1])
	}
	return tr, nil
}

// parseGroups decodes "a,b | c,d" into a name→group map.
func parseGroups(s string) (map[string]int, error) {
	groups := map[string]int{}
	for id, part := range strings.Split(s, "|") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("partition: empty group %d", id)
		}
		for _, name := range strings.Split(part, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				return nil, fmt.Errorf("partition: empty port name in group %d", id)
			}
			if old, dup := groups[name]; dup {
				return nil, fmt.Errorf("partition: port %q in groups %d and %d", name, old, id)
			}
			groups[name] = id
		}
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("partition wants \"a,b | c,d\" groups")
	}
	return groups, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad probability %q: %v", s, err)
	}
	if p < 0 || p > 1 || p != p {
		return 0, fmt.Errorf("probability %v out of [0, 1]", p)
	}
	return p, nil
}

// Built-in scenarios, mirrored 1:1 by testdata/scenarios/*.fsched so
// the files stay parseable and the names work without a filesystem
// (foxstat -scenario, foxbench -fault). Port names h1/h2/h3 follow the
// foxnet convention (ip.HostAddr(n).String() = "10.0.0.n"); scenarios
// that name ports use the segment's first ports via Runner remapping —
// see Options.PortAlias.
var builtins = map[string]string{
	// flap: the client's link drops twice, briefly, mid-transfer.
	"flap": `# scenario: flap — two short carrier losses on port A
500ms linkdown A
1500ms linkup A
4s linkdown A
5500ms linkup A
`,
	// partition: the medium splits for a while, then heals.
	"partition": `# scenario: partition — split A from everyone, then heal
1s partition A | B
9s heal
`,
	// burst: Gilbert–Elliott bursty loss, then a corruption storm.
	"burst": `# scenario: burst — bursty loss then a corruption storm
500ms burstloss 0.05 0.25 0.005 0.5
6s burstend
7s corruptstorm 0.2
9s corruptend
`,
	// squeeze: bandwidth collapse plus a delay spike.
	"squeeze": `# scenario: squeeze — 56k bandwidth collapse with a delay spike
1s ratelimit 56000
2s delayspike 30ms
6s delayclear
8s rateclear
`,
}

// Names lists the built-in scenario names, sorted.
func Names() []string {
	names := make([]string, 0, len(builtins))
	for name := range builtins {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Named returns a built-in schedule by name. The boolean reports
// whether the name exists. Built-ins are parsed from the same text the
// testdata files carry, so they are exercised by the parser tests.
func Named(name string) (Schedule, bool) {
	text, ok := builtins[name]
	if !ok {
		return Schedule{}, false
	}
	sc, err := Parse(name, strings.NewReader(text))
	if err != nil {
		panic("fault: built-in scenario " + name + " does not parse: " + err.Error())
	}
	return sc, true
}
