package fault_test

// Partition soak: the full stack transfers data through scripted fault
// schedules — flaps, splits, bursty loss, bandwidth collapse — at fixed
// seeds, and every connection must either complete or abort with the
// progress timeout inside a computable bound. Afterward the endpoint
// memory accounts must have drained to zero and both hosts' sealed
// journals must verify and replay divergence-free with the fault
// timeline present as observer records.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/arp"
	"repro/internal/ethernet"
	"repro/internal/fault"
	"repro/internal/flight"
	"repro/internal/flight/seal"
	"repro/internal/ip"
	"repro/internal/pcap"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tcp"
	"repro/internal/wire"
)

type soakHost struct {
	TCP *tcp.TCP
	A   ip.Addr
	H   *stats.HardenMIB
}

// buildPair assembles client (host 1) and server (host 2) on one
// segment with static ARP, mirroring the adversary soak's rig minus the
// attacker — here the wire itself is the adversary.
func buildPair(s *sim.Scheduler, seg *wire.Segment, ccfg, scfg tcp.Config) (client, server soakHost) {
	mk := func(n byte, cfg tcp.Config) soakHost {
		addr := ip.HostAddr(n)
		port := seg.NewPort(addr.String(), nil)
		eth := ethernet.New(port, ethernet.HostAddr(n), ethernet.Config{})
		res := arp.New(s, eth, addr, arp.Config{})
		res.AddStatic(ip.HostAddr(1), ethernet.HostAddr(1))
		res.AddStatic(ip.HostAddr(2), ethernet.HostAddr(2))
		ipl := ip.New(s, eth, res, ip.Config{Local: addr})
		return soakHost{TCP: tcp.New(s, ipl.Network(ip.ProtoTCP), cfg), A: addr, H: cfg.Harden}
	}
	return mk(1, ccfg), mk(2, scfg)
}

func hardened(over tcp.Config) tcp.Config {
	over.Harden = &stats.HardenMIB{}
	return over
}

// TestKeepalivePartitionAborts: a partitioned *idle* connection has no
// retransmission timer to notice the dead peer, so keepalive is the
// only way out. The client must send exactly KeepaliveCount probes,
// abort with ErrTimeout (the keepalive path keeps the classic timeout
// error; ErrProgressTimeout is reserved for stalled *transfers*), free
// its memory-account charge, and leave the connection tables clean.
func TestKeepalivePartitionAborts(t *testing.T) {
	const idle, count = 2 * time.Second, 3
	s := sim.New(sim.Config{})
	s.Run(func() {
		seg := wire.NewSegment(s, wire.Config{}, nil)
		ccfg := hardened(tcp.Config{Keepalive: true, KeepaliveIdle: idle, KeepaliveCount: count})
		scfg := hardened(tcp.Config{})
		client, server := buildPair(s, seg, ccfg, scfg)

		got := 0
		server.TCP.Listen(80, func(c *tcp.Conn) tcp.Handler {
			return tcp.Handler{Data: func(c *tcp.Conn, d []byte) { got += len(d) }}
		})
		var cerrs []error
		conn, err := client.TCP.Open(server.A, 80, tcp.Handler{
			Error: func(c *tcp.Conn, err error) { cerrs = append(cerrs, err) },
		})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		payload := make([]byte, 64<<10)
		if err := conn.Write(payload); err != nil {
			t.Fatalf("write: %v", err)
		}
		for got < len(payload) {
			s.Sleep(10 * time.Millisecond)
		}
		// Idle means *fully* quiescent: wait until the server's (possibly
		// delayed) final ACK lands and the client releases its last send
		// charge, or a leftover retransmission would pollute the exact
		// frame counts below.
		for client.H.MemBytes.Load() > 0 {
			s.Sleep(10 * time.Millisecond)
		}
		s.Sleep(500 * time.Millisecond)
		// The sender charges queued-but-unacked bytes; the receiver hands
		// in-order data straight to the upcall, so only the client side
		// is guaranteed a non-zero high-water to make the drain real.
		if client.H.MemBytes.High() == 0 {
			t.Fatal("transfer never charged the memory account; drain assertion would be vacuous")
		}

		// Split the pair. The connection is idle: no data in flight, no
		// rexmit timer, so only the keepalive clock is running.
		sent, cut := seg.Stats().Sent, seg.Stats().Cut
		seg.Partition(map[string]int{client.A.String(): 0, server.A.String(): 1})
		s.Sleep(sim.Duration(count+3) * idle)

		// Exactly KeepaliveCount probes, then the abort's RST — nothing
		// else touches the wire while the pair is idle and split, and
		// every one of those frames is suppressed by the partition.
		if d := seg.Stats().Sent - sent; d != count+1 {
			t.Errorf("%d frames sent during the partition, want %d probes + 1 RST", d, count)
		}
		if d := seg.Stats().Cut - cut; d != count+1 {
			t.Errorf("partition cut %d deliveries, want %d", d, count+1)
		}
		if len(cerrs) != 1 || cerrs[0] != tcp.ErrTimeout {
			t.Errorf("client errors = %v, want exactly [ErrTimeout]", cerrs)
		}
		if got := conn.State(); got != tcp.StateClosed {
			t.Errorf("client state %v after keepalive gave up, want Closed", got)
		}
		if err := conn.Write([]byte("x")); err != tcp.ErrTimeout {
			t.Errorf("Write after abort = %v, want the sticky ErrTimeout", err)
		}
		if n := client.TCP.ActiveConns(); n != 0 {
			t.Errorf("client demux table holds %d connections, want 0", n)
		}
		// The aborted connection's charges are released; the server
		// delivered everything it received, so its account is empty too.
		if m := client.H.MemBytes.Load(); m != 0 {
			t.Errorf("client memory account holds %d bytes after abort, want 0", m)
		}
		if m := server.H.MemBytes.Load(); m != 0 {
			t.Errorf("server memory account holds %d bytes, want 0", m)
		}
		if h := client.H.HalfOpen.Load() + server.H.HalfOpen.Load(); h != 0 {
			t.Errorf("half-open tables hold %d entries, want 0", h)
		}
	})
}

// recoverSchedule hurts the wire in every scripted way but clears each
// condition well inside the user timeout, so the transfer must survive
// and complete. abortSchedule splits the pair and never heals, so the
// client's transfer must die with ErrProgressTimeout.
const recoverSchedule = `# scenario: soak-recover — flap, burst, split, squeeze; all healed
200ms linkdown C
700ms linkup C
1s burstloss 0.05 0.25 0.01 0.6
3s burstend
4s partition C | S
9s heal
10s ratelimit 1000000
11s delayspike 20ms
12s delayclear
13s rateclear
`

const abortSchedule = `# scenario: soak-abort — a partition that never heals
1s partition C | S
`

// runPartitionSoak drives one seed through one arm. In the recover arm
// the 1 MiB transfer must complete within Horizon + Outage +
// UserTimeout (the computable bound: after the horizon the wire is
// healthy, no stall outlives one capped RTO, and a transfer that could
// not progress would have aborted at the user timeout). In the abort
// arm the client must surface ErrProgressTimeout within UserTimeout +
// 2×BackoffCeiling of the split, and the server's keepalive must reap
// its half of the connection, so both memory accounts drain to zero.
func runPartitionSoak(t *testing.T, seed uint64, heal bool) {
	t.Helper()
	const userTimeout = 30 * time.Second
	const ceiling = 2 * time.Second
	name, text := "soak-recover", recoverSchedule
	if !heal {
		name, text = "soak-abort", abortSchedule
	}
	sc, err := fault.Parse(name, strings.NewReader(text))
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}

	var capture bytes.Buffer
	csink := &seal.MemSink{Prefix: "client"}
	ssink := &seal.MemSink{Prefix: "server"}
	sealOpts := seal.Options{BatchSize: 64, SegmentBytes: 256 << 10}
	crec := flight.NewRecorder(seal.NewWriter(csink, sealOpts))
	srec := flight.NewRecorder(seal.NewWriter(ssink, sealOpts))
	pw := pcap.NewWriter(&capture)
	mib := &stats.FaultMIB{}

	s := sim.New(sim.Config{})
	s.Run(func() {
		seg := wire.NewSegment(s, wire.Config{Seed: seed, Loss: 0.02}, nil)
		seg.SetTap(func(from string, data []byte) { pw.WritePacket(s.Now(), data) })
		ccfg := hardened(tcp.Config{InitialWindow: 32 << 10,
			UserTimeout: userTimeout, BackoffCeiling: ceiling})
		ccfg.Flight = crec
		scfg := hardened(tcp.Config{InitialWindow: 32 << 10, MemoryLimit: 1 << 20,
			UserTimeout: userTimeout, BackoffCeiling: ceiling})
		scfg.Flight = srec
		if !heal {
			// The server side of a never-healed partition has no
			// retransmissions pending, so only keepalive can reap it
			// (and its reassembly-buffer charges) — see
			// TestKeepalivePartitionAborts for the focused version.
			scfg.Keepalive = true
			scfg.KeepaliveIdle = 8 * time.Second
			scfg.KeepaliveCount = 3
		}
		client, server := buildPair(s, seg, ccfg, scfg)

		var rcv bytes.Buffer
		server.TCP.Listen(80, func(c *tcp.Conn) tcp.Handler {
			return tcp.Handler{
				Data:       func(c *tcp.Conn, d []byte) { rcv.Write(d) },
				PeerClosed: func(c *tcp.Conn) { c.Shutdown() },
			}
		})

		var cerrs []error
		var abortAt sim.Time
		conn, err := client.TCP.Open(server.A, 80, tcp.Handler{
			Error: func(c *tcp.Conn, err error) { cerrs = append(cerrs, err); abortAt = s.Now() },
		})
		if err != nil {
			t.Errorf("seed %d open: %v", seed, err)
			return
		}
		// The schedule's offsets are measured from an established
		// connection: the faults stress the transfer, not the handshake.
		runner := fault.Start(s, seg, sc, fault.Options{
			MIB:       mib,
			Recorders: []*flight.Recorder{crec, srec},
			PortAlias: map[string]string{"C": client.A.String(), "S": server.A.String()},
		})
		start := s.Now()
		werr := conn.Write(payload)
		if heal {
			if werr != nil {
				t.Errorf("seed %d write: %v", seed, werr)
				return
			}
			if err := conn.Close(); err != nil {
				t.Errorf("seed %d close: %v", seed, err)
				return
			}
			bound := sim.Time(sc.Horizon()) + sim.Time(sc.Outage()) + sim.Time(userTimeout)
			deadline := start + bound
			for rcv.Len() < len(payload) && s.Now() < deadline {
				s.Sleep(5 * time.Millisecond)
			}
			elapsed := sim.Duration(s.Now() - start)
			if !bytes.Equal(rcv.Bytes(), payload) {
				t.Errorf("seed %d: delivered %d/%d bytes or corrupt stream within the %v bound",
					seed, rcv.Len(), len(payload), sim.Duration(bound))
			}
			if len(cerrs) != 0 {
				t.Errorf("seed %d: connection errors %v on a fully-healed schedule", seed, cerrs)
			}
			healAt := sim.Time(9 * time.Second) // the schedule's heal offset
			recovery := sim.Duration(0)
			if done := s.Now(); done > start+healAt && rcv.Len() == len(payload) {
				recovery = sim.Duration(done - (start + healAt))
			}
			t.Logf("seed %d recover: elapsed %v (bound %v), post-heal recovery %v, retransmits %d",
				seed, elapsed, sim.Duration(bound), recovery, conn.Stats().Retransmits)
			s.Sleep(5 * time.Second) // drain FINs and delayed ACKs
		} else {
			// A writer blocked on buffer space is woken by the abort and
			// gets the progress-timeout error straight from Write — the
			// distinguishable ETIMEDOUT-style surface the fault plane
			// promises. A small payload could also be fully buffered
			// before the split, in which case Write returns nil and the
			// error arrives through the handler instead.
			if werr != nil && werr != tcp.ErrProgressTimeout {
				t.Errorf("seed %d write: %v, want nil or ErrProgressTimeout", seed, werr)
				return
			}
			// The split at 1s strands unacked data in the client's
			// retransmission queue; the progress timeout must fire.
			partitionAt := start + sim.Time(time.Second)
			deadline := partitionAt + sim.Time(userTimeout) + 2*sim.Time(ceiling) + sim.Time(2*time.Second)
			for len(cerrs) == 0 && s.Now() < deadline {
				s.Sleep(10 * time.Millisecond)
			}
			if len(cerrs) == 0 || cerrs[0] != tcp.ErrProgressTimeout {
				t.Errorf("seed %d: client errors %v by %v, want [ErrProgressTimeout]",
					seed, cerrs, sim.Duration(deadline-start))
			} else {
				t.Logf("seed %d abort: progress timeout after %v of partition (bound %v)",
					seed, sim.Duration(abortAt-partitionAt), sim.Duration(deadline-partitionAt))
			}
			if err := conn.Write([]byte("x")); err != tcp.ErrProgressTimeout {
				t.Errorf("seed %d: Write after abort = %v, want sticky ErrProgressTimeout", seed, err)
			}
			// Keepalive reaps the server's half within its own bound.
			srvDeadline := s.Now() + sim.Time(time.Minute)
			for server.TCP.ActiveConns() > 0 && s.Now() < srvDeadline {
				s.Sleep(50 * time.Millisecond)
			}
			if n := server.TCP.ActiveConns(); n != 0 {
				t.Errorf("seed %d: server still holds %d connections after keepalive bound", seed, n)
			}
		}

		// Memory accounts drain to zero on both sides — a partition
		// storm must not pin the endpoint at its MemoryLimit ceiling.
		if client.H.MemBytes.High() == 0 {
			t.Errorf("seed %d: client account never charged; drain assertion vacuous", seed)
		}
		if m := client.H.MemBytes.Load(); m != 0 {
			t.Errorf("seed %d: client memory account holds %d bytes after soak, want 0", seed, m)
		}
		if m := server.H.MemBytes.Load(); m != 0 {
			t.Errorf("seed %d: server memory account holds %d bytes after soak, want 0", seed, m)
		}

		if !runner.Done() || runner.Applied() != len(sc.Transitions) {
			t.Errorf("seed %d: schedule applied %d/%d transitions (done=%v)",
				seed, runner.Applied(), len(sc.Transitions), runner.Done())
		}
		if got := mib.Transitions.Load(); got != uint64(len(sc.Transitions)) {
			t.Errorf("seed %d: FaultMIB.Transitions = %d, want %d", seed, got, len(sc.Transitions))
		}
		if heal {
			if a := mib.Active.Load(); a != 0 {
				t.Errorf("seed %d: %d fault conditions still active after a fully-cleared schedule", seed, a)
			}
		}
	})

	if err := crec.Sync(); err != nil {
		t.Errorf("seed %d client journal sync: %v", seed, err)
	}
	if err := srec.Sync(); err != nil {
		t.Errorf("seed %d server journal sync: %v", seed, err)
	}
	auditFaultJournal(t, seed, name, "client", csink, len(sc.Transitions))
	auditFaultJournal(t, seed, name, "server", ssink, len(sc.Transitions))

	if t.Failed() {
		files := map[string][]byte{
			"wire.pcap":      capture.Bytes(),
			name + ".fsched": []byte(text),
		}
		for _, sink := range []*seal.MemSink{csink, ssink} {
			for i, b := range sink.Segs {
				files[seal.SegmentName(sink.Prefix, i)] = b.Bytes()
			}
		}
		dumpArtifacts(t, seed, name, files)
	}
}

// auditFaultJournal: the sealed chain verifies, the journal carries the
// full fault timeline as observer records, and the sharded parallel
// replay reproduces every recorded TCB delta with those records present.
func auditFaultJournal(t *testing.T, seed uint64, arm, who string, sink *seal.MemSink, wantFaults int) {
	t.Helper()
	id := fmt.Sprintf("seed %d %s %s", seed, arm, who)
	if _, err := seal.Verify(sink.Sources(), nil); err != nil {
		t.Errorf("%s verify: %v", id, err)
		return
	}
	var recs []flight.Record
	for i, b := range sink.Segs {
		part, err := flight.ReadAll(bytes.NewReader(b.Bytes()))
		if err != nil {
			t.Errorf("%s segment %d: %v", id, i, err)
			return
		}
		recs = append(recs, part...)
	}
	faults := 0
	for _, r := range recs {
		if r.Kind == flight.KindFault {
			faults++
		}
	}
	if faults != wantFaults {
		t.Errorf("%s: journal carries %d fault records, want %d", id, faults, wantFaults)
	}
	res, err := tcp.ReplayJournalParallel(recs, 4)
	if err != nil {
		t.Errorf("%s replay: %v", id, err)
		return
	}
	for _, d := range res.Divergences {
		t.Errorf("%s replay divergence: %v", id, d)
	}
}

// dumpArtifacts writes a failing run's schedule, sealed journal
// segments, and pcap into $CHAOS_OUT for the CI job to upload.
func dumpArtifacts(t *testing.T, seed uint64, arm string, files map[string][]byte) {
	t.Helper()
	dir := os.Getenv("CHAOS_OUT")
	if dir == "" {
		return
	}
	sub := filepath.Join(dir, fmt.Sprintf("fault_seed%d_%s", seed, arm))
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Logf("chaos artifacts: %v", err)
		return
	}
	for name, data := range files {
		path := filepath.Join(sub, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Logf("chaos artifacts: %v", err)
			continue
		}
		t.Logf("chaos artifact: %s (%d bytes)", path, len(data))
	}
}

// TestPartitionSoak: both arms at every fixed seed.
func TestPartitionSoak(t *testing.T) {
	for _, seed := range []uint64{1, 3, 5, 7} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runPartitionSoak(t, seed, true)
			runPartitionSoak(t, seed, false)
		})
	}
}
