package basis

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPacketNewCopiesPayload(t *testing.T) {
	data := []byte("hello world")
	p := NewPacket(40, 4, data)
	data[0] = 'X' // mutate the source; the packet must hold its own copy
	if !bytes.Equal(p.Bytes(), []byte("hello world")) {
		t.Fatalf("payload aliased caller data: %q", p.Bytes())
	}
	if p.Headroom() != 40 || p.Tailroom() != 4 {
		t.Fatalf("headroom=%d tailroom=%d", p.Headroom(), p.Tailroom())
	}
}

func TestPacketPushPullRoundTrip(t *testing.T) {
	p := NewPacket(20+20, 0, []byte("payload"))
	// TCP header (20 bytes) then IP header (20 bytes), written in place.
	tcph := p.Push(20)
	copy(tcph, []byte("TCPHDR"))
	iph := p.Push(20)
	copy(iph, []byte("IPHDR"))
	if p.Len() != 47 {
		t.Fatalf("Len after pushes = %d", p.Len())
	}

	// Receive side: strip in the opposite order.
	gotIP := p.Pull(20)
	if !bytes.HasPrefix(gotIP, []byte("IPHDR")) {
		t.Fatalf("IP header corrupted: %q", gotIP[:5])
	}
	gotTCP := p.Pull(20)
	if !bytes.HasPrefix(gotTCP, []byte("TCPHDR")) {
		t.Fatalf("TCP header corrupted: %q", gotTCP[:6])
	}
	if string(p.Bytes()) != "payload" {
		t.Fatalf("payload corrupted: %q", p.Bytes())
	}
}

func TestPacketPushPanicsWithoutHeadroom(t *testing.T) {
	p := NewPacket(4, 0, []byte("x"))
	defer func() {
		if recover() == nil {
			t.Fatal("Push beyond headroom did not panic")
		}
	}()
	p.Push(5)
}

func TestPacketPullBeyondViewReturnsNil(t *testing.T) {
	p := NewPacket(0, 0, []byte("abc"))
	if got := p.Pull(4); got != nil {
		t.Fatalf("Pull(4) on 3-byte packet = %v", got)
	}
	if got := p.Pull(-1); got != nil {
		t.Fatal("Pull(-1) returned non-nil")
	}
	if p.Len() != 3 {
		t.Fatal("failed Pull consumed bytes")
	}
}

func TestPacketExtendAndTrimTail(t *testing.T) {
	p := NewPacket(0, 4, []byte("data"))
	fcs := p.Extend(4)
	copy(fcs, []byte{1, 2, 3, 4})
	if p.Len() != 8 {
		t.Fatalf("Len after Extend = %d", p.Len())
	}
	if !p.TrimTail(4) {
		t.Fatal("TrimTail failed")
	}
	if string(p.Bytes()) != "data" {
		t.Fatalf("payload after trim = %q", p.Bytes())
	}
	if p.TrimTail(5) {
		t.Fatal("TrimTail(5) on 4-byte view succeeded")
	}
}

func TestPacketExtendPanicsWithoutTailroom(t *testing.T) {
	p := NewPacket(0, 2, []byte("x"))
	defer func() {
		if recover() == nil {
			t.Fatal("Extend beyond tailroom did not panic")
		}
	}()
	p.Extend(3)
}

func TestPacketTrimTo(t *testing.T) {
	p := FromWire([]byte("totallen-padding"))
	if !p.TrimTo(8) {
		t.Fatal("TrimTo failed")
	}
	if string(p.Bytes()) != "totallen" {
		t.Fatalf("TrimTo view = %q", p.Bytes())
	}
	if p.TrimTo(9) {
		t.Fatal("TrimTo beyond view succeeded")
	}
	if !p.TrimTo(0) {
		t.Fatal("TrimTo(0) failed")
	}
}

func TestPacketFromWire(t *testing.T) {
	raw := []byte{0xde, 0xad}
	p := FromWire(raw)
	if p.Len() != 2 || p.Headroom() != 0 || p.Tailroom() != 0 {
		t.Fatalf("FromWire geometry wrong: %s", p)
	}
}

func TestPacketCloneIsDeep(t *testing.T) {
	p := NewPacket(8, 0, []byte("abcd"))
	p.Push(2)
	c := p.Clone()
	p.Bytes()[0] = 0xff
	if c.Bytes()[0] == 0xff {
		t.Fatal("Clone shares storage with original")
	}
	if c.Len() != p.Len() || c.Headroom() != p.Headroom() {
		t.Fatal("Clone geometry differs")
	}
}

func TestAllocPacketZeroed(t *testing.T) {
	p := AllocPacket(4, 4, 16)
	for i, b := range p.Bytes() {
		if b != 0 {
			t.Fatalf("byte %d not zero", i)
		}
	}
	if p.Len() != 16 {
		t.Fatalf("Len = %d", p.Len())
	}
}

func TestAllocPacketPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative size did not panic")
		}
	}()
	AllocPacket(-1, 0, 0)
}

// Property: pushing then pulling n bytes is the identity on the payload
// view for any payload and any split of pushes.
func TestPacketPropertyPushPullIdentity(t *testing.T) {
	f := func(payload []byte, a, b uint8) bool {
		p := NewPacket(int(a)+int(b), 0, payload)
		p.Push(int(a))
		p.Push(int(b))
		p.Pull(int(b))
		p.Pull(int(a))
		return bytes.Equal(p.Bytes(), payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
