package basis

import (
	"testing"
	"testing/quick"
)

func TestFIFOZeroValue(t *testing.T) {
	var q FIFO[int]
	if !q.Empty() || q.Len() != 0 {
		t.Fatalf("zero FIFO not empty: len=%d", q.Len())
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("Dequeue on empty FIFO reported ok")
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty FIFO reported ok")
	}
}

func TestFIFOOrdering(t *testing.T) {
	var q FIFO[int]
	for i := 0; i < 100; i++ {
		q.Enqueue(i)
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d, want 100", q.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("Dequeue #%d = %d,%v; want %d,true", i, v, ok, i)
		}
	}
	if !q.Empty() {
		t.Fatal("FIFO not empty after draining")
	}
}

func TestFIFOInterleaved(t *testing.T) {
	var q FIFO[int]
	next := 0
	expect := 0
	// Interleave enqueues and dequeues so the ring wraps repeatedly.
	for round := 0; round < 50; round++ {
		for i := 0; i < 3; i++ {
			q.Enqueue(next)
			next++
		}
		for i := 0; i < 2; i++ {
			v, ok := q.Dequeue()
			if !ok || v != expect {
				t.Fatalf("round %d: got %d,%v want %d,true", round, v, ok, expect)
			}
			expect++
		}
	}
	for !q.Empty() {
		v, _ := q.Dequeue()
		if v != expect {
			t.Fatalf("drain: got %d want %d", v, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained %d items, enqueued %d", expect, next)
	}
}

func TestFIFOPeekDoesNotRemove(t *testing.T) {
	var q FIFO[string]
	q.Enqueue("a")
	q.Enqueue("b")
	if v, _ := q.Peek(); v != "a" {
		t.Fatalf("Peek = %q, want a", v)
	}
	if q.Len() != 2 {
		t.Fatalf("Peek changed Len to %d", q.Len())
	}
}

func TestFIFOClear(t *testing.T) {
	var q FIFO[int]
	for i := 0; i < 20; i++ {
		q.Enqueue(i)
	}
	q.Clear()
	if !q.Empty() {
		t.Fatal("Clear left elements")
	}
	q.Enqueue(7)
	if v, _ := q.Dequeue(); v != 7 {
		t.Fatalf("FIFO broken after Clear: got %d", v)
	}
}

func TestFIFODo(t *testing.T) {
	var q FIFO[int]
	for i := 0; i < 5; i++ {
		q.Enqueue(i * 10)
	}
	var seen []int
	q.Do(func(v int) { seen = append(seen, v) })
	for i, v := range seen {
		if v != i*10 {
			t.Fatalf("Do order wrong at %d: %v", i, seen)
		}
	}
	if q.Len() != 5 {
		t.Fatal("Do consumed elements")
	}
}

// Property: for any sequence of values, enqueue-all then dequeue-all
// returns the same sequence.
func TestFIFOPropertyPreservesSequence(t *testing.T) {
	f := func(vals []uint16) bool {
		var q FIFO[uint16]
		for _, v := range vals {
			q.Enqueue(v)
		}
		for _, v := range vals {
			got, ok := q.Dequeue()
			if !ok || got != v {
				return false
			}
		}
		return q.Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
