package basis

import (
	"fmt"
	"io"
)

// Tracer is the event-trace facility behind the paper's do_prints and
// do_traces functor parameters (Fig. 4). Each protocol module owns a
// Tracer named after it; when disabled a trace call costs one branch, so
// production stacks can be assembled with tracing compiled in but off.
//
// Stamp, when non-nil, prefixes each line — the scheduler installs a
// virtual-clock stamp so traces read like tcpdump output in simulated
// time.
type Tracer struct {
	Name    string
	Out     io.Writer
	Enabled bool
	Stamp   func() string
}

// NewTracer returns a tracer for the named module writing to out. A nil
// out leaves the tracer permanently disabled.
func NewTracer(name string, out io.Writer, enabled bool) *Tracer {
	return &Tracer{Name: name, Out: out, Enabled: enabled && out != nil}
}

// On reports whether tracing is active; hot paths guard Printf calls
// with it so a disabled tracer costs one branch and no argument
// marshalling — the paper's do_prints=false compiled the prints away.
func (t *Tracer) On() bool { return t != nil && t.Enabled && t.Out != nil }

// Printf emits one trace line if the tracer is enabled. It shares On's
// invariant exactly: a literal Tracer{Enabled: true} with no Out is off,
// not a panic.
func (t *Tracer) Printf(format string, args ...any) {
	if !t.On() {
		return
	}
	stamp := ""
	if t.Stamp != nil {
		stamp = t.Stamp() + " "
	}
	fmt.Fprintf(t.Out, "%s%s: %s\n", stamp, t.Name, fmt.Sprintf(format, args...))
}

// Sub returns a tracer for a named sub-module sharing this tracer's
// output, effective enablement, and stamp. Enablement is normalized
// through On, so a child of a Tracer{Enabled: true} literal with no Out
// reports off just like its parent instead of carrying the stale flag.
func (t *Tracer) Sub(name string) *Tracer {
	if t == nil {
		return nil
	}
	return &Tracer{Name: t.Name + "/" + name, Out: t.Out, Enabled: t.On(), Stamp: t.Stamp}
}
