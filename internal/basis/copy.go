package basis

import "encoding/binary"

// This file reproduces the paper's §5 copy study. The paper's SML copy
// routine ran at ~300 µs/KB against bcopy's 61 µs/KB because "the current
// compiler fails to optimize accesses to successive elements of arrays and
// thus checks array bounds on every access and recomputes pointers on
// every access". We provide the same three points on that spectrum:
//
//   IndexedCopy — a per-byte indexed loop, the shape the SML compiler was
//                 forced to emit (every access bounds-checked).
//   WordCopy    — an explicitly word-at-a-time loop, the hand-staged
//                 improvement the paper anticipated.
//   the builtin copy — the bcopy analogue (used everywhere off the
//                 benchmark path).
//
// The E-copy benchmark measures all three; the protocol stack itself uses
// the builtin, as the paper used bcopy-equivalent paths wherever it could.

// IndexedCopy copies min(len(dst), len(src)) bytes one at a time through
// indexed accesses and returns the number of bytes copied.
func IndexedCopy(dst, src []byte) int {
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = src[i]
	}
	return n
}

// WordCopy copies min(len(dst), len(src)) bytes, moving eight bytes at a
// time while both slices allow it and finishing with a byte loop. It
// returns the number of bytes copied.
func WordCopy(dst, src []byte) int {
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	i := 0
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(src[i:]))
	}
	for ; i < n; i++ {
		dst[i] = src[i]
	}
	return n
}
