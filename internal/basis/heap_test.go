package basis

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestHeapEmpty(t *testing.T) {
	h := NewHeap[int](func(a, b int) bool { return a < b })
	if !h.Empty() || h.Len() != 0 {
		t.Fatal("new heap not empty")
	}
	if _, ok := h.Pop(); ok {
		t.Fatal("Pop on empty heap reported ok")
	}
	if _, ok := h.Min(); ok {
		t.Fatal("Min on empty heap reported ok")
	}
}

func TestHeapSortsDescendingInput(t *testing.T) {
	h := NewHeap[int](func(a, b int) bool { return a < b })
	for i := 100; i > 0; i-- {
		h.Push(i)
	}
	for want := 1; want <= 100; want++ {
		v, ok := h.Pop()
		if !ok || v != want {
			t.Fatalf("Pop = %d,%v; want %d", v, ok, want)
		}
	}
}

func TestHeapMinDoesNotRemove(t *testing.T) {
	h := NewHeap[int](func(a, b int) bool { return a < b })
	h.Push(5)
	h.Push(2)
	h.Push(9)
	if v, _ := h.Min(); v != 2 {
		t.Fatalf("Min = %d", v)
	}
	if h.Len() != 3 {
		t.Fatal("Min consumed an element")
	}
}

func TestHeapStructKeys(t *testing.T) {
	type sleeper struct {
		wake int64
		id   int
	}
	h := NewHeap[sleeper](func(a, b sleeper) bool { return a.wake < b.wake })
	h.Push(sleeper{30, 1})
	h.Push(sleeper{10, 2})
	h.Push(sleeper{20, 3})
	order := []int{2, 3, 1}
	for _, want := range order {
		s, _ := h.Pop()
		if s.id != want {
			t.Fatalf("wake order wrong: got id %d want %d", s.id, want)
		}
	}
}

// Property: popping everything yields a sorted permutation of the input.
func TestHeapPropertyHeapsort(t *testing.T) {
	f := func(vals []int32) bool {
		h := NewHeap[int32](func(a, b int32) bool { return a < b })
		for _, v := range vals {
			h.Push(v)
		}
		out := make([]int32, 0, len(vals))
		for !h.Empty() {
			v, _ := h.Pop()
			out = append(out, v)
		}
		if len(out) != len(vals) {
			return false
		}
		want := append([]int32(nil), vals...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if out[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: after any interleaving of pushes and pops, Min is always the
// smallest live element.
func TestHeapPropertyMinInvariant(t *testing.T) {
	f := func(ops []int16) bool {
		h := NewHeap[int16](func(a, b int16) bool { return a < b })
		var live []int16
		for _, v := range ops {
			if v%3 == 0 && len(live) > 0 {
				got, _ := h.Pop()
				minIdx := 0
				for i, lv := range live {
					if lv < live[minIdx] {
						minIdx = i
					}
				}
				if got != live[minIdx] {
					return false
				}
				live = append(live[:minIdx], live[minIdx+1:]...)
			} else {
				h.Push(v)
				live = append(live, v)
			}
		}
		return h.Len() == len(live)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
