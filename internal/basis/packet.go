package basis

import "fmt"

// Packet is a byte buffer with reserved header headroom and trailer
// tailroom, the analogue of the paper's Send_Packet.T / Receive_Packet.T.
//
// It exists to realize the paper's single-copy data path: user payload is
// copied exactly once, into a buffer that already reserves space for every
// header the stack below will prepend. On the way down each layer calls
// Push to extend the view over its header bytes and writes the header in
// place; on the way up each layer calls Pull to strip its header. No layer
// boundary copies data.
type Packet struct {
	buf []byte // backing store
	off int    // start of the current view within buf
	end int    // one past the last data byte within buf
}

// NewPacket returns a packet whose payload is a copy of data, with
// headroom bytes reserved in front for headers and tailroom bytes behind
// for trailers. This is the single copy of the send path.
func NewPacket(headroom, tailroom int, data []byte) *Packet {
	if headroom < 0 || tailroom < 0 {
		panic("basis.NewPacket: negative headroom/tailroom")
	}
	p := AllocPacket(headroom, tailroom, len(data))
	copy(p.buf[p.off:], data)
	return p
}

// AllocPacket returns a packet with a zeroed payload of size bytes and the
// given headroom and tailroom. Callers fill the payload via Bytes.
func AllocPacket(headroom, tailroom, size int) *Packet {
	if headroom < 0 || tailroom < 0 || size < 0 {
		panic("basis.AllocPacket: negative size")
	}
	buf := make([]byte, headroom+size+tailroom)
	return &Packet{buf: buf, off: headroom, end: headroom + size}
}

// FromWire wraps raw received bytes as a packet with no headroom; the
// receive path strips headers from it with Pull. The packet takes
// ownership of raw.
func FromWire(raw []byte) *Packet {
	return &Packet{buf: raw, off: 0, end: len(raw)}
}

// Bytes returns the current view: all data from the first pushed header to
// the end of the payload. The slice aliases the packet's storage.
func (p *Packet) Bytes() []byte { return p.buf[p.off:p.end] }

// Len reports the length of the current view.
func (p *Packet) Len() int { return p.end - p.off }

// Headroom reports how many bytes of header space remain in front.
func (p *Packet) Headroom() int { return p.off }

// Tailroom reports how many bytes of trailer space remain behind.
func (p *Packet) Tailroom() int { return len(p.buf) - p.end }

// Push extends the view n bytes toward the front and returns the newly
// exposed header region for the caller to fill in place. It panics if the
// packet was built with insufficient headroom — that is a stack-assembly
// bug (a layer was composed under a stack that reserved no room for it),
// the kind of mismatch the paper's functor signatures catch at compile
// time and we surface as early as possible at run time.
func (p *Packet) Push(n int) []byte {
	if n < 0 || n > p.off {
		panic(fmt.Sprintf("basis.Packet.Push(%d): only %d bytes of headroom", n, p.off))
	}
	p.off -= n
	return p.buf[p.off : p.off+n]
}

// Pull strips n bytes from the front of the view — a received header —
// and returns them. It returns nil if fewer than n bytes remain.
func (p *Packet) Pull(n int) []byte {
	if n < 0 || n > p.Len() {
		return nil
	}
	h := p.buf[p.off : p.off+n]
	p.off += n
	return h
}

// Extend grows the view n bytes at the tail and returns the newly exposed
// trailer region (for, e.g., an Ethernet FCS). It panics if the packet was
// built with insufficient tailroom.
func (p *Packet) Extend(n int) []byte {
	if n < 0 || n > p.Tailroom() {
		panic(fmt.Sprintf("basis.Packet.Extend(%d): only %d bytes of tailroom", n, p.Tailroom()))
	}
	t := p.buf[p.end : p.end+n]
	p.end += n
	return t
}

// TrimTail removes n bytes from the tail of the view (a received trailer).
// It reports false if fewer than n bytes remain.
func (p *Packet) TrimTail(n int) bool {
	if n < 0 || n > p.Len() {
		return false
	}
	p.end -= n
	return true
}

// TrimTo shortens the view to n bytes, discarding any trailing bytes (for
// example link-layer padding beyond the IP total length). It reports false
// if the view is already shorter than n.
func (p *Packet) TrimTo(n int) bool {
	if n < 0 || n > p.Len() {
		return false
	}
	p.end = p.off + n
	return true
}

// Clone returns a deep copy of the packet, preserving remaining headroom
// and tailroom. The simulated device boundary uses it to model the one
// copy the paper attributes to the Mach kernel.
func (p *Packet) Clone() *Packet {
	buf := make([]byte, len(p.buf))
	copy(buf, p.buf)
	return &Packet{buf: buf, off: p.off, end: p.end}
}

// String summarizes the packet for traces.
func (p *Packet) String() string {
	return fmt.Sprintf("packet[len=%d headroom=%d tailroom=%d]", p.Len(), p.Headroom(), p.Tailroom())
}
