package basis

// Heap is a binary min-heap priority queue. The paper's scheduler keeps
// its sleep queue in exactly this structure ("the sleep queue, a priority
// queue implemented as a heap, is also quite fast"), and the paper proposes
// replacing the scheduler's ready FIFO with a priority queue to prioritize
// latency-sensitive actions; both uses are served by this type.
//
// less must define a strict weak ordering. Construct with NewHeap.
type Heap[T any] struct {
	items []T
	less  func(a, b T) bool
}

// NewHeap returns an empty heap ordered by less (smallest first).
func NewHeap[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// Len reports the number of elements.
func (h *Heap[T]) Len() int { return len(h.items) }

// Empty reports whether the heap holds no elements.
func (h *Heap[T]) Empty() bool { return len(h.items) == 0 }

// Push inserts v.
func (h *Heap[T]) Push(v T) {
	h.items = append(h.items, v)
	h.up(len(h.items) - 1)
}

// Pop removes and returns the minimum element; false if empty.
func (h *Heap[T]) Pop() (T, bool) {
	var zero T
	n := len(h.items)
	if n == 0 {
		return zero, false
	}
	min := h.items[0]
	h.items[0] = h.items[n-1]
	h.items[n-1] = zero
	h.items = h.items[:n-1]
	if len(h.items) > 0 {
		h.down(0)
	}
	return min, true
}

// Min returns the minimum element without removing it; false if empty.
func (h *Heap[T]) Min() (T, bool) {
	var zero T
	if len(h.items) == 0 {
		return zero, false
	}
	return h.items[0], true
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(h.items[l], h.items[smallest]) {
			smallest = l
		}
		if r < n && h.less(h.items[r], h.items[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
