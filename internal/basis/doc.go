// Package basis provides the utility substrate the rest of the stack is
// built on, mirroring the Fox Project's FOX_BASIS structure: FIFO queues,
// double-ended queues, a binary-heap priority queue, deterministic
// pseudo-random numbers, packet buffers with header headroom for the
// single-copy data path, word-optimized byte copying, and an event-trace
// facility (the do_prints / do_traces functor parameters of the paper's
// Figure 4).
//
// Everything in this package is deliberately free of locks: the stack runs
// on the non-preemptive coroutine scheduler in internal/sim, so — exactly
// as the paper argues — data-structure locks are unnecessary.
package basis
