package basis

import (
	"bytes"
	"strings"
	"testing"
)

func TestTracerDisabledWritesNothing(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer("tcp", &buf, false)
	tr.Printf("should not appear %d", 1)
	if buf.Len() != 0 {
		t.Fatalf("disabled tracer wrote %q", buf.String())
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Printf("must not panic")
	sub := tr.Sub("x")
	if sub != nil {
		t.Fatal("nil tracer Sub returned non-nil")
	}
	sub.Printf("still must not panic")
}

func TestTracerNilOutputDisabled(t *testing.T) {
	tr := NewTracer("ip", nil, true)
	if tr.Enabled {
		t.Fatal("tracer with nil output claims enabled")
	}
	tr.Printf("no sink, no panic")
}

func TestTracerFormatsNameAndStamp(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer("eth", &buf, true)
	tr.Stamp = func() string { return "[17ms]" }
	tr.Printf("frame %d sent", 3)
	got := buf.String()
	if got != "[17ms] eth: frame 3 sent\n" {
		t.Fatalf("trace line = %q", got)
	}
}

// A Tracer built as a literal with Enabled set but no Out must behave
// exactly like a disabled one everywhere: On, Printf, and any Sub built
// from it.
func TestTracerLiteralWithoutOutIsOff(t *testing.T) {
	tr := &Tracer{Name: "tcp", Enabled: true}
	if tr.On() {
		t.Fatal("Tracer{Enabled: true, Out: nil} claims On")
	}
	tr.Printf("no sink, no panic")
	sub := tr.Sub("receive")
	if sub.On() {
		t.Fatal("Sub of out-less tracer claims On")
	}
	if sub.Enabled {
		t.Fatal("Sub copied the stale Enabled flag instead of normalizing through On")
	}
	sub.Printf("still no panic")
}

func TestTracerSubPropagatesStampAndEnablement(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer("tcp", &buf, true)
	tr.Stamp = func() string { return "@" }
	sub := tr.Sub("send")
	if !sub.On() {
		t.Fatal("Sub of an enabled tracer is off")
	}
	if sub.Stamp == nil {
		t.Fatal("Sub dropped the stamp")
	}
	off := NewTracer("tcp", &buf, false).Sub("send")
	if off.On() || off.Enabled {
		t.Fatal("Sub of a disabled tracer is on")
	}
}

func TestTracerSubInheritsSettings(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer("tcp", &buf, true)
	tr.Stamp = func() string { return "@" }
	sub := tr.Sub("receive")
	sub.Printf("segment")
	if !strings.Contains(buf.String(), "tcp/receive: segment") {
		t.Fatalf("sub trace line = %q", buf.String())
	}
	if !strings.HasPrefix(buf.String(), "@ ") {
		t.Fatalf("sub lost stamp: %q", buf.String())
	}
}
