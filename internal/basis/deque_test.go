package basis

import (
	"testing"
	"testing/quick"
)

func TestDequeZeroValue(t *testing.T) {
	var d Deque[int]
	if !d.Empty() || d.Len() != 0 {
		t.Fatal("zero Deque not empty")
	}
	if _, ok := d.PopFront(); ok {
		t.Fatal("PopFront on empty deque reported ok")
	}
	if _, ok := d.PopBack(); ok {
		t.Fatal("PopBack on empty deque reported ok")
	}
	if _, ok := d.Front(); ok {
		t.Fatal("Front on empty deque reported ok")
	}
	if _, ok := d.Back(); ok {
		t.Fatal("Back on empty deque reported ok")
	}
}

func TestDequeAsQueue(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 64; i++ {
		d.PushBack(i)
	}
	for i := 0; i < 64; i++ {
		v, ok := d.PopFront()
		if !ok || v != i {
			t.Fatalf("PopFront #%d = %d,%v", i, v, ok)
		}
	}
}

func TestDequeAsStack(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 64; i++ {
		d.PushBack(i)
	}
	for i := 63; i >= 0; i-- {
		v, ok := d.PopBack()
		if !ok || v != i {
			t.Fatalf("PopBack = %d,%v; want %d", v, ok, i)
		}
	}
}

func TestDequePushFront(t *testing.T) {
	var d Deque[int]
	// The TCP send path pushes a partially-consumed element back at the
	// front; emulate that access pattern.
	d.PushBack(2)
	d.PushBack(3)
	d.PushFront(1)
	d.PushFront(0)
	for i := 0; i < 4; i++ {
		v, _ := d.PopFront()
		if v != i {
			t.Fatalf("got %d want %d", v, i)
		}
	}
}

func TestDequeFrontBackAt(t *testing.T) {
	var d Deque[string]
	d.PushBack("a")
	d.PushBack("b")
	d.PushBack("c")
	if v, _ := d.Front(); v != "a" {
		t.Fatalf("Front = %q", v)
	}
	if v, _ := d.Back(); v != "c" {
		t.Fatalf("Back = %q", v)
	}
	if v, ok := d.At(1); !ok || v != "b" {
		t.Fatalf("At(1) = %q,%v", v, ok)
	}
	if _, ok := d.At(3); ok {
		t.Fatal("At(3) in a 3-element deque reported ok")
	}
	if _, ok := d.At(-1); ok {
		t.Fatal("At(-1) reported ok")
	}
	if d.Len() != 3 {
		t.Fatal("accessors consumed elements")
	}
}

func TestDequeWrapsThroughGrowth(t *testing.T) {
	var d Deque[int]
	// Force head to rotate before growth so grow() must unwrap the ring.
	for i := 0; i < 6; i++ {
		d.PushBack(i)
	}
	for i := 0; i < 4; i++ {
		d.PopFront()
	}
	for i := 6; i < 40; i++ {
		d.PushBack(i)
	}
	for want := 4; want < 40; want++ {
		v, ok := d.PopFront()
		if !ok || v != want {
			t.Fatalf("got %d,%v want %d", v, ok, want)
		}
	}
}

func TestDequeClearAndDo(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 10; i++ {
		d.PushBack(i)
	}
	sum := 0
	d.Do(func(v int) { sum += v })
	if sum != 45 {
		t.Fatalf("Do sum = %d", sum)
	}
	d.Clear()
	if !d.Empty() {
		t.Fatal("Clear left elements")
	}
}

// Property: a deque driven only from the back against a slice model
// behaves identically (mirrors the retransmission-queue usage).
func TestDequePropertyModelCheck(t *testing.T) {
	f := func(ops []uint8, vals []uint16) bool {
		var d Deque[uint16]
		var model []uint16
		vi := 0
		for _, op := range ops {
			switch op % 4 {
			case 0, 1: // push back
				if vi >= len(vals) {
					continue
				}
				d.PushBack(vals[vi])
				model = append(model, vals[vi])
				vi++
			case 2: // pop front
				got, ok := d.PopFront()
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				if !ok || got != model[0] {
					return false
				}
				model = model[1:]
			case 3: // pop back
				got, ok := d.PopBack()
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				if !ok || got != model[len(model)-1] {
					return false
				}
				model = model[:len(model)-1]
			}
			if d.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
