package basis

// FIFO is a first-in first-out queue, the paper's Q: FIFO structure.
// It is implemented as a growable ring buffer so Enqueue and Dequeue are
// amortized O(1) and steady-state operation performs no allocation, which
// matters on the per-segment to_do path.
//
// The zero value is an empty queue ready for use.
type FIFO[T any] struct {
	buf   []T
	head  int // index of the front element
	count int
}

// Len reports the number of queued elements.
func (q *FIFO[T]) Len() int { return q.count }

// Empty reports whether the queue holds no elements.
func (q *FIFO[T]) Empty() bool { return q.count == 0 }

// Enqueue appends v at the tail of the queue.
func (q *FIFO[T]) Enqueue(v T) {
	if q.count == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.count)%len(q.buf)] = v
	q.count++
}

// Dequeue removes and returns the front element. The second result is
// false if the queue is empty.
func (q *FIFO[T]) Dequeue() (T, bool) {
	var zero T
	if q.count == 0 {
		return zero, false
	}
	v := q.buf[q.head]
	q.buf[q.head] = zero // release references for the collector
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	return v, true
}

// Peek returns the front element without removing it. The second result is
// false if the queue is empty.
func (q *FIFO[T]) Peek() (T, bool) {
	var zero T
	if q.count == 0 {
		return zero, false
	}
	return q.buf[q.head], true
}

// Clear discards all elements, retaining the backing store.
func (q *FIFO[T]) Clear() {
	var zero T
	for i := 0; i < q.count; i++ {
		q.buf[(q.head+i)%len(q.buf)] = zero
	}
	q.head, q.count = 0, 0
}

// Do calls fn on each element from front to back without removing any.
func (q *FIFO[T]) Do(fn func(T)) {
	for i := 0; i < q.count; i++ {
		fn(q.buf[(q.head+i)%len(q.buf)])
	}
}

func (q *FIFO[T]) grow() {
	n := len(q.buf) * 2
	if n == 0 {
		n = 8
	}
	buf := make([]T, n)
	for i := 0; i < q.count; i++ {
		buf[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf, q.head = buf, 0
}
