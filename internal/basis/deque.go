package basis

// Deque is a double-ended queue, the paper's D: DEQ structure. TCP uses it
// for the queue of unsent data (add at the back, segment from the front,
// push back a partially-sent element) and for the retransmission queue
// (acknowledged segments leave from the front, fresh segments join at the
// back, and a timeout re-examines the front).
//
// The zero value is an empty deque ready for use.
type Deque[T any] struct {
	buf   []T
	head  int
	count int
}

// Len reports the number of elements.
func (d *Deque[T]) Len() int { return d.count }

// Empty reports whether the deque holds no elements.
func (d *Deque[T]) Empty() bool { return d.count == 0 }

// PushBack appends v at the back.
func (d *Deque[T]) PushBack(v T) {
	if d.count == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.count)%len(d.buf)] = v
	d.count++
}

// PushFront prepends v at the front.
func (d *Deque[T]) PushFront(v T) {
	if d.count == len(d.buf) {
		d.grow()
	}
	d.head = (d.head - 1 + len(d.buf)) % len(d.buf)
	d.buf[d.head] = v
	d.count++
}

// PopFront removes and returns the front element; false if empty.
func (d *Deque[T]) PopFront() (T, bool) {
	var zero T
	if d.count == 0 {
		return zero, false
	}
	v := d.buf[d.head]
	d.buf[d.head] = zero
	d.head = (d.head + 1) % len(d.buf)
	d.count--
	return v, true
}

// PopBack removes and returns the back element; false if empty.
func (d *Deque[T]) PopBack() (T, bool) {
	var zero T
	if d.count == 0 {
		return zero, false
	}
	i := (d.head + d.count - 1) % len(d.buf)
	v := d.buf[i]
	d.buf[i] = zero
	d.count--
	return v, true
}

// Front returns the front element without removing it; false if empty.
func (d *Deque[T]) Front() (T, bool) {
	var zero T
	if d.count == 0 {
		return zero, false
	}
	return d.buf[d.head], true
}

// Back returns the back element without removing it; false if empty.
func (d *Deque[T]) Back() (T, bool) {
	var zero T
	if d.count == 0 {
		return zero, false
	}
	return d.buf[(d.head+d.count-1)%len(d.buf)], true
}

// At returns the i-th element from the front (0-based) without removing
// it; false if i is out of range.
func (d *Deque[T]) At(i int) (T, bool) {
	var zero T
	if i < 0 || i >= d.count {
		return zero, false
	}
	return d.buf[(d.head+i)%len(d.buf)], true
}

// Do calls fn on each element from front to back without removing any.
func (d *Deque[T]) Do(fn func(T)) {
	for i := 0; i < d.count; i++ {
		fn(d.buf[(d.head+i)%len(d.buf)])
	}
}

// Clear discards all elements, retaining the backing store.
func (d *Deque[T]) Clear() {
	var zero T
	for i := 0; i < d.count; i++ {
		d.buf[(d.head+i)%len(d.buf)] = zero
	}
	d.head, d.count = 0, 0
}

func (d *Deque[T]) grow() {
	n := len(d.buf) * 2
	if n == 0 {
		n = 8
	}
	buf := make([]T, n)
	for i := 0; i < d.count; i++ {
		buf[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf, d.head = buf, 0
}
