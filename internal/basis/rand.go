package basis

// Rand is a small deterministic pseudo-random number generator
// (xorshift64*). The simulated network's fault injection and the tests use
// it instead of math/rand so that a run is reproducible from its seed alone
// across Go releases — the reproduction analogue of running on an isolated
// Ethernet where "only the exact sequence in which actions … are added to
// the queue is undefined".
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed (0 is replaced by a fixed
// non-zero constant, since the xorshift state must be non-zero).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Uint32 returns the next 32 pseudo-random bits.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("basis.Rand.Intn: n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Chance reports true with probability p (clamped to [0, 1]).
func (r *Rand) Chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}
