package basis

import "testing"

func TestRandDeterministic(t *testing.T) {
	a := NewRand(42)
	b := NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestRandSeedsDiffer(t *testing.T) {
	a := NewRand(1)
	b := NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestRandZeroSeedWorks(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced degenerate zero stream")
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d", v)
		}
	}
}

func TestRandIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v", f)
		}
	}
}

func TestRandChanceExtremes(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 100; i++ {
		if r.Chance(0) {
			t.Fatal("Chance(0) fired")
		}
		if !r.Chance(1) {
			t.Fatal("Chance(1) did not fire")
		}
	}
}

func TestRandChanceApproximatesP(t *testing.T) {
	r := NewRand(11)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if r.Chance(0.25) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if got < 0.22 || got > 0.28 {
		t.Fatalf("Chance(0.25) hit rate = %v", got)
	}
}

func TestRandUint32NotConstantHigh(t *testing.T) {
	r := NewRand(5)
	seen := map[uint32]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint32()] = true
	}
	if len(seen) < 95 {
		t.Fatalf("Uint32 produced only %d distinct values in 100 draws", len(seen))
	}
}
