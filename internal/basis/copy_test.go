package basis

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestIndexedCopyBasic(t *testing.T) {
	src := []byte("the quick brown fox")
	dst := make([]byte, len(src))
	if n := IndexedCopy(dst, src); n != len(src) {
		t.Fatalf("n = %d", n)
	}
	if !bytes.Equal(dst, src) {
		t.Fatal("IndexedCopy mangled data")
	}
}

func TestWordCopyBasic(t *testing.T) {
	src := []byte("the quick brown fox jumps over the lazy dog")
	dst := make([]byte, len(src))
	if n := WordCopy(dst, src); n != len(src) {
		t.Fatalf("n = %d", n)
	}
	if !bytes.Equal(dst, src) {
		t.Fatal("WordCopy mangled data")
	}
}

func TestCopyShortDestination(t *testing.T) {
	src := []byte("abcdefgh")
	dst := make([]byte, 3)
	if n := IndexedCopy(dst, src); n != 3 {
		t.Fatalf("IndexedCopy n = %d", n)
	}
	if n := WordCopy(dst, src); n != 3 {
		t.Fatalf("WordCopy n = %d", n)
	}
	if string(dst) != "abc" {
		t.Fatalf("dst = %q", dst)
	}
}

func TestCopyEmpty(t *testing.T) {
	if n := IndexedCopy(nil, nil); n != 0 {
		t.Fatal("IndexedCopy(nil,nil) != 0")
	}
	if n := WordCopy(nil, []byte("x")); n != 0 {
		t.Fatal("WordCopy(nil, x) != 0")
	}
}

// Property: both copy variants agree with the builtin for all inputs and
// all length combinations, including tails shorter than a word.
func TestCopyPropertyAgreesWithBuiltin(t *testing.T) {
	f := func(src []byte, dlen uint8) bool {
		dst1 := make([]byte, dlen)
		dst2 := make([]byte, dlen)
		dst3 := make([]byte, dlen)
		n1 := IndexedCopy(dst1, src)
		n2 := WordCopy(dst2, src)
		n3 := copy(dst3, src)
		return n1 == n3 && n2 == n3 && bytes.Equal(dst1, dst3) && bytes.Equal(dst2, dst3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
