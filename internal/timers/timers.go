// Package timers reproduces the paper's Figure 11: the entire timer
// facility — start, clear, expiration — built from nothing but the
// scheduler's fork and sleep plus one heap-allocated boolean of shared
// state captured in a closure. The paper singles this out as evidence that
// higher-order functions plus fast thread creation make traditionally slow
// timer code "simple and fast".
package timers

import "repro/internal/sim"

// Timer is the updatable cell returned by Start; Clear sets it, and the
// forked thread checks it after sleeping.
type Timer struct {
	cleared bool
}

// Start forks a thread that sleeps for d of virtual time and then invokes
// handler — unless the returned timer was cleared in the meantime. This is
// a direct transliteration of the paper's `start`:
//
//	fun start (handler, ms) =
//	  let val cleared = ref false
//	      fun sleep () = (Scheduler.sleep (ms);
//	                      if !cleared then () else handler ())
//	  in Scheduler.fork (Scheduler.Normal sleep); cleared end
func Start(s *sim.Scheduler, handler func(), d sim.Duration) *Timer {
	t := &Timer{}
	s.Fork("timer", func() {
		s.Sleep(d)
		if !t.cleared {
			s.NoteTimerFire()
			handler()
		}
	})
	return t
}

// Clear prevents the handler from running if it has not run yet. Clearing
// an expired or already-cleared timer is a no-op; the thread, if still
// sleeping, wakes, observes the flag, and exits silently.
func (t *Timer) Clear() {
	if t != nil {
		t.cleared = true
	}
}

// Cleared reports whether Clear was called.
func (t *Timer) Cleared() bool { return t != nil && t.cleared }
