package timers

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestTimerFiresAtDeadline(t *testing.T) {
	s := sim.New(sim.Config{})
	var firedAt sim.Time = -1
	s.Run(func() {
		Start(s, func() { firedAt = s.Now() }, 20*time.Millisecond)
		s.Sleep(50 * time.Millisecond)
	})
	if firedAt != sim.Time(20*time.Millisecond) {
		t.Fatalf("fired at %v", time.Duration(firedAt))
	}
}

func TestClearedTimerDoesNotFire(t *testing.T) {
	s := sim.New(sim.Config{})
	fired := false
	s.Run(func() {
		tm := Start(s, func() { fired = true }, 10*time.Millisecond)
		s.Sleep(5 * time.Millisecond)
		tm.Clear()
		s.Sleep(20 * time.Millisecond)
	})
	if fired {
		t.Fatal("cleared timer fired")
	}
}

func TestClearAfterExpiryIsNoop(t *testing.T) {
	s := sim.New(sim.Config{})
	fired := 0
	s.Run(func() {
		tm := Start(s, func() { fired++ }, 1*time.Millisecond)
		s.Sleep(10 * time.Millisecond)
		tm.Clear() // too late, and must not panic or double-fire
		s.Sleep(10 * time.Millisecond)
	})
	if fired != 1 {
		t.Fatalf("fired %d times", fired)
	}
}

func TestClearNilTimerSafe(t *testing.T) {
	var tm *Timer
	tm.Clear()
	if tm.Cleared() {
		t.Fatal("nil timer claims cleared")
	}
}

func TestManyTimersFireInDeadlineOrder(t *testing.T) {
	s := sim.New(sim.Config{})
	var order []int
	s.Run(func() {
		delays := []time.Duration{30, 10, 20, 40, 5}
		for i, d := range delays {
			i := i
			Start(s, func() { order = append(order, i) }, d*time.Millisecond)
		}
		s.Sleep(100 * time.Millisecond)
	})
	want := []int{4, 1, 2, 0, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fire order %v, want %v", order, want)
		}
	}
}

func TestTimerRestartPattern(t *testing.T) {
	// TCP's retransmission timer is "restarted" by clear-then-start; the
	// old thread must stay silent.
	s := sim.New(sim.Config{})
	var fires []sim.Time
	s.Run(func() {
		h := func() { fires = append(fires, s.Now()) }
		tm := Start(s, h, 10*time.Millisecond)
		s.Sleep(6 * time.Millisecond)
		tm.Clear()
		tm = Start(s, h, 10*time.Millisecond) // fires at t=16ms
		s.Sleep(30 * time.Millisecond)
		tm.Clear()
	})
	if len(fires) != 1 || fires[0] != sim.Time(16*time.Millisecond) {
		t.Fatalf("fires = %v", fires)
	}
}

func TestClearedReflectsState(t *testing.T) {
	s := sim.New(sim.Config{})
	s.Run(func() {
		tm := Start(s, func() {}, time.Millisecond)
		if tm.Cleared() {
			t.Error("fresh timer claims cleared")
		}
		tm.Clear()
		if !tm.Cleared() {
			t.Error("cleared timer denies it")
		}
		s.Sleep(2 * time.Millisecond)
	})
}
