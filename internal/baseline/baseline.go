// Package baseline is the comparator for the paper's Table 1: a
// conventional, monolithic TCP in the style of the Berkeley-derived
// x-kernel v3.2 implementation the paper measures against. It speaks
// exactly the same wire format as repro/internal/tcp (the two
// interoperate, and the tests prove it), but it is built the way 1994 C
// stacks were built:
//
//   - one big receive function with inlined header prediction, not a
//     module per specification section;
//   - direct calls all the way through — no to_do queue, no action
//     values, no per-event closures;
//   - headers parsed in place off the wire bytes and written into
//     preallocated scratch, minimizing allocation on the per-segment
//     path.
//
// It implements what the comparison needs to be fair — handshake,
// sliding-window transfer with MSS, delayed ACKs, Nagle, Jacobson RTT
// estimation with backoff, fast retransmit, and the full close handshake
// — but none of the paper's structural claims. The difference Table 1
// reports is then attributable to structure, which is the experiment.
package baseline

import (
	"encoding/binary"
	"errors"
	"time"

	"repro/internal/basis"
	"repro/internal/checksum"
	"repro/internal/profile"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/timers"
)

const (
	fFIN = 1 << 0
	fSYN = 1 << 1
	fRST = 1 << 2
	fPSH = 1 << 3
	fACK = 1 << 4

	hdrLen = 20
)

// Errors mirror the structured implementation's user-visible failures.
var (
	ErrReset   = errors.New("baseline: connection reset by peer")
	ErrRefused = errors.New("baseline: connection refused")
	ErrTimeout = errors.New("baseline: operation timed out")
	ErrClosed  = errors.New("baseline: connection closed")
)

// Config carries the few knobs the benchmark harness needs.
type Config struct {
	InitialWindow    int          // advertised receive window; default 4096
	ComputeChecksums *bool        // default true
	UserTimeout      sim.Duration // default 30s
	MSL              sim.Duration // default 30s
	AckDelay         sim.Duration // default 200ms
	MinRTO           sim.Duration // default 500ms
	MaxRTO           sim.Duration // default 64s
	// CopyPerKB and ChecksumPerKB charge calibrated 1994-hardware
	// per-kilobyte costs (the experiments package uses bcopy's 61 µs/KB
	// and the x-kernel checksum's 375 µs/KB from the paper).
	CopyPerKB     sim.Duration
	ChecksumPerKB sim.Duration
	Prof          *profile.Profile
}

func (c *Config) fill() {
	if c.InitialWindow == 0 {
		c.InitialWindow = 4096
	}
	if c.UserTimeout == 0 {
		c.UserTimeout = 30 * time.Second
	}
	if c.MSL == 0 {
		c.MSL = 30 * time.Second
	}
	if c.AckDelay == 0 {
		c.AckDelay = 200 * time.Millisecond
	}
	if c.MinRTO == 0 {
		c.MinRTO = 500 * time.Millisecond
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = 64 * time.Second
	}
}

func (c *Config) checksums() bool { return c.ComputeChecksums == nil || *c.ComputeChecksums }

// Stats counts endpoint activity.
type Stats struct {
	SegsSent     uint64
	SegsReceived uint64
	Retransmits  uint64
	Predicted    uint64 // header-prediction hits
	BadChecksum  uint64
}

type connKey struct {
	raddr protocol.Address
	rport uint16
	lport uint16
}

// state numbers (RFC 793; no Syn_Active/Passive split here — that
// refinement is the structured implementation's).
type state int

const (
	stClosed state = iota
	stListen
	stSynSent
	stSynRcvd
	stEstab
	stFinWait1
	stFinWait2
	stCloseWait
	stClosing
	stLastAck
	stTimeWait
)

// Handler carries the user upcalls.
type Handler struct {
	Data       func(c *Conn, data []byte)
	PeerClosed func(c *Conn)
	Error      func(c *Conn, err error)
}

// TCP is one host's baseline endpoint.
type TCP struct {
	s         *sim.Scheduler
	net       protocol.Network
	cfg       Config
	conns     map[connKey]*Conn
	listeners map[uint16]func(*Conn) Handler
	ephemeral uint16
	stats     Stats
}

// rexseg is one retransmission-queue entry.
type rexseg struct {
	seq     uint32
	data    []byte
	flags   uint8
	sentAt  sim.Time
	rexmits int
	timed   bool
}

// Conn is one baseline connection.
type Conn struct {
	t   *TCP
	key connKey
	st  state
	h   Handler

	iss, sndUna, sndNxt uint32
	sndWnd, maxWnd      uint32
	wl1, wl2            uint32
	irs, rcvNxt         uint32
	rcvWnd              uint32
	mss                 int

	sendBuf   []byte // queued unsent bytes (flat buffer, C-style)
	rexmitQ   []rexseg
	ooo       []rexseg // out-of-order received
	finQueued bool
	finSent   bool
	finSeq    uint32

	srtt, rttvar, rto sim.Duration
	backoff           int
	cwnd, ssthresh    uint32
	dupAcks           int
	lastProgress      sim.Time

	rexmitT *timers.Timer
	delackT *timers.Timer
	twT     *timers.Timer

	ackPending bool
	unacked    int

	openC, closeC *sim.Cond
	openDone      bool
	openErr       error
	closeDone     bool
	err           error
}

// New attaches a baseline endpoint to net.
func New(s *sim.Scheduler, net protocol.Network, cfg Config) *TCP {
	cfg.fill()
	t := &TCP{
		s: s, net: net, cfg: cfg,
		conns:     make(map[connKey]*Conn),
		listeners: make(map[uint16]func(*Conn) Handler),
		ephemeral: 49151,
	}
	net.Attach(t.input)
	return t
}

// Stats returns a snapshot of the counters.
func (t *TCP) Stats() Stats { return t.stats }

// MTU is the largest segment payload.
func (t *TCP) MTU() int { return t.net.MTU() - hdrLen }

// Listen installs an accept factory on port.
func (t *TCP) Listen(port uint16, accept func(*Conn) Handler) {
	t.listeners[port] = accept
}

// Open actively opens a connection and blocks until established.
func (t *TCP) Open(remote protocol.Address, rport uint16, h Handler) (*Conn, error) {
	t.ephemeral++
	key := connKey{raddr: remote, rport: rport, lport: t.ephemeral}
	c := t.newConn(key)
	c.h = h
	t.conns[key] = c
	c.st = stSynSent
	c.iss = uint32(uint64(t.s.Now()) / uint64(4*time.Microsecond))
	c.sndUna, c.sndNxt = c.iss, c.iss+1
	c.pushRexmit(rexseg{seq: c.iss, flags: fSYN, sentAt: t.s.Now(), timed: true})
	c.xmit(c.iss, fSYN, nil, true)
	c.armRexmit()
	for !c.openDone {
		c.openC.Wait()
	}
	if c.openErr != nil {
		return nil, c.openErr
	}
	return c, nil
}

func (t *TCP) newConn(key connKey) *Conn {
	c := &Conn{
		t: t, key: key,
		rcvWnd: uint32(t.cfg.InitialWindow),
		mss:    536,
		rto:    time.Second,
		cwnd:   536, ssthresh: 0xffff,
		lastProgress: t.s.Now(),
	}
	c.openC = sim.NewCond(t.s)
	c.closeC = sim.NewCond(t.s)
	return c
}

// State reports the connection state name (for tests).
func (c *Conn) Established() bool { return c.st == stEstab }

// Err returns the terminal error.
func (c *Conn) Err() error { return c.err }

// ---- output path -------------------------------------------------------

// xmit writes one segment straight to the wire: header into headroom,
// payload already in place, checksum inline. withMSS adds the MSS option.
func (c *Conn) xmit(seqNo uint32, flags uint8, data []byte, withMSS bool) {
	t := c.t
	sec := t.cfg.Prof.Start(profile.CatTCP)
	hl := hdrLen
	if withMSS {
		hl += 4
	}
	cp := t.cfg.Prof.Start(profile.CatCopy)
	pkt := basis.NewPacket(t.net.Headroom()+hl, t.net.Tailroom(), data)
	cp.Stop()
	if t.cfg.CopyPerKB != 0 && len(data) > 0 {
		dsec := t.cfg.Prof.Start(profile.CatCopy)
		t.s.Charge(t.cfg.CopyPerKB * sim.Duration(len(data)) / 1024)
		dsec.Stop()
	}
	h := pkt.Push(hl)
	binary.BigEndian.PutUint16(h[0:2], c.key.lport)
	binary.BigEndian.PutUint16(h[2:4], c.key.rport)
	binary.BigEndian.PutUint32(h[4:8], seqNo)
	binary.BigEndian.PutUint32(h[8:12], c.rcvNxt)
	h[12] = byte(hl/4) << 4
	h[13] = flags
	wnd := c.rcvWnd
	if wnd > 0xffff {
		wnd = 0xffff
	}
	binary.BigEndian.PutUint16(h[14:16], uint16(wnd))
	h[16], h[17], h[18], h[19] = 0, 0, 0, 0
	if withMSS {
		h[20], h[21] = 2, 4
		binary.BigEndian.PutUint16(h[22:24], uint16(t.MTU()))
	}
	if t.cfg.checksums() {
		cks := t.cfg.Prof.Start(profile.CatChecksum)
		var acc checksum.Accumulator
		acc.AddUint16(t.net.PseudoHeaderChecksum(c.key.raddr, pkt.Len()))
		acc.Add(pkt.Bytes())
		binary.BigEndian.PutUint16(h[16:18], acc.Checksum())
		if t.cfg.ChecksumPerKB != 0 {
			t.s.Charge(t.cfg.ChecksumPerKB * sim.Duration(pkt.Len()) / 1024)
		}
		cks.Stop()
	}
	if flags&fACK != 0 {
		c.ackPending = false
		c.unacked = 0
		c.delackT.Clear()
	}
	t.stats.SegsSent++
	t.net.Send(c.key.raddr, pkt)
	sec.Stop()
}

func (c *Conn) pushRexmit(r rexseg) {
	c.rexmitQ = append(c.rexmitQ, r)
}

func (c *Conn) armRexmit() {
	c.rexmitT.Clear()
	d := c.rto << uint(c.backoff)
	if d > c.t.cfg.MaxRTO {
		d = c.t.cfg.MaxRTO
	}
	c.rexmitT = timers.Start(c.t.s, c.onRexmit, d)
}

func (c *Conn) onRexmit() {
	if c.st == stClosed || len(c.rexmitQ) == 0 {
		return
	}
	if sim.Duration(c.t.s.Now()-c.lastProgress) >= c.t.cfg.UserTimeout {
		c.fail(ErrTimeout)
		return
	}
	c.backoff++
	c.ssthresh = maxu32(c.flight()/2, 2*uint32(c.mss))
	c.cwnd = uint32(c.mss)
	r := &c.rexmitQ[0]
	r.rexmits++
	r.sentAt = c.t.s.Now()
	c.t.stats.Retransmits++
	flags := r.flags
	withMSS := flags&fSYN != 0
	c.xmit(r.seq, flags, r.data, withMSS)
	c.armRexmit()
}

func (c *Conn) flight() uint32 { return c.sndNxt - c.sndUna }

func maxu32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

// output pushes as much queued data as windows allow — the single send
// routine of a conventional stack.
func (c *Conn) output() {
	if c.st != stEstab && c.st != stCloseWait {
		if c.finNeedsSending() {
			c.sendFin()
		}
		return
	}
	for len(c.sendBuf) > 0 {
		wnd := c.sndWnd
		if c.cwnd < wnd {
			wnd = c.cwnd
		}
		fl := c.flight()
		if fl >= wnd {
			break
		}
		n := int(wnd - fl)
		if n > c.mss {
			n = c.mss
		}
		if n > len(c.sendBuf) {
			n = len(c.sendBuf)
		}
		if n < c.mss && n < len(c.sendBuf) && uint32(n) < c.maxWnd/2 {
			break // SWS
		}
		if n < c.mss && n == len(c.sendBuf) && fl > 0 {
			break // Nagle
		}
		flags := uint8(fACK)
		if n == len(c.sendBuf) {
			flags |= fPSH
		}
		data := c.sendBuf[:n]
		c.sendBuf = c.sendBuf[n:]
		r := rexseg{seq: c.sndNxt, data: data, flags: flags, sentAt: c.t.s.Now()}
		if !c.anyTimed() {
			r.timed = true
		}
		c.pushRexmit(r)
		wasEmpty := len(c.rexmitQ) == 1
		c.sndNxt += uint32(n)
		c.xmit(r.seq, flags, data, false)
		if wasEmpty {
			c.armRexmit()
		}
	}
	if c.finNeedsSending() {
		c.sendFin()
	}
}

func (c *Conn) finNeedsSending() bool {
	return c.finQueued && !c.finSent && len(c.sendBuf) == 0 &&
		(c.st == stEstab || c.st == stCloseWait || c.st == stSynRcvd)
}

func (c *Conn) sendFin() {
	c.finSent = true
	c.finSeq = c.sndNxt
	c.pushRexmit(rexseg{seq: c.sndNxt, flags: fFIN | fACK, sentAt: c.t.s.Now()})
	c.sndNxt++
	c.xmit(c.finSeq, fFIN|fACK, nil, false)
	if len(c.rexmitQ) == 1 {
		c.armRexmit()
	}
	if c.st == stEstab || c.st == stSynRcvd {
		c.st = stFinWait1
	} else if c.st == stCloseWait {
		c.st = stLastAck
	}
}

func (c *Conn) anyTimed() bool {
	for i := range c.rexmitQ {
		if c.rexmitQ[i].timed && c.rexmitQ[i].rexmits == 0 {
			return true
		}
	}
	return false
}

// ---- user operations -----------------------------------------------------

// Write queues data and pushes output. It blocks only when more than one
// window of data is already queued, to bound memory like a socket buffer.
func (c *Conn) Write(data []byte) error {
	for len(data) > 0 {
		if c.err != nil {
			return c.err
		}
		if c.finQueued {
			return ErrClosed
		}
		space := 64<<10 - len(c.sendBuf)
		if space <= 0 {
			c.openC.Wait() // reuse openC as a buffer-space cond
			continue
		}
		n := len(data)
		if n > space {
			n = space
		}
		c.sendBuf = append(c.sendBuf, data[:n]...)
		data = data[n:]
		c.output()
	}
	return nil
}

// Close sends a FIN after queued data and waits for it to be acked.
func (c *Conn) Close() error {
	if c.err != nil {
		return c.err
	}
	c.finQueued = true
	c.output()
	for !c.closeDone {
		c.closeC.Wait()
	}
	return c.err
}

func (c *Conn) fail(err error) {
	if c.err == nil {
		c.err = err
	}
	c.st = stClosed
	c.teardown()
	if !c.openDone {
		c.openDone, c.openErr = true, err
	}
	c.closeDone = true
	c.openC.Broadcast()
	c.closeC.Broadcast()
	if c.h.Error != nil {
		c.h.Error(c, err)
	}
}

func (c *Conn) teardown() {
	c.rexmitT.Clear()
	c.delackT.Clear()
	c.twT.Clear()
	if c.t.conns[c.key] == c {
		delete(c.t.conns, c.key)
	}
}

// ---- input path ----------------------------------------------------------

// input is the whole receive side: parse, find, predict, process — one
// function with inlined branches, the monolithic shape the paper
// contrasts its DAG-of-functions structure against.
func (t *TCP) input(src protocol.Address, pkt *basis.Packet) {
	sec := t.cfg.Prof.Start(profile.CatTCP)
	defer sec.Stop()
	b := pkt.Bytes()
	if len(b) < hdrLen {
		return
	}
	if t.cfg.checksums() && binary.BigEndian.Uint16(b[16:18]) != 0 {
		cks := t.cfg.Prof.Start(profile.CatChecksum)
		var acc checksum.Accumulator
		acc.AddUint16(t.net.PseudoHeaderChecksum(src, len(b)))
		acc.Add(b)
		bad := acc.Partial() != 0xffff
		if t.cfg.ChecksumPerKB != 0 {
			t.s.Charge(t.cfg.ChecksumPerKB * sim.Duration(len(b)) / 1024)
		}
		cks.Stop()
		if bad {
			t.stats.BadChecksum++
			return
		}
	}
	t.stats.SegsReceived++
	srcPort := binary.BigEndian.Uint16(b[0:2])
	dstPort := binary.BigEndian.Uint16(b[2:4])
	seqNo := binary.BigEndian.Uint32(b[4:8])
	ackNo := binary.BigEndian.Uint32(b[8:12])
	off := int(b[12]>>4) * 4
	if off < hdrLen || off > len(b) {
		return
	}
	flags := b[13] & 0x3f
	wnd := uint32(binary.BigEndian.Uint16(b[14:16]))
	var mssOpt int
	for o := b[hdrLen:off]; len(o) >= 2; {
		if o[0] == 1 {
			o = o[1:]
			continue
		}
		if o[0] == 0 {
			break
		}
		if o[0] == 2 && o[1] == 4 && len(o) >= 4 {
			mssOpt = int(binary.BigEndian.Uint16(o[2:4]))
		}
		if int(o[1]) < 2 || int(o[1]) > len(o) {
			break
		}
		o = o[o[1]:]
	}
	data := b[off:]

	key := connKey{raddr: src, rport: srcPort, lport: dstPort}
	c, ok := t.conns[key]
	if !ok {
		// LISTEN or CLOSED.
		if accept, ok := t.listeners[dstPort]; ok && flags&fSYN != 0 && flags&(fACK|fRST) == 0 {
			c = t.newConn(key)
			t.conns[key] = c
			c.h = accept(c)
			c.st = stSynRcvd
			c.irs, c.rcvNxt = seqNo, seqNo+1
			if mssOpt > 0 {
				c.mss = min(mssOpt, t.MTU())
				c.cwnd = uint32(c.mss)
			}
			c.sndWnd, c.maxWnd, c.wl1 = wnd, wnd, seqNo
			c.iss = uint32(uint64(t.s.Now()) / uint64(4*time.Microsecond))
			c.sndUna, c.sndNxt = c.iss, c.iss+1
			c.pushRexmit(rexseg{seq: c.iss, flags: fSYN | fACK, sentAt: t.s.Now(), timed: true})
			c.xmit(c.iss, fSYN|fACK, nil, true)
			c.armRexmit()
			return
		}
		if flags&fRST == 0 {
			t.reset(key, seqNo, ackNo, flags, len(data))
		}
		return
	}
	c.segment(seqNo, ackNo, flags, wnd, mssOpt, data)
}

// reset answers a segment for a nonexistent connection.
func (t *TCP) reset(key connKey, seqNo, ackNo uint32, flags uint8, dlen int) {
	c := t.newConn(key) // scratch connection for formatting only
	if flags&fACK != 0 {
		c.rcvNxt = 0
		c.xmit(ackNo, fRST, nil, false)
	} else {
		l := uint32(dlen)
		if flags&fSYN != 0 {
			l++
		}
		if flags&fFIN != 0 {
			l++
		}
		c.rcvNxt = seqNo + l
		c.xmit(0, fRST|fACK, nil, false)
	}
}

func seqLT(a, b uint32) bool  { return int32(a-b) < 0 }
func seqGT(a, b uint32) bool  { return int32(a-b) > 0 }
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }

// segment processes one segment for an existing connection.
func (c *Conn) segment(seqNo, ackNo uint32, flags uint8, wnd uint32, mssOpt int, data []byte) {
	t := c.t

	// Header prediction (the hot path, inlined).
	if c.st == stEstab && flags&(fSYN|fFIN|fRST) == 0 && flags&fACK != 0 &&
		seqNo == c.rcvNxt && wnd == c.sndWnd {
		if len(data) == 0 && seqGT(ackNo, c.sndUna) && seqLEQ(ackNo, c.sndNxt) {
			t.stats.Predicted++
			c.ackUpdate(ackNo)
			c.output()
			return
		}
		if len(data) > 0 && ackNo == c.sndUna && len(c.ooo) == 0 &&
			uint32(len(data)) <= c.rcvWnd {
			t.stats.Predicted++
			c.rcvNxt += uint32(len(data))
			if c.h.Data != nil {
				c.h.Data(c, data)
			}
			c.unacked++
			if c.unacked >= 2 {
				c.xmit(c.sndNxt, fACK, nil, false)
			} else if c.delackT == nil || c.delackT.Cleared() {
				c.ackPending = true
				c.delackT = timers.Start(t.s, c.onDelack, t.cfg.AckDelay)
			}
			return
		}
	}

	switch c.st {
	case stSynSent:
		ackOK := false
		if flags&fACK != 0 {
			if seqLEQ(ackNo, c.iss) || seqGT(ackNo, c.sndNxt) {
				if flags&fRST == 0 {
					c.xmit(ackNo, fRST, nil, false)
				}
				return
			}
			ackOK = true
		}
		if flags&fRST != 0 {
			if ackOK {
				c.fail(ErrRefused)
			}
			return
		}
		if flags&fSYN == 0 {
			return
		}
		c.irs, c.rcvNxt = seqNo, seqNo+1
		if mssOpt > 0 {
			c.mss = min(mssOpt, t.MTU())
			c.cwnd = uint32(c.mss)
		}
		c.sndWnd, c.maxWnd, c.wl1, c.wl2 = wnd, wnd, seqNo, ackNo
		if ackOK {
			c.ackUpdate(ackNo)
			c.st = stEstab
			c.openDone = true
			c.openC.Broadcast()
			c.xmit(c.sndNxt, fACK, nil, false)
			c.output()
		} else {
			c.st = stSynRcvd
			c.xmit(c.iss, fSYN|fACK, nil, true)
		}
		return
	case stClosed:
		return
	}

	// Window acceptability (abbreviated: the common cases).
	if len(data) > 0 && seqGT(seqNo+uint32(len(data)), c.rcvNxt+c.rcvWnd) {
		over := seqNo + uint32(len(data)) - (c.rcvNxt + c.rcvWnd)
		if int(over) < len(data) {
			data = data[:len(data)-int(over)]
			flags &^= fFIN
		} else {
			c.xmit(c.sndNxt, fACK, nil, false)
			return
		}
	}
	if seqGT(seqNo, c.rcvNxt+c.rcvWnd) {
		if flags&fRST == 0 {
			c.xmit(c.sndNxt, fACK, nil, false)
		}
		return
	}

	if flags&fRST != 0 {
		// In-window RST check: anywhere in the receive window counts.
		if seqLT(seqNo, c.rcvNxt) || seqGT(seqNo, c.rcvNxt+c.rcvWnd) {
			return
		}
		switch c.st {
		case stSynRcvd:
			c.teardown()
		case stClosing, stLastAck, stTimeWait:
			c.closeDone = true
			c.closeC.Broadcast()
			c.teardown()
		default:
			c.fail(ErrReset)
		}
		return
	}
	if flags&fSYN != 0 && seqGT(seqNo, c.rcvNxt) {
		c.xmit(c.sndNxt, fRST, nil, false)
		c.fail(ErrReset)
		return
	}
	if flags&fACK == 0 {
		return
	}

	// ACK processing.
	switch c.st {
	case stSynRcvd:
		if seqLEQ(c.sndUna, ackNo) && seqLEQ(ackNo, c.sndNxt) {
			c.st = stEstab
			c.openDone = true
			c.openC.Broadcast()
			c.ackUpdate(ackNo)
		} else {
			c.xmit(ackNo, fRST, nil, false)
			return
		}
	default:
		if seqGT(ackNo, c.sndNxt) {
			c.xmit(c.sndNxt, fACK, nil, false)
			return
		}
		if seqGT(ackNo, c.sndUna) {
			c.ackUpdate(ackNo)
		} else if len(data) == 0 && wnd == c.sndWnd && len(c.rexmitQ) > 0 {
			c.dupAcks++
			if c.dupAcks == 3 {
				c.ssthresh = maxu32(c.flight()/2, 2*uint32(c.mss))
				c.cwnd = uint32(c.mss)
				r := &c.rexmitQ[0]
				r.rexmits++
				c.t.stats.Retransmits++
				c.xmit(r.seq, r.flags, r.data, false)
			}
		}
	}
	// Window update.
	if seqLT(c.wl1, seqNo) || (c.wl1 == seqNo && seqLEQ(c.wl2, ackNo)) {
		c.sndWnd, c.wl1, c.wl2 = wnd, seqNo, ackNo
		if wnd > c.maxWnd {
			c.maxWnd = wnd
		}
	}

	// FIN-ack driven transitions.
	if c.finSent && seqGT(c.sndUna, c.finSeq) {
		switch c.st {
		case stFinWait1:
			c.st = stFinWait2
			c.closeDone = true
			c.closeC.Broadcast()
		case stClosing:
			c.enterTimeWait()
		case stLastAck:
			c.closeDone = true
			c.closeC.Broadcast()
			c.teardown()
			c.st = stClosed
			return
		}
	}

	// Text.
	if len(data) > 0 && (c.st == stEstab || c.st == stFinWait1 || c.st == stFinWait2) {
		if seqNo == c.rcvNxt {
			c.rcvNxt += uint32(len(data))
			if c.h.Data != nil {
				c.h.Data(c, data)
			}
			// Drain the out-of-order list.
			for len(c.ooo) > 0 && seqLEQ(c.ooo[0].seq, c.rcvNxt) {
				q := c.ooo[0]
				c.ooo = c.ooo[1:]
				if end := q.seq + uint32(len(q.data)); seqGT(end, c.rcvNxt) {
					tail := q.data[c.rcvNxt-q.seq:]
					c.rcvNxt = end
					if c.h.Data != nil {
						c.h.Data(c, tail)
					}
				}
				if q.flags&fFIN != 0 {
					flags |= fFIN
					seqNo = q.seq
					data = q.data
				}
			}
			c.unacked++
			if c.unacked >= 2 {
				c.xmit(c.sndNxt, fACK, nil, false)
			} else if c.delackT == nil || c.delackT.Cleared() {
				c.ackPending = true
				c.delackT = timers.Start(c.t.s, c.onDelack, c.t.cfg.AckDelay)
			}
		} else if seqGT(seqNo, c.rcvNxt) {
			// Insert out of order (sorted).
			at := len(c.ooo)
			for i := range c.ooo {
				if seqGT(c.ooo[i].seq, seqNo) {
					at = i
					break
				}
			}
			cp := make([]byte, len(data))
			copy(cp, data)
			c.ooo = append(c.ooo, rexseg{})
			copy(c.ooo[at+1:], c.ooo[at:])
			c.ooo[at] = rexseg{seq: seqNo, data: cp, flags: flags & fFIN}
			c.xmit(c.sndNxt, fACK, nil, false)
			return
		} else {
			// Partially or fully duplicate data.
			end := seqNo + uint32(len(data))
			if seqGT(end, c.rcvNxt) {
				fresh := data[c.rcvNxt-seqNo:]
				c.rcvNxt = end
				if c.h.Data != nil {
					c.h.Data(c, fresh)
				}
			}
			c.xmit(c.sndNxt, fACK, nil, false)
		}
	}

	// FIN.
	if flags&fFIN != 0 && seqNo+uint32(len(data)) == c.rcvNxt {
		c.rcvNxt++
		c.xmit(c.sndNxt, fACK, nil, false)
		if c.h.PeerClosed != nil {
			c.h.PeerClosed(c)
		}
		switch c.st {
		case stEstab, stSynRcvd:
			c.st = stCloseWait
		case stFinWait1:
			c.st = stClosing
		case stFinWait2:
			c.enterTimeWait()
		case stTimeWait:
			c.twT.Clear()
			c.twT = timers.Start(c.t.s, c.onTimeWait, 2*c.t.cfg.MSL)
		}
	}
	c.output()
}

func (c *Conn) enterTimeWait() {
	c.st = stTimeWait
	c.rexmitT.Clear()
	c.closeDone = true
	c.closeC.Broadcast()
	c.twT = timers.Start(c.t.s, c.onTimeWait, 2*c.t.cfg.MSL)
}

func (c *Conn) onTimeWait() {
	c.st = stClosed
	c.teardown()
}

func (c *Conn) onDelack() {
	if c.ackPending && c.st != stClosed {
		c.xmit(c.sndNxt, fACK, nil, false)
	}
}

// ackUpdate advances snd_una, trims the retransmission queue, samples
// the RTT, grows cwnd, and restarts the timer.
func (c *Conn) ackUpdate(ackNo uint32) {
	now := c.t.s.Now()
	for len(c.rexmitQ) > 0 {
		r := &c.rexmitQ[0]
		l := uint32(len(r.data))
		if r.flags&(fSYN|fFIN) != 0 {
			l++
		}
		if seqGT(r.seq+l, ackNo) {
			break
		}
		if r.timed && r.rexmits == 0 {
			c.rtt(sim.Duration(now - r.sentAt))
		}
		c.rexmitQ = c.rexmitQ[1:]
	}
	c.sndUna = ackNo
	c.lastProgress = now
	c.backoff = 0
	c.dupAcks = 0
	if c.cwnd < c.ssthresh {
		c.cwnd += uint32(c.mss)
	} else {
		c.cwnd += maxu32(uint32(c.mss)*uint32(c.mss)/c.cwnd, 1)
	}
	if len(c.rexmitQ) == 0 {
		c.rexmitT.Clear()
	} else {
		c.armRexmit()
	}
	c.openC.Broadcast() // writers waiting on buffer space
}

func (c *Conn) rtt(m sim.Duration) {
	if m <= 0 {
		return
	}
	if c.srtt == 0 {
		c.srtt, c.rttvar = m, m/2
	} else {
		err := m - c.srtt
		c.srtt += err / 8
		if err < 0 {
			err = -err
		}
		c.rttvar += (err - c.rttvar) / 4
	}
	c.rto = c.srtt + 4*c.rttvar
	if c.rto < c.t.cfg.MinRTO {
		c.rto = c.t.cfg.MinRTO
	}
	if c.rto > c.t.cfg.MaxRTO {
		c.rto = c.t.cfg.MaxRTO
	}
}
