package baseline_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/arp"
	"repro/internal/baseline"
	"repro/internal/basis"
	"repro/internal/ethernet"
	"repro/internal/ip"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/wire"
)

type blHost struct {
	BL *baseline.TCP
	ST *tcp.TCP // structured endpoint on the same network, for interop
	A  ip.Addr
}

func runBL(t *testing.T, wcfg wire.Config, body func(s *sim.Scheduler, a, b blHost)) {
	t.Helper()
	s := sim.New(sim.Config{})
	s.Run(func() {
		seg := wire.NewSegment(s, wcfg, nil)
		mk := func(n byte, structured bool) blHost {
			addr := ip.HostAddr(n)
			eth := ethernet.New(seg.NewPort(addr.String(), nil), ethernet.HostAddr(n), ethernet.Config{})
			res := arp.New(s, eth, addr, arp.Config{})
			res.AddStatic(ip.HostAddr(1), ethernet.HostAddr(1))
			res.AddStatic(ip.HostAddr(2), ethernet.HostAddr(2))
			ipl := ip.New(s, eth, res, ip.Config{Local: addr})
			h := blHost{A: addr}
			if structured {
				h.ST = tcp.New(s, ipl.Network(ip.ProtoTCP), tcp.Config{})
			} else {
				h.BL = baseline.New(s, ipl.Network(ip.ProtoTCP), baseline.Config{})
			}
			return h
		}
		body(s, mk(1, false), mk(2, false))
	})
}

func TestBaselineSelfTransfer(t *testing.T) {
	runBL(t, wire.Config{}, func(s *sim.Scheduler, a, b blHost) {
		var got bytes.Buffer
		peerClosed := false
		b.BL.Listen(80, func(c *baseline.Conn) baseline.Handler {
			return baseline.Handler{
				Data:       func(c *baseline.Conn, d []byte) { got.Write(d) },
				PeerClosed: func(c *baseline.Conn) { peerClosed = true },
			}
		})
		conn, err := a.BL.Open(b.A, 80, baseline.Handler{})
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 100_000)
		r := basis.NewRand(5)
		for i := range data {
			data[i] = byte(r.Uint64())
		}
		s.Fork("sender", func() { conn.Write(data); conn.Close() })
		s.Sleep(10 * time.Minute)
		if !bytes.Equal(got.Bytes(), data) {
			t.Fatalf("received %d of %d bytes", got.Len(), len(data))
		}
		if !peerClosed {
			t.Fatal("FIN lost")
		}
		if a.BL.Stats().Retransmits != 0 {
			t.Fatalf("retransmits on clean wire: %d", a.BL.Stats().Retransmits)
		}
	})
}

func TestBaselineLossyTransfer(t *testing.T) {
	runBL(t, wire.Config{Loss: 0.05, Seed: 77}, func(s *sim.Scheduler, a, b blHost) {
		var got bytes.Buffer
		b.BL.Listen(80, func(c *baseline.Conn) baseline.Handler {
			return baseline.Handler{Data: func(c *baseline.Conn, d []byte) { got.Write(d) }}
		})
		conn, err := a.BL.Open(b.A, 80, baseline.Handler{})
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 60_000)
		r := basis.NewRand(6)
		for i := range data {
			data[i] = byte(r.Uint64())
		}
		s.Fork("sender", func() { conn.Write(data) })
		s.Sleep(30 * time.Minute)
		if !bytes.Equal(got.Bytes(), data) {
			t.Fatalf("received %d of %d bytes", got.Len(), len(data))
		}
		if a.BL.Stats().Retransmits == 0 {
			t.Fatal("no retransmits over lossy wire")
		}
	})
}

func TestBaselineRefusedByEmptyPort(t *testing.T) {
	runBL(t, wire.Config{}, func(s *sim.Scheduler, a, b blHost) {
		_, err := a.BL.Open(b.A, 9, baseline.Handler{})
		if err != baseline.ErrRefused {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestBaselinePrediction(t *testing.T) {
	runBL(t, wire.Config{}, func(s *sim.Scheduler, a, b blHost) {
		var got bytes.Buffer
		b.BL.Listen(80, func(c *baseline.Conn) baseline.Handler {
			return baseline.Handler{Data: func(c *baseline.Conn, d []byte) { got.Write(d) }}
		})
		conn, _ := a.BL.Open(b.A, 80, baseline.Handler{})
		data := make([]byte, 100_000)
		s.Fork("sender", func() { conn.Write(data) })
		s.Sleep(5 * time.Minute)
		if got.Len() != len(data) {
			t.Fatalf("received %d", got.Len())
		}
		if b.BL.Stats().Predicted == 0 || a.BL.Stats().Predicted == 0 {
			t.Fatalf("header prediction never hit: a=%d b=%d",
				a.BL.Stats().Predicted, b.BL.Stats().Predicted)
		}
	})
}

// The decisive wire-format check: the structured TCP talks to the
// baseline TCP, in both directions.
func interop(t *testing.T, structuredClient bool) {
	s := sim.New(sim.Config{})
	s.Run(func() {
		seg := wire.NewSegment(s, wire.Config{}, nil)
		mkNet := func(n byte) (addr ip.Addr, net interface {
			MTU() int
		}, ipl *ip.IP) {
			addr = ip.HostAddr(n)
			eth := ethernet.New(seg.NewPort(addr.String(), nil), ethernet.HostAddr(n), ethernet.Config{})
			res := arp.New(s, eth, addr, arp.Config{})
			res.AddStatic(ip.HostAddr(1), ethernet.HostAddr(1))
			res.AddStatic(ip.HostAddr(2), ethernet.HostAddr(2))
			ipl = ip.New(s, eth, res, ip.Config{Local: addr})
			return addr, nil, ipl
		}
		_, _, ipl1 := mkNet(1)
		addr2, _, ipl2 := mkNet(2)

		data := make([]byte, 50_000)
		r := basis.NewRand(9)
		for i := range data {
			data[i] = byte(r.Uint64())
		}
		var got bytes.Buffer
		peerClosed := false

		if structuredClient {
			// Baseline server, structured client.
			bl := baseline.New(s, ipl2.Network(ip.ProtoTCP), baseline.Config{})
			bl.Listen(80, func(c *baseline.Conn) baseline.Handler {
				return baseline.Handler{
					Data:       func(c *baseline.Conn, d []byte) { got.Write(d) },
					PeerClosed: func(c *baseline.Conn) { peerClosed = true },
				}
			})
			st := tcp.New(s, ipl1.Network(ip.ProtoTCP), tcp.Config{})
			conn, err := st.Open(addr2, 80, tcp.Handler{})
			if err != nil {
				t.Fatalf("structured->baseline open: %v", err)
			}
			s.Fork("sender", func() { conn.Write(data); conn.Close() })
		} else {
			// Structured server, baseline client.
			st := tcp.New(s, ipl2.Network(ip.ProtoTCP), tcp.Config{})
			st.Listen(80, func(c *tcp.Conn) tcp.Handler {
				return tcp.Handler{
					Data:       func(c *tcp.Conn, d []byte) { got.Write(d) },
					PeerClosed: func(c *tcp.Conn) { peerClosed = true },
				}
			})
			bl := baseline.New(s, ipl1.Network(ip.ProtoTCP), baseline.Config{})
			conn, err := bl.Open(addr2, 80, baseline.Handler{})
			if err != nil {
				t.Fatalf("baseline->structured open: %v", err)
			}
			s.Fork("sender", func() { conn.Write(data); conn.Close() })
		}
		s.Sleep(10 * time.Minute)
		if !bytes.Equal(got.Bytes(), data) {
			t.Fatalf("interop transfer broken: %d of %d bytes", got.Len(), len(data))
		}
		if !peerClosed {
			t.Fatal("interop close handshake broken")
		}
	})
}

func TestInteropStructuredClientBaselineServer(t *testing.T) { interop(t, true) }
func TestInteropBaselineClientStructuredServer(t *testing.T) { interop(t, false) }

func TestBaselineBidirectionalEcho(t *testing.T) {
	runBL(t, wire.Config{}, func(s *sim.Scheduler, a, b blHost) {
		var got bytes.Buffer
		b.BL.Listen(7, func(c *baseline.Conn) baseline.Handler {
			return baseline.Handler{Data: func(c *baseline.Conn, d []byte) { c.Write(d) }}
		})
		conn, err := a.BL.Open(b.A, 7, baseline.Handler{
			Data: func(c *baseline.Conn, d []byte) { got.Write(d) },
		})
		if err != nil {
			t.Fatal(err)
		}
		conn.Write([]byte("ping"))
		s.Sleep(time.Second)
		if got.String() != "ping" {
			t.Fatalf("echo got %q", got.String())
		}
		if !conn.Established() {
			t.Fatal("Established() false on a live connection")
		}
	})
}

func TestBaselineCloseHandshakeStates(t *testing.T) {
	runBL(t, wire.Config{}, func(s *sim.Scheduler, a, b blHost) {
		var server *baseline.Conn
		b.BL.Listen(80, func(c *baseline.Conn) baseline.Handler {
			server = c
			return baseline.Handler{PeerClosed: func(c *baseline.Conn) {}}
		})
		conn, _ := a.BL.Open(b.A, 80, baseline.Handler{})
		if err := conn.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		s.Sleep(time.Second)
		if err := server.Close(); err != nil {
			t.Fatalf("server Close: %v", err)
		}
		s.Sleep(time.Second)
		if conn.Err() != nil || server.Err() != nil {
			t.Fatalf("errors after clean close: %v / %v", conn.Err(), server.Err())
		}
	})
}

func TestBaselineOutOfOrderReassembly(t *testing.T) {
	runBL(t, wire.Config{Jitter: 0.3, JitterMax: 3 * time.Millisecond, Seed: 17}, func(s *sim.Scheduler, a, b blHost) {
		var got bytes.Buffer
		b.BL.Listen(80, func(c *baseline.Conn) baseline.Handler {
			return baseline.Handler{Data: func(c *baseline.Conn, d []byte) { got.Write(d) }}
		})
		conn, _ := a.BL.Open(b.A, 80, baseline.Handler{})
		data := make([]byte, 60_000)
		r := basis.NewRand(12)
		for i := range data {
			data[i] = byte(r.Uint64())
		}
		s.Fork("w", func() { conn.Write(data) })
		s.Sleep(10 * time.Minute)
		if !bytes.Equal(got.Bytes(), data) {
			t.Fatalf("reordered delivery broke the baseline: %d of %d", got.Len(), len(data))
		}
	})
}

func TestBaselineWriteAfterCloseRejected(t *testing.T) {
	runBL(t, wire.Config{}, func(s *sim.Scheduler, a, b blHost) {
		b.BL.Listen(80, func(c *baseline.Conn) baseline.Handler { return baseline.Handler{} })
		conn, _ := a.BL.Open(b.A, 80, baseline.Handler{})
		conn.Close()
		if err := conn.Write([]byte("x")); err != baseline.ErrClosed {
			t.Fatalf("Write after Close: %v", err)
		}
	})
}

func TestBaselineUserTimeoutOnDeadWire(t *testing.T) {
	s := sim.New(sim.Config{})
	s.Run(func() {
		seg := wire.NewSegment(s, wire.Config{Loss: 1}, nil)
		addr := ip.HostAddr(1)
		eth := ethernet.New(seg.NewPort("a", nil), ethernet.HostAddr(1), ethernet.Config{})
		res := arp.New(s, eth, addr, arp.Config{})
		res.AddStatic(ip.HostAddr(2), ethernet.HostAddr(2))
		ipl := ip.New(s, eth, res, ip.Config{Local: addr})
		bl := baseline.New(s, ipl.Network(ip.ProtoTCP), baseline.Config{UserTimeout: 3 * time.Second})
		_, err := bl.Open(ip.HostAddr(2), 80, baseline.Handler{})
		if err != baseline.ErrTimeout {
			t.Fatalf("open over dead wire: %v", err)
		}
	})
}
