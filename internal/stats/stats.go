// Package stats is the machine-readable counterpart of the paper's
// do_prints/do_traces text tracing: a zero-dependency metrics registry
// holding MIB-style counter groups (RFC 2011/2012 shape) for every
// protocol layer, per-connection statistics, scheduler metrics, and a
// structured event ring.
//
// Concurrency discipline mirrors the stack's two worlds. Counter, Gauge
// and Histogram are atomic (sync/atomic) so a snapshot may be taken from
// outside the scheduler while a simulation is live. Everything plain —
// the EventRing and the per-connection fields on the TCB — is mutated
// only inside the quasi-synchronous executor, where the scheduler's
// channel-handoff protocol already provides happens-before, so no
// atomics are needed and `go test -race` proves the split sound.
//
// Like the Tracer, everything is nil-safe: a detached *Counter or a host
// with no Registry installed costs at most one branch per touch, and the
// layer configs allocate their own MIB group when none is supplied so
// the increment sites themselves are branch-free.
package stats

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/bits"
	"reflect"
	"sort"
	"strconv"
	"sync/atomic"
)

// Counter is a monotonically increasing 64-bit counter. The zero value
// is ready to use; all methods are nil-safe.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a signed instantaneous value that also remembers its
// high-water mark. The zero value is ready; all methods are nil-safe.
type Gauge struct {
	v  atomic.Int64
	hw atomic.Int64
}

// Add moves the gauge by d and returns the new value.
func (g *Gauge) Add(d int64) int64 {
	if g == nil {
		return 0
	}
	n := g.v.Add(d)
	g.bump(n)
	return n
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
	g.bump(n)
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// High returns the highest value the gauge has held.
func (g *Gauge) High() int64 {
	if g == nil {
		return 0
	}
	return g.hw.Load()
}

func (g *Gauge) bump(n int64) {
	for {
		h := g.hw.Load()
		if n <= h || g.hw.CompareAndSwap(h, n) {
			return
		}
	}
}

// HistBuckets is the fixed bucket count of a Histogram: bucket i counts
// observations whose value needs i significant bits, i.e. the range
// [2^(i-1), 2^i); bucket 0 counts zeros and the last bucket is open.
const HistBuckets = 32

// Histogram is a fixed-bucket power-of-two histogram. The zero value is
// ready; Observe is nil-safe and allocation-free.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [HistBuckets]atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	b := bits.Len64(v)
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	h.buckets[b].Add(1)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the mean observed value, 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 {
	if h == nil || i < 0 || i >= HistBuckets {
		return 0
	}
	return h.buckets[i].Load()
}

// BucketBound returns the inclusive upper bound of bucket i.
func BucketBound(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// --- MIB groups ----------------------------------------------------------
//
// One struct per protocol layer, field names following RFC 2011/2012 (and
// their neighbors for the layers SNMP never standardized here). Each
// layer's Config.fill allocates its group when none was supplied, so the
// increment sites never branch; installing the same group into a Registry
// is what makes it visible.

// TCPMIB is the RFC 2012-style tcp group, plus an Rtt histogram of
// smoothed round-trip-time samples in microseconds.
type TCPMIB struct {
	ActiveOpens  Counter // transitions to SYN-SENT from CLOSED
	PassiveOpens Counter // transitions to SYN-RECEIVED from LISTEN
	AttemptFails Counter // SYN-SENT/SYN-RCVD directly to CLOSED/LISTEN
	EstabResets  Counter // ESTABLISHED/CLOSE-WAIT directly to CLOSED
	CurrEstab    Gauge   // connections currently ESTABLISHED or CLOSE-WAIT
	InSegs       Counter // segments received, including errored ones
	OutSegs      Counter // segments sent, excluding retransmissions
	RetransSegs  Counter // segments retransmitted
	InErrs       Counter // segments discarded for bad checksum/format
	OutRsts      Counter // RST segments sent
	RttUsec      Histogram
}

// HardenMIB counts the hostile-network defenses: RFC 5961 challenge
// ACKs, SYN-backlog and reassembly-queue evictions, and the tcp_mem-style
// memory-accounting transitions. SNMP never standardized these; the field
// names follow Linux's netstat TcpExt spellings where one exists.
type HardenMIB struct {
	ChallengeACKsSent       Counter // RFC 5961 challenge ACKs emitted
	ChallengeACKsSuppressed Counter // challenge ACKs withheld by the rate limit
	OOWAcksSuppressed       Counter // out-of-window re-ACKs withheld (RFC 5961 §5.3 throttling)
	SynQueueOverflows       Counter // half-open connections evicted, table full
	SynDropsPressure        Counter // SYNs refused under memory pressure
	OOOEvictions            Counter // reassembly-queue segments evicted at the cap
	MemPressureEnter        Counter // normal -> pressure transitions
	MemPressureExit         Counter // returns to normal
	MemExhaustedEnter       Counter // transitions into exhausted
	HalfOpen                Gauge   // embryonic (SYN-received) connections now
	MemBytes                Gauge   // bytes charged to the endpoint memory account
}

// SealMIB counts the flight journal's tamper-evidence machinery: Merkle
// batches committed into the sealed chain, segment rotations, compaction
// passes, and chain verifications. SNMP has no audit-log group; the
// names follow the seal package's own vocabulary.
type SealMIB struct {
	RecordsSealed   Counter // journal records hashed into a batch
	BatchesSealed   Counter // Merkle roots committed into the chain
	SegmentsRotated Counter // segment files closed and rotated out
	BytesRotated    Counter // bytes in rotated-out segments
	SyncSeals       Counter // partial batches force-sealed by Sync
	Compactions     Counter // segment files rewritten by compaction
	DeltasDropped   Counter // end-record TCB deltas dropped by compaction
	VerifyRuns      Counter // chain verifications attempted
	VerifyFailures  Counter // chain verifications that found tampering
}

// FaultMIB counts the scripted fault plane's activity: every schedule
// transition applied to the wire, broken out by kind, plus a gauge of
// how many abnormal conditions are currently in force. SNMP has no
// fault-injection group; the names follow the .fsched vocabulary
// (internal/fault).
type FaultMIB struct {
	Transitions   Counter // schedule transitions applied, total
	LinkDowns     Counter // linkdown transitions
	LinkUps       Counter // linkup transitions
	Partitions    Counter // partition transitions
	Heals         Counter // heal transitions
	BurstStarts   Counter // burstloss activations
	BurstEnds     Counter // burstend deactivations
	CorruptStorms Counter // corruptstorm activations (corruptend clears)
	RateLimits    Counter // ratelimit activations (rateclear clears)
	DelaySpikes   Counter // delayspike activations (delayclear clears)
	Active        Gauge   // abnormal conditions currently in force
}

// IPMIB is the RFC 2011-style ip group.
type IPMIB struct {
	InReceives      Counter
	InHdrErrors     Counter
	InAddrErrors    Counter
	InUnknownProtos Counter
	InDelivers      Counter
	OutRequests     Counter
	OutDiscards     Counter
	OutNoRoutes     Counter
	ForwDatagrams   Counter
	ReasmReqds      Counter
	ReasmOKs        Counter
	ReasmFails      Counter
	FragOKs         Counter
	FragCreates     Counter
}

// UDPMIB is the RFC 2013-style udp group.
type UDPMIB struct {
	InDatagrams  Counter
	NoPorts      Counter
	InErrors     Counter
	OutDatagrams Counter
}

// ICMPMIB is the RFC 2011-style icmp group, trimmed to the message types
// this stack implements.
type ICMPMIB struct {
	InMsgs          Counter
	InErrors        Counter
	InDestUnreachs  Counter
	InTimeExcds     Counter
	InEchos         Counter
	InEchoReps      Counter
	OutMsgs         Counter
	OutDestUnreachs Counter
	OutTimeExcds    Counter
	OutEchos        Counter
	OutEchoReps     Counter
}

// ARPMIB counts the address-resolution traffic under the ip group's
// media table in the MIB; broken out here because the paper's stack
// treats ARP as a peer protocol.
type ARPMIB struct {
	InRequests  Counter
	InReplies   Counter
	OutRequests Counter
	OutReplies  Counter
	Learned     Counter // cache entries created or refreshed
	Failures    Counter // resolutions that timed out
	Malformed   Counter
}

// EthMIB is the interfaces-group equivalent for the device layer.
type EthMIB struct {
	InFrames        Counter
	InOctets        Counter
	InErrors        Counter // FCS failures
	InDiscards      Counter // frames for another station
	InUnknownProtos Counter
	InRunts         Counter
	OutFrames       Counter
	OutOctets       Counter
}

// --- Registry ------------------------------------------------------------

// Sample is one named value in a snapshot. Values are float64 so counters
// and derived means share a representation; counters are integral and
// render without a decimal point.
type Sample struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// GroupSnapshot is the rendered state of one registered group.
type GroupSnapshot struct {
	Name    string   `json:"name"`
	Samples []Sample `json:"samples"`
}

// Snapshot is a point-in-time rendering of a whole Registry.
type Snapshot struct {
	Host   string          `json:"host"`
	Groups []GroupSnapshot `json:"groups"`
}

type entry struct {
	name  string
	group any             // pointer to a struct of Counter/Gauge/Histogram
	fn    func() []Sample // or a closure producing samples directly
}

// Registry aggregates the metric groups of one host (or one shared
// substrate). Registration happens at stack-assembly time on a single
// thread; Snapshot may run at any time, from any goroutine, because every
// registered value is atomic.
type Registry struct {
	host    string
	entries []entry
	ring    *EventRing
}

// RingSize is the capacity of a Registry's event ring.
const RingSize = 256

// NewRegistry returns a registry for the named host with an event ring
// of RingSize entries.
func NewRegistry(host string) *Registry {
	return NewRegistrySized(host, RingSize)
}

// NewRegistrySized is NewRegistry with an explicit event-ring capacity:
// the ring retains the most recent n events (n <= 0 takes RingSize).
// Long soaks pass a large n to keep full histories; memory-tight runs
// shrink it.
func NewRegistrySized(host string, n int) *Registry {
	return &Registry{host: host, ring: NewEventRing(n)}
}

// Host returns the registry's host name ("" for nil).
func (r *Registry) Host() string {
	if r == nil {
		return ""
	}
	return r.host
}

// Ring returns the registry's event ring (nil for a nil registry, which
// EventRing methods tolerate).
func (r *Registry) Ring() *EventRing {
	if r == nil {
		return nil
	}
	return r.ring
}

// Register adds a named group — a pointer to a struct whose exported
// fields are Counter, Gauge or Histogram values. Unknown field types are
// skipped at snapshot time. Nil-safe; nil groups are ignored.
func (r *Registry) Register(name string, group any) {
	if r == nil || group == nil {
		return
	}
	r.entries = append(r.entries, entry{name: name, group: group})
}

// RegisterFunc adds a named group whose samples are produced by fn at
// snapshot time — for sources that keep plain counters of their own,
// like the scheduler and the wire.
func (r *Registry) RegisterFunc(name string, fn func() []Sample) {
	if r == nil || fn == nil {
		return
	}
	r.entries = append(r.entries, entry{name: name, fn: fn})
}

// Snapshot renders every registered group. Groups appear in registration
// order; struct samples in field order.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	snap := Snapshot{Host: r.host}
	for _, e := range r.entries {
		g := GroupSnapshot{Name: e.name}
		if e.fn != nil {
			g.Samples = e.fn()
		} else {
			g.Samples = walkGroup(e.group)
		}
		snap.Groups = append(snap.Groups, g)
	}
	return snap
}

var (
	counterType   = reflect.TypeOf(Counter{})
	gaugeType     = reflect.TypeOf(Gauge{})
	histogramType = reflect.TypeOf(Histogram{})
)

// walkGroup turns a pointer-to-struct of metric values into samples via
// reflection. This is the cold path — it runs only at snapshot time, so
// the hot increment paths stay free of any indirection.
func walkGroup(group any) []Sample {
	v := reflect.ValueOf(group)
	if v.Kind() != reflect.Pointer || v.IsNil() || v.Elem().Kind() != reflect.Struct {
		return nil
	}
	v = v.Elem()
	t := v.Type()
	var out []Sample
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		switch f.Type {
		case counterType:
			c := v.Field(i).Addr().Interface().(*Counter)
			out = append(out, Sample{Name: f.Name, Value: float64(c.Load())})
		case gaugeType:
			g := v.Field(i).Addr().Interface().(*Gauge)
			out = append(out,
				Sample{Name: f.Name, Value: float64(g.Load())},
				Sample{Name: f.Name + "High", Value: float64(g.High())})
		case histogramType:
			h := v.Field(i).Addr().Interface().(*Histogram)
			out = append(out,
				Sample{Name: f.Name + "Count", Value: float64(h.Count())},
				Sample{Name: f.Name + "Sum", Value: float64(h.Sum())},
				Sample{Name: f.Name + "Mean", Value: h.Mean()})
		}
	}
	return out
}

// Text renders the snapshot as aligned "group.Name value" lines, one per
// sample, in registration order.
func (s Snapshot) Text() string {
	width := 0
	for _, g := range s.Groups {
		for _, smp := range g.Samples {
			if n := len(g.Name) + 1 + len(smp.Name); n > width {
				width = n
			}
		}
	}
	var b bytes.Buffer
	if s.Host != "" {
		fmt.Fprintf(&b, "# host %s\n", s.Host)
	}
	for _, g := range s.Groups {
		for _, smp := range g.Samples {
			fmt.Fprintf(&b, "%-*s %s\n", width, g.Name+"."+smp.Name, formatValue(smp.Value))
		}
	}
	return b.String()
}

// JSON renders the snapshot as a nested object
// {"host": ..., "groups": {"tcp": {"InSegs": 42, ...}, ...}} with keys
// sorted by encoding/json, so output is deterministic and easy to index.
func (s Snapshot) JSON() ([]byte, error) {
	groups := map[string]map[string]float64{}
	for _, g := range s.Groups {
		m := groups[g.Name]
		if m == nil {
			m = map[string]float64{}
			groups[g.Name] = m
		}
		for _, smp := range g.Samples {
			m[smp.Name] = smp.Value
		}
	}
	return json.MarshalIndent(struct {
		Host   string                        `json:"host"`
		Groups map[string]map[string]float64 `json:"groups"`
	}{s.Host, groups}, "", "  ")
}

// Get returns the named sample ("group.Name") and whether it exists —
// the assertion hook for tests.
func (s Snapshot) Get(name string) (float64, bool) {
	for _, g := range s.Groups {
		for _, smp := range g.Samples {
			if g.Name+"."+smp.Name == name {
				return smp.Value, true
			}
		}
	}
	return 0, false
}

// Names returns every "group.Name" key in the snapshot, sorted.
func (s Snapshot) Names() []string {
	var out []string
	for _, g := range s.Groups {
		for _, smp := range g.Samples {
			out = append(out, g.Name+"."+smp.Name)
		}
	}
	sort.Strings(out)
	return out
}

// formatValue prints integral values without a decimal point and
// fractional ones compactly.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', -1, 64)
}
