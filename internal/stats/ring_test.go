package stats

import (
	"encoding/json"
	"testing"
)

func TestNewRegistrySizedCapacity(t *testing.T) {
	r := NewRegistrySized("h", 8)
	for i := 0; i < 100; i++ {
		r.Ring().Add(int64(i), EvRetransmit, "c", "")
	}
	if r.Ring().Len() != 8 {
		t.Fatalf("Len = %d, want configured capacity 8", r.Ring().Len())
	}
	if r.Ring().Total() != 100 {
		t.Fatalf("Total = %d, want 100", r.Ring().Total())
	}
	// The retained window is exactly the last 8 adds, oldest first.
	for i, ev := range r.Ring().Events() {
		if want := int64(92 + i); ev.At != want {
			t.Fatalf("event %d At = %d, want %d", i, ev.At, want)
		}
	}
	// Non-positive capacities fall back to the default.
	if got := NewRegistrySized("h", 0).Ring(); len(got.buf) != RingSize {
		t.Fatalf("zero capacity gave %d slots, want RingSize", len(got.buf))
	}
	if got := NewRegistrySized("h", -3).Ring(); len(got.buf) != RingSize {
		t.Fatalf("negative capacity gave %d slots, want RingSize", len(got.buf))
	}
}

// Events that survive a wraparound must round-trip through JSON with
// their kind intact. Kind (the enum) is deliberately json:"-"; KindS is
// the serialized form, and it must be populated on every retained slot —
// including slots that were overwritten after the ring wrapped.
func TestEventRingWrapJSONRoundTrip(t *testing.T) {
	r := NewEventRing(3)
	kinds := []EventKind{
		EvStateTransition, EvRetransmit, EvRTOBackoff, EvZeroWindow,
		EvRST, EvChallengeACK, EvMemPressure,
	}
	for i, k := range kinds {
		r.Add(int64(i), k, "conn", "detail")
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	data, err := json.Marshal(evs)
	if err != nil {
		t.Fatal(err)
	}
	var back []Event
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for i, ev := range back {
		orig := kinds[len(kinds)-3+i]
		if ev.KindS != orig.String() {
			t.Errorf("event %d KindS = %q, want %q", i, ev.KindS, orig.String())
		}
		if ev.Kind != 0 {
			t.Errorf("event %d Kind = %d survived JSON; the enum is json:\"-\"", i, ev.Kind)
		}
		if ev.At != int64(len(kinds)-3+i) {
			t.Errorf("event %d At = %d, out of order", i, ev.At)
		}
	}
}
