package stats

// EventKind classifies a structured stack event.
type EventKind uint8

const (
	// EvStateTransition records a TCP state-machine move; Detail is
	// "FROM -> TO".
	EvStateTransition EventKind = iota
	// EvRetransmit records a segment retransmission (timeout or fast).
	EvRetransmit
	// EvRTOBackoff records an exponential RTO backoff step.
	EvRTOBackoff
	// EvZeroWindow records the peer's window closing to zero (persist
	// timer armed).
	EvZeroWindow
	// EvRST records a reset sent or received; Detail says which.
	EvRST
	// EvChallengeACK records an RFC 5961 challenge ACK answering an
	// in-window-but-not-exact RST or SYN; Detail names the probe shape.
	EvChallengeACK
	// EvMemPressure records an endpoint memory-accounting state change;
	// Detail is "FROM -> TO" over normal/pressure/exhausted.
	EvMemPressure
)

func (k EventKind) String() string {
	switch k {
	case EvStateTransition:
		return "state"
	case EvRetransmit:
		return "rexmit"
	case EvRTOBackoff:
		return "backoff"
	case EvZeroWindow:
		return "zerowin"
	case EvRST:
		return "rst"
	case EvChallengeACK:
		return "challenge"
	case EvMemPressure:
		return "mem"
	}
	return "event?"
}

// Event is one entry in an EventRing. At is a virtual-time timestamp in
// nanoseconds (sim.Time's representation); the stats package stays
// ignorant of the scheduler so it depends on nothing.
type Event struct {
	At     int64     `json:"at_ns"`
	Kind   EventKind `json:"-"`
	KindS  string    `json:"kind"`
	Conn   string    `json:"conn,omitempty"`
	Detail string    `json:"detail,omitempty"`
}

// EventRing is a fixed-size overwrite-oldest buffer of Events. It is
// plain (no atomics): every writer runs inside the quasi-synchronous
// executor where the scheduler's handoff protocol provides
// happens-before, and readers run on-scheduler or after Run returns.
// Add on a nil ring is a cheap no-op, matching the Tracer discipline.
type EventRing struct {
	buf  []Event
	next uint64 // total events ever added; next slot is next % len(buf)
}

// NewEventRing returns a ring holding the most recent n events.
func NewEventRing(n int) *EventRing {
	if n <= 0 {
		n = RingSize
	}
	return &EventRing{buf: make([]Event, n)}
}

// Add appends an event, overwriting the oldest when full.
func (r *EventRing) Add(at int64, kind EventKind, conn, detail string) {
	if r == nil {
		return
	}
	r.buf[r.next%uint64(len(r.buf))] = Event{At: at, Kind: kind, KindS: kind.String(), Conn: conn, Detail: detail}
	r.next++
}

// Len reports how many events the ring currently holds.
func (r *EventRing) Len() int {
	if r == nil {
		return 0
	}
	if r.next < uint64(len(r.buf)) {
		return int(r.next)
	}
	return len(r.buf)
}

// Total reports how many events were ever added, including overwritten
// ones.
func (r *EventRing) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.next
}

// Events returns the retained events oldest-first, as a copy.
func (r *EventRing) Events() []Event {
	n := r.Len()
	if n == 0 {
		return nil
	}
	out := make([]Event, 0, n)
	start := r.next - uint64(n)
	for i := uint64(0); i < uint64(n); i++ {
		out = append(out, r.buf[(start+i)%uint64(len(r.buf))])
	}
	return out
}
