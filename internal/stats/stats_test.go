package stats

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterNilSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(7)
	if c.Load() != 0 {
		t.Fatalf("nil counter Load = %d", c.Load())
	}
}

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("Load = %d, want 42", got)
	}
}

func TestGaugeHighWater(t *testing.T) {
	var g Gauge
	g.Inc()
	g.Inc()
	g.Inc() // 3
	g.Dec() // 2
	g.Dec() // 1
	if got := g.Load(); got != 1 {
		t.Fatalf("Load = %d, want 1", got)
	}
	if got := g.High(); got != 3 {
		t.Fatalf("High = %d, want 3", got)
	}
	g.Set(10)
	if got := g.High(); got != 10 {
		t.Fatalf("High after Set = %d, want 10", got)
	}
	var nilg *Gauge
	nilg.Inc()
	nilg.Set(5)
	if nilg.Load() != 0 || nilg.High() != 0 {
		t.Fatal("nil gauge not inert")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)   // bucket 0
	h.Observe(1)   // bucket 1
	h.Observe(2)   // bucket 2
	h.Observe(3)   // bucket 2
	h.Observe(100) // bucket 7 (64..127)
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if h.Sum() != 106 {
		t.Fatalf("Sum = %d, want 106", h.Sum())
	}
	if got := h.Bucket(2); got != 2 {
		t.Fatalf("Bucket(2) = %d, want 2", got)
	}
	if got := h.Bucket(7); got != 1 {
		t.Fatalf("Bucket(7) = %d, want 1", got)
	}
	if want := 106.0 / 5; h.Mean() != want {
		t.Fatalf("Mean = %v, want %v", h.Mean(), want)
	}
	if BucketBound(3) != 7 {
		t.Fatalf("BucketBound(3) = %d, want 7", BucketBound(3))
	}
	var nilh *Histogram
	nilh.Observe(9)
	if nilh.Count() != 0 || nilh.Mean() != 0 {
		t.Fatal("nil histogram not inert")
	}
}

// TestAtomicUnderRace hammers the atomic metric types from many
// goroutines at once while snapshots are taken concurrently. Run under
// `go test -race` (the Makefile `check` target does) this proves the
// atomic half of the atomic/plain split: these types are safe to touch
// off the scheduler.
func TestAtomicUnderRace(t *testing.T) {
	var mib TCPMIB
	r := NewRegistry("race")
	r.Register("tcp", &mib)

	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				mib.InSegs.Inc()
				mib.OutSegs.Add(2)
				mib.CurrEstab.Inc()
				mib.CurrEstab.Dec()
				mib.RttUsec.Observe(uint64(i))
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	<-done

	snap := r.Snapshot()
	if v, _ := snap.Get("tcp.InSegs"); v != workers*iters {
		t.Fatalf("tcp.InSegs = %v, want %d", v, workers*iters)
	}
	if v, _ := snap.Get("tcp.OutSegs"); v != 2*workers*iters {
		t.Fatalf("tcp.OutSegs = %v, want %d", v, 2*workers*iters)
	}
	if v, _ := snap.Get("tcp.CurrEstab"); v != 0 {
		t.Fatalf("tcp.CurrEstab = %v, want 0", v)
	}
	if hw, _ := snap.Get("tcp.CurrEstabHigh"); hw < 1 {
		t.Fatalf("tcp.CurrEstabHigh = %v, want >= 1", hw)
	}
	if v, _ := snap.Get("tcp.RttUsecCount"); v != workers*iters {
		t.Fatalf("tcp.RttUsecCount = %v, want %d", v, workers*iters)
	}
}

func TestRegistrySnapshotTextAndJSON(t *testing.T) {
	r := NewRegistry("alpha")
	var tcp TCPMIB
	var ip IPMIB
	tcp.InSegs.Add(10)
	tcp.OutSegs.Add(11)
	tcp.CurrEstab.Inc()
	ip.InReceives.Add(20)
	r.Register("tcp", &tcp)
	r.Register("ip", &ip)
	r.RegisterFunc("sched", func() []Sample {
		return []Sample{{Name: "Forks", Value: 5}, {Name: "Switches", Value: 9}}
	})

	snap := r.Snapshot()
	if v, ok := snap.Get("tcp.InSegs"); !ok || v != 10 {
		t.Fatalf("tcp.InSegs = %v, %v", v, ok)
	}
	if v, ok := snap.Get("sched.Forks"); !ok || v != 5 {
		t.Fatalf("sched.Forks = %v, %v", v, ok)
	}

	text := snap.Text()
	for _, want := range []string{"# host alpha", "tcp.InSegs", "ip.InReceives", "sched.Switches"} {
		if !strings.Contains(text, want) {
			t.Fatalf("Text() missing %q:\n%s", want, text)
		}
	}

	raw, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Host   string                        `json:"host"`
		Groups map[string]map[string]float64 `json:"groups"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if parsed.Host != "alpha" {
		t.Fatalf("host = %q", parsed.Host)
	}
	if parsed.Groups["tcp"]["OutSegs"] != 11 {
		t.Fatalf("groups.tcp.OutSegs = %v", parsed.Groups["tcp"]["OutSegs"])
	}
	if parsed.Groups["ip"]["InReceives"] != 20 {
		t.Fatalf("groups.ip.InReceives = %v", parsed.Groups["ip"]["InReceives"])
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	r.Register("tcp", &TCPMIB{})
	r.RegisterFunc("x", func() []Sample { return nil })
	if r.Host() != "" {
		t.Fatal("nil registry host")
	}
	if r.Ring() != nil {
		t.Fatal("nil registry ring")
	}
	snap := r.Snapshot()
	if len(snap.Groups) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	// The ring from a nil registry must itself be inert.
	r.Ring().Add(1, EvRST, "c", "d")
	if r.Ring().Len() != 0 {
		t.Fatal("nil ring accepted an event")
	}
}

func TestEventRingOrderAndOverwrite(t *testing.T) {
	r := NewEventRing(4)
	for i := 0; i < 6; i++ {
		r.Add(int64(i), EvStateTransition, "conn", "")
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Total() != 6 {
		t.Fatalf("Total = %d, want 6", r.Total())
	}
	evs := r.Events()
	for i, ev := range evs {
		if want := int64(i + 2); ev.At != want {
			t.Fatalf("event %d At = %d, want %d (oldest-first)", i, ev.At, want)
		}
	}
	if evs[0].KindS != "state" {
		t.Fatalf("KindS = %q", evs[0].KindS)
	}
}

func TestSnapshotGetAndNames(t *testing.T) {
	r := NewRegistry("h")
	var u UDPMIB
	u.InDatagrams.Add(3)
	r.Register("udp", &u)
	snap := r.Snapshot()
	names := snap.Names()
	if len(names) != 4 {
		t.Fatalf("Names = %v, want the 4 UDPMIB fields", names)
	}
	if _, ok := snap.Get("udp.Bogus"); ok {
		t.Fatal("Get found a nonexistent sample")
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

func BenchmarkRingAdd(b *testing.B) {
	r := NewEventRing(256)
	for i := 0; i < b.N; i++ {
		r.Add(int64(i), EvRetransmit, "a:1-b:2", "")
	}
}
