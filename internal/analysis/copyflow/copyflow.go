// Package copyflow machine-checks the paper's one-copy invariant on
// the zero-copy datapath: each user byte is copied at most once per
// direction — by queueTake on send (user buffer → packet) and by
// Conn.Read on receive (segment → user buffer). Everything between
// those two copies aliases: sg.data aliases the packet buffer, the
// receive queue stores the same slices, and the layers below move the
// *basis.Packet by reference.
//
// The pass classifies payload-carrying values interprocedurally
// through the datapath (tcp → ip → ethernet → wire): a *basis.Packet
// is payload by type; a []byte is payload when it comes from
// Packet.Bytes, from a []byte struct field named "data" (the
// codebase's convention for segment/fragment/frame payloads), from
// slicing another payload, or — via a module-wide fixpoint — from a
// parameter or result that a call path proves payload. It then flags
// every copy event whose source is payload:
//
//   - the copy builtin and growing append on byte slices,
//   - string(payload) conversions,
//   - basis.NewPacket(h, t, payload) — the allocator's one copy in —
//     and Packet.Clone at their call sites.
//
// Three escapes define the proved copy map rather than noise:
// the sanctioned copies (queueTake, Conn.Read) are data, not findings;
// the basis package is mechanism (its bodies implement the copies its
// callers are charged for); and a deliberate boundary — the simulated
// kernel crossing in wire, IP fragmentation and reassembly — carries a
// //foxvet:boundary-copy <reason> directive on the line or the
// function's doc comment. A directive without a reason is itself an
// error: boundaries are reviewed, not waved through.
//
// Extract renders the proved copy map per layer as Graphviz — every
// sanctioned, boundary, and violating site with counts — for the
// -copyflow-dot flag.
package copyflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// Analyzer is the copyflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "copyflow",
	Doc:  "prove the one-copy datapath invariant: payload bytes are copied once per direction (queueTake on send, Conn.Read on receive); any other payload copy must carry a reviewed //foxvet:boundary-copy reason",
	Run:  run,
}

// directive marks a reviewed, deliberate boundary copy.
const directive = "//foxvet:boundary-copy"

// eventScope names the packages whose bodies are checked. The basis
// package is classification scope only: its bodies are the mechanism
// the call sites are charged for.
var eventScope = map[string]bool{
	"tcp":      true,
	"ip":       true,
	"ethernet": true,
	"wire":     true,
}

// kind classifies a copy site in the proved map.
type kind int

const (
	kindViolation kind = iota
	kindSanctioned
	kindBoundary
)

func (k kind) String() string {
	switch k {
	case kindSanctioned:
		return "sanctioned"
	case kindBoundary:
		return "boundary"
	}
	return "violation"
}

// event is one copy site.
type event struct {
	pos  token.Pos
	what string // copy | append | string | NewPacket | Clone
}

func run(pass *analysis.Pass) (any, error) {
	if !eventScope[lastElem(pass.Pkg.Path())] {
		return nil, nil
	}
	w := worldOf(pass)
	for _, f := range pass.Files {
		if testFile(pass.Fset, f) {
			continue
		}
		lines := directiveLines(pass.Fset, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			sanctioned := isSanctioned(fn)
			fnReason, fnMarked := docDirective(fd)
			if fnMarked && fnReason == "" {
				pass.Reportf(fd.Pos(), "%s needs a reason: say why this function's copy is a deliberate boundary", directive)
			}
			for _, ev := range w.events(pass.TypesInfo, fd, sanctioned) {
				if sanctioned {
					continue
				}
				if fnMarked {
					continue
				}
				line := pass.Fset.Position(ev.pos).Line
				if reason, ok := lines[line]; ok {
					if reason == "" {
						pass.Reportf(ev.pos, "%s needs a reason: say why this %s is a deliberate boundary", directive, ev.what)
					}
					continue
				}
				pass.Reportf(ev.pos, "unsanctioned payload copy (%s): the datapath copies each user byte once per direction — queueTake on send, Conn.Read on receive; mark a deliberate boundary %s <reason>", ev.what, directive)
			}
		}
	}
	return nil, nil
}

// isSanctioned reports whether fn is one of the two data copies the
// invariant is stated around.
func isSanctioned(fn *types.Func) bool {
	if fnPkg(fn) != "tcp" {
		return false
	}
	switch fn.Name() {
	case "queueTake":
		return true
	case "Read":
		return recvNamed(fn) == "Conn"
	}
	return false
}

// world carries the module-wide payload classification.
type world struct {
	paramPayload  map[*types.Var]bool
	resultPayload map[*types.Func]bool
}

func worldOf(pass *analysis.Pass) *world {
	return pass.Shared.Memo("copyflow.world", func() any {
		g := pass.Shared.Memo("callgraph", func() any {
			return callgraph.Build(pass.Shared.Packages)
		}).(*callgraph.Graph)
		return buildWorld(g)
	}).(*world)
}

// buildWorld runs the interprocedural payload fixpoint: a parameter is
// payload when any call site passes payload into it, a single []byte
// result is payload when any return statement yields payload.
func buildWorld(g *callgraph.Graph) *world {
	w := &world{
		paramPayload:  map[*types.Var]bool{},
		resultPayload: map[*types.Func]bool{},
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if n.Decl == nil || n.Fn == nil {
				continue // literal bodies are walked with their parent
			}
			if !classifyScope(n.Pkg.Path) {
				continue
			}
			info := n.Pkg.Info
			locals := w.locals(n.Decl, info)
			for _, e := range nodeEdges(n) {
				if e.Callee == nil {
					continue
				}
				sig, ok := e.Callee.Type().(*types.Signature)
				if !ok {
					continue
				}
				for i, arg := range e.Site.Args {
					if i >= sig.Params().Len() {
						break
					}
					p := sig.Params().At(i)
					if !isByteSlice(p.Type()) || w.paramPayload[p] {
						continue
					}
					if w.exprPayload(arg, locals, info) {
						w.paramPayload[p] = true
						changed = true
					}
				}
			}
			if fn := n.Fn; !w.resultPayload[fn] && singleByteResult(fn) {
				if w.returnsPayload(n.Decl.Body, locals, info) {
					w.resultPayload[fn] = true
					changed = true
				}
			}
		}
	}
	return w
}

// classifyScope includes basis: its types and accessors seed the
// classification even though its bodies are exempt from events.
func classifyScope(path string) bool {
	return eventScope[lastElem(path)] || lastElem(path) == "basis"
}

// nodeEdges flattens call sites including nested literals.
func nodeEdges(n *callgraph.Node) []callgraph.Edge {
	var out []callgraph.Edge
	var walk func(n *callgraph.Node)
	walk = func(n *callgraph.Node) {
		out = append(out, n.Edges...)
		out = append(out, n.ValueEdges...)
		for _, lit := range n.Lits {
			walk(lit)
		}
	}
	walk(n)
	return out
}

// locals computes the function's payload-carrying []byte locals,
// flow-insensitively to a small fixpoint.
func (w *world) locals(fd *ast.FuncDecl, info *types.Info) map[*types.Var]bool {
	set := map[*types.Var]bool{}
	for round := 0; round < 4; round++ {
		changed := false
		ast.Inspect(fd.Body, func(x ast.Node) bool {
			as, ok := x.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, l := range as.Lhs {
				id, ok := l.(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := info.ObjectOf(id).(*types.Var)
				if !ok || set[v] || !isByteSlice(v.Type()) {
					continue
				}
				if w.exprPayload(as.Rhs[i], set, info) {
					set[v] = true
					changed = true
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	return set
}

// exprPayload reports whether e evaluates to payload bytes.
func (w *world) exprPayload(e ast.Expr, locals map[*types.Var]bool, info *types.Info) bool {
	e = ast.Unparen(e)
	if isPacketType(info.TypeOf(e)) {
		return true
	}
	switch x := e.(type) {
	case *ast.Ident:
		v, ok := info.ObjectOf(x).(*types.Var)
		return ok && (locals[v] || w.paramPayload[v])
	case *ast.SliceExpr:
		return w.exprPayload(x.X, locals, info)
	case *ast.SelectorExpr:
		v, ok := info.ObjectOf(x.Sel).(*types.Var)
		return ok && v.IsField() && x.Sel.Name == "data" && isByteSlice(v.Type())
	case *ast.CallExpr:
		if tv, ok := info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return w.exprPayload(x.Args[0], locals, info)
		}
		fn := calleeOf(info, x)
		if fn == nil {
			return false
		}
		if fn.Name() == "Bytes" && recvNamed(fn) == "Packet" {
			return true
		}
		return w.resultPayload[fn]
	}
	return false
}

func (w *world) returnsPayload(body *ast.BlockStmt, locals map[*types.Var]bool, info *types.Info) bool {
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := x.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		if w.exprPayload(ret.Results[0], locals, info) {
			found = true
		}
		return !found
	})
	return found
}

// events finds the copy sites in fd's body (nested literals included —
// they run on the same path). In a sanctioned function every byte-slice
// copy counts as the sanctioned site; elsewhere the source must be
// payload.
func (w *world) events(info *types.Info, fd *ast.FuncDecl, sanctioned bool) []event {
	locals := w.locals(fd, info)
	var out []event
	payload := func(e ast.Expr) bool { return w.exprPayload(e, locals, info) }
	ast.Inspect(fd.Body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			if len(call.Args) == 1 && isString(info.TypeOf(call)) &&
				isByteSlice(info.TypeOf(call.Args[0])) && payload(call.Args[0]) {
				out = append(out, event{pos: call.Pos(), what: "string"})
			}
			return true
		}
		if name, ok := builtinOf(info, call); ok {
			switch name {
			case "copy":
				// A copy into a window over a fixed-size array is
				// header-field extraction (addresses, ports): bounded
				// by the field width, not the payload. Not an event.
				if len(call.Args) == 2 && isByteSlice(info.TypeOf(call.Args[0])) &&
					!arrayWindow(info, call.Args[0]) &&
					(sanctioned || payload(call.Args[1])) {
					out = append(out, event{pos: call.Pos(), what: "copy"})
				}
			case "append":
				if len(call.Args) > 0 && isByteSlice(info.TypeOf(call.Args[0])) {
					for _, arg := range call.Args {
						if sanctioned && len(call.Args) > 1 {
							out = append(out, event{pos: call.Pos(), what: "append"})
							break
						}
						if payload(arg) {
							out = append(out, event{pos: call.Pos(), what: "append"})
							break
						}
					}
				}
			}
			return true
		}
		fn := calleeOf(info, call)
		if fn == nil {
			return true
		}
		switch {
		case fn.Name() == "NewPacket" && fnPkg(fn) == "basis" && len(call.Args) == 3:
			if payload(call.Args[2]) {
				out = append(out, event{pos: call.Pos(), what: "NewPacket"})
			}
		case fn.Name() == "Clone" && recvNamed(fn) == "Packet":
			out = append(out, event{pos: call.Pos(), what: "Clone"})
		}
		return true
	})
	return out
}

// directiveLines maps source lines carrying //foxvet:boundary-copy to
// the reason text after the directive.
func directiveLines(fset *token.FileSet, f *ast.File) map[int]string {
	m := map[int]string{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
				m[fset.Position(c.Pos()).Line] = strings.TrimSpace(strings.TrimPrefix(c.Text, directive))
			}
		}
	}
	return m
}

// docDirective reports a function-wide boundary directive in the doc
// comment, with its reason.
func docDirective(fd *ast.FuncDecl) (reason string, ok bool) {
	if fd.Doc == nil {
		return "", false
	}
	for _, c := range fd.Doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return strings.TrimSpace(strings.TrimPrefix(c.Text, directive)), true
		}
	}
	return "", false
}

// --- type helpers ---

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8)
}

// arrayWindow reports whether e is a slice expression over a value of
// array type, the fixed-width header-field idiom (copy(addr[:], h[12:16])).
func arrayWindow(info *types.Info, e ast.Expr) bool {
	se, ok := ast.Unparen(e).(*ast.SliceExpr)
	if !ok {
		return false
	}
	t := info.TypeOf(se.X)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	_, ok = t.Underlying().(*types.Array)
	return ok
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isPacketType recognizes basis.Packet (by name: the testdata packages
// model it under the same shape).
func isPacketType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Packet" && named.Obj().Pkg() != nil &&
		lastElem(named.Obj().Pkg().Path()) == "basis"
}

func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

func singleByteResult(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Results().Len() == 1 && isByteSlice(sig.Results().At(0).Type())
}

func fnPkg(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return lastElem(fn.Pkg().Path())
}

func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.ObjectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.ObjectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}

func builtinOf(info *types.Info, call *ast.CallExpr) (string, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	b, ok := info.ObjectOf(id).(*types.Builtin)
	if !ok {
		return "", false
	}
	return b.Name(), true
}

func lastElem(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

func testFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Package).Filename, "_test.go")
}

// --- dot export ---

// site is one classified copy site in the proved map.
type site struct {
	pkg    string
	fn     string
	what   string
	kind   kind
	reason string
}

// Extract builds the proved copy map over the loaded packages and
// renders it as deterministic Graphviz: one cluster per layer in
// datapath order, one node per function holding copy sites, annotated
// with site counts and classification.
func Extract(pkgs []*analysis.Package) (string, error) {
	g := callgraph.Build(pkgs)
	w := buildWorld(g)
	var sites []site
	for _, pkg := range pkgs {
		if !eventScope[lastElem(pkg.Path)] {
			continue
		}
		for _, f := range pkg.Files {
			if testFile(pkg.Fset, f) {
				continue
			}
			lines := directiveLines(pkg.Fset, f)
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				sanctioned := isSanctioned(fn)
				fnReason, fnMarked := docDirective(fd)
				for _, ev := range w.events(pkg.Info, fd, sanctioned) {
					s := site{pkg: lastElem(pkg.Path), fn: funcLabel(fd, fn), what: ev.what}
					switch {
					case sanctioned:
						s.kind = kindSanctioned
					case fnMarked:
						s.kind, s.reason = kindBoundary, fnReason
					default:
						if reason, ok := lines[pkg.Fset.Position(ev.pos).Line]; ok {
							s.kind, s.reason = kindBoundary, reason
						}
					}
					sites = append(sites, s)
				}
			}
		}
	}
	return renderDot(sites), nil
}

func funcLabel(fd *ast.FuncDecl, fn *types.Func) string {
	if fd.Recv != nil {
		return recvNamed(fn) + "." + fn.Name()
	}
	return fn.Name()
}

// layerOrder is the datapath top-down.
var layerOrder = []string{"tcp", "ip", "ethernet", "wire"}

func renderDot(sites []site) string {
	type nodeKey struct {
		pkg, fn string
	}
	type nodeInfo struct {
		counts  map[string]int // what → count
		kind    kind
		reasons map[string]bool
	}
	nodes := map[nodeKey]*nodeInfo{}
	for _, s := range sites {
		k := nodeKey{s.pkg, s.fn}
		n := nodes[k]
		if n == nil {
			n = &nodeInfo{counts: map[string]int{}, kind: s.kind, reasons: map[string]bool{}}
			nodes[k] = n
		}
		n.counts[s.what]++
		if s.kind == kindViolation {
			n.kind = kindViolation // any violation taints the node
		}
		if s.reason != "" {
			n.reasons[s.reason] = true
		}
	}

	var b strings.Builder
	b.WriteString("digraph copyflow {\n")
	b.WriteString("\trankdir=TB;\n")
	b.WriteString("\tlabel=\"proved copy map: each user byte copied at most once per direction\\nsolid = sanctioned data copy, dashed = reviewed boundary, red = violation\";\n")
	b.WriteString("\tnode [shape=box, fontname=\"monospace\"];\n")
	for _, layer := range layerOrder {
		fmt.Fprintf(&b, "\tsubgraph cluster_%s {\n\t\tlabel=\"%s\";\n", layer, layer)
		var keys []nodeKey
		for k := range nodes {
			if k.pkg == layer {
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].fn < keys[j].fn })
		if len(keys) == 0 {
			fmt.Fprintf(&b, "\t\t\"%s (zero-copy)\" [style=dotted];\n", layer)
		}
		for _, k := range keys {
			n := nodes[k]
			var whats []string
			for w := range n.counts {
				whats = append(whats, w)
			}
			sort.Strings(whats)
			var parts []string
			for _, w := range whats {
				parts = append(parts, fmt.Sprintf("%s ×%d", w, n.counts[w]))
			}
			label := fmt.Sprintf("%s\\n%s · %s", k.fn, strings.Join(parts, ", "), n.kind)
			attrs := ""
			switch n.kind {
			case kindBoundary:
				attrs = ", style=dashed"
			case kindViolation:
				attrs = ", color=red"
			}
			fmt.Fprintf(&b, "\t\t\"%s.%s\" [label=\"%s\"%s];\n", k.pkg, k.fn, label, attrs)
		}
		b.WriteString("\t}\n")
	}
	// The layer spine keeps the clusters in datapath order.
	b.WriteString("\t\"user send\" -> \"user receive\" [style=invis];\n")
	b.WriteString("}\n")
	return b.String()
}
