// Package app sits outside the datapath scope: the same duplicating
// shapes that are findings in tcp are silent here.
package app

type msg struct{ data []byte }

func dup(m *msg) []byte {
	return append([]byte(nil), m.data...)
}

func leak(m *msg) string {
	return string(m.data)
}
