// Package basis models the real buffer chain: its bodies are
// mechanism — the copies here are charged to the call sites — so
// nothing in this file is a finding.
package basis

// Packet is a reference-counted buffer window.
type Packet struct {
	buf      []byte
	off, end int
}

// NewPacket performs the allocator's one copy in.
func NewPacket(headroom, tailroom int, data []byte) *Packet {
	buf := make([]byte, headroom+len(data)+tailroom)
	copy(buf[headroom:], data)
	return &Packet{buf: buf, off: headroom, end: headroom + len(data)}
}

// Bytes exposes the payload window.
func (p *Packet) Bytes() []byte { return p.buf[p.off:p.end] }

// Clone duplicates the buffer.
func (p *Packet) Clone() *Packet {
	buf := append([]byte(nil), p.buf...)
	return &Packet{buf: buf, off: p.off, end: p.end}
}

// Push grows the header region; the result is header, not payload.
func (p *Packet) Push(n int) []byte {
	p.off -= n
	return p.buf[p.off : p.off+n]
}
