// Package tcp exercises copyflow inside the datapath scope: the two
// sanctioned copies, each event kind (copy, append, string, NewPacket,
// Clone), the boundary directive with and without a reason, the
// interprocedural parameter fixpoint, and header writes that must stay
// silent.
package tcp

import "basis"

type sendItem struct{ data []byte }

// TCB carries the send queue.
type TCB struct{ queued []sendItem }

// queueTake is the sanctioned send-side copy: user bytes enter the
// stack exactly here.
func (t *TCB) queueTake(dst []byte) int {
	n := 0
	for _, it := range t.queued {
		n += copy(dst[n:], it.data)
	}
	return n
}

// Conn carries the receive buffer.
type Conn struct{ buf [][]byte }

// Read is the sanctioned receive-side copy: bytes leave the stack
// exactly here.
func (c *Conn) Read(dst []byte) int {
	n := 0
	for _, b := range c.buf {
		n += copy(dst[n:], b)
	}
	return n
}

type segment struct {
	seq  uint32
	data []byte
}

// resend re-copies payload into a fresh packet without review.
func resend(sg *segment) *basis.Packet {
	return basis.NewPacket(20, 0, sg.data) // want "unsanctioned payload copy \\(NewPacket\\)"
}

// resendMarked is the same copy behind a reviewed boundary.
func resendMarked(sg *segment) *basis.Packet {
	return basis.NewPacket(20, 0, sg.data) //foxvet:boundary-copy retransmission rebuilds the wire image
}

//foxvet:boundary-copy
func missingReason(sg *segment) []byte { // want "needs a reason"
	out := make([]byte, len(sg.data))
	copy(out, sg.data)
	return out
}

func dupAppend(sg *segment) []byte {
	return append([]byte(nil), sg.data...) // want "unsanctioned payload copy \\(append\\)"
}

func leakString(sg *segment) string {
	return string(sg.data) // want "unsanctioned payload copy \\(string\\)"
}

func clonePacket(p *basis.Packet) *basis.Packet {
	return p.Clone() // want "unsanctioned payload copy \\(Clone\\)"
}

// helper's parameter is proved payload through the call below, so the
// duplicating append inside it is an event.
func helper(b []byte) []byte {
	return append([]byte(nil), b...) // want "unsanctioned payload copy \\(append\\)"
}

func callsHelper(sg *segment) []byte {
	return helper(sg.data)
}

// viaBytes derives payload through Packet.Bytes and a slice of it.
func viaBytes(p *basis.Packet) []byte {
	raw := p.Bytes()
	return append([]byte(nil), raw[4:]...) // want "unsanctioned payload copy \\(append\\)"
}

// reassemble is a function-wide reviewed boundary: both copies inside
// are covered by the doc directive.
//
//foxvet:boundary-copy fragment reassembly rebuilds the datagram from retained fragments
func reassemble(frags []segment, total int) []byte {
	out := make([]byte, total)
	for _, f := range frags {
		copy(out[f.seq:], f.data)
	}
	return out
}

// headerWrite copies addresses into a header region: the source is not
// payload, so this is silent.
func headerWrite(p *basis.Packet, src [4]byte) {
	h := p.Push(8)
	copy(h[0:4], src[:])
}

// parseAddr extracts a fixed-width header field into an array window:
// bounded by the field, not the payload, so silent.
func parseAddr(p *basis.Packet) [4]byte {
	var a [4]byte
	h := p.Bytes()
	copy(a[:], h[12:16])
	return a
}

// scratch copies between plain locals: never payload, silent.
func scratch(n int) []byte {
	a := make([]byte, n)
	b := make([]byte, n)
	copy(b, a)
	return b
}
