package copyflow

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/load"
)

// TestCopyFlow covers the sanctioned copies, every event kind, the
// boundary directive (line and doc form, with and without a reason),
// the interprocedural parameter fixpoint, and the silent header-write
// and out-of-scope twins.
func TestCopyFlow(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "tcp", "app")
}

// TestExtractDeterministic renders the proved copy map twice over the
// real module and requires byte-identical output, matching the
// statemachine and sessiontype dot guarantees.
func TestExtractDeterministic(t *testing.T) {
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	render := func() string {
		pkgs, _, err := load.LoadModule(root, false, "./internal/...")
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		dot, err := Extract(pkgs)
		if err != nil {
			t.Fatalf("extract: %v", err)
		}
		return dot
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("copyflow dot not deterministic:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	for _, want := range []string{"cluster_tcp", "cluster_wire", "sanctioned", "queueTake"} {
		if !strings.Contains(a, want) {
			t.Errorf("copyflow dot missing %q:\n%s", want, a)
		}
	}
}
