// Package analysis is a self-contained, stdlib-only analogue of
// golang.org/x/tools/go/analysis: the Analyzer/Pass/Diagnostic trio, a
// driver that runs analyzers over type-checked packages, and a
// `//foxvet:allow <name>` suppression directive.
//
// The paper's thesis is that protocol structure should be checked by the
// compiler, not by code review: in SML, functor instantiation verifies
// layer composition and the module language makes the quasi-synchronous
// control discipline explicit. Go's type system cannot express those
// invariants directly, so this package carries them as analysis passes —
// the Go analogue of the paper's functor-level checking. The concrete
// passes live in the subpackages (seqcmp, singledoor, quasisync,
// layering, atomiccounter) and are assembled by cmd/foxvet.
//
// The API deliberately mirrors x/tools so the passes could be rehosted on
// the upstream framework without rewriting their Run functions; it is
// reimplemented here because this repository builds offline against the
// standard library alone.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one analysis pass: a name (also the key the
// //foxvet:allow directive uses), documentation, and the Run function.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and directives. It
	// must be a valid identifier.
	Name string

	// Doc is the analyzer's documentation; the first line is shown by
	// `foxvet -list`.
	Doc string

	// Run applies the analyzer to one package and reports diagnostics
	// through the pass. The returned value is ignored by this driver
	// (kept for x/tools API shape).
	Run func(*Pass) (any, error)
}

// Pass carries one package's parsed and type-checked state to an
// analyzer's Run function.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Shared is the module-wide view: every package the driver loaded,
	// plus a memo cache that lives for the whole Run. Whole-program
	// passes (callgraph construction, cross-package reachability) build
	// their state once here instead of once per package.
	Shared *Shared

	// report receives every diagnostic; the driver filters suppressed
	// ones and collects the rest.
	report func(Diagnostic)
}

// Shared is driver-wide state handed to every pass: all loaded packages
// and a memo cache keyed by string. Because the loader caches packages,
// types.Object identities are stable across the packages here, so
// module-wide indexes (a callgraph keyed by *types.Func) are sound.
type Shared struct {
	Packages []*Package

	memo map[string]any
}

// Memo returns the cached value for key, building it on first use. All
// analyzers running under one driver invocation share the cache; the
// conventional key is the building package's import path.
func (s *Shared) Memo(key string, build func() any) any {
	if s.memo == nil {
		s.memo = map[string]any{}
	}
	v, ok := s.memo[key]
	if !ok {
		v = build()
		s.memo[key] = v
	}
	return v
}

// PackageOf returns the loaded Package whose types object is pkg, or nil.
func (s *Shared) PackageOf(pkg *types.Package) *Package {
	for _, p := range s.Packages {
		if p.Types == pkg {
			return p
		}
	}
	return nil
}

// Diagnostic is one finding, anchored to a position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Report emits a diagnostic.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.report(d)
}

// Reportf emits a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Package is a loaded, type-checked package as the loader produces it and
// the driver consumes it.
type Package struct {
	Path  string // import path
	Dir   string // directory the files came from
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics sorted by position. Diagnostics on a line carrying a
// `//foxvet:allow <name>` comment — or anywhere inside a declaration
// whose doc comment or opening line carries one — are suppressed for
// that analyzer.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	shared := &Shared{Packages: pkgs}
	for _, pkg := range pkgs {
		allow := buildAllowIndex(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Shared:    shared,
			}
			pass.report = func(d Diagnostic) {
				if !allow.allowed(a.Name, pkg.Fset, d.Pos) {
					out = append(out, d)
				}
			}
			if _, err := a.Run(pass); err != nil {
				return out, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}

// allowIndex records where //foxvet:allow directives appear: by
// (file, line) for same-line suppression, and by function extent for
// doc-comment suppression.
type allowIndex struct {
	lines map[lineKey]map[string]bool // analyzer set per directive line
	spans []allowSpan
}

type lineKey struct {
	file string
	line int
}

type allowSpan struct {
	start, end token.Pos
	names      map[string]bool
}

// directive parses a //foxvet:allow comment, returning the analyzer
// names it lists (nil when c is not a directive).
func directive(c *ast.Comment) map[string]bool {
	const prefix = "//foxvet:allow"
	if !strings.HasPrefix(c.Text, prefix) {
		return nil
	}
	rest := strings.TrimSpace(strings.TrimPrefix(c.Text, prefix))
	names := map[string]bool{}
	for _, n := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' }) {
		names[n] = true
	}
	return names
}

func buildAllowIndex(pkg *Package) *allowIndex {
	idx := &allowIndex{lines: map[lineKey]map[string]bool{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names := directive(c)
				if names == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := lineKey{file: pos.Filename, line: pos.Line}
				if idx.lines[key] == nil {
					idx.lines[key] = map[string]bool{}
				}
				for n := range names {
					idx.lines[key][n] = true
				}
			}
		}
		// A directive in a declaration's doc comment — or on the line the
		// declaration starts on — covers the whole declaration, so one
		// allow suffices for a multi-line composite literal or function
		// body. Spec-level docs inside a grouped GenDecl scope to the one
		// spec.
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				idx.addDeclSpan(pkg.Fset, d.Doc, d.Pos(), d.End())
			case *ast.GenDecl:
				idx.addDeclSpan(pkg.Fset, d.Doc, d.Pos(), d.End())
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.ValueSpec:
						idx.addDeclSpan(pkg.Fset, s.Doc, s.Pos(), s.End())
					case *ast.TypeSpec:
						idx.addDeclSpan(pkg.Fset, s.Doc, s.Pos(), s.End())
					}
				}
			}
		}
	}
	return idx
}

// addDeclSpan records an allow span covering [start, end) when the doc
// comment carries a directive, or when a directive sits on the line the
// declaration starts on (the lines index is already populated — comments
// are indexed before declarations).
func (idx *allowIndex) addDeclSpan(fset *token.FileSet, doc *ast.CommentGroup, start, end token.Pos) {
	names := map[string]bool{}
	if doc != nil {
		for _, c := range doc.List {
			for n := range directive(c) {
				names[n] = true
			}
		}
	}
	pos := fset.Position(start)
	for n := range idx.lines[lineKey{file: pos.Filename, line: pos.Line}] {
		names[n] = true
	}
	if len(names) > 0 {
		idx.spans = append(idx.spans, allowSpan{start: start, end: end, names: names})
	}
}

func (idx *allowIndex) allowed(analyzer string, fset *token.FileSet, pos token.Pos) bool {
	if !pos.IsValid() {
		return false
	}
	p := fset.Position(pos)
	if names, ok := idx.lines[lineKey{file: p.Filename, line: p.Line}]; ok && names[analyzer] {
		return true
	}
	for _, s := range idx.spans {
		if pos >= s.start && pos < s.end && s.names[analyzer] {
			return true
		}
	}
	return false
}
