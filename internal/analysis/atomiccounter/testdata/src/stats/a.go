package stats

// In-package misuse: even inside the stats package, only a type's own
// methods may touch its fields.

func resetAll(m *TCPMIB) {
	m.InSegs.v = 0 // want "field v of stats.Counter accessed outside its methods"
	m.Estab.hw = 0 // want "field hw of stats.Gauge accessed outside its methods"
}

func peek(h *Histogram) uint64 {
	return h.count // want "field count of stats.Histogram accessed outside its methods"
}

func clobber(m *TCPMIB) {
	m.InSegs = Counter{} // want "assignment overwrites a stats.Counter"
	c := m.OutSegs       // want "stats.Counter copied by value"
	_ = c
}

func byValue(c Counter) uint64 { return c.Load() }

func callSites(m *TCPMIB) {
	_ = byValue(m.InSegs) // want "stats.Counter passed by value"
}
