// Package stats is a miniature of repro/internal/stats for the
// atomiccounter testdata: counter types whose fields only their own
// methods may touch.
package stats

type Counter struct{ v uint64 }

func (c *Counter) Inc() {
	if c != nil {
		c.v++ // own method: allowed
	}
}

func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

type Gauge struct {
	v  int64
	hw int64
}

func (g *Gauge) Add(d int64) int64 {
	g.v += d
	if g.v > g.hw {
		g.hw = g.v
	}
	return g.v
}

type Histogram struct {
	count uint64
	sum   uint64
}

func (h *Histogram) Observe(v uint64) {
	h.count++
	h.sum += v
}

// TCPMIB groups counters the way the real registry does.
type TCPMIB struct {
	InSegs  Counter
	OutSegs Counter
	Estab   Gauge
}
