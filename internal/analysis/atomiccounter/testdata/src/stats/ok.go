package stats

// No want comments: the approved idioms — method calls on fields,
// pointers, and group allocation — produce no diagnostics.

func approved(m *TCPMIB) uint64 {
	m.InSegs.Inc()
	m.Estab.Add(1)
	p := &m.OutSegs // pointers do not tear the atomics
	p.Inc()
	g := new(TCPMIB) // allocating a whole group is fine
	g.InSegs.Inc()
	return m.InSegs.Load()
}
