// Package mib exercises the atomiccounter analyzer from outside the
// stats package: fields are unexported, so cross-package misuse takes
// the shape of copies and overwrites.
package mib

import "stats"

func clobber(m *stats.TCPMIB, n *stats.TCPMIB) {
	m.InSegs = n.InSegs // want "assignment overwrites a stats.Counter" "stats.Counter copied by value"
	snap := m.Estab     // want "stats.Gauge copied by value"
	_ = snap
}

func approved(m *stats.TCPMIB) uint64 {
	m.InSegs.Inc()
	m.Estab.Add(-1)
	return m.OutSegs.Load()
}
