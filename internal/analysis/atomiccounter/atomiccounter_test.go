package atomiccounter_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/atomiccounter"
)

func TestAtomicCounter(t *testing.T) {
	analysistest.Run(t, "testdata", atomiccounter.Analyzer, "stats", "mib")
}
