// Package atomiccounter guards the concurrency split PR 1's metrics
// registry is built on: stats.Counter, stats.Gauge and stats.Histogram
// are the *atomic* world — they may be read by foxstat snapshots from
// outside the scheduler while a simulation is live — so every touch must
// go through their methods (Inc, Add, Set, Observe, Load, ...). Reading
// or writing their internal fields directly, copying one by value, or
// overwriting one with a fresh literal all tear the atomics and
// invalidate the race-freedom argument `go test -race` proves.
package atomiccounter

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the atomiccounter pass.
var Analyzer = &analysis.Analyzer{
	Name: "atomiccounter",
	Doc:  "stats counter types may only be touched through their atomic methods; no field access, copies, or overwrites",
	Run:  run,
}

// pkgName and counterTypes identify the guarded types: named types with
// these names declared in a package of this name.
const pkgName = "stats"

var counterTypes = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
}

// counterNamed returns the named counter type of t, or nil. Pointers are
// not counters: method calls go through pointers by design.
func counterNamed(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != pkgName || !counterTypes[obj.Name()] {
		return nil
	}
	return named
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

// receiverType returns the named type of fd's receiver, or nil.
func receiverType(pass *analysis.Pass, fd *ast.FuncDecl) *types.Named {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	tv, ok := pass.TypesInfo.Types[fd.Recv.List[0].Type]
	if !ok {
		return nil
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	recv := receiverType(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			// Direct access to an internal field of a counter type is
			// allowed only inside that type's own methods.
			tv, ok := pass.TypesInfo.Types[n.X]
			if !ok {
				return true
			}
			t := tv.Type
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			named := counterNamed(t)
			if named == nil {
				return true
			}
			if sel, ok := pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.FieldVal {
				if recv == nil || recv.Obj() != named.Obj() {
					pass.Reportf(n.Sel.Pos(),
						"field %s of stats.%s accessed outside its methods; use the atomic methods instead",
						n.Sel.Name, named.Obj().Name())
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if named := exprCounter(pass, lhs); named != nil {
					pass.Reportf(lhs.Pos(),
						"assignment overwrites a stats.%s; counters are never reset or replaced, only moved through their atomic methods",
						named.Obj().Name())
				}
			}
			for i, rhs := range n.Rhs {
				// x = y copies y; skip blank assignments (nothing is
				// materialized) and fresh literals (covered by the
				// overwrite report on the left-hand side).
				if len(n.Lhs) == len(n.Rhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue
					}
				}
				if _, ok := rhs.(*ast.CompositeLit); ok {
					continue
				}
				if named := exprCounter(pass, rhs); named != nil {
					pass.Reportf(rhs.Pos(),
						"stats.%s copied by value, tearing its atomics; take a pointer or use its methods",
						named.Obj().Name())
				}
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if named := exprCounter(pass, arg); named != nil {
					pass.Reportf(arg.Pos(),
						"stats.%s passed by value, tearing its atomics; pass a pointer",
						named.Obj().Name())
				}
			}
		}
		return true
	})
}

// exprCounter returns the counter type of e when e is a value expression
// of counter type (not a pointer, not a conversion target).
func exprCounter(pass *analysis.Pass, e ast.Expr) *types.Named {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return nil
	}
	return counterNamed(tv.Type)
}
