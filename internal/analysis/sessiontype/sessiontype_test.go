package sessiontype

import (
	"strings"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/load"
)

func TestSessionType(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "sessionapi", "sessiontest")
}

func TestExtractDot(t *testing.T) {
	loader := load.NewLoader(load.TreeResolver{Root: "testdata"})
	pkgs, err := loader.Load("sessionapi", "sessiontest")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	dot, err := Extract(pkgs)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	for _, want := range []string{
		"digraph session_protocol",
		`"Handshaking"`,
		`"Estab"`,
		`"SendClosed"`,
		`"Closed"`,
		`"Estab" -> "Closed"`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q:\n%s", want, dot)
		}
	}
	// Legal call sites were proved and counted on their edges.
	if !strings.Contains(dot, "sites)") {
		t.Errorf("dot output has no proved site counts:\n%s", dot)
	}
	// Deterministic output: a second extraction is byte-identical.
	dot2, err := Extract(pkgs)
	if err != nil {
		t.Fatalf("Extract (second run): %v", err)
	}
	if dot != dot2 {
		t.Errorf("Extract is not deterministic:\n--- first\n%s\n--- second\n%s", dot, dot2)
	}
}
