// Package sessiontype checks connection call sites against the
// declared session protocol: Open/Listen → Send/Recv → Close/Abort.
//
// The paper's user interface is a session in all but name — a TCP
// connection must be opened (or accepted), may carry data only while
// established, and must be released exactly once. SML's module language
// cannot quite express that order statically and neither can Go's type
// system, so this pass carries the protocol as data (see Protocol in
// protocol.go) and diffs every client's usage paths against it with a
// per-connection-value typestate automaton — the session-types reading
// of the stack promised by ROADMAP item 5.
//
// The endpoint shape is discovered structurally, not by import path: a
// named type with Write, WriteUrgent, Close, and Abort methods is the
// connection; functions anywhere in the module returning (*Conn, error)
// are establishment points; a struct of callback fields taking *Conn is
// the handler record; parameters of accept-factory type seed in the
// Handshaking state. The analysis is CFG-based and short-circuit-aware
// (same engine discipline as statemachine): facts are per-variable
// state masks, joined by union, with a final reporting pass over the
// fixpoint so loop-carried joins never produce retracted findings.
//
// Findings: use-after-close, send-before-established,
// receive-before-established, send-after-shutdown, double-close, and
// connection leaks (opened, never released, never escaping). Helper
// functions are summarized interprocedurally — a callee that closes or
// uses a connection parameter transfers that effect to the caller's
// automaton, and the callgraph's escape summaries decide when a value
// leaves the frame. The endpoint's own package is exempt: the
// implementation manipulates connections in every state by
// construction; the protocol binds its clients.
package sessiontype

import (
	"errors"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/cfg"
	"repro/internal/analysis/dataflow"
)

// Analyzer is the sessiontype pass.
var Analyzer = &analysis.Analyzer{
	Name: "sessiontype",
	Doc:  "connection call sites must follow the session protocol Open/Listen → Send/Recv → Close (use-after-close, send-before-established, double-close, leaked connections)",
	Run:  run,
}

// shape is the discovered endpoint surface the protocol binds to.
type shape struct {
	conn    *types.Named
	ptr     types.Type // *conn
	connPkg *types.Package
	handler *types.Named
	ops     map[*types.Func]*Op
	opens   map[*types.Func]bool
	// roles seeds the entry state of *Conn parameters: accept factories
	// start Handshaking, established-side handler callbacks start Estab,
	// error handlers start anywhere. Keys are *types.Func or
	// *ast.FuncLit; absent means stAny.
	roles map[any]state
}

var requiredOps = []string{"Write", "WriteUrgent", "Close", "Abort"}

// typePackages is the type-level search space for the endpoint shape:
// the loaded packages plus their direct imports. The latter matter when
// the driver analyzes a client package in isolation (analysistest) —
// the endpoint is then only reachable as an import.
func typePackages(pkgs []*analysis.Package) []*types.Package {
	var out []*types.Package
	seen := map[*types.Package]bool{}
	add := func(p *types.Package) {
		if p != nil && !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, p := range pkgs {
		add(p.Types)
	}
	for _, p := range pkgs {
		for _, imp := range p.Types.Imports() {
			add(imp)
		}
	}
	return out
}

// buildShape discovers the endpoint across every loaded package (and
// their imports), or returns nil when the module has none (the pass is
// then a no-op). Shape discovery needs signatures only, so it works on
// type information alone.
func buildShape(pkgs []*analysis.Package) *shape {
	sh := &shape{
		ops:   map[*types.Func]*Op{},
		opens: map[*types.Func]bool{},
		roles: map[any]state{},
	}
	tpkgs := typePackages(pkgs)
	for _, tp := range tpkgs {
		scope := tp.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			methods := map[string]*types.Func{}
			for i := 0; i < named.NumMethods(); i++ {
				m := named.Method(i)
				methods[m.Name()] = m
			}
			complete := true
			for _, r := range requiredOps {
				if methods[r] == nil {
					complete = false
					break
				}
			}
			if !complete {
				continue
			}
			sh.conn = named
			sh.connPkg = tp
			for i := range Protocol {
				op := &Protocol[i]
				if m := methods[op.Name]; m != nil {
					sh.ops[m] = op
				}
			}
			break
		}
		if sh.conn != nil {
			break
		}
	}
	if sh.conn == nil {
		return nil
	}
	sh.ptr = types.NewPointer(sh.conn)

	// The handler record: a struct of callback fields in the endpoint's
	// package, at least one taking the connection first.
	scope := sh.connPkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok || st.NumFields() == 0 {
			continue
		}
		allFunc, hasConn := true, false
		for i := 0; i < st.NumFields(); i++ {
			fsig, ok := st.Field(i).Type().(*types.Signature)
			if !ok {
				allFunc = false
				break
			}
			if fsig.Params().Len() > 0 && types.Identical(fsig.Params().At(0).Type(), sh.ptr) {
				hasConn = true
			}
		}
		if allFunc && hasConn {
			sh.handler = named
			break
		}
	}

	// Establishment points: any function or method whose results are
	// (*Conn, error) — TCP.Open, OpenFrom, and every wrapper a client
	// layered on top.
	errType := types.Universe.Lookup("error").Type()
	checkOpen := func(fn *types.Func) {
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return
		}
		res := sig.Results()
		if res.Len() == 2 &&
			types.Identical(res.At(0).Type(), sh.ptr) &&
			types.Identical(res.At(1).Type(), errType) {
			sh.opens[fn] = true
		}
	}
	for _, tp := range tpkgs {
		tscope := tp.Scope()
		for _, name := range tscope.Names() {
			switch obj := tscope.Lookup(name).(type) {
			case *types.Func:
				checkOpen(obj)
			case *types.TypeName:
				named, ok := obj.Type().(*types.Named)
				if !ok || obj.IsAlias() {
					continue
				}
				for i := 0; i < named.NumMethods(); i++ {
					checkOpen(named.Method(i))
				}
				if iface, ok := named.Underlying().(*types.Interface); ok {
					for i := 0; i < iface.NumMethods(); i++ {
						checkOpen(iface.Method(i))
					}
				}
			}
		}
	}

	for _, pkg := range pkgs {
		sh.collectRoles(pkg)
	}
	return sh
}

// collectRoles classifies functions and literals by how the module hands
// them to the endpoint: arguments at accept-factory parameters seed
// Handshaking; handler-record fields seed Estab (or stAny for the error
// field, whose connection may be in any state when it fires).
func (sh *shape) collectRoles(pkg *analysis.Package) {
	info := pkg.Info
	errType := types.Universe.Lookup("error").Type()
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if sh.handler == nil {
					return true
				}
				t := info.TypeOf(n)
				if p, ok := t.(*types.Pointer); ok {
					t = p.Elem()
				}
				if t == nil || !types.Identical(t, sh.handler.Underlying()) && !types.Identical(t, sh.handler) {
					return true
				}
				st := sh.handler.Underlying().(*types.Struct)
				for i, elt := range n.Elts {
					var fsig *types.Signature
					value := elt
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						key, ok := kv.Key.(*ast.Ident)
						if !ok {
							continue
						}
						for j := 0; j < st.NumFields(); j++ {
							if st.Field(j).Name() == key.Name {
								fsig, _ = st.Field(j).Type().(*types.Signature)
								break
							}
						}
						value = kv.Value
					} else if i < st.NumFields() {
						fsig, _ = st.Field(i).Type().(*types.Signature)
					}
					if fsig == nil || fsig.Params().Len() == 0 ||
						!types.Identical(fsig.Params().At(0).Type(), sh.ptr) {
						continue
					}
					role := stEstab
					if p := fsig.Params(); types.Identical(p.At(p.Len()-1).Type(), errType) {
						role = stAny
					}
					sh.addRole(info, value, role)
				}
			case *ast.CallExpr:
				sig, ok := info.TypeOf(n.Fun).(*types.Signature)
				if !ok {
					return true
				}
				for i, arg := range n.Args {
					if sh.isFactory(paramAt(sig, i)) {
						sh.addRole(info, arg, stHandshaking)
					}
				}
			}
			return true
		})
	}
}

func (sh *shape) addRole(info *types.Info, e ast.Expr, role state) {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		sh.roles[e] |= role
	case *ast.Ident:
		if fn, ok := info.Uses[e].(*types.Func); ok {
			sh.roles[fn] |= role
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[e.Sel].(*types.Func); ok {
			sh.roles[fn] |= role
		}
	}
}

// isFactory reports whether t is the accept-factory type
// func(*Conn, ...) Handler.
func (sh *shape) isFactory(t types.Type) bool {
	if sh.handler == nil {
		return false
	}
	sig, ok := t.(*types.Signature)
	if !ok {
		return false
	}
	return sig.Params().Len() >= 1 &&
		types.Identical(sig.Params().At(0).Type(), sh.ptr) &&
		sig.Results().Len() == 1 &&
		types.Identical(sig.Results().At(0).Type(), sh.handler)
}

func (sh *shape) roleOf(key any) state {
	if r, ok := sh.roles[key]; ok {
		return r
	}
	return stAny
}

// paramAt resolves the declared type of argument i, folding overflow
// arguments onto the final (variadic) parameter.
func paramAt(sig *types.Signature, i int) types.Type {
	p := sig.Params()
	if p.Len() == 0 {
		return nil
	}
	if i >= p.Len() {
		i = p.Len() - 1
	}
	return p.At(i).Type()
}

func run(pass *analysis.Pass) (any, error) {
	shv := pass.Shared.Memo("sessiontype.shape", func() any {
		return buildShape(pass.Shared.Packages)
	})
	sh, _ := shv.(*shape)
	if sh == nil {
		return nil, nil
	}
	if pass.Pkg == sh.connPkg || strings.TrimSuffix(pass.Pkg.Path(), "_test") == sh.connPkg.Path() {
		return nil, nil
	}
	g := pass.Shared.Memo("callgraph", func() any {
		return callgraph.Build(pass.Shared.Packages)
	}).(*callgraph.Graph)
	pkg := pass.Shared.PackageOf(pass.Pkg)
	if pkg == nil {
		return nil, nil
	}
	e := newEngine(sh, pkg, g, func(pos token.Pos, format string, args ...any) {
		pass.Reportf(pos, format, args...)
	})
	e.runPackage()
	return nil, nil
}

// Extract runs the analysis over every loaded package and renders the
// proved protocol graph for -sessiontype-dot: the declared automaton
// with each edge annotated by the call sites proved to take it.
func Extract(pkgs []*analysis.Package) (string, error) {
	sh := buildShape(pkgs)
	if sh == nil {
		return "", errors.New("no session endpoint found (need a type with Write, WriteUrgent, Close, and Abort methods)")
	}
	g := callgraph.Build(pkgs)
	counts := map[string]int{}
	for _, pkg := range pkgs {
		if pkg.Types == sh.connPkg || strings.TrimSuffix(pkg.Types.Path(), "_test") == sh.connPkg.Path() {
			continue
		}
		e := newEngine(sh, pkg, g, func(token.Pos, string, ...any) {})
		e.runPackage()
		for op, sites := range e.proved {
			counts[op] += len(sites)
		}
	}
	return Dot(counts), nil
}

// engine analyzes one package's functions against a discovered shape.
type engine struct {
	sh     *shape
	pkg    *analysis.Package
	graph  *callgraph.Graph
	sums   map[*types.Func]*helperSummary
	report func(pos token.Pos, format string, args ...any)
	proved map[string]map[token.Pos]bool
}

func newEngine(sh *shape, pkg *analysis.Package, g *callgraph.Graph, report func(token.Pos, string, ...any)) *engine {
	return &engine{
		sh:     sh,
		pkg:    pkg,
		graph:  g,
		sums:   map[*types.Func]*helperSummary{},
		report: report,
		proved: map[string]map[token.Pos]bool{},
	}
}

func (e *engine) runPackage() {
	for _, f := range e.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return false
				}
				if fn, ok := e.pkg.Info.Defs[n.Name].(*types.Func); ok {
					e.analyze(n.Body, fn.Type().(*types.Signature), e.sh.roleOf(fn))
				}
			case *ast.FuncLit:
				if sig, ok := e.pkg.Info.TypeOf(n).(*types.Signature); ok {
					e.analyze(n.Body, sig, e.sh.roleOf(n))
				}
			}
			return true
		})
	}
}

func (e *engine) prove(op *Op, pos token.Pos) {
	m := e.proved[op.Name]
	if m == nil {
		m = map[token.Pos]bool{}
		e.proved[op.Name] = m
	}
	m[pos] = true
}

// mentionsSession cheaply decides whether a body can matter: it must
// touch a protocol op, an establishment function, or a connection-typed
// variable.
func (e *engine) mentionsSession(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := e.pkg.Info.Uses[id]
		if obj == nil {
			obj = e.pkg.Info.Defs[id]
		}
		switch o := obj.(type) {
		case *types.Func:
			if e.sh.opens[o] {
				found = true
			} else if _, isOp := e.sh.ops[o]; isOp {
				found = true
			}
		case *types.Var:
			if types.Identical(o.Type(), e.sh.ptr) {
				found = true
			}
		}
		return !found
	})
	return found
}

// facts maps each tracked connection variable (by union-find root) to
// the set of session states it may be in.
type facts map[*types.Var]state

func (f facts) copy() facts {
	out := make(facts, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func joinFacts(a, b facts) facts {
	out := a.copy()
	for k, v := range b {
		out[k] |= v
	}
	return out
}

func equalFacts(a, b facts) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || w != v {
			return false
		}
	}
	return true
}

// fnAnalysis is the per-function automaton state: the union-find over
// aliased connection variables, plus the flow-insensitive side tables
// the leak check reads (where each connection was opened, whether it
// was ever released, whether it ever left the frame).
type fnAnalysis struct {
	e         *engine
	parent    map[*types.Var]*types.Var
	opened    map[*types.Var]token.Pos
	closed    map[*types.Var]bool
	escaped   map[*types.Var]bool
	reported  map[token.Pos]bool
	reporting bool
}

func (e *engine) analyze(body *ast.BlockStmt, sig *types.Signature, role state) {
	entry := facts{}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if types.Identical(p.Type(), e.sh.ptr) {
			entry[p] = role
		}
	}
	if len(entry) == 0 && !e.mentionsSession(body) {
		return
	}
	fa := &fnAnalysis{
		e:        e,
		parent:   map[*types.Var]*types.Var{},
		opened:   map[*types.Var]token.Pos{},
		closed:   map[*types.Var]bool{},
		escaped:  map[*types.Var]bool{},
		reported: map[token.Pos]bool{},
	}
	g := cfg.New(body)
	res := dataflow.Forward(g, dataflow.Problem[facts]{
		Entry:    entry,
		Join:     joinFacts,
		Equal:    equalFacts,
		Transfer: fa.transfer,
		Branch:   fa.branch,
		Case:     fa.caseFn,
	})
	// Report against the fixpoint, not during solving: a mask that looks
	// illegal on the first visit may gain a legal state once a back edge
	// joins in, and a finding must never be retracted.
	fa.reporting = true
	for _, b := range g.Blocks {
		in, ok := res.Reached(b)
		if !ok {
			continue
		}
		out := fa.transfer(b, in)
		switch t := b.Term.(type) {
		case *cfg.If:
			fa.branch(t.Cond, out)
		case *cfg.Switch:
			if t.Tag != nil {
				fa.caseFn(t.Tag, nil, false, out)
			}
		}
	}
	fa.leaks()
}

func (fa *fnAnalysis) transfer(b *cfg.Block, in facts) facts {
	fm := in.copy()
	for _, s := range b.Nodes {
		fa.stmt(s, fm)
	}
	return fm
}

func (fa *fnAnalysis) branch(cond ast.Expr, out facts) (facts, facts) {
	fm := out.copy()
	fa.escapeLitCaptures(cond, fm)
	fa.callsIn(cond, fm)
	return fm, fm
}

func (fa *fnAnalysis) caseFn(tag ast.Expr, _ []ast.Expr, _ bool, out facts) facts {
	fm := out.copy()
	if tag != nil {
		fa.callsIn(tag, fm)
	}
	return fm
}

func (fa *fnAnalysis) stmt(s ast.Stmt, fm facts) {
	// A RangeStmt block node is the whole statement, but only the ranged
	// expression evaluates at the loop head — the body has its own blocks.
	if r, ok := s.(*ast.RangeStmt); ok {
		fa.escapeLitCaptures(r.X, fm)
		fa.callsIn(r.X, fm)
		return
	}
	fa.escapeLitCaptures(s, fm)
	switch s := s.(type) {
	case *ast.DeferStmt:
		fa.call(s.Call, fm, true)
	case *ast.GoStmt:
		fa.escapeIdents(s.Call, fm)
	case *ast.ReturnStmt:
		fa.callsIn(s, fm)
		for _, r := range s.Results {
			fa.escapeIdents(r, fm)
		}
	case *ast.SendStmt:
		fa.callsIn(s, fm)
		fa.escapeIdents(s.Value, fm)
	case *ast.AssignStmt:
		fa.assign(s, fm)
	default:
		fa.callsIn(s, fm)
	}
}

func (fa *fnAnalysis) assign(s *ast.AssignStmt, fm facts) {
	fa.callsIn(s, fm)
	// c, err := Open(...): the establishment seed, and the site the leak
	// check anchors to.
	if len(s.Rhs) == 1 && len(s.Lhs) == 2 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			if fn := callgraph.Callee(fa.e.pkg.Info, call); fn != nil && fa.e.sh.opens[fn] {
				if v := fa.varOf(s.Lhs[0]); v != nil {
					r := fa.root(v)
					fm[r] = stEstab
					if _, seen := fa.opened[r]; !seen {
						fa.opened[r] = call.Pos()
					}
				}
				return
			}
		}
	}
	if len(s.Lhs) != len(s.Rhs) {
		// Other multi-value forms (map reads, type asserts, channel
		// receives) produce connections of unknown provenance.
		for _, l := range s.Lhs {
			if v := fa.varOf(l); v != nil {
				fm[fa.root(v)] = stAny
			}
		}
		return
	}
	for i := range s.Lhs {
		lhs, rhs := s.Lhs[i], s.Rhs[i]
		lv, rv := fa.varOf(lhs), fa.varOf(rhs)
		switch {
		case lv != nil && rv != nil:
			if _, tracked := fm[fa.root(rv)]; tracked {
				fa.union(lv, rv, fm)
			} else {
				fm[fa.root(lv)] = stAny
			}
		case lv != nil:
			fm[fa.root(lv)] = stAny
		case rv != nil:
			// Stored into a field, slot, or global: the value outlives
			// this frame's automaton.
			fa.escape(rv, fm)
		default:
			fa.escapeIdents(rhs, fm)
		}
	}
}

// call folds one call's effect into the automaton: protocol ops
// transition (and report against the fixpoint mask), helper calls apply
// their summarized effects, and arguments to anything unresolvable
// escape. Deferred calls only mark release/escape — they run at exit,
// so they neither transition nor get checked against the current state.
func (fa *fnAnalysis) call(call *ast.CallExpr, fm facts, deferred bool) {
	info := fa.e.pkg.Info
	callee := callgraph.Callee(info, call)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && callee != nil {
		if op, isOp := fa.e.sh.ops[callee]; isOp {
			if v := fa.varOf(sel.X); v != nil {
				r := fa.root(v)
				if op.Releases {
					fa.closed[r] = true
				}
				if cur, tracked := fm[r]; tracked && !deferred {
					if cur&op.OK == 0 {
						fa.reportOnce(call.Pos(), "%s: %s.%s while the connection is %s",
							badLabel(op, cur), v.Name(), op.Name, cur)
					} else if fa.reporting {
						fa.e.prove(op, call.Pos())
					}
					fm[r] = next(op, cur)
				}
			}
			return
		}
		// Any other method on the connection (State, Stats, ...) is
		// protocol-neutral: no transition, and the receiver stays put.
		if recv := recvOf(callee); recv != nil &&
			(types.Identical(recv, fa.e.sh.ptr) || types.Identical(recv, fa.e.sh.conn.Underlying()) || types.Identical(recv, fa.e.sh.conn)) {
			return
		}
	}
	sig, _ := info.TypeOf(call.Fun).(*types.Signature)
	for i, arg := range call.Args {
		v := fa.varOf(arg)
		if v == nil {
			continue
		}
		r := fa.root(v)
		var node *callgraph.Node
		if callee != nil {
			node = fa.e.graph.Funcs[callee]
		}
		var pt types.Type
		if sig != nil {
			pt = paramAt(sig, i)
		}
		if node != nil && pt != nil && types.Identical(pt, fa.e.sh.ptr) {
			eff := fa.e.summary(callee).param(i)
			if eff.closes {
				fa.closed[r] = true
			}
			if cur, tracked := fm[r]; tracked && !deferred {
				if eff.uses && cur == stClosed {
					fa.reportOnce(arg.Pos(), "use-after-close: %s is closed when passed to %s, which sends or receives on it",
						v.Name(), callee.Name())
				}
				if eff.closes {
					fm[r] = cur | stClosed
				}
			}
			if eff.escapes {
				fa.escape(v, fm)
			}
		} else {
			// Unknown callee, out-of-module callee, or a parameter wider
			// than *Conn: assume anything can happen to the value.
			fa.escape(v, fm)
		}
	}
}

func (fa *fnAnalysis) callsIn(n ast.Node, fm facts) {
	for _, call := range callgraph.OrderedCalls(n) {
		fa.call(call, fm, false)
	}
}

func (fa *fnAnalysis) reportOnce(pos token.Pos, format string, args ...any) {
	if !fa.reporting || fa.reported[pos] {
		return
	}
	fa.reported[pos] = true
	fa.e.report(pos, format, args...)
}

// varOf resolves an expression to the local connection variable it
// names, or nil. Package-level variables are excluded: a connection
// held in a global has left every frame's automaton.
func (fa *fnAnalysis) varOf(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	info := fa.e.pkg.Info
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || !types.Identical(v.Type(), fa.e.sh.ptr) {
		return nil
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return nil
	}
	return v
}

func (fa *fnAnalysis) root(v *types.Var) *types.Var {
	r := v
	for fa.parent[r] != nil {
		r = fa.parent[r]
	}
	if r != v {
		fa.parent[v] = r
	}
	return r
}

// union merges newVar into existing's equivalence class (c2 := c), so
// ops through either name drive one automaton and a close through the
// alias discharges the original's obligation.
func (fa *fnAnalysis) union(newVar, existing *types.Var, fm facts) {
	nr, er := fa.root(newVar), fa.root(existing)
	if nr == er {
		return
	}
	if st, ok := fm[nr]; ok {
		fm[er] |= st
		delete(fm, nr)
	}
	if pos, ok := fa.opened[nr]; ok {
		if _, seen := fa.opened[er]; !seen {
			fa.opened[er] = pos
		}
		delete(fa.opened, nr)
	}
	fa.parent[nr] = er
}

func (fa *fnAnalysis) escape(v *types.Var, fm facts) {
	r := fa.root(v)
	fa.escaped[r] = true
	delete(fm, r)
}

func (fa *fnAnalysis) escapeIdents(n ast.Node, fm facts) {
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok {
			if v := fa.varOf(id); v != nil {
				fa.escape(v, fm)
			}
		}
		return true
	})
}

// escapeLitCaptures escapes every connection variable a nested function
// literal captures: the closure may run at any time, so the value's
// lifecycle is no longer this frame's to prove.
func (fa *fnAnalysis) escapeLitCaptures(n ast.Node, fm facts) {
	ast.Inspect(n, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok {
			fa.escapeIdents(lit.Body, fm)
			return false
		}
		return true
	})
}

// leaks reports connections established in this frame that were never
// released on any path and never escaped it.
func (fa *fnAnalysis) leaks() {
	for v, pos := range fa.opened {
		if fa.marked(fa.closed, v) || fa.marked(fa.escaped, v) {
			continue
		}
		fa.e.report(pos, "connection leak: opened here but never released — no Close, Shutdown, or Abort on any path, and the connection never leaves the function")
	}
}

// marked checks a side table up to alias equivalence: the mark may sit
// on any variable later unioned with v.
func (fa *fnAnalysis) marked(m map[*types.Var]bool, v *types.Var) bool {
	r := fa.root(v)
	for k := range m {
		if fa.root(k) == r {
			return true
		}
	}
	return false
}

func recvOf(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// helperSummary is the interprocedural view of a function's connection
// parameters: does it send/receive on one, release one, or let one
// escape the session frame (directly or transitively).
type helperSummary struct {
	params map[int]*paramEffect
}

type paramEffect struct {
	uses, closes, escapes bool
}

func (s *helperSummary) param(i int) paramEffect {
	if p := s.params[i]; p != nil {
		return *p
	}
	return paramEffect{}
}

// summary computes (and memoizes) a helper's effect on its connection
// parameters. Recursion is broken optimistically: the placeholder for
// an in-progress function claims no effects, which under-approximates
// cycles but never invents findings. The escape side comes from the
// callgraph's interprocedural escape summaries — a parameter flowing to
// a global, channel, goroutine, or return value has left the frame.
func (e *engine) summary(fn *types.Func) *helperSummary {
	if s, ok := e.sums[fn]; ok {
		return s
	}
	s := &helperSummary{params: map[int]*paramEffect{}}
	e.sums[fn] = s
	node := e.graph.Funcs[fn]
	if node == nil {
		return s
	}
	sig := fn.Type().(*types.Signature)
	paramIdx := map[*types.Var]int{}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if types.Identical(p.Type(), e.sh.ptr) {
			paramIdx[p] = i
		}
	}
	if len(paramIdx) == 0 {
		return s
	}
	info := node.Pkg.Info
	at := func(x ast.Expr) (int, bool) {
		id, ok := ast.Unparen(x).(*ast.Ident)
		if !ok {
			return 0, false
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok {
			return 0, false
		}
		i, ok := paramIdx[v]
		return i, ok
	}
	eff := func(i int) *paramEffect {
		p := s.params[i]
		if p == nil {
			p = &paramEffect{}
			s.params[i] = p
		}
		return p
	}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := callgraph.Callee(info, call)
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && callee != nil {
			if op, isOp := e.sh.ops[callee]; isOp {
				if i, ok := at(sel.X); ok {
					if op.Releases {
						eff(i).closes = true
					} else {
						eff(i).uses = true
					}
				}
				return true
			}
		}
		csig, _ := info.TypeOf(call.Fun).(*types.Signature)
		for j, arg := range call.Args {
			i, ok := at(arg)
			if !ok {
				continue
			}
			var sub *callgraph.Node
			if callee != nil {
				sub = e.graph.Funcs[callee]
			}
			var pt types.Type
			if csig != nil {
				pt = paramAt(csig, j)
			}
			if sub != nil && pt != nil && types.Identical(pt, e.sh.ptr) {
				se := e.summary(callee).param(j)
				p := eff(i)
				p.uses = p.uses || se.uses
				p.closes = p.closes || se.closes
				p.escapes = p.escapes || se.escapes
			} else {
				eff(i).escapes = true
			}
		}
		return true
	})
	if esc := e.graph.Escapes()[fn]; esc != nil {
		for _, i := range paramIdx {
			if esc.Param(i) != 0 {
				eff(i).escapes = true
			}
		}
	}
	return s
}
