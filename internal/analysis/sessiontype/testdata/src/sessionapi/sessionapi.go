// Package sessionapi is a miniature endpoint with the structural shape
// the sessiontype analyzer discovers: a connection type carrying the
// protocol ops, a handler record of callbacks, and establishment
// functions returning (*Conn, error). The implementation package is
// exempt from the protocol, so nothing here is reported.
package sessionapi

type Conn struct{ st int }

func (c *Conn) Write(b []byte) (int, error)       { return len(b), nil }
func (c *Conn) WriteUrgent(b []byte) (int, error) { return len(b), nil }
func (c *Conn) Read(b []byte) (int, error)        { return 0, nil }
func (c *Conn) ReadFull(b []byte) (int, error)    { return 0, nil }
func (c *Conn) Close() error                      { return nil }
func (c *Conn) Shutdown() error                   { return nil }
func (c *Conn) Abort()                            {}
func (c *Conn) State() int                        { return c.st }

type Handler struct {
	Established func(*Conn)
	Data        func(*Conn, []byte)
	PeerClosed  func(*Conn)
	Error       func(*Conn, error)
}

type Endpoint struct{ conns []*Conn }

func (e *Endpoint) Open(addr string) (*Conn, error) { return &Conn{}, nil }

func (e *Endpoint) OpenFrom(addr string, port int) (*Conn, error) { return &Conn{}, nil }

func (e *Endpoint) Listen(port int, accept func(*Conn) Handler) error { return nil }
