package sessiontest

import "sessionapi"

// Legal sessions: nothing in this file is reported.

func openUseClose(ep *sessionapi.Endpoint) error {
	c, err := ep.Open("peer")
	if err != nil {
		return err
	}
	if _, err := c.Write([]byte("hello")); err != nil {
		c.Abort()
		return err
	}
	return c.Close()
}

func deferredClose(ep *sessionapi.Endpoint) error {
	c, err := ep.Open("peer")
	if err != nil {
		return err
	}
	defer c.Close()
	_, err = c.Write([]byte("hello"))
	return err
}

// Closing on one path and writing on the other is path-sensitive, not a
// violation: the automaton keeps the branches apart.
func branchy(ep *sessionapi.Endpoint, n int) {
	c, err := ep.Open("peer")
	if err != nil {
		return
	}
	if n > 0 {
		c.Close()
		return
	}
	c.Write([]byte("x"))
	c.Close()
}

// Shutdown half-closes: reading stays legal, and Close afterwards is
// the normal full teardown, not a double close.
func halfClose(ep *sessionapi.Endpoint) {
	c, err := ep.Open("peer")
	if err != nil {
		return
	}
	c.Write([]byte("fin"))
	c.Shutdown()
	var buf [16]byte
	c.Read(buf[:])
	c.Close()
}

// The returned connection escapes to the caller; the caller owns the
// close obligation. (This function is itself an establishment point.)
func dial(ep *sessionapi.Endpoint) (*sessionapi.Conn, error) {
	c, err := ep.Open("peer")
	if err != nil {
		return nil, err
	}
	if _, err := c.Write([]byte("preamble")); err != nil {
		c.Abort()
		return nil, err
	}
	return c, nil
}

type registry struct{ active []*sessionapi.Conn }

// Stored connections escape the frame: the registry owns them now.
func keepAlive(ep *sessionapi.Endpoint, r *registry) error {
	c, err := ep.Open("peer")
	if err != nil {
		return err
	}
	r.active = append(r.active, c)
	return nil
}

// A helper discharges the close obligation for its caller.
func delegatedClose(ep *sessionapi.Endpoint) {
	c, err := ep.Open("peer")
	if err != nil {
		return
	}
	c.Write([]byte("bye"))
	cleanup(c)
}

func cleanup(c *sessionapi.Conn) {
	c.Close()
}

// Aliases drive one automaton: closing through the second name
// discharges the first name's obligation.
func aliased(ep *sessionapi.Endpoint) {
	c, err := ep.Open("peer")
	if err != nil {
		return
	}
	d := c
	d.Write([]byte("x"))
	d.Close()
}

// A full handler: established-side callbacks start in Estab, the accept
// factory may legally Abort a handshaking connection, and the error
// callback's connection may be in any state.
func serve(ep *sessionapi.Endpoint, allow bool) error {
	return ep.Listen(80, func(c *sessionapi.Conn) sessionapi.Handler {
		if !allow {
			c.Abort()
			return sessionapi.Handler{}
		}
		return sessionapi.Handler{
			Established: func(c *sessionapi.Conn) {
				c.Write([]byte("220 ready"))
			},
			Data: func(c *sessionapi.Conn, b []byte) {
				c.Write(b)
			},
			PeerClosed: func(c *sessionapi.Conn) {
				c.Close()
			},
			Error: func(c *sessionapi.Conn, err error) {},
		}
	})
}

// Neutral methods (State) neither transition nor escape.
func pollState(ep *sessionapi.Endpoint) {
	c, err := ep.Open("peer")
	if err != nil {
		return
	}
	for c.State() > 0 {
		var buf [8]byte
		if _, err := c.Read(buf[:]); err != nil {
			break
		}
	}
	c.Close()
}
