// Package sessiontest seeds one of each sessiontype violation.
package sessiontest

import "sessionapi"

func useAfterClose(ep *sessionapi.Endpoint) {
	c, err := ep.Open("peer")
	if err != nil {
		return
	}
	c.Close()
	c.Write([]byte("x")) // want "use-after-close"
}

func doubleClose(ep *sessionapi.Endpoint) {
	c, err := ep.Open("peer")
	if err != nil {
		return
	}
	c.Close()
	c.Close() // want "double-close"
}

func sendBeforeEstablished(ep *sessionapi.Endpoint) {
	ep.Listen(7, func(c *sessionapi.Conn) sessionapi.Handler {
		c.Write([]byte("hello")) // want "send-before-established"
		return sessionapi.Handler{}
	})
}

func recvBeforeEstablished(ep *sessionapi.Endpoint) {
	ep.Listen(9, acceptEarlyRead)
}

func acceptEarlyRead(c *sessionapi.Conn) sessionapi.Handler {
	var buf [4]byte
	c.Read(buf[:]) // want "receive-before-established"
	return sessionapi.Handler{}
}

func leak(ep *sessionapi.Endpoint) {
	c, err := ep.Open("peer") // want "connection leak"
	if err != nil {
		return
	}
	c.Write([]byte("hi"))
}

func sendAfterShutdown(ep *sessionapi.Endpoint) {
	c, err := ep.Open("peer")
	if err != nil {
		return
	}
	c.Shutdown()
	c.Write([]byte("late")) // want "send-after-shutdown"
	c.Close()
}

func helperUseAfterClose(ep *sessionapi.Endpoint) {
	c, err := ep.Open("peer")
	if err != nil {
		return
	}
	c.Close()
	sendAll(c, nil) // want "use-after-close"
}

func sendAll(c *sessionapi.Conn, b []byte) {
	for len(b) > 0 {
		n, err := c.Write(b)
		if err != nil {
			return
		}
		b = b[n:]
	}
}

func handlerUseAfterClose(ep *sessionapi.Endpoint) {
	ep.Listen(11, func(c *sessionapi.Conn) sessionapi.Handler {
		return sessionapi.Handler{
			Data: func(c *sessionapi.Conn, b []byte) {
				c.Close()
				c.Write(b) // want "use-after-close"
			},
		}
	})
}
