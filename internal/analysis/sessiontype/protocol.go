package sessiontype

import (
	"fmt"
	"sort"
	"strings"
)

// state is a set of session states a connection value may occupy —
// the typestate analogue of statemachine's RFC 793 mask, but over the
// user-facing lifecycle instead of the internal eleven states.
type state uint8

const (
	// stHandshaking: the value exists but the three-way handshake has
	// not completed — the accept factory's view of its argument.
	stHandshaking state = 1 << iota
	// stEstab: Open returned, or an established-side handler fired.
	stEstab
	// stSendClosed: Shutdown sent our FIN; receiving is still legal.
	stSendClosed
	// stClosed: Close or Abort was called; every data op is dead.
	stClosed
)

// stAny is the seed for connection values of unknown provenance.
const stAny = stHandshaking | stEstab | stSendClosed | stClosed

// stateOrder fixes the rendering and diagnostics order.
var stateOrder = []state{stHandshaking, stEstab, stSendClosed, stClosed}

var stateNames = map[state]string{
	stHandshaking: "Handshaking",
	stEstab:       "Estab",
	stSendClosed:  "SendClosed",
	stClosed:      "Closed",
}

func (s state) String() string {
	var parts []string
	for _, b := range stateOrder {
		if s&b != 0 {
			parts = append(parts, stateNames[b])
		}
	}
	if len(parts) == 0 {
		return "∅"
	}
	return strings.Join(parts, "|")
}

// Op is one operation of the declared session protocol: the states it
// is legal in, the state it leaves the connection in, whether it
// releases the connection (satisfies the must-close obligation), and
// the finding label for each illegal source state. This table IS the
// declared protocol — the analyzer diffs observed usage paths against
// it, and -sessiontype-dot renders it.
type Op struct {
	Name     string
	OK       state
	Next     state
	Releases bool
	Bad      map[state]string
}

// Protocol declares the socket lifecycle the paper's user API implies:
// Open/Listen → Send/Recv → Close/Abort, with Shutdown as the half-close
// refinement (receive stays legal until the peer finishes).
var Protocol = []Op{
	{Name: "Write", OK: stEstab, Next: stEstab, Bad: map[state]string{
		stHandshaking: "send-before-established",
		stSendClosed:  "send-after-shutdown",
		stClosed:      "use-after-close",
	}},
	{Name: "WriteUrgent", OK: stEstab, Next: stEstab, Bad: map[state]string{
		stHandshaking: "send-before-established",
		stSendClosed:  "send-after-shutdown",
		stClosed:      "use-after-close",
	}},
	{Name: "Read", OK: stEstab | stSendClosed, Next: 0, Bad: map[state]string{
		stHandshaking: "receive-before-established",
		stClosed:      "use-after-close",
	}},
	{Name: "ReadFull", OK: stEstab | stSendClosed, Next: 0, Bad: map[state]string{
		stHandshaking: "receive-before-established",
		stClosed:      "use-after-close",
	}},
	{Name: "Shutdown", OK: stHandshaking | stEstab | stSendClosed, Next: stSendClosed, Releases: true, Bad: map[state]string{
		stClosed: "double-close",
	}},
	{Name: "Close", OK: stHandshaking | stEstab | stSendClosed, Next: stClosed, Releases: true, Bad: map[state]string{
		stClosed: "double-close",
	}},
	{Name: "Abort", OK: stHandshaking | stEstab | stSendClosed, Next: stClosed, Releases: true, Bad: map[state]string{
		stClosed: "double-close",
	}},
}

// badLabel picks the finding label for an op applied in mask cur
// (strongest state first: a definitely-closed connection reads as
// use-after-close even if a stale handshaking bit survives joins).
func badLabel(op *Op, cur state) string {
	for i := len(stateOrder) - 1; i >= 0; i-- {
		b := stateOrder[i]
		if cur&b != 0 {
			if label, ok := op.Bad[b]; ok {
				return label
			}
		}
	}
	return "protocol violation"
}

// next computes the post-op mask from cur: states the op is legal in
// move to Next (or stay put when Next is 0), illegal states persist so
// later ops on a joined path still see them.
func next(op *Op, cur state) state {
	legal := cur & op.OK
	out := cur &^ op.OK
	if legal != 0 {
		if op.Next != 0 {
			out |= op.Next
		} else {
			out |= legal
		}
	}
	return out
}

// Dot renders the declared protocol as Graphviz, each edge annotated
// with the number of call sites the analysis proved to take it. Nodes
// and edges emit in fixed (state-order, protocol-order) sequence and
// the edge list is sorted, so CI artifact diffs are stable across runs.
func Dot(proved map[string]int) string {
	var b strings.Builder
	b.WriteString("digraph session_protocol {\n")
	b.WriteString("\trankdir=LR;\n")
	b.WriteString("\tnode [shape=box, fontname=\"Helvetica\", fontsize=11];\n")
	b.WriteString("\tedge [fontname=\"Helvetica\", fontsize=9];\n")
	for _, s := range stateOrder {
		fmt.Fprintf(&b, "\t%q;\n", stateNames[s])
	}
	type edge struct{ from, to, label string }
	var edges []edge
	for i := range Protocol {
		op := &Protocol[i]
		label := op.Name
		if n := proved[op.Name]; n > 0 {
			label = fmt.Sprintf("%s (%d sites)", op.Name, n)
		}
		for _, src := range stateOrder {
			if op.OK&src == 0 {
				continue
			}
			dst := op.Next
			if dst == 0 {
				dst = src
			}
			edges = append(edges, edge{stateNames[src], stateNames[dst], label})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		if edges[i].to != edges[j].to {
			return edges[i].to < edges[j].to
		}
		return edges[i].label < edges[j].label
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "\t%q -> %q [label=%q];\n", e.from, e.to, e.label)
	}
	b.WriteString("}\n")
	return b.String()
}
