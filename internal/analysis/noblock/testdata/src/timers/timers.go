// Package timers is a miniature of repro/internal/timers for the
// noblock testdata: Start registers a scheduler-invoked callback.
package timers

type Timer struct{ cleared bool }

func Start(s any, handler func(), d int) *Timer {
	_ = handler
	return &Timer{}
}

func (t *Timer) Clear() { t.cleared = true }
