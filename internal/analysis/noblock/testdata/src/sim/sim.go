// Package sim is a miniature of repro/internal/sim for the noblock
// testdata: the cooperative scheduler whose primitives are the
// sanctioned handoff set.
package sim

type Duration int64

type Scheduler struct{}

type Thread struct{}

func (s *Scheduler) Fork(name string, fn func()) *Thread { fn(); return &Thread{} }

func (s *Scheduler) ForkPrio(name string, prio int, fn func()) *Thread { fn(); return &Thread{} }

func (s *Scheduler) Run(fn func()) { fn() }

func (s *Scheduler) Sleep(d Duration) {}

func (s *Scheduler) Yield() {}

type Cond struct{}

func NewCond(s *Scheduler) *Cond { return &Cond{} }

func (c *Cond) Wait()   {}
func (c *Cond) Signal() {}
