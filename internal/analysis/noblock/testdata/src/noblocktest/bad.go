// Package noblocktest exercises the noblock analyzer: code reachable
// from scheduler roots must not block outside the scheduler.
package noblocktest

import (
	"os"
	"sync"
	"sync/atomic"
	"time"

	"sim"
)

type handlers struct {
	Data func()
	Err  func()
}

type server struct {
	mu    sync.Mutex
	count atomic.Int64
	ch    chan int
	h     func()
	hs    handlers
}

func (sv *server) Attach(h func())       { sv.h = h }
func (sv *server) SetHandler(h handlers) { sv.hs = h }

func bad(s *sim.Scheduler, sv *server) {
	s.Fork("sleeper", func() {
		time.Sleep(time.Millisecond) // want "time.Sleep parks the OS thread"
	})
	s.Run(func() {
		sv.lockIt() // reported inside lockIt, where the sync calls are
	})
	s.Fork("chatty", func() {
		sv.ch <- 1 // want "a raw channel send"
		<-sv.ch    // want "a raw channel receive"
	})
	s.Fork("selecty", func() {
		select { // want "a select statement"
		case <-sv.ch: // want "a raw channel receive"
		default:
		}
	})
	s.Fork("escape", func() {
		go sv.tick() // want "a raw go statement"
	})
	s.Fork("drain", func() {
		for range sv.ch { // want "a range over a channel"
		}
	})
	sv.Attach(func() {
		sv.open()
	})
	sv.SetHandler(handlers{Data: sv.onData})
}

func (sv *server) lockIt() {
	sv.mu.Lock()   // want "sync.Lock waits without yielding"
	sv.mu.Unlock() // want "sync.Unlock waits without yielding"
}

func (sv *server) open() {
	f, _ := os.Open("/dev/null") // want "os.Open is operating-system I/O"
	_ = f
}

func (sv *server) onData() {
	var wg sync.WaitGroup
	wg.Wait() // want "sync.Wait waits without yielding"
}
