// This file holds the approved idioms: code on scheduler threads waits
// through sim's own primitives, counts with sync/atomic, and anything
// never handed to the scheduler may block however it likes. No want
// comments — the analyzer must stay silent here.
package noblocktest

import (
	"time"

	"sim"
	"timers"
)

func good(s *sim.Scheduler, sv *server) {
	s.Fork("worker", func() {
		s.Sleep(5) // the scheduler's sleep, charged to the sim clock
		s.Yield()
		sv.count.Add(1) // sync/atomic never blocks
	})
	c := sim.NewCond(s)
	s.Fork("waiter", func() {
		c.Wait() // sim.Cond parks inside the scheduler
	})
	timers.Start(nil, sv.tick, 5)
}

func (sv *server) tick() { sv.count.Add(1) }

// offline is never registered with the scheduler, so its blocking is
// out of scope.
func offline() {
	time.Sleep(time.Second)
}
