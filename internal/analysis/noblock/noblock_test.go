package noblock

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

// TestNoblock runs the analyzer over a package that registers work with
// a miniature scheduler: the bad file seeds every blocking class, the
// good file holds the approved sim idioms and must stay silent.
func TestNoblock(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "noblocktest")
}
