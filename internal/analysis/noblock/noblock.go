// Package noblock machine-checks the other half of the paper's
// concurrency discipline: quasisync constrains WHAT async code may call
// (enqueue only); noblock constrains HOW any coroutine-scheduled code
// may wait. The paper's stack runs on ML threads multiplexed by its own
// scheduler — a thread that blocks in the operating system instead of
// the scheduler stalls every connection, not just its own.
//
// The Go port's analogue of those ML threads is internal/sim: Fork'd
// coroutine bodies, timer callbacks, wire-delivery handlers, and
// connection upcalls all run on sim's cooperative scheduler. Code
// reachable from any of those roots must therefore not block outside
// the scheduler's control:
//
//   - time.Sleep parks the OS thread, invisible to sim's clock;
//   - raw channel operations (send, receive, range, select) and
//     package sync primitives wait without yielding to the scheduler
//     (sync/atomic is fine: it never blocks);
//   - package os / package net I/O can block indefinitely;
//   - a raw go statement escapes the scheduler entirely.
//
// The sanctioned handoff set is package sim itself (Sleep, Yield, Cond,
// Exclude, ...) — the traversal treats sim as a boundary and does not
// look inside it. The walk is module-wide over the shared callgraph:
// roots found in the package under analysis are followed wherever they
// lead, and diagnostics are deduplicated driver-wide so a site reachable
// from several packages' roots is reported once.
package noblock

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// Analyzer is the noblock pass.
var Analyzer = &analysis.Analyzer{
	Name: "noblock",
	Doc:  "code reachable from coroutine-scheduled roots (sim.Fork bodies, timer callbacks, wire handlers, upcalls) must not block outside the scheduler: no time.Sleep, raw channel ops, sync locks, os/net I/O, or go statements",
	Run:  run,
}

// registrar reports whether fn hands its function-typed arguments to
// the cooperative scheduler, with a diagnostic label. Matching is by
// name and declaring-package name (not import path) so the testdata
// miniatures exercise the same shapes the real module has.
func registrar(fn *types.Func) (label string, ok bool) {
	pkgName := ""
	if fn.Pkg() != nil {
		pkgName = fn.Pkg().Name()
	}
	switch {
	case pkgName == "sim" && (fn.Name() == "Fork" || fn.Name() == "ForkPrio" || fn.Name() == "Run"):
		return "coroutine body (sim." + fn.Name() + ")", true
	case pkgName == "timers" && fn.Name() == "Start":
		return "timer callback (timers.Start)", true
	case fn.Name() == "Attach":
		return "wire delivery handler (Attach)", true
	case fn.Name() == "SetHandler":
		return "connection upcall (SetHandler)", true
	}
	return "", false
}

// blockingCall classifies a callee that blocks outside the scheduler,
// returning a description or "".
func blockingCall(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	path := fn.Pkg().Path()
	switch {
	case path == "time" && fn.Name() == "Sleep":
		return "time.Sleep parks the OS thread, invisible to the sim clock"
	case path == "sync":
		return "sync." + fn.Name() + " waits without yielding to the scheduler"
	case path == "os" || path == "net":
		return path + "." + fn.Name() + " is operating-system I/O that can block indefinitely"
	}
	return ""
}

type checker struct {
	pass     *analysis.Pass
	graph    *callgraph.Graph
	reported map[token.Pos]bool // driver-wide, via Shared.Memo
	seen     map[*callgraph.Node]bool
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() == "sim" {
		// The scheduler is the sanctioned handoff set; its own blocking
		// internals are the point.
		return nil, nil
	}
	g := pass.Shared.Memo("callgraph", func() any {
		return callgraph.Build(pass.Shared.Packages)
	}).(*callgraph.Graph)
	reported := pass.Shared.Memo("noblock.reported", func() any {
		return map[token.Pos]bool{}
	}).(map[token.Pos]bool)

	c := &checker{pass: pass, graph: g, reported: reported, seen: map[*callgraph.Node]bool{}}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := callgraph.Callee(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			if label, ok := registrar(fn); ok {
				c.rootArgs(call, label)
			}
			return true
		})
	}
	return nil, nil
}

// rootArgs treats every function-typed argument of a registrar call as
// a scheduled root — including function-typed fields of a composite
// literal argument, which is how connection upcalls are registered
// (SetHandler(Handler{Data: func...})).
func (c *checker) rootArgs(call *ast.CallExpr, label string) {
	for _, arg := range call.Args {
		c.rootExpr(arg, label)
		if lit, ok := ast.Unparen(arg).(*ast.CompositeLit); ok {
			for _, elt := range lit.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					c.rootExpr(kv.Value, label)
				}
			}
		}
	}
}

func (c *checker) rootExpr(arg ast.Expr, label string) {
	tv, ok := c.pass.TypesInfo.Types[ast.Unparen(arg)]
	if !ok || tv.Type == nil {
		return
	}
	if _, isFunc := tv.Type.Underlying().(*types.Signature); !isFunc {
		return
	}
	if n := c.graph.RootFor(c.pass.TypesInfo, arg); n != nil {
		c.walk(n, label)
	}
}

// walk traverses one root's reachable bodies over the module-wide
// graph, stopping at the sim boundary.
func (c *checker) walk(n *callgraph.Node, label string) {
	if n == nil || c.seen[n] {
		return
	}
	c.seen[n] = true
	if n.Pkg.Types.Name() == "sim" {
		return
	}

	var body *ast.BlockStmt
	if n.Decl != nil {
		body = n.Decl.Body
	} else {
		body = n.Lit.Body
	}
	c.scanStmts(n, body, label)

	for _, e := range n.Edges {
		if why := blockingCall(e.Callee); why != "" {
			c.reportf(e.Site.Pos(),
				"%s is reachable from a %s and calls a blocking primitive: %s; use the sim scheduler's primitives instead",
				n.Name(), label, why)
			continue
		}
		if lbl, ok := registrar(e.Callee); ok {
			// Registration on the path roots its own callbacks; the
			// registrar call itself does not block.
			c.rootArgsOf(n.Pkg.Info, e.Site, lbl)
			continue
		}
		c.walk(c.graph.Funcs[e.Callee], label)
	}
	for _, lit := range n.Lits {
		c.walk(lit, label)
	}
}

// rootArgsOf roots a registrar call found during the walk. The call may
// be in another package than the one under analysis, so resolution goes
// through the owning package's type info.
func (c *checker) rootArgsOf(info *types.Info, call *ast.CallExpr, label string) {
	for _, arg := range call.Args {
		if n := c.graph.RootFor(info, arg); n != nil {
			c.walk(n, label)
			continue
		}
		if lit, ok := ast.Unparen(arg).(*ast.CompositeLit); ok {
			for _, elt := range lit.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if n := c.graph.RootFor(info, kv.Value); n != nil {
						c.walk(n, label)
					}
				}
			}
		}
	}
}

// scanStmts flags statement-level blocking constructs in one body,
// excluding nested literals (they are walked as child nodes).
func (c *checker) scanStmts(n *callgraph.Node, body *ast.BlockStmt, label string) {
	if body == nil {
		return
	}
	info := n.Pkg.Info
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			c.stmt(n, x.Pos(), "a raw channel send", label)
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				c.stmt(n, x.Pos(), "a raw channel receive", label)
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					c.stmt(n, x.Pos(), "a range over a channel", label)
				}
			}
		case *ast.SelectStmt:
			c.stmt(n, x.Pos(), "a select statement", label)
		case *ast.GoStmt:
			c.stmt(n, x.Pos(), "a raw go statement (escapes the scheduler)", label)
		}
		return true
	})
}

func (c *checker) stmt(n *callgraph.Node, pos token.Pos, what, label string) {
	c.reportf(pos,
		"%s is reachable from a %s and uses %s, which waits outside the scheduler; use sim.Cond or the to_do queue instead",
		n.Name(), label, what)
}

func (c *checker) reportf(pos token.Pos, format string, args ...any) {
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, format, args...)
}
