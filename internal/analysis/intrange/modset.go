// Modsets: the set of field and package-variable names a function may
// transitively write. The engine consumes them through CallKills — a
// sequence-space fact survives a call iff the callee's modset is
// complete and disjoint from the names the fact mentions. That is what
// lets drainOutOfOrder's seqGT guard survive the queue-maintenance
// calls between the guard and the delivery slice.
//
// The collection is name-based, matching the engine's fact paths:
//   - writes through a selector record the field name (tcb.rcvNxt = x,
//     and x.f op= y, x.f++ likewise);
//   - writes to package-level variables record the variable name;
//   - writes through an explicit pointer dereference (*p = x) have an
//     unknown target, so the function's modset becomes incomplete and
//     every call to it kills all facts;
//   - writes to locals are invisible to callers and are skipped; an
//     element write through a local alias can change shared contents
//     but not the value of any named integer field, and facts range
//     over integers only.
// Taking the address of a selector or package variable counts as a
// write to it — the pointer may be stored and used later.
//
// Edges with no resolved callee (interface calls, stored function
// values the callgraph could not bind) and callees without a loaded
// body (stdlib) also force incompleteness: the caller then provides no
// fact retention, which is the safe direction.

package intrange

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/callgraph"
)

type modset struct {
	writes   map[string]bool
	complete bool
}

func buildModsets(g *callgraph.Graph) map[*types.Func]*modset {
	sets := make(map[*types.Func]*modset, len(g.Funcs))
	for fn, n := range g.Funcs {
		m := &modset{writes: map[string]bool{}, complete: true}
		collectWrites(n, m)
		sets[fn] = m
	}
	for changed := true; changed; {
		changed = false
		for fn, n := range g.Funcs {
			m := sets[fn]
			for _, e := range allEdges(n) {
				if e.Callee == nil {
					if m.complete {
						m.complete = false
						changed = true
					}
					continue
				}
				cm := sets[e.Callee]
				if cm == nil {
					// No body loaded for the callee (stdlib or
					// interface method): unknown writes.
					if m.complete {
						m.complete = false
						changed = true
					}
					continue
				}
				if !cm.complete && m.complete {
					m.complete = false
					changed = true
				}
				for name := range cm.writes {
					if !m.writes[name] {
						m.writes[name] = true
						changed = true
					}
				}
			}
			_ = fn
		}
	}
	return sets
}

// allEdges flattens a node's call sites including nested literals —
// a closure built on a path is conservatively assumed to run when the
// function does.
func allEdges(n *callgraph.Node) []callgraph.Edge {
	var out []callgraph.Edge
	var walk func(n *callgraph.Node)
	walk = func(n *callgraph.Node) {
		out = append(out, n.Edges...)
		out = append(out, n.ValueEdges...)
		for _, lit := range n.Lits {
			walk(lit)
		}
	}
	walk(n)
	return out
}

// collectWrites records the direct writes in a declaration's body,
// including nested literals (they share the frame).
func collectWrites(n *callgraph.Node, m *modset) {
	info := n.Pkg.Info
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.AssignStmt:
			for _, l := range s.Lhs {
				addWrite(info, m, l)
			}
		case *ast.IncDecStmt:
			addWrite(info, m, s.X)
		case *ast.RangeStmt:
			if s.Key != nil {
				addWrite(info, m, s.Key)
			}
			if s.Value != nil {
				addWrite(info, m, s.Value)
			}
		case *ast.CallExpr:
			if name, ok := builtinOf(info, s); ok && name == "copy" && len(s.Args) > 0 {
				addWrite(info, m, s.Args[0])
			}
		case *ast.UnaryExpr:
			if s.Op == token.AND {
				addWrite(info, m, s.X)
			}
		}
		return true
	})
}

func addWrite(info *types.Info, m *modset, l ast.Expr) {
	switch e := ast.Unparen(l).(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return
		}
		v, ok := info.ObjectOf(e).(*types.Var)
		if !ok {
			return
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			m.writes[e.Name] = true // package-level variable
		}
	case *ast.SelectorExpr:
		m.writes[e.Sel.Name] = true
	case *ast.IndexExpr:
		addWrite(info, m, e.X)
	case *ast.StarExpr:
		m.complete = false
	case *ast.CompositeLit:
		// &T{...} reached through the address-of case: fresh value.
	default:
		m.complete = false
	}
}
