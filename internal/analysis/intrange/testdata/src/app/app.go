// Package app sits outside the datapath scope: the same shapes that
// are findings in tcp/checksum are silent here.
package app

func truncates(n int) uint16 {
	return uint16(n)
}

func badShift(w uint32, k int) uint32 {
	return w << uint(k)
}

func badMake(n int) []byte {
	return make([]byte, n)
}
