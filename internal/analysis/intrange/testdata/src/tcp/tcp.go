// Package tcp exercises the intrange analyzer inside a scoped package
// carrying the real module's sequence machinery: narrowing conversions
// (R1), shift counts (R2), allocation sizes (R3), and hotpath offsets
// (R4), with the clean twins proving the guard-refinement, summary,
// and seq-predicate paths.
package tcp

type seq uint32

func seqSub(a, b seq) uint32 { return uint32(a) - uint32(b) }

func seqLT(a, b seq) bool  { return int32(seqSub(a, b)) < 0 }
func seqLEQ(a, b seq) bool { return int32(seqSub(a, b)) <= 0 }
func seqGT(a, b seq) bool  { return int32(seqSub(a, b)) > 0 }
func seqGEQ(a, b seq) bool { return int32(seqSub(a, b)) >= 0 }

func seqBetween(lo, x, hi seq) bool { return seqLEQ(lo, x) && seqLT(x, hi) }

// --- R1: narrowing conversions ---

func truncates(n int) uint16 {
	return uint16(n) // want "conversion to uint16 may truncate"
}

func guarded(n int) uint16 {
	if n < 0 || n > 0xffff {
		return 0
	}
	return uint16(n)
}

// fromLen proves under the 31-bit measurement axiom: a length always
// fits uint32.
func fromLen(data []byte) uint32 {
	return uint32(len(data))
}

// reinterpret is the sanctioned same-width sign flip the predicates
// are built on — not a narrowing, not flagged.
func reinterpret(d uint32) int32 {
	return int32(d)
}

func clampDiamond(n int) uint16 {
	if n > 0xffff {
		n = 0xffff
	}
	if n < 0 {
		n = 0
	}
	return uint16(n)
}

// --- R2: shift counts ---

func badShift(w uint32, k int) uint32 {
	return w << uint(k) // want "shift count range .* not provably within"
}

// windowScale proves by the RFC 7323 clamp alone.
func windowScale(w uint32, k int) uint32 {
	if k < 0 {
		k = 0
	}
	if k > 14 {
		k = 14
	}
	return w << uint(k)
}

func constShift(w uint32) uint32 {
	return w >> 16
}

// --- R3: allocation sizes ---

func badMake(n int) []byte {
	return make([]byte, n) // want "make size not provably non-negative"
}

func goodMake(n int) []byte {
	if n < 0 {
		n = 0
	}
	return make([]byte, n)
}

func headerBytes(opts bool) int {
	if opts {
		return 24
	}
	return 20
}

// summaryMake proves through the bottom-up summary of headerBytes:
// [20,24] is non-negative at every call site.
func summaryMake() []byte {
	return make([]byte, headerBytes(true))
}

type Packet struct{ buf []byte }

func (p *Packet) Push(n int) []byte {
	if n < 0 || n > len(p.buf) {
		return nil
	}
	return p.buf[:n]
}

func badPush(p *Packet, n int) {
	p.Push(n) // want "Push size not provably non-negative"
}

func goodPush(p *Packet, n int) {
	if n < 0 {
		return
	}
	p.Push(n)
}

// --- R4: hotpath offsets ---

//foxvet:hotpath
func hotIndex(b []byte, i int) byte {
	return b[i] // want "index not provably non-negative"
}

//foxvet:hotpath
func hotIndexGuarded(b []byte, i int) byte {
	if i < 0 || i >= len(b) {
		return 0
	}
	return b[i]
}

// coldIndex is unmarked: R4 does not apply outside the hot path.
func coldIndex(b []byte, i int) byte {
	return b[i]
}

// sumBytes proves widening terminates and keeps the stable zero bound
// through the loop head.
//
//foxvet:hotpath
func sumBytes(b []byte) (s int) {
	for i := 0; i < len(b); i++ {
		s += int(b[i])
	}
	return s
}

type segmentT struct {
	seq  seq
	data []byte
}

// deliverTail is the drainOutOfOrder shape: the wrap-safe guard pins
// seqSub to the non-negative half-space, so the slice bound proves.
//
//foxvet:hotpath
func deliverTail(rcvNxt seq, q *segmentT) []byte {
	if seqGT(q.seq, rcvNxt) {
		return nil
	}
	return q.data[seqSub(rcvNxt, q.seq):]
}

//foxvet:hotpath
func hotSlice(b []byte, lo int) []byte {
	return b[lo:] // want "slice bound not provably non-negative"
}
