// Package checksum exercises intrange's whole-package hotpath rule:
// every offset in the checksum kernels is checked, and the carry-fold
// loop's exit refinement ((sum>>16) == 0) proves the final narrowing.
package checksum

// fold proves: on the loop's exit edge sum>>16 == 0, so sum is within
// [0,0xffff] and the narrowing is lossless.
func fold(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return uint16(sum)
}

func foldMissing(sum uint32) uint16 {
	return uint16(sum) // want "conversion to uint16 may truncate"
}

// accumulate proves the loop-counter offsets non-negative through
// widening: the zero lower bound is stable at the loop head.
func accumulate(data []byte) uint32 {
	var s uint32
	for i := 0; i+2 <= len(data); i += 2 {
		s += uint32(data[i])<<8 | uint32(data[i+1])
	}
	return s
}

func offsetUnproven(data []byte, n int) byte {
	return data[n] // want "index not provably non-negative"
}
