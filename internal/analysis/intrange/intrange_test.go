package intrange

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

// TestIntRange covers every rule and its clean twin: narrowing
// conversions against guard refinement, the 31-bit measurement axiom,
// and bottom-up summaries; shift counts against the RFC 7323 clamp;
// allocation sizes; hotpath and whole-package-checksum offsets,
// including the drainOutOfOrder-shaped seq-predicate proof and the
// carry-fold exit refinement.
func TestIntRange(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "tcp", "checksum", "app")
}
