// Package intrange proves width safety on the datapath with the
// interval (value-range) engine: the numeric facts the paper's SML
// types carried for free — 31-bit default ints, explicit word types at
// the wire boundary — restated as machine-checked range proofs over
// Go's silent integer conversions.
//
// The pass runs the abstract interpreter over every function in the
// datapath packages (tcp, ip, ethernet, wire, basis, checksum) and
// reports:
//
//   - R1 (truncation): an integer conversion whose operand range is
//     not provably within the target type — the classic
//     uint32↔int/uint16 bugs on seq/window/length values. Conversions
//     whose source type already fits the target are silent.
//   - R2 (shift range): a shift whose count is not provably within
//     [0, width-1] of the shifted operand. Go defines over-wide shifts
//     as 0, which turns a backoff counter into a zero-length timer —
//     exactly the silent failure this rule exists to catch. Window
//     scaling (RFC 7323) clamps its exponent to 14, so a compliant
//     shift proves in range by the clamp alone.
//   - R3 (size sanity): make sizes and the size arguments of the
//     packet allocators (AllocPacket, NewPacket) and mutators (Push,
//     Pull, Extend, TrimTail, TrimTo) provably non-negative, so the
//     memory-accounting charge derived from them cannot go negative.
//   - R4 (offset sanity): index and slice-bound expressions in
//     //foxvet:hotpath functions and the checksum package provably
//     non-negative — the accumulator-offset proofs; upper bounds come
//     from the guard refinement making loop ranges finite.
//
// Two modelling axioms keep the pass honest rather than noisy, and
// both are documented where the engine defines them (see package
// interval): int/int64 are unbounded, and len/cap and the measurement
// methods (Len, Headroom, Tailroom, MTU, ...) return at most 2³¹-1 —
// the paper's SML default-int magnitude. Under the axiom,
// seq(len(data)) is a proof, not a finding.
//
// Interprocedural precision comes from three module-wide structures
// memoized across packages: the call graph, bottom-up interval
// summaries for single-integer-result functions (headerBytes and
// friends), and per-function modsets — the set of field/package-var
// names a call may transitively write — which let a seq-space guard
// survive the helper calls interleaved between the guard and the use
// (drainOutOfOrder's shape). The modsets are used only to retain
// comparison facts, never to widen a variable, so an over-small
// modset costs precision on facts about mutable shared state but
// cannot manufacture a range that excludes a reachable value.
package intrange

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/interval"
)

// Analyzer is the intrange pass.
var Analyzer = &analysis.Analyzer{
	Name: "intrange",
	Doc:  "prove width safety on the datapath: no silently truncating integer conversions, shift counts within the operand width, allocation sizes and hotpath/checksum offsets provably non-negative",
	Run:  run,
}

// hotDirective marks functions whose index expressions are checked.
const hotDirective = "//foxvet:hotpath"

// scoped names the datapath packages the pass proves.
var scoped = map[string]bool{
	"tcp":      true,
	"ip":       true,
	"ethernet": true,
	"wire":     true,
	"basis":    true,
	"checksum": true,
}

// measureNames are the niladic measurement methods covered by the
// 31-bit axiom: they report a size of something that exists in memory.
var measureNames = map[string]bool{
	"Len":      true,
	"Cap":      true,
	"Headroom": true,
	"Tailroom": true,
	"Buffered": true,
	"MTU":      true,
	"Size":     true,
}

// sizeArgs maps packet allocator/mutator names to the argument indexes
// that must be provably non-negative (R3).
var sizeArgs = map[string][]int{
	"AllocPacket": {0, 1, 2},
	"NewPacket":   {0, 1},
	"Push":        {0},
	"Pull":        {0},
	"Extend":      {0},
	"TrimTail":    {0},
	"TrimTo":      {0},
}

func run(pass *analysis.Pass) (any, error) {
	if !scoped[lastElem(pass.Pkg.Path())] {
		return nil, nil
	}
	w := worldOf(pass)
	for _, f := range pass.Files {
		if testFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, w, fd)
		}
	}
	return nil, nil
}

// world is the module-wide interprocedural context, built once and
// shared by every per-package run.
type world struct {
	graph *callgraph.Graph
	sums  map[*types.Func]interval.Interval
	mods  map[*types.Func]*modset
}

func worldOf(pass *analysis.Pass) *world {
	return pass.Shared.Memo("intrange.world", func() any {
		g := pass.Shared.Memo("callgraph", func() any {
			return callgraph.Build(pass.Shared.Packages)
		}).(*callgraph.Graph)
		w := &world{graph: g}
		w.mods = buildModsets(g)
		var srcs []interval.FuncSource
		for _, pkg := range pass.Shared.Packages {
			if !scoped[lastElem(pkg.Path)] {
				continue
			}
			for _, f := range pkg.Files {
				if testFile(pkg.Fset, f) {
					continue
				}
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
					if !ok {
						continue
					}
					srcs = append(srcs, interval.FuncSource{Fn: fn, Body: fd.Body, Info: pkg.Info})
				}
			}
		}
		base := w.analysis(nil)
		w.sums = interval.Summarize(srcs, 3, base)
		return w
	}).(*world)
}

// analysis builds the engine hooks over the world; info is the package
// whose bodies are being interpreted (nil inside Summarize, which
// swaps in each source's own info).
func (w *world) analysis(info *types.Info) *interval.Analysis {
	return &interval.Analysis{
		Info: info,
		Summary: func(fn *types.Func) (interval.Interval, bool) {
			iv, ok := w.sums[fn]
			return iv, ok
		},
		Measure: isMeasure,
		SeqSub:  isSeqSub,
		SeqPred: seqPredOf,
		CallKills: func(fn *types.Func) (map[string]bool, bool) {
			m := w.mods[fn]
			if m == nil || !m.complete {
				return nil, false
			}
			return m.writes, true
		},
	}
}

func fnPkg(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return lastElem(fn.Pkg().Path())
}

// isSeqSub recognizes tcp's wrapping sequence difference.
func isSeqSub(fn *types.Func) bool {
	return fnPkg(fn) == "tcp" && fn.Name() == "seqSub"
}

// seqPredOf recognizes the wrap-safe comparison predicates.
func seqPredOf(fn *types.Func) (interval.SeqPred, bool) {
	if fnPkg(fn) != "tcp" {
		return 0, false
	}
	switch fn.Name() {
	case "seqLT":
		return interval.SeqLT, true
	case "seqLEQ":
		return interval.SeqLEQ, true
	case "seqGT":
		return interval.SeqGT, true
	case "seqGEQ":
		return interval.SeqGEQ, true
	case "seqBetween":
		return interval.SeqBetween, true
	}
	return 0, false
}

// isMeasure recognizes the niladic size methods under the 31-bit axiom.
func isMeasure(fn *types.Func) bool {
	if !measureNames[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	return interval.IsInteger(sig.Results().At(0).Type())
}

// checkFunc runs the engine over a declaration and every function
// literal nested in it (each literal gets its own fixpoint — the
// engine does not descend into literals).
func checkFunc(pass *analysis.Pass, w *world, fd *ast.FuncDecl) {
	hot := marked(fd) || lastElem(pass.Pkg.Path()) == "checksum"
	bodies := []*ast.BlockStmt{fd.Body}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			bodies = append(bodies, lit.Body)
		}
		return true
	})
	a := w.analysis(pass.TypesInfo)
	for _, body := range bodies {
		res := a.Func(body)
		c := &checker{pass: pass, a: a, hot: hot}
		c.scanResult(res)
	}
}

func marked(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, cm := range fd.Doc.List {
		if cm.Text == hotDirective || strings.HasPrefix(cm.Text, hotDirective+" ") {
			return true
		}
	}
	return false
}

// checker applies the four rules to an analyzed body.
type checker struct {
	pass *analysis.Pass
	a    *interval.Analysis
	hot  bool
}

func (c *checker) scanResult(res *interval.Result) {
	for _, b := range res.Graph.Blocks {
		for _, n := range b.Nodes {
			c.scanNode(n, res.Before[n])
		}
	}
	// Branch conditions live on terminators, not in block nodes; the
	// engine records the env at each decomposed leaf. Driver output is
	// position-sorted, but scan in order anyway for reproducibility.
	conds := make([]ast.Expr, 0, len(res.AtCond))
	for e := range res.AtCond {
		conds = append(conds, e)
	}
	sort.Slice(conds, func(i, j int) bool { return conds[i].Pos() < conds[j].Pos() })
	for _, e := range conds {
		c.scanNode(e, res.AtCond[e])
	}
}

// scanNode applies the rules to one statement or condition under its
// fixpoint env. Nested literals are analyzed separately; a range
// statement's body is lowered into its own blocks, so only the range
// expression is scanned here.
func (c *checker) scanNode(n ast.Node, env *interval.Env) {
	if env == nil || env.Dead() {
		return
	}
	if r, ok := n.(*ast.RangeStmt); ok {
		c.scanNode(r.X, env)
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch e := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if op := shiftAssign(e.Tok); op != token.ILLEGAL && len(e.Lhs) == 1 && len(e.Rhs) == 1 {
				c.checkShift(e.Lhs[0], e.Rhs[0], env)
			}
		case *ast.BinaryExpr:
			if e.Op == token.SHL || e.Op == token.SHR {
				c.checkShift(e.X, e.Y, env)
			}
		case *ast.CallExpr:
			c.checkCall(e, env)
		case *ast.IndexExpr:
			c.checkIndex(e, env)
		case *ast.SliceExpr:
			c.checkSlice(e, env)
		}
		return true
	})
}

func shiftAssign(tok_ token.Token) token.Token {
	switch tok_ {
	case token.SHL_ASSIGN:
		return token.SHL
	case token.SHR_ASSIGN:
		return token.SHR
	}
	return token.ILLEGAL
}

// checkCall handles R1 (conversions) and R3 (allocation sizes).
func (c *checker) checkCall(call *ast.CallExpr, env *interval.Env) {
	info := c.pass.TypesInfo
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return
		}
		src := info.TypeOf(call.Args[0])
		dst := info.TypeOf(call)
		if src == nil || dst == nil || !interval.IsInteger(src) || !interval.IsInteger(dst) {
			return
		}
		if interval.BitWidth(dst) >= interval.BitWidth(src) {
			// Widening, or a same-width sign reinterpretation — the
			// int32(seqSub(...)) idiom the wrap-safe predicates are
			// built on. R1 is about dropped high bits, not sign.
			return
		}
		dstIv := interval.OfType(dst)
		if interval.OfType(src).In(dstIv) {
			return
		}
		got := c.a.Eval(call.Args[0], env)
		if !got.In(dstIv) {
			c.pass.Reportf(call.Pos(), "conversion to %s may truncate: operand range %s does not fit %s",
				typeName(c.pass, dst), got, dstIv)
		}
		return
	}
	if name, ok := builtinOf(info, call); ok {
		if name == "make" {
			for _, arg := range call.Args[1:] {
				c.requireNonNeg(arg, env, "make size")
			}
		}
		return
	}
	fn := calleeOf(info, call)
	if fn == nil {
		return
	}
	if idx, ok := sizeArgs[fn.Name()]; ok && packetFunc(fn) {
		for _, i := range idx {
			if i < len(call.Args) {
				c.requireNonNeg(call.Args[i], env, fn.Name()+" size")
			}
		}
	}
}

// packetFunc reports whether fn is one of the basis packet entry points
// (by package for the allocators, by receiver type for the mutators) —
// or a testdata stand-in using the same names on a Packet type.
func packetFunc(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		return ok && named.Obj().Name() == "Packet"
	}
	return true
}

// checkIndex is R4: offsets provably non-negative on the hot path.
func (c *checker) checkIndex(e *ast.IndexExpr, env *interval.Env) {
	if !c.hot {
		return
	}
	if !indexable(c.pass.TypesInfo.TypeOf(e.X)) {
		return
	}
	c.requireNonNeg(e.Index, env, "index")
}

func (c *checker) checkSlice(e *ast.SliceExpr, env *interval.Env) {
	if !c.hot {
		return
	}
	for _, bound := range []ast.Expr{e.Low, e.High, e.Max} {
		if bound != nil {
			c.requireNonNeg(bound, env, "slice bound")
		}
	}
}

// indexable excludes map indexing (any key type) from R4.
func indexable(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Pointer:
		_, ok := u.Elem().Underlying().(*types.Array)
		return ok
	case *types.Basic:
		return u.Info()&types.IsString != 0
	}
	return false
}

func (c *checker) requireNonNeg(e ast.Expr, env *interval.Env, what string) {
	iv := c.a.Eval(e, env)
	if !iv.NonNeg() {
		c.pass.Reportf(e.Pos(), "%s not provably non-negative: range %s", what, iv)
	}
}

// checkShift is R2.
func (c *checker) checkShift(operand, count ast.Expr, env *interval.Env) {
	t := c.pass.TypesInfo.TypeOf(operand)
	if t == nil || !interval.IsInteger(t) {
		return
	}
	width := int64(interval.BitWidth(t))
	iv := c.a.Eval(count, env)
	if iv.Lo < 0 || iv.Hi >= width {
		c.pass.Reportf(count.Pos(), "shift count range %s not provably within [0,%d] for the %d-bit operand",
			iv, width-1, width)
	}
}

func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.ObjectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.ObjectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}

func builtinOf(info *types.Info, call *ast.CallExpr) (string, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	b, ok := info.ObjectOf(id).(*types.Builtin)
	if !ok {
		return "", false
	}
	return b.Name(), true
}

// typeName renders a type relative to the package under analysis.
func typeName(pass *analysis.Pass, t types.Type) string {
	return types.TypeString(t, types.RelativeTo(pass.Pkg))
}

func lastElem(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

func testFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Package).Filename, "_test.go")
}
