package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// graphFor parses a single function body and builds its graph.
func graphFor(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return New(f.Decls[0].(*ast.FuncDecl).Body)
}

// reach returns the set of blocks reachable from b over terminator
// successors.
func reach(b *Block) map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		if b.Term != nil {
			for _, s := range b.Term.Succs(nil) {
				walk(s)
			}
		}
	}
	walk(b)
	return seen
}

// blockCalling finds the block whose statements include a call of the
// named function.
func blockCalling(t *testing.T, g *Graph, name string) *Block {
	t.Helper()
	for _, b := range g.Blocks {
		for _, s := range b.Nodes {
			es, ok := s.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
				return b
			}
		}
	}
	t.Fatalf("no block calls %s", name)
	return nil
}

// conds collects every If terminator condition in the graph.
func conds(g *Graph) []ast.Expr {
	var out []ast.Expr
	for _, b := range g.Blocks {
		if t, ok := b.Term.(*If); ok {
			out = append(out, t.Cond)
		}
	}
	return out
}

// TestShortCircuitDecomposition: &&, ||, ! and parens never appear in a
// terminator condition — each If tests one leaf, so a dataflow client's
// Branch callback narrows on atoms.
func TestShortCircuitDecomposition(t *testing.T) {
	g := graphFor(t, `
	if (!a() && b()) || c() {
		yes()
	} else {
		no()
	}`)
	cs := conds(g)
	if len(cs) != 3 {
		t.Fatalf("got %d conditions, want 3 leaves", len(cs))
	}
	for _, c := range cs {
		switch c := c.(type) {
		case *ast.ParenExpr:
			t.Errorf("paren survived decomposition: %v", c)
		case *ast.UnaryExpr:
			if c.Op == token.NOT {
				t.Errorf("negation survived decomposition")
			}
		case *ast.BinaryExpr:
			if c.Op == token.LAND || c.Op == token.LOR {
				t.Errorf("short-circuit op survived decomposition: %v", c.Op)
			}
		}
	}
	// !a() swaps edges: a's then-edge must lead toward no(), never
	// straight to yes().
	first := g.Entry.Term.(*If)
	yes, no := blockCalling(t, g, "yes"), blockCalling(t, g, "no")
	if reach(first.Then)[yes] && !reach(first.Then)[no] {
		t.Errorf("negated condition's true edge reached only the then body")
	}
}

// TestSwitchShape: a tagged switch keeps its native Switch terminator,
// and the complement (default) edge exists even without a default
// clause.
func TestSwitchShape(t *testing.T) {
	g := graphFor(t, `
	switch x {
	case 1, 2:
		one()
	case 3:
		three()
	}
	after()`)
	sw, ok := g.Entry.Term.(*Switch)
	if !ok {
		t.Fatalf("entry terminator is %T, want *Switch", g.Entry.Term)
	}
	if len(sw.Cases) != 2 {
		t.Fatalf("got %d cases, want 2", len(sw.Cases))
	}
	if len(sw.Cases[0].Values) != 2 {
		t.Errorf("first clause has %d values, want 2", len(sw.Cases[0].Values))
	}
	if sw.Default == nil {
		t.Fatalf("clause-less switch lost its complement edge")
	}
	after := blockCalling(t, g, "after")
	if !reach(sw.Default)[after] {
		t.Errorf("complement edge does not reach the join")
	}
}

// TestTaglessSwitchLowersToIfChain: switch { case c1: ... } is guard
// selection, not value dispatch, and must become an if/else-if chain.
func TestTaglessSwitchLowersToIfChain(t *testing.T) {
	g := graphFor(t, `
	switch {
	case a():
		yes()
	default:
		no()
	}`)
	for _, b := range g.Blocks {
		if _, ok := b.Term.(*Switch); ok {
			t.Fatalf("tagless switch kept a Switch terminator")
		}
	}
	iff, ok := g.Entry.Term.(*If)
	if !ok {
		t.Fatalf("entry terminator is %T, want *If", g.Entry.Term)
	}
	if !reach(iff.Else)[blockCalling(t, g, "no")] {
		t.Errorf("default clause not on the else chain")
	}
}

// TestLoopBackEdge: a for loop's body flows back to its head.
func TestLoopBackEdge(t *testing.T) {
	g := graphFor(t, `
	for i := 0; i < n; i++ {
		body()
	}
	after()`)
	body := blockCalling(t, g, "body")
	if !reach(body)[body] {
		t.Errorf("loop body cannot reach itself: missing back edge")
	}
	if !reach(g.Entry)[blockCalling(t, g, "after")] {
		t.Errorf("loop exit unreachable")
	}
}

// TestFallthrough wires a clause into the next clause's body.
func TestFallthrough(t *testing.T) {
	g := graphFor(t, `
	switch x {
	case 1:
		one()
		fallthrough
	case 2:
		two()
	}`)
	one, two := blockCalling(t, g, "one"), blockCalling(t, g, "two")
	if !reach(one)[two] {
		t.Errorf("fallthrough does not reach the next clause body")
	}
}

// TestLabeledBreak exits the labeled loop, not just the inner one.
func TestLabeledBreak(t *testing.T) {
	g := graphFor(t, `
outer:
	for {
		for {
			if done() {
				break outer
			}
			inner()
		}
	}
	after()`)
	if !reach(g.Entry)[blockCalling(t, g, "after")] {
		t.Errorf("break outer did not exit the outer loop")
	}
	// Without the labeled break the outer loop never terminates, so
	// after() must be reachable only through it.
	inner := blockCalling(t, g, "inner")
	if !reach(inner)[blockCalling(t, g, "after")] {
		t.Errorf("inner body should still reach after() via the break")
	}
}

// TestDeadCode: statements after return become island blocks,
// unreachable from the entry.
func TestDeadCode(t *testing.T) {
	g := graphFor(t, `
	live()
	return
	dead()`)
	r := reach(g.Entry)
	if !r[blockCalling(t, g, "live")] {
		t.Errorf("live statement unreachable")
	}
	if r[blockCalling(t, g, "dead")] {
		t.Errorf("statement after return still reachable")
	}
}

// TestSelectChoice: select lowers to a Choice over its comm clauses.
func TestSelectChoice(t *testing.T) {
	g := graphFor(t, `
	select {
	case <-ch:
		recv()
	default:
		idle()
	}
	after()`)
	var choice *Choice
	for _, b := range g.Blocks {
		if c, ok := b.Term.(*Choice); ok {
			choice = c
		}
	}
	if choice == nil {
		t.Fatalf("no Choice terminator for select")
	}
	if len(choice.Targets) != 2 {
		t.Fatalf("got %d select targets, want 2", len(choice.Targets))
	}
	for _, name := range []string{"recv", "idle", "after"} {
		if !reach(g.Entry)[blockCalling(t, g, name)] {
			t.Errorf("%s unreachable through select", name)
		}
	}
}

// TestDump stays stable enough to eyeball: it mentions every block and
// the entry/exit markers.
func TestDump(t *testing.T) {
	g := graphFor(t, `
	if a() {
		yes()
	}`)
	fset := token.NewFileSet()
	d := g.Dump(fset)
	if !strings.Contains(d, "entry") || !strings.Contains(d, "exit") {
		t.Errorf("dump lacks entry/exit markers:\n%s", d)
	}
}
