// Package cfg builds intra-procedural control-flow graphs over go/ast.
//
// The graphs are statement-level: each basic block holds a run of
// straight-line statements and ends in a typed terminator. Branch
// conditions are decomposed down to *leaves* — short-circuit && and ||,
// unary !, and parentheses are expanded into separate conditional
// blocks — so a flow-sensitive client (the statemachine analyzer's
// state-mask narrowing, hotpathalloc's guard regions) sees every atomic
// condition on its own edge. Switch statements keep their native shape
// in the Switch terminator: a client narrowing on the tag can intersect
// per case and take the complement on the default edge.
//
// The builder is deliberately pragmatic about constructs that do not
// matter to the analyses built on it: defer bodies run at returns but
// are attached where they appear; panic does not terminate a block; the
// bodies of nested function literals are NOT part of the enclosing
// graph (they execute at some other time — callers treat them as
// separate roots).
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Graph is the control-flow graph of one function body.
type Graph struct {
	Entry *Block
	// Exit is the synthetic exit block every return (and the fall-off
	// end of the body) jumps to. It has no statements and no terminator.
	Exit   *Block
	Blocks []*Block
}

// Block is a basic block: straight-line statements plus a terminator.
type Block struct {
	Index int
	// Nodes are the statements executed in order. Branch conditions are
	// NOT in Nodes; they live on the terminator.
	Nodes []ast.Stmt
	Term  Term
}

// Term is a block terminator. Concrete types: *Jump, *If, *Switch,
// *Choice.
type Term interface {
	// Succs appends every successor block.
	Succs(dst []*Block) []*Block
}

// Jump is an unconditional edge.
type Jump struct{ To *Block }

// If is a two-way branch on a leaf condition: Cond contains no
// top-level &&, ||, ! or parens (the builder decomposed those). Cond
// may still contain calls; a dataflow client must account for their
// effects before narrowing.
type If struct {
	Cond ast.Expr
	Then *Block
	Else *Block
}

// Switch is a value switch: Tag is the switch tag (evaluated as the
// last action of the block), Cases carry each clause's value list, and
// Default receives everything no case matched — it points at the
// post-switch join block when the source has no default clause, so the
// complement edge always exists.
type Switch struct {
	Tag     ast.Expr
	Cases   []SwitchCase
	Default *Block
}

// SwitchCase is one `case v1, v2:` clause of a Switch terminator.
type SwitchCase struct {
	Values []ast.Expr
	Target *Block
}

// Choice is an opaque multi-way branch — type switches, select, and
// range loops, where no value narrowing is possible.
type Choice struct{ Targets []*Block }

func (t *Jump) Succs(dst []*Block) []*Block { return append(dst, t.To) }
func (t *If) Succs(dst []*Block) []*Block   { return append(dst, t.Then, t.Else) }
func (t *Switch) Succs(dst []*Block) []*Block {
	for _, c := range t.Cases {
		dst = append(dst, c.Target)
	}
	return append(dst, t.Default)
}
func (t *Choice) Succs(dst []*Block) []*Block { return append(dst, t.Targets...) }

// New builds the graph for a function body.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{}
	g := &Graph{}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.exit = g.Exit
	cur := b.stmts(g.Entry, body.List)
	if cur != nil {
		cur.Term = &Jump{To: g.Exit}
	}
	g.Blocks = b.blocks
	// Resolve forward gotos now that every label is known.
	for _, pending := range b.gotos {
		if target, ok := b.labels[pending.label]; ok {
			pending.block.Term = &Jump{To: target}
		} else {
			pending.block.Term = &Jump{To: g.Exit}
		}
	}
	return g
}

// builder carries block allocation and branch-target state.
type builder struct {
	blocks []*Block
	exit   *Block

	// Innermost-first stacks of break/continue targets; the label is ""
	// for unlabeled statements.
	breaks    []branchTarget
	continues []branchTarget

	labels map[string]*Block // label -> statement entry block
	gotos  []pendingGoto

	// pendingLabel is set while the next loop/switch should also answer
	// to this label for break/continue.
	pendingLabel string
}

type branchTarget struct {
	label string
	block *Block
}

type pendingGoto struct {
	label string
	block *Block
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.blocks)}
	b.blocks = append(b.blocks, blk)
	return blk
}

// stmts lowers a statement list into cur, returning the (unterminated)
// block control falls out of, or nil when control cannot fall through.
func (b *builder) stmts(cur *Block, list []ast.Stmt) *Block {
	for _, s := range list {
		if cur == nil {
			// Dead code after return/branch: give it its own island so
			// its statements still exist in some block (clients may
			// want them) but nothing flows in.
			cur = b.newBlock()
		}
		cur = b.stmt(cur, s)
	}
	return cur
}

func (b *builder) stmt(cur *Block, s ast.Stmt) *Block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(cur, s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		thenB := b.newBlock()
		elseB := b.newBlock()
		b.cond(cur, s.Cond, thenB, elseB)
		after := b.newBlock()
		if end := b.stmts(thenB, s.Body.List); end != nil {
			end.Term = &Jump{To: after}
		}
		if s.Else != nil {
			if end := b.stmt(elseB, s.Else); end != nil {
				end.Term = &Jump{To: after}
			}
		} else {
			elseB.Term = &Jump{To: after}
		}
		return after

	case *ast.ForStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		head := b.newBlock()
		cur.Term = &Jump{To: head}
		body := b.newBlock()
		after := b.newBlock()
		if s.Cond != nil {
			b.cond(head, s.Cond, body, after)
		} else {
			head.Term = &Jump{To: body}
		}
		post := head
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			post.Term = &Jump{To: head}
		}
		label := b.takeLabel()
		b.pushLoop(label, after, post)
		end := b.stmts(body, s.Body.List)
		b.popLoop()
		if end != nil {
			end.Term = &Jump{To: post}
		}
		return after

	case *ast.RangeStmt:
		head := b.newBlock()
		// The ranged expression (and key/value assignment) are evaluated
		// at the head; keep the whole RangeStmt there as one node so
		// clients see its call effects once per loop.
		head.Nodes = append(head.Nodes, s)
		cur.Term = &Jump{To: head}
		body := b.newBlock()
		after := b.newBlock()
		head.Term = &Choice{Targets: []*Block{body, after}}
		label := b.takeLabel()
		b.pushLoop(label, after, head)
		end := b.stmts(body, s.Body.List)
		b.popLoop()
		if end != nil {
			end.Term = &Jump{To: head}
		}
		return after

	case *ast.SwitchStmt:
		return b.switchStmt(cur, s)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Assign)
		return b.opaqueClauses(cur, s.Body.List, true)

	case *ast.SelectStmt:
		return b.opaqueClauses(cur, s.Body.List, false)

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		cur.Term = &Jump{To: b.exit}
		return nil

	case *ast.BranchStmt:
		return b.branchStmt(cur, s)

	case *ast.LabeledStmt:
		head := b.newBlock()
		cur.Term = &Jump{To: head}
		if b.labels == nil {
			b.labels = map[string]*Block{}
		}
		b.labels[s.Label.Name] = head
		b.pendingLabel = s.Label.Name
		end := b.stmt(head, s.Stmt)
		b.pendingLabel = ""
		return end

	default:
		// Straight-line statement (incl. defer, go, send — clients that
		// care inspect the node kinds themselves).
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

// switchStmt lowers a value switch (including `switch { case cond: }`,
// which becomes an if/else-if chain so each condition can narrow).
func (b *builder) switchStmt(cur *Block, s *ast.SwitchStmt) *Block {
	if s.Init != nil {
		cur.Nodes = append(cur.Nodes, s.Init)
	}
	after := b.newBlock()
	label := b.takeLabel()
	b.pushBreak(label, after)
	defer b.popBreak()

	clauses := make([]*ast.CaseClause, 0, len(s.Body.List))
	for _, cl := range s.Body.List {
		clauses = append(clauses, cl.(*ast.CaseClause))
	}
	// Build each clause body first so fallthrough targets exist.
	bodies := make([]*Block, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
	}
	for i, cl := range clauses {
		end := b.stmtsWithFallthrough(bodies[i], cl.Body, bodies, i)
		if end != nil {
			end.Term = &Jump{To: after}
		}
	}

	if s.Tag == nil {
		// Condition switch: an if/else-if chain, so each case condition
		// narrows on its own edge; the default body (or the join block)
		// is the chain's final else.
		var defaultBody *Block
		type condCase struct {
			cond ast.Expr
			body *Block
		}
		var conds []condCase
		for i, cl := range clauses {
			if cl.List == nil {
				defaultBody = bodies[i]
				continue
			}
			for _, cond := range cl.List {
				conds = append(conds, condCase{cond, bodies[i]})
			}
		}
		tail := defaultBody
		if tail == nil {
			tail = after
		}
		chain := cur
		for i, cc := range conds {
			elseB := tail
			if i < len(conds)-1 {
				elseB = b.newBlock()
			}
			b.cond(chain, cc.cond, cc.body, elseB)
			chain = elseB
		}
		if len(conds) == 0 {
			chain.Term = &Jump{To: tail}
		}
		return after
	}

	term := &Switch{Tag: s.Tag}
	var defaultBody *Block
	for i, cl := range clauses {
		if cl.List == nil {
			defaultBody = bodies[i]
			continue
		}
		term.Cases = append(term.Cases, SwitchCase{Values: cl.List, Target: bodies[i]})
	}
	if defaultBody != nil {
		term.Default = defaultBody
	} else {
		term.Default = after
	}
	cur.Term = term
	return after
}

// stmtsWithFallthrough lowers a case body, wiring `fallthrough` to the
// next clause's body block.
func (b *builder) stmtsWithFallthrough(cur *Block, list []ast.Stmt, bodies []*Block, i int) *Block {
	for _, s := range list {
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
			if cur == nil {
				cur = b.newBlock()
			}
			if i+1 < len(bodies) {
				cur.Term = &Jump{To: bodies[i+1]}
			} else {
				cur.Term = &Jump{To: b.exit}
			}
			return nil
		}
		if cur == nil {
			cur = b.newBlock()
		}
		cur = b.stmt(cur, s)
	}
	return cur
}

// opaqueClauses lowers type-switch / select bodies as an opaque Choice.
// When withDefaultEdge is true and no default clause exists, an edge to
// the join block is still added (a type switch with no default can fall
// through).
func (b *builder) opaqueClauses(cur *Block, clauses []ast.Stmt, withDefaultEdge bool) *Block {
	after := b.newBlock()
	label := b.takeLabel()
	b.pushBreak(label, after)
	defer b.popBreak()

	term := &Choice{}
	sawDefault := false
	for _, cl := range clauses {
		var body []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			body = cl.Body
			if cl.List == nil {
				sawDefault = true
			}
		case *ast.CommClause:
			body = cl.Body
			if cl.Comm == nil {
				sawDefault = true
			} else {
				// The comm op itself (send/recv) executes on entry.
				body = append([]ast.Stmt{cl.Comm}, body...)
			}
		}
		blk := b.newBlock()
		term.Targets = append(term.Targets, blk)
		if end := b.stmts(blk, body); end != nil {
			end.Term = &Jump{To: after}
		}
	}
	if withDefaultEdge && !sawDefault {
		term.Targets = append(term.Targets, after)
	}
	if len(term.Targets) == 0 {
		term.Targets = append(term.Targets, after)
	}
	cur.Term = term
	return after
}

func (b *builder) branchStmt(cur *Block, s *ast.BranchStmt) *Block {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if t := findTarget(b.breaks, label); t != nil {
			cur.Term = &Jump{To: t}
		} else {
			cur.Term = &Jump{To: b.exit}
		}
	case token.CONTINUE:
		if t := findTarget(b.continues, label); t != nil {
			cur.Term = &Jump{To: t}
		} else {
			cur.Term = &Jump{To: b.exit}
		}
	case token.GOTO:
		if t, ok := b.labels[label]; ok {
			cur.Term = &Jump{To: t}
		} else {
			b.gotos = append(b.gotos, pendingGoto{label: label, block: cur})
		}
	case token.FALLTHROUGH:
		// Handled by stmtsWithFallthrough; a stray one exits.
		cur.Term = &Jump{To: b.exit}
	}
	return nil
}

func findTarget(stack []branchTarget, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, branchTarget{label: "", block: brk})
	b.continues = append(b.continues, branchTarget{label: "", block: cont})
	if label != "" {
		b.breaks = append(b.breaks, branchTarget{label: label, block: brk})
		b.continues = append(b.continues, branchTarget{label: label, block: cont})
	}
}

func (b *builder) popLoop() {
	n := 1
	if len(b.breaks) >= 2 && b.breaks[len(b.breaks)-1].label != "" {
		n = 2
	}
	b.breaks = b.breaks[:len(b.breaks)-n]
	b.continues = b.continues[:len(b.continues)-n]
}

func (b *builder) pushBreak(label string, brk *Block) {
	b.breaks = append(b.breaks, branchTarget{label: "", block: brk})
	if label != "" {
		b.breaks = append(b.breaks, branchTarget{label: label, block: brk})
	}
}

func (b *builder) popBreak() {
	n := 1
	if len(b.breaks) >= 2 && b.breaks[len(b.breaks)-1].label != "" {
		n = 2
	}
	b.breaks = b.breaks[:len(b.breaks)-n]
}

// cond wires expr as a branch from cur to thenB/elseB, decomposing
// short-circuit operators, negation, and parentheses so each If
// terminator tests a leaf.
func (b *builder) cond(cur *Block, expr ast.Expr, thenB, elseB *Block) {
	switch e := expr.(type) {
	case *ast.ParenExpr:
		b.cond(cur, e.X, thenB, elseB)
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			b.cond(cur, e.X, elseB, thenB)
			return
		}
		cur.Term = &If{Cond: expr, Then: thenB, Else: elseB}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			mid := b.newBlock()
			b.cond(cur, e.X, mid, elseB)
			b.cond(mid, e.Y, thenB, elseB)
		case token.LOR:
			mid := b.newBlock()
			b.cond(cur, e.X, thenB, mid)
			b.cond(mid, e.Y, thenB, elseB)
		default:
			cur.Term = &If{Cond: expr, Then: thenB, Else: elseB}
		}
	default:
		cur.Term = &If{Cond: expr, Then: thenB, Else: elseB}
	}
}

// Dump renders the graph for debugging and tests.
func (g *Graph) Dump(fset *token.FileSet) string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d:", blk.Index)
		if blk == g.Entry {
			sb.WriteString(" (entry)")
		}
		if blk == g.Exit {
			sb.WriteString(" (exit)")
		}
		fmt.Fprintf(&sb, " %d stmts", len(blk.Nodes))
		switch t := blk.Term.(type) {
		case *Jump:
			fmt.Fprintf(&sb, " -> b%d", t.To.Index)
		case *If:
			fmt.Fprintf(&sb, " if -> b%d else b%d", t.Then.Index, t.Else.Index)
		case *Switch:
			sb.WriteString(" switch")
			for _, c := range t.Cases {
				fmt.Fprintf(&sb, " case->b%d", c.Target.Index)
			}
			fmt.Fprintf(&sb, " default->b%d", t.Default.Index)
		case *Choice:
			sb.WriteString(" choice")
			for _, c := range t.Targets {
				fmt.Fprintf(&sb, " ->b%d", c.Index)
			}
		case nil:
			sb.WriteString(" (no term)")
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
