// Package analysistest runs an analyzer over packages laid out under a
// testdata directory (testdata/src/<importpath>, GOPATH-style) and
// checks its diagnostics against `// want "regexp"` comments in the
// sources — a stdlib-only analogue of x/tools' analysistest.
//
// A line may carry several quoted regexps after `want`; every one must be
// matched by a diagnostic reported on that line, and every diagnostic
// must be claimed by a want. Files without want comments therefore also
// assert the analyzer stays silent on the idioms they exercise.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

var wantRE = regexp.MustCompile(`//\s*want((?:\s+"(?:[^"\\]|\\.)*")+)`)
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads each package path from testdataDir/src, applies the
// analyzer, and reports mismatches between diagnostics and want
// comments through t.
func Run(t *testing.T, testdataDir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	loader := load.NewLoader(load.TreeResolver{Root: testdataDir})
	for _, path := range pkgPaths {
		pkgs, err := loader.Load(path)
		if err != nil {
			t.Errorf("loading %s: %v", path, err)
			continue
		}
		diags, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, path, err)
			continue
		}
		check(t, pkgs[0], diags)
	}
}

func check(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg)

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		claimed := false
		for _, w := range wants {
			if w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				claimed = true
			}
		}
		if !claimed {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

func collectWants(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range quotedRE.FindAllString(m[1], -1) {
					raw, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
					}
					wants = append(wants, &expectation{
						file: pos.Filename, line: pos.Line, re: re, raw: raw,
					})
				}
			}
		}
	}
	return wants
}

// Format renders a diagnostic the way foxvet prints it — exported so the
// CLI and tests share one shape.
func Format(fset *token.FileSet, d analysis.Diagnostic) string {
	return fmt.Sprintf("%s: %s: %s", fset.Position(d.Pos), d.Analyzer, d.Message)
}
