// Package statemachine statically extracts the TCP connection state
// machine and checks it against RFC 793.
//
// The paper's State module is decomposed exactly as the specification
// is, which is what makes this extraction possible: every transition
// passes through the single door setState (the singledoor pass enforces
// that), and the guards around each call are plain comparisons and
// switches on the state field. This pass runs an abstract
// interpretation over the analysis/cfg graphs: the abstract value is
// the set of states the connection may occupy (a bitmask), branch
// edges narrow it (`c.state == StateEstab`, `switch c.state` case and
// default edges), and function summaries — memoized per (function,
// entry mask) so callers with precise contexts are not poisoned by
// other call sites — propagate it through the call structure. Each
// setState(K) call then contributes the transitions {(s, K) | s in
// mask, s != K}; the union over all analyzed roots is the extracted
// relation, which is diffed against the rfc793.go table: extracted
// edges outside the table's Direct set are illegal (or composite edges
// taken in one step), and Direct edges never extracted are dead
// specification.
//
// Soundness shape: the executor functions enqueue/run/perform are a
// boundary with identity effect — the quasi-synchronous discipline
// (enforced by quasisync) means a drained action re-derives state from
// its own guards, so perform's callees are analyzed as roots with the
// full state universe instead of inheriting a caller mask. Analysis
// roots are: exported functions, functions with no static in-package
// caller outside the boundary, functions referenced as values (callback
// registrations), and every function literal — all entered with the
// universe mask. The extraction is return-value-insensitive and tracks
// one abstract connection per function frame (the stack has no
// two-connection functions), so the result over-approximates the
// executable relation; conformance means the over-approximation already
// fits inside the legal table.
package statemachine

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/cfg"
	"repro/internal/analysis/dataflow"
)

// Analyzer is the statemachine pass.
var Analyzer = &analysis.Analyzer{
	Name: "statemachine",
	Doc:  "extract every setState transition under its CFG-derived state guards and diff the relation against the RFC 793 table",
	Run:  run,
}

// boundary names the quasi-synchronous executor's functions: identity
// effect, bodies analyzed as fresh roots (see the package comment).
var boundary = map[string]bool{
	"enqueue": true,
	"run":     true,
	"perform": true,
}

// mask is a set of states, one bit per declared constant.
type mask uint64

// Transition is one extracted from->to edge (names without the "State"
// prefix).
type Transition struct {
	From, To string
}

// Machine is an extracted state machine.
type Machine struct {
	// States lists the state names in constant-value order.
	States []string
	// Transitions maps each extracted edge to the setState call sites
	// that realize it.
	Transitions map[Transition][]token.Pos
}

// shape describes the guarded machine found in a package.
type shape struct {
	stateType  *types.Named
	stateField *types.Var
	setState   *types.Func
	names      []string         // bit -> name (prefix stripped), value order
	constBit   map[int64]int    // constant value -> bit
	constOf    map[string]int64 // constant name -> value (diagnostics)
	universe   mask
	ctors      map[*types.Func]mask // constructor -> seed mask
}

func (sh *shape) bitOf(val int64) (int, bool) {
	b, ok := sh.constBit[val]
	return b, ok
}

// detect finds the machine shape in pkg: a defined integer type State,
// its package-level constants, a setState method taking one State whose
// receiver struct has a State-typed field, and the constructor functions
// that build the receiver from a composite literal. Returns nil when the
// package has no such machine, or when its state names do not cover the
// RFC 793 table (some other machine this pass does not guard).
func detect(pkg *analysis.Package) *shape {
	obj, ok := pkg.Types.Scope().Lookup("State").(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil
	}
	sh := &shape{
		stateType: named,
		constBit:  map[int64]int{},
		constOf:   map[string]int64{},
		ctors:     map[*types.Func]mask{},
	}

	// Constants of the State type, ordered by value.
	scope := pkg.Types.Scope()
	type sc struct {
		name string
		val  int64
	}
	var consts []sc
	for _, name := range scope.Names() {
		cn, ok := scope.Lookup(name).(*types.Const)
		if !ok || cn.Type() != named {
			continue
		}
		v, ok := constant.Int64Val(cn.Val())
		if !ok {
			continue
		}
		sh.constOf[name] = v
		consts = append(consts, sc{name, v})
	}
	for i := 0; i < len(consts); i++ {
		for j := i + 1; j < len(consts); j++ {
			if consts[j].val < consts[i].val {
				consts[i], consts[j] = consts[j], consts[i]
			}
		}
	}
	if len(consts) == 0 || len(consts) > 64 {
		return nil
	}
	for i, c := range consts {
		sh.names = append(sh.names, strings.TrimPrefix(c.name, "State"))
		sh.constBit[c.val] = i
		sh.universe |= 1 << i
	}

	// The setState door and the guarded field.
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "setState" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := fn.Type().(*types.Signature)
			if sig.Params().Len() != 1 || sig.Params().At(0).Type() != named {
				continue
			}
			recv := sig.Recv().Type()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			st, ok := recv.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i).Type() == named {
					sh.stateField = st.Field(i)
					break
				}
			}
			if sh.stateField != nil {
				sh.setState = fn
			}
		}
	}
	if sh.setState == nil {
		return nil
	}

	// Only guard the machine whose vocabulary the RFC table speaks.
	have := map[string]bool{}
	for _, n := range sh.names {
		have[n] = true
	}
	for n := range tableNames() {
		if !have[n] {
			return nil
		}
	}

	// Constructors: functions whose body builds the guarded struct from
	// a composite literal. The seed is the literal's state element (or
	// the zero-value constant when the element is absent).
	connType := sh.setState.Type().(*types.Signature).Recv().Type()
	if ptr, ok := connType.(*types.Pointer); ok {
		connType = ptr.Elem()
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok || fn == sh.setState {
				continue
			}
			seed, found := ctorSeed(pkg.Info, fd.Body, connType, sh)
			if found {
				sh.ctors[fn] = seed
			}
		}
	}
	return sh
}

// ctorSeed scans body for a composite literal of connType and derives
// the constructed state mask.
func ctorSeed(info *types.Info, body ast.Node, connType types.Type, sh *shape) (mask, bool) {
	var seed mask
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		tv, ok := info.Types[lit]
		if !ok || tv.Type != connType {
			return true
		}
		found = true
		seed = 0
		explicit := false
		for _, elt := range lit.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok || key.Name != sh.stateField.Name() {
				continue
			}
			explicit = true
			if b, ok := sh.constBitOf(info, kv.Value); ok {
				seed = 1 << b
			} else {
				seed = sh.universe
			}
		}
		if !explicit {
			// Zero value: the constant with value 0, if declared.
			if b, ok := sh.bitOf(0); ok {
				seed = 1 << b
			} else {
				seed = sh.universe
			}
		}
		return true
	})
	return seed, found
}

// constBitOf resolves e to a State constant's bit.
func (sh *shape) constBitOf(info *types.Info, e ast.Expr) (int, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, ok := constant.Int64Val(tv.Value)
	if !ok {
		return 0, false
	}
	return sh.bitOf(v)
}

// extractor runs the interprocedural abstract interpretation.
type extractor struct {
	pkg   *analysis.Package
	sh    *shape
	graph *callgraph.Graph

	cfgs   map[*callgraph.Node]*cfg.Graph
	sums   map[sumKey]mask
	inprog map[sumKey]bool
	reach  map[*types.Func]int8 // 0 unknown, 1 visiting, 2 yes, 3 no

	trans map[Transition]map[token.Pos]bool

	// reportf, when non-nil, receives structural diagnostics found
	// during extraction (non-constant setState arguments).
	reportf func(pos token.Pos, format string, args ...any)
}

type sumKey struct {
	node  *callgraph.Node
	entry mask
}

func newExtractor(pkg *analysis.Package, sh *shape, g *callgraph.Graph) *extractor {
	return &extractor{
		pkg:    pkg,
		sh:     sh,
		graph:  g,
		cfgs:   map[*callgraph.Node]*cfg.Graph{},
		sums:   map[sumKey]mask{},
		inprog: map[sumKey]bool{},
		reach:  map[*types.Func]int8{},
		trans:  map[Transition]map[token.Pos]bool{},
	}
}

// extract analyzes every root and returns the extracted machine.
func (e *extractor) extract() *Machine {
	calledBy := map[*types.Func]int{}
	for _, n := range e.graph.Nodes {
		if n.Pkg != e.pkg || e.skipBody(n) {
			continue
		}
		for _, edge := range n.Edges {
			if edge.Callee.Pkg() == e.pkg.Types {
				calledBy[edge.Callee]++
			}
		}
	}
	valueRefs := e.valueReferences()

	for _, n := range e.graph.Nodes {
		if n.Pkg != e.pkg || e.skipBody(n) {
			continue
		}
		root := false
		switch {
		case n.Lit != nil:
			root = true
		case n.Fn.Exported():
			root = true
		case calledBy[n.Fn] == 0:
			root = true
		case valueRefs[n.Fn]:
			root = true
		}
		if root {
			e.summarize(n, e.sh.universe)
		}
	}

	m := &Machine{States: e.sh.names, Transitions: map[Transition][]token.Pos{}}
	for tr, sites := range e.trans {
		var ps []token.Pos
		for p := range sites {
			ps = append(ps, p)
		}
		for i := 0; i < len(ps); i++ {
			for j := i + 1; j < len(ps); j++ {
				if ps[j] < ps[i] {
					ps[i], ps[j] = ps[j], ps[i]
				}
			}
		}
		m.Transitions[tr] = ps
	}
	return m
}

// skipBody reports whether a node's body is outside the analysis: the
// door itself and the executor boundary.
func (e *extractor) skipBody(n *callgraph.Node) bool {
	if n.Fn == nil {
		return false
	}
	return n.Fn == e.sh.setState || (boundary[n.Fn.Name()] && n.Fn.Pkg() == e.pkg.Types)
}

// valueReferences finds functions referenced outside call position —
// callbacks handed to registrars run with unknown state.
func (e *extractor) valueReferences() map[*types.Func]bool {
	callFuns := map[*ast.Ident]bool{}
	refs := map[*types.Func]bool{}
	for _, f := range e.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				callFuns[fun] = true
			case *ast.SelectorExpr:
				callFuns[fun.Sel] = true
			}
			return true
		})
	}
	for _, f := range e.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || callFuns[id] {
				return true
			}
			if fn, ok := e.pkg.Info.Uses[id].(*types.Func); ok && fn.Pkg() == e.pkg.Types {
				refs[fn] = true
			}
			return true
		})
	}
	return refs
}

// summarize computes the exit mask of node entered with entry,
// recording the transitions taken along the way. Summaries are memoized
// per (node, entry); re-entrant calls (recursion) get the identity
// summary, which is sound for this stack (no recursion crosses the
// state modules) and documented as a limit.
func (e *extractor) summarize(node *callgraph.Node, entry mask) mask {
	key := sumKey{node, entry}
	if out, ok := e.sums[key]; ok {
		return out
	}
	if e.inprog[key] {
		return entry
	}
	e.inprog[key] = true
	defer delete(e.inprog, key)

	g := e.cfgs[node]
	if g == nil {
		var body *ast.BlockStmt
		if node.Decl != nil {
			body = node.Decl.Body
		} else {
			body = node.Lit.Body
		}
		g = cfg.New(body)
		e.cfgs[node] = g
	}

	info := node.Pkg.Info
	res := dataflow.Forward(g, dataflow.Problem[mask]{
		Entry: entry,
		Join:  func(a, b mask) mask { return a | b },
		Equal: func(a, b mask) bool { return a == b },
		Transfer: func(b *cfg.Block, in mask) mask {
			m := in
			for _, stmt := range b.Nodes {
				m = e.applyCalls(info, stmt, m)
			}
			return m
		},
		Branch: func(cond ast.Expr, out mask) (mask, mask) {
			m := e.applyCalls(info, cond, out)
			return e.narrowBranch(info, cond, m)
		},
		Case: func(tag ast.Expr, values []ast.Expr, isDefault bool, out mask) mask {
			m := e.applyCalls(info, tag, out)
			if !e.isStateExpr(info, tag) {
				return m
			}
			var bits mask
			for _, v := range values {
				if b, ok := e.sh.constBitOf(info, v); ok {
					bits |= 1 << b
				} else {
					// A non-constant case value: no narrowing is safe.
					return m
				}
			}
			if isDefault {
				return m &^ bits
			}
			return m & bits
		},
	})

	out, ok := res.Reached(g.Exit)
	if !ok {
		out = 0
	}
	e.sums[key] = out
	return out
}

// applyCalls folds the abstract effect of every call under n (in
// evaluation order, skipping nested function literals) into m.
func (e *extractor) applyCalls(info *types.Info, n ast.Node, m mask) mask {
	if n == nil {
		return m
	}
	for _, call := range orderedCalls(n) {
		m = e.applyCall(info, call, m)
	}
	return m
}

func (e *extractor) applyCall(info *types.Info, call *ast.CallExpr, m mask) mask {
	callee := callgraph.Callee(info, call)
	if callee == nil {
		return m
	}
	if callee == e.sh.setState {
		return e.applySetState(info, call, m)
	}
	if seed, ok := e.sh.ctors[callee]; ok {
		// The frame's abstract connection is now the newly built one.
		return seed
	}
	if callee.Pkg() == e.pkg.Types && boundary[callee.Name()] {
		return m
	}
	if node := e.graph.Funcs[callee]; node != nil && node.Pkg == e.pkg && e.reachesSetState(callee) {
		return e.summarize(node, m)
	}
	return m
}

// applySetState records the transitions a setState call contributes and
// returns the post-call mask.
func (e *extractor) applySetState(info *types.Info, call *ast.CallExpr, m mask) mask {
	if len(call.Args) != 1 {
		return m
	}
	b, ok := e.sh.constBitOf(info, call.Args[0])
	if !ok {
		if e.reportf != nil {
			e.reportf(call.Pos(),
				"setState called with a non-constant state; the transition cannot be checked against the RFC 793 table")
		}
		return e.sh.universe
	}
	if m == 0 {
		// Dead path: narrowing emptied the mask, nothing executes here.
		return 0
	}
	to := e.sh.names[b]
	for s := 0; s < len(e.sh.names); s++ {
		if m&(1<<s) == 0 || s == b {
			// setState returns early on from == to: a self-loop is not
			// a transition.
			continue
		}
		tr := Transition{From: e.sh.names[s], To: to}
		if e.trans[tr] == nil {
			e.trans[tr] = map[token.Pos]bool{}
		}
		e.trans[tr][call.Pos()] = true
	}
	return 1 << b
}

// narrowBranch refines the mask on the two edges of a leaf condition:
// `x.state == K` and `x.state != K` narrow; anything else passes the
// mask through unchanged.
func (e *extractor) narrowBranch(info *types.Info, cond ast.Expr, m mask) (mask, mask) {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return m, m
	}
	var stateSide, constSide ast.Expr
	switch {
	case e.isStateExpr(info, bin.X):
		stateSide, constSide = bin.X, bin.Y
	case e.isStateExpr(info, bin.Y):
		stateSide, constSide = bin.Y, bin.X
	default:
		return m, m
	}
	_ = stateSide
	b, ok := e.sh.constBitOf(info, constSide)
	if !ok {
		return m, m
	}
	eq := m & (1 << b)
	ne := m &^ (1 << b)
	if bin.Op == token.EQL {
		return eq, ne
	}
	return ne, eq
}

// isStateExpr reports whether exp reads the guarded state field of the
// frame's connection.
func (e *extractor) isStateExpr(info *types.Info, exp ast.Expr) bool {
	sel, ok := ast.Unparen(exp).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return info.Uses[sel.Sel] == e.sh.stateField
}

// reachesSetState reports whether fn can reach the door through
// non-boundary static calls (nested literals excluded — they run at
// some other time, as fresh roots).
func (e *extractor) reachesSetState(fn *types.Func) bool {
	switch e.reach[fn] {
	case 1: // visiting: a cycle that has not reached the door
		return false
	case 2:
		return true
	case 3:
		return false
	}
	node := e.graph.Funcs[fn]
	if node == nil || node.Pkg != e.pkg {
		e.reach[fn] = 3
		return false
	}
	e.reach[fn] = 1
	result := false
	for _, edge := range node.Edges {
		if edge.Callee == e.sh.setState {
			result = true
			break
		}
		if edge.Callee.Pkg() == e.pkg.Types && boundary[edge.Callee.Name()] {
			continue
		}
		if e.reachesSetState(edge.Callee) {
			result = true
			break
		}
	}
	if result {
		e.reach[fn] = 2
	} else {
		e.reach[fn] = 3
	}
	return result
}

// orderedCalls collects the call expressions under n in evaluation
// order (post-order: arguments before the call), skipping nested
// function literals.
func orderedCalls(n ast.Node) []*ast.CallExpr {
	var out []*ast.CallExpr
	var stack []ast.Node
	ast.Inspect(n, func(x ast.Node) bool {
		if x == nil {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if call, ok := top.(*ast.CallExpr); ok {
				out = append(out, call)
			}
			return true
		}
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		stack = append(stack, x)
		return true
	})
	return out
}

// Extract returns the machine extracted from the first loaded package
// with the guarded shape, or nil. cmd/foxvet's -statemachine-dot uses
// it; run() below shares the same engine.
func Extract(pkgs []*analysis.Package) *Machine {
	g := callgraph.Build(pkgs)
	for _, pkg := range pkgs {
		sh := detect(pkg)
		if sh == nil {
			continue
		}
		e := newExtractor(pkg, sh, g)
		return e.extract()
	}
	return nil
}

func run(pass *analysis.Pass) (any, error) {
	pkg := pass.Shared.PackageOf(pass.Pkg)
	if pkg == nil {
		return nil, nil
	}
	sh := detect(pkg)
	if sh == nil {
		return nil, nil
	}
	g := pass.Shared.Memo("callgraph", func() any {
		return callgraph.Build(pass.Shared.Packages)
	}).(*callgraph.Graph)

	e := newExtractor(pkg, sh, g)
	e.reportf = pass.Reportf
	m := e.extract()

	direct := map[Transition]bool{}
	special := map[Transition]RFCTransition{}
	for _, t := range Table {
		tr := Transition{From: t.From, To: t.To}
		if t.Kind == Direct {
			direct[tr] = true
		} else {
			special[tr] = t
		}
	}

	for tr, sites := range m.Transitions {
		if direct[tr] {
			continue
		}
		if sp, ok := special[tr]; ok {
			for _, pos := range sites {
				pass.Reportf(pos,
					"state transition %s -> %s is %s in the RFC 793 table and must not be taken in one setState step: %s",
					tr.From, tr.To, sp.Kind, sp.Why)
			}
			continue
		}
		for _, pos := range sites {
			pass.Reportf(pos,
				"illegal state transition %s -> %s: not an edge of the RFC 793 table",
				tr.From, tr.To)
		}
	}

	// Required edges never extracted: dead specification. Reported at
	// the door so the machine owner sees them in one place.
	doorPos := token.NoPos
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if fn, _ := pkg.Info.Defs[fd.Name].(*types.Func); fn == sh.setState {
					doorPos = fd.Name.Pos()
				}
			}
		}
	}
	for _, t := range Table {
		if t.Kind != Direct {
			continue
		}
		tr := Transition{From: t.From, To: t.To}
		if _, ok := m.Transitions[tr]; !ok {
			pass.Reportf(doorPos,
				"required RFC 793 transition %s -> %s (%s) is not realized by any setState path",
				t.From, t.To, t.Why)
		}
	}
	return nil, nil
}
