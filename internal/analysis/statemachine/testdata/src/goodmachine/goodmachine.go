// Package goodmachine realizes exactly the RFC 793 table's Direct set,
// using the guard idioms the real stack uses: state switches with and
// without defaults, negated compound conditions, constructor seeding,
// executor-boundary calls, and context-sensitive helpers. The analyzer
// must stay silent on it.
package goodmachine

type State int

const (
	StateClosed State = iota
	StateListen
	StateSynSent
	StateSynActive
	StateSynPassive
	StateEstab
	StateFinWait1
	StateFinWait2
	StateCloseWait
	StateClosing
	StateLastAck
	StateTimeWait
)

type action int

// Conn is the guarded shape: a state field moved only by setState.
type Conn struct {
	state State
	toDo  []action
}

func newConn() *Conn { return &Conn{state: StateClosed} }

func (c *Conn) setState(to State) {
	if c.state == to {
		return
	}
	c.state = to
}

// The quasi-synchronous executor: a boundary the analysis does not look
// through; perform's callees are roots with the full universe.
func (c *Conn) enqueue(a action) { c.toDo = append(c.toDo, a) }

func (c *Conn) run() {
	for len(c.toDo) > 0 {
		a := c.toDo[0]
		c.toDo = c.toDo[1:]
		c.perform(a)
	}
}

func (c *Conn) perform(a action) {
	switch a {
	case 0:
		c.receive()
	case 1:
		c.fail()
	}
}

func acceptableAck() bool { return true }
func finAcked() bool      { return true }

// Open is the active open: Closed -> SynSent through the constructor's
// seed.
func Open() *Conn {
	c := newConn()
	c.activeOpen()
	c.run()
	return c
}

func (c *Conn) activeOpen() { c.setState(StateSynSent) }

// Accept is the passive open: Closed -> Listen.
func Accept() *Conn {
	c := newConn()
	c.setState(StateListen)
	return c
}

// receive dispatches on state, as the real Receive module's root does.
func (c *Conn) receive() {
	switch c.state {
	case StateClosed:
		return
	case StateListen:
		c.rcvListen()
	case StateSynSent:
		c.rcvSynSent()
	case StateTimeWait:
		c.enqueue(1)
	default:
		c.rcvGeneral()
	}
}

func (c *Conn) rcvListen() { c.setState(StateSynPassive) }

func (c *Conn) rcvSynSent() {
	if acceptableAck() {
		c.establish()
		return
	}
	// Simultaneous open.
	c.setState(StateSynActive)
}

// establish is context-sensitive: entered from SynSent, SynActive, and
// SynPassive, never from anywhere else.
func (c *Conn) establish() { c.setState(StateEstab) }

func (c *Conn) rcvGeneral() {
	if !c.checkAck() {
		return
	}
	if finAcked() {
		c.ourFinAcked()
	}
	c.peerFin()
}

// checkAck completes the handshake, as the real Receive module does:
// the early RST return keeps the synchronizing states live in the
// summary's exit, so peerFin below still sees them — that is how RFC
// 793's SYN-RECEIVED -> CLOSE-WAIT event-processing edge is realized.
func (c *Conn) checkAck() bool {
	switch c.state {
	case StateSynActive, StateSynPassive:
		if !acceptableAck() {
			return false
		}
		c.establish()
	}
	return true
}

func (c *Conn) ourFinAcked() {
	switch c.state {
	case StateFinWait1:
		c.setState(StateFinWait2)
	case StateClosing:
		c.enterTimeWait()
	case StateLastAck:
		c.enqueue(1)
	}
}

func (c *Conn) peerFin() {
	switch c.state {
	case StateSynActive, StateSynPassive, StateEstab:
		c.setState(StateCloseWait)
	case StateFinWait1:
		c.setState(StateClosing)
	case StateFinWait2:
		c.enterTimeWait()
	}
}

func (c *Conn) enterTimeWait() { c.setState(StateTimeWait) }

// Close uses the real stack's negated compound guard before the FIN
// transition.
func (c *Conn) Close() {
	c.maybeSendFin()
	c.run()
}

func (c *Conn) maybeSendFin() {
	if c.state != StateClosed && c.state != StateListen && c.state != StateSynSent {
		c.finSent()
	}
}

func (c *Conn) finSent() {
	switch c.state {
	case StateSynActive, StateSynPassive, StateEstab:
		c.setState(StateFinWait1)
	case StateCloseWait:
		c.setState(StateLastAck)
	}
}

// fail is reachable only through the executor: analyzed with the full
// universe, it realizes every state's abort edge to Closed.
func (c *Conn) fail() { c.setState(StateClosed) }
