// Package badmachine is goodmachine with four seeded defects: an edge
// outside the RFC 793 table, a composite edge taken in one setState
// step, required edges that became unreachable, and a setState call
// whose argument is not a state constant.
package badmachine

type State int

const (
	StateClosed State = iota
	StateListen
	StateSynSent
	StateSynActive
	StateSynPassive
	StateEstab
	StateFinWait1
	StateFinWait2
	StateCloseWait
	StateClosing
	StateLastAck
	StateTimeWait
)

type action int

type Conn struct {
	state State
	toDo  []action
}

func newConn() *Conn { return &Conn{state: StateClosed} }

// Defect: rcvListen skips SynPassive and ourFinAcked skips FinWait2, so
// two handshake edges and one teardown edge the table requires are
// never realized; finSent lost its CloseWait arm for a third.
func (c *Conn) setState(to State) { // want "required RFC 793 transition Listen -> SynPassive" "required RFC 793 transition FinWait1 -> FinWait2" "required RFC 793 transition CloseWait -> LastAck"
	if c.state == to {
		return
	}
	c.state = to
}

func (c *Conn) enqueue(a action) { c.toDo = append(c.toDo, a) }

func (c *Conn) run() {
	for len(c.toDo) > 0 {
		a := c.toDo[0]
		c.toDo = c.toDo[1:]
		c.perform(a)
	}
}

func (c *Conn) perform(a action) {
	switch a {
	case 0:
		c.receive()
	case 1:
		c.fail()
	}
}

func acceptableAck() bool { return true }
func finAcked() bool      { return true }

func Open() *Conn {
	c := newConn()
	c.activeOpen()
	c.run()
	return c
}

func (c *Conn) activeOpen() { c.setState(StateSynSent) }

func Accept() *Conn {
	c := newConn()
	c.setState(StateListen)
	return c
}

func (c *Conn) receive() {
	switch c.state {
	case StateClosed:
		return
	case StateListen:
		c.rcvListen()
	case StateSynSent:
		c.rcvSynSent()
	case StateTimeWait:
		c.enqueue(1)
	default:
		c.rcvGeneral()
	}
}

// Defect: jumps straight to Estab, skipping the SYN exchange.
func (c *Conn) rcvListen() {
	c.setState(StateEstab) // want "illegal state transition Listen -> Estab: not an edge of the RFC 793 table"
}

func (c *Conn) rcvSynSent() {
	if acceptableAck() {
		c.establish()
		return
	}
	c.setState(StateSynActive)
}

func (c *Conn) establish() { c.setState(StateEstab) }

func (c *Conn) rcvGeneral() {
	if !c.checkAck() {
		return
	}
	if finAcked() {
		c.ourFinAcked()
	}
	c.peerFin()
}

func (c *Conn) checkAck() bool {
	switch c.state {
	case StateSynActive, StateSynPassive:
		if !acceptableAck() {
			return false
		}
		c.establish()
	}
	return true
}

// Defect: the FinWait1 arm collapses FIN,ACK processing into one step
// instead of passing through FinWait2.
func (c *Conn) ourFinAcked() {
	switch c.state {
	case StateFinWait1:
		c.enterTimeWait()
	case StateClosing:
		c.enterTimeWait()
	case StateLastAck:
		c.enqueue(1)
	}
}

func (c *Conn) peerFin() {
	switch c.state {
	case StateSynActive, StateSynPassive, StateEstab:
		c.setState(StateCloseWait)
	case StateFinWait1:
		c.setState(StateClosing)
	case StateFinWait2:
		c.enterTimeWait()
	}
}

func (c *Conn) enterTimeWait() {
	c.setState(StateTimeWait) // want "state transition FinWait1 -> TimeWait is composite in the RFC 793 table and must not be taken in one setState step"
}

func (c *Conn) Close() {
	c.maybeSendFin()
	c.run()
}

func (c *Conn) maybeSendFin() {
	if c.state != StateClosed && c.state != StateListen && c.state != StateSynSent {
		c.finSent()
	}
}

func (c *Conn) finSent() {
	switch c.state {
	case StateSynActive, StateSynPassive, StateEstab:
		c.setState(StateFinWait1)
	}
}

func (c *Conn) fail() { c.setState(StateClosed) }

// Defect: the transition target flows in as data, so the analysis
// cannot relate it to the table.
func (c *Conn) force(s State) {
	c.setState(s) // want "setState called with a non-constant state; the transition cannot be checked against the RFC 793 table"
}
