package statemachine

import (
	"fmt"
	"strings"
)

// Dot renders the extracted machine as Graphviz, annotated against the
// RFC 793 table: solid edges are extracted Direct transitions, red
// edges are extracted transitions outside the Direct set (illegal or
// composite-taken-directly — absent on a conforming tree), and dotted
// gray edges are required transitions the extraction never found.
// DESIGN.md embeds this output.
func (m *Machine) Dot() string {
	direct := map[Transition]bool{}
	for _, t := range Table {
		if t.Kind == Direct {
			direct[Transition{From: t.From, To: t.To}] = true
		}
	}

	var b strings.Builder
	b.WriteString("digraph tcp_states {\n")
	b.WriteString("\trankdir=TB;\n")
	b.WriteString("\tnode [shape=box, fontname=\"Helvetica\", fontsize=11];\n")
	b.WriteString("\tedge [fontname=\"Helvetica\", fontsize=9];\n")
	for _, s := range m.States {
		fmt.Fprintf(&b, "\t%q;\n", s)
	}

	// Deterministic order: state order of From, then of To.
	index := map[string]int{}
	for i, s := range m.States {
		index[s] = i
	}
	var edges []Transition
	for tr := range m.Transitions {
		edges = append(edges, tr)
	}
	for i := 0; i < len(edges); i++ {
		for j := i + 1; j < len(edges); j++ {
			a, c := edges[i], edges[j]
			if index[c.From] < index[a.From] ||
				(index[c.From] == index[a.From] && index[c.To] < index[a.To]) {
				edges[i], edges[j] = edges[j], edges[i]
			}
		}
	}

	for _, tr := range edges {
		if direct[tr] {
			fmt.Fprintf(&b, "\t%q -> %q;\n", tr.From, tr.To)
		} else {
			fmt.Fprintf(&b, "\t%q -> %q [color=red, label=\"not in table\"];\n", tr.From, tr.To)
		}
	}
	for _, t := range Table {
		if t.Kind != Direct {
			continue
		}
		tr := Transition{From: t.From, To: t.To}
		if _, ok := m.Transitions[tr]; !ok {
			fmt.Fprintf(&b, "\t%q -> %q [style=dotted, color=gray, label=\"required, unreached\"];\n", tr.From, tr.To)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
