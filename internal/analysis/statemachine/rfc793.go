package statemachine

// This file encodes the RFC 793 connection-state transition relation as
// data, refined the way the paper's Figure 6 refines it: Syn_Received
// is split into SynActive (reached from SYN-SENT on a simultaneous
// open) and SynPassive (reached from LISTEN), which makes the RST
// handling of the two arrivals distinguishable by state alone.
//
// State names are the Go constant names with the "State" prefix
// stripped. The table is the conformance target: the extracted relation
// must contain every Direct edge and nothing else.

// Kind classifies a table entry.
type Kind int

const (
	// Direct edges must be realized by some setState call path.
	Direct Kind = iota
	// Composite edges exist in RFC 793's diagram but must NOT be taken
	// in one setState step here — the implementation realizes them as a
	// sequence of Direct edges within one segment's processing.
	Composite
	// Unoffered edges exist in RFC 793 but have no counterpart in this
	// stack's API; extracting one means the implementation grew a
	// behavior the table says it does not offer.
	Unoffered
)

func (k Kind) String() string {
	switch k {
	case Direct:
		return "direct"
	case Composite:
		return "composite"
	case Unoffered:
		return "unoffered"
	}
	return "unknown"
}

// RFCTransition is one table row.
type RFCTransition struct {
	From, To string
	Kind     Kind
	Why      string
}

// Table is the full encoded relation. Every ...->Closed edge is Direct:
// RFC 793 permits ABORT (and the user timeout) from any state, and this
// stack realizes all of them through failConnection/deleteTCB.
var Table = []RFCTransition{
	// Opens.
	{"Closed", "Listen", Direct, "passive open: a listener-born connection starts in LISTEN"},
	{"Closed", "SynSent", Direct, "active open sends our SYN"},
	{"Listen", "SynPassive", Direct, "SYN received on a listening port"},
	{"Listen", "SynSent", Unoffered, "RFC 793 allows SEND from LISTEN; this API has no send-before-open"},

	// Handshake completion.
	{"SynSent", "SynActive", Direct, "simultaneous open: our SYN and the peer's crossed"},
	{"SynSent", "Estab", Direct, "acceptable SYN,ACK received"},
	{"SynActive", "Estab", Direct, "our SYN,ACK acknowledged"},
	{"SynPassive", "Estab", Direct, "our SYN,ACK acknowledged"},
	{"SynPassive", "Listen", Unoffered, "RFC 793 returns a passive open to LISTEN on RST; here the embryonic connection is deleted and the still-installed listener accepts the next SYN afresh"},

	// Closing, our side first.
	{"SynActive", "FinWait1", Direct, "close before the handshake completes; the FIN follows our SYN,ACK"},
	{"SynPassive", "FinWait1", Direct, "close before the handshake completes; the FIN follows our SYN,ACK"},
	{"Estab", "FinWait1", Direct, "user close emits our FIN"},
	{"FinWait1", "FinWait2", Direct, "our FIN acknowledged"},
	{"FinWait1", "Closing", Direct, "peer's FIN arrived before the ACK of ours: simultaneous close"},
	{"FinWait1", "TimeWait", Composite, "FIN,ACK in one segment is processed as ACK-of-our-FIN then peer-FIN: FinWait1 -> FinWait2 -> TimeWait within one drain"},
	{"FinWait2", "TimeWait", Direct, "peer's FIN received"},
	{"Closing", "TimeWait", Direct, "our FIN acknowledged after a simultaneous close"},

	// Closing, peer's side first. RFC 793's event processing ("If the
	// FIN bit is set ... SYN-RECEIVED STATE / ESTABLISHED STATE: enter
	// CLOSE-WAIT") allows the SYN-RECEIVED edges its summary diagram
	// omits.
	{"SynActive", "CloseWait", Direct, "peer's FIN while still synchronizing (RFC 793 p. 75 event processing)"},
	{"SynPassive", "CloseWait", Direct, "peer's FIN while still synchronizing (RFC 793 p. 75 event processing)"},
	{"Estab", "CloseWait", Direct, "peer's FIN received"},
	{"CloseWait", "LastAck", Direct, "user close emits our FIN after the peer's"},

	// Deaths: abort, reset, user timeout, and TCB deletion, legal from
	// every state (RFC 793 ABORT call).
	{"Listen", "Closed", Direct, "close or delete of a listener-born connection"},
	{"SynSent", "Closed", Direct, "close, reset, or timeout during the handshake"},
	{"SynActive", "Closed", Direct, "abort, reset, or timeout"},
	{"SynPassive", "Closed", Direct, "abort, reset, or timeout"},
	{"Estab", "Closed", Direct, "abort, reset, or timeout"},
	{"FinWait1", "Closed", Direct, "abort, reset, or timeout"},
	{"FinWait2", "Closed", Direct, "abort, reset, or timeout"},
	{"CloseWait", "Closed", Direct, "abort, reset, or timeout"},
	{"Closing", "Closed", Direct, "abort, reset, or timeout"},
	{"LastAck", "Closed", Direct, "our FIN acknowledged; the connection is deleted"},
	{"TimeWait", "Closed", Direct, "2 MSL quarantine expired; the connection is deleted"},
}

// tableNames returns every state name the table mentions.
func tableNames() map[string]bool {
	names := map[string]bool{}
	for _, t := range Table {
		names[t.From] = true
		names[t.To] = true
	}
	return names
}
