package statemachine

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/load"
)

// TestGoodMachine asserts silence on a machine realizing exactly the
// RFC 793 table's Direct set, including the guard idioms the real stack
// uses (state switches with and without defaults, negated compound
// conditions, constructor seeding, boundary calls, context-sensitive
// helpers).
func TestGoodMachine(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "goodmachine")
}

// TestBadMachine asserts the three failure classes are caught: an
// illegal edge, a composite edge taken in one step, and required edges
// that became unreachable.
func TestBadMachine(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "badmachine")
}

// TestRealModuleConformance pins the acceptance criterion directly: the
// relation extracted from internal/tcp equals the RFC 793 table's
// Direct set, edge for edge.
func TestRealModuleConformance(t *testing.T) {
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, _, err := load.LoadModule(root, false, "./internal/tcp")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	m := Extract(pkgs)
	if m == nil {
		t.Fatal("no machine found in internal/tcp")
	}

	want := map[Transition]bool{}
	for _, tr := range Table {
		if tr.Kind == Direct {
			want[Transition{From: tr.From, To: tr.To}] = true
		}
	}
	for tr := range m.Transitions {
		if !want[tr] {
			t.Errorf("extracted transition %s -> %s is not a Direct table edge", tr.From, tr.To)
		}
	}
	for tr := range want {
		if _, ok := m.Transitions[tr]; !ok {
			t.Errorf("required transition %s -> %s was not extracted", tr.From, tr.To)
		}
	}
	if t.Failed() {
		t.Logf("extracted %d transitions, table requires %d", len(m.Transitions), len(want))
	}
}
