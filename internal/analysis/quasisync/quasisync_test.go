package quasisync_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/quasisync"
)

func TestQuasisync(t *testing.T) {
	analysistest.Run(t, "testdata", quasisync.Analyzer, "quasisync", "adversary", "flightseal", "faultplane", "telemetry")
}
