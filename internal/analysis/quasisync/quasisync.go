// Package quasisync machine-checks the paper's central control-structure
// rule: asynchronous events are only allowed to *enqueue* tcp_actions;
// the to_do queue is drained synchronously by the thread that enqueued.
// "Message receptions and timer expirations only enqueue actions on the
// owning connection's to_do queue" — that is what makes behavior
// deterministic and each module testable in isolation.
//
// Concretely: code reachable from an asynchronous entry point — a timer
// callback handed to internal/timers' Start, or a wire-delivery handler
// handed to a lower layer's Attach — must not call into the synchronous
// Receive/Send/Resend modules (the functions declared in receive.go,
// send.go, resend.go, fastpath.go). The only sanctioned doors are the
// executor's enqueue/run/perform, which the traversal treats as a
// boundary and does not look inside.
//
// The flight-recorder hooks face the inverse rule: functions declared
// in record.go journal what crosses the executor's door, so they must
// observe only — never call the boundary, never enter the synchronous
// modules. A hook that enqueued would make a recorded run diverge from
// the same run unrecorded, which is exactly what cmd/foxreplay's
// replay-and-diff would then catch dynamically; this pass catches it
// structurally.
//
// The traversal runs on the module-wide callgraph shared with the
// statemachine and noblock passes (built once per driver run): direct
// calls and method calls resolve; calls through stored function values
// do not, matching the structure of the stack (the async seams are
// exactly the callback registrations this pass uses as roots). The
// protected-module check stays within the package under analysis — file
// names like send.go only mean something inside internal/tcp.
package quasisync

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// Analyzer is the quasisync pass.
var Analyzer = &analysis.Analyzer{
	Name: "quasisync",
	Doc:  "async entry points (timer callbacks, wire delivery) may only enqueue tcp_actions, never call Receive/Send/Resend directly; flight-recorder hooks (record.go) observe only and never enqueue",
	Run:  run,
}

// protectedFiles hold the synchronous modules: functions declared in them
// may only run from the to_do drain.
var protectedFiles = map[string]bool{
	"receive.go":  true,
	"send.go":     true,
	"resend.go":   true,
	"fastpath.go": true,
}

// boundary names the executor functions async code may call; the
// traversal stops at them instead of descending into the drain.
var boundary = map[string]bool{
	"enqueue": true,
	"run":     true,
	"perform": true,
}

// observerFiles hold the flight-recorder hooks: functions declared
// there watch the executor's single door — they journal what crosses it
// — and so face the inverse constraint. An observer must never drive
// the machine it is recording: no enqueue/run/perform, and no calls
// into the protected synchronous modules. A hook that enqueued would
// make a recorded run diverge from the same run unrecorded.
var observerFiles = map[string]bool{
	"record.go": true,
	// The telemetry hooks are the recorder's sibling at the same door:
	// they read the TCB and mutate histogram/series/profile atomics, and
	// the same rule keeps a telemetered run bit-identical to an
	// unobserved one.
	"telemetry.go": true,
}

// observerPackages extend the observer rule from single files to whole
// packages. The seal layer (internal/flight/seal) sits downstream of
// the recorder — it batches, hashes, and attests journal bytes — so
// every function in it is an observer: none may reach the executor's
// door or the synchronous modules, or sealing a journal could perturb
// the run being sealed.
// The fault plane (internal/fault) is an observer for the same reason
// from the other direction: it perturbs the wire through the segment's
// sanctioned control API and journals what it did, but must never
// mutate a TCB except through packets the stack receives normally.
// The telemetry plane (internal/telemetry) holds the histograms, series
// rings, and profiler the telemetry.go hooks write into; it is pure
// data-structure code, and making the whole package an observer proves
// no helper buried in it can reach back into the machine it measures.
var observerPackages = map[string]bool{
	"repro/internal/flight/seal": true,
	"repro/internal/fault":       true,
	"repro/internal/telemetry":   true,
	"flightseal":                 true, // this analyzer's own golden testdata
	"faultplane":                 true,
	"telemetry":                  true,
}

// allowedPackages exempts packages that attach wire handlers but sit
// outside the stack's quasi-synchronous discipline. The adversary is a
// raw segment injector — its delivery handler is a packet counter, not a
// TCP endpoint, so there is no to_do queue for it to enqueue onto.
var allowedPackages = map[string]bool{
	"repro/internal/adversary": true,
	"adversary":                true, // this analyzer's own golden testdata
}

// registrar reports whether the called function is an async registration
// point, returning a label for diagnostics and which arguments carry the
// asynchronously-invoked callbacks.
func registrar(fn *types.Func) (label string, ok bool) {
	switch {
	case fn.Name() == "Start" && fn.Pkg() != nil && fn.Pkg().Name() == "timers":
		return "timer callback (timers.Start)", true
	case fn.Name() == "Attach":
		return "wire delivery handler (Attach)", true
	}
	return "", false
}

func run(pass *analysis.Pass) (any, error) {
	if allowedPackages[pass.Pkg.Path()] {
		return nil, nil
	}
	g := pass.Shared.Memo("callgraph", func() any {
		return callgraph.Build(pass.Shared.Packages)
	}).(*callgraph.Graph)

	reported := map[token.Pos]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := callgraph.Callee(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			label, ok := registrar(fn)
			if !ok {
				return true
			}
			for _, arg := range call.Args {
				tv, ok := pass.TypesInfo.Types[arg]
				if !ok || tv.Type == nil {
					continue
				}
				if _, isFunc := tv.Type.Underlying().(*types.Signature); !isFunc {
					continue
				}
				if root := g.RootFor(pass.TypesInfo, arg); root != nil {
					checkRoot(pass, g, root, label, reported)
				}
			}
			return true
		})
	}

	obsPkg := observerPackages[pass.Pkg.Path()]
	for _, f := range pass.Files {
		base := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		where := "in an observer package"
		if !obsPkg {
			if !observerFiles[base] {
				continue
			}
			where = "declared in " + base
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			if node, ok := g.Funcs[fn]; ok {
				checkObserver(pass, g, node, where, reported)
			}
		}
	}
	return nil, nil
}

// checkObserver walks everything reachable from one recorder hook. The
// hooks observe the executor from inside it, so unlike async roots the
// boundary is not a sanctioned door here — calling it is the violation.
func checkObserver(pass *analysis.Pass, g *callgraph.Graph, root *callgraph.Node, where string, reported map[token.Pos]bool) {
	g.Walk(root, func(from *callgraph.Node, site *ast.CallExpr, callee *types.Func) bool {
		if boundary[callee.Name()] {
			if !reported[site.Pos()] {
				reported[site.Pos()] = true
				pass.Reportf(site.Pos(),
					"%s is a journal observer (%s) and calls %s — the flight recorder observes the executor, it must never drive it",
					from.Name(), where, callee.Name())
			}
			return false
		}
		if file := declFile(pass, g, callee); file != "" && protectedFiles[file] {
			if !reported[site.Pos()] {
				reported[site.Pos()] = true
				pass.Reportf(site.Pos(),
					"%s is a journal observer (%s) and calls %s, declared in %s — observers never enter the synchronous modules",
					from.Name(), where, callee.Name(), file)
			}
			return false
		}
		return true
	})
}

// checkRoot walks everything reachable from one registered callback:
// protected callees are reported (and not descended into), boundary
// callees are skipped, everything else with a known declaration is
// traversed — nested function literals included, since a closure built
// on the async path runs on the async path.
func checkRoot(pass *analysis.Pass, g *callgraph.Graph, root *callgraph.Node, label string, reported map[token.Pos]bool) {
	g.Walk(root, func(from *callgraph.Node, site *ast.CallExpr, callee *types.Func) bool {
		if boundary[callee.Name()] {
			return false
		}
		if file := declFile(pass, g, callee); file != "" && protectedFiles[file] {
			if !reported[site.Pos()] {
				reported[site.Pos()] = true
				pass.Reportf(site.Pos(),
					"%s is reachable from an async entry point (%s) and calls %s, declared in %s — a synchronous Receive/Send/Resend module; enqueue a tcp_action on to_do instead",
					from.Name(), label, callee.Name(), file)
			}
			return false
		}
		return true
	})
}

// declFile returns the base name of the file declaring fn, when fn is
// declared in the package under analysis.
func declFile(pass *analysis.Pass, g *callgraph.Graph, fn *types.Func) string {
	node, ok := g.Funcs[fn]
	if !ok || node.Pkg.Types != pass.Pkg {
		return ""
	}
	return filepath.Base(pass.Fset.Position(node.Decl.Pos()).Filename)
}
