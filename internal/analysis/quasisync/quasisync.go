// Package quasisync machine-checks the paper's central control-structure
// rule: asynchronous events are only allowed to *enqueue* tcp_actions;
// the to_do queue is drained synchronously by the thread that enqueued.
// "Message receptions and timer expirations only enqueue actions on the
// owning connection's to_do queue" — that is what makes behavior
// deterministic and each module testable in isolation.
//
// Concretely: code reachable from an asynchronous entry point — a timer
// callback handed to internal/timers' Start, or a wire-delivery handler
// handed to a lower layer's Attach — must not call into the synchronous
// Receive/Send/Resend modules (the functions declared in receive.go,
// send.go, resend.go, fastpath.go). The only sanctioned doors are the
// executor's enqueue/run/perform, which the traversal treats as a
// boundary and does not look inside.
//
// The call graph is static and intra-package: direct calls and method
// calls resolve; calls through stored function values do not, matching
// the structure of the stack (the async seams are exactly the callback
// registrations this pass uses as roots).
package quasisync

import (
	"go/ast"
	"go/types"
	"path/filepath"

	"repro/internal/analysis"
)

// Analyzer is the quasisync pass.
var Analyzer = &analysis.Analyzer{
	Name: "quasisync",
	Doc:  "async entry points (timer callbacks, wire delivery) may only enqueue tcp_actions, never call Receive/Send/Resend directly",
	Run:  run,
}

// protectedFiles hold the synchronous modules: functions declared in them
// may only run from the to_do drain.
var protectedFiles = map[string]bool{
	"receive.go":  true,
	"send.go":     true,
	"resend.go":   true,
	"fastpath.go": true,
}

// boundary names the executor functions async code may call; the
// traversal stops at them instead of descending into the drain.
var boundary = map[string]bool{
	"enqueue": true,
	"run":     true,
	"perform": true,
}

// registrar reports whether the called function is an async registration
// point, returning a label for diagnostics and which arguments carry the
// asynchronously-invoked callbacks.
func registrar(fn *types.Func) (label string, ok bool) {
	switch {
	case fn.Name() == "Start" && fn.Pkg() != nil && fn.Pkg().Name() == "timers":
		return "timer callback (timers.Start)", true
	case fn.Name() == "Attach":
		return "wire delivery handler (Attach)", true
	}
	return "", false
}

type checker struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{pass: pass, decls: map[*types.Func]*ast.FuncDecl{}}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				c.decls[fn] = fd
			}
		}
	}

	// Find the async roots: function values passed to a registrar.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := c.callee(call)
			if fn == nil {
				return true
			}
			label, ok := registrar(fn)
			if !ok {
				return true
			}
			for _, arg := range call.Args {
				if tv, ok := pass.TypesInfo.Types[arg]; ok {
					if _, isFunc := tv.Type.Underlying().(*types.Signature); isFunc {
						c.checkRoot(arg, label)
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// callee resolves the statically-known target of a call, or nil.
func (c *checker) callee(call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = c.pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = c.pass.TypesInfo.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// checkRoot traverses from one registered callback expression.
func (c *checker) checkRoot(arg ast.Expr, label string) {
	seen := map[*types.Func]bool{}
	switch a := arg.(type) {
	case *ast.FuncLit:
		c.walkBody(a.Body, label, seen)
	case *ast.Ident, *ast.SelectorExpr:
		var obj types.Object
		if id, ok := a.(*ast.Ident); ok {
			obj = c.pass.TypesInfo.Uses[id]
		} else {
			obj = c.pass.TypesInfo.Uses[a.(*ast.SelectorExpr).Sel]
		}
		if fn, ok := obj.(*types.Func); ok {
			c.visit(fn, label, seen)
		}
	}
}

func (c *checker) visit(fn *types.Func, label string, seen map[*types.Func]bool) {
	if seen[fn] || boundary[fn.Name()] {
		return
	}
	seen[fn] = true
	if fd, ok := c.decls[fn]; ok {
		c.walkBody(fd.Body, label, seen)
	}
}

// walkBody scans one reachable body: protected callees are reported,
// boundary callees are skipped, everything else with a known
// declaration is traversed. Nested function literals are walked too —
// a closure built on the async path runs on the async path.
func (c *checker) walkBody(body ast.Node, label string, seen map[*types.Func]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := c.callee(call)
		if fn == nil {
			return true
		}
		if file := c.declFile(fn); file != "" && protectedFiles[file] {
			c.pass.Reportf(call.Pos(),
				"%s is reachable from an async entry point (%s) and calls %s, declared in %s — a synchronous Receive/Send/Resend module; enqueue a tcp_action on to_do instead",
				enclosingName(c.pass, call), label, fn.Name(), file)
			return true
		}
		if boundary[fn.Name()] {
			return true
		}
		c.visit(fn, label, seen)
		return true
	})
}

// declFile returns the base name of the file declaring fn, when fn is
// declared in the package under analysis.
func (c *checker) declFile(fn *types.Func) string {
	fd, ok := c.decls[fn]
	if !ok {
		return ""
	}
	return filepath.Base(c.pass.Fset.Position(fd.Pos()).Filename)
}

// enclosingName names the function declaration containing pos, for
// diagnostics.
func enclosingName(pass *analysis.Pass, n ast.Node) string {
	for _, f := range pass.Files {
		if n.Pos() < f.Pos() || n.Pos() >= f.End() {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if n.Pos() >= fd.Pos() && n.Pos() < fd.End() {
				return fd.Name.Name
			}
		}
		return "a function literal"
	}
	return "code"
}
