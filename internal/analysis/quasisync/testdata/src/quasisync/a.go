package quasisync

import "timers"

type network struct{ h func(src string) }

// Attach registers a wire-delivery handler — an async entry point.
func (n *network) Attach(h func(src string)) { n.h = h }

// handler is the approved wire-delivery shape: enqueue, then drain.
func (c *Conn) handler(src string) {
	c.enqueue(0)
	c.run()
}

// badHandler calls the Receive module directly from the delivery path.
func (c *Conn) badHandler(src string) {
	c.receiveSegment() // want "calls receiveSegment, declared in receive.go"
}

// badTimeout reaches the Send module through a helper.
func (c *Conn) badTimeout() {
	c.helper()
}

func (c *Conn) helper() {
	c.sendModule() // want "calls sendModule, declared in send.go"
}

func wire(c *Conn, n *network) {
	// Approved: the timer callback only enqueues and drains.
	timers.Start(nil, func() {
		c.enqueue(1)
		c.run()
	}, 5)

	// Violation inside the callback literal itself.
	timers.Start(nil, func() {
		c.receiveSegment() // want "calls receiveSegment, declared in receive.go"
	}, 5)

	// Violation through a registered method value.
	timers.Start(nil, c.badTimeout, 5)

	n.Attach(c.handler)    // approved
	n.Attach(c.badHandler) // violation reported at the call site in badHandler
}
