package quasisync

// sendModule stands for the Send module: synchronous-only.
func (c *Conn) sendModule() {}
