package quasisync

// receiveSegment stands for the Receive module: synchronous-only.
func (c *Conn) receiveSegment() {
	c.processText()
}

func (c *Conn) processText() {}
