package quasisync

// This file stands for the flight-recorder hooks: functions declared in
// record.go are observers of the executor. They may read anything, but
// driving the machine they record — the executor boundary or the
// synchronous modules — is a violation.

// recEnqueue is a compliant observer: it only reads connection state.
func (c *Conn) recEnqueue(a action) {
	_ = c.toDo
	_ = a
}

// badRecEnqueue drives the executor from an observer.
func (c *Conn) badRecEnqueue(a action) {
	c.enqueue(a) // want "badRecEnqueue is a journal observer .* calls enqueue"
}

// badRecDrain kicks the drain from an observer.
func (c *Conn) badRecDrain() {
	c.run() // want "badRecDrain is a journal observer .* calls run"
}

// badRecSync enters a synchronous module directly.
func (c *Conn) badRecSync() {
	c.sendModule() // want "badRecSync is a journal observer .* calls sendModule, declared in send.go"
}

// badRecDeep reaches the Receive module through a record.go-local
// helper; the walk descends and reports at the offending call site.
func (c *Conn) badRecDeep() {
	c.recHelper()
}

func (c *Conn) recHelper() {
	c.receiveSegment() // want "recHelper is a journal observer .* calls receiveSegment, declared in receive.go"
}
