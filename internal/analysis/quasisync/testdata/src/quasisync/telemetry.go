package quasisync

// This file stands for the telemetry hooks: like record.go, functions
// declared in telemetry.go observe the executor's door — they read the
// TCB and mutate telemetry atomics — and must never drive the machine
// they measure.

// telBeg is a compliant observer: it only reads connection state.
func (c *Conn) telBeg() int {
	return len(c.toDo)
}

// badTelKick kicks the drain from a telemetry hook.
func (c *Conn) badTelKick() {
	c.run() // want "badTelKick is a journal observer \\(declared in telemetry.go\\) and calls run"
}

// badTelSample enqueues from the sampler.
func (c *Conn) badTelSample(a action) {
	c.enqueue(a) // want "badTelSample is a journal observer .* calls enqueue"
}

// badTelSync enters a synchronous module from a hook, via a helper —
// the walk descends and reports at the offending call site.
func (c *Conn) badTelSync() {
	c.telHelper()
}

func (c *Conn) telHelper() {
	c.receiveSegment() // want "telHelper is a journal observer .* calls receiveSegment, declared in receive.go"
}
