// Package quasisync exercises the quasisync analyzer: code reachable
// from async entry points may only enqueue onto to_do (and kick the
// drain), never call the Receive/Send/Resend modules directly.
package quasisync

type action int

type Conn struct {
	toDo      []action
	executing bool
}

// enqueue and run are the executor boundary: async code may call them,
// and the analyzer does not look inside them.
func (c *Conn) enqueue(a action) { c.toDo = append(c.toDo, a) }

func (c *Conn) run() {
	if c.executing {
		return
	}
	c.executing = true
	for len(c.toDo) > 0 {
		a := c.toDo[0]
		c.toDo = c.toDo[1:]
		c.perform(a)
	}
	c.executing = false
}

func (c *Conn) perform(a action) {
	switch a {
	case 0:
		c.receiveSegment()
	default:
		c.sendModule()
	}
}
