// Package flightseal exercises the analyzer's observer-package rule: it
// stands for internal/flight/seal, where EVERY function — not just
// those in record.go — is a journal observer. None may reach the
// executor's door (enqueue/run/perform) or a synchronous module.
package flightseal

type conn struct {
	toDo []int
	segs []byte
}

// The executor boundary, as the stack under observation declares it.
func (c *conn) enqueue(a int) { c.toDo = append(c.toDo, a) }

func (c *conn) run() {
	for len(c.toDo) > 0 {
		c.toDo = c.toDo[1:]
	}
}

// sealBatch is a compliant observer: it reads, hashes, and stores.
func sealBatch(c *conn, body []byte) {
	c.segs = append(c.segs, body...)
}

// badSealKick drives the executor from the seal layer.
func badSealKick(c *conn) {
	c.run() // want "badSealKick is a journal observer \\(in an observer package\\) and calls run"
}

// badSealEnqueue enqueues from the seal layer, via a helper — the walk
// descends and reports at the offending call site.
func badSealEnqueue(c *conn) {
	helper(c)
}

func helper(c *conn) {
	c.enqueue(1) // want "helper is a journal observer \\(in an observer package\\) and calls enqueue"
}

// badSealSync enters a synchronous module (declared in this package's
// receive.go) from the seal layer.
func badSealSync(c *conn) {
	c.receiveSegment() // want "badSealSync is a journal observer \\(in an observer package\\) and calls receiveSegment, declared in receive.go"
}
