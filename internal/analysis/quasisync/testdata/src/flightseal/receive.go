package flightseal

// receiveSegment stands for the synchronous Receive module.
func (c *conn) receiveSegment() {
	c.segs = nil
}
