package adversary

// count is declared in a protected basename and reached from the
// delivery handler; only the package allowlist keeps this quiet.
func (a *Attacker) count() {
	a.received++
}
