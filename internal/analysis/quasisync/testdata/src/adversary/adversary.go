// Package adversary is the allowlist golden: its delivery handler calls
// straight into a function declared in receive.go — a violation anywhere
// else — and the analyzer must stay silent, because a raw traffic
// injector has no to_do queue to enqueue onto. No want comments: silence
// is the assertion.
package adversary

type network struct{ h func(src string) }

func (n *network) Attach(h func(src string)) { n.h = h }

type Attacker struct{ received int }

// sink is the wire-delivery handler; it counts via the protected file.
func (a *Attacker) sink(src string) {
	a.count()
}

func wire(a *Attacker, n *network) {
	n.Attach(a.sink)
}
