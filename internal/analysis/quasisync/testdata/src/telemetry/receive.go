package telemetry

// receiveSegment stands for the synchronous Receive module.
func (c *conn) receiveSegment() {
	c.toDo = nil
}
