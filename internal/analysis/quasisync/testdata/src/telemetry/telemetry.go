// Package telemetry exercises the analyzer's observer-package rule for
// the observation plane: it stands for internal/telemetry, where EVERY
// function — histograms, series rings, the profiler — is an observer.
// None may reach the executor's door (enqueue/run/perform) or a
// synchronous module, or an observed run would diverge from the same
// run unobserved.
package telemetry

type conn struct {
	toDo    []int
	buckets [8]uint64
}

// The executor boundary, as the stack under observation declares it.
func (c *conn) enqueue(a int) { c.toDo = append(c.toDo, a) }

func (c *conn) run() {
	for len(c.toDo) > 0 {
		c.toDo = c.toDo[1:]
	}
}

// observe is a compliant observer: it reads state and bumps a bucket.
func observe(c *conn, v uint64) {
	c.buckets[v%8]++
}

// badTelemetryKick drives the executor from the plane.
func badTelemetryKick(c *conn) {
	c.run() // want "badTelemetryKick is a journal observer \\(in an observer package\\) and calls run"
}

// badTelemetryEnqueue enqueues from the plane, via a helper — the walk
// descends and reports at the offending call site.
func badTelemetryEnqueue(c *conn) {
	bump(c)
}

func bump(c *conn) {
	c.enqueue(1) // want "bump is a journal observer \\(in an observer package\\) and calls enqueue"
}

// badTelemetrySync enters a synchronous module (declared in this
// package's receive.go) from the plane.
func badTelemetrySync(c *conn) {
	c.receiveSegment() // want "badTelemetrySync is a journal observer \\(in an observer package\\) and calls receiveSegment, declared in receive.go"
}
