// Package faultplane exercises the analyzer's observer-package rule
// for internal/fault: the fault plane perturbs the wire through the
// segment's sanctioned control API and journals what it did, but every
// function in it is an observer — none may reach the executor's door
// (enqueue/run/perform) or a synchronous module, or injecting a fault
// would perturb the very run whose degradation it scripts.
package faultplane

type conn struct {
	toDo []int
	down bool
}

// The executor boundary, as the stack under observation declares it.
func (c *conn) enqueue(a int) { c.toDo = append(c.toDo, a) }

func (c *conn) run() {
	for len(c.toDo) > 0 {
		c.toDo = c.toDo[1:]
	}
}

// applyTransition is a compliant fault runner: it flips wire state
// through the control surface and counts what it did.
func applyTransition(c *conn) {
	c.down = !c.down
}

// badFaultKick drives the executor to "help" the stack notice the
// partition instead of letting retransmission timers find out.
func badFaultKick(c *conn) {
	c.run() // want "badFaultKick is a journal observer \\(in an observer package\\) and calls run"
}

// badFaultEnqueue injects a synthetic action from the fault plane, via
// a helper — the walk descends and reports at the offending call site.
func badFaultEnqueue(c *conn) {
	inject(c)
}

func inject(c *conn) {
	c.enqueue(1) // want "inject is a journal observer \\(in an observer package\\) and calls enqueue"
}

// badFaultSync calls straight into a synchronous module (declared in
// this package's receive.go) to simulate a delivery.
func badFaultSync(c *conn) {
	c.receiveSegment() // want "badFaultSync is a journal observer \\(in an observer package\\) and calls receiveSegment, declared in receive.go"
}
