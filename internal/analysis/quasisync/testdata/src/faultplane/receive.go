package faultplane

// receiveSegment stands for the synchronous Receive module.
func (c *conn) receiveSegment() {
	c.toDo = c.toDo[:0]
}
