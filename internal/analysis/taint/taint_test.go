package taint

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestTaint(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "tainttest")
}
