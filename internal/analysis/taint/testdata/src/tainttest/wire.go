// Package tainttest seeds one of each taint violation alongside the
// sanitized idioms that must stay silent.
package tainttest

import "errors"

// frame is the wire type: unmarshalFrame's first result marks it.
type frame struct {
	kind  byte
	off   uint16
	count uint16
	size  uint32
	data  []byte
}

// unmarshalFrame decodes a frame. Its body is the validation layer and
// is exempt from sink checks.
func unmarshalFrame(b []byte) (*frame, error) {
	if len(b) < 9 {
		return nil, errors.New("short frame")
	}
	f := &frame{
		kind:  b[0],
		off:   uint16(b[1])<<8 | uint16(b[2]),
		count: uint16(b[3])<<8 | uint16(b[4]),
		size:  uint32(b[5])<<24 | uint32(b[6])<<16 | uint32(b[7])<<8 | uint32(b[8]),
		data:  b[9:],
	}
	return f, nil
}

// okSize validates a claimed size against the configured budget.
//
//foxvet:sanitizes
func okSize(n uint32) bool { return n <= 1<<16 }

var ledger int

func memCharge(n int) { ledger += n }
