package tainttest

// Sanitized idioms: every use here is validated first and must stay
// silent.

// The guard idiom: an early return proves the field was checked.
func guarded(b []byte) byte {
	f, err := unmarshalFrame(b)
	if err != nil {
		return 0
	}
	if int(f.off) >= len(f.data) {
		return 0
	}
	return f.data[f.off]
}

// The clamp idiom: the comparison bounds the local on both edges.
func clamped(f *frame) []byte {
	n := int(f.size)
	if n > 4096 {
		n = 4096
	}
	return make([]byte, n)
}

// A declared sanitizer in the branch condition cleanses its argument.
func viaSanitizer(f *frame) []byte {
	if !okSize(f.size) {
		return nil
	}
	return make([]byte, f.size)
}

// A declared sanitizer's result is clean even when fed wire data.
//
//foxvet:sanitizes
func min16(n uint32) uint32 {
	if n > 16 {
		return 16
	}
	return n
}

func viaClampHelper(f *frame) []byte {
	return make([]byte, min16(f.size))
}

// Bounded loop: the count is validated before use as a bound.
func boundedLoop(f *frame) int {
	n := int(f.count)
	if n > 64 {
		return 0
	}
	sum := 0
	for i := 0; i < n; i++ {
		sum += i
	}
	return sum
}

// len of wire data is a measurement, not a claim.
func measured(f *frame) []byte {
	out := make([]byte, len(f.data))
	copy(out, f.data)
	return out
}

// The charge uses the clamped local, never the raw claim.
func chargeChecked(f *frame) {
	n := int(f.size)
	if n > 1<<16 {
		n = 1 << 16
	}
	memCharge(n)
}

// Reassignment invalidates a stale proof — and the fresh guard renews
// it.
func reguarded(f *frame, b []byte) byte {
	if int(f.off) >= len(f.data) {
		return 0
	}
	_ = f.data[f.off]
	g, err := unmarshalFrame(b)
	if err != nil {
		return 0
	}
	if int(g.off) >= len(g.data) {
		return 0
	}
	return g.data[g.off]
}
