package tainttest

// Seeded violations: each sink kind fires at least once.

func indexRaw(b []byte) byte {
	f, err := unmarshalFrame(b)
	if err != nil {
		return 0
	}
	return f.data[f.off] // want "slice index"
}

func sliceRaw(b []byte) []byte {
	f, err := unmarshalFrame(b)
	if err != nil {
		return nil
	}
	return f.data[:f.off] // want "slice bound"
}

func allocRaw(b []byte) []byte {
	f, err := unmarshalFrame(b)
	if err != nil {
		return nil
	}
	return make([]byte, f.size) // want "allocation size"
}

func loopRaw(b []byte) int {
	f, err := unmarshalFrame(b)
	if err != nil {
		return 0
	}
	sum := 0
	for i := 0; i < int(f.count); i++ { // want "loop bound"
		sum += i
	}
	return sum
}

func chargeRaw(b []byte) {
	f, err := unmarshalFrame(b)
	if err != nil {
		return
	}
	memCharge(int(f.size)) // want "memory-accounting charge"
}

// Taint propagates through locals, arithmetic, and conversions.
func propagated(f *frame, buf []byte) byte {
	n := int(f.off)
	m := n + 4
	return buf[m] // want "slice index"
}

// A helper fed wire data returns wire data.
func double(n uint16) int { return int(n) * 2 }

func throughCall(f *frame, buf []byte) byte {
	return buf[double(f.off)] // want "slice index"
}

// A comparison where both sides are attacker-chosen proves nothing.
func bothTainted(f *frame) []byte {
	if f.size > uint32(f.count) {
		return make([]byte, f.size) // want "allocation size"
	}
	return nil
}
