// Package taint tracks attacker-controlled wire data from unmarshalled
// segments to dangerous sinks.
//
// Every field read from an unmarshalled segment is a value the peer
// chose. Before such a value is used as a slice index, an allocation
// size, a loop bound, or a memory-accounting charge, it must pass
// through validation — otherwise a crafted segment turns into an
// out-of-range panic, an unbounded allocation, a spin, or a poisoned
// resource ledger. This pass enforces that discipline statically.
//
// Sources are structural: any function whose name starts with
// "unmarshal" and whose first result is a pointer to a struct marks
// that struct as a wire type; reading any field off a wire-typed value
// taints the result. Taint propagates through assignments, arithmetic,
// conversions, and ordinary calls (a helper fed tainted data returns
// tainted data). len and cap are clean: the measured length of a
// buffer you already hold is a bound, not a claim.
//
// Sanitization is how findings are fixed, never suppressed:
//
//   - A branch comparing a tainted value against a clean bound (one
//     tainted side, one clean side) sanitizes the tainted side on both
//     edges — the `if n > limit { n = limit }` clamp and the
//     `if off >= len(data) { return }` guard both count, because the
//     comparison proves the code looked at the value. For a direct
//     field read the proof is remembered per (variable, field) pair; it
//     is invalidated when the variable or field is reassigned. A
//     comparison that IS a loop condition does not sanitize — there it
//     is the loop-bound sink itself.
//   - A function declared with a `//foxvet:sanitizes` directive is a
//     validation point: its result is clean, and calling it (including
//     inside a branch condition) sanitizes its tainted arguments — the
//     sequence-space predicates (seqGT and friends) are the canonical
//     case.
//
// The bodies of unmarshal functions and declared sanitizers are exempt
// from sink checks: they are the validation layer itself.
package taint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/cfg"
	"repro/internal/analysis/dataflow"
)

// Analyzer is the taint pass.
var Analyzer = &analysis.Analyzer{
	Name: "taint",
	Doc:  "wire-derived values must be validated before use as slice index, allocation size, loop bound, or memory-accounting charge",
	Run:  run,
}

// sanitizeDirective marks a function as a validation point for wire
// data.
const sanitizeDirective = "//foxvet:sanitizes"

// world is the module-wide view the pass builds once: wire types,
// unmarshal functions, and declared sanitizers.
type world struct {
	wire       map[*types.Named]bool
	unmarshals map[*types.Func]bool
	sanitizers map[*types.Func]bool
}

func buildWorld(pkgs []*analysis.Package) *world {
	w := &world{
		wire:       map[*types.Named]bool{},
		unmarshals: map[*types.Func]bool{},
		sanitizers: map[*types.Func]bool{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				if fd.Doc != nil {
					for _, c := range fd.Doc.List {
						if strings.HasPrefix(c.Text, sanitizeDirective) {
							w.sanitizers[fn] = true
						}
					}
				}
				if !strings.HasPrefix(strings.ToLower(fn.Name()), "unmarshal") {
					continue
				}
				res := fn.Type().(*types.Signature).Results()
				if res.Len() == 0 {
					continue
				}
				ptr, ok := res.At(0).Type().(*types.Pointer)
				if !ok {
					continue
				}
				named, ok := ptr.Elem().(*types.Named)
				if !ok {
					continue
				}
				if _, ok := named.Underlying().(*types.Struct); !ok {
					continue
				}
				w.unmarshals[fn] = true
				w.wire[named] = true
			}
		}
	}
	return w
}

func run(pass *analysis.Pass) (any, error) {
	wv := pass.Shared.Memo("taint.world", func() any {
		return buildWorld(pass.Shared.Packages)
	})
	w := wv.(*world)
	if len(w.wire) == 0 {
		return nil, nil
	}
	pkg := pass.Shared.PackageOf(pass.Pkg)
	if pkg == nil {
		return nil, nil
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok {
				return true
			}
			if fd.Body == nil {
				return false
			}
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			// The validation layer itself is exempt from sink checks.
			if fn != nil && (w.unmarshals[fn] || w.sanitizers[fn]) {
				return false
			}
			ta := &taintAnalysis{w: w, pass: pass, pkg: pkg, reported: map[token.Pos]bool{}}
			ta.analyze(fd.Body)
			return true
		})
	}
	return nil, nil
}

// fieldKey names one direct wire-field read, x.f, by its base variable
// and field. Proofs of validation are remembered per key.
type fieldKey struct {
	base  *types.Var
	field *types.Var
}

// facts is the lattice. vars holds the tainted locals (join: union —
// tainted on any path is tainted). clean holds the wire-field reads
// proved validated (join: intersection — a proof must hold on every
// path).
type facts struct {
	vars  map[*types.Var]bool
	clean map[fieldKey]bool
}

func (f facts) copy() facts {
	out := facts{vars: make(map[*types.Var]bool, len(f.vars)), clean: make(map[fieldKey]bool, len(f.clean))}
	for k := range f.vars {
		out.vars[k] = true
	}
	for k := range f.clean {
		out.clean[k] = true
	}
	return out
}

func joinFacts(a, b facts) facts {
	out := facts{vars: make(map[*types.Var]bool, len(a.vars)+len(b.vars)), clean: map[fieldKey]bool{}}
	for k := range a.vars {
		out.vars[k] = true
	}
	for k := range b.vars {
		out.vars[k] = true
	}
	for k := range a.clean {
		if b.clean[k] {
			out.clean[k] = true
		}
	}
	return out
}

func equalFacts(a, b facts) bool {
	if len(a.vars) != len(b.vars) || len(a.clean) != len(b.clean) {
		return false
	}
	for k := range a.vars {
		if !b.vars[k] {
			return false
		}
	}
	for k := range a.clean {
		if !b.clean[k] {
			return false
		}
	}
	return true
}

type taintAnalysis struct {
	w    *world
	pass *analysis.Pass
	pkg  *analysis.Package
	// forConds are the source ranges of for-loop conditions: a leaf
	// branch condition inside one is the loop-bound sink, not a
	// sanitizing comparison.
	forConds  [][2]token.Pos
	reported  map[token.Pos]bool
	reporting bool
}

func (ta *taintAnalysis) analyze(body *ast.BlockStmt) {
	if !ta.mentionsWire(body) {
		return
	}
	ta.forConds = nil
	ast.Inspect(body, func(n ast.Node) bool {
		if f, ok := n.(*ast.ForStmt); ok && f.Cond != nil {
			ta.forConds = append(ta.forConds, [2]token.Pos{f.Cond.Pos(), f.Cond.End()})
		}
		return true
	})
	g := cfg.New(body)
	res := dataflow.Forward(g, dataflow.Problem[facts]{
		Entry:    facts{vars: map[*types.Var]bool{}, clean: map[fieldKey]bool{}},
		Join:     joinFacts,
		Equal:    equalFacts,
		Transfer: ta.transfer,
		Branch:   ta.branch,
	})
	// Report against the fixpoint, as sessiontype does: never retract.
	ta.reporting = true
	for _, b := range g.Blocks {
		in, ok := res.Reached(b)
		if !ok {
			continue
		}
		out := ta.transfer(b, in)
		if t, ok := b.Term.(*cfg.If); ok {
			ta.branch(t.Cond, out)
		}
	}
}

// mentionsWire cheaply decides whether the body can carry wire data: it
// must mention a wire-typed value or call an unmarshal function.
func (ta *taintAnalysis) mentionsWire(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := ta.pkg.Info.Uses[id]
		if obj == nil {
			obj = ta.pkg.Info.Defs[id]
		}
		switch o := obj.(type) {
		case *types.Func:
			if ta.w.unmarshals[o] {
				found = true
			}
		case *types.Var:
			if ta.isWireType(o.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

func (ta *taintAnalysis) isWireType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && ta.w.wire[named]
}

// isWireField reports whether sel reads a field off a wire-typed value
// — the taint source.
func (ta *taintAnalysis) isWireField(sel *ast.SelectorExpr) bool {
	s, ok := ta.pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	return ta.isWireType(s.Recv())
}

// wireFieldKey returns the (base, field) key for a simple wire-field
// read x.f. Nested reads (a.b.f) have no key and can only be sanitized
// by binding to a local first.
func (ta *taintAnalysis) wireFieldKey(sel *ast.SelectorExpr) (fieldKey, bool) {
	if !ta.isWireField(sel) {
		return fieldKey{}, false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return fieldKey{}, false
	}
	base, ok := ta.pkg.Info.Uses[id].(*types.Var)
	if !ok {
		return fieldKey{}, false
	}
	field, ok := ta.pkg.Info.Selections[sel].Obj().(*types.Var)
	if !ok {
		return fieldKey{}, false
	}
	return fieldKey{base: base, field: field}, true
}

// isLenCap reports whether call is the builtin len or cap: the measured
// size of a value already in hand is a bound, not a claim.
func (ta *taintAnalysis) isLenCap(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if _, isBuiltin := ta.pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	return id.Name == "len" || id.Name == "cap"
}

// tainted reports whether evaluating e can yield unvalidated wire data:
// an unproven wire-field read, a tainted variable, or any expression
// (arithmetic, conversion, ordinary call) fed by one. Calls to declared
// sanitizers and to len/cap are clean, as are nested function literals
// (their bodies are separate frames).
func (ta *taintAnalysis) tainted(e ast.Expr, fm facts) bool {
	found := false
	ast.Inspect(e, func(x ast.Node) bool {
		if found {
			return false
		}
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if ta.isLenCap(x) {
				return false
			}
			if fn := callgraph.Callee(ta.pkg.Info, x); fn != nil && ta.w.sanitizers[fn] {
				return false
			}
		case *ast.SelectorExpr:
			if ta.isWireField(x) {
				if key, ok := ta.wireFieldKey(x); !ok || !fm.clean[key] {
					found = true
				}
				return false
			}
		case *ast.Ident:
			if v, ok := ta.pkg.Info.Uses[x].(*types.Var); ok && fm.vars[v] {
				found = true
			}
		}
		return !found
	})
	return found
}

// cleanse records that e has been validated: tainted variables in e
// drop out of the taint set and simple wire-field reads in e gain a
// proof.
func (ta *taintAnalysis) cleanse(e ast.Expr, fm facts) {
	ast.Inspect(e, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectorExpr:
			if key, ok := ta.wireFieldKey(x); ok {
				fm.clean[key] = true
				return false
			}
		case *ast.Ident:
			if v, ok := ta.pkg.Info.Uses[x].(*types.Var); ok {
				delete(fm.vars, v)
			}
		}
		return true
	})
}

func (ta *taintAnalysis) transfer(b *cfg.Block, in facts) facts {
	fm := in.copy()
	for _, s := range b.Nodes {
		ta.stmt(s, fm)
	}
	return fm
}

func (ta *taintAnalysis) stmt(s ast.Stmt, fm facts) {
	// A RangeStmt head node carries the whole statement; only the ranged
	// expression evaluates here. Ranging over tainted wire data yields
	// tainted values (the index is bounded by the range itself).
	if r, ok := s.(*ast.RangeStmt); ok {
		ta.sinkScan(r.X, fm)
		if r.Value != nil {
			if v := ta.lhsVar(r.Value); v != nil {
				ta.bind(v, ta.tainted(r.X, fm), fm)
			}
		}
		if r.Key != nil {
			if v := ta.lhsVar(r.Key); v != nil {
				ta.bind(v, false, fm)
			}
		}
		return
	}
	ta.sinkScan(s, fm)
	switch s := s.(type) {
	case *ast.AssignStmt:
		ta.assign(s, fm)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					v, ok := ta.pkg.Info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					if i < len(vs.Values) {
						ta.bind(v, ta.tainted(vs.Values[i], fm), fm)
					}
				}
			}
		}
	}
}

func (ta *taintAnalysis) assign(s *ast.AssignStmt, fm facts) {
	// Pairwise when shapes match; with a multi-value RHS every LHS
	// carries the RHS's taint.
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Lhs {
			ta.bindExpr(s.Lhs[i], ta.tainted(s.Rhs[i], fm), fm)
		}
		return
	}
	t := false
	for _, r := range s.Rhs {
		if ta.tainted(r, fm) {
			t = true
		}
	}
	for _, l := range s.Lhs {
		ta.bindExpr(l, t, fm)
	}
}

func (ta *taintAnalysis) bindExpr(lhs ast.Expr, tainted bool, fm facts) {
	// Writing through a wire field (f.x = ...) invalidates its proof.
	if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
		if key, ok := ta.wireFieldKey(sel); ok {
			delete(fm.clean, key)
		}
		return
	}
	if v := ta.lhsVar(lhs); v != nil {
		ta.bind(v, tainted, fm)
	}
}

// bind strongly updates v's taint and invalidates any field proofs
// rooted at v (the variable now holds a different value).
func (ta *taintAnalysis) bind(v *types.Var, tainted bool, fm facts) {
	if tainted {
		fm.vars[v] = true
	} else {
		delete(fm.vars, v)
	}
	for key := range fm.clean {
		if key.base == v {
			delete(fm.clean, key)
		}
	}
}

func (ta *taintAnalysis) lhsVar(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	obj := ta.pkg.Info.Defs[id]
	if obj == nil {
		obj = ta.pkg.Info.Uses[id]
	}
	v, _ := obj.(*types.Var)
	return v
}

// sinkScan walks one statement (excluding nested literals) for the
// sinks: slice/array indexing, slice bounds, allocation sizes, and
// memory-accounting charges.
func (ta *taintAnalysis) sinkScan(n ast.Node, fm facts) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.IndexExpr:
			if ta.indexable(x.X) && ta.tainted(x.Index, fm) {
				ta.reportOnce(x.Index.Pos(), "unvalidated wire data used as a slice index — bound it with a comparison or a //foxvet:sanitizes function first")
			}
		case *ast.SliceExpr:
			for _, idx := range []ast.Expr{x.Low, x.High, x.Max} {
				if idx != nil && ta.tainted(idx, fm) {
					ta.reportOnce(idx.Pos(), "unvalidated wire data used as a slice bound — bound it with a comparison or a //foxvet:sanitizes function first")
					break
				}
			}
		case *ast.CallExpr:
			ta.sinkCall(x, fm)
		}
		return true
	})
}

func (ta *taintAnalysis) sinkCall(call *ast.CallExpr, fm facts) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := ta.pkg.Info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "make" {
			for _, arg := range call.Args[1:] {
				if ta.tainted(arg, fm) {
					ta.reportOnce(arg.Pos(), "unvalidated wire data used as an allocation size — a crafted segment chooses how much memory to commit")
					return
				}
			}
			return
		}
	}
	callee := callgraph.Callee(ta.pkg.Info, call)
	if callee == nil || callee.Name() != "memCharge" {
		return
	}
	for _, arg := range call.Args {
		if ta.tainted(arg, fm) {
			ta.reportOnce(arg.Pos(), "unvalidated wire data flows into a memory-accounting charge — a crafted segment poisons the resource ledger")
			return
		}
	}
}

// indexable limits the index sink to sequences, where an out-of-range
// value panics; map lookups with wire keys are safe.
func (ta *taintAnalysis) indexable(x ast.Expr) bool {
	t := ta.pkg.Info.TypeOf(x)
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Pointer:
		_, ok := u.Elem().Underlying().(*types.Array)
		return ok
	case *types.Basic:
		return u.Info()&types.IsString != 0
	}
	return false
}

// branch handles one leaf condition: inside a for-loop condition it is
// the loop-bound sink; elsewhere a comparison with exactly one tainted
// side sanitizes that side, and a sanitizer call sanitizes its
// arguments.
func (ta *taintAnalysis) branch(cond ast.Expr, out facts) (facts, facts) {
	fm := out.copy()
	ta.sinkScan(cond, fm)
	if ta.inForCond(cond.Pos()) {
		if ta.tainted(cond, fm) {
			ta.reportOnce(cond.Pos(), "unvalidated wire data used as a loop bound — a crafted segment chooses the iteration count")
		}
		return fm, fm
	}
	ta.sanitize(cond, fm)
	return fm, fm
}

func (ta *taintAnalysis) sanitize(cond ast.Expr, fm facts) {
	switch e := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			ta.sanitize(e.X, fm)
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
			lt, rt := ta.tainted(e.X, fm), ta.tainted(e.Y, fm)
			if lt != rt {
				side := e.X
				if rt {
					side = e.Y
				}
				ta.cleanse(side, fm)
			}
		}
	case *ast.CallExpr:
		if fn := callgraph.Callee(ta.pkg.Info, e); fn != nil && ta.w.sanitizers[fn] {
			for _, arg := range e.Args {
				ta.cleanse(arg, fm)
			}
		}
	}
}

func (ta *taintAnalysis) inForCond(pos token.Pos) bool {
	for _, r := range ta.forConds {
		if pos >= r[0] && pos < r[1] {
			return true
		}
	}
	return false
}

func (ta *taintAnalysis) reportOnce(pos token.Pos, msg string) {
	if !ta.reporting || ta.reported[pos] {
		return
	}
	ta.reported[pos] = true
	ta.pass.Reportf(pos, "%s", msg)
}
