// Package seqcmp flags wrap-unsafe arithmetic on TCP sequence-space
// values: raw ordered comparisons (<, <=, >, >=) and bare subtraction of
// two sequence numbers. RFC 793 sequence numbers live on a 2^32 ring —
// `sg.seq < tcb.rcvNxt` gives the wrong answer once the space wraps, and
// the bug stays invisible for the first 4 GiB of traffic. All ordering
// must go through the wrap-safe helpers (seqLT, seqLEQ, seqGT, seqGEQ,
// seqBetween) and all distance computations through seqSub.
//
// The check is sound, not heuristic, because internal/tcp declares
// `type seq uint32` as a defined type: any value the type checker sees
// as `seq` is sequence space, however it was computed. Equality and
// offset arithmetic (seq + n, seq + 1) are wrap-safe and stay allowed.
package seqcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// TypeName is the defined type the analyzer treats as sequence space.
const TypeName = "seq"

// Analyzer is the seqcmp pass.
var Analyzer = &analysis.Analyzer{
	Name: "seqcmp",
	Doc:  "flag raw ordered comparisons and bare subtraction on TCP sequence-space values",
	Run:  run,
}

// isSeq reports whether t is a defined type named TypeName with
// underlying uint32.
func isSeq(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != TypeName {
		return false
	}
	basic, ok := named.Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Uint32
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			x := pass.TypesInfo.Types[be.X]
			y := pass.TypesInfo.Types[be.Y]
			switch be.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ:
				if isSeq(x.Type) || isSeq(y.Type) {
					pass.Reportf(be.OpPos,
						"raw %s comparison of sequence-space values; use the wrap-safe helpers seqLT/seqLEQ/seqGT/seqGEQ/seqBetween",
						be.Op)
				}
			case token.SUB:
				// A constant operand is offset arithmetic (seq - 1),
				// which is wrap-safe; two live sequence numbers
				// subtracted is a distance and must use seqSub.
				if isSeq(x.Type) && isSeq(y.Type) && x.Value == nil && y.Value == nil {
					pass.Reportf(be.OpPos,
						"bare subtraction of sequence-space values; use seqSub for ring distances")
				}
			}
			return true
		})
	}
	return nil, nil
}
