// Package seqcmp flags wrap-unsafe arithmetic on TCP sequence-space
// values: raw ordered comparisons (<, <=, >, >=) and bare subtraction of
// two sequence numbers. RFC 793 sequence numbers live on a 2^32 ring —
// `sg.seq < tcb.rcvNxt` gives the wrong answer once the space wraps, and
// the bug stays invisible for the first 4 GiB of traffic. All ordering
// must go through the wrap-safe helpers (seqLT, seqLEQ, seqGT, seqGEQ,
// seqBetween) and all distance computations through seqSub.
//
// The check is sound, not heuristic, because internal/tcp declares
// `type seq uint32` as a defined type: any value the type checker sees
// as `seq` is sequence space, however it was computed. Equality and
// offset arithmetic (seq + n, seq + 1) are wrap-safe and stay allowed.
package seqcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// TypeName is the defined type the analyzer treats as sequence space.
const TypeName = "seq"

// Analyzer is the seqcmp pass.
var Analyzer = &analysis.Analyzer{
	Name: "seqcmp",
	Doc:  "flag raw ordered comparisons and bare subtraction on TCP sequence-space values",
	Run:  run,
}

// isSeq reports whether t is a defined type named TypeName with
// underlying uint32.
func isSeq(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != TypeName {
		return false
	}
	basic, ok := named.Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Uint32
}

// laundered reports whether e strips the seq type through an integer
// conversion — `uint32(x)` where x is sequence space. The conversion
// result type-checks as a plain integer, so without this check it walks
// straight past isSeq and re-enables the wrap bug the defined type
// exists to prevent.
func laundered(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return false
	}
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return false
	}
	if basic, ok := tv.Type.Underlying().(*types.Basic); !ok || basic.Info()&types.IsInteger == 0 {
		return false
	}
	argT := info.Types[call.Args[0]]
	return argT.Type != nil && isSeq(argT.Type)
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			x := pass.TypesInfo.Types[be.X]
			y := pass.TypesInfo.Types[be.Y]
			switch be.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ:
				if isSeq(x.Type) || isSeq(y.Type) {
					pass.Reportf(be.OpPos,
						"raw %s comparison of sequence-space values; use the wrap-safe helpers seqLT/seqLEQ/seqGT/seqGEQ/seqBetween",
						be.Op)
				} else if laundered(pass.TypesInfo, be.X) || laundered(pass.TypesInfo, be.Y) {
					pass.Reportf(be.OpPos,
						"sequence-space value laundered through an integer conversion in a raw %s comparison; use the wrap-safe helpers seqLT/seqLEQ/seqGT/seqGEQ/seqBetween",
						be.Op)
				}
			case token.SUB:
				// A constant operand is offset arithmetic (seq - 1),
				// which is wrap-safe; two live sequence numbers
				// subtracted is a distance and must use seqSub.
				if isSeq(x.Type) && isSeq(y.Type) && x.Value == nil && y.Value == nil {
					pass.Reportf(be.OpPos,
						"bare subtraction of sequence-space values; use seqSub for ring distances")
				} else if laundered(pass.TypesInfo, be.X) && laundered(pass.TypesInfo, be.Y) {
					pass.Reportf(be.OpPos,
						"sequence-space values laundered through integer conversions in a bare subtraction; use seqSub for ring distances")
				}
			}
			return true
		})
	}
	return nil, nil
}
