// Package seqcmp exercises the seqcmp analyzer: raw ordered comparisons
// and bare subtraction of sequence-space values are diagnosed.
package seqcmp

type seq uint32

// seqSub is the ring distance helper; the directive marks the one
// sanctioned bare subtraction.
//
//foxvet:allow seqcmp
func seqSub(a, b seq) uint32 { return uint32(a - b) }

func seqLT(a, b seq) bool  { return int32(seqSub(a, b)) < 0 }
func seqLEQ(a, b seq) bool { return int32(seqSub(a, b)) <= 0 }

func violations(a, b seq, ns []seq) {
	if a < b { // want "raw < comparison of sequence-space values"
		_ = a
	}
	if a <= b { // want "raw <= comparison of sequence-space values"
		_ = a
	}
	if a > b { // want "raw > comparison of sequence-space values"
		_ = a
	}
	if b >= a { // want "raw >= comparison of sequence-space values"
		_ = a
	}
	_ = a - b // want "bare subtraction of sequence-space values"
	for _, n := range ns {
		if n < a { // want "raw < comparison of sequence-space values"
			_ = n
		}
	}
	_ = int(a + 10 - b) // want "bare subtraction of sequence-space values"
}

func mixed(a seq, w uint32) {
	if a < seq(w) { // want "raw < comparison of sequence-space values"
		_ = a
	}
}

// launderedCases strip the seq type through integer conversions before
// comparing — the wrap bug survives the conversion, so the analyzer
// must see through it.
func launderedCases(a, b seq) {
	if uint32(a) < uint32(b) { // want "laundered through an integer conversion in a raw < comparison"
		_ = a
	}
	if uint32(a) >= 1000 { // want "laundered through an integer conversion in a raw >= comparison"
		_ = a
	}
	if int64(b) > 7 { // want "laundered through an integer conversion in a raw > comparison"
		_ = b
	}
	_ = uint32(a) - uint32(b) // want "laundered through integer conversions in a bare subtraction"
}
