package seqcmp

// This file carries no want comments: it asserts the analyzer accepts
// the approved idioms — wrap-safe helpers, equality, offset arithmetic,
// and plain-integer comparisons.

func approved(a, b seq, w uint32, data []byte) {
	if seqLT(a, b) || seqLEQ(b, a) {
		_ = a
	}
	if a == b || a != b { // equality is wrap-safe
		_ = a
	}
	_ = a + seq(len(data)) // offsets are wrap-safe
	_ = a + seq(w) + 1
	_ = a - 1 // constant offset, not a ring distance
	_ = seqSub(a, b)
	if w < 10 { // plain integers are untouched
		_ = w
	}
	if uint32(len(data)) <= w {
		_ = w
	}
}

// marshalUse converts sequence numbers for the wire without ordering
// them: conversions alone stay approved.
func marshalUse(a seq, w uint32) uint32 {
	field := uint32(a) // writing the header field is fine
	if w < 10 {        // comparing a converted NON-seq value is fine
		_ = uint32(w + 1)
	}
	return field
}
