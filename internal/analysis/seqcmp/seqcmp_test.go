package seqcmp_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/seqcmp"
)

func TestSeqcmp(t *testing.T) {
	analysistest.Run(t, "testdata", seqcmp.Analyzer, "seqcmp")
}
