package layering_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/layering"
)

func TestLayering(t *testing.T) {
	analysistest.Run(t, "testdata", layering.Analyzer,
		"arp", "udp", "tcp", "ip", "stats", "foxnet")
}
