// Package ip must not import upward.
package ip

import (
	_ "ethernet"
	_ "tcp" // want "composes strictly downward"
)
