// Package foxnet is the top of the stack: importing every layer below is
// the approved composition, so this file carries no want comments.
package foxnet

import (
	_ "arp"
	_ "ethernet"
	_ "ip"
	_ "tcp"
)
