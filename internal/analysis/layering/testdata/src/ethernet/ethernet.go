// Package ethernet is the bottom protocol layer.
package ethernet
