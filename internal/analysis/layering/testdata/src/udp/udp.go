// Package udp is a transport composed over the protocol signatures.
package udp

import (
	_ "ethernet"
	_ "protocol"
)
