// Package protocol stands for the signatures package: infrastructure
// every layer may import.
package protocol

type Network interface{ MTU() int }
