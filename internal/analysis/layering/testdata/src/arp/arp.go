// Package arp composes downward only: no diagnostics.
package arp

import _ "ethernet"
