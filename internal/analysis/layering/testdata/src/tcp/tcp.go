// Package tcp must not import a peer transport.
package tcp

import (
	_ "protocol"
	_ "udp" // want "imports peer layer"
)
