// Package stats is infrastructure: it sits below the whole stack.
package stats

import _ "tcp" // want "infrastructure package .stats. imports protocol layer"
