// Package layering machine-checks the Fig. 9 module graph: the protocol
// layers compose strictly downward,
//
//	ethernet → arp → ip → {icmp, udp, tcp} → foxnet
//
// so a layer may import layers strictly below it and never a peer or
// anything above. Cross-protocol composition happens only through the
// internal/protocol signatures — the Go rendering of the paper's
// PROTOCOL/IP_AUX functor parameters — so the transports stay functors
// over any Network instead of growing concrete knowledge of IP.
// Infrastructure packages (the substrate every layer may use: sim,
// basis, stats, timers, ...) must stay below the whole stack and import
// no protocol layer at all.
//
// In SML the compiler enforced this shape at functor instantiation; Go's
// import graph accepts any DAG, so this pass encodes the figure.
package layering

import (
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the layering pass.
var Analyzer = &analysis.Analyzer{
	Name: "layering",
	Doc:  "enforce the Fig. 9 layer DAG: eth→arp→ip→{icmp,udp,tcp}→foxnet, downward imports only",
	Run:  run,
}

// rank orders the protocol layers bottom-up. Packages are classified by
// the last element of their import path; equal ranks may not import each
// other (transports compose through internal/protocol, not each other).
var rank = map[string]int{
	"eth":      1,
	"ethernet": 1,
	"arp":      2,
	"ip":       3,
	"icmp":     4,
	"udp":      4,
	"tcp":      4,
	"foxnet":   5,
}

// infrastructure names the substrate packages that sit below the whole
// stack: any layer may import them, and they may import no layer.
var infrastructure = map[string]bool{
	"basis":     true,
	"checksum":  true,
	"core":      true,
	"decode":    true,
	"fault":     true,
	"flight":    true,
	"pcap":      true,
	"profile":   true,
	"protocol":  true,
	"seal":      true,
	"seqplot":   true,
	"sim":       true,
	"stats":     true,
	"telemetry": true,
	"timers":    true,
	"wire":      true,
}

func lastElem(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

func run(pass *analysis.Pass) (any, error) {
	self := lastElem(pass.Pkg.Path())
	selfRank, selfIsLayer := rank[self]
	selfIsInfra := infrastructure[self]
	if !selfIsLayer && !selfIsInfra {
		// Applications above the stack (cmd, examples, experiments,
		// baseline, foxnet subpackages) are unconstrained.
		return nil, nil
	}

	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			impRank, impIsLayer := rank[lastElem(path)]
			if !impIsLayer {
				continue
			}
			switch {
			case selfIsInfra:
				pass.Reportf(imp.Pos(),
					"infrastructure package %q imports protocol layer %q; the substrate sits below the whole Fig. 9 stack",
					self, path)
			case impRank == selfRank && lastElem(path) != self:
				pass.Reportf(imp.Pos(),
					"layer %q imports peer layer %q; cross-protocol composition goes through internal/protocol signatures only",
					self, path)
			case impRank > selfRank:
				pass.Reportf(imp.Pos(),
					"layer %q (rank %d) imports %q (rank %d); the Fig. 9 module graph composes strictly downward (eth→arp→ip→{icmp,udp,tcp}→foxnet)",
					self, selfRank, path, impRank)
			}
		}
	}
	return nil, nil
}
