// Package hotpathtest exercises the hotpathalloc analyzer: functions
// marked //foxvet:hotpath must not allocate per segment, with the
// executor boundary and trace-guarded regions exempt.
package hotpathtest

type Tracer struct{ enabled bool }

func (t *Tracer) On() bool { return t != nil && t.enabled }

func (t *Tracer) Printf(format string, args ...any) {}

type Packet struct{ buf []byte }

type segment struct {
	seq  uint32
	data []byte
}

type action interface{ isAction() }

type actSend struct{ sg *segment }

func (actSend) isAction() {}

type errString string

func (e errString) Error() string { return string(e) }

type Conn struct {
	trace *Tracer
	toDo  []action
	sink  any
}

func (c *Conn) enqueue(a action) { c.toDo = append(c.toDo, a) }

func register(h any) { _ = h }

//foxvet:hotpath
func (c *Conn) loopAllocs(segs []*segment) {
	for _, sg := range segs {
		hold := &Packet{buf: sg.data} // want "composite literal allocates inside a loop on the hot path"
		_ = hold
		tmp := make([]byte, 16) // want "make allocates inside a loop on the hot path"
		_ = tmp
	}
}

//foxvet:hotpath
func (c *Conn) boxing(sg *segment) error {
	register(sg.seq) // want "interface conversion boxes a uint32 into any on the hot path"
	c.sink = *sg     // want "interface conversion boxes a hotpathtest.segment into any on the hot path"
	if sg.data == nil {
		return errString("empty segment") // want "interface conversion boxes a hotpathtest.errString into error on the hot path"
	}
	return nil
}

//foxvet:hotpath
func (c *Conn) unguardedTrace(sg *segment, err error) {
	c.trace.Printf("rx %d: %v", sg.seq, err) // want "variadic call allocates its argument slice on the hot path"
}

//foxvet:hotpath
func (c *Conn) growingAppend(sg *segment) {
	var acc []byte
	acc = append(acc, sg.data...) // want "append may grow acc on the hot path"
	_ = acc
}

//foxvet:hotpath
func (c *Conn) capturing(sg *segment) {
	buf := sg.data
	f := func() int { return len(buf) } // want "closure on the hot path captures packet buffer .buf."
	_ = f()
}

// The approved idioms below must stay silent.

//foxvet:hotpath
func (c *Conn) boundaryAndGuards(sg *segment) error {
	// The executor boundary is the sanctioned per-segment allocation.
	c.enqueue(actSend{sg: sg})

	// Trace-guarded regions may allocate: they only run when tracing.
	if c.trace.On() {
		c.trace.Printf("rx %d bytes", len(sg.data))
		hold := &Packet{buf: sg.data}
		_ = hold
	}
	if c.trace != nil {
		c.trace.Printf("seq %d", sg.seq)
	}

	// A preallocated append cannot grow.
	out := make([]byte, 0, 64)
	out = append(out, sg.data...)
	_ = out

	// Pointer values fit the interface word: no box.
	register(sg)

	// Constant-only variadic calls burn no per-segment allocation that
	// depends on the segment; the vet accepts them.
	c.trace.Printf("fast path hit")

	// A composite literal outside any loop is the normal
	// one-per-operation cost, not a per-byte cost.
	one := &segment{seq: sg.seq}
	_ = one
	return nil
}

// unmarked does all of the above without the directive: the analyzer
// only polices declared hot paths.
func (c *Conn) unmarked(segs []*segment) error {
	var acc []byte
	for _, sg := range segs {
		hold := &Packet{buf: sg.data}
		_ = hold
		acc = append(acc, sg.data...)
		c.trace.Printf("rx %d", sg.seq)
		c.sink = *sg
	}
	return errString("not hot")
}
