package hotpathalloc

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

// TestHotpathAlloc covers every rule (loop allocation, interface
// boxing at calls/assignments/returns, variadic slices, growing
// appends, buffer-capturing closures) and every exemption (unmarked
// functions, the executor boundary, trace-guarded regions, preallocated
// appends, pointer boxing).
func TestHotpathAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "hotpathtest")
}
