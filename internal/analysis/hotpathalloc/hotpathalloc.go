// Package hotpathalloc machine-checks the paper's §4 single-copy
// discipline on the data path. The paper reports that the fast path
// wins exactly because the common case does no avoidable work: one copy
// on send, zero on receive, and no garbage-collector pressure per
// segment. In Go the equivalent regression is a heap allocation on the
// per-segment path — a composite literal built in a loop, a value boxed
// into an interface, an append that grows, a closure that captures the
// packet buffer.
//
// Functions opt in with a `//foxvet:hotpath` directive in their doc
// comment; the analyzer then flags, inside the marked body:
//
//   - R1: composite literals, make, and new inside a loop;
//   - R2: interface conversions that box a non-pointer value (call
//     arguments, assignments, and returns), and calls with a variadic
//     interface parameter, which allocate the argument slice;
//   - R3: append to a slice the function did not preallocate with an
//     explicit capacity (fields and parameters are trusted — the
//     check tracks locals, where the make-with-cap is visible);
//   - R4: function literals capturing packet buffers ([]byte, Packet,
//     segment) — the capture forces the buffer's context to the heap.
//
// Two escapes keep the pass precise rather than noisy. Arguments of the
// executor boundary (enqueue, perform) are exempt: handing an action to
// the to_do queue is the sanctioned per-segment allocation, already
// policed by quasisync/singledoor. And tracing regions are exempt: a
// CFG + dataflow pass marks blocks reachable only through the true edge
// of a Trace.On()-style guard (or an equivalent nil check on a tracer),
// where diagnostic-only allocation is deliberate. An UNGUARDED trace
// call on the hot path is precisely what this analyzer exists to catch.
package hotpathalloc

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
	"repro/internal/analysis/dataflow"
)

// Analyzer is the hotpathalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "functions marked //foxvet:hotpath must not allocate per segment: no literals/make/new in loops, no interface boxing, no growing appends, no buffer-capturing closures (trace-guarded regions and executor boundary arguments exempt)",
	Run:  run,
}

// directive is the opt-in marker in a function's doc comment.
const directive = "//foxvet:hotpath"

// boundary names the executor doors whose arguments are sanctioned
// allocations (the action handed to the to_do queue).
var boundary = map[string]bool{
	"enqueue": true,
	"perform": true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !marked(fd) {
				continue
			}
			check(pass, fd)
		}
	}
	return nil, nil
}

func marked(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

type checker struct {
	pass     *analysis.Pass
	info     *types.Info
	fd       *ast.FuncDecl
	sig      *types.Signature
	guarded  map[ast.Stmt]bool
	prealloc map[*types.Var]bool
	sizes    types.Sizes
}

func check(pass *analysis.Pass, fd *ast.FuncDecl) {
	fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return
	}
	c := &checker{
		pass:     pass,
		info:     pass.TypesInfo,
		fd:       fd,
		sig:      fn.Type().(*types.Signature),
		guarded:  guardedStmts(pass.TypesInfo, fd.Body),
		prealloc: map[*types.Var]bool{},
		sizes:    types.SizesFor("gc", "amd64"),
	}
	c.walk(fd.Body)
}

// --- trace-guard regions -------------------------------------------------

// guardedStmts solves a boolean dataflow problem over the function's
// CFG: a statement is guarded when every path reaching its block passed
// through the true edge of a tracing guard.
func guardedStmts(info *types.Info, body *ast.BlockStmt) map[ast.Stmt]bool {
	g := cfg.New(body)
	res := dataflow.Forward(g, dataflow.Problem[bool]{
		Entry:    false,
		Join:     func(a, b bool) bool { return a && b },
		Equal:    func(a, b bool) bool { return a == b },
		Transfer: func(b *cfg.Block, in bool) bool { return in },
		Branch: func(cond ast.Expr, out bool) (bool, bool) {
			thenG, elseG := out, out
			if isOnGuard(cond) {
				thenG = true
			} else if eq, ok := tracerNilCmp(info, cond); ok {
				if eq {
					elseG = true // tracer == nil: the else edge has it
				} else {
					thenG = true // tracer != nil
				}
			}
			return thenG, elseG
		},
	})
	guarded := map[ast.Stmt]bool{}
	for _, b := range g.Blocks {
		if fact, ok := res.Reached(b); ok && fact {
			for _, s := range b.Nodes {
				guarded[s] = true
			}
		}
	}
	return guarded
}

// isOnGuard matches the tracing-enabled probe: a niladic method call
// named On (basis.Tracer.On, stats.EventRing.On, and the testdata
// miniatures).
func isOnGuard(cond ast.Expr) bool {
	call, ok := ast.Unparen(cond).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "On"
}

// tracerNilCmp matches `x == nil` / `x != nil` where x is a pointer to
// a tracing type (Tracer, EventRing). Returns eq=true for ==.
func tracerNilCmp(info *types.Info, cond ast.Expr) (eq, ok bool) {
	be, isBin := ast.Unparen(cond).(*ast.BinaryExpr)
	if !isBin || (be.Op != token.EQL && be.Op != token.NEQ) {
		return false, false
	}
	x, y := be.X, be.Y
	if !isNil(info, y) {
		x, y = y, x
	}
	if !isNil(info, y) || !isTracerPtr(info, x) {
		return false, false
	}
	return be.Op == token.EQL, true
}

func isNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

func isTracerPtr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	ptr, ok := tv.Type.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	return name == "Tracer" || name == "EventRing"
}

// --- the walk ------------------------------------------------------------

// walk visits the marked body, tracking the enclosing-statement stack
// (to find the current block's guard fact) and loop depth. Boundary
// call arguments and nested function literals are pruned.
func (c *checker) walk(body *ast.BlockStmt) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)

		switch x := n.(type) {
		case *ast.FuncLit:
			c.checkCapture(x, stack)
			stack = stack[:len(stack)-1]
			return false

		case *ast.CallExpr:
			if c.isBoundaryCall(x) {
				stack = stack[:len(stack)-1]
				return false
			}
			c.checkCall(x, stack)

		case *ast.CompositeLit:
			if c.inLoop(stack) && !c.isGuarded(stack) {
				c.pass.Reportf(x.Pos(),
					"composite literal allocates inside a loop on the hot path; hoist it or reuse a scratch value")
			}

		case *ast.ReturnStmt:
			c.checkReturn(x, stack)

		case *ast.AssignStmt:
			c.checkAssign(x, stack)
		}
		return true
	})
}

// isGuarded finds the nearest enclosing statement with a solved guard
// fact.
func (c *checker) isGuarded(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if s, ok := stack[i].(ast.Stmt); ok {
			if g, known := c.guarded[s]; known {
				return g
			}
		}
	}
	return false
}

// inLoop reports whether the current node sits under a for/range
// statement of the marked body.
func (c *checker) inLoop(stack []ast.Node) bool {
	for _, n := range stack[:len(stack)-1] {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}

func (c *checker) isBoundaryCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if fn, ok := c.info.Uses[sel.Sel].(*types.Func); ok {
		return boundary[fn.Name()]
	}
	return false
}

// checkCall applies R1 (make/new in loops), R2 (boxing arguments), and
// the variadic-slice rule, plus R3 for bare append expressions.
func (c *checker) checkCall(call *ast.CallExpr, stack []ast.Node) {
	guarded := c.isGuarded(stack)

	// Builtins and conversions first: their Fun has no *types.Signature.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch c.info.Uses[id].(type) {
		case *types.Builtin:
			switch id.Name {
			case "make", "new":
				if c.inLoop(stack) && !guarded {
					c.pass.Reportf(call.Pos(),
						"%s allocates inside a loop on the hot path; hoist it or reuse a scratch value", id.Name)
				}
			case "append":
				c.checkAppend(call, guarded)
			}
			return
		case *types.TypeName:
			return // conversion; any boxing is charged where the result is used
		}
	}
	if _, isType := ast.Unparen(call.Fun).(*ast.ArrayType); isType {
		return // []byte(s)-style conversion
	}

	tv, ok := c.info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	if tv.IsType() {
		return // conversion through a named/qualified type
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok || guarded {
		return
	}

	fixed := sig.Params().Len()
	if sig.Variadic() {
		fixed--
		elem := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		if types.IsInterface(elem) && call.Ellipsis == token.NoPos && len(call.Args) > fixed {
			for _, arg := range call.Args[fixed:] {
				if tvArg, ok := c.info.Types[arg]; ok && tvArg.Value == nil {
					c.pass.Reportf(call.Pos(),
						"variadic call allocates its argument slice on the hot path; guard it behind Trace.On() or drop it")
					break
				}
			}
		}
	}
	for i := 0; i < fixed && i < len(call.Args); i++ {
		c.checkBox(call.Args[i], sig.Params().At(i).Type())
	}
}

// checkAppend flags growth of a slice the function did not visibly
// preallocate. Only local variables are tracked: for those, the
// make-with-capacity (or its absence) is in this body.
func (c *checker) checkAppend(call *ast.CallExpr, guarded bool) {
	if guarded || len(call.Args) == 0 {
		return
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	v, ok := c.info.Uses[id].(*types.Var)
	if !ok || v.Pos() < c.fd.Pos() || v.Pos() > c.fd.End() {
		return // fields, globals, and cross-function slices are out of scope
	}
	if !c.prealloc[v] {
		c.pass.Reportf(call.Pos(),
			"append may grow %s on the hot path; preallocate it with make and an explicit capacity", id.Name)
	}
}

func (c *checker) checkReturn(ret *ast.ReturnStmt, stack []ast.Node) {
	if c.isGuarded(stack) {
		return
	}
	results := c.sig.Results()
	if results.Len() != len(ret.Results) {
		return
	}
	for i, e := range ret.Results {
		c.checkBox(e, results.At(i).Type())
	}
}

func (c *checker) checkAssign(as *ast.AssignStmt, stack []ast.Node) {
	// Track preallocated locals: x := make([]T, n, cap).
	if len(as.Lhs) == 1 && len(as.Rhs) == 1 {
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if mk, ok := as.Rhs[0].(*ast.CallExpr); ok && len(mk.Args) == 3 {
				if fun, ok := mk.Fun.(*ast.Ident); ok && fun.Name == "make" {
					if v, ok := c.info.Defs[id].(*types.Var); ok {
						c.prealloc[v] = true
					} else if v, ok := c.info.Uses[id].(*types.Var); ok {
						c.prealloc[v] = true
					}
				}
			}
		}
	}
	if c.isGuarded(stack) {
		return
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		tv, ok := c.info.Types[lhs]
		if !ok || tv.Type == nil {
			continue
		}
		c.checkBox(as.Rhs[i], tv.Type)
	}
}

// checkBox reports an interface conversion that heap-allocates: a
// non-pointer-shaped, non-constant, non-zero-size concrete value
// converted to an interface type.
func (c *checker) checkBox(e ast.Expr, target types.Type) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	tv, ok := c.info.Types[e]
	if !ok || tv.Type == nil || tv.IsNil() {
		return
	}
	// Numeric and boolean constants are boxed statically by the
	// compiler; string-typed constants still deserve a package-level
	// sentinel — a fresh error value per failure defeats identity
	// comparison and leans on the optimizer.
	if tv.Value != nil && tv.Value.Kind() != constant.String {
		return
	}
	if types.IsInterface(tv.Type) {
		return // interface-to-interface carries the existing box
	}
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped: fits the interface word, no allocation
	}
	if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Kind() == types.UntypedNil {
		return
	}
	if c.sizes != nil && c.sizes.Sizeof(tv.Type) == 0 {
		return
	}
	c.pass.Reportf(e.Pos(),
		"interface conversion boxes a %s into %s on the hot path; return a preallocated sentinel or restructure to avoid the allocation",
		tv.Type.String(), target.String())
}

// checkCapture applies R4: a literal nested in a hot function must not
// capture packet buffers — the capture forces them (and their holder)
// to escape to the heap.
func (c *checker) checkCapture(lit *ast.FuncLit, stack []ast.Node) {
	if c.isGuarded(stack) {
		return
	}
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.info.Uses[id].(*types.Var)
		if !ok || seen[v] {
			return true
		}
		// Captured: declared in the enclosing function, outside the
		// literal.
		if v.Pos() < c.fd.Pos() || v.Pos() > c.fd.End() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true
		}
		seen[v] = true
		if isPacketBuffer(v.Type()) {
			c.pass.Reportf(lit.Pos(),
				"closure on the hot path captures packet buffer %q, forcing it to escape to the heap", v.Name())
		}
		return true
	})
}

// isPacketBuffer matches the types that hold wire data: byte slices and
// (pointers to) Packet/segment values.
func isPacketBuffer(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if sl, ok := t.Underlying().(*types.Slice); ok {
		if basic, ok := sl.Elem().Underlying().(*types.Basic); ok && basic.Kind() == types.Byte {
			return true
		}
	}
	if named, ok := t.(*types.Named); ok {
		name := named.Obj().Name()
		return name == "Packet" || name == "segment"
	}
	return false
}
