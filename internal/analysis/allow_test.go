package analysis_test

import (
	"go/ast"
	"go/token"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// toy reports every integer literal — a deliberately noisy analyzer
// whose diagnostics land on many lines of one declaration, which is
// exactly what declaration-scoped //foxvet:allow must cover.
var toy = &analysis.Analyzer{
	Name: "toy",
	Doc:  "report every integer literal (directive-scoping test double)",
	Run: func(pass *analysis.Pass) (any, error) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if lit, ok := n.(*ast.BasicLit); ok && lit.Kind == token.INT {
					pass.Reportf(lit.Pos(), "integer literal")
				}
				return true
			})
		}
		return nil, nil
	},
}

// TestAllowDeclarationScope proves an allow on a declaration line (doc
// comment, trailing comment, or grouped-spec doc) suppresses
// diagnostics anywhere inside that declaration, while line-level allows
// keep their old single-line scope.
func TestAllowDeclarationScope(t *testing.T) {
	analysistest.Run(t, "testdata", toy, "allowtest")
}
