package interval

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

func (a *Analysis) typeOf(e ast.Expr) types.Type {
	if tv, ok := a.Info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	return types.Typ[types.Invalid]
}

func (a *Analysis) isConversion(call *ast.CallExpr) bool {
	tv, ok := a.Info.Types[call.Fun]
	return ok && tv.IsType()
}

// Eval computes the interval of an integer-valued expression at the
// point described by env (nil env means "no flow information": type
// intervals only). Non-integer expressions yield ⊤.
func (a *Analysis) Eval(e ast.Expr, env *Env) Interval {
	// Constants first: go/types folded every constant expression.
	if tv, ok := a.Info.Types[e]; ok && tv.Value != nil {
		return constInterval(tv.Value)
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return a.Eval(e.X, env)
	case *ast.Ident:
		if v, ok := a.Info.ObjectOf(e).(*types.Var); ok {
			if !a.tracked(v) {
				return OfType(v.Type())
			}
			return env.Get(v)
		}
	case *ast.BinaryExpr:
		t := a.typeOf(e)
		if !IsInteger(t) {
			return Top
		}
		return a.binop(e.Op, a.Eval(e.X, env), a.Eval(e.Y, env), t)
	case *ast.UnaryExpr:
		switch e.Op {
		case token.ADD:
			return a.Eval(e.X, env)
		case token.SUB:
			return ClampToType(Neg(a.Eval(e.X, env)), a.typeOf(e))
		case token.XOR: // ^x
			return OfType(a.typeOf(e))
		}
	case *ast.CallExpr:
		return a.evalCall(e, env)
	}
	return OfType(a.typeOf(e))
}

func (a *Analysis) binop(op token.Token, x, y Interval, t types.Type) Interval {
	var r Interval
	switch op {
	case token.ADD:
		r = Add(x, y)
	case token.SUB:
		r = Sub(x, y)
	case token.MUL:
		r = Mul(x, y)
	case token.QUO:
		r = Div(x, y)
	case token.REM:
		r = Mod(x, y)
	case token.SHL:
		r = Shl(x, y)
	case token.SHR:
		r = Shr(x, y)
		// An unbounded unsigned operand still has a width: u>>k for a
		// w-bit u is at most 2^(w-k)-1, which the ±inf sentinels lose.
		if k, ok := y.IsConst(); ok && x.Lo >= 0 && r.Hi == PosInf {
			if w := int64(BitWidth(t)); k > 0 && w-k <= 62 {
				r.Hi = int64(1)<<uint(w-k) - 1
			}
		}
	case token.AND:
		r = And(x, y)
	case token.OR:
		r = Or(x, y)
	case token.XOR:
		r = Xor(x, y)
	case token.AND_NOT:
		r = AndNot(x, y)
	default:
		return Top
	}
	return ClampToType(r, t)
}

func (a *Analysis) evalCall(call *ast.CallExpr, env *Env) Interval {
	// Conversion: the value survives when it fits the target type;
	// otherwise it wraps somewhere inside the target's range.
	if a.isConversion(call) && len(call.Args) == 1 {
		t := a.typeOf(call)
		if !IsInteger(t) {
			return Top
		}
		return ClampToType(a.Eval(call.Args[0], env), t)
	}
	if name, ok := builtinName(call, a.Info); ok {
		switch name {
		case "len", "cap", "copy":
			return LenInterval
		case "min", "max":
			if len(call.Args) == 0 {
				return Top
			}
			r := a.Eval(call.Args[0], env)
			for _, arg := range call.Args[1:] {
				o := a.Eval(arg, env)
				if name == "min" {
					r = Range(minI(r.Lo, o.Lo), minI(r.Hi, o.Hi))
				} else {
					r = Range(maxI(r.Lo, o.Lo), maxI(r.Hi, o.Hi))
				}
			}
			return r
		}
		return OfType(a.typeOf(call))
	}
	if fn := a.callee(call); fn != nil {
		if a.SeqSub != nil && a.SeqSub(fn) && len(call.Args) == 2 {
			return a.evalSeqSub(call, env)
		}
		if a.Measure != nil && a.Measure(fn) {
			return LenInterval
		}
		if a.Summary != nil {
			if iv, ok := a.Summary(fn); ok {
				return ClampToType(iv, a.typeOf(call))
			}
		}
	}
	return OfType(a.typeOf(call))
}

// evalSeqSub refines the wrapping 32-bit difference seqSub(p, q) using
// the predicate facts in force. The raw range is the full uint32 space;
// a guard through seqLT/seqLEQ/seqGT/seqGEQ pins the difference to one
// half of it.
func (a *Analysis) evalSeqSub(call *ast.CallExpr, env *Env) Interval {
	base := ClampToType(Range(0, 1<<32-1), a.typeOf(call))
	if env == nil || len(env.seq) == 0 {
		return base
	}
	p, q := types.ExprString(call.Args[0]), types.ExprString(call.Args[1])
	if f, ok := env.seq[seqKey{p, q}]; ok {
		// Fact about seqSub(p, q) directly: the int32 view's sign.
		switch f.pred {
		case SeqLT: // int32 view < 0
			base, _ = Intersect(base, Range(halfSpace, 1<<32-1))
		case SeqGT: // int32 view > 0
			base, _ = Intersect(base, Range(1, halfSpace-1))
		case SeqGEQ: // int32 view >= 0
			base, _ = Intersect(base, Range(0, halfSpace-1))
		}
	}
	if f, ok := env.seq[seqKey{q, p}]; ok {
		// Fact about the mirrored difference: negate modulo 2³².
		switch f.pred {
		case SeqLT: // seqSub(q,p) ∈ [2³¹, 2³²−1] ⇒ seqSub(p,q) ∈ [1, 2³¹]
			base, _ = Intersect(base, Range(1, halfSpace))
		case SeqLEQ: // ⇒ seqSub(p,q) ∈ [0, 2³¹]
			base, _ = Intersect(base, Range(0, halfSpace))
		case SeqGT: // seqSub(q,p) ∈ [1, 2³¹−1] ⇒ seqSub(p,q) ∈ [2³¹+1, 2³²−1]
			base, _ = Intersect(base, Range(halfSpace+1, 1<<32-1))
		}
	}
	return base
}

func constInterval(v constant.Value) Interval {
	v = constant.ToInt(v)
	if v.Kind() != constant.Int {
		return Top
	}
	if n, ok := constant.Int64Val(v); ok {
		return Const(n)
	}
	if constant.Sign(v) > 0 {
		return Range(PosInf-1, PosInf)
	}
	return Range(NegInf, NegInf+1)
}

// ---- branch refinement ---------------------------------------------

// refine narrows env along the `branch` edge of leaf condition cond.
func (a *Analysis) refine(env *Env, cond ast.Expr, branch bool) *Env {
	if env.dead {
		return env
	}
	switch cond := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		op := cond.Op
		if !branch {
			op = negateCmp(op)
		}
		if op == token.ILLEGAL {
			return env
		}
		a.refineCmp(env, cond.X, cond.Y, op)
	case *ast.CallExpr:
		a.refineSeqCall(env, cond, branch)
	}
	return env
}

func negateCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	}
	return token.ILLEGAL
}

func (a *Analysis) refineCmp(env *Env, x, y ast.Expr, op token.Token) {
	xi, yi := a.Eval(x, env), a.Eval(y, env)
	switch op {
	case token.LSS: // x < y
		a.narrow(env, x, Range(NegInf, satSub(yi.Hi, 1)))
		a.narrow(env, y, Range(satAdd(xi.Lo, 1), PosInf))
	case token.LEQ:
		a.narrow(env, x, Range(NegInf, yi.Hi))
		a.narrow(env, y, Range(xi.Lo, PosInf))
	case token.GTR:
		a.narrow(env, x, Range(satAdd(yi.Lo, 1), PosInf))
		a.narrow(env, y, Range(NegInf, satSub(xi.Hi, 1)))
	case token.GEQ:
		a.narrow(env, x, Range(yi.Lo, PosInf))
		a.narrow(env, y, Range(NegInf, xi.Hi))
	case token.EQL:
		a.narrow(env, x, yi)
		a.narrow(env, y, xi)
		a.refineShiftZero(env, x, y, true)
	case token.NEQ:
		if c, ok := yi.IsConst(); ok {
			a.trimEndpoint(env, x, c)
		}
		if c, ok := xi.IsConst(); ok {
			a.trimEndpoint(env, y, c)
		}
		a.refineShiftZero(env, x, y, false)
	}
}

// refineShiftZero handles the idiom `x>>k == 0` (and its loop-guard
// negation): for an unsigned x it proves x < 2ᵏ on the == edge.
func (a *Analysis) refineShiftZero(env *Env, x, y ast.Expr, eq bool) {
	if !eq {
		return
	}
	c, ok := a.Eval(y, env).IsConst()
	if !ok || c != 0 {
		return
	}
	sh, ok := ast.Unparen(x).(*ast.BinaryExpr)
	if !ok || sh.Op != token.SHR {
		return
	}
	k, ok := a.Eval(sh.Y, env).IsConst()
	if !ok || k <= 0 || k >= 63 {
		return
	}
	if base := a.Eval(sh.X, env); base.Lo >= 0 {
		a.narrow(env, sh.X, Range(0, (int64(1)<<uint(k))-1))
	}
}

// narrow intersects a tracked variable with iv; an empty meet marks the
// edge infeasible.
func (a *Analysis) narrow(env *Env, e ast.Expr, iv Interval) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return
	}
	v, ok := a.Info.ObjectOf(id).(*types.Var)
	if !ok || !a.tracked(v) {
		return
	}
	met, ok := Intersect(env.Get(v), iv)
	if !ok {
		env.dead = true
		return
	}
	env.set(v, met)
}

func (a *Analysis) trimEndpoint(env *Env, e ast.Expr, c int64) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return
	}
	v, ok := a.Info.ObjectOf(id).(*types.Var)
	if !ok || !a.tracked(v) {
		return
	}
	iv := env.Get(v)
	if iv.Lo == c && iv.Hi == c {
		env.dead = true
		return
	}
	if iv.Lo == c {
		iv.Lo = satAdd(c, 1)
	}
	if iv.Hi == c {
		iv.Hi = satSub(c, 1)
	}
	env.set(v, iv)
}

// refineSeqCall records a sequence-predicate fact from a branch through
// seqLT/seqLEQ/seqGT/seqGEQ/seqBetween.
func (a *Analysis) refineSeqCall(env *Env, call *ast.CallExpr, branch bool) {
	if a.SeqPred == nil {
		return
	}
	fn := a.callee(call)
	if fn == nil {
		return
	}
	pred, ok := a.SeqPred(fn)
	if !ok {
		return
	}
	record := func(x, y ast.Expr, p SeqPred) {
		k := seqKey{types.ExprString(x), types.ExprString(y)}
		if env.seq == nil {
			env.seq = map[seqKey]seqFact{}
		}
		env.seq[k] = seqFact{pred: p, paths: append(selectorPaths(x), selectorPaths(y)...)}
	}
	if pred == SeqBetween {
		if len(call.Args) != 3 || !branch {
			return // ¬(lo≤x ∧ x<hi) is a disjunction: no single fact
		}
		record(call.Args[0], call.Args[1], SeqLEQ)
		record(call.Args[1], call.Args[2], SeqLT)
		return
	}
	if len(call.Args) != 2 {
		return
	}
	if !branch {
		switch pred {
		case SeqLT:
			pred = SeqGEQ
		case SeqLEQ:
			pred = SeqGT
		case SeqGT:
			pred = SeqLEQ
		case SeqGEQ:
			pred = SeqLT
		}
	}
	record(call.Args[0], call.Args[1], pred)
}

// selectorPaths lists the ident/selector chains mentioned by e, used to
// invalidate facts when one of their inputs is overwritten.
func selectorPaths(e ast.Expr) []string {
	var out []string
	ast.Inspect(e, func(n ast.Node) bool {
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if p := lvaluePath(expr); p != "" {
			out = append(out, p)
			return false // the full chain covers its sub-chains
		}
		return true
	})
	return out
}

// refineSwitch narrows the tag variable to the hull of a case's
// constant values on that case's edge.
func (a *Analysis) refineSwitch(env *Env, tag ast.Expr, values []ast.Expr) *Env {
	if env.dead || len(values) == 0 {
		return env
	}
	hull, ok := Interval{}, false
	for _, v := range values {
		tv, found := a.Info.Types[v]
		if !found || tv.Value == nil {
			return env
		}
		ci := constInterval(tv.Value)
		if !ok {
			hull, ok = ci, true
		} else {
			hull = Union(hull, ci)
		}
	}
	if ok {
		a.narrow(env, tag, hull)
	}
	return env
}

// ---- bottom-up result summaries ------------------------------------

// FuncSource names one function body for Summarize.
type FuncSource struct {
	Fn   *types.Func
	Body *ast.BlockStmt
	Info *types.Info
}

// Summarize computes proved result intervals for every function in
// funcs that has exactly one integer result, iterating `rounds` times
// so leaf summaries feed their callers (pessimistic start: a function
// not yet summarized contributes its result type's full interval).
// Hooks are taken from base; Info is swapped per function.
func Summarize(funcs []FuncSource, rounds int, base *Analysis) map[*types.Func]Interval {
	out := map[*types.Func]Interval{}
	for r := 0; r < rounds; r++ {
		changed := false
		for _, f := range funcs {
			sig, ok := f.Fn.Type().(*types.Signature)
			if !ok || sig.Results().Len() != 1 || !IsInteger(sig.Results().At(0).Type()) {
				continue
			}
			resType := sig.Results().At(0).Type()
			a := *base
			a.Info = f.Info
			prev := a.Summary
			a.Summary = func(fn *types.Func) (Interval, bool) {
				if iv, ok := out[fn]; ok {
					return iv, true
				}
				if prev != nil {
					return prev(fn)
				}
				return Interval{}, false
			}
			res := a.Func(f.Body)
			if res.Incomplete {
				continue
			}
			var iv Interval
			seen := false
			for s, env := range res.Before {
				ret, ok := s.(*ast.ReturnStmt)
				if !ok || len(ret.Results) != 1 {
					continue
				}
				ri := a.Eval(ret.Results[0], env)
				if seen {
					iv = Union(iv, ri)
				} else {
					iv, seen = ri, true
				}
			}
			if !seen {
				continue
			}
			iv = ClampToType(iv, resType)
			if iv == OfType(resType) {
				continue // no information beyond the type
			}
			if old, ok := out[f.Fn]; !ok || old != iv {
				out[f.Fn] = iv
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return out
}
