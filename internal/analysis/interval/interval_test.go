package interval

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typecheck parses and checks one file of test source.
func typecheck(t *testing.T, src string) (*ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return f, info
}

func findFunc(t *testing.T, f *ast.File, name string) *ast.FuncDecl {
	t.Helper()
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	t.Fatalf("no function %q", name)
	return nil
}

// testCallee resolves direct ident/selector calls through the checker.
func testCallee(info *types.Info) func(*ast.CallExpr) *types.Func {
	return func(call *ast.CallExpr) *types.Func {
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			fn, _ := info.ObjectOf(fun).(*types.Func)
			return fn
		case *ast.SelectorExpr:
			fn, _ := info.ObjectOf(fun.Sel).(*types.Func)
			return fn
		}
		return nil
	}
}

// probes returns the intervals of each probe(expr) argument, in source
// order, evaluated at the statement's fixpoint env.
func probes(t *testing.T, a *Analysis, res *Result) []Interval {
	t.Helper()
	type hit struct {
		pos token.Pos
		iv  Interval
	}
	var hits []hit
	for s, env := range res.Before {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "probe" || len(call.Args) != 1 {
			continue
		}
		hits = append(hits, hit{call.Pos(), a.Eval(call.Args[0], env)})
	}
	for i := range hits {
		for j := i + 1; j < len(hits); j++ {
			if hits[j].pos < hits[i].pos {
				hits[i], hits[j] = hits[j], hits[i]
			}
		}
	}
	out := make([]Interval, len(hits))
	for i, h := range hits {
		out[i] = h.iv
	}
	return out
}

const seqPrelude = `
package p

type seq uint32

func probe(vs ...interface{}) {}

func seqSub(a, b seq) uint32  { return uint32(a) - uint32(b) }
func seqLT(a, b seq) bool     { return int32(seqSub(a, b)) < 0 }
func seqLEQ(a, b seq) bool    { return int32(seqSub(a, b)) <= 0 }
func seqGT(a, b seq) bool     { return int32(seqSub(a, b)) > 0 }
func seqGEQ(a, b seq) bool    { return int32(seqSub(a, b)) >= 0 }
func seqBetween(lo, x, hi seq) bool { return seqLEQ(lo, x) && seqLT(x, hi) }
`

func seqAnalysis(info *types.Info) *Analysis {
	return &Analysis{
		Info:   info,
		Callee: testCallee(info),
		SeqSub: func(fn *types.Func) bool { return fn.Name() == "seqSub" },
		SeqPred: func(fn *types.Func) (SeqPred, bool) {
			switch fn.Name() {
			case "seqLT":
				return SeqLT, true
			case "seqLEQ":
				return SeqLEQ, true
			case "seqGT":
				return SeqGT, true
			case "seqGEQ":
				return SeqGEQ, true
			case "seqBetween":
				return SeqBetween, true
			}
			return 0, false
		},
	}
}

func TestWideningTerminatesOnLoopCounters(t *testing.T) {
	f, info := typecheck(t, seqPrelude+`
func kernel(data []byte) int {
	s := 0
	for n := 0; n+4 <= len(data); n += 4 {
		probe(n)
		s += int(data[n])
	}
	return s
}
`)
	a := seqAnalysis(info)
	res := a.Func(findFunc(t, f, "kernel").Body)
	if res.Incomplete {
		t.Fatal("fixpoint did not converge")
	}
	ps := probes(t, a, res)
	if len(ps) != 1 {
		t.Fatalf("probes = %d, want 1", len(ps))
	}
	// Widening blows the upper bound but the checksum-offset property —
	// a stable non-negative lower bound — survives.
	if got := ps[0]; got.Lo != 0 || got.Hi != PosInf {
		t.Fatalf("loop counter = %v, want [0,+inf]", got)
	}
}

func TestGuardRefinementBoundsCounter(t *testing.T) {
	f, info := typecheck(t, seqPrelude+`
func count() int {
	last := 0
	for i := 0; i < 10; i++ {
		probe(i)
		last = i
	}
	return last
}
`)
	a := seqAnalysis(info)
	res := a.Func(findFunc(t, f, "count").Body)
	ps := probes(t, a, res)
	if len(ps) != 1 {
		t.Fatalf("probes = %d, want 1", len(ps))
	}
	if got := ps[0]; got != (Interval{0, 9}) {
		t.Fatalf("bounded counter = %v, want [0,9]", got)
	}
}

func TestGuardRefinementClampDiamond(t *testing.T) {
	f, info := typecheck(t, seqPrelude+`
func adv(w uint32) uint16 {
	if w > 0xffff {
		w = 0xffff
	}
	probe(w)
	return uint16(w)
}
`)
	a := seqAnalysis(info)
	res := a.Func(findFunc(t, f, "adv").Body)
	ps := probes(t, a, res)
	if len(ps) != 1 || ps[0] != (Interval{0, 0xffff}) {
		t.Fatalf("clamped window = %v, want [0,65535]", ps)
	}
}

func TestSeqPredicateRefinement(t *testing.T) {
	// The drainOutOfOrder shape: falling through the seqGT guard proves
	// the mirrored wrapping difference lands in [0, 2³¹] — a finite
	// range, not the raw uint32 space.
	f, info := typecheck(t, seqPrelude+`
func drain(qseq, rcvNxt seq, data []byte) []byte {
	if seqGT(qseq, rcvNxt) {
		return nil
	}
	probe(seqSub(rcvNxt, qseq))
	return data[seqSub(rcvNxt, qseq):]
}
`)
	a := seqAnalysis(info)
	res := a.Func(findFunc(t, f, "drain").Body)
	ps := probes(t, a, res)
	if len(ps) != 1 {
		t.Fatalf("probes = %d, want 1", len(ps))
	}
	want := Interval{0, 1 << 31}
	if ps[0] != want {
		t.Fatalf("seqSub under ¬seqGT = %v, want %v", ps[0], want)
	}
}

func TestSeqLTGuardProvesPositiveCut(t *testing.T) {
	// The checkSequence trim: under seqLT(s, nxt) the cut
	// seqSub(nxt, s) is at least one byte.
	f, info := typecheck(t, seqPrelude+`
func trim(s, nxt seq) uint32 {
	if seqLT(s, nxt) {
		probe(seqSub(nxt, s))
		return seqSub(nxt, s)
	}
	return 0
}
`)
	a := seqAnalysis(info)
	res := a.Func(findFunc(t, f, "trim").Body)
	ps := probes(t, a, res)
	want := Interval{1, 1 << 31}
	if len(ps) != 1 || ps[0] != want {
		t.Fatalf("seqSub under seqLT = %v, want %v", ps, want)
	}
}

func TestSeqBetweenRecordsBothFacts(t *testing.T) {
	f, info := typecheck(t, seqPrelude+`
func window(lo, x, hi seq) uint32 {
	if seqBetween(lo, x, hi) {
		probe(seqSub(x, lo))
	}
	return 0
}
`)
	a := seqAnalysis(info)
	res := a.Func(findFunc(t, f, "window").Body)
	ps := probes(t, a, res)
	want := Interval{0, 1 << 31} // from LEQ(lo, x) mirrored
	if len(ps) != 1 || ps[0] != want {
		t.Fatalf("seqSub under seqBetween = %v, want %v", ps, want)
	}
}

func TestSeqFactsSurviveHarmlessCallsOnly(t *testing.T) {
	src := seqPrelude + `
type T struct {
	rcvNxt seq
	bytes  int
}

func (t *T) release()  { t.bytes = 0 }
func (t *T) advance()  { t.rcvNxt++ }

func drain(t *T, q seq) uint32 {
	if seqGT(q, t.rcvNxt) {
		return 0
	}
	t.release()
	probe(seqSub(t.rcvNxt, q))
	t.advance()
	probe(seqSub(t.rcvNxt, q))
	return 0
}
`
	f, info := typecheck(t, src)
	a := seqAnalysis(info)
	modsets := map[string]map[string]bool{
		"release": {"bytes": true},
		"advance": {"rcvNxt": true},
	}
	a.CallKills = func(fn *types.Func) (map[string]bool, bool) {
		if m, ok := modsets[fn.Name()]; ok {
			return m, true
		}
		return nil, false
	}
	res := a.Func(findFunc(t, f, "drain").Body)
	ps := probes(t, a, res)
	if len(ps) != 2 {
		t.Fatalf("probes = %d, want 2", len(ps))
	}
	// release() writes only t.bytes: the guard survives.
	if want := (Interval{0, 1 << 31}); ps[0] != want {
		t.Fatalf("after release() = %v, want %v", ps[0], want)
	}
	// advance() writes t.rcvNxt: the guard dies, full uint32 range.
	if want := (Interval{0, 1<<32 - 1}); ps[1] != want {
		t.Fatalf("after advance() = %v, want %v", ps[1], want)
	}
}

func TestShiftZeroLoopRefinement(t *testing.T) {
	// The checksum Fold idiom: the loop exit edge proves sum fits 16 bits.
	f, info := typecheck(t, seqPrelude+`
func fold(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	probe(sum)
	return uint16(sum)
}
`)
	a := seqAnalysis(info)
	res := a.Func(findFunc(t, f, "fold").Body)
	ps := probes(t, a, res)
	if len(ps) != 1 || ps[0] != (Interval{0, 0xffff}) {
		t.Fatalf("folded sum = %v, want [0,65535]", ps)
	}
}

func TestPanicGuardPrunesPath(t *testing.T) {
	f, info := typecheck(t, seqPrelude+`
func alloc(size int) []byte {
	if size < 0 {
		panic("negative")
	}
	probe(size)
	return make([]byte, size)
}
`)
	a := seqAnalysis(info)
	res := a.Func(findFunc(t, f, "alloc").Body)
	ps := probes(t, a, res)
	if len(ps) != 1 || !ps[0].NonNeg() {
		t.Fatalf("guarded size = %v, want non-negative", ps)
	}
}

func TestSummarizeDerivesResultRanges(t *testing.T) {
	f, info := typecheck(t, seqPrelude+`
func headerBytes(opt bool) int {
	if opt {
		return 24
	}
	return 20
}

func use(opt bool) {
	probe(headerBytes(opt) / 4)
}
`)
	base := seqAnalysis(info)
	var funcs []FuncSource
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			if fn, ok := info.ObjectOf(fd.Name).(*types.Func); ok {
				funcs = append(funcs, FuncSource{Fn: fn, Body: fd.Body, Info: info})
			}
		}
	}
	sums := Summarize(funcs, 3, base)
	var hdr *types.Func
	for fn := range sums {
		if fn.Name() == "headerBytes" {
			hdr = fn
		}
	}
	if hdr == nil || sums[hdr] != (Interval{20, 24}) {
		t.Fatalf("headerBytes summary = %v, want [20,24]", sums[hdr])
	}

	a := *base
	a.Summary = func(fn *types.Func) (Interval, bool) {
		iv, ok := sums[fn]
		return iv, ok
	}
	res := a.Func(findFunc(t, f, "use").Body)
	ps := probes(t, &a, res)
	if len(ps) != 1 || ps[0] != (Interval{5, 6}) {
		t.Fatalf("headerBytes/4 = %v, want [5,6]", ps)
	}
}

func TestDomainOps(t *testing.T) {
	cases := []struct {
		name string
		got  Interval
		want Interval
	}{
		{"add", Add(Range(1, 2), Range(10, 20)), Range(11, 22)},
		{"add-sat", Add(Range(1, PosInf), Range(1, 1)), Range(2, PosInf)},
		{"sub", Sub(Range(10, 20), Range(1, 2)), Range(8, 19)},
		{"mul", Mul(Range(-2, 3), Range(4, 5)), Range(-10, 15)},
		{"mul-sat", Mul(Range(2, PosInf), Range(2, 2)), Range(4, PosInf)},
		{"div", Div(Range(10, 100), Range(2, 5)), Range(2, 50)},
		{"div-zero", Div(Range(10, 100), Range(0, 5)), Top},
		{"mod", Mod(Range(0, 1000), Range(16, 16)), Range(0, 15)},
		{"shl", Shl(Range(1, 1), Range(0, 14)), Range(1, 16384)},
		{"shr", Shr(Range(0, 0xffff), Range(8, 8)), Range(0, 0xff)},
		{"and", And(Range(0, 1000), Range(0, 15)), Range(0, 15)},
		{"union", Union(Range(0, 5), Range(10, 20)), Range(0, 20)},
		{"widen-stable", Widen(Range(0, 10), Range(0, 10)), Range(0, 10)},
		{"widen-hi", Widen(Range(0, 10), Range(0, 11)), Range(0, PosInf)},
		{"widen-lo", Widen(Range(0, 10), Range(-1, 10)), Range(NegInf, 10)},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
	if iv, ok := Intersect(Range(0, 5), Range(6, 9)); ok {
		t.Errorf("Intersect disjoint = %v, want empty", iv)
	}
}
