// Package interval implements a value-range abstract interpretation
// engine over the cfg package: constant propagation, arithmetic
// transfer functions, branch-guard refinement, and widening for
// termination. The analyzers built on it (intrange, and indirectly
// copyflow's size reasoning) use it to prove width safety — that a
// narrowing integer conversion cannot truncate, that an allocation size
// cannot be negative, that a variable shift count stays inside the
// operand's width.
//
// The domain is the classic integer interval [Lo, Hi] with the int64
// extremes standing in for ±∞. Two deliberate modelling axioms keep the
// domain honest about this codebase:
//
//   - `int` and `int64` are modelled as unbounded (their type interval
//     is ⊤): the engine proves facts about values, not about 64-bit
//     wraparound, which the datapath never approaches.
//
//   - len/cap and the measurement methods of the packet layer (Len,
//     Headroom, Tailroom, Buffered, MTU, ...) are modelled as
//     [0, 2³¹−1]: no single buffer in this stack reaches 2 GiB. This is
//     the same 31-bit integer-magnitude assumption the source paper's
//     Standard ML implementation lives under, stated once here instead
//     of at every conversion site.
//
// Sequence-space arithmetic gets first-class support: when the client
// declares the wrap-safe predicate family (seqLT/seqLEQ/seqGT/seqGEQ
// over a 32-bit space, with seqSub the wrapping difference), branch
// guards through those predicates refine the range of the matching
// seqSub call — `if seqGT(q.seq, rcvNxt) { return }` proves the
// fall-through's seqSub(rcvNxt, q.seq) ∈ [0, 2³¹] even though the raw
// subtraction spans the whole uint32 range.
package interval

import (
	"fmt"
	"go/types"
	"math"
)

// NegInf and PosInf are the sentinel bounds. An Interval with Lo ==
// NegInf is unbounded below; Hi == PosInf is unbounded above.
const (
	NegInf = math.MinInt64
	PosInf = math.MaxInt64
)

// Interval is a closed integer range [Lo, Hi]. The zero value is the
// empty-ish [0,0]; use Top for "no information".
type Interval struct {
	Lo, Hi int64
}

// Top is the unbounded interval.
var Top = Interval{NegInf, PosInf}

// Const is the singleton interval {v}.
func Const(v int64) Interval { return Interval{v, v} }

// Range builds [lo, hi], normalizing sentinel misuse so that a
// well-formed interval never has Lo == PosInf or Hi == NegInf.
func Range(lo, hi int64) Interval {
	if lo == PosInf {
		lo = PosInf - 1
	}
	if hi == NegInf {
		hi = NegInf + 1
	}
	return Interval{lo, hi}
}

func (iv Interval) String() string {
	lo, hi := "-inf", "+inf"
	if iv.Lo != NegInf {
		lo = fmt.Sprint(iv.Lo)
	}
	if iv.Hi != PosInf {
		hi = fmt.Sprint(iv.Hi)
	}
	return "[" + lo + "," + hi + "]"
}

// IsConst reports whether the interval is a singleton.
func (iv Interval) IsConst() (int64, bool) { return iv.Lo, iv.Lo == iv.Hi && iv.Lo != NegInf }

// NonNeg reports a proved lower bound of zero.
func (iv Interval) NonNeg() bool { return iv.Lo >= 0 }

// Bounded reports that both ends are finite.
func (iv Interval) Bounded() bool { return iv.Lo != NegInf && iv.Hi != PosInf }

// In reports iv ⊆ o.
func (iv Interval) In(o Interval) bool { return iv.Lo >= o.Lo && iv.Hi <= o.Hi }

// Union is the interval hull of a and b.
func Union(a, b Interval) Interval {
	return Interval{minI(a.Lo, b.Lo), maxI(a.Hi, b.Hi)}
}

// Intersect returns a ∩ b; ok is false when the meet is empty.
func Intersect(a, b Interval) (Interval, bool) {
	r := Interval{maxI(a.Lo, b.Lo), minI(a.Hi, b.Hi)}
	return r, r.Lo <= r.Hi
}

// Widen keeps the bounds of old that next left stable and discards the
// ones that moved — the standard interval widening that forces loop
// fixpoints to terminate.
func Widen(old, next Interval) Interval {
	w := old
	if next.Lo < old.Lo {
		w.Lo = NegInf
	}
	if next.Hi > old.Hi {
		w.Hi = PosInf
	}
	return w
}

func minI(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// ---- saturating bound arithmetic -----------------------------------

func satAdd(a, b int64) int64 {
	if a == NegInf || b == NegInf {
		return NegInf
	}
	if a == PosInf || b == PosInf {
		return PosInf
	}
	s := a + b
	if b > 0 && s < a {
		return PosInf
	}
	if b < 0 && s > a {
		return NegInf
	}
	return s
}

func satSub(a, b int64) int64 {
	if a == PosInf || b == NegInf {
		return PosInf
	}
	if a == NegInf || b == PosInf {
		return NegInf
	}
	s := a - b
	if b < 0 && s < a {
		return PosInf
	}
	if b > 0 && s > a {
		return NegInf
	}
	return s
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	neg := (a < 0) != (b < 0)
	if a == NegInf || a == PosInf || b == NegInf || b == PosInf {
		if neg {
			return NegInf
		}
		return PosInf
	}
	p := a * b
	if p/b != a {
		if neg {
			return NegInf
		}
		return PosInf
	}
	return p
}

// Add returns the interval of x+y for x ∈ a, y ∈ b (mathematical
// addition — the caller clamps to the Go type to model wraparound).
func Add(a, b Interval) Interval { return Range(satAdd(a.Lo, b.Lo), satAdd(a.Hi, b.Hi)) }

// Sub returns the interval of x−y.
func Sub(a, b Interval) Interval { return Range(satSub(a.Lo, b.Hi), satSub(a.Hi, b.Lo)) }

// Neg returns the interval of −x.
func Neg(a Interval) Interval { return Sub(Const(0), a) }

// Mul returns the interval of x*y via the four corner products.
func Mul(a, b Interval) Interval {
	p1 := satMul(a.Lo, b.Lo)
	p2 := satMul(a.Lo, b.Hi)
	p3 := satMul(a.Hi, b.Lo)
	p4 := satMul(a.Hi, b.Hi)
	return Range(minI(minI(p1, p2), minI(p3, p4)), maxI(maxI(p1, p2), maxI(p3, p4)))
}

// Div returns the interval of Go's truncated x/y. When the divisor
// interval contains zero the result is ⊤ (the run-time panics there;
// the engine does not model path pruning on division).
func Div(a, b Interval) Interval {
	if b.Lo <= 0 && b.Hi >= 0 {
		return Top
	}
	if !a.Bounded() && (a.Lo == NegInf && a.Hi == PosInf) {
		return Top
	}
	q := func(x, y int64) int64 {
		switch {
		case y == NegInf || y == PosInf:
			return 0
		case x == NegInf:
			if y > 0 {
				return NegInf
			}
			return PosInf
		case x == PosInf:
			if y > 0 {
				return PosInf
			}
			return NegInf
		}
		return x / y
	}
	q1 := q(a.Lo, b.Lo)
	q2 := q(a.Lo, b.Hi)
	q3 := q(a.Hi, b.Lo)
	q4 := q(a.Hi, b.Hi)
	return Range(minI(minI(q1, q2), minI(q3, q4)), maxI(maxI(q1, q2), maxI(q3, q4)))
}

// Mod returns the interval of Go's x%y (sign follows the dividend).
func Mod(a, b Interval) Interval {
	hi := maxI(absBound(b.Lo), absBound(b.Hi))
	if hi != PosInf && hi > 0 {
		hi--
	}
	if a.Lo >= 0 {
		return Range(0, minI(a.Hi, hi))
	}
	if hi == PosInf {
		return Top
	}
	return Range(-hi, hi)
}

func absBound(x int64) int64 {
	if x == NegInf || x == PosInf {
		return PosInf
	}
	if x < 0 {
		return -x
	}
	return x
}

func satShl(a int64, s int64) int64 {
	if a == 0 {
		return 0
	}
	if a == NegInf {
		return NegInf
	}
	if a == PosInf || s >= 62 {
		if a > 0 {
			return PosInf
		}
		return NegInf
	}
	r := a << uint(s)
	if r>>uint(s) != a {
		if a > 0 {
			return PosInf
		}
		return NegInf
	}
	return r
}

// Shl returns the interval of x<<s; ⊤ unless both operands are
// non-negative (the only shape the datapath uses).
func Shl(a, s Interval) Interval {
	if a.Lo < 0 || s.Lo < 0 {
		return Top
	}
	hi := s.Hi
	if hi == PosInf {
		hi = 63
	}
	return Range(satShl(a.Lo, s.Lo), satShl(a.Hi, hi))
}

// Shr returns the interval of x>>s for non-negative x.
func Shr(a, s Interval) Interval {
	if a.Lo < 0 || s.Lo < 0 {
		return Top
	}
	shr := func(x, k int64) int64 {
		if x == PosInf {
			return PosInf
		}
		if k >= 63 {
			return 0
		}
		return x >> uint(k)
	}
	hi := s.Hi
	if hi == PosInf {
		hi = 63
	}
	return Range(shr(a.Lo, hi), shr(a.Hi, s.Lo))
}

// And returns the interval of x&y for non-negative operands
// (x&y ≤ min(x,y)); ⊤ otherwise.
func And(a, b Interval) Interval {
	if a.Lo < 0 || b.Lo < 0 {
		return Top
	}
	return Range(0, minI(a.Hi, b.Hi))
}

// Or returns the interval of x|y for non-negative operands
// (max(x,y) ≤ x|y ≤ x+y); ⊤ otherwise.
func Or(a, b Interval) Interval {
	if a.Lo < 0 || b.Lo < 0 {
		return Top
	}
	return Range(maxI(a.Lo, b.Lo), satAdd(a.Hi, b.Hi))
}

// Xor returns the interval of x^y for non-negative operands.
func Xor(a, b Interval) Interval {
	if a.Lo < 0 || b.Lo < 0 {
		return Top
	}
	return Range(0, satAdd(a.Hi, b.Hi))
}

// AndNot returns the interval of x&^y for non-negative x.
func AndNot(a, b Interval) Interval {
	if a.Lo < 0 {
		return Top
	}
	return Range(0, a.Hi)
}

// ---- type seeding ---------------------------------------------------

// MaxSliceLen is the modelled upper bound of len/cap and of the packet
// layer's measurement methods: the 31-bit magnitude axiom (see the
// package comment).
const MaxSliceLen = math.MaxInt32

// LenInterval is the modelled result of len/cap.
var LenInterval = Interval{0, MaxSliceLen}

// OfType returns the interval every value of t inhabits. `int`, `int64`
// and non-integer types yield ⊤; unsigned 64-bit types yield [0, +inf].
func OfType(t types.Type) Interval {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return Top
	}
	switch b.Kind() {
	case types.Int8:
		return Interval{math.MinInt8, math.MaxInt8}
	case types.Int16:
		return Interval{math.MinInt16, math.MaxInt16}
	case types.Int32:
		return Interval{math.MinInt32, math.MaxInt32}
	case types.Uint8:
		return Interval{0, math.MaxUint8}
	case types.Uint16:
		return Interval{0, math.MaxUint16}
	case types.Uint32:
		return Interval{0, math.MaxUint32}
	case types.Uint, types.Uint64, types.Uintptr:
		return Interval{0, PosInf}
	default:
		return Top
	}
}

// IsInteger reports whether t is (or is defined over) an integer type.
func IsInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// BitWidth returns the width in bits of integer type t (64 for int,
// uint, uintptr and anything unknown).
func BitWidth(t types.Type) int {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return 64
	}
	switch b.Kind() {
	case types.Int8, types.Uint8:
		return 8
	case types.Int16, types.Uint16:
		return 16
	case types.Int32, types.Uint32:
		return 32
	default:
		return 64
	}
}

// ClampToType returns iv when it fits inside t's type interval, and
// t's full interval otherwise — the sound model of Go's wrapping
// conversions and arithmetic: either the mathematical result is
// representable, or all bets are off within the type.
func ClampToType(iv Interval, t types.Type) Interval {
	tv := OfType(t)
	if iv.In(tv) {
		return iv
	}
	return tv
}
