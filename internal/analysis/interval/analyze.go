package interval

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/cfg"
)

// SeqPred classifies a function as one of the wrap-safe sequence-space
// comparison predicates. p(a, b) constrains the wrapping difference
// SeqSub(a, b) over a 32-bit space; SeqBetween(lo, x, hi) is
// LEQ(lo, x) && LT(x, hi).
type SeqPred int

const (
	SeqLT SeqPred = iota + 1
	SeqLEQ
	SeqGT
	SeqGEQ
	SeqBetween
)

const halfSpace = int64(1) << 31 // 2³¹, the seq-space horizon

// Analysis configures one run of the engine over a function body. Only
// Info is required; every hook widens what the engine can prove, never
// what it assumes.
type Analysis struct {
	// Info is the type information of the package owning the bodies.
	Info *types.Info

	// Callee resolves a call site to its static target, when known.
	// When nil, direct ident and selector calls resolve through Info
	// (the callgraph.Callee discipline).
	Callee func(*ast.CallExpr) *types.Func

	// Summary returns a proved interval for fn's single result
	// (bottom-up summaries from Summarize).
	Summary func(fn *types.Func) (Interval, bool)

	// Measure reports that fn is a measurement method (Len, Headroom,
	// ...) whose result is modelled as [0, MaxSliceLen].
	Measure func(fn *types.Func) bool

	// SeqPred identifies the wrap-safe comparison predicates.
	SeqPred func(fn *types.Func) (SeqPred, bool)

	// SeqSub identifies the wrapping 32-bit sequence difference.
	SeqSub func(fn *types.Func) bool

	// CallKills reports the set of field/variable names the resolved
	// callee may write (a modset). When absent or unknown, every call
	// discards all sequence facts; when known, only facts mentioning a
	// written name die — this is what lets a guard survive an
	// interleaved call to a helper that provably does not touch the
	// guarded fields.
	CallKills func(fn *types.Func) (map[string]bool, bool)

	// Seed pre-binds intervals (e.g. parameter contracts in tests).
	Seed map[*types.Var]Interval

	untracked map[*types.Var]bool
}

// Env is the abstract state at a program point: an interval per tracked
// integer variable plus the sequence-predicate facts currently in
// force. dead marks an infeasible point.
type Env struct {
	vars map[*types.Var]Interval
	seq  map[seqKey]seqFact
	dead bool
}

type seqKey struct{ a, b string }

type seqFact struct {
	pred  SeqPred
	paths []string // selector paths mentioned by the args, for kills
}

// Dead reports that the point is unreachable under the abstraction.
func (e *Env) Dead() bool { return e != nil && e.dead }

// Get returns the interval of v at this point.
func (e *Env) Get(v *types.Var) Interval {
	def := OfType(v.Type())
	if e == nil || e.vars == nil {
		return def
	}
	if iv, ok := e.vars[v]; ok {
		return iv
	}
	return def
}

func (e *Env) set(v *types.Var, iv Interval) {
	def := OfType(v.Type())
	if iv == def {
		delete(e.vars, v)
		return
	}
	if e.vars == nil {
		e.vars = map[*types.Var]Interval{}
	}
	e.vars[v] = iv
}

func (e *Env) clone() *Env {
	c := &Env{dead: e.dead}
	if len(e.vars) > 0 {
		c.vars = make(map[*types.Var]Interval, len(e.vars))
		for k, v := range e.vars {
			c.vars[k] = v
		}
	}
	if len(e.seq) > 0 {
		c.seq = make(map[seqKey]seqFact, len(e.seq))
		for k, v := range e.seq {
			c.seq[k] = v
		}
	}
	return c
}

func join(a, b *Env) *Env {
	if a.dead {
		return b.clone()
	}
	if b.dead {
		return a.clone()
	}
	j := &Env{}
	for v, iv := range a.vars {
		j.set(v, Union(iv, b.Get(v)))
	}
	for v, iv := range b.vars {
		if _, seen := a.vars[v]; !seen {
			j.set(v, Union(iv, a.Get(v)))
		}
	}
	for k, fa := range a.seq {
		fb, ok := b.seq[k]
		if !ok {
			continue
		}
		if p, ok := joinPred(fa.pred, fb.pred); ok {
			if j.seq == nil {
				j.seq = map[seqKey]seqFact{}
			}
			j.seq[k] = seqFact{pred: p, paths: fa.paths}
		}
	}
	return j
}

func joinPred(a, b SeqPred) (SeqPred, bool) {
	if a == b {
		return a, true
	}
	weaker := func(x, y SeqPred) (SeqPred, bool) {
		switch {
		case x == SeqLT && y == SeqLEQ:
			return SeqLEQ, true
		case x == SeqGT && y == SeqGEQ:
			return SeqGEQ, true
		}
		return 0, false
	}
	if p, ok := weaker(a, b); ok {
		return p, ok
	}
	return weaker(b, a)
}

func equalEnv(a, b *Env) bool {
	if a.dead != b.dead {
		return false
	}
	if len(a.vars) != len(b.vars) || len(a.seq) != len(b.seq) {
		return false
	}
	for v, iv := range a.vars {
		if o, ok := b.vars[v]; !ok || o != iv {
			return false
		}
	}
	for k, f := range a.seq {
		if o, ok := b.seq[k]; !ok || o.pred != f.pred {
			return false
		}
	}
	return true
}

func widenEnv(old, next *Env) *Env {
	if old.dead {
		return next
	}
	w := &Env{dead: next.dead, seq: next.seq}
	for v, iv := range next.vars {
		w.set(v, Widen(old.Get(v), iv))
	}
	// A var tracked in old but default in next already widened to the
	// type interval via Get's default — nothing to record.
	return w
}

// Result carries the fixpoint: the abstract state before every
// statement and at every leaf branch condition. Statements in
// unreachable code have no entry.
type Result struct {
	Graph  *cfg.Graph
	Before map[ast.Stmt]*Env
	AtCond map[ast.Expr]*Env
	// Incomplete is set if the safety iteration cap was hit; clients
	// must not report proofs from an incomplete result.
	Incomplete bool
}

// Func runs the engine to fixpoint over one function (or literal) body.
func (a *Analysis) Func(body *ast.BlockStmt) *Result {
	g := cfg.New(body)
	res := &Result{
		Graph:  g,
		Before: map[ast.Stmt]*Env{},
		AtCond: map[ast.Expr]*Env{},
	}
	a.untracked = untrackedVars(body, a.Info)

	heads := loopHeads(g)
	in := map[*cfg.Block]*Env{}
	entry := &Env{}
	for v, iv := range a.Seed {
		entry.set(v, iv)
	}
	in[g.Entry] = entry

	work := []*cfg.Block{g.Entry}
	queued := map[*cfg.Block]bool{g.Entry: true}
	steps, limit := 0, 256*(len(g.Blocks)+1)

	flow := func(to *cfg.Block, e *Env) {
		if e.dead {
			return
		}
		cur, ok := in[to]
		if !ok {
			in[to] = e
		} else {
			j := join(cur, e)
			if heads[to] {
				j = widenEnv(cur, j)
			}
			if equalEnv(cur, j) {
				return
			}
			in[to] = j
		}
		if !queued[to] {
			queued[to] = true
			work = append(work, to)
		}
	}

	for len(work) > 0 {
		if steps++; steps > limit {
			res.Incomplete = true
			break
		}
		b := work[0]
		work = work[1:]
		queued[b] = false

		env := in[b].clone()
		for _, s := range b.Nodes {
			res.Before[s] = env.clone()
			env = a.transfer(env, s)
		}
		switch t := b.Term.(type) {
		case *cfg.Jump:
			flow(t.To, env)
		case *cfg.If:
			res.AtCond[t.Cond] = env.clone()
			flow(t.Then, a.refine(env.clone(), t.Cond, true))
			flow(t.Else, a.refine(env.clone(), t.Cond, false))
		case *cfg.Switch:
			res.AtCond[t.Tag] = env.clone()
			for _, c := range t.Cases {
				flow(c.Target, a.refineSwitch(env.clone(), t.Tag, c.Values))
			}
			flow(t.Default, env.clone())
		case *cfg.Choice:
			for _, to := range t.Targets {
				flow(to, env.clone())
			}
		}
	}
	return res
}

// untrackedVars collects variables whose value the frame does not own:
// address-taken vars and vars assigned inside nested function literals.
func untrackedVars(body *ast.BlockStmt, info *types.Info) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	mark := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if v, ok := info.ObjectOf(id).(*types.Var); ok {
				out[v] = true
			}
		}
	}
	var inLit int
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				mark(n.X)
			}
		case *ast.FuncLit:
			inLit++
			ast.Inspect(n.Body, walk)
			inLit--
			return false
		case *ast.AssignStmt:
			if inLit > 0 {
				for _, l := range n.Lhs {
					mark(l)
				}
			}
		case *ast.IncDecStmt:
			if inLit > 0 {
				mark(n.X)
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return out
}

func loopHeads(g *cfg.Graph) map[*cfg.Block]bool {
	heads := map[*cfg.Block]bool{}
	state := map[*cfg.Block]int{} // 0 unvisited, 1 on stack, 2 done
	type frame struct {
		b  *cfg.Block
		ss []*cfg.Block
		i  int
	}
	stack := []frame{{b: g.Entry, ss: succs(g.Entry)}}
	state[g.Entry] = 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.i < len(f.ss) {
			s := f.ss[f.i]
			f.i++
			switch state[s] {
			case 0:
				state[s] = 1
				stack = append(stack, frame{b: s, ss: succs(s)})
			case 1:
				heads[s] = true
			}
			continue
		}
		state[f.b] = 2
		stack = stack[:len(stack)-1]
	}
	return heads
}

func succs(b *cfg.Block) []*cfg.Block {
	switch t := b.Term.(type) {
	case *cfg.Jump:
		return []*cfg.Block{t.To}
	case *cfg.If:
		return []*cfg.Block{t.Then, t.Else}
	case *cfg.Switch:
		out := make([]*cfg.Block, 0, len(t.Cases)+1)
		for _, c := range t.Cases {
			out = append(out, c.Target)
		}
		return append(out, t.Default)
	case *cfg.Choice:
		return t.Targets
	}
	return nil
}

// ---- transfer -------------------------------------------------------

func (a *Analysis) transfer(env *Env, s ast.Stmt) *Env {
	if env.dead {
		return env
	}
	switch s := s.(type) {
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
			// Tuple assignment: havoc every target.
			a.killCalls(env, s.Rhs[0])
			for _, l := range s.Lhs {
				a.assign(env, l, Top, true)
			}
			return env
		}
		// Go assignments are simultaneous: evaluate every rhs against
		// the pre-state before writing any lhs.
		ivs := make([]Interval, len(s.Rhs))
		for i, r := range s.Rhs {
			if s.Tok == token.ASSIGN || s.Tok == token.DEFINE {
				ivs[i] = a.Eval(r, env)
			} else {
				ivs[i] = a.binop(compoundOp(s.Tok), a.Eval(s.Lhs[i], env), a.Eval(r, env), a.typeOf(s.Lhs[i]))
			}
		}
		for _, r := range s.Rhs {
			a.killCalls(env, r)
		}
		for i, l := range s.Lhs {
			a.assign(env, l, ivs[i], true)
		}
	case *ast.IncDecStmt:
		one := Const(1)
		op := token.ADD
		if s.Tok == token.DEC {
			op = token.SUB
		}
		a.assign(env, s.X, a.binop(op, a.Eval(s.X, env), one, a.typeOf(s.X)), true)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					iv := Const(0) // integer zero value
					if i < len(vs.Values) {
						iv = a.Eval(vs.Values[i], env)
						a.killCalls(env, vs.Values[i])
					}
					a.assign(env, name, iv, true)
				}
			}
		}
	case *ast.ExprStmt:
		if isPanic(s.X, a.Info) {
			env.dead = true
			return env
		}
		a.killCalls(env, s.X)
	case *ast.RangeStmt:
		a.killCalls(env, s.X)
		havoc := func(e ast.Expr, iv Interval) {
			if e == nil {
				return
			}
			a.assign(env, e, iv, true)
		}
		key := Top
		if s.X != nil {
			switch a.typeOf(s.X).Underlying().(type) {
			case *types.Slice, *types.Array, *types.Pointer, *types.Basic:
				// index-like keys (slices, arrays, strings, range-over-int)
				key = Range(0, PosInf)
			}
		}
		havoc(s.Key, key)
		havoc(s.Value, Top)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			a.killCalls(env, r)
		}
	default:
		// go/defer/send statements: calls may run; their facts die.
		a.killCalls(env, s)
	}
	return env
}

// assign writes iv to an lvalue: tracked integer idents get the value,
// everything else just invalidates facts along its path.
func (a *Analysis) assign(env *Env, l ast.Expr, iv Interval, kill bool) {
	if kill {
		killFactsPath(env, lvaluePath(l))
	}
	id, ok := l.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	v, ok := a.Info.ObjectOf(id).(*types.Var)
	if !ok || !a.tracked(v) {
		return
	}
	env.set(v, ClampToType(iv, v.Type()))
}

// tracked reports whether the engine owns v's value: a function-local
// integer variable that is never address-taken or written by a nested
// literal. Package-level variables are out — any call could write them.
func (a *Analysis) tracked(v *types.Var) bool {
	if a.untracked[v] || !IsInteger(v.Type()) {
		return false
	}
	if p := v.Parent(); p != nil && p.Parent() == types.Universe {
		return false // package scope
	}
	return true
}

// lvaluePath renders the written location as a dotted selector path;
// writes through indexes report the path of the indexed expression, and
// unknown shapes report "" (kill everything).
func lvaluePath(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := lvaluePath(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.IndexExpr:
		return lvaluePath(e.X)
	case *ast.ParenExpr:
		return lvaluePath(e.X)
	}
	return ""
}

// killFactsPath drops every fact whose mentioned paths overlap the
// written path (segment-wise prefix in either direction). An empty path
// is an unknown write and clears all facts.
func killFactsPath(env *Env, path string) {
	if len(env.seq) == 0 {
		return
	}
	if path == "" {
		env.seq = nil
		return
	}
	for k, f := range env.seq {
		for _, p := range f.paths {
			if pathsOverlap(path, p) {
				delete(env.seq, k)
				break
			}
		}
	}
}

func pathsOverlap(a, b string) bool {
	return strings.HasPrefix(a, b+".") || strings.HasPrefix(b, a+".") || a == b
}

// killCalls applies call effects within node: facts mentioning names a
// callee may write are dropped (all facts when the callee or its modset
// is unknown). Builtins are pure except copy, which writes through its
// first argument.
func (a *Analysis) killCalls(env *Env, node ast.Node) {
	if node == nil || len(env.seq) == 0 {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if a.isConversion(call) {
			return true
		}
		if name, ok := builtinName(call, a.Info); ok {
			if name == "copy" && len(call.Args) > 0 {
				killFactsPath(env, lvaluePath(call.Args[0]))
			}
			return true
		}
		fn := a.callee(call)
		if fn != nil {
			if a.SeqSub != nil && a.SeqSub(fn) {
				return true
			}
			if a.SeqPred != nil {
				if _, ok := a.SeqPred(fn); ok {
					return true
				}
			}
			if a.Measure != nil && a.Measure(fn) {
				return true
			}
			if a.CallKills != nil {
				if writes, ok := a.CallKills(fn); ok {
					for k, f := range env.seq {
						if factMentions(f, writes) {
							delete(env.seq, k)
						}
					}
					return true
				}
			}
		}
		env.seq = nil
		return true
	})
}

// callee resolves a call through the configured hook, defaulting to
// direct ident/selector resolution through the type info.
func (a *Analysis) callee(call *ast.CallExpr) *types.Func {
	if a.Callee != nil {
		return a.Callee(call)
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := a.Info.ObjectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := a.Info.ObjectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}

func factMentions(f seqFact, names map[string]bool) bool {
	for _, p := range f.paths {
		for _, seg := range strings.Split(p, ".") {
			if names[seg] {
				return true
			}
		}
	}
	return false
}

func isPanic(e ast.Expr, info *types.Info) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	name, ok := builtinName(call, info)
	return ok && name == "panic"
}

func builtinName(call *ast.CallExpr, info *types.Info) (string, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	if _, ok := info.ObjectOf(id).(*types.Builtin); !ok {
		return "", false
	}
	return id.Name, true
}

func compoundOp(tok token.Token) token.Token {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD
	case token.SUB_ASSIGN:
		return token.SUB
	case token.MUL_ASSIGN:
		return token.MUL
	case token.QUO_ASSIGN:
		return token.QUO
	case token.REM_ASSIGN:
		return token.REM
	case token.AND_ASSIGN:
		return token.AND
	case token.OR_ASSIGN:
		return token.OR
	case token.XOR_ASSIGN:
		return token.XOR
	case token.SHL_ASSIGN:
		return token.SHL
	case token.SHR_ASSIGN:
		return token.SHR
	case token.AND_NOT_ASSIGN:
		return token.AND_NOT
	}
	return token.ILLEGAL
}
