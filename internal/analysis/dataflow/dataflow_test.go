package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strconv"
	"testing"

	"repro/internal/analysis/cfg"
)

// The test domain: the set of values variable x may hold, as a bitmask
// over small integers — a miniature of the statemachine analyzer's
// state mask. Transfer interprets `x = <literal>`, Branch narrows on
// x == k / x != k, Case narrows on switch x.
type vals uint64

func graphFor(t *testing.T, body string) *cfg.Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return cfg.New(f.Decls[0].(*ast.FuncDecl).Body)
}

func litBit(e ast.Expr) (vals, bool) {
	bl, ok := e.(*ast.BasicLit)
	if !ok || bl.Kind != token.INT {
		return 0, false
	}
	n, err := strconv.Atoi(bl.Value)
	if err != nil || n < 0 || n > 63 {
		return 0, false
	}
	return 1 << n, true
}

func isX(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "x"
}

func problem(universe vals) Problem[vals] {
	return Problem[vals]{
		Entry: universe,
		Join:  func(a, b vals) vals { return a | b },
		Equal: func(a, b vals) bool { return a == b },
		Transfer: func(b *cfg.Block, in vals) vals {
			out := in
			for _, s := range b.Nodes {
				as, ok := s.(*ast.AssignStmt)
				if !ok || len(as.Lhs) != 1 || !isX(as.Lhs[0]) {
					continue
				}
				if bit, ok := litBit(as.Rhs[0]); ok {
					out = bit
				}
			}
			return out
		},
		Branch: func(cond ast.Expr, out vals) (vals, vals) {
			be, ok := cond.(*ast.BinaryExpr)
			if !ok || !isX(be.X) {
				return out, out
			}
			bit, ok := litBit(be.Y)
			if !ok {
				return out, out
			}
			switch be.Op {
			case token.EQL:
				return out & bit, out &^ bit
			case token.NEQ:
				return out &^ bit, out & bit
			}
			return out, out
		},
		Case: func(tag ast.Expr, values []ast.Expr, isDefault bool, out vals) vals {
			if !isX(tag) {
				return out
			}
			var m vals
			for _, v := range values {
				if bit, ok := litBit(v); ok {
					m |= bit
				} else {
					return out // non-constant case defeats narrowing
				}
			}
			if isDefault {
				return out &^ m
			}
			return out & m
		},
	}
}

// factAt returns the solved entry fact of the block whose statements
// call the named function.
func factAt(t *testing.T, g *cfg.Graph, r *Result[vals], name string) vals {
	t.Helper()
	for _, b := range g.Blocks {
		for _, s := range b.Nodes {
			es, ok := s.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
				f, ok := r.Reached(b)
				if !ok {
					t.Fatalf("block calling %s not reached", name)
				}
				return f
			}
		}
	}
	t.Fatalf("no block calls %s", name)
	return 0
}

const universe = vals(0b1111) // x in {0,1,2,3}

func TestBranchNarrowing(t *testing.T) {
	g := graphFor(t, `
	if x == 1 {
		eq()
	} else {
		ne()
	}
	join()`)
	r := Forward(g, problem(universe))
	if f := factAt(t, g, r, "eq"); f != 0b0010 {
		t.Errorf("then fact = %04b, want 0010", f)
	}
	if f := factAt(t, g, r, "ne"); f != 0b1101 {
		t.Errorf("else fact = %04b, want 1101", f)
	}
	if f := factAt(t, g, r, "join"); f != universe {
		t.Errorf("join fact = %04b, want %04b", f, universe)
	}
}

// TestShortCircuitNarrowing: the cfg decomposes x != 0 && x != 1 into
// two leaf Ifs, so both narrowings stack on the then path.
func TestShortCircuitNarrowing(t *testing.T) {
	g := graphFor(t, `
	if x != 0 && x != 1 {
		high()
	}
	join()`)
	r := Forward(g, problem(universe))
	if f := factAt(t, g, r, "high"); f != 0b1100 {
		t.Errorf("conjunction fact = %04b, want 1100", f)
	}
}

func TestSwitchNarrowing(t *testing.T) {
	g := graphFor(t, `
	switch x {
	case 0, 1:
		low()
	case 2:
		mid()
	default:
		rest()
	}`)
	r := Forward(g, problem(universe))
	if f := factAt(t, g, r, "low"); f != 0b0011 {
		t.Errorf("case 0,1 fact = %04b, want 0011", f)
	}
	if f := factAt(t, g, r, "mid"); f != 0b0100 {
		t.Errorf("case 2 fact = %04b, want 0100", f)
	}
	// The default edge receives every case value for the complement.
	if f := factAt(t, g, r, "rest"); f != 0b1000 {
		t.Errorf("default fact = %04b, want 1000", f)
	}
}

// TestLoopFixpoint: facts grow monotonically around a back edge and the
// solver terminates with the join of all iterations.
func TestLoopFixpoint(t *testing.T) {
	g := graphFor(t, `
	x = 1
	for cond() {
		body()
		x = 2
	}
	after()`)
	r := Forward(g, problem(universe))
	// First iteration enters with {1}, later ones with {2}.
	if f := factAt(t, g, r, "body"); f != 0b0110 {
		t.Errorf("loop body fact = %04b, want 0110", f)
	}
	if f := factAt(t, g, r, "after"); f != 0b0110 {
		t.Errorf("after-loop fact = %04b, want 0110", f)
	}
}

// TestTransferKill: an assignment replaces the fact outright. The if
// forces a block boundary so the post-transfer fact is observable at
// sink's block entry.
func TestTransferKill(t *testing.T) {
	g := graphFor(t, `
	x = 3
	if cond() {
		sink()
	}`)
	r := Forward(g, problem(universe))
	if f := factAt(t, g, r, "sink"); f != 0b1000 {
		t.Errorf("post-assignment fact = %04b, want 1000", f)
	}
}

// TestUnreachedBlocks: blocks cut off by narrowing stay out of the
// result map — the no-bottom-element contract.
func TestUnreachedBlocks(t *testing.T) {
	g := graphFor(t, `
	x = 1
	if x == 2 {
		never()
	}
	join()`)
	p := problem(universe)
	// Make narrowing definitive: entry then x=1 gives {1}; x==2 edge
	// gets the empty mask. Treat empty as unreachable by skipping the
	// propagate — the solver itself still propagates a zero fact, so
	// assert the fact is empty rather than absent.
	r := Forward(g, p)
	for _, b := range g.Blocks {
		for _, s := range b.Nodes {
			es, ok := s.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "never" {
				if f, reached := r.Reached(b); reached && f != 0 {
					t.Errorf("impossible branch carries fact %04b, want empty", f)
				}
			}
		}
	}
	if f := factAt(t, g, r, "join"); f != 0b0010 {
		t.Errorf("join fact = %04b, want 0010", f)
	}
}
