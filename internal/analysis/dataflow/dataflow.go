// Package dataflow is a generic forward worklist solver over
// internal/analysis/cfg graphs.
//
// A client describes its abstract domain through Problem[L]: a join
// (must be an upper bound — the solver iterates to a fixed point and
// relies on monotone growth to terminate), an equality test, a block
// transfer function, and two optional edge refiners — Branch for If
// terminators and Case for Switch terminators — which is where a
// flow-sensitive client narrows facts by the condition that guards an
// edge (the statemachine analyzer intersects state masks there;
// hotpathalloc marks Trace.On() guard regions).
//
// Unreached blocks never run Transfer and contribute nothing to joins,
// so clients need no explicit bottom element.
package dataflow

import (
	"go/ast"

	"repro/internal/analysis/cfg"
)

// Problem describes one forward dataflow problem over lattice L.
type Problem[L any] struct {
	// Entry is the fact at the function entry.
	Entry L

	// Join combines facts arriving over multiple edges. It must be
	// commutative, associative, and produce an upper bound of both
	// arguments (otherwise the fixpoint may not terminate).
	Join func(a, b L) L

	// Equal reports whether two facts are the same (fixpoint test).
	Equal func(a, b L) bool

	// Transfer computes the fact at the end of a block from the fact at
	// its start, processing b.Nodes in order. It must be monotone.
	Transfer func(b *cfg.Block, in L) L

	// Branch refines the post-block fact for the two edges of an If
	// terminator. The condition expression's own evaluation effects
	// (calls inside it) must be applied here too — cond is not part of
	// any block's Nodes. Nil means both edges carry out unchanged.
	Branch func(cond ast.Expr, out L) (then, els L)

	// Case refines the fact on one edge of a Switch terminator. For a
	// case edge, values holds that clause's expressions and isDefault
	// is false; for the default edge, values holds EVERY case's
	// expressions (so a client can take the complement) and isDefault
	// is true. The tag's evaluation effects must be applied here (once
	// conceptually; the solver calls Case per edge with the same out,
	// which is safe for idempotent transfer effects). Nil means every
	// edge carries out unchanged.
	Case func(tag ast.Expr, values []ast.Expr, isDefault bool, out L) L
}

// Result holds the solved facts.
type Result[L any] struct {
	// In is the fact at each reached block's start; blocks not in the
	// map were never reached from the entry.
	In map[*cfg.Block]L
}

// Reached reports whether b was reached, and its entry fact.
func (r *Result[L]) Reached(b *cfg.Block) (L, bool) {
	l, ok := r.In[b]
	return l, ok
}

// Forward runs the worklist to a fixed point and returns the per-block
// entry facts.
func Forward[L any](g *cfg.Graph, p Problem[L]) *Result[L] {
	in := map[*cfg.Block]L{g.Entry: p.Entry}
	work := []*cfg.Block{g.Entry}
	queued := map[*cfg.Block]bool{g.Entry: true}

	propagate := func(to *cfg.Block, fact L) {
		cur, ok := in[to]
		if ok {
			joined := p.Join(cur, fact)
			if p.Equal(cur, joined) {
				return
			}
			in[to] = joined
		} else {
			in[to] = fact
		}
		if !queued[to] {
			queued[to] = true
			work = append(work, to)
		}
	}

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false

		out := p.Transfer(b, in[b])
		switch t := b.Term.(type) {
		case *cfg.Jump:
			propagate(t.To, out)
		case *cfg.If:
			thenFact, elseFact := out, out
			if p.Branch != nil {
				thenFact, elseFact = p.Branch(t.Cond, out)
			}
			propagate(t.Then, thenFact)
			propagate(t.Else, elseFact)
		case *cfg.Switch:
			var all []ast.Expr
			for _, c := range t.Cases {
				all = append(all, c.Values...)
			}
			for _, c := range t.Cases {
				fact := out
				if p.Case != nil {
					fact = p.Case(t.Tag, c.Values, false, out)
				}
				propagate(c.Target, fact)
			}
			fact := out
			if p.Case != nil {
				fact = p.Case(t.Tag, all, true, out)
			}
			propagate(t.Default, fact)
		case *cfg.Choice:
			for _, to := range t.Targets {
				propagate(to, out)
			}
		case nil:
			// Exit (or an unterminated island): no successors.
		}
	}
	return &Result[L]{In: in}
}
