// Package shardtest seeds one of each shardaffinity violation.
package shardtest

import (
	"executor"
	"flight"
)

var cached *executor.Conn // want "shard affinity"

var registry = map[int]*executor.Conn{} // want "shard affinity"

func spawn(e *executor.Engine) {
	c, err := e.Open()
	if err != nil {
		return
	}
	go pump(c)              // want "goroutine"
	go func() { ping(c) }() // want "goroutine"
	c.Close()
}

func pump(c *executor.Conn) {}

func ping(c *executor.Conn) {}

func send(e *executor.Engine, ch chan *executor.Conn) {
	c, err := e.Open()
	if err != nil {
		return
	}
	ch <- c // want "channel"
}

func stash(e *executor.Engine) {
	c, err := e.Open()
	if err != nil {
		return
	}
	cached = c      // want "package-level"
	registry[1] = c // want "package-level"
}

func observe(e *executor.Engine) {
	c, err := e.Open()
	if err != nil {
		return
	}
	flight.Watch(c) // want "observer"
	flight.Record(uint64(len(registry)))
	c.Close()
}

func indirect(e *executor.Engine) {
	c, err := e.Open()
	if err != nil {
		return
	}
	hold(c) // want "escapes through hold"
	c.Close()
}

func hold(c *executor.Conn) {
	cached = c // want "package-level"
}

func tcbLeak(e *executor.Engine) {
	c, err := e.Open()
	if err != nil {
		return
	}
	go tickTCB(c) // want "goroutine"
	c.Close()
}

func tickTCB(c *executor.Conn) {}
