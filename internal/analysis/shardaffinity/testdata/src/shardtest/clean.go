package shardtest

import (
	"executor"
	"flight"
)

// Legal uses: synchronous helpers, digests to observers, local
// wrappers, scalars crossing goroutines. Nothing here is reported.

func serve(e *executor.Engine) error {
	c, err := e.Open()
	if err != nil {
		return err
	}
	pump(c)
	flight.Record(digest(c))
	return c.Close()
}

func digest(c *executor.Conn) uint64 { return 7 }

type holder struct {
	c *executor.Conn
}

func wrap(e *executor.Engine) {
	c, err := e.Open()
	if err != nil {
		return
	}
	h := holder{c: c}
	h.c.Close()
}

func goScalar(n int, done chan int) {
	go func() { done <- n }()
}

func sendScalar(c *executor.Conn, stats chan uint64) {
	stats <- digest(c)
}
