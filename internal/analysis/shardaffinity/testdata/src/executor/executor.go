// Package executor is a miniature quasi-synchronous engine with the
// structural shape shardaffinity discovers: a connection type carrying
// the enqueue/perform funnel, per-connection state types reachable from
// it (affine), and a container engine (not affine — the sharding
// boundary itself).
package executor

type action func(*Conn)

type TCB struct {
	seq uint32
	q   []byte
}

type sendQueue struct {
	segs [][]byte
}

type Conn struct {
	tcb *TCB
	out sendQueue
	eng *Engine
}

func (c *Conn) enqueue(a action) { a(c) }
func (c *Conn) run()             {}
func (c *Conn) perform(a action) { a(c) }
func (c *Conn) Close() error     { return nil }

type Engine struct {
	conns map[int]*Conn
}

func (e *Engine) Open() (*Conn, error) {
	c := &Conn{tcb: &TCB{}, eng: e}
	e.conns[len(e.conns)] = c
	return c, nil
}
