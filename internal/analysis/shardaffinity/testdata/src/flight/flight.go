// Package flight is a stand-in observer: it may receive digests and
// scalars, never live connection state.
package flight

func Record(digest uint64) {}

func Watch(v any) {}
