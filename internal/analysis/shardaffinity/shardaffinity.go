// Package shardaffinity proves the machine-checked precondition for
// sharding the TCP engine (ROADMAP item 1): no per-connection state —
// no *Conn, no *tcb, nothing mutable reachable from one — ever flows
// out of the quasi-synchronous executor.
//
// The executor's discipline makes per-connection state single-threaded
// by construction: every action on a connection funnels through
// enqueue/run/perform on one goroutine. Sharding the engine N ways is
// safe exactly when that state never crosses the executor boundary —
// into a goroutine, a channel, a package-level variable, or an observer
// package (flight and seal may see digests, never live pointers). This
// pass is the proof: it computes the affine type set (the connection
// type plus every mutable same-package type reachable from its fields,
// stopping at connection *containers* — the engine and listener are the
// sharding boundary itself, not per-connection state) and reports every
// expression that moves an affine value across the boundary.
//
// Escape is checked both directly (go statements, channel sends, stores
// through package-level variables, observer calls, closures capturing
// affine variables into goroutines) and interprocedurally: passing an
// affine value to a function whose callgraph escape summary says the
// parameter reaches a global, channel, or goroutine is the same
// violation one call later. Returning an affine value is not flagged —
// the caller is still inside the synchronous frame.
package shardaffinity

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// Analyzer is the shardaffinity pass.
var Analyzer = &analysis.Analyzer{
	Name: "shardaffinity",
	Doc:  "per-connection state must stay inside the quasi-synchronous executor: no affine value may reach a goroutine, channel, package-level variable, or observer package",
	Run:  run,
}

// observerPackages may observe the engine but only through digests and
// scalars — handing them a live pointer would let them read connection
// state off-thread after sharding.
var observerPackages = map[string]bool{
	"flight": true,
	"seal":   true,
}

// escMask is the escape-summary evidence that convicts a call:
// return-escape is excluded, since the caller is still synchronous.
const escMask = callgraph.EscGlobal | callgraph.EscChannel | callgraph.EscGoroutine

// shape is the discovered executor surface.
type shape struct {
	conn    *types.Named
	execPkg *types.Package
	// affine is the per-connection state: conn plus every mutable
	// same-package named type reachable from its fields, containers
	// excluded.
	affine map[*types.Named]bool
	// containers caches reaches-a-connection answers for named types.
	containers map[*types.Named]bool
}

// buildShape finds the executor: the named type carrying the
// quasi-synchronous funnel (enqueue and perform methods). Searching
// imports too keeps the pass working when a client package is analyzed
// in isolation.
func buildShape(pkgs []*analysis.Package) *shape {
	var tpkgs []*types.Package
	seen := map[*types.Package]bool{}
	add := func(p *types.Package) {
		if p != nil && !seen[p] {
			seen[p] = true
			tpkgs = append(tpkgs, p)
		}
	}
	for _, p := range pkgs {
		add(p.Types)
	}
	for _, p := range pkgs {
		for _, imp := range p.Types.Imports() {
			add(imp)
		}
	}
	for _, tp := range tpkgs {
		scope := tp.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			var hasEnqueue, hasPerform bool
			for i := 0; i < named.NumMethods(); i++ {
				switch named.Method(i).Name() {
				case "enqueue":
					hasEnqueue = true
				case "perform":
					hasPerform = true
				}
			}
			if hasEnqueue && hasPerform {
				sh := &shape{
					conn:       named,
					execPkg:    tp,
					affine:     map[*types.Named]bool{named: true},
					containers: map[*types.Named]bool{},
				}
				sh.computeAffine()
				return sh
			}
		}
	}
	return nil
}

// computeAffine closes the affine set over the connection's fields:
// named same-package types whose values carry mutable state (structs,
// slices, maps, channels, pointers), stopping at containers and at
// package boundaries.
func (sh *shape) computeAffine() {
	visited := map[types.Type]bool{}
	var visit func(t types.Type)
	visit = func(t types.Type) {
		if t == nil || visited[t] {
			return
		}
		visited[t] = true
		switch t := t.(type) {
		case *types.Pointer:
			visit(t.Elem())
		case *types.Slice:
			visit(t.Elem())
		case *types.Array:
			visit(t.Elem())
		case *types.Map:
			visit(t.Elem())
		case *types.Chan:
			visit(t.Elem())
		case *types.Named:
			if t.Obj().Pkg() != sh.execPkg || sh.affine[t] || sh.isContainer(t) {
				return
			}
			switch t.Underlying().(type) {
			case *types.Struct, *types.Slice, *types.Map, *types.Chan, *types.Pointer:
				sh.affine[t] = true
			}
			visit(t.Underlying())
		case *types.Struct:
			for i := 0; i < t.NumFields(); i++ {
				visit(t.Field(i).Type())
			}
		}
	}
	visit(sh.conn.Underlying())
}

// isContainer reports whether a connection is reachable from t's
// fields: the engine's registry, a listener's half-open backlog, a
// client wrapper holding a connection. Containers sit at or above the
// sharding boundary, so they are not themselves affine.
func (sh *shape) isContainer(t *types.Named) bool {
	if got, ok := sh.containers[t]; ok {
		return got
	}
	sh.containers[t] = false // cycles resolve optimistically
	got := sh.reachesConn(t.Underlying(), map[types.Type]bool{})
	sh.containers[t] = got
	return got
}

func (sh *shape) reachesConn(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.Pointer:
		return sh.reachesConn(t.Elem(), seen)
	case *types.Slice:
		return sh.reachesConn(t.Elem(), seen)
	case *types.Array:
		return sh.reachesConn(t.Elem(), seen)
	case *types.Map:
		return sh.reachesConn(t.Elem(), seen)
	case *types.Chan:
		return sh.reachesConn(t.Elem(), seen)
	case *types.Named:
		if origin(t) == sh.conn {
			return true
		}
		return sh.reachesConn(t.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if sh.reachesConn(t.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

func origin(t *types.Named) *types.Named {
	if o := t.Origin(); o != nil {
		return o
	}
	return t
}

// isAffine reports whether a value of type t carries per-connection
// state: an affine named type, or anything that holds one. Containers
// break the recursion — moving the whole engine is not a per-connection
// escape.
func (sh *shape) isAffine(t types.Type) bool {
	return sh.affineType(t, map[types.Type]bool{})
}

func (sh *shape) affineType(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.Pointer:
		return sh.affineType(t.Elem(), seen)
	case *types.Slice:
		return sh.affineType(t.Elem(), seen)
	case *types.Array:
		return sh.affineType(t.Elem(), seen)
	case *types.Map:
		return sh.affineType(t.Elem(), seen)
	case *types.Chan:
		return sh.affineType(t.Elem(), seen)
	case *types.Named:
		o := origin(t)
		if sh.affine[o] {
			return true
		}
		if sh.isContainer(o) {
			return false
		}
		return sh.affineType(t.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if sh.affineType(t.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	shv := pass.Shared.Memo("shardaffinity.shape", func() any {
		return buildShape(pass.Shared.Packages)
	})
	sh, _ := shv.(*shape)
	if sh == nil {
		return nil, nil
	}
	if observerPackages[pass.Pkg.Name()] {
		return nil, nil
	}
	g := pass.Shared.Memo("callgraph", func() any {
		return callgraph.Build(pass.Shared.Packages)
	}).(*callgraph.Graph)
	pkg := pass.Shared.PackageOf(pass.Pkg)
	if pkg == nil {
		return nil, nil
	}
	c := &checker{sh: sh, pass: pass, pkg: pkg, graph: g, escapes: g.Escapes()}
	c.check()
	return nil, nil
}

type checker struct {
	sh      *shape
	pass    *analysis.Pass
	pkg     *analysis.Package
	graph   *callgraph.Graph
	escapes map[*types.Func]*callgraph.Summary
}

// qual renders type names package-qualified but path-free.
func (c *checker) qual(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// offender is one affine value found inside an expression.
type offender struct {
	name string
	typ  types.Type
	pos  token.Pos
}

// crossing decides whether evaluating e moves an affine value across a
// boundary: either e's own value is affine, or e contains a function
// literal capturing an affine variable — the closure carries the state
// wherever it goes. An affine variable that only feeds a scalar-typed
// subexpression (ch <- digest(c)) does not cross.
func (c *checker) crossing(e ast.Expr) *offender {
	if t := c.pkg.Info.TypeOf(e); t != nil && c.sh.isAffine(t) {
		return &offender{name: exprName(e), typ: t, pos: e.Pos()}
	}
	var best *offender
	ast.Inspect(e, func(x ast.Node) bool {
		lit, ok := x.(*ast.FuncLit)
		if !ok {
			return true
		}
		if off := c.captured(lit); off != nil && (best == nil || off.pos < best.pos) {
			best = off
		}
		return false
	})
	return best
}

// captured finds the earliest affine-typed variable a function literal
// closes over.
func (c *checker) captured(lit *ast.FuncLit) *offender {
	var best *offender
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.pkg.Info.Uses[id].(*types.Var)
		if !ok || !c.sh.isAffine(v.Type()) {
			return true
		}
		if best == nil || id.Pos() < best.pos {
			best = &offender{name: id.Name, typ: v.Type(), pos: id.Pos()}
		}
		return true
	})
	return best
}

// goCrossing decides what a go statement moves onto the new goroutine:
// its arguments (evaluated now, delivered there), a method-value
// receiver, or anything a spawned literal captures.
func (c *checker) goCrossing(call *ast.CallExpr) *offender {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if t := c.pkg.Info.TypeOf(sel.X); t != nil && c.sh.isAffine(t) {
			return &offender{name: exprName(sel.X), typ: t, pos: sel.X.Pos()}
		}
	}
	if off := c.crossing(call.Fun); off != nil {
		return off
	}
	for _, arg := range call.Args {
		if off := c.crossing(arg); off != nil {
			return off
		}
	}
	return nil
}

func exprName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return "value"
}

func (c *checker) check() {
	for _, f := range c.pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					v, ok := c.pkg.Info.Defs[name].(*types.Var)
					if !ok || !c.sh.isAffine(v.Type()) {
						continue
					}
					c.pass.Reportf(name.Pos(), "shard affinity: package-level %s holds %s — per-connection state must live inside its executor shard", name.Name, c.qual(v.Type()))
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if off := c.goCrossing(n.Call); off != nil {
					c.pass.Reportf(n.Pos(), "shard affinity: %s (%s) reaches a goroutine — per-connection state is pinned to its executor shard", off.name, c.qual(off.typ))
				}
			case *ast.SendStmt:
				if off := c.crossing(n.Value); off != nil {
					c.pass.Reportf(n.Pos(), "shard affinity: %s (%s) is sent on a channel — per-connection state is pinned to its executor shard", off.name, c.qual(off.typ))
				}
			case *ast.AssignStmt:
				c.checkAssign(n)
			case *ast.CallExpr:
				c.checkCall(n)
			}
			return true
		})
	}
}

// checkAssign flags stores of affine values through package-level
// variables (direct assignment, map insert, slice element, field of a
// global).
func (c *checker) checkAssign(s *ast.AssignStmt) {
	for i, lhs := range s.Lhs {
		base := baseIdent(lhs)
		if base == nil {
			continue
		}
		v, ok := c.pkg.Info.Uses[base].(*types.Var)
		if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
			continue
		}
		var rhs ast.Expr
		if len(s.Lhs) == len(s.Rhs) {
			rhs = s.Rhs[i]
		} else if len(s.Rhs) == 1 {
			rhs = s.Rhs[0]
		} else {
			continue
		}
		if off := c.crossing(rhs); off != nil {
			c.pass.Reportf(s.Pos(), "shard affinity: %s (%s) is stored in package-level %s — per-connection state is pinned to its executor shard", off.name, c.qual(off.typ), base.Name)
		}
	}
}

// baseIdent unwraps an assignment target to the identifier it writes
// through: registry[k], global.field, (*global) all root at the ident.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// checkCall flags affine arguments handed to observer packages, and —
// interprocedurally — to any function whose escape summary moves the
// parameter to a global, channel, or goroutine.
func (c *checker) checkCall(call *ast.CallExpr) {
	callee := callgraph.Callee(c.pkg.Info, call)
	if callee == nil {
		return
	}
	if callee.Pkg() != nil && observerPackages[callee.Pkg().Name()] && !observerPackages[c.pass.Pkg.Name()] {
		for _, arg := range call.Args {
			if t := c.pkg.Info.TypeOf(arg); t != nil && c.sh.isAffine(t) {
				c.pass.Reportf(arg.Pos(), "shard affinity: live %s passed to observer package %s — observers may see digests, never pointers", c.qual(t), callee.Pkg().Name())
				return
			}
		}
		return
	}
	// The executor package's own API is the sanctioned path INTO the
	// shard: Write, Close, enqueue and the action queue hand the
	// connection to the run loop by design, and the run loop is the
	// shard. Escape summaries convict only helpers declared outside
	// the executor; direct go/send/global crossings inside it are
	// still caught syntactically.
	if callee.Pkg() == c.sh.execPkg {
		return
	}
	sum := c.escapes[callee]
	if sum == nil {
		return
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if t := c.pkg.Info.TypeOf(sel.X); t != nil && c.sh.isAffine(t) {
			if kinds := sum.Recv & escMask; kinds != 0 {
				c.pass.Reportf(call.Pos(), "shard affinity: %s receiver escapes through %s (%s) — per-connection state is pinned to its executor shard", c.qual(t), callee.Name(), kinds.Describe())
			}
		}
	}
	for i, arg := range call.Args {
		t := c.pkg.Info.TypeOf(arg)
		if t == nil || !c.sh.isAffine(t) {
			continue
		}
		if kinds := sum.Param(i) & escMask; kinds != 0 {
			c.pass.Reportf(arg.Pos(), "shard affinity: %s argument escapes through %s (%s) — per-connection state is pinned to its executor shard", c.qual(t), callee.Name(), kinds.Describe())
		}
	}
}
