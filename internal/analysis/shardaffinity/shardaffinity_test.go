package shardaffinity

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestShardAffinity(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "executor", "shardtest")
}
