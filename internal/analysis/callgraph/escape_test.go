package callgraph

import (
	"go/types"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

func loadEscapePkg(t *testing.T) *analysis.Package {
	t.Helper()
	loader := load.NewLoader(load.TreeResolver{Root: "testdata"})
	pkgs, err := loader.Load("escapetest")
	if err != nil {
		t.Fatalf("loading testdata: %v", err)
	}
	return pkgs[0]
}

func summaryOf(t *testing.T, g *Graph, sums map[*types.Func]*Summary, name string) *Summary {
	t.Helper()
	s := sums[nodeNamed(t, g, name).Fn]
	if s == nil {
		t.Fatalf("no summary for %s", name)
	}
	return s
}

func TestEscapeSummaries(t *testing.T) {
	pkg := loadEscapePkg(t)
	g := Build([]*analysis.Package{pkg})
	sums := g.Escapes()

	cases := []struct {
		fn    string
		param int
		want  EscapeKind
	}{
		{"storesGlobal", 0, EscGlobal},
		{"sendsChannel", 0, EscChannel},
		{"spawns", 0, EscGoroutine},
		{"keeps", 0, 0},
		{"returns", 0, EscReturn},
		{"viaHelper", 0, EscGlobal},
		{"viaAlias", 0, EscChannel},
		{"viaFieldRead", 0, EscGlobal},
	}
	for _, c := range cases {
		if got := summaryOf(t, g, sums, c.fn).Param(c.param); got != c.want {
			t.Errorf("%s param %d escapes = %v (%s), want %v (%s)",
				c.fn, c.param, got, got.Describe(), c.want, c.want.Describe())
		}
	}
}

// TestEscapeInterfaceDispatch is the golden that would have caught a
// missed interface-dispatch edge: the escape in impl.Sink must be
// visible through a call on the interface.
func TestEscapeInterfaceDispatch(t *testing.T) {
	pkg := loadEscapePkg(t)
	g := Build([]*analysis.Package{pkg})
	sums := g.Escapes()

	if got := summaryOf(t, g, sums, "viaInterface").Param(1); got&EscGlobal == 0 {
		t.Errorf("viaInterface's p = %v (%s), want EscGlobal through interface dispatch",
			got, got.Describe())
	}
}

// TestEscapeMethodValue is the golden that would have caught a missed
// method-value edge: `f := s.Send; f(p)` must propagate Send's channel
// escape.
func TestEscapeMethodValue(t *testing.T) {
	pkg := loadEscapePkg(t)
	g := Build([]*analysis.Package{pkg})
	sums := g.Escapes()

	if got := summaryOf(t, g, sums, "viaMethodValue").Param(1); got&EscChannel == 0 {
		t.Errorf("viaMethodValue's p = %v (%s), want EscChannel through the stored method value",
			got, got.Describe())
	}
}

func TestEscapeReceiver(t *testing.T) {
	pkg := loadEscapePkg(t)
	g := Build([]*analysis.Package{pkg})
	sums := g.Escapes()

	if got := summaryOf(t, g, sums, "Leak").Recv; got&EscGlobal == 0 {
		t.Errorf("Leak's receiver = %v, want EscGlobal", got)
	}
	if got := summaryOf(t, g, sums, "viaRecv").Param(0); got&EscGlobal == 0 {
		t.Errorf("viaRecv's r = %v, want EscGlobal through the receiver position", got)
	}
}

// TestValueEdges: the call through the stored method value appears as a
// ValueEdge (and not as a plain Edge, preserving existing clients).
func TestValueEdges(t *testing.T) {
	pkg := loadEscapePkg(t)
	g := Build([]*analysis.Package{pkg})

	n := nodeNamed(t, g, "viaMethodValue")
	var names []string
	for _, e := range n.ValueEdges {
		names = append(names, e.Callee.Name())
	}
	if len(names) != 1 || names[0] != "Send" {
		t.Errorf("viaMethodValue's value edges = %v, want [Send]", names)
	}
	for _, e := range n.Edges {
		if e.Callee.Name() == "Send" {
			t.Errorf("Send leaked into plain Edges; it must stay a ValueEdge")
		}
	}
}

// TestImpls resolves the interface method to its concrete
// implementation, class-hierarchy style.
func TestImpls(t *testing.T) {
	pkg := loadEscapePkg(t)
	g := Build([]*analysis.Package{pkg})

	var ifaceSink *types.Func
	for _, e := range nodeNamed(t, g, "viaInterface").Edges {
		if e.Callee.Name() == "Sink" {
			ifaceSink = e.Callee
		}
	}
	if ifaceSink == nil {
		t.Fatal("no Sink edge from viaInterface")
	}
	impls := g.Impls(ifaceSink)
	if len(impls) != 1 || impls[0].Fn.Name() != "Sink" {
		t.Fatalf("Impls(I.Sink) = %v, want the one concrete Sink", impls)
	}
	if recv := impls[0].Fn.Type().(*types.Signature).Recv(); recv == nil {
		t.Fatal("resolved implementation has no receiver")
	}
}
