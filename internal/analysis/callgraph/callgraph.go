// Package callgraph builds a module-wide static call graph over the
// packages the analysis driver loaded.
//
// Nodes are function declarations (keyed by *types.Func — the loader
// caches packages, so object identity holds across the module) plus
// anonymous function literals (keyed by *ast.FuncLit). Edges are the
// statically resolvable call sites in a node's own body: direct calls
// through an identifier and method calls through a selector. Calls
// through stored function values and interface methods resolve to a
// callee *types.Func with no declaration node — they appear as edges
// but cannot be descended into, which matches the structure of this
// stack: the asynchronous seams are exactly the callback registrations
// the clients use as roots.
//
// A nested function literal's calls are NOT edges of its enclosing
// function (the literal runs at some other time); the literal is a
// child node. Walk, however, descends into child literals by default —
// a closure built on a path is almost always invoked on that path, and
// both clients (quasisync, noblock) want that conservative reading.
package callgraph

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Node is one function — a declaration or a function literal.
type Node struct {
	// Fn is the declared function object; nil for literals.
	Fn *types.Func
	// Decl is the declaration; nil for literals.
	Decl *ast.FuncDecl
	// Lit is the literal; nil for declarations.
	Lit *ast.FuncLit
	// Pkg is the loaded package the node's body lives in.
	Pkg *analysis.Package

	// Edges are the static call sites in this node's body, in source
	// order, excluding those inside nested literals.
	Edges []Edge
	// Lits are the function literals nested directly in this node's
	// body (not inside deeper literals).
	Lits []*Node
}

// Edge is one call site with its resolved callee.
type Edge struct {
	Site   *ast.CallExpr
	Callee *types.Func
}

// Name returns a diagnostic label for the node.
func (n *Node) Name() string {
	if n.Fn != nil {
		return n.Fn.Name()
	}
	return "a function literal"
}

// Graph is the module-wide call graph.
type Graph struct {
	// Funcs maps every declared function with a body to its node.
	Funcs map[*types.Func]*Node
	// Lits maps every function literal to its node.
	Lits map[*ast.FuncLit]*Node
	// Nodes lists all nodes (declarations before the literals nested in
	// them), in load order.
	Nodes []*Node
}

// Build constructs the graph over every loaded package. The result is
// typically memoized driver-wide via analysis.Shared.Memo.
func Build(pkgs []*analysis.Package) *Graph {
	g := &Graph{
		Funcs: map[*types.Func]*Node{},
		Lits:  map[*ast.FuncLit]*Node{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{Fn: fn, Decl: fd, Pkg: pkg}
				g.Funcs[fn] = n
				g.Nodes = append(g.Nodes, n)
				g.scanBody(n, fd.Body)
			}
		}
	}
	return g
}

// scanBody fills n.Edges and n.Lits from body, recursing to build
// literal child nodes.
func (g *Graph) scanBody(n *Node, body ast.Node) {
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			child := &Node{Lit: x, Pkg: n.Pkg}
			g.Lits[x] = child
			n.Lits = append(n.Lits, child)
			g.Nodes = append(g.Nodes, child)
			g.scanBody(child, x.Body)
			return false
		case *ast.CallExpr:
			if fn := Callee(n.Pkg.Info, x); fn != nil {
				n.Edges = append(n.Edges, Edge{Site: x, Callee: fn})
			}
		}
		return true
	})
}

// Callee resolves the statically-known target of a call, or nil. The
// result may be a function with no declaration in the module (stdlib,
// interface method).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// Visit decides what to do with one call site during a Walk. Returning
// false stops the walk from descending into the callee's body (it is a
// boundary); the callee's own edges are then not visited from this
// site.
type Visit func(from *Node, site *ast.CallExpr, callee *types.Func) (descend bool)

// Walk traverses the graph from root, applying visit to every static
// call site reachable through it. Nested literals of a visited node are
// traversed as if executed in place. Each declared function's body is
// visited at most once per Walk.
func (g *Graph) Walk(root *Node, visit Visit) {
	seen := map[*Node]bool{}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		for _, e := range n.Edges {
			if !visit(n, e.Site, e.Callee) {
				continue
			}
			walk(g.Funcs[e.Callee])
		}
		for _, lit := range n.Lits {
			walk(lit)
		}
	}
	walk(root)
}

// RootFor returns the node a callback-registration argument expression
// resolves to: a literal's node, or the node of the function/method a
// plain identifier or selector names. Nil when the argument is not a
// statically-known function.
func (g *Graph) RootFor(info *types.Info, arg ast.Expr) *Node {
	switch a := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		return g.Lits[a]
	case *ast.Ident:
		if fn, ok := info.Uses[a].(*types.Func); ok {
			return g.Funcs[fn]
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[a.Sel].(*types.Func); ok {
			return g.Funcs[fn]
		}
	}
	return nil
}
