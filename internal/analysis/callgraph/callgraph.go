// Package callgraph builds a module-wide static call graph over the
// packages the analysis driver loaded.
//
// Nodes are function declarations (keyed by *types.Func — the loader
// caches packages, so object identity holds across the module) plus
// anonymous function literals (keyed by *ast.FuncLit). Edges are the
// statically resolvable call sites in a node's own body: direct calls
// through an identifier and method calls through a selector. Calls
// through stored function values and interface methods resolve to a
// callee *types.Func with no declaration node — they appear as edges
// but cannot be descended into, which matches the structure of this
// stack: the asynchronous seams are exactly the callback registrations
// the clients use as roots.
//
// A nested function literal's calls are NOT edges of its enclosing
// function (the literal runs at some other time); the literal is a
// child node. Walk, however, descends into child literals by default —
// a closure built on a path is almost always invoked on that path, and
// both clients (quasisync, noblock) want that conservative reading.
package callgraph

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Node is one function — a declaration or a function literal.
type Node struct {
	// Fn is the declared function object; nil for literals.
	Fn *types.Func
	// Decl is the declaration; nil for literals.
	Decl *ast.FuncDecl
	// Lit is the literal; nil for declarations.
	Lit *ast.FuncLit
	// Pkg is the loaded package the node's body lives in.
	Pkg *analysis.Package

	// Edges are the static call sites in this node's body, in source
	// order, excluding those inside nested literals.
	Edges []Edge
	// ValueEdges are call sites through local function-valued variables
	// whose bindings were statically collectible: `f := t.M; f()` yields
	// an edge to M here, one per binding when f was assigned more than
	// once. They are kept apart from Edges so clients opt in — the
	// escape summaries consume them; the walk-based passes keep their
	// original (registration-rooted) semantics.
	ValueEdges []Edge
	// Lits are the function literals nested directly in this node's
	// body (not inside deeper literals).
	Lits []*Node
}

// Edge is one call site with its resolved callee.
type Edge struct {
	Site   *ast.CallExpr
	Callee *types.Func
}

// Name returns a diagnostic label for the node.
func (n *Node) Name() string {
	if n.Fn != nil {
		return n.Fn.Name()
	}
	return "a function literal"
}

// Graph is the module-wide call graph.
type Graph struct {
	// Funcs maps every declared function with a body to its node.
	Funcs map[*types.Func]*Node
	// Lits maps every function literal to its node.
	Lits map[*ast.FuncLit]*Node
	// Nodes lists all nodes (declarations before the literals nested in
	// them), in load order.
	Nodes []*Node

	escapes map[*types.Func]*Summary
	impls   map[*types.Func][]*Node
}

// Build constructs the graph over every loaded package. The result is
// typically memoized driver-wide via analysis.Shared.Memo.
func Build(pkgs []*analysis.Package) *Graph {
	g := &Graph{
		Funcs: map[*types.Func]*Node{},
		Lits:  map[*ast.FuncLit]*Node{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{Fn: fn, Decl: fd, Pkg: pkg}
				g.Funcs[fn] = n
				g.Nodes = append(g.Nodes, n)
				g.scanBody(n, fd.Body)
				g.resolveValueEdges(n)
			}
		}
	}
	return g
}

// resolveValueEdges finds call sites through local function-valued
// variables in a declared function's frame (nested literals share it)
// and records every statically collectible binding as a ValueEdge on
// the node owning the call site. Bindings are gathered flow-
// insensitively: each assignment of a named function or method value to
// an identifier adds a target; a variable assigned twice carries both.
func (g *Graph) resolveValueEdges(root *Node) {
	info := root.Pkg.Info
	bindings := map[types.Object][]*types.Func{}
	bind := func(lhs, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		var fn *types.Func
		switch r := ast.Unparen(rhs).(type) {
		case *ast.Ident:
			fn, _ = info.Uses[r].(*types.Func)
		case *ast.SelectorExpr:
			fn, _ = info.Uses[r.Sel].(*types.Func)
		}
		if fn != nil {
			bindings[obj] = append(bindings[obj], fn)
		}
	}
	ast.Inspect(root.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					bind(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i := range n.Names {
				if i < len(n.Values) {
					bind(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	if len(bindings) == 0 {
		return
	}
	var attach func(owner *Node, body ast.Node)
	attach = func(owner *Node, body ast.Node) {
		ast.Inspect(body, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				attach(g.Lits[x], x.Body)
				return false
			case *ast.CallExpr:
				id, ok := ast.Unparen(x.Fun).(*ast.Ident)
				if !ok {
					return true
				}
				obj := info.Uses[id]
				for _, fn := range bindings[obj] {
					owner.ValueEdges = append(owner.ValueEdges, Edge{Site: x, Callee: fn})
				}
			}
			return true
		})
	}
	attach(root, root.Decl.Body)
}

// scanBody fills n.Edges and n.Lits from body, recursing to build
// literal child nodes.
func (g *Graph) scanBody(n *Node, body ast.Node) {
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			child := &Node{Lit: x, Pkg: n.Pkg}
			g.Lits[x] = child
			n.Lits = append(n.Lits, child)
			g.Nodes = append(g.Nodes, child)
			g.scanBody(child, x.Body)
			return false
		case *ast.CallExpr:
			if fn := Callee(n.Pkg.Info, x); fn != nil {
				n.Edges = append(n.Edges, Edge{Site: x, Callee: fn})
			}
		}
		return true
	})
}

// Callee resolves the statically-known target of a call, or nil. The
// result may be a function with no declaration in the module (stdlib,
// interface method).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// OrderedCalls collects the call expressions under n in evaluation
// order (post-order: arguments before the call), skipping nested
// function literals — they run at some other time. Flow-sensitive
// clients (statemachine-style abstract interpreters) fold call effects
// in this order.
func OrderedCalls(n ast.Node) []*ast.CallExpr {
	var out []*ast.CallExpr
	var stack []ast.Node
	ast.Inspect(n, func(x ast.Node) bool {
		if x == nil {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if call, ok := top.(*ast.CallExpr); ok {
				out = append(out, call)
			}
			return true
		}
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		stack = append(stack, x)
		return true
	})
	return out
}

// Visit decides what to do with one call site during a Walk. Returning
// false stops the walk from descending into the callee's body (it is a
// boundary); the callee's own edges are then not visited from this
// site.
type Visit func(from *Node, site *ast.CallExpr, callee *types.Func) (descend bool)

// Walk traverses the graph from root, applying visit to every static
// call site reachable through it. Nested literals of a visited node are
// traversed as if executed in place. Each declared function's body is
// visited at most once per Walk.
func (g *Graph) Walk(root *Node, visit Visit) {
	seen := map[*Node]bool{}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		for _, e := range n.Edges {
			if !visit(n, e.Site, e.Callee) {
				continue
			}
			walk(g.Funcs[e.Callee])
		}
		for _, lit := range n.Lits {
			walk(lit)
		}
	}
	walk(root)
}

// RootFor returns the node a callback-registration argument expression
// resolves to: a literal's node, or the node of the function/method a
// plain identifier or selector names. Nil when the argument is not a
// statically-known function.
func (g *Graph) RootFor(info *types.Info, arg ast.Expr) *Node {
	switch a := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		return g.Lits[a]
	case *ast.Ident:
		if fn, ok := info.Uses[a].(*types.Func); ok {
			return g.Funcs[fn]
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[a.Sel].(*types.Func); ok {
			return g.Funcs[fn]
		}
	}
	return nil
}
