// Interprocedural pointer-escape summaries over the call graph.
//
// A summary answers, per function and per parameter (receiver
// included): can a value passed here flow somewhere that outlives the
// call — a package-level variable, a channel, a goroutine, or the
// caller via a return value? The shardaffinity analyzer uses the first
// three kinds as proof obligations: connection state handed to a callee
// whose summary says the parameter escapes has left the
// quasi-synchronous executor.
//
// The analysis proves *escapes*, not non-escape: a parameter with an
// empty summary merely has no statically visible escape. Aliasing is
// flow-insensitive within a function body (x := p makes x carry p's
// parameter bits; reference-typed field reads and index expressions
// propagate — field-sensitively, a pointer loaded out of a parameter
// still points into it), and summaries propagate through calls to a
// fixed point: direct calls, method calls, calls through local
// function-valued variables (ValueEdges), and interface dispatch
// resolved class-hierarchy style via Impls. Calls whose callee cannot
// be resolved contribute nothing — unknown is not an escape, which
// keeps the summaries usable as findings rather than noise.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// EscapeKind is a bitmask of the ways a parameter's value can outlive
// the call it was passed to.
type EscapeKind uint8

const (
	// EscGlobal: stored (directly or via an alias) into a package-level
	// variable, or into something reachable from one.
	EscGlobal EscapeKind = 1 << iota
	// EscChannel: sent on a channel.
	EscChannel
	// EscGoroutine: passed to or captured by a function started with go.
	EscGoroutine
	// EscReturn: returned to the caller. Not transitive through calls —
	// a callee returning its argument does not by itself move the value
	// anywhere the caller could not already reach.
	EscReturn
)

// Describe renders the mask for diagnostics, strongest kind first.
func (k EscapeKind) Describe() string {
	var parts []string
	if k&EscGoroutine != 0 {
		parts = append(parts, "a goroutine")
	}
	if k&EscChannel != 0 {
		parts = append(parts, "a channel")
	}
	if k&EscGlobal != 0 {
		parts = append(parts, "a package-level variable")
	}
	if k&EscReturn != 0 {
		parts = append(parts, "a return value")
	}
	if len(parts) == 0 {
		return "nowhere"
	}
	return strings.Join(parts, ", ")
}

// Summary holds the escape facts of one declared function: Recv for the
// receiver (zero for plain functions), Params by declared order.
type Summary struct {
	Recv   EscapeKind
	Params []EscapeKind
}

// Param returns the escape kinds of parameter i, mapping out-of-range
// indexes onto the final (variadic) parameter.
func (s *Summary) Param(i int) EscapeKind {
	if len(s.Params) == 0 {
		return 0
	}
	if i >= len(s.Params) {
		i = len(s.Params) - 1
	}
	return s.Params[i]
}

// Escapes computes (and caches) parameter-escape summaries for every
// declared function in the graph, iterating call-site propagation to a
// fixed point. Kinds only ever grow, so the iteration terminates.
func (g *Graph) Escapes() map[*types.Func]*Summary {
	if g.escapes != nil {
		return g.escapes
	}
	g.escapes = map[*types.Func]*Summary{}
	for fn := range g.Funcs {
		sig := fn.Type().(*types.Signature)
		g.escapes[fn] = &Summary{Params: make([]EscapeKind, sig.Params().Len())}
	}
	for changed := true; changed; {
		changed = false
		for fn, node := range g.Funcs {
			if g.escapeScan(node, g.escapes[fn]) {
				changed = true
			}
		}
	}
	return g.escapes
}

// escapeScan recomputes one function's summary against the current
// summaries of its callees, merging into sum; reports whether sum grew.
func (e *Graph) escapeScan(node *Node, sum *Summary) bool {
	info := node.Pkg.Info
	sig := node.Fn.Type().(*types.Signature)

	// Bit 0 is the receiver, bit i+1 is parameter i.
	alias := map[types.Object]uint64{}
	if r := sig.Recv(); r != nil {
		alias[r] = 1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		alias[sig.Params().At(i)] = 1 << (i + 1)
	}

	refBits := func(x ast.Expr) uint64 { return escRefBits(info, alias, x) }

	// Flow-insensitive alias closure over every assignment in the body
	// (nested literals included — they read and write the same frame).
	for again := true; again; {
		again = false
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok {
						continue
					}
					obj := info.Defs[id]
					if obj == nil {
						obj = info.Uses[id]
					}
					if obj == nil {
						continue
					}
					if bits := refBits(n.Rhs[i]); bits&^alias[obj] != 0 {
						alias[obj] |= bits
						again = true
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i >= len(n.Values) {
						break
					}
					obj := info.Defs[name]
					if obj == nil {
						continue
					}
					if bits := refBits(n.Values[i]); bits&^alias[obj] != 0 {
						alias[obj] |= bits
						again = true
					}
				}
			}
			return true
		})
	}

	kinds := make([]EscapeKind, 1+sig.Params().Len())
	mark := func(bits uint64, k EscapeKind) {
		for b := 0; b < len(kinds); b++ {
			if bits&(1<<b) != 0 {
				kinds[b] |= k
			}
		}
	}

	// ValueEdges let calls through stored function values participate in
	// summary propagation alongside statically resolved callees.
	valueTargets := map[*ast.CallExpr][]*types.Func{}
	collectValue := func(n *Node) {
		for _, ve := range n.ValueEdges {
			valueTargets[ve.Site] = append(valueTargets[ve.Site], ve.Callee)
		}
	}
	collectValue(node)
	var lits func(n *Node)
	lits = func(n *Node) {
		for _, l := range n.Lits {
			collectValue(l)
			lits(l)
		}
	}
	lits(node)

	applyCall := func(call *ast.CallExpr, extra EscapeKind) {
		var callees []*types.Func
		if fn := Callee(info, call); fn != nil {
			if e.Funcs[fn] != nil {
				callees = append(callees, fn)
			} else if impls := e.Impls(fn); len(impls) > 0 {
				for _, impl := range impls {
					callees = append(callees, impl.Fn)
				}
			}
		} else {
			callees = valueTargets[call]
		}
		const transitive = EscGlobal | EscChannel | EscGoroutine
		for i, arg := range call.Args {
			bits := refBits(arg)
			if bits == 0 {
				continue
			}
			mark(bits, extra)
			for _, callee := range callees {
				if cs := e.escapes[callee]; cs != nil {
					mark(bits, cs.Param(i)&transitive)
				}
			}
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if bits := refBits(sel.X); bits != 0 {
				mark(bits, extra)
				for _, callee := range callees {
					if cs := e.escapes[callee]; cs != nil {
						mark(bits, cs.Recv&transitive)
					}
				}
			}
		}
	}

	// Event scan: sends, go statements, stores to package-level
	// variables, returns (outer frame only), and calls.
	var scan func(n ast.Node, inLit bool)
	scan = func(root ast.Node, inLit bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				scan(n.Body, true)
				return false
			case *ast.SendStmt:
				mark(refBits(n.Value), EscChannel)
			case *ast.GoStmt:
				applyCall(n.Call, EscGoroutine)
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					ast.Inspect(lit.Body, func(x ast.Node) bool {
						if id, ok := x.(*ast.Ident); ok {
							if obj := info.Uses[id]; obj != nil {
								mark(alias[obj], EscGoroutine)
							}
						}
						return true
					})
				} else if bits := refBits(n.Call.Fun); bits != 0 {
					// go m() on a stored method value bound to a parameter.
					mark(bits, EscGoroutine)
				}
				return false
			case *ast.ReturnStmt:
				if !inLit {
					for _, r := range n.Results {
						mark(refBits(r), EscReturn)
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if !escGlobalLHS(info, lhs) {
						continue
					}
					if i < len(n.Rhs) {
						mark(escIdentBits(info, alias, n.Rhs[i]), EscGlobal)
					} else if len(n.Rhs) == 1 {
						mark(escIdentBits(info, alias, n.Rhs[0]), EscGlobal)
					}
				}
			case *ast.CallExpr:
				applyCall(n, 0)
			}
			return true
		})
	}
	scan(node.Decl.Body, false)

	grew := false
	merge := func(dst *EscapeKind, k EscapeKind) {
		if k&^*dst != 0 {
			*dst |= k
			grew = true
		}
	}
	merge(&sum.Recv, kinds[0])
	for i := range sum.Params {
		merge(&sum.Params[i], kinds[i+1])
	}
	return grew
}

// escRefBits returns the parameter-alias bits a value computed by x may
// carry. Reference-typed selector and index reads propagate (a pointer
// loaded from a parameter still points into it); basic-typed reads do
// not (an int copied out of a struct carries nothing).
func escRefBits(info *types.Info, alias map[types.Object]uint64, x ast.Expr) uint64 {
	switch x := x.(type) {
	case *ast.Ident:
		if obj := info.Uses[x]; obj != nil {
			return alias[obj]
		}
	case *ast.ParenExpr:
		return escRefBits(info, alias, x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return escRefBits(info, alias, x.X)
		}
	case *ast.StarExpr:
		return escRefBits(info, alias, x.X)
	case *ast.SelectorExpr:
		if escRefType(info, x) {
			return escRefBits(info, alias, x.X)
		}
	case *ast.IndexExpr:
		if escRefType(info, x) {
			return escRefBits(info, alias, x.X)
		}
	case *ast.SliceExpr:
		return escRefBits(info, alias, x.X)
	case *ast.TypeAssertExpr:
		return escRefBits(info, alias, x.X)
	case *ast.CompositeLit:
		var bits uint64
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			bits |= escRefBits(info, alias, elt)
		}
		return bits
	}
	return 0
}

// escRefType reports whether x's type can carry a reference into the
// value it was read from.
func escRefType(info *types.Info, x ast.Expr) bool {
	tv, ok := info.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface, *types.Signature:
		return true
	}
	return false
}

// escIdentBits is the blanket form of escRefBits for global stores: any
// aliased identifier appearing anywhere under x taints the store
// (appends, composite literals, map inserts all count).
func escIdentBits(info *types.Info, alias map[types.Object]uint64, x ast.Expr) uint64 {
	var bits uint64
	ast.Inspect(x, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				bits |= alias[obj]
			}
		}
		return true
	})
	return bits
}

// escGlobalLHS reports whether an assignment target writes through a
// package-level variable.
func escGlobalLHS(info *types.Info, lhs ast.Expr) bool {
	for {
		switch x := lhs.(type) {
		case *ast.ParenExpr:
			lhs = x.X
		case *ast.IndexExpr:
			lhs = x.X
		case *ast.StarExpr:
			lhs = x.X
		case *ast.SelectorExpr:
			lhs = x.X
		case *ast.Ident:
			v, ok := info.Uses[x].(*types.Var)
			if !ok {
				return false
			}
			return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
		default:
			return false
		}
	}
}

// Impls resolves an interface method to the module's concrete methods
// that may be its dynamic target (class-hierarchy analysis): every
// declared method with the same name whose receiver type implements the
// interface. Results are cached on the graph.
func (g *Graph) Impls(m *types.Func) []*Node {
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	if g.impls == nil {
		g.impls = map[*types.Func][]*Node{}
	}
	if cached, ok := g.impls[m]; ok {
		return cached
	}
	var out []*Node
	for fn, node := range g.Funcs {
		fsig := fn.Type().(*types.Signature)
		if fsig.Recv() == nil || fn.Name() != m.Name() {
			continue
		}
		recv := fsig.Recv().Type()
		if _, isIface := recv.Underlying().(*types.Interface); isIface {
			continue
		}
		if types.Implements(recv, iface) || types.Implements(types.NewPointer(recv), iface) {
			out = append(out, node)
		}
	}
	g.impls[m] = out
	return out
}
