package callgraph

import (
	"go/ast"
	"go/types"
	"sort"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

func loadTestPkg(t *testing.T) *analysis.Package {
	t.Helper()
	loader := load.NewLoader(load.TreeResolver{Root: "testdata"})
	pkgs, err := loader.Load("callgraphtest")
	if err != nil {
		t.Fatalf("loading testdata: %v", err)
	}
	return pkgs[0]
}

func nodeNamed(t *testing.T, g *Graph, name string) *Node {
	t.Helper()
	for fn, n := range g.Funcs {
		if fn.Name() == name {
			return n
		}
	}
	t.Fatalf("no node named %s", name)
	return nil
}

func calleeNames(n *Node) []string {
	var out []string
	for _, e := range n.Edges {
		out = append(out, e.Callee.Name())
	}
	return out
}

func TestBuildEdges(t *testing.T) {
	pkg := loadTestPkg(t)
	g := Build([]*analysis.Package{pkg})

	// a calls b then c, in source order.
	if got := calleeNames(nodeNamed(t, g, "a")); len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Errorf("a's edges = %v, want [b c]", got)
	}

	// Method calls resolve through the selector.
	if got := calleeNames(nodeNamed(t, g, "e")); len(got) != 1 || got[0] != "M" {
		t.Errorf("e's edges = %v, want [M]", got)
	}
}

// TestNestedLiteral: the literal's call to d is NOT an edge of b — the
// literal is a child node with its own edge. The call through the
// stored variable is statically unresolvable and produces no edge.
func TestNestedLiteral(t *testing.T) {
	pkg := loadTestPkg(t)
	g := Build([]*analysis.Package{pkg})

	b := nodeNamed(t, g, "b")
	if got := calleeNames(b); len(got) != 0 {
		t.Errorf("b's own edges = %v, want none (literal body excluded, helper() unresolvable)", got)
	}
	if len(b.Lits) != 1 {
		t.Fatalf("b has %d literal children, want 1", len(b.Lits))
	}
	if got := calleeNames(b.Lits[0]); len(got) != 1 || got[0] != "d" {
		t.Errorf("literal's edges = %v, want [d]", got)
	}
	if b.Lits[0].Name() != "a function literal" {
		t.Errorf("literal name = %q", b.Lits[0].Name())
	}
}

// TestWalk descends through declared callees and nested literals.
func TestWalk(t *testing.T) {
	pkg := loadTestPkg(t)
	g := Build([]*analysis.Package{pkg})

	var seen []string
	g.Walk(nodeNamed(t, g, "a"), func(from *Node, site *ast.CallExpr, callee *types.Func) bool {
		seen = append(seen, callee.Name())
		return true
	})
	sort.Strings(seen)
	// a->b, a->c, and d via b's literal.
	want := []string{"b", "c", "d"}
	if len(seen) != len(want) {
		t.Fatalf("walk visited %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("walk visited %v, want %v", seen, want)
		}
	}
}

// TestWalkBoundary: returning false stops descent into the callee, so
// nothing behind the boundary is visited.
func TestWalkBoundary(t *testing.T) {
	pkg := loadTestPkg(t)
	g := Build([]*analysis.Package{pkg})

	var seen []string
	g.Walk(nodeNamed(t, g, "a"), func(from *Node, site *ast.CallExpr, callee *types.Func) bool {
		seen = append(seen, callee.Name())
		return callee.Name() != "b"
	})
	for _, s := range seen {
		if s == "d" {
			t.Errorf("walk crossed the b boundary into d: %v", seen)
		}
	}
}

// TestRootFor resolves the three registration-argument shapes: a named
// function, a bound method, and a literal.
func TestRootFor(t *testing.T) {
	pkg := loadTestPkg(t)
	g := Build([]*analysis.Package{pkg})

	use := nodeNamed(t, g, "use")
	var args []ast.Expr
	for _, e := range use.Edges {
		if e.Callee.Name() == "register" {
			args = append(args, e.Site.Args[0])
		}
	}
	if len(args) != 3 {
		t.Fatalf("found %d register calls, want 3", len(args))
	}

	if n := g.RootFor(pkg.Info, args[0]); n == nil || n.Name() != "c" {
		t.Errorf("RootFor(c) = %v", n)
	}
	if n := g.RootFor(pkg.Info, args[1]); n == nil || n.Name() != "M" {
		t.Errorf("RootFor(t.M) = %v", n)
	}
	if n := g.RootFor(pkg.Info, args[2]); n == nil || n.Lit == nil {
		t.Errorf("RootFor(literal) = %v", n)
	}
}
