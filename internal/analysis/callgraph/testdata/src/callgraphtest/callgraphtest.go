// Package callgraphtest has a known call structure the callgraph unit
// tests assert against.
package callgraphtest

func a() { b(); c() }

func b() {
	helper := func() { d() }
	helper()
}

func c() {}
func d() {}

type T struct{}

func (t T) M() { d() }

func e(t T) { t.M() }

func register(f func()) { _ = f }

func use(t T) {
	register(c)
	register(t.M)
	register(func() { d() })
}
