// Package escapetest has known escape shapes the callgraph escape
// summaries are asserted against, including the two call-edge shapes a
// naive graph misses: calls through stored method values and interface
// dispatch.
package escapetest

type T struct{ n int }

var global *T
var globalR *R
var sink = make(chan *T, 1)

// storesGlobal's parameter escapes to a package-level variable.
func storesGlobal(p *T) { global = p }

// sendsChannel's parameter escapes to a channel.
func sendsChannel(p *T) { sink <- p }

// spawns's parameter escapes to a goroutine by literal capture.
func spawns(p *T) {
	go func() { _ = p.n }()
}

// keeps reads its parameter but leaks nothing.
func keeps(p *T) int { return p.n }

// returns escapes only as a return value.
func returns(p *T) *T { return p }

// viaHelper escapes transitively through storesGlobal.
func viaHelper(p *T) { storesGlobal(p) }

// viaAlias escapes through a local alias.
func viaAlias(p *T) {
	q := p
	sink <- q
}

// box holds a pointer; a pointer loaded from a parameter still points
// into it, so storing the field escapes the parameter.
type box struct{ t *T }

func viaFieldRead(b *box) { global = b.t }

// I's Sink is dispatched dynamically; its one implementation escapes
// the parameter, so callers through the interface inherit that fact.
type I interface{ Sink(p *T) }

type impl struct{}

func (impl) Sink(p *T) { global = p }

func viaInterface(i I, p *T) { i.Sink(p) }

// sender.Send is called through a stored method value; without value
// edges the call is invisible and the channel escape would be missed.
type sender struct{}

func (sender) Send(p *T) { sink <- p }

func viaMethodValue(s sender, p *T) {
	f := s.Send
	f(p)
}

// R's Leak escapes its receiver; callers propagate through the
// receiver position.
type R struct{ n int }

func (r *R) Leak() { globalR = r }

func viaRecv(r *R) { r.Leak() }
