// Package load parses and type-checks packages for the analysis driver
// using only the standard library: go/build for build-constraint-aware
// file lists, go/parser + go/types for checking, and the compiler's
// source importer for the standard library. It resolves this module's own
// import paths by walking the tree, so it works offline — no module
// proxy, no export data.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Resolver maps an import path to the directory holding its sources.
// Paths it does not claim fall through to the standard library importer.
type Resolver interface {
	Resolve(importPath string) (dir string, ok bool)
}

// ModuleResolver resolves import paths inside one Go module rooted at
// Root with module path ModPath.
type ModuleResolver struct {
	Root    string
	ModPath string
}

func (m ModuleResolver) Resolve(path string) (string, bool) {
	if path == m.ModPath {
		return m.Root, true
	}
	if rest, ok := strings.CutPrefix(path, m.ModPath+"/"); ok {
		return filepath.Join(m.Root, filepath.FromSlash(rest)), true
	}
	return "", false
}

// TreeResolver resolves import paths GOPATH-style against Root/src — the
// layout analysistest uses for its testdata packages.
type TreeResolver struct {
	Root string
}

func (t TreeResolver) Resolve(path string) (string, bool) {
	dir := filepath.Join(t.Root, "src", filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		return dir, true
	}
	return "", false
}

// Loader loads and type-checks packages, caching by import path. It
// implements types.Importer, so packages it loads can import each other.
type Loader struct {
	Resolver Resolver
	// IncludeTests adds in-package _test.go files of directly loaded
	// packages (dependencies always load without tests).
	IncludeTests bool

	fset    *token.FileSet
	cache   map[string]*analysis.Package
	loading map[string]bool
	stdlib  types.Importer
}

// NewLoader returns a loader over the given resolver.
func NewLoader(r Resolver) *Loader {
	return &Loader{
		Resolver: r,
		fset:     token.NewFileSet(),
		cache:    map[string]*analysis.Package{},
		loading:  map[string]bool{},
	}
}

// Fset returns the file set all loaded packages share.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import implements types.Importer for the type checker's benefit.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.Resolver.Resolve(path); ok {
		pkg, err := l.load(path, false)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if l.stdlib == nil {
		l.stdlib = importer.ForCompiler(l.fset, "source", nil)
	}
	return l.stdlib.Import(path)
}

// Load loads the named import paths (which the resolver must claim) as
// root packages, honoring IncludeTests.
func (l *Loader) Load(paths ...string) ([]*analysis.Package, error) {
	var out []*analysis.Package
	for _, p := range paths {
		pkg, err := l.load(p, l.IncludeTests)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

func (l *Loader) load(path string, includeTests bool) (*analysis.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, ok := l.Resolver.Resolve(path)
	if !ok {
		return nil, fmt.Errorf("cannot resolve %q", path)
	}
	names, err := goFiles(dir, includeTests)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: no Go files in %s", path, dir)
	}

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErr error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if typeErr != nil {
		return nil, typeErr
	}
	if err != nil {
		return nil, err
	}

	pkg := &analysis.Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.cache[path] = pkg
	return pkg, nil
}

// goFiles lists the buildable Go sources of dir in deterministic order,
// applying the usual build constraints via go/build.
func goFiles(dir string, includeTests bool) ([]string, error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, err
	}
	names := append([]string{}, bp.GoFiles...)
	if includeTests {
		names = append(names, bp.TestGoFiles...)
	}
	sort.Strings(names)
	return names, nil
}

// LoadModule loads the packages matched by patterns within the module
// that contains dir. Patterns follow the go tool's shape: "./..." and
// "./x/..." walk; "./x" names one directory. Directories named testdata
// or vendor, and hidden or underscore-prefixed directories, are skipped.
func LoadModule(dir string, includeTests bool, patterns ...string) ([]*analysis.Package, *Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, nil, err
	}
	l := NewLoader(ModuleResolver{Root: root, ModPath: modPath})
	l.IncludeTests = includeTests

	seen := map[string]bool{}
	var paths []string
	add := func(d string) error {
		names, err := goFiles(d, false)
		if err != nil || len(names) == 0 {
			return err // nil for dirs with no Go files
		}
		rel, err := filepath.Rel(root, d)
		if err != nil {
			return err
		}
		p := modPath
		if rel != "." {
			p = modPath + "/" + filepath.ToSlash(rel)
		}
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
		return nil
	}

	for _, pat := range patterns {
		base, walk := strings.CutSuffix(pat, "...")
		base = filepath.Join(dir, strings.TrimSuffix(base, "/"))
		if !walk {
			if err := add(base); err != nil {
				return nil, nil, err
			}
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return add(p)
		})
		if err != nil {
			return nil, nil, err
		}
	}
	pkgs, err := l.Load(paths...)
	return pkgs, l, err
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod above %s", dir)
		}
		d = parent
	}
}
