// Package singledoor exercises the singledoor analyzer: Conn.state may
// be written only inside (*Conn).setState (and seeded in newConn).
package singledoor

type State int

const (
	StateClosed State = iota
	StateListen
	StateEstab
)

type Conn struct {
	state State
	other int
}

// newConn may seed the field: a connection is born Closed, which is not
// a transition.
func newConn() *Conn {
	return &Conn{state: StateClosed}
}

// setState is the single door.
func (c *Conn) setState(to State) {
	c.state = to
}

func violations(c *Conn) {
	c.state = StateEstab // want "write to Conn.state outside"
	p := &c.state        // want "address of Conn.state taken"
	_ = p
	c.state++                     // want "write to Conn.state outside"
	d := Conn{state: StateListen} // want "Conn literal sets state outside newConn"
	_ = d
}

func swap(a, b *Conn) {
	a.state, b.other = b.state, 1 // want "write to Conn.state outside"
}
