package singledoor

// No want comments: the approved idioms — transitioning through
// setState, reading the field, and writing unguarded fields — produce no
// diagnostics.

func approved(c *Conn) {
	c.setState(StateEstab)
	if c.state == StateEstab { // reads are free
		c.other = 7 // other fields are unguarded
	}
	d := newConn()
	d.setState(StateListen)
}
