package singledoor_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/singledoor"
)

func TestSingledoor(t *testing.T) {
	analysistest.Run(t, "testdata", singledoor.Analyzer, "singledoor")
}
