// Package singledoor enforces the single-door rule on the TCP connection
// state field: every transition of Conn.state must pass through
// (*Conn).setState. PR 1 made setState the one place that keeps the
// RFC 2012 connection-table counters (CurrEstab, ActiveOpens,
// PassiveOpens, AttemptFails, EstabResets) and the structured event
// record exact by construction; a direct write anywhere else silently
// corrupts that accounting. The constructor may still seed the field in
// its composite literal (a connection is born Closed, which is not a
// transition).
package singledoor

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Configuration: the guarded struct/field and the functions allowed to
// touch it.
const (
	structName = "Conn"
	fieldName  = "state"
	doorFunc   = "setState" // may assign c.state
	ctorFunc   = "newConn"  // may seed state in a Conn composite literal
)

// Analyzer is the singledoor pass.
var Analyzer = &analysis.Analyzer{
	Name: "singledoor",
	Doc:  "require every write of Conn.state to go through (*Conn).setState",
	Run:  run,
}

// isConnType reports whether t (after stripping pointers) is a named
// struct type called Conn that has a `state` field — the shape the rule
// guards, wherever it is declared.
func isConnType(t types.Type) bool {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != structName {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == fieldName {
			return true
		}
	}
	return false
}

// isStateSelector reports whether e is a selector for the guarded field.
func isStateSelector(info *types.Info, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != fieldName {
		return false
	}
	tv, ok := info.Types[sel.X]
	return ok && isConnType(tv.Type)
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if isStateSelector(pass.TypesInfo, lhs) && name != doorFunc {
					pass.Reportf(lhs.Pos(),
						"write to %s.%s outside (*%s).%s; every state transition must pass through the single door",
						structName, fieldName, structName, doorFunc)
				}
			}
		case *ast.IncDecStmt:
			if isStateSelector(pass.TypesInfo, n.X) && name != doorFunc {
				pass.Reportf(n.X.Pos(),
					"write to %s.%s outside (*%s).%s; every state transition must pass through the single door",
					structName, fieldName, structName, doorFunc)
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" && isStateSelector(pass.TypesInfo, n.X) {
				pass.Reportf(n.X.Pos(),
					"address of %s.%s taken; aliasing the field lets writes bypass (*%s).%s",
					structName, fieldName, structName, doorFunc)
			}
		case *ast.CompositeLit:
			tv, ok := pass.TypesInfo.Types[n]
			if !ok || !isConnType(tv.Type) || name == ctorFunc {
				return true
			}
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok && key.Name == fieldName {
					pass.Reportf(kv.Pos(),
						"%s literal sets %s outside %s; construct through %s and transition through (*%s).%s",
						structName, fieldName, ctorFunc, ctorFunc, structName, doorFunc)
				}
			}
		}
		return true
	})
}
