// Package allowtest exercises //foxvet:allow directive scoping against
// a toy analyzer that reports every integer literal.
package allowtest

type cfg struct{ a, b, c int }

// One allow in the doc comment covers the whole multi-line composite
// literal — no per-line directives needed.
//
//foxvet:allow toy
var suppressed = cfg{
	a: 1,
	b: 2,
	c: 3,
}

var reported = cfg{
	a: 4, // want "integer literal"
	b: 5, // want "integer literal"
}

// A trailing directive on the declaration's opening line also covers
// the whole declaration.
var trailing = cfg{ //foxvet:allow toy
	a: 6,
	b: 7,
}

//foxvet:allow toy
func wholeFunc() int {
	x := 8
	return x
}

func lineOnly() int {
	x := 9  //foxvet:allow toy
	y := 10 // want "integer literal"
	return x + y
}

// Inside a grouped declaration, a spec-level doc directive scopes to
// that one spec.
var (
	//foxvet:allow toy
	okSpec = cfg{
		a: 11,
	}
	badSpec = cfg{
		a: 12, // want "integer literal"
	}
)
