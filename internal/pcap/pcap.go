// Package pcap writes classic libpcap capture files (the 24-byte global
// header plus per-packet records, link type Ethernet) from frames tapped
// off the simulated wire, with the virtual clock as the timestamp source.
// A capture of a simulated run opens in Wireshark/tcpdump exactly like a
// capture of a real one — the simulation analogue of clipping an analyzer
// onto the paper's isolated Ethernet.
package pcap

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"repro/internal/sim"
)

const (
	magic       = 0xa1b2c3d4
	versionMaj  = 2
	versionMin  = 4
	snapLen     = 65535
	linkTypeEth = 1
)

// Writer streams capture records to an io.Writer.
type Writer struct {
	w       io.Writer
	err     error
	packets int
}

// NewWriter writes the global header and returns the writer. All
// subsequent errors are sticky and reported by Err.
func NewWriter(w io.Writer) *Writer {
	pw := &Writer{w: w}
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	binary.LittleEndian.PutUint16(hdr[4:6], versionMaj)
	binary.LittleEndian.PutUint16(hdr[6:8], versionMin)
	// thiszone and sigfigs stay zero.
	binary.LittleEndian.PutUint32(hdr[16:20], snapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], linkTypeEth)
	_, pw.err = w.Write(hdr[:])
	return pw
}

// WritePacket appends one frame stamped with the given virtual time.
func (pw *Writer) WritePacket(at sim.Time, frame []byte) {
	if pw.err != nil {
		return
	}
	n := len(frame)
	if n > snapLen {
		n = snapLen
	}
	var rec [16]byte
	ts := time.Duration(at)
	binary.LittleEndian.PutUint32(rec[0:4], uint32(ts/time.Second))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(ts%time.Second/time.Microsecond))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(n))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(frame)))
	if _, pw.err = pw.w.Write(rec[:]); pw.err != nil {
		return
	}
	if _, pw.err = pw.w.Write(frame[:n]); pw.err == nil {
		pw.packets++
	}
}

// Packets reports how many records were written successfully.
func (pw *Writer) Packets() int { return pw.packets }

// Err returns the first write error, if any.
func (pw *Writer) Err() error { return pw.err }

// String describes the writer state.
func (pw *Writer) String() string {
	return fmt.Sprintf("pcap[%d packets, err=%v]", pw.packets, pw.err)
}
