package pcap_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"repro/foxnet"
	"repro/internal/pcap"
	"repro/internal/sim"
)

func TestGlobalHeader(t *testing.T) {
	var buf bytes.Buffer
	pcap.NewWriter(&buf)
	b := buf.Bytes()
	if len(b) != 24 {
		t.Fatalf("header length %d", len(b))
	}
	if binary.LittleEndian.Uint32(b[0:4]) != 0xa1b2c3d4 {
		t.Fatal("bad magic")
	}
	if binary.LittleEndian.Uint16(b[4:6]) != 2 || binary.LittleEndian.Uint16(b[6:8]) != 4 {
		t.Fatal("bad version")
	}
	if binary.LittleEndian.Uint32(b[20:24]) != 1 {
		t.Fatal("link type not Ethernet")
	}
}

func TestRecordFormatAndTimestamps(t *testing.T) {
	var buf bytes.Buffer
	w := pcap.NewWriter(&buf)
	frame := []byte{1, 2, 3, 4, 5}
	at := sim.Time(3*time.Second + 250*time.Millisecond)
	w.WritePacket(at, frame)
	if w.Packets() != 1 || w.Err() != nil {
		t.Fatalf("packets=%d err=%v", w.Packets(), w.Err())
	}
	rec := buf.Bytes()[24:]
	if binary.LittleEndian.Uint32(rec[0:4]) != 3 {
		t.Fatalf("ts_sec = %d", binary.LittleEndian.Uint32(rec[0:4]))
	}
	if binary.LittleEndian.Uint32(rec[4:8]) != 250000 {
		t.Fatalf("ts_usec = %d", binary.LittleEndian.Uint32(rec[4:8]))
	}
	if binary.LittleEndian.Uint32(rec[8:12]) != 5 || binary.LittleEndian.Uint32(rec[12:16]) != 5 {
		t.Fatal("lengths wrong")
	}
	if !bytes.Equal(rec[16:], frame) {
		t.Fatal("frame bytes wrong")
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n--
	return len(p), nil
}

func TestStickyError(t *testing.T) {
	w := pcap.NewWriter(&failWriter{n: 1}) // header succeeds
	w.WritePacket(0, []byte("x"))
	if w.Err() == nil {
		t.Fatal("error not captured")
	}
	w.WritePacket(0, []byte("y")) // must be a no-op
	if w.Packets() != 0 {
		t.Fatalf("packets = %d after failure", w.Packets())
	}
}

// TestCaptureOfLiveRun taps a real simulated conversation and checks the
// capture parses record-by-record with plausible Ethernet frames inside.
func TestCaptureOfLiveRun(t *testing.T) {
	var buf bytes.Buffer
	s := foxnet.NewScheduler(foxnet.SchedulerConfig{})
	var w *pcap.Writer
	s.Run(func() {
		net := foxnet.NewNetwork(s, foxnet.WireConfig{}, 2)
		w = pcap.NewWriter(&buf)
		net.Tap(func(from string, data []byte) { w.WritePacket(s.Now(), data) })
		net.Host(1).TCP.Listen(80, func(c *foxnet.Conn) foxnet.Handler { return foxnet.Handler{} })
		conn, err := net.Host(0).TCP.Open(net.Host(1).Addr, 80, foxnet.Handler{})
		if err != nil {
			t.Fatal(err)
		}
		conn.Write([]byte("captured"))
		s.Sleep(time.Second)
	})
	if w.Err() != nil {
		t.Fatal(w.Err())
	}
	if w.Packets() < 5 { // ARP pair + SYN/SYNACK/ACK at least
		t.Fatalf("captured only %d packets", w.Packets())
	}
	// Walk the records.
	b := buf.Bytes()[24:]
	count := 0
	var lastTS uint64
	for len(b) > 0 {
		if len(b) < 16 {
			t.Fatal("truncated record header")
		}
		incl := binary.LittleEndian.Uint32(b[8:12])
		ts := uint64(binary.LittleEndian.Uint32(b[0:4]))*1e6 + uint64(binary.LittleEndian.Uint32(b[4:8]))
		if ts < lastTS {
			t.Fatal("timestamps not monotone")
		}
		lastTS = ts
		if int(incl) > len(b)-16 {
			t.Fatal("record overruns buffer")
		}
		frame := b[16 : 16+incl]
		if len(frame) < 18 {
			t.Fatalf("runt frame in capture: %d bytes", len(frame))
		}
		count++
		b = b[16+incl:]
	}
	if count != w.Packets() {
		t.Fatalf("walked %d records, writer says %d", count, w.Packets())
	}
}
