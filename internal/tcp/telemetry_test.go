package tcp_test

// Integration tests for the telemetry plane's central promise: attaching
// it changes nothing the simulation can see. The same lossy transfer
// runs unobserved and telemetered and must finish at the same virtual
// instant having sent the same segments — while the telemetered run's
// histograms, series, and profile actually fill up.

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// telemetryTransfer runs one deterministic transfer (slightly lossy
// wire, so retransmission and RTT paths execute) with the given plane
// (nil = unobserved) and reports when it finished and what it sent.
func telemetryTransfer(t *testing.T, tl *telemetry.Telemetry) (doneAt sim.Time, segs, rexmits uint64) {
	t.Helper()
	const n = 150_000
	runPair(t, wire.Config{Loss: 0.03, Seed: 9}, tcp.Config{Telemetry: tl},
		func(s *sim.Scheduler, a, b tcpHost) {
			var server *tcp.Conn
			b.TCP.Listen(80, func(c *tcp.Conn) tcp.Handler {
				server = c
				return tcp.Handler{} // no Data handler: the Read path
			})
			conn, err := a.TCP.Open(b.A, 80, tcp.Handler{})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			finished := false
			cond := sim.NewCond(s)
			s.Fork("reader", func() {
				buf := make([]byte, n)
				if _, err := server.ReadFull(buf); err != nil {
					t.Errorf("ReadFull: %v", err)
				}
				finished = true
				cond.Signal()
			})
			conn.Write(make([]byte, n))
			for !finished {
				cond.Wait()
			}
			doneAt = s.Now()
			st := a.TCP.Stats()
			segs, rexmits = st.SegsSent, st.Retransmits
		})
	return doneAt, segs, rexmits
}

func TestTelemetryBitIdentical(t *testing.T) {
	offAt, offSegs, offRex := telemetryTransfer(t, nil)
	tl := telemetry.New(telemetry.Options{SampleEveryNS: 100_000})
	onAt, onSegs, onRex := telemetryTransfer(t, tl)

	if onAt != offAt || onSegs != offSegs || onRex != offRex {
		t.Fatalf("telemetered run diverged: off (t=%d segs=%d rex=%d) vs on (t=%d segs=%d rex=%d)",
			offAt, offSegs, offRex, onAt, onSegs, onRex)
	}
	if offRex == 0 {
		t.Fatal("scenario should exercise retransmission (raise loss or bytes)")
	}

	// The run really was observed: every surface is populated.
	if tl.Action.Count() == 0 {
		t.Error("action-latency histogram is empty")
	}
	if tl.RTT.Count() == 0 {
		t.Error("RTT histogram is empty")
	}
	if tl.Read.Count() == 0 {
		t.Error("read-latency histogram is empty")
	}
	if tl.Write.Count() == 0 {
		t.Error("write-latency histogram is empty")
	}
	var actions uint64
	for k := telemetry.ActKind(0); k < telemetry.NumActKinds; k++ {
		actions += tl.Prof.Count(k)
	}
	if actions != tl.Action.Count() {
		t.Errorf("profiler recorded %d actions, histogram %d — every drained action hits both",
			actions, tl.Action.Count())
	}
	series := tl.Series()
	if len(series) != 2 {
		t.Fatalf("got %d series, want 2 (one per connection; both hosts share the plane here)", len(series))
	}
	for _, sr := range series {
		if sr.Total() == 0 {
			t.Errorf("series %s took no samples", sr.Name())
		}
		pts := sr.Points()
		for i := 1; i < len(pts); i++ {
			if pts[i].At < pts[i-1].At {
				t.Fatalf("series %s not time-ordered: %d after %d", sr.Name(), pts[i].At, pts[i-1].At)
			}
		}
	}
	// The sender's series saw a real congestion window.
	var sawCwnd bool
	for _, sr := range series {
		for _, p := range sr.Points() {
			if p.Cwnd > 0 && p.RTO > 0 {
				sawCwnd = true
			}
		}
	}
	if !sawCwnd {
		t.Error("no sampled point carries cwnd and RTO")
	}
}

// TestTelemetryDirectDispatch: with the to_do queue bypassed there is no
// door to observe, so New must drop the plane entirely.
func TestTelemetryDirectDispatch(t *testing.T) {
	tl := telemetry.New(telemetry.Options{})
	runPair(t, wire.Config{}, tcp.Config{DirectDispatch: true, Telemetry: tl},
		func(s *sim.Scheduler, a, b tcpHost) {
			var rc collector
			b.TCP.Listen(80, func(c *tcp.Conn) tcp.Handler { return rc.handler() })
			conn, err := a.TCP.Open(b.A, 80, tcp.Handler{})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			conn.Write(make([]byte, 5000))
			s.Sleep(2_000_000_000)
			if rc.buf.Len() != 5000 {
				t.Fatalf("received %d bytes, want 5000", rc.buf.Len())
			}
		})
	if tl.Action.Count() != 0 || len(tl.Series()) != 0 {
		t.Fatalf("DirectDispatch run touched the plane: %d actions, %d series",
			tl.Action.Count(), len(tl.Series()))
	}
}
