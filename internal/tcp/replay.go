package tcp

// Deterministic replay: re-execute a flight journal against a fresh
// endpoint and verify, at every drained action, that the reconstructed
// TCB evolves exactly as the recorded deltas say it did. This is the
// paper's test-by-TCB-comparison methodology applied to whole runs: the
// journal is the specification, the real Receive/Send/Resend/State code
// is the machine under test, and any disagreement — a nondeterminism, a
// state-machine bug, or journal corruption — surfaces as a Divergence.
//
// The driver re-injects only the journal's root causes: packet-caused
// enqueues are rebuilt from the recorded segment digests, timer-caused
// enqueues from the recorded timer ids, and user operations are mirrored
// from their uop records. Every other enqueue must be produced by the
// replayed machine itself, which the driver verifies by popping the real
// to_do queue at each beg record and comparing action name and
// arguments against the recorded enqueue.

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"repro/internal/basis"
	"repro/internal/flight"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// replayAddr is the lower-layer peer address stand-in; its String form
// is the recorded address text, so connection names match the journal.
type replayAddr string

func (a replayAddr) String() string { return string(a) }

// nullNet is the protocol.Network a replayed endpoint runs over: the
// recorded MTU (so MSS calculations match), no headroom, and a Send that
// drops everything — the journal already tells us what arrives.
type nullNet struct {
	mtu  int
	addr replayAddr
}

func (n *nullNet) LocalAddr() protocol.Address                       { return n.addr }
func (n *nullNet) Attach(h protocol.Handler)                         {}
func (n *nullNet) Send(protocol.Address, *basis.Packet) error        { return nil }
func (n *nullNet) MTU() int                                          { return n.mtu }
func (n *nullNet) Headroom() int                                     { return 0 }
func (n *nullNet) Tailroom() int                                     { return 0 }
func (n *nullNet) PseudoHeaderChecksum(protocol.Address, int) uint16 { return 0 }

// Divergence is one disagreement between the journal and the replayed
// machine.
type Divergence struct {
	Index int    // index of the journal record that exposed it
	Seq   uint64 // action sequence number involved, when known
	Conn  string
	What  string
}

func (d Divergence) String() string {
	return fmt.Sprintf("record %d, conn %s, action #%d: %s", d.Index, d.Conn, d.Seq, d.What)
}

// ReplayResult summarizes one journal's replay.
type ReplayResult struct {
	Host        string
	Records     int
	Actions     int // actions re-performed and delta-verified
	Conns       int // connections reconstructed
	Workers     int // shards used (0 for a serial replay)
	Divergences []Divergence
}

// replayExpect is one recorded enqueue awaiting its beg.
type replayExpect struct {
	seq    uint64
	action string
	args   string
}

// replayConn is the driver's per-connection bookkeeping around the real
// *Conn being replayed.
type replayConn struct {
	c       *Conn
	exp     []replayExpect // recorded enqueues, in order
	expHead int
	pending replayExpect // action whose beg has been seen
	inBeg   bool
	pre     tcbSnap
}

// ReplayJournal re-executes one host's journal. A non-nil error means
// the journal is structurally unusable (no header, bad config); a
// non-empty Divergences list means the journal and the machine disagree.
// Replay stops at the first diverging record.
func ReplayJournal(recs []flight.Record) (*ReplayResult, error) {
	if len(recs) == 0 || recs[0].Kind != flight.KindHdr {
		return nil, fmt.Errorf("journal does not start with a hdr record")
	}
	hdr := &recs[0]
	var rc recordedConfig
	if err := json.Unmarshal(hdr.Cfg, &rc); err != nil {
		return nil, fmt.Errorf("hdr config: %w", err)
	}
	if hdr.MTU <= headerLen {
		return nil, fmt.Errorf("hdr MTU %d is not a usable lower-layer MTU", hdr.MTU)
	}
	s := sim.New(sim.Config{})
	t := New(s, &nullNet{mtu: hdr.MTU, addr: "replay"}, rc.config())
	t.replay = true

	res := &ReplayResult{Host: hdr.Host, Records: len(recs)}
	conns := map[string]*replayConn{}
	var scratch []byte

	div := func(index int, seqN uint64, conn, format string, args ...any) {
		res.Divergences = append(res.Divergences, Divergence{
			Index: index, Seq: seqN, Conn: conn,
			What: fmt.Sprintf(format, args...),
		})
	}

	for i := 1; i < len(recs); i++ {
		if len(res.Divergences) > 0 {
			break
		}
		rec := &recs[i]
		// Charge the clock up to this record's timestamp. Replay can only
		// lag live time (live-only costs such as receive-side checksum
		// charges happen between records), so positive catch-up is exact.
		switch rec.Kind {
		case flight.KindOpen, flight.KindUop, flight.KindEnq, flight.KindBeg:
			if d := sim.Duration(sim.Time(rec.At) - s.Now()); d > 0 {
				s.Charge(d)
			}
		}
		switch rec.Kind {
		case flight.KindSeal:
			// Chain attestation, not machine history: foxreplay -verify
			// checks seals before replay ever starts.
			continue

		case flight.KindFault:
			// Scripted fault-plane timeline (internal/fault): pure
			// observation of what the wire was doing, not an action the
			// machine performed. Replay runs over a null net, so the
			// fault has already had its effect on the recorded history.
			continue

		case flight.KindHdr:
			div(i, 0, "", "duplicate hdr record")

		case flight.KindOpen:
			c, err := t.replayOpen(rec)
			if err != nil {
				div(i, rec.Seq, rec.Conn, "%v", err)
				continue
			}
			conns[rec.Conn] = &replayConn{c: c}

		case flight.KindUop:
			if rec.Op == "open" {
				// The open record that follows carries the connection.
				continue
			}
			rcn := conns[rec.Conn]
			if rcn == nil {
				div(i, rec.Seq, rec.Conn, "user %s on a connection the journal never opened", rec.Op)
				continue
			}
			if err := rcn.c.replayUop(rec); err != nil {
				div(i, rec.Seq, rec.Conn, "%v", err)
			}

		case flight.KindEnq:
			rcn := conns[rec.Conn]
			if rcn == nil {
				div(i, rec.Seq, rec.Conn, "enqueue %s on a connection the journal never opened", rec.Action)
				continue
			}
			// Root causes are re-injected by the driver; act/user-caused
			// enqueues must come from the machine itself and are only
			// checked off here.
			switch rec.CK {
			case flight.CausePkt:
				switch rec.Action {
				case "Process_Data":
					plen := rec.PLen
					if plen < 0 {
						div(i, rec.Seq, rec.Conn, "negative payload length %d in journal", plen)
						continue
					}
					sg := &segment{
						srcPort: rcn.c.key.rport,
						dstPort: rcn.c.key.lport,
						seq:     seq(rec.PSeq),
						ack:     seq(rec.PAck),
						flags:   rec.PFlag,
						wnd:     rec.PWnd,
						up:      rec.PUp,
						mss:     rec.PMSS,
						data:    make([]byte, plen),
					}
					rcn.c.enqueue(actProcessData{seg: sg})
				case "Delete_TCB":
					// Half-open eviction under a SYN flood.
					rcn.c.enqueue(actDeleteTCB{})
				default:
					div(i, rec.Seq, rec.Conn, "packet-caused %s is not an action a packet can enqueue", rec.Action)
					continue
				}
			case flight.CauseTimer:
				which := timerID(rec.Timer)
				if which < 0 || which >= numTimers {
					div(i, rec.Seq, rec.Conn, "timer-caused enqueue names unknown timer %d", rec.Timer)
					continue
				}
				rcn.c.enqueue(actTimerExpired{which: which})
			}
			rcn.exp = append(rcn.exp, replayExpect{seq: rec.Seq, action: rec.Action, args: rec.Args})

		case flight.KindBeg:
			rcn := conns[rec.Conn]
			if rcn == nil {
				div(i, rec.EqSeq, rec.Conn, "beg on a connection the journal never opened")
				continue
			}
			a, ok := rcn.c.tcb.toDo.Dequeue()
			if !ok {
				div(i, rec.EqSeq, rec.Conn, "journal performs action #%d but the replayed to_do queue is empty", rec.EqSeq)
				continue
			}
			if rcn.expHead >= len(rcn.exp) {
				div(i, rec.EqSeq, rec.Conn, "journal performs action #%d with no recorded enqueue", rec.EqSeq)
				continue
			}
			exp := rcn.exp[rcn.expHead]
			rcn.expHead++
			if exp.seq != rec.EqSeq {
				div(i, rec.EqSeq, rec.Conn, "journal performs action #%d but the next recorded enqueue is #%d", rec.EqSeq, exp.seq)
				continue
			}
			if name := a.actionName(); name != exp.action {
				div(i, rec.EqSeq, rec.Conn, "replayed machine queued %s where the journal recorded %s", name, exp.action)
				continue
			}
			scratch = appendActionArgs(scratch[:0], a)
			if string(scratch) != exp.args {
				div(i, rec.EqSeq, rec.Conn, "replayed %s args %q differ from recorded %q", exp.action, scratch, exp.args)
				continue
			}
			rcn.pre = rcn.c.snapTCB()
			rcn.pending = exp
			rcn.inBeg = true
			rcn.c.perform(a)
			res.Actions++

		case flight.KindEnd:
			rcn := conns[rec.Conn]
			if rcn == nil || !rcn.inBeg || rcn.pending.seq != rec.EqSeq {
				div(i, rec.EqSeq, rec.Conn, "end record with no matching beg")
				continue
			}
			rcn.inBeg = false
			if rec.H != "" && rec.Delta == nil {
				// Compacted tombstone: the beg/end pairing survives, but
				// the delta audit for this action is gone with the delta.
				// The seal chain still attests the original via rec.H.
				continue
			}
			post := rcn.c.snapTCB()
			for name := range rec.Delta {
				if snapIndex(name) < 0 {
					div(i, rec.EqSeq, rec.Conn, "journal delta names unknown TCB field %q", name)
				}
			}
			for k, name := range snapNames {
				want, recorded := rec.Delta[name]
				switch {
				case recorded && (rcn.pre[k] != want[0] || post[k] != want[1]):
					div(i, rec.EqSeq, rec.Conn, "%s after %s: journal %d -> %d, replay %d -> %d",
						name, rcn.pending.action, want[0], want[1], rcn.pre[k], post[k])
				case !recorded && rcn.pre[k] != post[k]:
					div(i, rec.EqSeq, rec.Conn, "%s after %s: replay %d -> %d, journal records no change",
						name, rcn.pending.action, rcn.pre[k], post[k])
				}
			}

		default:
			div(i, rec.Seq, rec.Conn, "unknown record kind %q", rec.Kind)
		}
	}

	// A complete journal leaves nothing in flight: every enqueue
	// performed, every beg ended, every queue drained.
	if len(res.Divergences) == 0 {
		for name, rcn := range conns {
			if rcn.inBeg {
				div(len(recs), rcn.pending.seq, name, "journal ends inside action #%d", rcn.pending.seq)
			}
			if n := rcn.c.tcb.toDo.Len(); n > 0 {
				div(len(recs), 0, name, "journal ends with %d actions still queued", n)
			}
			if rcn.expHead != len(rcn.exp) {
				div(len(recs), rcn.exp[rcn.expHead].seq, name,
					"journal ends with %d recorded enqueues never performed", len(rcn.exp)-rcn.expHead)
			}
		}
	}
	res.Conns = len(conns)
	return res, nil
}

// ReplayJournalParallel is ReplayJournal sharded one worker per
// connection group: connections are dealt round-robin (by first
// appearance, so the assignment is deterministic) across up to
// `workers` goroutines, each of which replays its connections against
// its own private endpoint and scheduler, and the per-shard results are
// merged with divergence indices mapped back to the whole journal.
//
// Sharding by connection is sound because a connection's journal is a
// closed system: every cross-connection coupling the stack has is
// either per-connection by construction (the RFC 5961 challenge-ACK
// bucket — see takeChallengeToken), driver-injected from the journal
// (half-open evictions arrive as packet-caused Delete_TCB records), or
// invisible to the audited state (the memory account shapes only the
// advertised window, a wire field outside the TCB snapshot and the
// compared action args). This is the Laminar lesson in miniature:
// per-shard determinism is the property that lets the audit scale out.
func ReplayJournalParallel(recs []flight.Record, workers int) (*ReplayResult, error) {
	if workers <= 1 {
		return ReplayJournal(recs)
	}
	if len(recs) == 0 || recs[0].Kind != flight.KindHdr {
		return nil, fmt.Errorf("journal does not start with a hdr record")
	}
	shard := map[string]int{}
	buckets := make([][]flight.Record, workers)
	index := make([][]int, workers) // local record index -> journal index
	for w := range buckets {
		buckets[w] = append(buckets[w], recs[0])
		index[w] = append(index[w], 0)
	}
	next := 0
	for i := 1; i < len(recs); i++ {
		rec := &recs[i]
		if rec.Kind == flight.KindSeal || rec.Kind == flight.KindHdr || rec.Kind == flight.KindFault {
			continue
		}
		w, ok := shard[rec.Conn]
		if !ok {
			w = next % workers
			shard[rec.Conn] = w
			next++
		}
		buckets[w] = append(buckets[w], *rec)
		index[w] = append(index[w], i)
	}

	results := make([]*ReplayResult, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := range buckets {
		if len(buckets[w]) <= 1 {
			continue // hdr only: no connections landed here
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w], errs[w] = ReplayJournal(buckets[w])
		}(w)
	}
	wg.Wait()

	merged := &ReplayResult{Host: recs[0].Host, Records: len(recs), Workers: min(workers, next)}
	for w, r := range results {
		if errs[w] != nil {
			return merged, fmt.Errorf("shard %d: %w", w, errs[w])
		}
		if r == nil {
			continue
		}
		merged.Actions += r.Actions
		merged.Conns += r.Conns
		for _, d := range r.Divergences {
			if d.Index >= 0 && d.Index < len(index[w]) {
				d.Index = index[w][d.Index]
			} else {
				d.Index = len(recs) // completeness checks point past the end
			}
			merged.Divergences = append(merged.Divergences, d)
		}
	}
	sort.Slice(merged.Divergences, func(i, j int) bool {
		return merged.Divergences[i].Index < merged.Divergences[j].Index
	})
	return merged, nil
}

func snapIndex(name string) int {
	for i, n := range snapNames {
		if n == name {
			return i
		}
	}
	return -1
}

// replayOpen reconstructs a connection from its open record, running the
// same creation path the live endpoint ran (OpenFrom's core for active
// opens, dispatchUnknown's for passive ones) minus the asynchronous
// seams the journal replaces.
func (t *TCP) replayOpen(rec *flight.Record) (*Conn, error) {
	key := connKey{raddr: replayAddr(rec.RAddr), rport: rec.RPort, lport: rec.LPort}
	c := newConn(t, key)
	if c.name != rec.Conn {
		return nil, fmt.Errorf("reconstructed connection %q does not match recorded name %q", c.name, rec.Conn)
	}
	if !rec.Pull {
		// Push-model upcalls go to user code the journal stands in for;
		// a non-nil Data keeps the executor from buffering deliveries.
		c.handler = Handler{Data: func(*Conn, []byte) {}}
	}
	// The journal drives each perform explicitly; a permanently-set
	// executing flag turns any stray drain attempt into a no-op.
	c.executing = true
	t.conns[key] = c
	switch rec.Origin {
	case "active":
		c.stateActiveOpen()
	case "passive":
		c.setState(StateListen)
		if rec.Hop {
			l := t.listeners[key.lport]
			if l == nil {
				l = &Listener{t: t, port: key.lport}
				t.listeners[key.lport] = l
			}
			l.join(c)
		}
	default:
		return nil, fmt.Errorf("open record with unknown origin %q", rec.Origin)
	}
	return c, nil
}

// replayUop mirrors one user operation: the exact synchronous mutations
// the live user-facing call made outside the executor.
func (c *Conn) replayUop(rec *flight.Record) error {
	switch rec.Op {
	case "write":
		// Write's per-chunk body: queue, charge, ask the Send module.
		n := rec.N
		if n < 0 {
			return fmt.Errorf("negative write length %d in journal", n)
		}
		c.tcb.queuePush(make([]byte, n))
		c.t.memCharge(n)
		c.enqueue(actMaybeSend{})
	case "read":
		rem := rec.N
		for rem > 0 {
			front, ok := c.recv.buf.Front()
			if !ok {
				return fmt.Errorf("read of %d bytes but only %d were buffered", rec.N, rec.N-rem)
			}
			if len(front) <= rem {
				c.recv.buf.PopFront()
				rem -= len(front)
			} else {
				c.recv.buf.PopFront()
				c.recv.buf.PushFront(front[rem:])
				rem = 0
			}
		}
		c.finishRead(rec.N)
	case "close":
		c.stateClose()
	case "abort":
		c.stateAbort(ErrAborted)
	case "wurg":
		c.tcb.sndUpSeq = c.tcb.sndNxt + seq(sat32(c.tcb.queuedBytes)) + seq(sat32(rec.N))
		c.tcb.urgentPending = true
	default:
		return fmt.Errorf("unknown user operation %q", rec.Op)
	}
	return nil
}
