package tcp_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/arp"
	"repro/internal/basis"
	"repro/internal/ethernet"
	"repro/internal/ip"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/wire"
)

// TestTCPThroughRouter: a full TCP conversation between two /25 subnets
// joined by a forwarding host. Every segment (SYNs, data, ACKs, FINs)
// transits the router with its TTL rewritten, so this exercises the whole
// stack across a multi-hop path.
func TestTCPThroughRouter(t *testing.T) {
	s := sim.New(sim.Config{})
	s.Run(func() {
		seg := wire.NewSegment(s, wire.Config{}, nil)
		mask25 := ip.Addr{255, 255, 255, 128}
		gw := ip.Addr{10, 0, 0, 126}
		mk := func(n byte, addr ip.Addr, cfg ip.Config) (*tcp.TCP, *ip.IP) {
			eth := ethernet.New(seg.NewPort(addr.String(), nil), ethernet.HostAddr(n), ethernet.Config{})
			res := arp.New(s, eth, addr, arp.Config{})
			cfg.Local = addr
			ipl := ip.New(s, eth, res, cfg)
			return tcp.New(s, ipl.Network(ip.ProtoTCP), tcp.Config{}), ipl
		}
		tcpA, _ := mk(1, ip.Addr{10, 0, 0, 1}, ip.Config{Netmask: mask25, Gateway: gw})
		_, ipR := mk(126, gw, ip.Config{Netmask: ip.Addr{255, 255, 255, 0}, Forward: true})
		tcpB, _ := mk(2, ip.Addr{10, 0, 0, 129}, ip.Config{Netmask: mask25, Gateway: gw})

		var got bytes.Buffer
		peerClosed := false
		tcpB.Listen(80, func(c *tcp.Conn) tcp.Handler {
			return tcp.Handler{
				Data:       func(c *tcp.Conn, d []byte) { got.Write(d) },
				PeerClosed: func(c *tcp.Conn) { peerClosed = true },
			}
		})
		conn, err := tcpA.Open(ip.Addr{10, 0, 0, 129}, 80, tcp.Handler{})
		if err != nil {
			t.Fatalf("multi-hop open: %v", err)
		}
		data := make([]byte, 40_000)
		r := basis.NewRand(55)
		for i := range data {
			data[i] = byte(r.Uint64())
		}
		s.Fork("w", func() { conn.Write(data); conn.Close() })
		s.Sleep(5 * time.Minute)
		if !bytes.Equal(got.Bytes(), data) {
			t.Fatalf("multi-hop transfer broken: %d of %d", got.Len(), len(data))
		}
		if !peerClosed {
			t.Fatal("FIN lost crossing the router")
		}
		if ipR.Stats().Forwarded < 30 {
			t.Fatalf("router only forwarded %d datagrams", ipR.Stats().Forwarded)
		}
	})
}
