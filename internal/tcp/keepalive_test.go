package tcp_test

import (
	"testing"
	"time"

	"repro/internal/basis"
	"repro/internal/ethernet"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/wire"
)

func kaConfig() tcp.Config {
	return tcp.Config{
		Keepalive:      true,
		KeepaliveIdle:  2 * time.Second,
		KeepaliveCount: 3,
	}
}

func TestKeepaliveProbesIdleConnection(t *testing.T) {
	runPair(t, wire.Config{}, kaConfig(), func(s *sim.Scheduler, a, b tcpHost) {
		b.TCP.Listen(80, func(c *tcp.Conn) tcp.Handler { return tcp.Handler{} })
		conn, _ := a.TCP.Open(b.A, 80, tcp.Handler{})
		before := a.TCP.Stats().SegsSent
		s.Sleep(5 * time.Second) // idle across two keepalive intervals
		probes := a.TCP.Stats().SegsSent - before
		if probes == 0 {
			t.Fatal("no keepalive probes on an idle connection")
		}
		// The live peer answered every probe, so the connection holds.
		if conn.State() != tcp.StateEstab || conn.Err() != nil {
			t.Fatalf("state %v err %v", conn.State(), conn.Err())
		}
	})
}

func TestKeepaliveFailsDeadPeer(t *testing.T) {
	// Establish, then power the peer off: its link layer stops handing
	// frames up, so probes go unanswered and the keepalive machinery
	// must eventually fail the connection with a timeout.
	runPair(t, wire.Config{}, kaConfig(), func(s *sim.Scheduler, a, b tcpHost) {
		b.TCP.Listen(80, func(c *tcp.Conn) tcp.Handler { return tcp.Handler{} })
		var gotErr error
		conn, err := a.TCP.Open(b.A, 80, tcp.Handler{
			Error: func(c *tcp.Conn, e error) { gotErr = e },
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Sleep(100 * time.Millisecond)
		// "Deafen" host b: a dead IPv4 upcall swallows everything it
		// hears, though it can still transmit. Both ends run keepalive,
		// so the connection dies one of two ways: our probes go
		// unanswered (ErrTimeout), or the deaf peer's own keepalive
		// gives up first and its RST reaches us (ErrReset). Either way
		// the dead connection must be detected and torn down.
		b.Eth.Register(ethernet.TypeIPv4, func(src, dst ethernet.Addr, pkt *basis.Packet) {})
		s.Sleep(time.Minute)
		if gotErr != tcp.ErrTimeout && gotErr != tcp.ErrReset {
			t.Fatalf("keepalive error = %v, want ErrTimeout or ErrReset", gotErr)
		}
		if conn.State() != tcp.StateClosed {
			t.Fatalf("state = %v", conn.State())
		}
	})
}

func TestKeepaliveOffByDefault(t *testing.T) {
	runPair(t, wire.Config{}, tcp.Config{}, func(s *sim.Scheduler, a, b tcpHost) {
		b.TCP.Listen(80, func(c *tcp.Conn) tcp.Handler { return tcp.Handler{} })
		a.TCP.Open(b.A, 80, tcp.Handler{})
		before := a.TCP.Stats().SegsSent
		s.Sleep(5 * time.Hour)
		if sent := a.TCP.Stats().SegsSent - before; sent != 0 {
			t.Fatalf("default config sent %d segments while idle", sent)
		}
	})
}

func TestKeepaliveResetByTraffic(t *testing.T) {
	runPair(t, wire.Config{}, kaConfig(), func(s *sim.Scheduler, a, b tcpHost) {
		var rc collector
		b.TCP.Listen(80, func(c *tcp.Conn) tcp.Handler { return rc.handler() })
		conn, _ := a.TCP.Open(b.A, 80, tcp.Handler{})
		// Write every second: traffic keeps arriving (acks), so the
		// 2-second keepalive never probes with its seq-1 signature.
		for i := 0; i < 6; i++ {
			conn.Write([]byte("tick"))
			s.Sleep(time.Second)
		}
		if conn.Err() != nil {
			t.Fatalf("busy connection failed: %v", conn.Err())
		}
		if rc.buf.Len() != 24 {
			t.Fatalf("delivered %d bytes", rc.buf.Len())
		}
	})
}

func TestUrgentPointerDelivered(t *testing.T) {
	runPair(t, wire.Config{}, tcp.Config{}, func(s *sim.Scheduler, a, b tcpHost) {
		urgentSeen := 0
		var rc collector
		h := rc.handler()
		h.Urgent = func(c *tcp.Conn) { urgentSeen++ }
		b.TCP.Listen(80, func(c *tcp.Conn) tcp.Handler { return h })
		conn, _ := a.TCP.Open(b.A, 80, tcp.Handler{})
		conn.Write([]byte("normal "))
		s.Sleep(time.Second)
		if err := conn.WriteUrgent([]byte("INTERRUPT")); err != nil {
			t.Fatal(err)
		}
		s.Sleep(time.Second)
		if urgentSeen == 0 {
			t.Fatal("urgent pointer never reported")
		}
		if rc.buf.String() != "normal INTERRUPT" {
			t.Fatalf("in-band delivery = %q", rc.buf.String())
		}
	})
}
