package tcp

import "repro/internal/stats"

// This file is the paper's Receive module. The standard describes segment
// arrival "as a procedure with branch points and merge points, but no
// loops (a directed acyclic graph)"; the paper implements "exactly the
// branches specified in the standard, using functions as labels for the
// merge points." Each function below is one of those labels, in the
// order RFC 793 pp. 64–75 presents the steps.

// receiveSegment is the root of the DAG: dispatch on connection state.
func (c *Conn) receiveSegment(sg *segment) {
	c.tcb.lastRecv = c.t.s.Now()
	c.tcb.keepaliveProbes = 0
	c.tcb.segsIn++
	switch c.state {
	case StateClosed:
		// The connection object lingers (e.g. a late segment raced a
		// teardown); RFC 793's CLOSED-state reset generation already
		// happened at the endpoint for truly unknown keys.
		return
	case StateListen:
		c.rcvListen(sg)
	case StateSynSent:
		c.rcvSynSent(sg)
	case StateTimeWait:
		c.rcvTimeWait(sg)
	default:
		if c.t.cfg.fastPath() && c.state == StateEstab && c.fastPathIn(sg) {
			c.t.stats.FastPathIn++
			return
		}
		c.t.stats.SlowPathIn++
		c.rcvGeneral(sg)
	}
}

// rcvTimeWait: the only thing that can legitimately arrive in TIME-WAIT
// is a retransmission of the remote FIN (our final ACK was lost).
// Acknowledge it and restart the 2 MSL timeout, as RFC 793's step 8
// directs; resets are ignored per RFC 1337 so a stray RST cannot
// assassinate the quarantine.
func (c *Conn) rcvTimeWait(sg *segment) {
	c.t.stats.SlowPathIn++
	if sg.has(flagRST) {
		c.t.stats.RSTReceived++
		return
	}
	if sg.has(flagSYN) {
		// A new incarnation's SYN during quarantine: stay safe, stay
		// quiet (accepting it would risk old duplicates).
		return
	}
	c.tcb.ackNow = true
	c.enqueue(actMaybeSend{})
	c.enqueue(actSetTimer{which: timerTimeWait, d: c.twoMSL()})
}

// rcvListen: first check for an RST, second check for an ACK, third
// check for a SYN (RFC 793 p. 64).
func (c *Conn) rcvListen(sg *segment) {
	if sg.has(flagRST) {
		c.enqueue(actDeleteTCB{}) // this embryonic connection only
		return
	}
	if sg.has(flagACK) {
		c.sendRstRaw(sg.ack, 0, false)
		c.enqueue(actDeleteTCB{})
		return
	}
	if !sg.has(flagSYN) {
		c.enqueue(actDeleteTCB{})
		return
	}
	c.statePassiveSyn(sg)
	// Text or a FIN arriving with the SYN is legal but rare; RFC 793
	// queues it for processing once ESTABLISHED. We keep the SYN's
	// payload on the out-of-order queue so the normal drain delivers it.
	if len(sg.data) > 0 || sg.has(flagFIN) {
		dataSeg := &segment{seq: sg.seq + 1, flags: sg.flags &^ flagSYN, data: sg.data}
		c.insertOutOfOrder(dataSeg)
	}
}

// rcvSynSent: RFC 793 p. 66.
func (c *Conn) rcvSynSent(sg *segment) {
	tcb := c.tcb
	ackOK := false
	if sg.has(flagACK) {
		if seqLEQ(sg.ack, tcb.iss) || seqGT(sg.ack, tcb.sndNxt) {
			if !sg.has(flagRST) {
				c.sendRstRaw(sg.ack, 0, false)
			}
			return
		}
		ackOK = true
	}
	if sg.has(flagRST) {
		if ackOK {
			c.t.stats.RSTReceived++
			c.enqueue(actUserError{err: ErrRefused})
		}
		return
	}
	if !sg.has(flagSYN) {
		return
	}
	tcb.irs = sg.seq
	tcb.rcvNxt = sg.seq + 1
	if sg.mss != 0 {
		tcb.mss = min(int(sg.mss), c.t.MTU())
		tcb.cwnd = tcb.mss32()
	}
	tcb.sndWnd = uint32(sg.wnd)
	tcb.sndWl1 = sg.seq
	tcb.sndWl2 = sg.ack
	tcb.maxWnd = uint32(sg.wnd)

	if ackOK {
		c.ackAdvance(sg.ack)
		c.stateEstablish()
		tcb.ackNow = true
		if len(sg.data) > 0 || sg.has(flagFIN) {
			// Text or FIN riding the SYN,ACK: the SYN consumed one
			// sequence number, so the data starts at seq+1.
			dataSeg := &segment{seq: sg.seq + 1, ack: sg.ack, flags: sg.flags &^ flagSYN, wnd: sg.wnd, data: sg.data}
			c.processText(dataSeg)
			c.checkFin(dataSeg)
		}
		c.enqueue(actMaybeSend{})
		return
	}
	// Simultaneous open: our SYN and theirs crossed.
	c.setState(StateSynActive)
	// The queued SYN must henceforth acknowledge theirs.
	if front, ok := tcb.rexmitQ.Front(); ok && front.has(flagSYN) {
		front.flags |= flagACK
	}
	synAck := &segment{
		srcPort: c.key.lport, dstPort: c.key.rport,
		seq: tcb.iss, ack: tcb.rcvNxt, flags: flagSYN | flagACK,
		mss: c.t.localMSS(),
	}
	c.enqueue(actSendSegment{seg: synAck})
	c.t.cfg.Trace.Printf("conn %v: simultaneous open", c.key)
}

// rcvGeneral: "Otherwise" — the eight numbered steps of RFC 793 p. 69.
func (c *Conn) rcvGeneral(sg *segment) {
	if !c.checkSequence(sg) { // first: sequence number
		return
	}
	if sg.has(flagRST) { // second: RST bit
		// RFC 5961 §3.2: only an RST whose sequence number exactly
		// matches rcv_nxt resets the connection. In-window-but-inexact
		// RSTs — what a blind attacker sweeping the window produces —
		// answer with a challenge ACK; a genuine peer replies with an
		// exact-sequence RST, which then passes this test.
		if sg.seq == c.tcb.rcvNxt {
			c.handleRst()
		} else {
			c.t.stats.RSTReceived++
			c.sendChallengeAck("in-window RST")
		}
		return
	}
	// (third: security and precedence — not implemented, as in practice)
	if sg.has(flagSYN) { // fourth: SYN in the window
		// RFC 793 resets the connection here, which lets a blind
		// attacker kill it with a spoofed SYN. RFC 5961 §4.2 sends a
		// challenge ACK instead: a peer that genuinely restarted answers
		// the challenge with an exact-sequence RST.
		c.sendChallengeAck("in-window SYN")
		return
	}
	if !sg.has(flagACK) { // fifth: segments without ACK are dropped
		return
	}
	if !c.checkAck(sg) {
		return
	}
	// Sixth: URG. Record the advancing urgent pointer and notify the
	// user; the data itself is delivered in-band.
	if sg.has(flagURG) && seqGT(sg.seq+seq(sg.up), c.tcb.rcvUp) {
		c.tcb.rcvUp = sg.seq + seq(sg.up)
		if c.handler.Urgent != nil {
			c.handler.Urgent(c)
		}
	}
	c.processText(sg) // seventh: the segment text
	c.checkFin(sg)    // eighth: the FIN bit
	c.enqueue(actMaybeSend{})
}

// checkSequence is the acceptability test of RFC 793 p. 69, followed by
// trimming the segment to the window. Unacceptable segments provoke an
// immediate ACK (unless they carry RST) and are dropped.
func (c *Conn) checkSequence(sg *segment) bool {
	tcb := c.tcb
	segLen := sg.seqLen()
	wnd := tcb.rcvWnd
	acceptable := false
	switch {
	case segLen == 0 && wnd == 0:
		acceptable = sg.seq == tcb.rcvNxt
	case segLen == 0 && wnd > 0:
		acceptable = seqBetween(tcb.rcvNxt, sg.seq, tcb.rcvNxt+seq(wnd))
	case segLen > 0 && wnd == 0:
		acceptable = false
	default:
		acceptable = seqBetween(tcb.rcvNxt, sg.seq, tcb.rcvNxt+seq(wnd)) ||
			seqBetween(tcb.rcvNxt, sg.seq+seq(segLen)-1, tcb.rcvNxt+seq(wnd))
	}
	if !acceptable {
		if !sg.has(flagRST) {
			c.sendThrottledAck()
		}
		return false
	}
	// Trim data that falls before the window...
	if seqLT(sg.seq, tcb.rcvNxt) && len(sg.data) > 0 {
		cut := int(seqSub(tcb.rcvNxt, sg.seq))
		if cut >= len(sg.data) {
			sg.data = nil
		} else {
			sg.data = sg.data[cut:]
		}
		sg.seq = tcb.rcvNxt
	}
	// ...and beyond it (a FIN past the edge is deferred with its data).
	if end := sg.seq + seq(len(sg.data)); seqGT(end, tcb.rcvNxt+seq(wnd)) {
		keep := int(seqSub(tcb.rcvNxt+seq(wnd), sg.seq))
		if keep < 0 {
			keep = 0
		}
		sg.data = sg.data[:keep]
		sg.flags &^= flagFIN
	}
	return true
}

// handleRst is the second step's per-state consequence.
func (c *Conn) handleRst() {
	c.t.stats.RSTReceived++
	c.event(stats.EvRST, "received")
	switch c.state {
	case StateSynPassive:
		// Passive open returns quietly to LISTEN (the listener is still
		// installed; only this embryonic connection dies).
		c.enqueue(actDeleteTCB{})
	case StateSynActive, StateEstab, StateFinWait1, StateFinWait2, StateCloseWait:
		c.enqueue(actUserError{err: ErrReset})
	case StateClosing, StateLastAck:
		c.enqueue(actCompleteClose{})
		c.enqueue(actDeleteTCB{})
	case StateTimeWait:
		// RFC 1337: ignore resets in TIME-WAIT so a stray RST cannot
		// assassinate the quarantine.
	}
}

// checkAck is the fifth step: per-state ACK processing. It returns false
// when processing of this segment must stop.
func (c *Conn) checkAck(sg *segment) bool {
	tcb := c.tcb
	switch c.state {
	case StateSynActive, StateSynPassive:
		if seqLEQ(tcb.sndUna, sg.ack) && seqLEQ(sg.ack, tcb.sndNxt) {
			c.ackAdvance(sg.ack)
			tcb.sndWnd = uint32(sg.wnd)
			tcb.sndWl1 = sg.seq
			tcb.sndWl2 = sg.ack
			if uint32(sg.wnd) > tcb.maxWnd {
				tcb.maxWnd = uint32(sg.wnd)
			}
			c.stateEstablish()
			return true
		}
		c.sendRstRaw(sg.ack, 0, false)
		return false

	case StateEstab, StateFinWait1, StateFinWait2, StateCloseWait, StateClosing, StateLastAck:
		return c.processAck(sg)

	case StateTimeWait:
		// The only thing that can arrive is a retransmission of the
		// remote FIN: acknowledge it and restart 2MSL (checkFin will).
		tcb.ackNow = true
		return true
	}
	return false
}

// processAck is the ESTABLISHED-state ACK processing shared by every
// synchronized state.
func (c *Conn) processAck(sg *segment) bool {
	tcb := c.tcb
	switch {
	case seqGT(sg.ack, tcb.sndNxt):
		// Ack of data never sent: ack back, drop.
		tcb.ackNow = true
		c.enqueue(actMaybeSend{})
		return false
	case seqLT(sg.ack, tcb.sndUna) && seqSub(tcb.sndUna, sg.ack) > tcb.maxWnd:
		// RFC 5961 §5.2: an ACK older than snd_una by more than the
		// largest window the peer ever saw cannot be a delayed
		// duplicate; challenge it instead of feeding the dup-ack
		// machinery.
		c.sendChallengeAck("stale ACK")
		return false
	case seqGT(sg.ack, tcb.sndUna):
		c.ackAdvance(sg.ack)
	default:
		// Duplicate ACK.
		if len(sg.data) == 0 && uint32(sg.wnd) == tcb.sndWnd && !tcb.rexmitQ.Empty() {
			c.dupAck()
		}
	}
	c.updateSendWindow(sg)
	return true
}

// updateSendWindow applies RFC 793's wl1/wl2 rule so that old segments
// cannot shrink our view of the peer's window.
func (c *Conn) updateSendWindow(sg *segment) {
	tcb := c.tcb
	if seqLT(tcb.sndWl1, sg.seq) ||
		(tcb.sndWl1 == sg.seq && seqLEQ(tcb.sndWl2, sg.ack)) {
		opened := uint32(sg.wnd) > tcb.sndWnd
		tcb.sndWnd = uint32(sg.wnd)
		tcb.sndWl1 = sg.seq
		tcb.sndWl2 = sg.ack
		if tcb.sndWnd > tcb.maxWnd {
			tcb.maxWnd = tcb.sndWnd
		}
		if opened {
			c.enqueue(actClearTimer{which: timerPersist})
			c.enqueue(actMaybeSend{})
		}
	}
}

// processText is the seventh step: deliver in-order text, hold
// out-of-order text, schedule acknowledgments.
func (c *Conn) processText(sg *segment) {
	if len(sg.data) == 0 {
		return
	}
	switch c.state {
	case StateEstab, StateFinWait1, StateFinWait2:
	default:
		return // RFC 793: "this should not occur ... ignore the text"
	}
	tcb := c.tcb
	if sg.seq == tcb.rcvNxt {
		c.deliver(sg.data)
		c.drainOutOfOrder()
		tcb.unackedSegs++
		if tcb.unackedSegs >= 2 || !c.t.cfg.delayedAcks() {
			tcb.ackNow = true
		} else {
			tcb.ackPending = true
		}
	} else {
		c.t.stats.OutOfOrder++
		c.insertOutOfOrder(sg)
		// A hole: ack immediately so the peer sees the duplicate.
		tcb.ackNow = true
	}
}

// deliver advances rcv_nxt over data and queues its delivery to the user.
//
//foxvet:hotpath
func (c *Conn) deliver(data []byte) {
	c.tcb.rcvNxt += seq(len(data))
	c.enqueue(actUserData{data: data})
}

// insertOutOfOrder files a segment on the out-of-order queue, sorted by
// sequence number, dropping exact duplicates. The queue is byte-bounded
// (Config.ReassemblyLimit, counting payload plus per-segment overhead);
// at the cap the newest — highest-sequence — segments are evicted, which
// preserves head progress: the hole closest to rcv_nxt keeps its filler,
// so a gap bomb costs the attacker the far end of its own spray.
func (c *Conn) insertOutOfOrder(sg *segment) {
	oo := c.tcb.outOfOrder
	at := len(oo)
	for i, q := range oo {
		if q.seq == sg.seq && len(q.data) >= len(sg.data) {
			return // duplicate
		}
		if seqGT(q.seq, sg.seq) {
			at = i
			break
		}
	}
	oo = append(oo, nil)
	copy(oo[at+1:], oo[at:])
	oo[at] = sg
	c.tcb.outOfOrder = oo
	c.oooCharge(sg)
	for c.tcb.oooBytes > c.t.cfg.ReassemblyLimit && len(c.tcb.outOfOrder) > 0 {
		last := len(c.tcb.outOfOrder) - 1
		victim := c.tcb.outOfOrder[last]
		c.tcb.outOfOrder[last] = nil
		c.tcb.outOfOrder = c.tcb.outOfOrder[:last]
		c.oooRelease(victim)
		c.t.cfg.Harden.OOOEvictions.Inc()
	}
}

// drainOutOfOrder delivers every held segment that has become in-order,
// including any FIN one of them carries. Draining compacts in place and
// nils the vacated tail slot — reslicing the head off ([1:]) would keep
// every delivered segment reachable through the backing array until the
// whole queue emptied.
func (c *Conn) drainOutOfOrder() {
	tcb := c.tcb
	for len(tcb.outOfOrder) > 0 {
		q := tcb.outOfOrder[0]
		if seqGT(q.seq, tcb.rcvNxt) {
			return // still a hole
		}
		n := len(tcb.outOfOrder) - 1
		copy(tcb.outOfOrder, tcb.outOfOrder[1:])
		tcb.outOfOrder[n] = nil
		tcb.outOfOrder = tcb.outOfOrder[:n]
		c.oooRelease(q)
		end := q.seq + seq(len(q.data))
		if seqGT(end, tcb.rcvNxt) {
			c.deliver(q.data[seqSub(tcb.rcvNxt, q.seq):])
		}
		if q.has(flagFIN) {
			c.checkFin(q)
		}
	}
}

// checkFin is the eighth step: process a FIN that has become in-order.
func (c *Conn) checkFin(sg *segment) {
	if !sg.has(flagFIN) {
		return
	}
	switch c.state {
	case StateClosed, StateListen, StateSynSent:
		return
	}
	tcb := c.tcb
	finSeq := sg.seq + seq(len(sg.data))
	if finSeq != tcb.rcvNxt {
		// FIN beyond a hole: if it rode an out-of-order data segment,
		// processText already filed that segment (FIN flag intact) and
		// drainOutOfOrder will re-call us when the hole fills; a bare
		// out-of-order FIN must be filed here. A FIN before rcv_nxt is
		// a duplicate and is dropped.
		if seqGT(finSeq, tcb.rcvNxt) && len(sg.data) == 0 {
			c.insertOutOfOrder(&segment{seq: sg.seq, flags: flagFIN})
		}
		return
	}
	tcb.rcvNxt++
	tcb.ackNow = true
	c.statePeerFin()
	c.enqueue(actMaybeSend{})
}

// sendChallengeAck answers a suspicious in-window probe (RFC 5961): an
// ACK carrying the exact rcv_nxt/snd_nxt the real peer already knows,
// which tells a genuine out-of-sync peer where the connection stands and
// tells a blind attacker nothing. Rate-limited per connection so the
// defense is not itself an amplifier, nor (as an endpoint-wide bucket
// would be) an off-path side channel coupling unrelated connections.
func (c *Conn) sendChallengeAck(reason string) {
	if !c.takeChallengeToken() {
		c.t.cfg.Harden.ChallengeACKsSuppressed.Inc()
		return
	}
	c.t.cfg.Harden.ChallengeACKsSent.Inc()
	c.event(stats.EvChallengeACK, reason)
	c.tcb.ackNow = true
	c.enqueue(actMaybeSend{})
}

// sendThrottledAck re-acknowledges an unacceptable (out-of-window)
// segment through the same per-connection token bucket as challenge ACKs
// (RFC 5961 §5.3's ACK throttling, Linux's tcp_invalid_ratelimit).
// Unthrottled, a spoofed flood of bogus segments converts into a stream
// of pure ACKs at the genuine peer — indistinguishable from duplicate
// ACKs, so they trip fast retransmit and poison its congestion control.
// Legitimate traffic on this path (retransmissions whose ACK was lost,
// zero-window probes, keepalives) arrives orders of magnitude below the
// bucket rate and is effectively never suppressed.
func (c *Conn) sendThrottledAck() {
	if !c.takeChallengeToken() {
		c.t.cfg.Harden.OOWAcksSuppressed.Inc()
		return
	}
	c.tcb.ackNow = true
	c.enqueue(actMaybeSend{})
}

// sendRstRaw emits a reset outside the connection's sequence machinery.
func (c *Conn) sendRstRaw(seqNo, ackNo seq, withAck bool) {
	rst := &segment{
		srcPort: c.key.lport, dstPort: c.key.rport,
		seq: seqNo, flags: flagRST,
	}
	if withAck {
		rst.flags |= flagACK
		rst.ack = ackNo
	}
	c.t.emitRaw(c.key.raddr, rst)
}
