package tcp_test

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/wire"
)

// TestConnectionTableDoesNotLeak: repeated connect/transfer/close cycles
// must leave the demux tables empty once every TIME-WAIT has expired —
// the storage-management claim of the paper (automatic reclamation, no
// leaks) checked at the connection-state level.
func TestConnectionTableDoesNotLeak(t *testing.T) {
	cfg := tcp.Config{MSL: 200 * time.Millisecond}
	runPair(t, wire.Config{}, cfg, func(s *sim.Scheduler, a, b tcpHost) {
		b.TCP.Listen(80, func(c *tcp.Conn) tcp.Handler {
			return tcp.Handler{PeerClosed: func(c *tcp.Conn) { c.Shutdown() }}
		})
		for i := 0; i < 20; i++ {
			conn, err := a.TCP.Open(b.A, 80, tcp.Handler{})
			if err != nil {
				t.Fatalf("cycle %d open: %v", i, err)
			}
			conn.Write(make([]byte, 3000))
			if err := conn.Close(); err != nil {
				t.Fatalf("cycle %d close: %v", i, err)
			}
		}
		s.Sleep(5 * time.Second) // all 2MSL quarantines expire
		if n := a.TCP.ActiveConns(); n != 0 {
			t.Fatalf("client endpoint leaked %d connections", n)
		}
		if n := b.TCP.ActiveConns(); n != 0 {
			t.Fatalf("server endpoint leaked %d connections", n)
		}
	})
}

// TestReassemblyQueueRetainsNothing: a lossy transfer forces segments
// through the out-of-order queue; once the stream completes, neither the
// queue nor its backing array may still reference a delivered segment,
// and the endpoint memory accounts must read zero. This pins the fix for
// the head-drain reslice (outOfOrder = outOfOrder[1:]) that kept every
// drained segment reachable until the whole queue emptied.
func TestReassemblyQueueRetainsNothing(t *testing.T) {
	wcfg := wire.Config{Seed: 11, Loss: 0.05, Duplicate: 0.02}
	runPair(t, wcfg, tcp.Config{}, func(s *sim.Scheduler, a, b tcpHost) {
		var serverConn *tcp.Conn
		var got int
		b.TCP.Listen(80, func(c *tcp.Conn) tcp.Handler {
			serverConn = c
			return tcp.Handler{
				Data:       func(c *tcp.Conn, data []byte) { got += len(data) },
				PeerClosed: func(c *tcp.Conn) { c.Shutdown() },
			}
		})
		conn, err := a.TCP.Open(b.A, 80, tcp.Handler{})
		if err != nil {
			t.Fatal(err)
		}
		payload := make([]byte, 100<<10)
		if err := conn.Write(payload); err != nil {
			t.Fatal(err)
		}
		if err := conn.Close(); err != nil {
			t.Fatal(err)
		}
		s.Sleep(2 * time.Second)
		if got != len(payload) {
			t.Fatalf("delivered %d of %d bytes", got, len(payload))
		}
		if n := tcp.OOOQueued(serverConn); n != 0 {
			t.Fatalf("out-of-order queue still holds %d segments", n)
		}
		if n := tcp.OOORetained(serverConn); n != 0 {
			t.Fatalf("backing array retains %d drained segments", n)
		}
		for _, h := range []tcpHost{a, b} {
			if n := tcp.MemUsed(h.TCP); n != 0 {
				t.Fatalf("endpoint memory account nonzero after idle: %d", n)
			}
		}
	})
}

// TestAbortedConnectionsReclaimed: aborts and refusals must also clean
// the table.
func TestAbortedConnectionsReclaimed(t *testing.T) {
	runPair(t, wire.Config{}, tcp.Config{}, func(s *sim.Scheduler, a, b tcpHost) {
		b.TCP.Listen(80, func(c *tcp.Conn) tcp.Handler { return tcp.Handler{} })
		for i := 0; i < 10; i++ {
			conn, err := a.TCP.Open(b.A, 80, tcp.Handler{})
			if err != nil {
				t.Fatal(err)
			}
			conn.Abort()
		}
		for i := 0; i < 5; i++ {
			a.TCP.Open(b.A, 9999, tcp.Handler{}) // refused
		}
		s.Sleep(5 * time.Second)
		if n := a.TCP.ActiveConns(); n != 0 {
			t.Fatalf("client leaked %d connections after aborts", n)
		}
		if n := b.TCP.ActiveConns(); n != 0 {
			t.Fatalf("server leaked %d connections after aborts", n)
		}
	})
}
