package tcp_test

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/wire"
)

// TestConnectionTableDoesNotLeak: repeated connect/transfer/close cycles
// must leave the demux tables empty once every TIME-WAIT has expired —
// the storage-management claim of the paper (automatic reclamation, no
// leaks) checked at the connection-state level.
func TestConnectionTableDoesNotLeak(t *testing.T) {
	cfg := tcp.Config{MSL: 200 * time.Millisecond}
	runPair(t, wire.Config{}, cfg, func(s *sim.Scheduler, a, b tcpHost) {
		b.TCP.Listen(80, func(c *tcp.Conn) tcp.Handler {
			return tcp.Handler{PeerClosed: func(c *tcp.Conn) { c.Shutdown() }}
		})
		for i := 0; i < 20; i++ {
			conn, err := a.TCP.Open(b.A, 80, tcp.Handler{})
			if err != nil {
				t.Fatalf("cycle %d open: %v", i, err)
			}
			conn.Write(make([]byte, 3000))
			if err := conn.Close(); err != nil {
				t.Fatalf("cycle %d close: %v", i, err)
			}
		}
		s.Sleep(5 * time.Second) // all 2MSL quarantines expire
		if n := a.TCP.ActiveConns(); n != 0 {
			t.Fatalf("client endpoint leaked %d connections", n)
		}
		if n := b.TCP.ActiveConns(); n != 0 {
			t.Fatalf("server endpoint leaked %d connections", n)
		}
	})
}

// TestAbortedConnectionsReclaimed: aborts and refusals must also clean
// the table.
func TestAbortedConnectionsReclaimed(t *testing.T) {
	runPair(t, wire.Config{}, tcp.Config{}, func(s *sim.Scheduler, a, b tcpHost) {
		b.TCP.Listen(80, func(c *tcp.Conn) tcp.Handler { return tcp.Handler{} })
		for i := 0; i < 10; i++ {
			conn, err := a.TCP.Open(b.A, 80, tcp.Handler{})
			if err != nil {
				t.Fatal(err)
			}
			conn.Abort()
		}
		for i := 0; i < 5; i++ {
			a.TCP.Open(b.A, 9999, tcp.Handler{}) // refused
		}
		s.Sleep(5 * time.Second)
		if n := a.TCP.ActiveConns(); n != 0 {
			t.Fatalf("client leaked %d connections after aborts", n)
		}
		if n := b.TCP.ActiveConns(); n != 0 {
			t.Fatalf("server leaked %d connections after aborts", n)
		}
	})
}
