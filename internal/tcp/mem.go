package tcp

import (
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Resource governance. A hostile or broken peer can try to make an
// endpoint buffer without bound: flood SYNs at a listener, open many
// connections and never read (send queues pin), or spray reassembly
// gaps so outOfOrder grows. Each queue is individually capped, and this
// file adds the endpoint-wide account in the style of Linux's tcp_mem:
// three states — normal, pressure, exhausted — with graceful shedding
// (shrunken advertised windows, refused embryonic connections) before
// anything grows without limit.

// memState is the endpoint memory-account condition.
type memState int

const (
	memNormal memState = iota
	memPressure
	memExhausted
)

// memAccount tracks bytes the endpoint buffers on behalf of peers:
// queued-but-unsent send data, out-of-order reassembly segments (plus
// per-segment overhead), and received-but-unread data. All mutation
// happens inside the quasi-synchronous executor or under the scheduler's
// handoff discipline, so plain fields suffice.
type memAccount struct {
	used       int
	limit      int // exhausted at or above this
	pressureAt int // pressure at or above this (3/4 of limit)
	state      memState
}

// memTransition holds preformatted "FROM -> TO" details for the event
// ring, indexed [from][to]; constants keep memCharge allocation-free on
// the per-segment path.
var memTransition = [3][3]string{
	{"", "normal -> pressure", "normal -> exhausted"},
	{"pressure -> normal", "", "pressure -> exhausted"},
	{"exhausted -> normal", "exhausted -> pressure", ""},
}

// memCharge adjusts the endpoint account by delta bytes (negative to
// release) and recomputes the tri-state, counting and recording
// transitions.
func (t *TCP) memCharge(delta int) {
	m := &t.mem
	m.used += delta
	if m.used < 0 {
		// Release exceeding charge indicates an accounting bug; clamp so
		// the account fails toward caution rather than wrapping.
		m.used = 0
	}
	t.cfg.Harden.MemBytes.Set(int64(m.used))
	next := memNormal
	switch {
	case m.used >= m.limit:
		next = memExhausted
	case m.used >= m.pressureAt:
		next = memPressure
	}
	if next == m.state {
		return
	}
	from := m.state
	m.state = next
	switch {
	case next == memExhausted:
		t.cfg.Harden.MemExhaustedEnter.Inc()
	case next == memPressure && from == memNormal:
		t.cfg.Harden.MemPressureEnter.Inc()
	case next == memNormal:
		t.cfg.Harden.MemPressureExit.Inc()
	}
	if ev := t.cfg.Events; ev != nil {
		ev.Add(int64(t.s.Now()), stats.EvMemPressure, "", memTransition[from][next])
	}
}

// takeChallengeToken implements the RFC 5961 §10 challenge-ACK rate
// limit as a per-connection bucket: at most cfg.ChallengeACKLimit
// challenge ACKs per simulated second per connection. It reports
// whether a challenge ACK may be sent now.
//
// RFC 5961 sketches the limit as endpoint-wide, but a shared bucket is
// both an exploitable side channel and a nondeterminism. CVE-2016-5696
// showed an off-path attacker can probe a global counter through its
// exhaustion on an unrelated connection and infer another connection's
// sequence state — Linux's fix moved the bucket per-socket, and so does
// this stack. The same move is what keeps one connection's journal a
// closed system: whether a probe draws a challenge or a suppression
// depends only on that connection's own history, so sharded parallel
// replay (and the ROADMAP's sharded engine) stays deterministic
// per-shard.
func (c *Conn) takeChallengeToken() bool {
	tcb := c.tcb
	now := c.t.s.Now()
	if sim.Duration(now-tcb.challengeWindow) >= sim.Duration(time.Second) {
		tcb.challengeWindow = now
		tcb.challengeCount = 0
	}
	if tcb.challengeCount >= c.t.cfg.ChallengeACKLimit {
		return false
	}
	tcb.challengeCount++
	return true
}

// oooOverhead approximates the fixed cost of holding one out-of-order
// segment (struct, slice headers, queue slot) so that a gap bomb of
// 1-byte segments cannot evade a purely payload-counted cap.
const oooOverhead = 128

func oooCost(sg *segment) int { return len(sg.data) + oooOverhead }

// oooCharge accounts one segment entering the reassembly queue.
func (c *Conn) oooCharge(sg *segment) {
	n := oooCost(sg)
	c.tcb.oooBytes += n
	c.t.memCharge(n)
}

// oooRelease accounts one segment leaving the reassembly queue.
func (c *Conn) oooRelease(sg *segment) {
	n := oooCost(sg)
	c.tcb.oooBytes -= n
	c.t.memCharge(-n)
}

// join registers a freshly created embryonic connection in the
// listener's half-open table.
func (l *Listener) join(c *Conn) {
	c.listener = l
	l.halfOpen = append(l.halfOpen, c)
	l.t.cfg.Harden.HalfOpen.Inc()
}

// leaveHalfOpen removes the connection from its listener's half-open
// table, if it is in one — called when the handshake completes
// (stateEstablish) and when the TCB is deleted, whichever comes first.
func (c *Conn) leaveHalfOpen() {
	l := c.listener
	if l == nil {
		return
	}
	c.listener = nil
	for i, hc := range l.halfOpen {
		if hc == c {
			copy(l.halfOpen[i:], l.halfOpen[i+1:])
			l.halfOpen[len(l.halfOpen)-1] = nil
			l.halfOpen = l.halfOpen[:len(l.halfOpen)-1]
			break
		}
	}
	l.t.cfg.Harden.HalfOpen.Dec()
}

// evictOldestHalfOpen silently drops the listener's oldest embryonic
// connection to admit a newer SYN — the classic backlog-full policy.
// No RST is sent: under a spoofed flood the "peer" does not exist, and
// a real client's SYN retransmit will re-admit it.
func (l *Listener) evictOldestHalfOpen() {
	if len(l.halfOpen) == 0 {
		return
	}
	victim := l.halfOpen[0]
	l.t.cfg.Harden.SynQueueOverflows.Inc()
	victim.enqueue(actDeleteTCB{})
	victim.run()
}

// advertisedWindowFor maps the connection's receive window to the wire
// field under the endpoint's memory condition: under pressure at most
// one MSS (drains what is in flight, admits little more), when
// exhausted zero (peers park on persist timers instead of being reset).
func (c *Conn) advertisedWindowFor(w uint32) uint16 {
	switch c.t.mem.state {
	case memPressure:
		if w > c.tcb.mss32() {
			w = c.tcb.mss32()
		}
	case memExhausted:
		w = 0
	}
	return advertisedWindow(w)
}
