package tcp

// This file is the paper's State module: "the main state manipulations
// required on connection open, close, or abort, and also when a timer
// expires" (timer dispatch itself lives with the Action module; the
// state consequences live here and in resend.go).

// stateActiveOpen performs the active OPEN of RFC 793: choose an ISS,
// move to SYN-SENT, and queue the SYN (with our MSS option) for
// transmission and retransmission.
func (c *Conn) stateActiveOpen() {
	tcb := c.tcb
	now := c.t.s.Now()
	iss := c.t.chooseISS()
	tcb.iss = iss
	tcb.sndUna = iss
	tcb.sndNxt = iss + 1
	tcb.cwnd = tcb.mss32()
	tcb.ssthresh = 0xffff
	tcb.recover = iss
	c.setState(StateSynSent)

	syn := &segment{
		srcPort: c.key.lport, dstPort: c.key.rport,
		seq: iss, flags: flagSYN,
		mss:    c.t.localMSS(),
		sentAt: now, firstSentAt: now, timed: true,
	}
	tcb.rexmitQ.PushBack(syn)
	c.enqueue(actSendSegment{seg: syn})
	c.enqueue(actSetTimer{which: timerRexmit, d: tcb.rto})
	c.enqueue(actSetTimer{which: timerUser, d: c.t.cfg.UserTimeout})
	c.t.cfg.Trace.Printf("conn %v: active open, iss %d", c.key, iss)
}

// statePassiveSyn performs the LISTEN-state SYN processing: record the
// peer's sequence space, choose our ISS, move to Syn_Passive, and queue
// the SYN,ACK.
func (c *Conn) statePassiveSyn(sg *segment) {
	tcb := c.tcb
	now := c.t.s.Now()
	tcb.irs = sg.seq
	tcb.rcvNxt = sg.seq + 1
	if sg.mss != 0 {
		tcb.mss = min(int(sg.mss), c.t.MTU())
	}
	tcb.sndWnd = uint32(sg.wnd)
	tcb.sndWl1 = sg.seq
	tcb.maxWnd = uint32(sg.wnd)

	iss := c.t.chooseISS()
	tcb.iss = iss
	tcb.sndUna = iss
	tcb.sndNxt = iss + 1
	tcb.sndWl2 = iss
	tcb.cwnd = tcb.mss32()
	tcb.ssthresh = 0xffff
	tcb.recover = iss
	c.setState(StateSynPassive)

	synAck := &segment{
		srcPort: c.key.lport, dstPort: c.key.rport,
		seq: iss, ack: tcb.rcvNxt, flags: flagSYN | flagACK,
		mss:    c.t.localMSS(),
		sentAt: now, firstSentAt: now, timed: true,
	}
	tcb.rexmitQ.PushBack(synAck)
	c.enqueue(actSendSegment{seg: synAck})
	c.enqueue(actSetTimer{which: timerRexmit, d: tcb.rto})
	c.enqueue(actSetTimer{which: timerUser, d: c.t.cfg.UserTimeout})
	c.t.cfg.Trace.Printf("conn %v: passive open, iss %d irs %d", c.key, iss, tcb.irs)
}

// stateEstablish moves a synchronizing connection to ESTABLISHED and
// releases the opener.
func (c *Conn) stateEstablish() {
	c.setState(StateEstab)
	c.leaveHalfOpen()
	c.enqueue(actClearTimer{which: timerUser})
	if c.t.cfg.Keepalive {
		c.tcb.lastRecv = c.t.s.Now()
		c.enqueue(actSetTimer{which: timerKeepalive, d: c.t.cfg.KeepaliveIdle})
	}
	c.enqueue(actCompleteOpen{})
	c.enqueue(actMaybeSend{})
	// Data that arrived with the SYN was held out of order; it is
	// deliverable now (and is queued behind Complete_Open, honoring the
	// no-data-before-open-returns rule).
	c.drainOutOfOrder()
	c.t.cfg.Trace.Printf("conn %v: established", c.key)
}

// stateClose performs the user CLOSE call: in the synchronizing states it
// abandons the attempt; afterwards it queues a FIN behind any unsent
// data.
func (c *Conn) stateClose() {
	switch c.state {
	case StateClosed, StateListen:
		c.enqueue(actCompleteClose{})
		c.enqueue(actDeleteTCB{})
	case StateSynSent:
		// RFC 793: CLOSE in SYN-SENT deletes the TCB.
		c.enqueue(actCompleteOpen{err: ErrClosed})
		c.enqueue(actCompleteClose{})
		c.enqueue(actDeleteTCB{})
	default:
		c.tcb.finQueued = true
		c.enqueue(actMaybeSend{})
	}
}

// stateFinSent records the state transition triggered by actually
// emitting our FIN (the Send module calls it once, when the FIN leaves).
func (c *Conn) stateFinSent() {
	switch c.state {
	case StateSynActive, StateSynPassive, StateEstab:
		c.setState(StateFinWait1)
	case StateCloseWait:
		c.setState(StateLastAck)
	}
	c.t.cfg.Trace.Printf("conn %v: FIN sent, now %v", c.key, c.state)
}

// stateOurFinAcked records the transition when the peer acknowledges our
// FIN.
func (c *Conn) stateOurFinAcked() {
	switch c.state {
	case StateFinWait1:
		c.setState(StateFinWait2)
		c.enqueue(actCompleteClose{})
	case StateClosing:
		c.enterTimeWait()
	case StateLastAck:
		c.enqueue(actCompleteClose{})
		c.enqueue(actDeleteTCB{})
	}
}

// statePeerFin records the transition when the peer's FIN becomes
// in-order; checkFin has already advanced rcvNxt and scheduled the ACK.
func (c *Conn) statePeerFin() {
	c.enqueue(actPeerClosed{})
	switch c.state {
	case StateSynActive, StateSynPassive, StateEstab:
		c.setState(StateCloseWait)
	case StateFinWait1:
		// If our FIN had been acknowledged we would be in FIN-WAIT-2
		// by now (ack processing precedes FIN processing), so this is
		// a simultaneous close.
		c.setState(StateClosing)
	case StateFinWait2:
		c.enterTimeWait()
	case StateTimeWait:
		// Retransmitted FIN: restart the 2MSL timer.
		c.enqueue(actSetTimer{which: timerTimeWait, d: c.twoMSL()})
	}
	c.t.cfg.Trace.Printf("conn %v: peer FIN, now %v", c.key, c.state)
}

// enterTimeWait starts the 2×MSL quarantine.
func (c *Conn) enterTimeWait() {
	c.setState(StateTimeWait)
	c.enqueue(actClearTimer{which: timerRexmit})
	c.enqueue(actClearTimer{which: timerPersist})
	c.enqueue(actSetTimer{which: timerTimeWait, d: c.twoMSL()})
	c.enqueue(actCompleteClose{})
}

// stateAbort performs the user ABORT call (and internal aborts such as
// the user timeout): RST to a synchronized peer, error to every waiter.
func (c *Conn) stateAbort(err error) {
	switch c.state {
	case StateSynActive, StateSynPassive, StateEstab,
		StateFinWait1, StateFinWait2, StateCloseWait:
		rst := &segment{
			srcPort: c.key.lport, dstPort: c.key.rport,
			seq: c.tcb.sndNxt, flags: flagRST | flagACK, ack: c.tcb.rcvNxt,
		}
		c.enqueue(actSendSegment{seg: rst})
	}
	c.enqueue(actUserError{err: err})
}
